package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// RenderFig3 renders the Fig. 3 series as an aligned text table with the
// paper's published with-flush values alongside.
func RenderFig3(rows []Fig3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 3 — encryptions to break the 1st GIFT round vs. cache probing round\n")
	fmt.Fprintf(&b, "%-12s %14s %16s %14s\n", "probe round", "with flush", "without flush", "paper(flush)")
	for _, r := range rows {
		paper := "-"
		if v, ok := PaperFig3WithFlush[r.ProbeRound]; ok {
			paper = humanCount(v)
		}
		fmt.Fprintf(&b, "%-12d %14s %16s %14s\n", r.ProbeRound, r.WithFlush, r.WithoutFlush, paper)
	}
	return b.String()
}

// Fig3Chart renders the two series as a log-scale ASCII bar chart, the
// shape of the paper's Figure 3.
func Fig3Chart(rows []Fig3Row) string {
	var b strings.Builder
	b.WriteString("Fig. 3 (log scale): █ with flush  ░ without flush\n")
	const width = 52
	maxLog := 0.0
	val := func(c Cell) float64 {
		v := c.Median
		if c.DroppedOut {
			v = float64(budgetOf(c))
		}
		if v < 1 {
			v = 1
		}
		return v
	}
	for _, r := range rows {
		for _, c := range []Cell{r.WithFlush, r.WithoutFlush} {
			if l := log10(val(c)); l > maxLog {
				maxLog = l
			}
		}
	}
	if maxLog == 0 {
		maxLog = 1
	}
	bar := func(c Cell, glyph rune) string {
		n := int(log10(val(c)) / maxLog * width)
		if n < 1 {
			n = 1
		}
		label := humanCount(c.Median)
		if c.DroppedOut {
			label = ">" + humanCount(float64(budgetOf(c)))
		}
		return strings.Repeat(string(glyph), n) + " " + label
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%2d │%s\n", r.ProbeRound, bar(r.WithFlush, '█'))
		fmt.Fprintf(&b, "   │%s\n", bar(r.WithoutFlush, '░'))
	}
	return b.String()
}

func log10(v float64) float64 {
	// Avoid importing math for one call site chain; iterate.
	l := 0.0
	for v >= 10 {
		v /= 10
		l++
	}
	// linear interpolation within the decade is good enough for bars
	return l + (v-1)/9
}

// Fig3CSV renders the series as CSV (probe_round,with_flush,without_flush).
func Fig3CSV(rows []Fig3Row) string {
	var b strings.Builder
	b.WriteString("probe_round,with_flush,without_flush,with_flush_dropped,without_flush_dropped\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%d,%.0f,%.0f,%v,%v\n",
			r.ProbeRound, r.WithFlush.Median, r.WithoutFlush.Median,
			r.WithFlush.DroppedOut, r.WithoutFlush.DroppedOut)
	}
	return b.String()
}

// RenderTable1 renders Table I next to the paper's published values.
func RenderTable1(rows []Table1Row, probeRounds []int) string {
	if len(probeRounds) == 0 {
		probeRounds = []int{1, 2, 3, 4, 5}
	}
	var b strings.Builder
	b.WriteString("Table I — required encryptions to attack the first round\n")
	fmt.Fprintf(&b, "%-10s", "line size")
	for _, pr := range probeRounds {
		fmt.Fprintf(&b, " %10s", fmt.Sprintf("round %d", pr))
	}
	b.WriteString("\n")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-10s", fmt.Sprintf("%d word(s)", row.LineWords))
		for _, c := range row.Cells {
			fmt.Fprintf(&b, " %10s", c)
		}
		b.WriteString("\n")
		if paper, ok := PaperTable1[row.LineWords]; ok {
			fmt.Fprintf(&b, "%-10s", "  (paper)")
			for i := range row.Cells {
				cell := "-"
				if i < len(paper) {
					if paper[i] == 0 {
						cell = ">1M"
					} else {
						cell = humanCount(paper[i])
					}
				}
				fmt.Fprintf(&b, " %10s", cell)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// Table1CSV renders Table I as CSV.
func Table1CSV(rows []Table1Row, probeRounds []int) string {
	if len(probeRounds) == 0 {
		probeRounds = []int{1, 2, 3, 4, 5}
	}
	var b strings.Builder
	b.WriteString("line_words")
	for _, pr := range probeRounds {
		fmt.Fprintf(&b, ",round_%d", pr)
	}
	b.WriteString("\n")
	for _, row := range rows {
		fmt.Fprintf(&b, "%d", row.LineWords)
		for _, c := range row.Cells {
			if c.DroppedOut {
				b.WriteString(",dropout")
			} else {
				fmt.Fprintf(&b, ",%.0f", c.Median)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderTable2 renders Table II next to the paper's published values.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table II — earliest successfully probed round\n")
	fmt.Fprintf(&b, "%-24s %10s %10s %10s %s\n", "platform", "10 MHz", "25 MHz", "50 MHz", "(paper)")
	for _, row := range rows {
		freqs := make([]uint64, 0, len(row.EarliestRound))
		//grinchvet:ignore maporder keys are sorted before any output is rendered
		for f := range row.EarliestRound {
			freqs = append(freqs, f)
		}
		sort.Slice(freqs, func(i, j int) bool { return freqs[i] < freqs[j] })
		fmt.Fprintf(&b, "%-24s", row.Platform)
		for _, f := range freqs {
			fmt.Fprintf(&b, " %10d", row.EarliestRound[f])
		}
		if paper, ok := PaperTable2[row.Platform]; ok {
			vals := make([]string, 0, len(freqs))
			for _, f := range freqs {
				vals = append(vals, fmt.Sprintf("%d", paper[f]))
			}
			fmt.Fprintf(&b, "  (%s)", strings.Join(vals, "/"))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderRecovery renders the headline full-key experiment.
func RenderRecovery(r RecoveryResult) string {
	var b strings.Builder
	b.WriteString("Full 128-bit key recovery (probe round 1, flush, 1-word lines)\n")
	fmt.Fprintf(&b, "  trials: %s\n", r.Encryptions)
	fmt.Fprintf(&b, "  all keys correct: %v (failures: %d)\n", r.AllCorrect, r.Failures)
	fmt.Fprintf(&b, "  paper: full key with fewer than 400 encryptions\n")
	return b.String()
}

// RenderCountermeasures renders the §IV-C demonstrations.
func RenderCountermeasures(r CounterResult) string {
	var b strings.Builder
	b.WriteString("Countermeasures (paper §IV-C)\n")
	fmt.Fprintf(&b, "  1. reshaped 8×8 S-box in one cache line: attack rejected = %v\n", r.ReshapedRejected)
	fmt.Fprintf(&b, "  2. whitened key schedule: sub-keys still leak = %v, master-key recovery defeated = %v (after %d encryptions)\n",
		r.WhitenedRoundKeysRecovered, r.WhitenedKeyRecoveryFailed, r.Encryptions)
	return b.String()
}
