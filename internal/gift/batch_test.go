package gift

import (
	"testing"

	"grinch/internal/bitutil"
)

// batchFill produces 64 deterministic pseudo-random blocks.
func batchFill(seed uint64) [64]uint64 {
	var blocks [64]uint64
	x := seed | 1
	for i := range blocks {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		blocks[i] = x
	}
	return blocks
}

func batchKey(seed uint64) *Cipher64 {
	return NewCipher64FromWord(bitutil.Word128{Lo: seed * 0x9e3779b97f4a7c15, Hi: seed ^ 0xdeadbeefcafef00d})
}

func TestBatch64LoadStoreRoundTrip(t *testing.T) {
	blocks := batchFill(7)
	var b Batch64
	b.Load(&blocks)
	var out [64]uint64
	b.Store(&out)
	if out != blocks {
		t.Fatal("Load/Store round trip corrupted the blocks")
	}
}

// TestBatch64StepEquivalence drives each kernel step against the scalar
// reference per block.
func TestBatch64StepEquivalence(t *testing.T) {
	blocks := batchFill(11)
	rk := RoundKey64{U: 0xbeef, V: 0x1234, Const: 0x2a}

	check := func(name string, batchOp func(*Batch64), scalarOp func(uint64) uint64) {
		var b Batch64
		b.Load(&blocks)
		batchOp(&b)
		var got [64]uint64
		b.Store(&got)
		for i, blk := range blocks {
			if want := scalarOp(blk); got[i] != want {
				t.Fatalf("%s: block %d = %#x, scalar says %#x", name, i, got[i], want)
			}
		}
	}

	check("SubCells", (*Batch64).SubCells, SubCells64)
	check("InvSubCells", (*Batch64).InvSubCells, InvSubCells64)
	check("PermBits", (*Batch64).PermBits, PermBits64)
	check("InvPermBits", (*Batch64).InvPermBits, InvPermBits64)
	check("AddRoundKey", func(b *Batch64) { b.AddRoundKey(rk) }, func(s uint64) uint64 { return AddRoundKey64(s, rk) })
	check("Round", func(b *Batch64) { b.Round(rk) }, func(s uint64) uint64 { return Round64(s, rk) })
	check("InvRound", func(b *Batch64) { b.InvRound(rk) }, func(s uint64) uint64 { return InvRound64(s, rk) })
}

// TestTraceBatchMatchesSBoxInputsN proves the batched victim trace is
// bit-identical to the scalar per-encryption trace for every window
// geometry the oracle uses.
func TestTraceBatchMatchesSBoxInputsN(t *testing.T) {
	c := batchKey(3)
	blocks := batchFill(17)
	windows := []struct{ first, last int }{
		{1, 1}, {1, 2}, {2, 2}, {2, 4}, {1, Rounds64}, {5, 3}, {29, Rounds64 + 3},
	}
	for _, w := range windows {
		visited := map[int][64]uint64{}
		var st, st2 Batch64
		c.TraceBatch(&blocks, w.first, w.last, &st, &st2, func(round int, s *Batch64) {
			var out [64]uint64
			cp := *s
			cp.Store(&out)
			visited[round] = out
		})

		last := w.last
		if last > Rounds64 {
			last = Rounds64
		}
		wantRounds := 0
		for r := w.first; r <= last; r++ {
			wantRounds++
		}
		if len(visited) != wantRounds {
			t.Fatalf("window [%d,%d]: visited %d rounds, want %d", w.first, w.last, len(visited), wantRounds)
		}
		for i, blk := range blocks {
			states := c.SBoxInputsN(blk, last)
			for r := w.first; r <= last; r++ {
				if visited[r][i] != states[r-1] {
					t.Fatalf("window [%d,%d] round %d block %d: batch %#x, scalar %#x",
						w.first, w.last, r, i, visited[r][i], states[r-1])
				}
			}
		}
	}
}

func TestPartialDecryptBatch64MatchesScalar(t *testing.T) {
	c := batchKey(5)
	rks := c.RoundKeys()
	for _, n := range []int{0, 1, 2, 3, 7} {
		blocks := batchFill(uint64(23 + n))
		got := blocks
		var st Batch64
		PartialDecryptBatch64(&got, rks[:n], n, &st)
		for i, blk := range blocks {
			if want := PartialDecrypt64(blk, rks[:n], n); got[i] != want {
				t.Fatalf("n=%d block %d: batch %#x, scalar %#x", n, i, got[i], want)
			}
		}
	}
}

func TestPartialDecryptBatch64PanicsShortKeys(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n > len(rks)")
		}
	}()
	blocks := batchFill(1)
	var st Batch64
	PartialDecryptBatch64(&blocks, nil, 1, &st)
}
