// Package determin is a grinchvet fixture for the determinism pass:
// wall-clock reads, stdlib RNG imports and output-feeding map iteration
// inside a deterministic-core package.
package determin

import (
	"fmt"
	"math/rand" // want "mathrand"
	"time"
)

// Stamp reads the wall clock.
func Stamp() int64 {
	t := time.Now() // want "wallclock"
	return t.UnixNano()
}

// Elapsed reads the wall clock through time.Since.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "wallclock"
}

// Roll uses the forbidden global RNG (the import is the finding).
func Roll() int { return rand.Intn(6) }

// Render iterates a map in randomized order.
func Render(m map[string]int) {
	for k, v := range m { // want "maporder"
		fmt.Println(k, v)
	}
}

// Ignored is the sanctioned escape hatch.
func Ignored() int64 {
	t := time.Now() //grinchvet:ignore wallclock fixture: progress display
	return t.UnixNano()
}
