package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

func fnd(rule, file, fn, detail string) Finding {
	return Finding{Rule: rule, Severity: SeverityError, File: file, Func: fn, Detail: detail, Message: "m"}
}

func TestBaselineRoundTrip(t *testing.T) {
	root := t.TempDir()
	path := filepath.Join(root, "grinchvet.baseline")
	findings := []Finding{
		fnd("secret-index", filepath.Join(root, "a/b.go"), "SubCells", "sbox"),
		fnd("secret-branch", filepath.Join(root, "c.go"), "double", `"carry != 0"`),
		fnd("secret-index", filepath.Join(root, "a/b.go"), "SubCells", "sbox"), // duplicate key
	}
	if err := WriteBaseline(path, root, findings); err != nil {
		t.Fatal(err)
	}
	base, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if base["secret-index\ta/b.go\tSubCells\tsbox"] != 2 {
		t.Fatalf("duplicate key not preserved as multiset: %v", base)
	}
	fresh, stale := Diff(findings, base, root)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Fatalf("round-trip not clean: fresh=%v stale=%v", fresh, stale)
	}
}

func TestBaselineDiffFreshAndStale(t *testing.T) {
	root := t.TempDir()
	base := map[string]int{
		"secret-index\ta.go\tF\tsbox":     1,
		"wallclock\tgone.go\tG\ttime.Now": 1,
	}
	findings := []Finding{
		fnd("secret-index", filepath.Join(root, "a.go"), "F", "sbox"),  // baselined
		fnd("secret-index", filepath.Join(root, "a.go"), "F", "sbox"),  // second copy: fresh (multiset)
		fnd("secret-branch", filepath.Join(root, "b.go"), "H", "cond"), // fresh
	}
	fresh, stale := Diff(findings, base, root)
	if len(fresh) != 2 {
		t.Fatalf("want 2 fresh findings, got %v", fresh)
	}
	if len(stale) != 1 || !strings.HasPrefix(stale[0], "wallclock\t") {
		t.Fatalf("want the wallclock entry stale, got %v", stale)
	}
}

func TestBaselineRejectsMalformedLine(t *testing.T) {
	if _, err := parseBaseline(strings.NewReader("only\ttwo\tfields\n")); err == nil {
		t.Fatal("malformed baseline accepted")
	}
}

func TestBaselineKeyRelativizesInsideRoot(t *testing.T) {
	root := t.TempDir()
	f := fnd("secret-index", filepath.Join(root, "internal", "gift", "gift64.go"), "SubCells64", "SBox")
	if got := BaselineKey(root, f); got != "secret-index\tinternal/gift/gift64.go\tSubCells64\tSBox" {
		t.Fatalf("key = %q", got)
	}
	outside := fnd("secret-index", "/elsewhere/x.go", "F", "d")
	if got := BaselineKey(root, outside); !strings.Contains(got, "/elsewhere/x.go") {
		t.Fatalf("file outside root must stay absolute, got %q", got)
	}
}
