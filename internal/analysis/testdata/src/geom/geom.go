// Package geom is the quant-model fixture: every way the geometry
// resolver can size a secret-indexed container, with the expected
// bits-per-observation pinned in the want markers (line model: 1-byte
// lines, the paper's word-granular probe).
package geom

// sbox: the length is in the array type. 16 entries × 1B → 16 lines,
// log2(16) = 4 bits per observation.
var sbox = [16]uint8{1, 10, 4, 12, 6, 15, 3, 9, 2, 13, 11, 7, 5, 0, 8, 14}

// wide: 8 entries × 8B span 64 lines, but observing more lines than
// entries cannot beat the index's own entropy — capped at log2(8).
var wide = [8]uint64{}

// twod: indexing a 2-D table selects among 16 rows of 4 bytes.
var twod = [16][4]uint8{}

// lit: a sliced global sized from its composite literal (8 × 2B).
var lit = []uint16{0, 1, 2, 3, 4, 5, 6, 7}

// keyed: keyed literal — {15: 1} has 16 entries.
var keyed = []uint8{15: 1}

// made: sized from make([]T, constant).
var made = make([]uint8, 64)

// opaque cannot be sized from its declaration; the annotation is the
// escape hatch.
//
//grinch:geometry entries=256 bytes=1
var opaque []uint8

// overridden is inferable (16 entries) but the annotation wins.
//
//grinch:geometry entries=4 bytes=1
var overridden = []uint8{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}

// psbox: pointer-to-array resolves through the pointer.
var psbox = &sbox

//grinch:secret s
func Array(s uint64) uint8 {
	return sbox[s&0xf] // want "secret-index.*16 entries × 1B → 16 lines @1B, 4\.00 bits/obs"
}

//grinch:secret s
func WideEntries(s uint64) uint64 {
	return wide[s&0x7] // want "secret-index.*8 entries × 8B → 64 lines @1B, 3\.00 bits/obs"
}

//grinch:secret s
func TwoD(s uint64) uint8 {
	return twod[s&0xf][0] // want "secret-index.*16 entries × 4B → 64 lines @1B, 4\.00 bits/obs"
}

//grinch:secret s
func Literal(s uint64) uint16 {
	return lit[s&0x7] // want "secret-index.*8 entries × 2B → 16 lines @1B, 3\.00 bits/obs"
}

//grinch:secret s
func Keyed(s uint64) uint8 {
	return keyed[s&0xf] // want "secret-index.*16 entries × 1B → 16 lines @1B, 4\.00 bits/obs"
}

//grinch:secret s
func Made(s uint64) uint8 {
	return made[s&0x3f] // want "secret-index.*64 entries × 1B → 64 lines @1B, 6\.00 bits/obs"
}

//grinch:secret s
func Annotated(s uint64) uint8 {
	return opaque[s&0xff] // want "secret-index.*256 entries × 1B → 256 lines @1B, 8\.00 bits/obs"
}

//grinch:secret s
func Overridden(s uint64) uint8 {
	return overridden[s&0x3] // want "secret-index.*4 entries × 1B → 4 lines @1B, 2\.00 bits/obs"
}

//grinch:secret s
func PointerToArray(s uint64) uint8 {
	return psbox[s&0xf] // want "secret-index.*16 entries × 1B → 16 lines @1B, 4\.00 bits/obs"
}

// Param: a caller-supplied table has no static geometry — the finding
// still fires, flagged unresolved.
//
//grinch:secret s
func Param(tbl []uint8, s uint64) uint8 {
	return tbl[s&0xf] // want "secret-index.*geometry unresolved"
}

// Branch: a secret-dependent branch is a 1-bit channel per evaluation.
//
//grinch:secret s
func Branch(s uint64) int {
	if s&1 == 1 { // want "secret-branch.*1\.00 bits/evaluation"
		return 1
	}
	return 0
}
