package campaign

import (
	"grinch/internal/obs/metrics"
)

// runMeter is the campaign executor's pre-resolved instrument set over
// an obs/metrics registry. It complements the expvar-oriented Metrics
// type: Metrics is the live single-process snapshot; the registry
// series are the fleet-wide vocabulary that workers ship to the
// coordinator and /metrics exposes. The zero value (nil
// Options.Registry) is fully inert.
type runMeter struct {
	done    *metrics.Counter
	failed  *metrics.Counter
	skipped *metrics.Counter

	encryptions *metrics.Counter
	retries     *metrics.Counter
	faults      *metrics.Counter
	partial     *metrics.Counter
	droppedOut  *metrics.Counter

	jobEnc *metrics.Histogram
	wallMS *metrics.Histogram
}

// newRunMeter resolves the campaign instrument set.
func newRunMeter(r *metrics.Registry) runMeter {
	if r == nil {
		return runMeter{}
	}
	status := func(s string) *metrics.Counter {
		return r.Counter("campaign_jobs_total",
			"Campaign jobs accounted, by terminal status.", metrics.L("status", s))
	}
	return runMeter{
		done:    status("done"),
		failed:  status("failed"),
		skipped: status("skipped"),
		encryptions: r.Counter("campaign_encryptions_total",
			"Victim encryptions consumed across executed jobs."),
		retries: r.Counter("campaign_retries_total",
			"Transient-failure retries spent across executed jobs."),
		faults: r.Counter("campaign_faults_total",
			"Faults the injector fired across executed jobs."),
		partial: r.Counter("campaign_partial_total",
			"Jobs that ended in a structured partial result."),
		droppedOut: r.Counter("campaign_dropped_out_total",
			"Jobs that blew their encryption budget (the paper's >1M cells)."),
		jobEnc: r.Histogram("campaign_job_encryptions",
			"Victim encryptions per executed job.", metrics.EncryptionBuckets),
		wallMS: r.WallHistogram("campaign_job_wall_ms",
			"Per-job wall-clock duration, milliseconds (non-deterministic).", metrics.DurationMSBuckets),
	}
}

// begin accounts the journal-replayed jobs (skipped plus their
// failures) so fleet counters match the run's true totals.
func (m runMeter) begin(skipped, priorFailed int) {
	m.skipped.Add(uint64(skipped))
	m.failed.Add(uint64(priorFailed))
}

// finished accounts one executed job's terminal state.
func (m runMeter) finished(r Result) {
	if r.Failed {
		m.failed.Inc()
	} else {
		m.done.Inc()
	}
	m.encryptions.Add(r.Encryptions)
	m.retries.Add(r.Retries)
	m.faults.Add(r.Faults)
	if r.Partial {
		m.partial.Inc()
	}
	if r.DroppedOut {
		m.droppedOut.Inc()
	}
	m.jobEnc.Observe(r.Encryptions)
	if r.DurationNS > 0 {
		m.wallMS.Observe(uint64(r.DurationNS) / 1e6)
	}
}
