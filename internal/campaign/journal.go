package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// journalHeader is the first line of a journal file. It pins the
// journal to one campaign: a resume against a journal whose fingerprint
// does not match the spec is an error, because job indices would then
// refer to different grid points.
type journalHeader struct {
	Campaign    string `json:"campaign"`
	Fingerprint string `json:"fingerprint"`
	Jobs        int    `json:"jobs"`
}

// Journal is the append-only checkpoint file of a campaign run. Every
// completed job is recorded as one JSON line (the same Result record
// the sinks receive, timing included); on resume the journal is read
// back and the recorded jobs are not re-executed. Appends are flushed
// line-by-line so an interrupted run loses at most the in-flight jobs;
// a torn final line from a hard kill is detected and ignored on load.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	path string
}

// OpenJournal opens (or creates) the journal at path for the given
// spec and returns the results it already holds, keyed by job index.
// An existing journal must carry the spec's fingerprint.
func OpenJournal(path string, spec Spec) (*Journal, map[int]Result, error) {
	prior := make(map[int]Result)
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		// Fresh journal: write the header.
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("campaign: creating journal: %w", err)
		}
		j := &Journal{f: f, w: bufio.NewWriter(f), path: path}
		hdr := journalHeader{Campaign: spec.Name, Fingerprint: spec.Fingerprint(), Jobs: spec.NumJobs()}
		if err := j.appendJSON(hdr); err != nil {
			f.Close()
			return nil, nil, err
		}
		return j, prior, nil
	case err != nil:
		return nil, nil, fmt.Errorf("campaign: reading journal: %w", err)
	}

	// Existing journal: validate the header and load completed jobs.
	lines := splitLines(data)
	if len(lines) == 0 {
		return nil, nil, fmt.Errorf("campaign: journal %s is empty (no header)", path)
	}
	var hdr journalHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		return nil, nil, fmt.Errorf("campaign: journal %s has a corrupt header: %w", path, err)
	}
	if want := spec.Fingerprint(); hdr.Fingerprint != want {
		return nil, nil, fmt.Errorf("campaign: journal %s belongs to campaign %q (fingerprint %s, want %s); refusing to resume a different grid",
			path, hdr.Campaign, hdr.Fingerprint, want)
	}
	for _, line := range lines[1:] {
		var r Result
		if err := json.Unmarshal(line, &r); err != nil {
			// A torn trailing line from a hard kill: whatever job it
			// described simply re-runs.
			continue
		}
		prior[r.Job] = r
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("campaign: reopening journal: %w", err)
	}
	return &Journal{f: f, w: bufio.NewWriter(f), path: path}, prior, nil
}

// Append records one completed job and flushes it to the OS.
func (j *Journal) Append(r Result) error {
	return j.appendJSON(r)
}

func (j *Journal) appendJSON(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.w.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("campaign: appending to journal: %w", err)
	}
	return j.w.Flush()
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// splitLines splits on '\n', dropping a trailing empty slice. A final
// line without a newline is kept: Append writes the newline atomically
// with the record, so such a line is torn and will fail to unmarshal.
func splitLines(data []byte) [][]byte {
	var lines [][]byte
	start := 0
	for i, b := range data {
		if b == '\n' {
			lines = append(lines, data[start:i])
			start = i + 1
		}
	}
	if start < len(data) {
		lines = append(lines, data[start:])
	}
	return lines
}
