package oracle

import (
	"math/bits"
	"sync"

	"grinch/internal/bitutil"
	"grinch/internal/gift"
	"grinch/internal/obs"
	"grinch/internal/probe"
)

// This file implements probe.BatchChannel for the GIFT-64 oracle: the
// victim traces of up to 64 crafted plaintexts are computed in one pass
// through the block-parallel bitsliced kernel (gift.Batch64), and the
// per-block line sets fall out of a bit-matrix transpose instead of 64
// separate nibble-extraction loops. Noise, trace events, the encryption
// counter and the Evict+Time cursor are all deferred to CollectPrimed —
// commit time — so the batch is pure speculation and the channel's
// observable byte stream is identical to the scalar path's.

// batchScratch is the reusable workspace of one PrimeBatch call, pooled
// so sweeps with thousands of batches allocate it once per P.
type batchScratch struct {
	pts [64]uint64
	// st/st2 are the ping-pong pair of the fused bitsliced round pass.
	st, st2 gift.Batch64
	// occ[L] accumulates, over the probe window's rounds, the 64-wide
	// lane mask of blocks that touched table line L; the trailing 48
	// words stay zero so the final transpose reads it as a full 64×64
	// matrix whose row L is line L's occupancy.
	occ [64]uint64
	// states is the per-plaintext trace buffer of the small-batch
	// scalar path.
	states []uint64
}

// batchScalarMax is the batch size below which the bitsliced kernel
// loses to per-plaintext scalar traces: the kernel's cost is fixed at
// 64 lanes regardless of how many are live, so a quarter-full batch
// pays four lanes of kernel time per observation plus two 64×64
// transposes. Fast-converging targets mostly prime the attack loop's
// opening 8- and 16-wide refills, which is exactly this regime.
const batchScalarMax = 8

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// PrimeBatch implements probe.BatchChannel. It requires the real
// GIFT-64 victim built by New: foreign tracer implementations
// (countermeasure ciphers) cannot run the bitsliced kernel and force
// the scalar path.
func (o *Oracle) PrimeBatch(pts []uint64, targetRound int, raw []probe.LineSet) bool {
	if o.cipher == nil || len(pts) == 0 || len(pts) > 64 || len(raw) < len(pts) { //grinchvet:ignore secret-branch capacity check reads only slice lengths and nil-ness, never plaintext contents
		return false
	}
	first := 1
	if o.cfg.Flush {
		first = targetRound + 1
	}
	last := targetRound + o.cfg.ProbeRound
	if last > gift.Rounds64 {
		last = gift.Rounds64
	}

	sc := batchScratchPool.Get().(*batchScratch)
	shift := uint(bits.TrailingZeros(uint(o.cfg.LineWords)))
	if len(pts) <= batchScalarMax {
		// Small batch: trace each plaintext with the scalar cipher and
		// demux nibbles directly, exactly as Collect does (LineWords is
		// a power of two, so the line index is a shift). Same raw sets,
		// no 64-lane kernel or transposes.
		for i, pt := range pts {
			sc.states = o.cipher.SBoxInputsAppend(sc.states[:0], pt, last)
			var set probe.LineSet
			for r := first; r <= last; r++ {
				s := sc.states[r-1]
				for seg := uint(0); seg < gift.Segments64; seg++ {
					set = set.Add(int(bitutil.Nibble(s, seg) >> shift))
				}
			}
			raw[i] = set
		}
		batchScratchPool.Put(sc)
		return true
	}
	n := copy(sc.pts[:], pts)
	for i := n; i < 64; i++ {
		sc.pts[i] = 0
	}
	sc.occ = [64]uint64{}
	o.cipher.TraceBatch(&sc.pts, first, last, &sc.st, &sc.st2, func(_ int, st *gift.Batch64) {
		accumulateLines(st, shift, &sc.occ)
	})
	// Pivot line-major occupancy into block-major sets: after the
	// transpose, word j holds block j's raw line set.
	bitutil.Transpose64(&sc.occ)
	for i := 0; i < n; i++ {
		raw[i] = probe.LineSet(sc.occ[i])
	}
	batchScratchPool.Put(sc)
	return true
}

// accumulateLines ORs each table line's 64-wide occupancy mask into
// occ: block j touches line L during this round when some segment's
// S-box index has its high (4−shift) bits equal to L, where
// lineWords = 1<<shift entries share a cache line. The match is a
// bitsliced demultiplex of each segment's four index planes — boolean
// lane operations only, no secret-indexed access and no secret branch,
// which is exactly why this path can be both fast and leak-free. Each
// line width dispatches to its own demux so the per-line accumulators
// are named locals the compiler keeps in registers across all 16
// segments, rather than dynamically indexed stack arrays.
//
//grinch:secret st
func accumulateLines(st *gift.Batch64, shift uint, occ *[64]uint64) {
	switch shift {
	case 0:
		accumulateLines16(st, occ)
	case 1:
		accumulateLines8(st, occ)
	case 2:
		accumulateLines4(st, occ)
	case 3:
		accumulateLines2(st, occ)
	default: // one line: every access lands on it
		occ[0] = ^uint64(0)
	}
}

// accumulateLines16 demuxes the full 4-bit index (lineWords = 1).
//
//grinch:secret st
func accumulateLines16(st *gift.Batch64, occ *[64]uint64) {
	for s := 0; s < 64; s += 4 {
		p0, p1, p2, p3 := st[s], st[s+1], st[s+2], st[s+3]
		n0, n1, n2, n3 := ^p0, ^p1, ^p2, ^p3
		l0, l1, l2, l3 := n0&n1, p0&n1, n0&p1, p0&p1
		h0, h1, h2, h3 := n2&n3, p2&n3, n2&p3, p2&p3
		occ[0] |= l0 & h0
		occ[1] |= l1 & h0
		occ[2] |= l2 & h0
		occ[3] |= l3 & h0
		occ[4] |= l0 & h1
		occ[5] |= l1 & h1
		occ[6] |= l2 & h1
		occ[7] |= l3 & h1
		occ[8] |= l0 & h2
		occ[9] |= l1 & h2
		occ[10] |= l2 & h2
		occ[11] |= l3 & h2
		occ[12] |= l0 & h3
		occ[13] |= l1 & h3
		occ[14] |= l2 & h3
		occ[15] |= l3 & h3
	}
}

// accumulateLines8 demuxes index bits 1..3 (lineWords = 2).
//
//grinch:secret st
func accumulateLines8(st *gift.Batch64, occ *[64]uint64) {
	var o0, o1, o2, o3, o4, o5, o6, o7 uint64
	for s := 0; s < 64; s += 4 {
		p1, p2, p3 := st[s+1], st[s+2], st[s+3]
		n1, n2, n3 := ^p1, ^p2, ^p3
		h0, h1, h2, h3 := n2&n3, p2&n3, n2&p3, p2&p3
		o0 |= n1 & h0
		o1 |= p1 & h0
		o2 |= n1 & h1
		o3 |= p1 & h1
		o4 |= n1 & h2
		o5 |= p1 & h2
		o6 |= n1 & h3
		o7 |= p1 & h3
	}
	occ[0] |= o0
	occ[1] |= o1
	occ[2] |= o2
	occ[3] |= o3
	occ[4] |= o4
	occ[5] |= o5
	occ[6] |= o6
	occ[7] |= o7
}

// accumulateLines4 demuxes index bits 2..3 (lineWords = 4).
//
//grinch:secret st
func accumulateLines4(st *gift.Batch64, occ *[64]uint64) {
	var o0, o1, o2, o3 uint64
	for s := 0; s < 64; s += 4 {
		p2, p3 := st[s+2], st[s+3]
		n2, n3 := ^p2, ^p3
		o0 |= n2 & n3
		o1 |= p2 & n3
		o2 |= n2 & p3
		o3 |= p2 & p3
	}
	occ[0] |= o0
	occ[1] |= o1
	occ[2] |= o2
	occ[3] |= o3
}

// accumulateLines2 demuxes index bit 3 (lineWords = 8).
//
//grinch:secret st
func accumulateLines2(st *gift.Batch64, occ *[64]uint64) {
	var o0, o1 uint64
	for s := 0; s < 64; s += 4 {
		p3 := st[s+3]
		o0 |= ^p3
		o1 |= p3
	}
	occ[0] |= o0
	occ[1] |= o1
}

// CollectPrimed implements probe.BatchChannel: it commits one primed
// observation with the exact side-effect sequence of Collect followed
// by CollectMasked's mask selection — counter, encryption_start/end
// events, noise draws in line order, then the Evict+Time cursor.
func (o *Oracle) CollectPrimed(raw probe.LineSet, targetRound int) (set, mask probe.LineSet) {
	o.encryptions++
	if o.events != nil {
		o.events.Emit(obs.Event{Kind: obs.KindEncryptionStart, Enc: o.encryptions, Cipher: "GIFT-64", Round: targetRound})
		defer o.events.Emit(obs.Event{Kind: obs.KindEncryptionEnd, Enc: o.encryptions})
	}
	set = o.applyNoise(raw)
	if o.cfg.Probe != ProbeEvictTime {
		return set, o.full
	}
	l := o.cursor
	o.cursor = (o.cursor + 1) % o.lines
	mask = probe.LineSet(0).Add(l)
	return set.Intersect(mask), mask
}

// compile-time interface check
var _ probe.BatchChannel = (*Oracle)(nil)
