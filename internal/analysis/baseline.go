package analysis

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The baseline is the committed ledger of accepted findings — in this
// repository, the deliberately leaky table implementations that the
// GRINCH attack needs to exist. grinchvet exits nonzero on any finding
// *not* in the baseline, so a new leaky lookup or wall-clock dependency
// fails the build while the known attack surface stays green.
//
// Format: one tab-separated record per line, sorted,
//
//	rule<TAB>file<TAB>func<TAB>detail
//
// deliberately *without* line numbers, so unrelated edits that shift
// code do not invalidate the ledger. Identical records may repeat: the
// comparison is a multiset match, so even adding a second lookup that
// produces an identical key is caught.
//
// The v2 format (written by -quant -write-baseline) appends a fifth,
// informational column carrying the quantitative leakage estimate:
//
//	rule<TAB>file<TAB>func<TAB>detail<TAB>entries=16 bytes=1 lines=16 bits=4.00
//
// The quant column is NOT part of the identity: matching still uses
// the first four fields only, so a model recalibration never
// invalidates the ledger, and v1 files keep parsing unchanged.

// BaselineKey is the stable identity of a finding.
func BaselineKey(root string, f Finding) string {
	file := f.File
	if root != "" {
		if rel, err := filepath.Rel(root, f.File); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
	}
	return strings.Join([]string{f.Rule, file, f.Func, f.Detail}, "\t")
}

// ReadBaseline loads a baseline file into a key -> count multiset.
func ReadBaseline(path string) (map[string]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseBaseline(f)
}

func parseBaseline(r io.Reader) (map[string]int, error) {
	set := map[string]int{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), "\r")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch strings.Count(line, "\t") {
		case 3: // v1: rule, file, func, detail
			set[line]++
		case 4: // v2: + informational quant column, dropped from the key
			key := line[:strings.LastIndex(line, "\t")]
			set[key]++
		default:
			return nil, fmt.Errorf("analysis: malformed baseline line %q (want rule\\tfile\\tfunc\\tdetail[\\tquant])", line)
		}
	}
	return set, sc.Err()
}

// WriteBaseline writes the findings' keys as a sorted baseline file.
// Findings carrying quant estimates (a -quant run) are written in the
// v2 format with the informational fifth column.
func WriteBaseline(path, root string, findings []Finding) error {
	lines := make([]string, 0, len(findings))
	for _, f := range findings {
		line := BaselineKey(root, f)
		if f.Quant != nil {
			line += "\t" + f.Quant.BaselineColumn()
		}
		lines = append(lines, line)
	}
	sort.Strings(lines)
	var b strings.Builder
	b.WriteString("# grinchvet baseline — accepted findings, one per line:\n")
	b.WriteString("# rule\tfile\tfunc\tdetail[\tquant]\n")
	b.WriteString("# Regenerate with: go run ./cmd/grinchvet -quant -write-baseline ./...\n")
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// Diff splits findings into new (not covered by the baseline) and
// returns the stale baseline entries (recorded but no longer produced).
// Coverage is multiset-style: N identical keys in the baseline cover at
// most N identical findings. Both outputs are deterministically
// ordered — fresh by (rule, pkg, func, detail, file, line), stale
// lexically (keys lead with the rule) — so CI mismatch logs are stable
// and diffable across runs.
func Diff(findings []Finding, baseline map[string]int, root string) (fresh []Finding, stale []string) {
	remaining := make(map[string]int, len(baseline))
	for k, n := range baseline {
		remaining[k] = n
	}
	for _, f := range findings {
		k := BaselineKey(root, f)
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		fresh = append(fresh, f)
	}
	sort.Slice(fresh, func(i, j int) bool {
		a, b := fresh[i], fresh[j]
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		if a.Detail != b.Detail {
			return a.Detail < b.Detail
		}
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	for k, n := range remaining {
		for i := 0; i < n; i++ {
			stale = append(stale, k)
		}
	}
	sort.Strings(stale)
	return fresh, stale
}
