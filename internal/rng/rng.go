// Package rng provides a small deterministic pseudo-random number
// generator used by every stochastic component in this repository
// (plaintext randomization, replacement policies, noise injection,
// experiment trials).
//
// A dedicated generator, rather than math/rand, guarantees that
// experiment outputs are bit-for-bit reproducible across Go releases:
// the sequence is fixed by this package, not by the standard library's
// unspecified algorithm. The generator is xoshiro256**, seeded through
// SplitMix64 as its authors recommend.
package rng

import "math/bits"

// Source is a deterministic xoshiro256** generator. The zero value is not
// usable; construct with New.
//
// The four state words are separate fields rather than a [4]uint64:
// the compiler's SSA pass decomposes struct fields into registers but
// never arrays, and the crafting hot loop runs 16 inlined draws on a
// local copy — scalar fields keep that whole run register-resident.
type Source struct {
	s0, s1, s2, s3 uint64
}

// New returns a generator seeded from the given seed. Two Sources built
// from equal seeds produce identical streams.
func New(seed uint64) *Source {
	r := &Source{}
	r.Reseed(seed)
	return r
}

// Reseed resets the generator state from seed using SplitMix64, so that
// even adjacent seeds yield uncorrelated streams.
func (r *Source) Reseed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0, r.s1, r.s2, r.s3 = next(), next(), next(), next()
	// xoshiro256** requires a not-all-zero state; SplitMix64 cannot emit
	// four zeros in a row, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 1
	}
}

// Uint64 returns the next 64 pseudo-random bits. The rotates go
// through math/bits so the compiler lowers them to single instructions
// and the whole step stays cheap enough to inline into the crafting
// hot loop (16 draws per crafted plaintext).
func (r *Source) Uint64() uint64 {
	t := r.s1
	r.s2 ^= r.s0
	r.s3 ^= t
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t << 17
	r.s3 = bits.RotateLeft64(r.s3, 45)
	return bits.RotateLeft64(t*5, 7) * 9
}

// Uint32 returns the next 32 pseudo-random bits.
func (r *Source) Uint32() uint32 {
	return uint32(r.Uint64() >> 32)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	un := uint64(n)
	v := r.Uint64()
	if un&(un-1) == 0 {
		// Power-of-two bound: Lemire's method degenerates to taking the
		// top log2(n) bits — the rejection threshold (2^64 - n) mod n is
		// zero, so exactly one draw is consumed and the value equals the
		// high half of v·n. Same stream, same result, no 128-bit
		// multiply (the crafting hot path draws Intn(8) four times per
		// plaintext).
		return int(v >> (64 - uint(bits.Len64(un)-1)))
	}
	// Lemire's multiply-shift rejection method for unbiased bounded
	// integers without division in the common case.
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	return int(hi)
}

// IntnPow2 returns the same value Intn(1<<k) would, consuming the same
// single draw, for 0 < k < 64. Intn's general body is too large for the
// compiler to inline; the crafting hot loop always draws from 8-entry
// lists, so this power-of-two special case keeps the whole draw inline.
func (r *Source) IntnPow2(k uint) int {
	return int(r.Uint64() >> (64 - k))
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t&mask + aLo*bHi
	hi = aHi*bHi + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}

// Nibble returns a uniform 4-bit value, the unit of GIFT plaintext
// randomization.
func (r *Source) Nibble() uint64 {
	return r.Uint64() & 0xf
}

// Bool returns a uniform boolean.
func (r *Source) Bool() bool {
	return r.Uint64()&1 == 1
}

// Float64 returns a uniform float in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a uniform permutation of 0..n-1 (Fisher–Yates).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Snapshot returns a copy of the generator's current state. Restoring
// it rewinds the stream exactly: after Restore, the Source replays the
// same draws it produced after the Snapshot. The batched attack
// pipeline uses this to un-consume speculatively crafted plaintexts —
// the number of Uint64 draws behind an Intn call is data-dependent
// (Lemire rejection), so positions can only be revisited by state
// capture, never by skip-ahead arithmetic.
func (r *Source) Snapshot() Source { return *r }

// Restore rewinds the generator to a previously captured Snapshot.
func (r *Source) Restore(s Source) { *r = s }

// Split returns a new Source whose stream is independent of r's: it is
// seeded from r's output, letting one experiment seed fan out into
// per-trial generators deterministically.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

// Derive maps a (root seed, index) pair to an independent member seed by
// running one SplitMix64 step over their combination. Unlike Split, the
// derivation is random-access: member i's seed does not depend on having
// drawn members 0..i-1, so a swept experiment can hand every grid cell
// its own generator in any order — or in parallel — and still reproduce
// the exact per-cell streams of a serial run.
func Derive(seed, index uint64) uint64 {
	z := seed + (index+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
