package core

import (
	"errors"
	"fmt"
	"math"

	"grinch/internal/bitutil"
	"grinch/internal/gift"
	"grinch/internal/obs"
	"grinch/internal/probe"
	"grinch/internal/rng"
)

// logRatio returns log(a)/log(b) for a, b in (0,1).
func logRatio(a, b float64) float64 {
	return math.Log(a) / math.Log(b)
}

// Config tunes the attack.
type Config struct {
	// MaxObservationsPerTarget caps the encryptions spent on one
	// (segment, hypothesis) elimination before giving up. Default 1<<20
	// — high enough that TotalBudget, not this cap, normally decides
	// when a saturated channel is abandoned (an 8-word line needs ~33k
	// observations per segment at the cleanest probing round).
	MaxObservationsPerTarget uint64
	// MinObservations is the floor before convergence is accepted;
	// guards against an early accidental single candidate under
	// non-strict thresholds. Default 4.
	MinObservations uint64
	// Threshold is the appearance ratio a line needs to stay candidate
	// (1 = strict intersection, the paper's noise-free setting).
	// Default 1.
	Threshold float64
	// TotalBudget aborts the attack once the channel has performed this
	// many encryptions (0 = unlimited). The paper drops experiments
	// past 1M encryptions as impractical.
	TotalBudget uint64
	// Seed drives plaintext randomization.
	Seed uint64
	// Progress, when set, receives one event per finished segment
	// elimination (CLI verbose output).
	Progress ProgressFunc
	// Tracer, when set, receives the attack's internal trajectory as
	// typed events (internal/obs): one probe_observation plus one
	// candidate_update per encryption and one segment_recovered per
	// converged elimination. Nil (the default) disables tracing; the
	// hot path then pays a single nil check per observation.
	Tracer obs.Tracer
}

// ProgressFunc observes attack progress: one call per segment whose
// elimination finished, successful or not.
type ProgressFunc func(cipher string, round, segment int, converged bool, line int, observations uint64)

func (c Config) withDefaults() Config {
	if c.MaxObservationsPerTarget == 0 {
		c.MaxObservationsPerTarget = 1 << 20
	}
	if c.MinObservations == 0 {
		c.MinObservations = 4
	}
	if c.Threshold == 0 {
		c.Threshold = 1
	}
	return c
}

// ErrBudgetExceeded aborts an attack that passed Config.TotalBudget.
var ErrBudgetExceeded = errors.New("core: encryption budget exceeded")

// ErrNoConvergence marks a target whose candidate set never reached a
// single line (saturated observation channel).
var ErrNoConvergence = errors.New("core: candidate elimination did not converge")

// Attacker drives the GRINCH attack over an observation channel.
type Attacker struct {
	ch        probe.Channel
	cfg       Config
	rng       *rng.Source
	lineWords int
}

// NewAttacker builds an attacker. The channel's line count must divide
// the 16-entry table; a single-line table (16 entries per line) carries
// no index information and is rejected — that is exactly the paper's
// first countermeasure.
func NewAttacker(ch probe.Channel, cfg Config) (*Attacker, error) {
	lines := ch.Lines()
	if lines < 2 || 16%lines != 0 {
		return nil, fmt.Errorf("core: channel exposes %d table lines; the attack needs 2..16 dividing 16", lines)
	}
	cfg = cfg.withDefaults()
	return &Attacker{
		ch:        ch,
		cfg:       cfg,
		rng:       rng.New(cfg.Seed),
		lineWords: 16 / lines,
	}, nil
}

// LineWords returns how many table entries share a cache line on this
// channel.
func (a *Attacker) LineWords() int { return a.lineWords }

// Encryptions returns the channel's total encryption count.
func (a *Attacker) Encryptions() uint64 { return a.ch.Encryptions() }

// overBudget reports whether the total budget is exhausted.
func (a *Attacker) overBudget() bool {
	return a.cfg.TotalBudget > 0 && a.ch.Encryptions() >= a.cfg.TotalBudget
}

// progress emits a ProgressFunc event if one is configured.
func (a *Attacker) progress(cipher string, round, segment int, converged bool, line int, obs uint64) {
	if a.cfg.Progress != nil {
		a.cfg.Progress(cipher, round, segment, converged, line, obs)
	}
}

// traceObservation emits the per-encryption pair of events — the raw
// probe observation and the candidate state it produced. Only called
// with a non-nil tracer, so the Candidates recomputation is free on the
// untraced path.
func traceObservation(tr obs.Tracer, enc uint64, cipher string, round, segment int, set probe.LineSet, elim *Eliminator) {
	tr.Emit(obs.Event{
		Kind:    obs.KindProbeObservation,
		Enc:     enc,
		Cipher:  cipher,
		Round:   round,
		Segment: segment,
		Lines:   uint64(set),
	})
	cands := elim.Candidates()
	tr.Emit(obs.Event{
		Kind:         obs.KindCandidateUpdate,
		Enc:          enc,
		Cipher:       cipher,
		Round:        round,
		Segment:      segment,
		Lines:        uint64(cands),
		Survivors:    cands.Count(),
		EntropyBits:  obs.EntropyBits(cands.Count()),
		Observations: elim.Observations(),
	})
}

// traceRecovered emits the segment_recovered terminal event for a
// converged elimination.
func traceRecovered(tr obs.Tracer, enc uint64, cipher string, round, segment, line int, observations uint64) {
	tr.Emit(obs.Event{
		Kind:         obs.KindSegmentRecovered,
		Enc:          enc,
		Cipher:       cipher,
		Round:        round,
		Segment:      segment,
		Line:         line,
		Observations: observations,
	})
}

// TargetOutcome is the result of attacking one segment under one
// crafting hypothesis.
type TargetOutcome struct {
	Spec TargetSpec
	// Line is the converged table line (-1 if not converged).
	Line int
	// Pairs lists the candidate (v | u<<1) key-bit pairs consistent
	// with Line (1, 2 or 4 entries depending on line width).
	Pairs []uint8
	// Observations is the number of encryptions this elimination used.
	Observations uint64
	Converged    bool
	// Exhausted means every candidate was eliminated — the signature of
	// a wrong crafting hypothesis.
	Exhausted bool
	// Infeasible means the elimination converged on a line the pinned
	// target cannot produce: a noise line outlasted every other line by
	// chance, which also indicates a wrong hypothesis.
	Infeasible bool
}

// AttackTarget runs paper Steps 1-4 for one target: craft plaintexts,
// collect probes, eliminate candidates, and reverse-engineer the key-bit
// candidates from the surviving line. rks supplies the round keys used
// for crafting (empty for Round == 1); hypothesized bits may be wrong,
// in which case the elimination exhausts (or converges infeasibly) and
// the outcome reports it.
func (a *Attacker) AttackTarget(spec TargetSpec, rks []gift.RoundKey64) TargetOutcome {
	return a.attackTarget(spec, rks, false)
}

// attackTarget optionally confirms a convergence by persistence: when a
// crafting hypothesis is under test, a noise line can survive every
// observation by chance and fake a convergence, so the surviving line
// must additionally stay the sole candidate for an adaptively-chosen
// number of extra observations before it is believed.
func (a *Attacker) attackTarget(spec TargetSpec, rks []gift.RoundKey64, confirm bool) TargetOutcome {
	elim := NewEliminator(a.ch.Lines(), a.cfg.Threshold)
	feasible := spec.FeasibleLines(a.lineWords)
	out := TargetOutcome{Spec: spec, Line: -1}
	var confirmLeft uint64
	confirming := false

	masked, _ := a.ch.(probe.MaskedChannel)
	for elim.Observations() < a.cfg.MaxObservationsPerTarget && !a.overBudget() {
		pt := spec.CraftPlaintext(a.rng, rks)
		var set probe.LineSet
		if masked != nil {
			s, mask := masked.CollectMasked(pt, spec.Round)
			elim.ObserveMasked(s, mask)
			set = s
		} else {
			set = a.ch.Collect(pt, spec.Round)
			elim.Observe(set)
		}
		if a.cfg.Tracer != nil {
			traceObservation(a.cfg.Tracer, a.ch.Encryptions(), "GIFT-64", spec.Round, spec.Segment, set, elim)
		}

		// Under strict intersection an empty candidate set is
		// definitive at any point; with a tolerant threshold it is only
		// meaningful once enough observations have accumulated.
		if elim.Exhausted() && (a.cfg.Threshold == 1 || elim.Observations() >= a.cfg.MinObservations) {
			out.Exhausted = true
			break
		}
		line, ok := elim.Converged(a.cfg.MinObservations)
		if !ok {
			confirming = false
			continue
		}
		if !feasible.Contains(line) {
			out.Infeasible = true
			break
		}
		if !confirm {
			out.Line = line
			out.Converged = true
			break
		}
		if !confirming {
			confirming = true
			confirmLeft = a.confirmSpan(elim, line)
		}
		if confirmLeft == 0 {
			out.Line = line
			out.Converged = true
			break
		}
		confirmLeft--
	}
	if out.Converged {
		out.Pairs = spec.PairsForLine(out.Line, a.lineWords)
		if a.cfg.Tracer != nil {
			traceRecovered(a.cfg.Tracer, a.ch.Encryptions(), "GIFT-64", spec.Round, spec.Segment, out.Line, elim.Observations())
		}
	}
	out.Observations = elim.Observations()
	return out
}

// worstPinShare is the largest fraction of crafted inputs for which a
// wrongly-hypothesized parent still yields the pinned output bit: over
// all output bits j and input differences e ≠ 0, the share of x in
// {SBox[x] bit j = 1} with SBox[x⊕e] bit j = 1. It bounds how much
// residual signal a wrong hypothesis can leave on the expected line, and
// therefore how slowly a fake survivor can die.
var worstPinShare = computeWorstPinShare()

func computeWorstPinShare() float64 {
	best := 0
	for j := 0; j < 4; j++ {
		list := sboxBitList(j)
		for e := uint8(1); e < 16; e++ {
			hits := 0
			for _, x := range list {
				if gift.SBox[x^e]>>j&1 == 1 {
					hits++
				}
			}
			if hits > best && hits < len(list) {
				best = hits
			}
		}
	}
	return float64(best) / 8
}

// confirmSpan picks how many extra all-present observations a surviving
// line must endure before a hypothesis is accepted. Under a wrong
// hypothesis the expected line still receives signal on a worstPinShare
// fraction of encryptions and noise cover otherwise, so it dies at rate
// ≥ (1−worstPinShare)·(1−p̂) per observation, where p̂ is the noise
// presence ratio estimated from the strongest eliminated competitor.
// Demanding survival over K = log(fp)/log(1−rate) extra observations
// bounds the hypothesis false-positive rate by fp.
func (a *Attacker) confirmSpan(elim *Eliminator, line int) uint64 {
	var pMax float64
	for l := 0; l < a.ch.Lines(); l++ {
		if l == line {
			continue
		}
		if p := elim.PresenceRatio(l); p > pMax {
			pMax = p
		}
	}
	if pMax > 0.999 {
		pMax = 0.999
	}
	deathRate := (1 - worstPinShare) * (1 - pMax)
	const fpRate = 1e-4
	k := uint64(logRatio(fpRate, 1-deathRate)) + 1
	if limit := a.cfg.MaxObservationsPerTarget; k > limit {
		k = limit
	}
	return k
}

// RoundOutcome is the result of attacking all 16 segments of one round
// key.
type RoundOutcome struct {
	Round int
	// Cands[g] lists candidate (v | u<<1) pairs for segment g of round
	// key Round. Single-entry lists mean the segment is resolved.
	Cands [16][]uint8
	// ConfirmedPrev holds the resolved pair per segment of round key
	// Round-1, when this pass disambiguated a pending previous round
	// (entries are 0..3; only meaningful when PrevResolved is true).
	ConfirmedPrev [16]uint8
	PrevResolved  bool
	// Encryptions is the channel usage of this pass alone.
	Encryptions uint64
}

// Unique reports whether every segment resolved to a single key-bit
// pair, and returns the round key if so.
func (r RoundOutcome) Unique() (gift.RoundKey64, bool) {
	var pairs [16]uint8
	for g, c := range r.Cands {
		if len(c) != 1 {
			return gift.RoundKey64{}, false
		}
		pairs[g] = c[0]
	}
	return roundKeyFromPairs(r.Round, pairs), true
}

// roundKeyFromPairs assembles a round key from per-segment (v|u<<1)
// pairs.
func roundKeyFromPairs(round int, pairs [16]uint8) gift.RoundKey64 {
	var rk gift.RoundKey64
	for g, p := range pairs {
		rk.V |= uint16(p&1) << g
		rk.U |= uint16(p>>1&1) << g
	}
	rk.Const = gift.RoundConstants[round-1]
	return rk
}

// observableShift returns how many low index bits the line granularity
// hides (0 for 1-word lines).
func (a *Attacker) observableShift() int {
	s := 0
	for w := a.lineWords; w > 1; w >>= 1 {
		s++
	}
	return s
}

// AttackRound attacks round key t across all 16 segments (paper Step 5
// iterates this over rounds). resolved must hold the fully-recovered
// round keys 1..t-2 (or 1..t-1 when prevCands is nil); prevCands, when
// non-nil, holds the still-ambiguous candidate pairs for round key t-1
// left over from the previous pass under a wide cache line. The pass
// then both recovers round-t candidates and disambiguates round t-1:
// wrong parent hypotheses destroy the crafted pinning, so their
// eliminations exhaust instead of converging (paper §III-D, "assume all
// possibilities").
func (a *Attacker) AttackRound(t int, resolved []gift.RoundKey64, prevCands *[16][]uint8) (RoundOutcome, error) {
	if t >= 2 {
		need := t - 1
		if prevCands != nil {
			need = t - 2
		}
		if len(resolved) < need {
			return RoundOutcome{}, fmt.Errorf("core: attacking round %d needs %d resolved round keys, have %d", t, need, len(resolved))
		}
	}

	out := RoundOutcome{Round: t}
	start := a.ch.Encryptions()

	// confirmed[seg] holds the proven pair for segment seg of round key
	// t-1; -1 = not yet proven.
	var confirmed [16]int8
	for i := range confirmed {
		confirmed[i] = -1
	}

	obsShift := a.observableShift()

	for g := 0; g < gift.Segments64; g++ {
		spec := NewTarget64(t, g)

		if prevCands == nil {
			// Crafting needs no hypotheses: earlier rounds are resolved
			// (or this is round 1 and sources are plaintext segments).
			o := a.AttackTarget(spec, resolved[:max(t-1, 0)])
			a.progress("GIFT-64", t, g, o.Converged, o.Line, o.Observations)
			if !o.Converged {
				return out, a.targetErr(spec, o)
			}
			out.Cands[g] = o.Pairs
			continue
		}

		// Enumerate hypotheses for the parents whose wrongness is
		// observable: a wrong pair on the parent feeding index bit j
		// makes that bit vary, which changes the observed line only
		// when j is above the intra-line bits.
		parents := spec.ParentSegments()
		var enumPos []int
		for j := obsShift; j < 4; j++ {
			enumPos = append(enumPos, j)
		}

		options := make([][]uint8, len(enumPos))
		for i, j := range enumPos {
			seg := parents[j]
			if confirmed[seg] >= 0 {
				options[i] = []uint8{uint8(confirmed[seg])}
			} else {
				options[i] = (*prevCands)[seg]
			}
		}

		won := false
		for _, combo := range cartesian(options) {
			pairs := a.baselinePairs(prevCands, &confirmed)
			for i, j := range enumPos {
				pairs[parents[j]] = combo[i]
			}
			rkPrev := roundKeyFromPairs(t-1, pairs)
			rks := append(append([]gift.RoundKey64{}, resolved[:t-2]...), rkPrev)
			o := a.attackTarget(spec, rks, true)
			if !o.Converged {
				if a.overBudget() {
					return out, ErrBudgetExceeded
				}
				continue
			}
			// First (and only) converging combo: confirm the
			// enumerated parents and record round-t candidates.
			for i, j := range enumPos {
				confirmed[parents[j]] = int8(combo[i])
			}
			out.Cands[g] = o.Pairs
			a.progress("GIFT-64", t, g, true, o.Line, o.Observations)
			won = true
			break
		}
		if !won {
			a.progress("GIFT-64", t, g, false, -1, 0)
			return out, fmt.Errorf("core: round %d segment %d: no crafting hypothesis converged (%w)", t, g, ErrNoConvergence)
		}
	}

	if prevCands != nil {
		for seg, c := range confirmed {
			if c < 0 {
				// Every segment feeds index bit 3 of exactly one target,
				// and bit 3 is observable for any line width up to 8
				// words — so full coverage is structural.
				return out, fmt.Errorf("core: round %d left segment %d of round %d unresolved", t, seg, t-1)
			}
			out.ConfirmedPrev[seg] = uint8(confirmed[seg])
		}
		out.PrevResolved = true
	}
	out.Encryptions = a.ch.Encryptions() - start
	return out, nil
}

// baselinePairs picks an arbitrary candidate for every segment
// (confirmed values where available): segments whose hypotheses are
// unobservable for the current target only perturb already-random
// state, so any choice works.
func (a *Attacker) baselinePairs(prevCands *[16][]uint8, confirmed *[16]int8) [16]uint8 {
	var pairs [16]uint8
	for seg := 0; seg < 16; seg++ {
		if confirmed[seg] >= 0 {
			pairs[seg] = uint8(confirmed[seg])
		} else if len(prevCands[seg]) > 0 {
			pairs[seg] = prevCands[seg][0]
		}
	}
	return pairs
}

func (a *Attacker) targetErr(spec TargetSpec, o TargetOutcome) error {
	if a.overBudget() {
		return ErrBudgetExceeded
	}
	return fmt.Errorf("core: round %d segment %d: %d observations, %w",
		spec.Round, spec.Segment, o.Observations, ErrNoConvergence)
}

// cartesian enumerates the cartesian product of the option lists.
func cartesian(options [][]uint8) [][]uint8 {
	combos := [][]uint8{nil}
	for _, opts := range options {
		var next [][]uint8
		for _, c := range combos {
			for _, o := range opts {
				nc := make([]uint8, len(c), len(c)+1)
				copy(nc, c)
				next = append(next, append(nc, o))
			}
		}
		combos = next
	}
	return combos
}

// KeyResult is a completed key recovery.
type KeyResult struct {
	// Key is the recovered 128-bit master key.
	Key bitutil.Word128
	// RoundKeys are the four recovered round keys (rounds 1..4), which
	// together contain every master-key bit exactly once.
	RoundKeys [4]gift.RoundKey64
	// Encryptions is the total victim encryptions consumed (the paper's
	// headline metric: < 400 under the best probing conditions).
	Encryptions uint64
	// RoundsAttacked is how many round passes ran (4 for 1-word lines,
	// 5 when wide lines forced a disambiguation pass).
	RoundsAttacked int
}

// RecoverKey runs the full GRINCH attack: it attacks rounds 1..4 (plus a
// fifth disambiguation pass when the cache line hides index bits) and
// reassembles the 128-bit master key from the four recovered round keys.
func (a *Attacker) RecoverKey() (KeyResult, error) {
	var res KeyResult
	start := a.ch.Encryptions()

	var resolved []gift.RoundKey64
	var pending *[16][]uint8
	passes := 0
	t := 1
	for len(resolved) < 4 {
		if t > 8 {
			return res, fmt.Errorf("core: no resolution after %d round passes", passes)
		}
		passes++
		out, err := a.AttackRound(t, resolved, pending)
		if err != nil {
			return res, err
		}
		if pending != nil {
			resolved = append(resolved, roundKeyFromPairs(t-1, out.ConfirmedPrev))
			pending = nil
		}
		if len(resolved) >= 4 {
			break
		}
		if rk, ok := out.Unique(); ok {
			resolved = append(resolved, rk)
		} else {
			cands := out.Cands
			pending = &cands
		}
		t++
	}

	copy(res.RoundKeys[:], resolved[:4])
	res.Key = AssembleKey(res.RoundKeys)
	res.Encryptions = a.ch.Encryptions() - start
	res.RoundsAttacked = passes
	return res, nil
}

// AssembleKey rebuilds the master key from the first four round keys:
// round t consumes limbs k_{2t-1} (U) and k_{2t-2} (V) of the original
// key state (see gift.ExpandKey64).
func AssembleKey(rks [4]gift.RoundKey64) bitutil.Word128 {
	var key bitutil.Word128
	for t, rk := range rks {
		key = key.SetWord16(uint(2*t), rk.V)
		key = key.SetWord16(uint(2*t+1), rk.U)
	}
	return key
}

// Verify checks a recovered key against one known plaintext/ciphertext
// pair.
func Verify(key bitutil.Word128, pt, ct uint64) bool {
	return gift.NewCipher64FromWord(key).EncryptBlock(pt) == ct
}
