package campaignd

import (
	"encoding/json"
	"reflect"
	"sort"
	"testing"

	"grinch/internal/campaign"
)

// jsonKeys marshals v and returns its top-level keys, sorted.
func jsonKeys(t *testing.T, v any) []string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	m := map[string]any{}
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(m))
	for k := range m { //grinchvet:ignore maporder key collection; sorted on the next line
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TestExpvarSchemas pins the two expvar maps the CLIs publish —
// cmd/campaign's "campaign" variable (campaign.Snapshot) and
// cmd/campaignd's "campaignd" variable (MetricsSnapshot). The names
// differ on purpose (each binary publishes under its own name so both
// can run in one process without colliding), but the key vocabulary is
// the contract: where both maps describe the same thing they use the
// same key. Schemas are documented in DESIGN.md §14; changing either
// struct means updating the doc and this test together.
func TestExpvarSchemas(t *testing.T) {
	wantCampaign := []string{
		"encryptions",
		"in_flight",
		"job_ms_max",
		"job_ms_mean",
		"jobs_done",
		"jobs_failed",
		"jobs_skipped",
		"jobs_total",
		"queue_depth",
	}
	if got := jsonKeys(t, campaign.NewMetrics().Snapshot()); !reflect.DeepEqual(got, wantCampaign) {
		t.Errorf("expvar \"campaign\" keys drifted:\n got %v\nwant %v", got, wantCampaign)
	}

	wantCampaignd := []string{
		"campaigns",
		"campaigns_merged",
		"duplicates",
		"encryptions",
		"eta_seconds",
		"jobs_done",
		"jobs_failed",
		"jobs_per_second",
		"jobs_total",
		"leases_active",
		"leases_issued",
		"reissues",
		"shards",
		"shards_done",
		"shards_leased",
		"shed",
		"suggested_shard_size",
		"uptime_seconds",
		"workers",
	}
	if got := jsonKeys(t, MetricsSnapshot{}); !reflect.DeepEqual(got, wantCampaignd) {
		t.Errorf("expvar \"campaignd\" keys drifted:\n got %v\nwant %v", got, wantCampaignd)
	}

	// The overlap is the shared vocabulary: keys present in both maps
	// must mean the same thing, so the sets are pinned here too.
	wantShared := []string{"encryptions", "jobs_done", "jobs_failed", "jobs_total"}
	in := func(ks []string, k string) bool {
		for _, x := range ks {
			if x == k {
				return true
			}
		}
		return false
	}
	for _, k := range wantShared {
		if !in(wantCampaign, k) || !in(wantCampaignd, k) {
			t.Errorf("shared expvar key %q missing from one of the maps", k)
		}
	}
}
