package core

import (
	"testing"

	"grinch/internal/bitutil"
	"grinch/internal/gift"
	"grinch/internal/rng"
)

func TestSourceBitMatchesTargetPosition(t *testing.T) {
	// GIFT's permutation preserves the bit position within a segment,
	// so the source feeding target index bit j must be S-box output bit
	// j of its segment. The attack's observability analysis depends on
	// this invariant.
	for round := 1; round <= 4; round++ {
		for g := 0; g < 16; g++ {
			spec := NewTarget64(round, g)
			for j, src := range spec.Sources {
				if src.Bit != j {
					t.Fatalf("round %d segment %d: source %d has bit %d", round, g, j, src.Bit)
				}
			}
		}
	}
}

func TestSourcesAreDistinctSegments(t *testing.T) {
	for g := 0; g < 16; g++ {
		spec := NewTarget64(1, g)
		seen := map[int]bool{}
		for _, src := range spec.Sources {
			if seen[src.Segment] {
				t.Fatalf("segment %d: duplicate source segment %d", g, src.Segment)
			}
			seen[src.Segment] = true
		}
	}
}

func TestEverySegmentFeedsEveryBitPositionOnce(t *testing.T) {
	// Across the 16 targets of one round, each source segment must
	// appear exactly once per bit position — the coverage property that
	// lets one round pass resolve all previous-round hypotheses.
	for j := 0; j < 4; j++ {
		seen := map[int]int{}
		for g := 0; g < 16; g++ {
			spec := NewTarget64(2, g)
			seen[spec.Sources[j].Segment]++
		}
		for seg := 0; seg < 16; seg++ {
			if seen[seg] != 1 {
				t.Fatalf("bit %d: segment %d feeds %d targets, want 1", j, seg, seen[seg])
			}
		}
	}
}

func TestSBoxBitListsHaveEightEntries(t *testing.T) {
	for j := 0; j < 4; j++ {
		list := sboxBitList(j)
		if len(list) != 8 {
			t.Fatalf("bit %d: %d valid inputs, want 8 (balanced S-box)", j, len(list))
		}
		for _, x := range list {
			if gift.SBox[x]>>j&1 != 1 {
				t.Fatalf("bit %d: input %#x does not set the bit", j, x)
			}
		}
	}
}

// TestCraftedStatePinsTargetIndex is the heart of Algorithm 1+2: for a
// crafted round-1 plaintext, the round-2 S-box index at the target
// segment must equal ExpectedIndex for the victim's actual key bits,
// for every target segment and many random keys.
func TestCraftedStatePinsTargetIndex(t *testing.T) {
	r := rng.New(42)
	for trial := 0; trial < 20; trial++ {
		key := bitutil.Word128{Lo: r.Uint64(), Hi: r.Uint64()}
		c := gift.NewCipher64FromWord(key)
		rk1 := c.RoundKeys()[0]
		for g := 0; g < 16; g++ {
			spec := NewTarget64(1, g)
			for rep := 0; rep < 5; rep++ {
				pt := spec.CraftPlaintext(r, nil)
				states := c.SBoxInputs(pt)
				got := uint8(bitutil.Nibble(states[1], uint(g)))
				v := uint8(rk1.V >> g & 1)
				u := uint8(rk1.U >> g & 1)
				if want := spec.ExpectedIndex(v, u); got != want {
					t.Fatalf("key trial %d segment %d: round-2 index %#x, want %#x", trial, g, got, want)
				}
			}
		}
	}
}

// TestCraftedStateLaterRounds checks the pinning for rounds 2..4 when
// the earlier round keys are known exactly.
func TestCraftedStateLaterRounds(t *testing.T) {
	r := rng.New(7)
	key := bitutil.Word128{Lo: 0x0123456789abcdef, Hi: 0xfedcba9876543210}
	c := gift.NewCipher64FromWord(key)
	rks := c.RoundKeys()
	for round := 2; round <= 4; round++ {
		rkT := rks[round-1]
		for g := 0; g < 16; g++ {
			spec := NewTarget64(round, g)
			for rep := 0; rep < 3; rep++ {
				pt := spec.CraftPlaintext(r, rks[:round-1])
				states := c.SBoxInputs(pt)
				got := uint8(bitutil.Nibble(states[round], uint(g)))
				v := uint8(rkT.V >> g & 1)
				u := uint8(rkT.U >> g & 1)
				if want := spec.ExpectedIndex(v, u); got != want {
					t.Fatalf("round %d segment %d: index %#x, want %#x", round, g, got, want)
				}
			}
		}
	}
}

func TestKeyBitsRoundTrip(t *testing.T) {
	for round := 1; round <= 5; round++ {
		for g := 0; g < 16; g++ {
			spec := NewTarget64(round, g)
			for p := uint8(0); p < 4; p++ {
				v, u := p&1, p>>1
				gotV, gotU := spec.KeyBits(spec.ExpectedIndex(v, u))
				if gotV != v || gotU != u {
					t.Fatalf("round %d seg %d pair %d: KeyBits=(%d,%d)", round, g, p, gotV, gotU)
				}
			}
		}
	}
}

func TestPairsForLine(t *testing.T) {
	spec := NewTarget64(1, 3)
	// Line width 1: every pair maps to its own index/line.
	for p := uint8(0); p < 4; p++ {
		line := int(spec.ExpectedIndex(p&1, p>>1))
		pairs := spec.PairsForLine(line, 1)
		if len(pairs) != 1 || pairs[0] != p {
			t.Fatalf("width 1 pair %d: pairs=%v", p, pairs)
		}
	}
	// Width 2 hides bit 0: two pairs per line.
	line := int(spec.ExpectedIndex(0, 0)) / 2
	if got := spec.PairsForLine(line, 2); len(got) != 2 {
		t.Fatalf("width 2: %d pairs, want 2", len(got))
	}
	// Width 4 hides bits 0-1: all four pairs share the line.
	line = int(spec.ExpectedIndex(0, 0)) / 4
	if got := spec.PairsForLine(line, 4); len(got) != 4 {
		t.Fatalf("width 4: %d pairs, want 4", len(got))
	}
}

func TestConstXorMatchesSpread(t *testing.T) {
	// Cross-check ConstXor against the real AddRoundKey: encrypt with a
	// zero round key and observe the constant's effect.
	for round := 1; round <= 6; round++ {
		rk := gift.RoundKey64{Const: gift.RoundConstants[round-1]}
		state := gift.AddRoundKey64(0, rk)
		for g := 0; g < 16; g++ {
			spec := NewTarget64(round, g)
			nib := uint8(bitutil.Nibble(state, uint(g)))
			if nib != spec.ConstXor {
				t.Fatalf("round %d segment %d: spread nibble %#x, ConstXor %#x", round, g, nib, spec.ConstXor)
			}
		}
	}
}

func TestNewTarget64PanicsOutOfRange(t *testing.T) {
	for _, fn := range []func(){
		func() { NewTarget64(0, 0) },
		func() { NewTarget64(29, 0) },
		func() { NewTarget64(1, -1) },
		func() { NewTarget64(1, 16) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestCraftPlaintextRandomizesOtherSegments(t *testing.T) {
	r := rng.New(9)
	spec := NewTarget64(1, 0)
	pinned := map[int]bool{}
	for _, src := range spec.Sources {
		pinned[src.Segment] = true
	}
	// Any non-source segment should take many distinct values across
	// crafts.
	values := map[uint64]bool{}
	var freeSeg uint = 0
	for seg := uint(0); seg < 16; seg++ {
		if !pinned[int(seg)] {
			freeSeg = seg
			break
		}
	}
	for i := 0; i < 200; i++ {
		pt := spec.CraftPlaintext(r, nil)
		values[bitutil.Nibble(pt, freeSeg)] = true
	}
	if len(values) < 12 {
		t.Fatalf("free segment took only %d distinct values in 200 crafts", len(values))
	}
}
