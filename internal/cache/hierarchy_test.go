package cache

import "testing"

func testHierarchy(t *testing.T, inclusive bool) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(
		Config{Sets: 16, Ways: 2, LineBytes: 1, HitLatency: 1, MissLatency: 0, FlushLatency: 1},
		PaperConfig(1),
		inclusive,
		100,
	)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHierarchyLevels(t *testing.T) {
	h := testHierarchy(t, true)
	// Cold: DRAM fill through both levels.
	if r := h.VictimAccess(0x10); r.Level != 3 {
		t.Fatalf("cold access level %d", r.Level)
	}
	// Warm in L1.
	if r := h.VictimAccess(0x10); r.Level != 1 {
		t.Fatalf("warm access level %d", r.Level)
	}
	// Evict from L1 only (conflict): 2-way L1, 16 sets, stride 16.
	h.VictimAccess(0x10 + 16)
	h.VictimAccess(0x10 + 32)
	if r := h.VictimAccess(0x10); r.Level != 2 {
		t.Fatalf("L1-evicted line came from level %d, want 2 (L2)", r.Level)
	}
}

func TestHierarchyLatencyAccumulates(t *testing.T) {
	h := testHierarchy(t, true)
	cold := h.VictimAccess(0x40).Latency
	warm := h.VictimAccess(0x40).Latency
	if cold <= warm {
		t.Fatalf("cold %d not slower than warm %d", cold, warm)
	}
	if cold < 100 {
		t.Fatalf("cold access latency %d missing the DRAM cost", cold)
	}
}

func TestInclusiveFlushReachesVictimL1(t *testing.T) {
	h := testHierarchy(t, true)
	h.VictimAccess(0x20)
	h.AttackerFlushLine(0x20)
	if h.VictimL1.Contains(0x20) {
		t.Fatal("inclusive flush left the victim L1 copy")
	}
	if r := h.VictimAccess(0x20); r.Level != 3 {
		t.Fatalf("post-flush access level %d, want 3", r.Level)
	}
}

func TestNonInclusiveFlushLeavesVictimL1(t *testing.T) {
	h := testHierarchy(t, false)
	h.VictimAccess(0x20)
	h.AttackerFlushLine(0x20)
	if !h.VictimL1.Contains(0x20) {
		t.Fatal("non-inclusive flush invalidated the private L1")
	}
	// The victim now hits its L1 — the access never reaches L2, so the
	// attacker's next probe sees nothing. This is the future-work
	// finding: a private L1 behind a non-inclusive L2 starves the
	// attack of signal.
	if r := h.VictimAccess(0x20); r.Level != 1 {
		t.Fatalf("post-flush access level %d, want 1", r.Level)
	}
	if h.AttackerProbeLine(0x20) {
		t.Fatal("L2 probe observed an access that stayed in the private L1")
	}
}

func TestAttackerProbeObservesFirstTouch(t *testing.T) {
	h := testHierarchy(t, true)
	h.AttackerFlushLine(0x33)
	if h.AttackerProbeLine(0x33) {
		t.Fatal("flushed line reported resident")
	}
	h.AttackerFlushLine(0x33) // probe rewarmed it; flush again
	h.VictimAccess(0x33)
	if !h.AttackerProbeLine(0x33) {
		t.Fatal("victim fill not visible in shared L2")
	}
}

func TestInclusiveL2EvictionBackInvalidates(t *testing.T) {
	// Fill one L2 set completely and force an eviction; the victim's L1
	// copy of the evicted line must go too under inclusion.
	l1 := Config{Sets: 1, Ways: 32, LineBytes: 1, HitLatency: 1, MissLatency: 0, FlushLatency: 1}
	l2 := Config{Sets: 1, Ways: 2, LineBytes: 1, HitLatency: 4, MissLatency: 0, FlushLatency: 1}
	h, err := NewHierarchy(l1, l2, true, 50)
	if err != nil {
		t.Fatal(err)
	}
	h.VictimAccess(0) // resident in L1 and L2
	h.VictimAccess(1)
	h.VictimAccess(2) // L2 evicts line 0 (LRU) → back-invalidate
	if h.VictimL1.Contains(0) {
		t.Fatal("inclusive L2 eviction left a stale L1 copy")
	}
}

func TestNewHierarchyValidation(t *testing.T) {
	bad := Config{Sets: 3, Ways: 1, LineBytes: 1}
	if _, err := NewHierarchy(bad, PaperConfig(1), true, 10); err == nil {
		t.Fatal("bad L1 accepted")
	}
	if _, err := NewHierarchy(PaperConfig(1), bad, true, 10); err == nil {
		t.Fatal("bad L2 accepted")
	}
}
