package soc

import (
	"testing"

	"grinch/internal/bitutil"
	"grinch/internal/core"
	"grinch/internal/gift"
)

// The Prime+Probe platform path models the attacker WITHOUT a flush
// instruction (the paper lists flushing as an optional capability,
// §III-B): the table's cache sets are primed with attacker lines and
// victim activity shows up as evictions.

func ppParams(mhz uint64) Params {
	p := DefaultParams(mhz)
	p.Primitive = PrimitivePrimeProbe
	return p
}

func TestPrimeProbeSessionObservesVictim(t *testing.T) {
	s := NewSingleSoC(testKey, ppParams(10))
	sess := s.RunSession(0x0123456789abcdef)
	if len(sess.Windows) == 0 {
		t.Fatal("no probe windows")
	}
	union := 0
	for _, w := range sess.Windows {
		union |= int(w.Set)
		if w.Set.Count() > 16 {
			t.Fatalf("window %v exceeds the table", w.Set)
		}
	}
	if union == 0 {
		t.Fatal("Prime+Probe attacker saw no victim activity")
	}
}

func TestPrimeProbeCiphertextCorrect(t *testing.T) {
	s := NewSingleSoC(testKey, ppParams(10))
	pt := uint64(0x1111222233334444)
	sess := s.RunSession(pt)
	want := gift.NewCipher64FromWord(testKey).EncryptBlock(pt)
	if sess.Ciphertext != want {
		t.Fatalf("ciphertext %016x, want %016x", sess.Ciphertext, want)
	}
}

func TestPrimeProbeEarliestRoundMatchesFlushReload(t *testing.T) {
	// The probing race is scheduler-bound, not primitive-bound: both
	// primitives land their first probe in the same round.
	for _, mhz := range []uint64{10, 25, 50} {
		fr := NewSingleSoC(testKey, DefaultParams(mhz)).EarliestProbeRound()
		pp := NewSingleSoC(testKey, ppParams(mhz)).EarliestProbeRound()
		if fr != pp {
			t.Errorf("%d MHz: F+R round %d, P+P round %d", mhz, fr, pp)
		}
	}
}

func TestFirstRoundAttackOverPrimeProbeSoC(t *testing.T) {
	key := bitutil.Word128{Lo: 0x2468ace013579bdf, Hi: 0x0f1e2d3c4b5a6978}
	ch := &PlatformChannel{P: NewSingleSoC(key, ppParams(10)), LineBytes: 1}
	a, err := core.NewAttacker(ch, core.Config{Seed: 8, TotalBudget: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	out, err := a.AttackRound(1, nil, nil)
	if err != nil {
		t.Fatalf("Prime+Probe attack failed: %v", err)
	}
	rk, ok := out.Unique()
	if !ok {
		t.Fatal("ambiguity at 1-word lines")
	}
	want := gift.ExpandKey64(key)[0]
	if rk.U != want.U || rk.V != want.V {
		t.Fatal("recovered round key mismatch")
	}
	t.Logf("Prime+Probe single-SoC first round: %d encryptions", out.Encryptions)
}
