// Package sim is a small deterministic discrete-event simulation kernel.
// It drives every platform model in this repository (bus, NoC, RTOS,
// SoC): components schedule callbacks on a virtual clock, and concurrent
// actors (victim, attacker, routers) are written as coroutine-style
// processes that block on virtual time and message queues.
//
// Determinism: exactly one process runs at a time, handed control by the
// kernel in strict (time, schedule-order) sequence, so a simulation's
// outcome is a pure function of its inputs — no real-time or goroutine
// scheduling effects leak in. Virtual time is in picoseconds, which
// divides every clock period of interest exactly (10 MHz = 100 000 ps).
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"sync/atomic"
)

// Time is virtual time in picoseconds.
type Time uint64

// Common time units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats a time with a readable unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", uint64(t))
	}
}

// Clock converts between cycles and virtual time for one clock domain.
type Clock struct {
	// Period is the duration of one cycle.
	Period Time
}

// ClockMHz builds a clock from a frequency in MHz. One cycle at f MHz is
// 10⁶/f picoseconds; frequencies that do not divide 10⁶ are rejected so
// no rounding error can accumulate over a simulation.
func ClockMHz(mhz uint64) Clock {
	if mhz == 0 || 1_000_000%mhz != 0 {
		panic(fmt.Sprintf("sim: frequency %d MHz has no exact picosecond period", mhz))
	}
	return Clock{Period: Time(1_000_000 / mhz)}
}

// Cycles converts a cycle count to a duration.
func (c Clock) Cycles(n uint64) Time { return Time(n) * c.Period }

// CyclesAt returns how many full cycles fit in d.
func (c Clock) CyclesAt(d Time) uint64 { return uint64(d / c.Period) }

// Event is a scheduled callback. The zero value is inert.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	index     int // heap index; -1 when not queued
	cancelled bool
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel owns the virtual clock and the event queue.
type Kernel struct {
	now      Time
	seq      uint64
	events   eventHeap
	procs    []*Proc
	stopping bool
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Schedule runs fn after delay. Events scheduled for the same instant run
// in scheduling order.
func (k *Kernel) Schedule(delay Time, fn func()) *Event {
	return k.At(k.now+delay, fn)
}

// At runs fn at absolute time t, which must not be in the past.
func (k *Kernel) At(t Time, fn func()) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling into the past (%v < %v)", t, k.now))
	}
	k.seq++
	e := &Event{at: t, seq: k.seq, fn: fn, index: -1}
	heap.Push(&k.events, e)
	return e
}

// Cancel removes a pending event. Cancelling a fired or already-cancelled
// event is a no-op.
func (k *Kernel) Cancel(e *Event) {
	if e == nil || e.cancelled {
		return
	}
	e.cancelled = true
	if e.index >= 0 {
		heap.Remove(&k.events, e.index)
	}
}

// Step fires the next event, if any, and reports whether one fired.
func (k *Kernel) Step() bool {
	for k.events.Len() > 0 {
		e := heap.Pop(&k.events).(*Event)
		if e.cancelled {
			continue
		}
		k.now = e.at
		e.fn()
		return true
	}
	return false
}

// Run fires events until the queue drains (or Stop is called). Processes
// blocked forever on queues do not keep Run alive; a drained queue with
// parked processes is the simulation's deadlock/quiescence state.
func (k *Kernel) Run() {
	for !k.stopping && k.Step() {
	}
	k.finish()
}

// RunUntil fires events up to and including time t, then sets the clock
// to t.
func (k *Kernel) RunUntil(t Time) {
	for !k.stopping && k.events.Len() > 0 {
		if k.events[0].at > t {
			break
		}
		k.Step()
	}
	if k.now < t {
		k.now = t
	}
	if k.stopping {
		k.finish()
	}
}

// Stop makes Run/RunUntil return after the current event and terminates
// all parked processes.
func (k *Kernel) Stop() { k.stopping = true }

// finish tears down parked processes so their goroutines exit.
func (k *Kernel) finish() {
	k.stopping = true
	for _, p := range k.procs {
		p.kill()
	}
	k.procs = nil
}

// errKilled aborts a process body when the kernel shuts down.
var errKilled = errors.New("sim: process killed")

// Proc is a coroutine-style simulation process. Its body runs on its own
// goroutine but never concurrently with the kernel or another process:
// control passes explicitly through Wait and queue operations.
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{}
	parked chan struct{}
	// dead is atomic: a process marks itself dead on its own goroutine
	// while the kernel may concurrently kill() it during shutdown.
	dead   atomic.Bool
	killed chan struct{}
}

// Spawn starts a process at the current time. The body begins executing
// when the kernel reaches the spawn event.
func (k *Kernel) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{
		k:      k,
		name:   name,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
		killed: make(chan struct{}),
	}
	k.procs = append(k.procs, p)
	k.Schedule(0, func() {
		go func() {
			defer func() {
				if r := recover(); r != nil && r != errKilled {
					panic(r)
				}
				p.dead.Store(true)
				select {
				case p.parked <- struct{}{}:
				case <-p.killed:
				}
			}()
			<-p.resume
			body(p)
		}()
		p.dispatch()
	})
	return p
}

// dispatch hands control to the process and waits for it to park or die.
// Runs on the kernel's goroutine.
func (p *Proc) dispatch() {
	if p.dead.Load() {
		return
	}
	p.resume <- struct{}{}
	<-p.parked
}

// park returns control to the kernel; the process blocks until its next
// resume event fires.
func (p *Proc) park() {
	p.parked <- struct{}{}
	select {
	case <-p.resume:
	case <-p.killed:
		panic(errKilled)
	}
}

// kill terminates a parked process goroutine.
func (p *Proc) kill() {
	if p.dead.Swap(true) {
		return
	}
	close(p.killed)
}

// Name returns the process name (for traces).
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Wait suspends the process for d of virtual time.
func (p *Proc) Wait(d Time) {
	p.k.Schedule(d, p.dispatch)
	p.park()
}

// WaitUntil suspends the process until absolute time t (no-op if t has
// passed).
func (p *Proc) WaitUntil(t Time) {
	if t <= p.k.now {
		return
	}
	p.Wait(t - p.k.now)
}

// Queue is an unbounded FIFO channel between simulation processes.
// Send never blocks; Recv blocks the calling process until a value is
// available. Values are delivered in send order, and competing receivers
// are served in arrival order.
type Queue[T any] struct {
	k       *Kernel
	items   []T
	waiters []*Proc
}

// NewQueue creates a queue bound to kernel k.
func NewQueue[T any](k *Kernel) *Queue[T] {
	return &Queue[T]{k: k}
}

// Len returns the number of buffered values.
func (q *Queue[T]) Len() int { return len(q.items) }

// Send enqueues v and wakes the oldest waiting receiver, if any. Send may
// be called from process context or from a plain event callback.
func (q *Queue[T]) Send(v T) {
	q.items = append(q.items, v)
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.k.Schedule(0, w.dispatch)
	}
}

// Recv dequeues the next value, blocking p until one arrives.
func (q *Queue[T]) Recv(p *Proc) T {
	for len(q.items) == 0 {
		q.waiters = append(q.waiters, p)
		p.park()
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v
}

// TryRecv dequeues a value without blocking; ok is false when empty.
func (q *Queue[T]) TryRecv() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	return v, true
}
