package campaign

import (
	"encoding/json"
	"sync"
	"sync/atomic"

	"grinch/internal/stats"
)

// Metrics counts what a running campaign is doing. All methods are safe
// for concurrent use; the runner updates them from every worker. The
// String method renders the current snapshot as JSON, which makes
// *Metrics satisfy the standard library's expvar.Var interface — a
// caller that serves /debug/vars can expvar.Publish it directly, and
// sinks or progress tickers can serialize the same snapshot.
type Metrics struct {
	jobsTotal   atomic.Uint64
	jobsDone    atomic.Uint64
	jobsFailed  atomic.Uint64
	jobsSkipped atomic.Uint64
	encryptions atomic.Uint64
	queueDepth  atomic.Int64
	inFlight    atomic.Int64

	mu  sync.Mutex
	dur stats.Accum // per-job wall durations, milliseconds
}

// NewMetrics returns a zeroed metrics set.
func NewMetrics() *Metrics { return &Metrics{} }

// Snapshot is a point-in-time copy of the counters, flat and
// JSON-serializable.
type Snapshot struct {
	// JobsTotal is the grid size; JobsDone counts executed jobs this
	// run (failures included); JobsSkipped counts journal-resumed jobs.
	// JobsFailed counts each failed job in the grid exactly once:
	// failures replayed from the journal plus failures executed this
	// run — a resumed job is never double-counted.
	JobsTotal   uint64 `json:"jobs_total"`
	JobsDone    uint64 `json:"jobs_done"`
	JobsFailed  uint64 `json:"jobs_failed"`
	JobsSkipped uint64 `json:"jobs_skipped"`
	// Encryptions is the victim-encryption total across executed jobs.
	Encryptions uint64 `json:"encryptions"`
	// QueueDepth is jobs expanded but not yet picked up by a worker;
	// InFlight is jobs currently executing.
	QueueDepth int64 `json:"queue_depth"`
	InFlight   int64 `json:"in_flight"`
	// Per-job wall-clock duration statistics, in milliseconds.
	JobMSMean float64 `json:"job_ms_mean"`
	JobMSMax  float64 `json:"job_ms_max"`
}

// Snapshot returns the current counter values.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	mean, max := m.dur.Mean(), m.dur.Max()
	m.mu.Unlock()
	return Snapshot{
		JobsTotal:   m.jobsTotal.Load(),
		JobsDone:    m.jobsDone.Load(),
		JobsFailed:  m.jobsFailed.Load(),
		JobsSkipped: m.jobsSkipped.Load(),
		Encryptions: m.encryptions.Load(),
		QueueDepth:  m.queueDepth.Load(),
		InFlight:    m.inFlight.Load(),
		JobMSMean:   mean,
		JobMSMax:    max,
	}
}

// String renders the snapshot as JSON (expvar.Var compatible).
func (m *Metrics) String() string {
	b, err := json.Marshal(m.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}

// begin seeds the counters for a run. priorFailed is how many of the
// skipped (journal-replayed) jobs had failed: seeding jobsFailed with
// it — instead of re-counting replays as they pass through the sinks —
// is what keeps a resumed failure counted exactly once.
func (m *Metrics) begin(total, skipped, priorFailed int) {
	m.jobsTotal.Store(uint64(total))
	m.jobsSkipped.Store(uint64(skipped))
	m.jobsFailed.Store(uint64(priorFailed))
	m.queueDepth.Store(int64(total - skipped))
}

func (m *Metrics) jobStarted() {
	m.queueDepth.Add(-1)
	m.inFlight.Add(1)
}

func (m *Metrics) jobFinished(r Result) {
	m.inFlight.Add(-1)
	m.jobsDone.Add(1)
	if r.Failed {
		m.jobsFailed.Add(1)
	}
	m.encryptions.Add(r.Encryptions)
	m.mu.Lock()
	m.dur.Add(float64(r.DurationNS) / 1e6)
	m.mu.Unlock()
}

// drainQueue zeroes the queue after a cancellation so a final snapshot
// does not report phantom pending work.
func (m *Metrics) drainQueue() { m.queueDepth.Store(0) }
