package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"grinch/internal/obs"
)

// -update regenerates the golden files from testdata/trace.jsonl:
//
//	go test ./internal/obs/report -update
//
// The fixture itself is regenerated separately (go run gen_fixture.go),
// so attack-internals changes never silently rewrite these goldens.
var update = flag.Bool("update", false, "rewrite golden files")

func loadFixture(t *testing.T) []obs.Event {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", "trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("fixture trace is empty")
	}
	return events
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs/report -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestTableGolden(t *testing.T) {
	segs := Fold(loadFixture(t))
	var buf bytes.Buffer
	if err := WriteTable(&buf, segs); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table.golden", buf.Bytes())
}

func TestCurvesGolden(t *testing.T) {
	segs := Fold(loadFixture(t))
	var buf bytes.Buffer
	if err := WriteCurves(&buf, segs); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "curves.golden", buf.Bytes())
}

func TestCurveCSVGolden(t *testing.T) {
	segs := Fold(loadFixture(t))
	var buf bytes.Buffer
	if err := WriteCurveCSV(&buf, segs); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "curves_csv.golden", buf.Bytes())
}

func TestFoldGroupsByJobAndSegment(t *testing.T) {
	segs := Fold(loadFixture(t))
	if len(segs) != 2 {
		t.Fatalf("fixture folded into %d segments, want 2", len(segs))
	}
	for i, s := range segs {
		if s.Key.Job != i || s.Key.Segment != i {
			t.Fatalf("segment %d has key %+v", i, s.Key)
		}
		if !s.Recovered {
			t.Fatalf("segment %d not recovered: %+v", i, s.Key)
		}
		if len(s.Curve) == 0 || s.Curve[len(s.Curve)-1].Survivors != 1 {
			t.Fatalf("segment %d curve did not end at one survivor", i)
		}
	}
}

func TestRenderIsDeterministic(t *testing.T) {
	events := loadFixture(t)
	render := func() string {
		var buf bytes.Buffer
		segs := Fold(events)
		_ = WriteTable(&buf, segs)
		_ = WriteCurves(&buf, segs)
		_ = WriteCurveCSV(&buf, segs)
		return buf.String()
	}
	if render() != render() {
		t.Fatal("rendering the same trace twice produced different bytes")
	}
}

func TestFoldFaultsAggregatesRecoveryActions(t *testing.T) {
	events := []obs.Event{
		{Kind: obs.KindFaultInjected, Job: 1, Fault: "drop", Enc: 3},
		{Kind: obs.KindFaultInjected, Job: 0, Fault: "burst", Enc: 5},
		{Kind: obs.KindFaultInjected, Job: 0, Fault: "burst", Enc: 6},
		{Kind: obs.KindRetry, Job: 0, Attempt: 1, SimPS: 400},
		{Kind: obs.KindRetry, Job: 0, Attempt: 2, SimPS: 800},
		{Kind: obs.KindTargetRestarted, Job: 1, Attempt: 1, Threshold: 0.9},
		{Kind: obs.KindTargetRestarted, Job: 1, Attempt: 2, Threshold: 0.81},
		{Kind: obs.KindEncryptionEnd, Job: 0, Enc: 9},
	}
	sums := FoldFaults(events)
	if len(sums) != 2 {
		t.Fatalf("got %d summaries, want 2", len(sums))
	}
	if s := sums[0]; s.Job != 0 || s.Injected["burst"] != 2 || s.Retries != 2 || s.BackoffPS != 1200 || s.Restarts != 0 {
		t.Fatalf("job 0 summary %+v", s)
	}
	if s := sums[1]; s.Job != 1 || s.Injected["drop"] != 1 || s.Restarts != 2 || s.FinalThreshold != 0.81 {
		t.Fatalf("job 1 summary %+v", s)
	}
	var buf bytes.Buffer
	if err := WriteFaultTable(&buf, sums); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"BURST", "DROP", "RETRIES", "RESTARTS", "0.81"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fault table missing %q:\n%s", want, out)
		}
	}
	// Faultless traces fold to nothing, so traceview can refuse cleanly.
	if got := FoldFaults([]obs.Event{{Kind: obs.KindEncryptionEnd}}); len(got) != 0 {
		t.Fatalf("faultless trace folded to %d summaries", len(got))
	}
}

func TestFoldMetricsRollsUpPerJob(t *testing.T) {
	events := []obs.Event{
		{Kind: obs.KindEncryptionStart, Job: 1, Enc: 1},
		{Kind: obs.KindEncryptionStart, Job: 0, Enc: 1},
		{Kind: obs.KindEncryptionStart, Job: 0, Enc: 2},
		{Kind: obs.KindProbeObservation, Job: 0, Enc: 2},
		{Kind: obs.KindCandidateUpdate, Job: 0, Cipher: "GIFT-64", Round: 1, Segment: 0, Survivors: 4},
		{Kind: obs.KindCandidateUpdate, Job: 0, Cipher: "GIFT-64", Round: 1, Segment: 0, Survivors: 1},
		{Kind: obs.KindCandidateUpdate, Job: 0, Cipher: "GIFT-64", Round: 1, Segment: 1, Survivors: 2},
		{Kind: obs.KindSegmentRecovered, Job: 0, Cipher: "GIFT-64", Round: 1, Segment: 0, Line: 7},
		{Kind: obs.KindRetry, Job: 1, Attempt: 1},
		{Kind: obs.KindTargetRestarted, Job: 1, Attempt: 1, Threshold: 0.9},
		{Kind: obs.KindFaultInjected, Job: 1, Fault: "burst"},
	}
	sums := FoldMetrics(events)
	if len(sums) != 2 {
		t.Fatalf("got %d summaries, want 2", len(sums))
	}
	if s := sums[0]; s.Job != 0 || s.Encryptions != 2 || s.Probes != 1 ||
		s.Observations != 3 || s.Segments != 2 || s.Recovered != 1 {
		t.Fatalf("job 0 summary %+v", s)
	}
	if s := sums[1]; s.Job != 1 || s.Encryptions != 1 || s.Retries != 1 ||
		s.Restarts != 1 || s.Faults != 1 || s.Segments != 0 {
		t.Fatalf("job 1 summary %+v", s)
	}
	var buf bytes.Buffer
	if err := WriteMetricsTable(&buf, sums); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SEGMENTS", "RECOVERED", "FAULTS"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("metrics table missing %q:\n%s", want, buf.String())
		}
	}
}

func TestMetricsGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMetricsTable(&buf, FoldMetrics(loadFixture(t))); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.golden", buf.Bytes())
}

func TestFoldCacheTakesLastSnapshotPerJob(t *testing.T) {
	events := []obs.Event{
		{Kind: obs.KindCacheSnapshot, Job: 1, Hits: 1, Misses: 2},
		{Kind: obs.KindCacheSnapshot, Job: 0, Hits: 5, Misses: 6, Evictions: 1},
		{Kind: obs.KindCacheSnapshot, Job: 1, Hits: 10, Misses: 20, Flushes: 3, FlushedLines: 2},
		{Kind: obs.KindEncryptionEnd, Job: 0, Enc: 9},
	}
	sums := FoldCache(events)
	if len(sums) != 2 {
		t.Fatalf("got %d summaries, want 2", len(sums))
	}
	if sums[0].Job != 0 || sums[0].Hits != 5 || sums[0].Evictions != 1 {
		t.Fatalf("job 0 summary %+v", sums[0])
	}
	if sums[1].Job != 1 || sums[1].Hits != 10 || sums[1].FlushedLines != 2 {
		t.Fatalf("job 1 summary lost the last snapshot: %+v", sums[1])
	}
	var buf bytes.Buffer
	if err := WriteCacheTable(&buf, sums); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FLUSHED_LINES") {
		t.Fatalf("cache table header missing: %q", buf.String())
	}
}
