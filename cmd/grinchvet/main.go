// Command grinchvet is the repository's static analyzer: it proves
// which cipher implementations perform secret-dependent memory accesses
// (the property the GRINCH attack exploits) and polices the
// determinism contract of the campaign/simulation core.
//
// Usage:
//
//	grinchvet [flags] [patterns]
//
//	go run ./cmd/grinchvet ./...            # whole module, text output
//	go run ./cmd/grinchvet -json ./...      # machine-readable findings
//	go run ./cmd/grinchvet ./internal/gift  # one package
//	go run ./cmd/grinchvet -write-baseline ./...   # accept current findings
//
// Exit status: 0 when every finding is covered by the baseline (or
// there are none), 1 when new findings exist, 2 on load/usage errors.
//
// The analyzer is stdlib-only (go/parser + go/types); it loads the
// module itself and never shells out to the go tool, so it runs
// identically in CI and offline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"grinch/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jsonOut       = flag.Bool("json", false, "emit findings as a JSON array")
		baselinePath  = flag.String("baseline", "", "baseline file gating the exit status (default: grinchvet.baseline at the module root, if present)")
		writeBaseline = flag.Bool("write-baseline", false, "write the current findings to the baseline file and exit 0")
		rules         = flag.String("rules", "", "comma-separated rule filter (default: all rules)")
		detPkgs       = flag.String("det", strings.Join(analysis.DefaultDeterministicPkgs(), ","), "comma-separated module-relative package trees bound by determinism rules")
		verbose       = flag.Bool("v", false, "list analyzed packages and baseline statistics")
	)
	flag.Parse()

	world, err := analysis.LoadModule(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "grinchvet:", err)
		return 2
	}
	pkgs := world.Match(flag.Args())
	if len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "grinchvet: no packages match", flag.Args())
		return 2
	}
	if *verbose {
		for _, p := range pkgs {
			fmt.Fprintln(os.Stderr, "analyzing", p.Path)
		}
	}

	cfg := analysis.Config{DeterministicPkgs: splitList(*detPkgs)}
	if *rules != "" {
		cfg.Rules = splitList(*rules)
	}
	findings := analysis.Analyze(world, pkgs, cfg)

	// Resolve the baseline: explicit flag wins; otherwise the module
	// default applies when the file exists.
	bpath := *baselinePath
	if bpath == "" {
		def := filepath.Join(world.Root, "grinchvet.baseline")
		if _, err := os.Stat(def); err == nil {
			bpath = def
		}
	}

	if *writeBaseline {
		if bpath == "" {
			bpath = filepath.Join(world.Root, "grinchvet.baseline")
		}
		if err := analysis.WriteBaseline(bpath, world.Root, findings); err != nil {
			fmt.Fprintln(os.Stderr, "grinchvet:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "grinchvet: wrote %d finding(s) to %s\n", len(findings), bpath)
		return 0
	}

	fresh := findings
	var stale []string
	if bpath != "" {
		base, err := analysis.ReadBaseline(bpath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "grinchvet:", err)
			return 2
		}
		fresh, stale = analysis.Diff(findings, base, world.Root)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "grinchvet:", err)
			return 2
		}
	} else {
		for _, f := range fresh {
			fmt.Println(f.String())
		}
	}

	// Stale entries are only meaningful when the whole module was
	// analyzed; a package subset legitimately misses the other
	// packages' baselined findings.
	if len(pkgs) == len(world.Pkgs) {
		for _, s := range stale {
			fmt.Fprintf(os.Stderr, "grinchvet: stale baseline entry (no longer produced): %s\n", strings.ReplaceAll(s, "\t", " | "))
		}
	} else {
		stale = nil
	}
	if *verbose || len(fresh) > 0 {
		fmt.Fprintf(os.Stderr, "grinchvet: %d finding(s), %d new, %d baselined, %d stale\n",
			len(findings), len(fresh), len(findings)-len(fresh), len(stale))
	}
	if len(fresh) > 0 {
		return 1
	}
	return 0
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
