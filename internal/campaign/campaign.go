// Package campaign is the experiment-campaign orchestrator: it expands
// a declarative parameter-grid spec into independent jobs, executes them
// on a bounded worker pool, and streams results to pluggable sinks.
//
// The paper's evaluation (Fig. 3, Table I, Table II) is a grid of
// hundreds of independent attack trials. Run serially at full fidelity
// (high trial counts, 1M-encryption budgets) such a sweep takes
// wall-clock hours and loses everything on interruption. This package
// makes the sweep a first-class object:
//
//   - Determinism. Every job derives its RNG seed from the campaign
//     seed and its own stable index (rng.Derive), never from execution
//     order, so results are bit-identical at -workers=1 and -workers=N.
//     Sinks receive results in job-index order regardless of completion
//     order, so serialized output is byte-identical too.
//   - Resumability. Completed jobs are checkpointed to an append-only
//     JSON-lines journal. A re-run against the same journal replays the
//     finished cells into the sinks and executes only the remainder.
//   - Fault isolation. A panicking job is recovered and recorded as a
//     failed cell; a context cancel (SIGINT) stops dispatch, drains
//     in-flight workers, and flushes the journal.
//   - Observability. Metrics exposes queue depth, completion counters,
//     encryption totals and per-job duration statistics as an
//     expvar-style snapshot.
//
// The package is experiment-agnostic: it knows grid axes (platform,
// clock, line size, flush, probe round, trial) but not what a job does.
// internal/experiments supplies the Executor that maps a grid point to
// an attack measurement.
package campaign

import (
	"fmt"

	"grinch/internal/faults"
	"grinch/internal/obs"
	"grinch/internal/rng"
)

// Point is one coordinate of the campaign grid: the experiment kind
// plus the swept parameters. Axes an experiment does not sweep stay at
// their zero value and are omitted from serialized records.
type Point struct {
	Kind       string `json:"kind"`
	Platform   string `json:"platform,omitempty"`
	MHz        uint64 `json:"mhz,omitempty"`
	LineWords  int    `json:"line_words,omitempty"`
	Flush      bool   `json:"flush,omitempty"`
	ProbeRound int    `json:"probe_round,omitempty"`
	// Fault names the fault plan active for this coordinate ("" when
	// the campaign injects no faults).
	Fault string `json:"fault,omitempty"`
	// Trial distinguishes repeated measurements of the same cell.
	Trial int `json:"trial"`
}

// CellKey identifies the grid cell a point belongs to — every axis
// except the trial index. Results sharing a CellKey aggregate into one
// reported table cell.
func (p Point) CellKey() string {
	return fmt.Sprintf("%s|%s|%d|%d|%t|%d|%s",
		p.Kind, p.Platform, p.MHz, p.LineWords, p.Flush, p.ProbeRound, p.Fault)
}

// String renders the non-zero axes compactly for progress and summary
// lines.
func (p Point) String() string {
	s := p.Kind
	if p.Platform != "" {
		s += fmt.Sprintf(" platform=%s", p.Platform)
	}
	if p.MHz != 0 {
		s += fmt.Sprintf(" mhz=%d", p.MHz)
	}
	if p.LineWords != 0 {
		s += fmt.Sprintf(" lw=%d", p.LineWords)
	}
	if p.Flush {
		s += " flush"
	}
	if p.ProbeRound != 0 {
		s += fmt.Sprintf(" pr=%d", p.ProbeRound)
	}
	if p.Fault != "" {
		s += fmt.Sprintf(" fault=%s", p.Fault)
	}
	return s
}

// Job is one schedulable unit: a grid point plus everything needed to
// execute it independently of every other job.
type Job struct {
	// Index is the job's position in the spec's canonical expansion
	// order. It is the journal checkpoint key and the seed-derivation
	// input, so it must be stable across runs of the same spec.
	Index int
	Point Point
	// Seed is rng.Derive(spec.Seed, Index): the job's private RNG root,
	// identical no matter which worker runs the job or when.
	Seed uint64
	// Budget is the per-attack encryption cap inherited from the spec.
	Budget uint64
	// FaultPlan is the structured-fault plan for this job's channel
	// (zero value: no injection). Executors wrap the job's channel in a
	// faults.Injector seeded from the job seed when the plan is
	// non-empty.
	FaultPlan faults.Plan
	// Retry is the transient-failure retry policy executors install on
	// the attack core (zero value: fail fast).
	Retry RetrySpec
	// DeadlinePS bounds the job's simulated clock; 0 means unbounded.
	DeadlinePS uint64
	// ScalarPath forces the attack core's scalar reference pipeline
	// (core.BatchOff) instead of the batched one. The two produce
	// byte-identical results; the flag exists for differential testing
	// and for bisecting suspected batch-path regressions in the field.
	ScalarPath bool
}

// Measurement is the experiment-specific payload of a result. Fields
// are a union over the experiment kinds; unused ones stay zero.
type Measurement struct {
	// Encryptions the attack consumed (budget value when dropped out).
	Encryptions uint64 `json:"encryptions,omitempty"`
	// DroppedOut is set when the attack blew its encryption budget,
	// mirroring the paper's ">1M" cells.
	DroppedOut bool `json:"dropped_out,omitempty"`
	// Correct reports whether a recovered key matched the victim's
	// (full-recovery kinds only).
	Correct bool `json:"correct,omitempty"`
	// Round is the earliest successfully probed round (platform-race
	// kind only).
	Round int `json:"round,omitempty"`

	// Graceful-degradation fields, populated when an attack under fault
	// injection ends without full recovery (or with it, for the
	// fault-accounting counters). Partial marks a structured partial
	// result as opposed to a hard executor error.
	Partial bool `json:"partial,omitempty"`
	// ResolvedRounds counts round keys fully recovered before the attack
	// stopped.
	ResolvedRounds int `json:"resolved_rounds,omitempty"`
	// SegmentsConverged counts converged segments of the last attempted
	// round.
	SegmentsConverged int `json:"segments_converged,omitempty"`
	// Confidence is the mean surviving-line confidence margin of the
	// converged segments.
	Confidence float64 `json:"confidence,omitempty"`
	// Reason classifies why the attack stopped short (core.Reason).
	Reason string `json:"reason,omitempty"`
	// Retries counts transient-failure retries the attack core spent.
	Retries uint64 `json:"retries,omitempty"`
	// Faults counts faults the injector actually fired into the channel.
	Faults uint64 `json:"faults,omitempty"`
}

// Result is one completed job: its coordinates, its measurement, and
// bookkeeping. The same record is the journal entry and the sink
// payload.
type Result struct {
	Job   int    `json:"job"`
	Point Point  `json:"point"`
	Seed  uint64 `json:"seed"`
	Measurement
	// Failed marks a job whose executor returned an error or panicked;
	// Err holds the message. Failed cells are reported, not retried.
	Failed bool   `json:"failed,omitempty"`
	Err    string `json:"error,omitempty"`
	// DurationNS and Worker describe one particular execution and are
	// the only non-deterministic fields; deterministic sinks omit them.
	DurationNS int64 `json:"duration_ns,omitempty"`
	Worker     int   `json:"worker,omitempty"`
}

// Canonical returns the result with its execution-specific fields
// (DurationNS, Worker) zeroed — the deterministic projection that is a
// pure function of (spec, seed). Everything that serializes results for
// comparison or reproducible output must go through this: JSONLSink
// uses it unless Timing is requested, and the determinism regression
// tests compare canonical forms, so wall-clock readings in the runner
// can never reach deterministic sink bytes.
func (r Result) Canonical() Result {
	r.DurationNS = 0
	r.Worker = 0
	return r
}

// Executor runs one job and returns its measurement. The tracer is the
// job's private event collector (nil unless the run requested tracing);
// executors thread it into the attack pipeline so a traced campaign
// captures every job's internal trajectory without cross-job
// interleaving. Executors must be pure functions of the job (all
// randomness drawn from Job.Seed) for the determinism contract to hold,
// and must be safe for concurrent calls. A panic inside an executor is
// recovered by the runner and recorded as a failed result.
type Executor func(Job, obs.Tracer) (Measurement, error)

// DeriveSeed exposes the job-seed derivation so single-run tools (cmd/
// grinch -json) can emit records whose seeds line up with a campaign's.
func DeriveSeed(campaignSeed uint64, jobIndex int) uint64 {
	return rng.Derive(campaignSeed, uint64(jobIndex))
}
