// Package faults is the structured fault injector for the attack
// pipeline: a deterministic, seedable wrapper around any observation
// channel that disturbs the probe stream according to a declarative
// Plan.
//
// The paper's Fig. 3 / Table I evaluation assumes a cooperative victim:
// every probe lands and the only disturbance is iid per-line noise
// (oracle.Config.FalsePresence/FalseAbsence). Real access-driven
// attacks — the Flush+Reload and Prime+Probe lineage this repo models —
// face *structured* disturbance instead: bursty cache thrash from
// co-resident processes, whole probe windows missed to scheduler
// jitter, observations landing a round early or late, and transient
// channel failures (a remapped page, a migrated victim). This package
// makes those disturbances first-class, declarative and replayable, so
// the robustness of the attack core (retry, quarantine, restart,
// graceful degradation — internal/core) and of whole campaigns can be
// measured as a curve rather than asserted.
//
// Determinism contract: every injection decision for the channel's
// n-th encryption is drawn from a private generator seeded with
// rng.Derive(plan seed, n). Decisions are therefore random-access —
// independent of call interleaving, retries and worker scheduling —
// and a fault-injected campaign remains byte-reproducible for any
// worker count.
package faults

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Kind names a structured fault class. The strings are part of the
// plan-file schema.
type Kind string

const (
	// KindBurst is a window of correlated elevated noise — a
	// co-resident thrasher polluting (FalsePresence) and evicting
	// (FalseAbsence) table lines for Length consecutive encryptions.
	KindBurst Kind = "burst"
	// KindDrop is a window of missed probes: the observation comes back
	// empty (no lines seen), as when the attacker loses its scheduling
	// quantum between victim access and probe.
	KindDrop Kind = "drop"
	// KindMisalign shifts the probe window by Offset rounds — the
	// observation is taken off-target, accumulating the wrong rounds'
	// accesses.
	KindMisalign Kind = "misalign"
	// KindTransient makes the probe fail outright with a typed
	// *TransientError (with per-encryption Probability inside the
	// window). The victim encryption still happens — the probe, not the
	// victim, failed — so budgets and windows keep advancing.
	KindTransient Kind = "transient"
)

// Kinds lists every known fault kind, sorted, for error messages and
// schema docs.
func Kinds() []string {
	ks := []string{string(KindBurst), string(KindDrop), string(KindMisalign), string(KindTransient)}
	sort.Strings(ks)
	return ks
}

// Fault is one declarative fault: a kind, a window over the channel's
// encryption counter, and kind-specific parameters.
type Fault struct {
	Kind Kind `json:"kind"`
	// Start is the first encryption (1-based, matching the channel's
	// counter) the fault affects. 0 is normalized to 1.
	Start uint64 `json:"start,omitempty"`
	// Length is the window size in encryptions. 0 means open-ended:
	// the fault stays active from Start onward.
	Length uint64 `json:"length,omitempty"`
	// Period repeats the window every Period encryptions (measured
	// start-to-start). 0 means the window fires once. Period must be
	// ≥ Length when both are set.
	Period uint64 `json:"period,omitempty"`

	// FalsePresence/FalseAbsence are the per-line burst noise
	// probabilities (burst only), each in [0,1).
	FalsePresence float64 `json:"false_presence,omitempty"`
	FalseAbsence  float64 `json:"false_absence,omitempty"`

	// Offset is the probe-round misalignment in rounds (misalign only;
	// may be negative). The effective target round is clamped to ≥ 1.
	Offset int `json:"offset,omitempty"`

	// Probability is the per-encryption chance the fault fires inside
	// its window (drop, transient; 0 is normalized to 1 = always).
	Probability float64 `json:"probability,omitempty"`
}

// active reports whether the fault's window covers encryption enc
// (1-based).
func (f Fault) active(enc uint64) bool {
	start := f.Start
	if start == 0 {
		start = 1
	}
	if enc < start {
		return false
	}
	off := enc - start
	if f.Period > 0 {
		off %= f.Period
	}
	return f.Length == 0 || off < f.Length
}

// prob returns the normalized per-encryption firing probability.
func (f Fault) prob() float64 {
	if f.Probability == 0 {
		return 1
	}
	return f.Probability
}

// validate reports schema errors for one fault, identified by its plan
// index.
func (f Fault) validate(i int) error {
	where := fmt.Sprintf("faults: plan fault %d (%s)", i, f.Kind)
	switch f.Kind {
	case KindBurst:
		if f.FalsePresence == 0 && f.FalseAbsence == 0 {
			return fmt.Errorf("%s: needs false_presence and/or false_absence", where)
		}
	case KindDrop, KindTransient:
		// Probability-only kinds.
	case KindMisalign:
		if f.Offset == 0 {
			return fmt.Errorf("%s: needs a non-zero offset", where)
		}
	case "":
		return fmt.Errorf("faults: plan fault %d has no kind (known kinds: %s)", i, strings.Join(Kinds(), ", "))
	default:
		return fmt.Errorf("faults: plan fault %d has unknown kind %q (known kinds: %s)", i, f.Kind, strings.Join(Kinds(), ", "))
	}
	if f.FalsePresence < 0 || f.FalsePresence >= 1 {
		return fmt.Errorf("%s: false_presence = %v must be in [0,1)", where, f.FalsePresence)
	}
	if f.FalseAbsence < 0 || f.FalseAbsence >= 1 {
		return fmt.Errorf("%s: false_absence = %v must be in [0,1)", where, f.FalseAbsence)
	}
	if f.Probability < 0 || f.Probability > 1 {
		return fmt.Errorf("%s: probability = %v must be in [0,1]", where, f.Probability)
	}
	if f.Period > 0 && f.Length > f.Period {
		return fmt.Errorf("%s: length %d exceeds period %d (windows would overlap themselves)", where, f.Length, f.Period)
	}
	return nil
}

// Plan is a named, declarative fault schedule. The zero Plan (no
// faults) injects nothing and is the identity wrapper.
type Plan struct {
	// Name labels the plan in campaign grids and traces; a fault-plan
	// axis requires distinct names.
	Name string `json:"name"`
	// Seed keys the plan's private injection randomness. The injector
	// combines it with a caller-supplied seed, so the same plan file
	// reused across campaign jobs still draws independent streams.
	Seed   uint64  `json:"seed,omitempty"`
	Faults []Fault `json:"faults,omitempty"`
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool { return len(p.Faults) == 0 }

// Validate checks the plan against the schema.
func (p Plan) Validate() error {
	for i, f := range p.Faults {
		if err := f.validate(i); err != nil {
			return err
		}
	}
	return nil
}

// ParsePlan decodes one plan from strict JSON: unknown fields are
// rejected (a typo like "fase_presence" fails loudly instead of
// silently injecting nothing), and unknown fault kinds name the known
// ones.
func ParsePlan(data []byte) (Plan, error) {
	var p Plan
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Plan{}, fmt.Errorf("faults: parsing plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// ParsePlans decodes either a single plan object or a JSON array of
// plans (the shape a campaign fault axis sweeps), strictly.
func ParsePlans(data []byte) ([]Plan, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var ps []Plan
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&ps); err != nil {
			return nil, fmt.Errorf("faults: parsing plan list: %w", err)
		}
		seen := map[string]bool{}
		for i, p := range ps {
			if err := p.Validate(); err != nil {
				return nil, err
			}
			if p.Name == "" {
				return nil, fmt.Errorf("faults: plan %d in a plan list needs a name (plans become grid-axis values)", i)
			}
			if seen[p.Name] {
				return nil, fmt.Errorf("faults: duplicate plan name %q in plan list", p.Name)
			}
			seen[p.Name] = true
		}
		return ps, nil
	}
	p, err := ParsePlan(data)
	if err != nil {
		return nil, err
	}
	return []Plan{p}, nil
}

// TransientError is the typed failure a transient-fault window returns
// from a fallible channel's CollectErr. Consumers detect it through
// the Transient method (duck-typed, so the attack core does not import
// this package) and may retry under a bounded policy.
type TransientError struct {
	// Enc is the channel encryption (1-based) whose probe failed.
	Enc uint64
	// Fault is the plan index of the transient fault that fired.
	Fault int
}

// Error implements error.
func (e *TransientError) Error() string {
	return fmt.Sprintf("faults: transient channel failure at encryption %d (plan fault %d)", e.Enc, e.Fault)
}

// Transient marks the error retryable; the attack core's RetryPolicy
// keys on this method rather than on the concrete type.
func (e *TransientError) Transient() bool { return true }
