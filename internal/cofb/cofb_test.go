package cofb

import (
	"bytes"
	"testing"
	"testing/quick"

	"grinch/internal/bitutil"
	"grinch/internal/gift"
	"grinch/internal/rng"
)

var testKey = [16]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}

func nonceFrom(r *rng.Source) [NonceSize]byte {
	var n [NonceSize]byte
	for i := range n {
		n[i] = byte(r.Uint64())
	}
	return n
}

func TestSealOpenRoundTripShapes(t *testing.T) {
	a := New(testKey)
	r := rng.New(1)
	shapes := []struct{ ptLen, adLen int }{
		{0, 0}, {1, 0}, {0, 1}, {15, 0}, {16, 0}, {17, 0},
		{31, 7}, {32, 16}, {33, 17}, {64, 64}, {100, 3}, {5, 100},
	}
	for _, sh := range shapes {
		pt := make([]byte, sh.ptLen)
		ad := make([]byte, sh.adLen)
		for i := range pt {
			pt[i] = byte(r.Uint64())
		}
		for i := range ad {
			ad[i] = byte(r.Uint64())
		}
		nonce := nonceFrom(r)
		ct := a.Seal(nil, nonce, pt, ad)
		if len(ct) != sh.ptLen+TagSize {
			t.Fatalf("pt=%d ad=%d: ciphertext length %d", sh.ptLen, sh.adLen, len(ct))
		}
		got, err := a.Open(nil, nonce, ct, ad)
		if err != nil {
			t.Fatalf("pt=%d ad=%d: Open failed: %v", sh.ptLen, sh.adLen, err)
		}
		if !bytes.Equal(got, pt) {
			t.Fatalf("pt=%d ad=%d: round-trip mismatch", sh.ptLen, sh.adLen)
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	a := New(testKey)
	f := func(pt, ad []byte, seed uint64) bool {
		nonce := nonceFrom(rng.New(seed))
		ct := a.Seal(nil, nonce, pt, ad)
		got, err := a.Open(nil, nonce, ct, ad)
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTamperDetection(t *testing.T) {
	a := New(testKey)
	r := rng.New(2)
	nonce := nonceFrom(r)
	pt := []byte("attack at dawn: sector 7, code 42")
	ad := []byte("header-v1")
	ct := a.Seal(nil, nonce, pt, ad)
	for i := range ct {
		mutated := append([]byte(nil), ct...)
		mutated[i] ^= 0x01
		if _, err := a.Open(nil, nonce, mutated, ad); err == nil {
			t.Fatalf("bit flip at byte %d accepted", i)
		}
	}
}

func TestADTamperDetection(t *testing.T) {
	a := New(testKey)
	r := rng.New(3)
	nonce := nonceFrom(r)
	ct := a.Seal(nil, nonce, []byte("payload"), []byte("context"))
	if _, err := a.Open(nil, nonce, ct, []byte("Context")); err == nil {
		t.Fatal("modified AD accepted")
	}
	if _, err := a.Open(nil, nonce, ct, nil); err == nil {
		t.Fatal("dropped AD accepted")
	}
}

func TestWrongNonceRejected(t *testing.T) {
	a := New(testKey)
	r := rng.New(4)
	n1, n2 := nonceFrom(r), nonceFrom(r)
	ct := a.Seal(nil, n1, []byte("msg"), nil)
	if _, err := a.Open(nil, n2, ct, nil); err == nil {
		t.Fatal("wrong nonce accepted")
	}
}

func TestWrongKeyRejected(t *testing.T) {
	a := New(testKey)
	other := testKey
	other[0] ^= 1
	b := New(other)
	r := rng.New(5)
	nonce := nonceFrom(r)
	ct := a.Seal(nil, nonce, []byte("msg"), nil)
	if _, err := b.Open(nil, nonce, ct, nil); err == nil {
		t.Fatal("wrong key accepted")
	}
}

func TestShortCiphertextRejected(t *testing.T) {
	a := New(testKey)
	var nonce [NonceSize]byte
	if _, err := a.Open(nil, nonce, make([]byte, TagSize-1), nil); err == nil {
		t.Fatal("truncated ciphertext accepted")
	}
}

func TestCiphertextsDifferAcrossNonces(t *testing.T) {
	a := New(testKey)
	r := rng.New(6)
	pt := make([]byte, 32)
	c1 := a.Seal(nil, nonceFrom(r), pt, nil)
	c2 := a.Seal(nil, nonceFrom(r), pt, nil)
	if bytes.Equal(c1[:32], c2[:32]) {
		t.Fatal("identical ciphertexts under different nonces")
	}
}

func TestDeterministicUnderSameInputs(t *testing.T) {
	a := New(testKey)
	var nonce [NonceSize]byte
	pt, ad := []byte("hello"), []byte("ad")
	if !bytes.Equal(a.Seal(nil, nonce, pt, ad), a.Seal(nil, nonce, pt, ad)) {
		t.Fatal("Seal not deterministic")
	}
}

// TestNonceIsEncryptedFirst pins the property the GRINCH AEAD attack
// exploits: Y₀ = E_K(N), so chosen nonces are chosen block-cipher
// plaintexts, and the first 16 S-box lookups of every Seal are the
// GIFT-128 round-1 accesses for N.
func TestNonceIsEncryptedFirst(t *testing.T) {
	a := New(testKey)
	c := gift.NewCipher128(testKey)
	r := rng.New(7)
	for i := 0; i < 20; i++ {
		nonce := nonceFrom(r)
		y0 := c.EncryptBlock(bitutil.Word128FromBytes(nonce))
		// An empty-everything Seal's tag is a deterministic function of
		// Y₀ alone; two nonces with equal Y₀ would collide. Sanity-check
		// the relation by recomputing the tag from Y₀ by hand.
		got := a.Seal(nil, nonce, nil, nil)
		delta := triple(triple(y0.Hi))
		x := xorMask(g(y0), delta)
		x.Hi ^= 0x8000000000000000
		want := c.EncryptBlock(x).Bytes()
		if !bytes.Equal(got, want[:]) {
			t.Fatalf("tag does not follow the documented Y₀ chain")
		}
	}
}

func TestDoubleTripleProperties(t *testing.T) {
	// Doubling is injective (it is multiplication by x in a field) and
	// 3·Δ = 2·Δ ⊕ Δ never equals 2·Δ for nonzero Δ.
	seen := map[uint64]bool{}
	d := uint64(1)
	for i := 0; i < 64; i++ {
		if seen[d] {
			t.Fatalf("doubling cycle after %d steps", i)
		}
		seen[d] = true
		if triple(d) == double(d) {
			t.Fatal("triple == double for nonzero mask")
		}
		d = double(d)
	}
}

func TestGFunction(t *testing.T) {
	y := bitutil.Word128{Hi: 0x8000000000000001, Lo: 0x1234567890abcdef}
	got := g(y)
	if got.Hi != y.Lo {
		t.Fatal("G must move Y₂ into the left half")
	}
	if got.Lo != y.Hi<<1|1 {
		t.Fatal("G must rotate Y₁ left by one")
	}
}

func TestSealAppendsToDst(t *testing.T) {
	a := New(testKey)
	var nonce [NonceSize]byte
	prefix := []byte{0xAA, 0xBB}
	out := a.Seal(prefix, nonce, []byte("x"), nil)
	if !bytes.Equal(out[:2], prefix) {
		t.Fatal("Seal clobbered dst prefix")
	}
}

func TestOverhead(t *testing.T) {
	if New(testKey).Overhead() != 16 {
		t.Fatal("overhead != tag size")
	}
}
