package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// The //grinch:secret annotation marks secret material for the leakage
// pass. Grammar (one directive per comment line, no space before the
// colon, like //go: directives):
//
//	//grinch:secret
//	    on a struct field        — the field holds secret data
//	    on a var declaration     — the variable holds secret data
//	    in a func doc comment    — every parameter (and the receiver)
//	                               is secret
//	//grinch:secret p1, p2       — only the named parameters are secret
//	//grinch:secret return       — the function's results are secret
//	                               (key-derived output, e.g. a block
//	                               cipher call under the secret key);
//	                               may be combined with parameter names
//
// Anything reachable from an annotated value through assignments, bit
// operations, field access and function calls is tainted; indexing an
// array/slice/map with a tainted value or branching on one is a
// finding. See leakage.go.
const secretDirective = "grinch:secret"

// secretTable is the module-wide annotation index, built once per World.
type secretTable struct {
	// objects holds annotated parameters, fields and variables.
	objects map[types.Object]bool
	// returns holds functions whose call results are secret.
	returns map[types.Object]bool
}

func (st *secretTable) object(o types.Object) bool {
	return o != nil && st.objects[o]
}

func (st *secretTable) secretReturn(o types.Object) bool {
	return o != nil && st.returns[o]
}

// directiveArgs extracts the argument list of a //grinch:secret line in
// the comment group, with ok=false when the group carries no directive.
func directiveArgs(cg *ast.CommentGroup) (args []string, ok bool) {
	if cg == nil {
		return nil, false
	}
	for _, c := range cg.List {
		text := strings.TrimPrefix(c.Text, "//")
		if !strings.HasPrefix(text, secretDirective) {
			continue
		}
		rest := strings.TrimPrefix(text, secretDirective)
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			continue // e.g. grinch:secretive
		}
		for _, f := range strings.FieldsFunc(rest, func(r rune) bool {
			return r == ' ' || r == '\t' || r == ','
		}) {
			args = append(args, f)
		}
		return args, true
	}
	return nil, false
}

// collectSecrets scans every package for //grinch:secret annotations
// and resolves them to type-checker objects, so that uses in *other*
// packages (exported fields, cross-package helpers) taint too.
func collectSecrets(w *World) *secretTable {
	st := &secretTable{
		objects: map[types.Object]bool{},
		returns: map[types.Object]bool{},
	}
	for _, pkg := range w.Pkgs {
		for _, file := range pkg.Files {
			collectFileSecrets(pkg, file, st)
		}
	}
	return st
}

func collectFileSecrets(pkg *Package, file *ast.File, st *secretTable) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			args, ok := directiveArgs(d.Doc)
			if !ok {
				return true
			}
			fnObj := pkg.Info.Defs[d.Name]
			wantReturn := false
			named := map[string]bool{}
			for _, a := range args {
				if a == "return" {
					wantReturn = true
					continue
				}
				named[a] = true
			}
			if wantReturn {
				st.returns[fnObj] = true
			}
			all := len(named) == 0 && !wantReturn
			mark := func(fields *ast.FieldList) {
				if fields == nil {
					return
				}
				for _, f := range fields.List {
					for _, name := range f.Names {
						if all || named[name.Name] {
							if o := pkg.Info.Defs[name]; o != nil {
								st.objects[o] = true
							}
						}
					}
				}
			}
			mark(d.Type.Params)
			mark(d.Recv)
			return true

		case *ast.StructType:
			if d.Fields == nil {
				return true
			}
			for _, f := range d.Fields.List {
				_, ok := directiveArgs(f.Doc)
				if !ok {
					_, ok = directiveArgs(f.Comment)
				}
				if !ok {
					continue
				}
				for _, name := range f.Names {
					if o := pkg.Info.Defs[name]; o != nil {
						st.objects[o] = true
					}
				}
			}
			return true

		case *ast.GenDecl:
			_, declOK := directiveArgs(d.Doc)
			for _, spec := range d.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				_, specOK := directiveArgs(vs.Doc)
				if !specOK {
					_, specOK = directiveArgs(vs.Comment)
				}
				if !declOK && !specOK {
					continue
				}
				for _, name := range vs.Names {
					if o := pkg.Info.Defs[name]; o != nil {
						st.objects[o] = true
					}
				}
			}
			return true
		}
		return true
	})
}
