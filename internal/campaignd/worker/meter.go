package worker

import (
	"sync"
	"sync/atomic"
	"time"

	"grinch/internal/campaign"
	"grinch/internal/campaignd"
	"grinch/internal/obs/metrics"
)

// meter is the worker process's local telemetry: a private registry of
// campaignw_* series plus the monotone delta sequence. Every report,
// heartbeat and complete round-trip piggybacks the current cumulative
// snapshot (metrics.Delta), which the coordinator stores keyed by
// worker ID and sequence — idempotent under retried batches and
// journal replays because later deltas replace, never add.
type meter struct {
	reg *metrics.Registry
	seq atomic.Uint64

	jobsDone   *metrics.Counter
	jobsFailed *metrics.Counter
	encs       *metrics.Counter
	batches    *metrics.Counter
	shardsDone *metrics.Counter
	shardsLost *metrics.Counter
	leaseTries *metrics.Counter
	wallMS     *metrics.Histogram

	// Resilience telemetry: coordinator round-trip retries by call
	// class (fed by the client's OnRetry hook), worker-level flush
	// retry rounds, and total backoff wall time. All ship in the same
	// cumulative deltas as the job counters, so the coordinator's
	// /api/v1/status can surface fleet retry health.
	retriesBy    map[string]*metrics.Counter
	flushRetries *metrics.Counter
	backoffMS    *metrics.Counter

	mu sync.Mutex
}

func newMeter() *meter {
	r := metrics.New()
	status := func(s string) *metrics.Counter {
		return r.Counter("campaignw_jobs_total",
			"Jobs this worker executed, by terminal status.", metrics.L("status", s))
	}
	outcome := func(o string) *metrics.Counter {
		return r.Counter("campaignw_shards_total",
			"Shards this worker finished, by outcome.", metrics.L("outcome", o))
	}
	retry := func(class string) *metrics.Counter {
		return r.Counter("campaignw_report_retries_total",
			"Coordinator round-trips retried after a transient failure, by call class.",
			metrics.L("class", class))
	}
	return &meter{
		reg:        r,
		jobsDone:   status("done"),
		jobsFailed: status("failed"),
		encs: r.Counter("campaignw_encryptions_total",
			"Victim encryptions consumed by this worker's jobs."),
		batches: r.Counter("campaignw_batches_total",
			"Result batches reported to the coordinator."),
		shardsDone: outcome("completed"),
		shardsLost: outcome("lost"),
		leaseTries: r.Counter("campaignw_lease_retries_total",
			"Failed lease round-trips (coordinator unreachable)."),
		wallMS: r.WallHistogram("campaignw_job_wall_ms",
			"Per-job wall duration on this worker, milliseconds.", metrics.DurationMSBuckets),
		retriesBy: map[string]*metrics.Counter{
			campaignd.ClassSubmit:    retry(campaignd.ClassSubmit),
			campaignd.ClassLease:     retry(campaignd.ClassLease),
			campaignd.ClassReport:    retry(campaignd.ClassReport),
			campaignd.ClassHeartbeat: retry(campaignd.ClassHeartbeat),
			campaignd.ClassComplete:  retry(campaignd.ClassComplete),
			campaignd.ClassQuery:     retry(campaignd.ClassQuery),
		},
		flushRetries: r.Counter("campaignw_flush_retries_total",
			"Report-flush rounds re-attempted after the per-call retry budget was exhausted."),
		backoffMS: r.Counter("campaignw_backoff_ms_total",
			"Total wall time this worker spent backing off before retries, milliseconds."),
	}
}

// retry accounts one client-level backoff (call class, wait).
func (m *meter) retry(class string, wait time.Duration) {
	if ctr := m.retriesBy[class]; ctr != nil {
		ctr.Inc()
	} else {
		m.retriesBy[campaignd.ClassQuery].Inc()
	}
	m.backoffMS.Add(uint64(wait / time.Millisecond))
}

// flushRetry accounts one worker-level flush round re-attempt.
func (m *meter) flushRetry(wait time.Duration) {
	m.flushRetries.Inc()
	m.backoffMS.Add(uint64(wait / time.Millisecond))
}

// result accounts one executed job.
func (m *meter) result(r campaign.Result) {
	if r.Failed {
		m.jobsFailed.Inc()
	} else {
		m.jobsDone.Inc()
	}
	m.encs.Add(r.Encryptions)
	if r.DurationNS > 0 {
		m.wallMS.Observe(uint64(r.DurationNS) / 1e6)
	}
}

// delta snapshots the cumulative series under a fresh sequence number.
// The mutex orders concurrent senders (the heartbeat goroutine races
// the report path) so a later-sequenced delta can never carry an
// earlier snapshot.
func (m *meter) delta() *metrics.Delta {
	m.mu.Lock()
	defer m.mu.Unlock()
	return &metrics.Delta{Seq: m.seq.Add(1), Series: m.reg.Snapshot()}
}

// summary condenses the counters for the drain log line.
type summary struct {
	Jobs, Failed, Shards, Lost, LeaseRetries, Retries, BackoffMS uint64
}

func (m *meter) summary() summary {
	var retries uint64
	for _, ctr := range m.retriesBy { //grinchvet:ignore maporder summing counters is order-independent
		retries += ctr.Value()
	}
	return summary{
		Jobs:         m.jobsDone.Value() + m.jobsFailed.Value(),
		Failed:       m.jobsFailed.Value(),
		Shards:       m.shardsDone.Value(),
		Lost:         m.shardsLost.Value(),
		LeaseRetries: m.leaseTries.Value(),
		Retries:      retries + m.flushRetries.Value(),
		BackoffMS:    m.backoffMS.Value(),
	}
}
