package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"grinch/internal/bitutil"
	"grinch/internal/campaign"
	"grinch/internal/core"
	"grinch/internal/faults"
	"grinch/internal/obs"
	"grinch/internal/oracle"
	"grinch/internal/probe"
	"grinch/internal/rng"
	"grinch/internal/soc"
	"grinch/internal/stats"
)

// Experiment kinds understood by Execute. The paper's evaluation grids
// (Fig. 3, Tables I and II, the full-recovery headline) are expressed
// as campaign specs over these kinds and run through the orchestrator.
const (
	// KindFirstRound measures the encryptions to recover the first 32
	// key bits — the Fig. 3 / Table I metric. Axes: probe round, flush,
	// line words.
	KindFirstRound = "first-round"
	// KindRecovery measures full 128-bit key recovery under ideal
	// probing — the "<400 encryptions" headline. No swept axes.
	KindRecovery = "recovery"
	// KindRace measures the earliest successfully probed round on a
	// live platform model — the Table II metric. Axes: platform, MHz.
	KindRace = "platform-race"
)

// Fig3Spec declares the Fig. 3 sweep: first-round effort vs. probing
// round, with and without flush, at the paper's 1-word line.
func Fig3Spec(opt Options, probeRounds []int) campaign.Spec {
	opt = opt.withDefaults()
	if len(probeRounds) == 0 {
		probeRounds = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	}
	return campaign.Spec{
		Name:        "fig3",
		Kind:        KindFirstRound,
		Seed:        opt.Seed,
		Trials:      opt.Trials,
		Budget:      opt.Budget,
		LineWords:   []int{1},
		Flush:       []bool{true, false},
		ProbeRounds: probeRounds,
	}
}

// Table1Spec declares the Table I sweep: first-round effort across
// cache line sizes and probing rounds, flush enabled.
func Table1Spec(opt Options, lineWords, probeRounds []int) campaign.Spec {
	opt = opt.withDefaults()
	if len(lineWords) == 0 {
		lineWords = []int{1, 2, 4, 8}
	}
	if len(probeRounds) == 0 {
		probeRounds = []int{1, 2, 3, 4, 5}
	}
	return campaign.Spec{
		Name:        "table1",
		Kind:        KindFirstRound,
		Seed:        opt.Seed,
		Trials:      opt.Trials,
		Budget:      opt.Budget,
		LineWords:   lineWords,
		Flush:       []bool{true},
		ProbeRounds: probeRounds,
	}
}

// Table2Spec declares the Table II sweep: the probing race on both
// platform models across clock frequencies.
func Table2Spec(opt Options, freqs []uint64) campaign.Spec {
	opt = opt.withDefaults()
	if len(freqs) == 0 {
		freqs = []uint64{10, 25, 50}
	}
	return campaign.Spec{
		Name:      "table2",
		Kind:      KindRace,
		Seed:      opt.Seed,
		Trials:    opt.Trials,
		Platforms: []string{"soc", "mpsoc"},
		MHz:       freqs,
	}
}

// RecoverySpec declares the headline full-key-recovery runs.
func RecoverySpec(opt Options) campaign.Spec {
	opt = opt.withDefaults()
	return campaign.Spec{
		Name:   "recovery",
		Kind:   KindRecovery,
		Seed:   opt.Seed,
		Trials: opt.Trials,
		Budget: opt.Budget,
	}
}

// SpecByName returns the built-in spec with the given name ("fig3",
// "table1", "table2", "recovery") at its default grid — the presets
// cmd/campaign offers.
func SpecByName(name string, opt Options) (campaign.Spec, error) {
	switch name {
	case "fig3":
		return Fig3Spec(opt, nil), nil
	case "table1":
		return Table1Spec(opt, nil, nil), nil
	case "table2":
		return Table2Spec(opt, nil), nil
	case "recovery":
		return RecoverySpec(opt), nil
	}
	return campaign.Spec{}, fmt.Errorf("experiments: unknown campaign preset %q (fig3, table1, table2, recovery)", name)
}

// Execute is the campaign.Executor for the experiment kinds above.
// Every random decision in a job — victim key, channel noise, attacker
// plaintexts — derives from Job.Seed, so a job's measurement does not
// depend on which worker runs it or when. The tracer (nil when the
// campaign is untraced) is threaded into the channel and attacker so a
// traced run records each job's full trajectory.
func Execute(job campaign.Job, tracer obs.Tracer) (campaign.Measurement, error) {
	switch job.Point.Kind {
	case KindFirstRound:
		return execFirstRound(job, tracer)
	case KindRecovery:
		return execRecovery(job, tracer)
	case KindRace:
		return execRace(job, tracer)
	}
	return campaign.Measurement{}, fmt.Errorf("experiments: unknown job kind %q", job.Point.Kind)
}

// jobChannel builds the job's oracle channel and, when the job carries
// a fault plan, wraps it in a fault injector seeded from the job seed.
// The returned stats closure reads the injector's fault counters (zero
// without a plan), and the encs closure the victim encryption count.
func jobChannel(key bitutil.Word128, ocfg oracle.Config, job campaign.Job, tracer obs.Tracer) (probe.Channel, func() faults.Stats, error) {
	ch, err := oracle.New(key, ocfg)
	if err != nil {
		return nil, nil, err
	}
	ch.SetTracer(tracer)
	if job.FaultPlan.Empty() {
		return ch, func() faults.Stats { return faults.Stats{} }, nil
	}
	inj := faults.NewInjector(ch, job.FaultPlan, job.Seed)
	inj.SetTracer(tracer)
	return inj, inj.Stats, nil
}

// jobAttackConfig maps the job's robustness knobs onto the attack core:
// the spec's retry policy and simulated deadline always apply, and a
// job that actually injects faults additionally gets observation
// quarantine and bounded per-target restarts so destructive noise
// degrades the result instead of wedging the attack.
func jobAttackConfig(job campaign.Job, seed uint64, tracer obs.Tracer) core.Config {
	cfg := core.Config{
		Seed:        seed,
		TotalBudget: job.Budget,
		Tracer:      tracer,
		Retry: core.RetryPolicy{
			MaxAttempts: job.Retry.Attempts,
			BackoffPS:   job.Retry.BackoffPS,
		},
		SimDeadlinePS: job.DeadlinePS,
	}
	if job.ScalarPath {
		cfg.Batch = core.BatchOff
	}
	if !job.FaultPlan.Empty() {
		cfg.Quarantine = true
		cfg.MaxRestarts = 2
	}
	return cfg
}

func execFirstRound(job campaign.Job, tracer obs.Tracer) (campaign.Measurement, error) {
	r := rng.New(job.Seed)
	key := bitutil.Word128{Lo: r.Uint64(), Hi: r.Uint64()}
	cfg := oracle.Config{
		ProbeRound: job.Point.ProbeRound,
		Flush:      job.Point.Flush,
		LineWords:  job.Point.LineWords,
		Seed:       r.Uint64(),
	}
	ch, stats, err := jobChannel(key, cfg, job, tracer)
	if err != nil {
		return campaign.Measurement{}, err
	}
	a, err := core.NewAttacker(ch, jobAttackConfig(job, r.Uint64(), tracer))
	if err != nil {
		return campaign.Measurement{}, err
	}
	out, err := a.AttackRound(1, nil, nil)
	m := campaign.Measurement{Faults: stats().Total()}
	if err != nil {
		m.DroppedOut = true
		m.Reason = core.Reason(err)
		// Budget drop-outs report the budget value (the paper's ">1M"
		// cells); earlier aborts report what was actually consumed.
		if errors.Is(err, core.ErrBudgetExceeded) {
			m.Encryptions = job.Budget
		} else {
			m.Encryptions = ch.Encryptions()
		}
		return m, nil
	}
	m.Encryptions = out.Encryptions
	return m, nil
}

func execRecovery(job campaign.Job, tracer obs.Tracer) (campaign.Measurement, error) {
	r := rng.New(job.Seed)
	key := bitutil.Word128{Lo: r.Uint64(), Hi: r.Uint64()}
	ocfg := oracle.Config{ProbeRound: 1, Flush: true, LineWords: 1, Seed: r.Uint64()}
	ch, stats, err := jobChannel(key, ocfg, job, tracer)
	if err != nil {
		return campaign.Measurement{}, err
	}
	a, err := core.NewAttacker(ch, jobAttackConfig(job, r.Uint64(), tracer))
	if err != nil {
		return campaign.Measurement{}, err
	}
	out, partial := a.RecoverKeyGraceful()
	m := campaign.Measurement{Faults: stats().Total()}
	if partial != nil {
		m.Encryptions = ch.Encryptions()
		m.DroppedOut = true
		m.Partial = true
		m.Reason = partial.Reason
		m.ResolvedRounds = partial.ResolvedRounds
		m.SegmentsConverged = partial.Converged()
		m.Confidence = partial.Confidence()
		for _, s := range partial.Segments {
			m.Retries += s.Retries
		}
		return m, nil
	}
	m.Encryptions = out.Encryptions
	m.Correct = out.Key == key
	return m, nil
}

func execRace(job campaign.Job, tracer obs.Tracer) (campaign.Measurement, error) {
	r := rng.New(job.Seed)
	key := bitutil.Word128{Lo: r.Uint64(), Hi: r.Uint64()}
	params := soc.DefaultParams(job.Point.MHz)
	var p soc.Platform
	switch job.Point.Platform {
	case "soc":
		p = soc.NewSingleSoC(key, params)
	case "mpsoc":
		p = soc.NewMPSoC(key, params)
	default:
		return campaign.Measurement{}, fmt.Errorf("experiments: unknown platform %q", job.Point.Platform)
	}
	if tracer != nil {
		// One traced session records the race's observable shape — probe
		// windows, sim time, cache activity. The metric itself comes from
		// EarliestProbeRound's own session, so tracing cannot skew it.
		ch := soc.PlatformChannel{P: p, LineBytes: params.CacheLineBytes, Tracer: tracer}
		ch.Collect(0x0123456789abcdef, 1)
	}
	return campaign.Measurement{Round: p.EarliestProbeRound()}, nil
}

// runCampaign executes a spec on the orchestrator and returns the
// results in job-index order. The experiment drivers call it with no
// journal: the library API is synchronous; checkpoint/resume lives in
// cmd/campaign.
func runCampaign(spec campaign.Spec, workers int) []campaign.Result {
	col := &campaign.Collector{}
	_, err := campaign.Run(context.Background(), spec, Execute,
		campaign.Options{Workers: workers, Sinks: []campaign.Sink{col}})
	if err != nil {
		// Without a journal or cancellable context the only failures
		// are spec validation bugs — programmer errors here.
		panic(err)
	}
	return col.Results
}

// cellFromResults folds one cell's trial results into the table Cell.
// A failed (panicked) trial counts as a drop-out at the budget, so a
// poisoned cell is visible in the table rather than silently thinner.
func cellFromResults(rs []campaign.Result, budget uint64) Cell {
	var cell Cell
	for _, r := range rs {
		if r.Failed {
			cell.DroppedOut = true
			cell.Trials = append(cell.Trials, budget)
			continue
		}
		if r.DroppedOut {
			cell.DroppedOut = true
		}
		cell.Trials = append(cell.Trials, r.Encryptions)
	}
	if !cell.DroppedOut {
		cell.Median = cell.Summary().Median
	}
	return cell
}

// groupCells buckets results by grid cell, preserving job-index order
// within and across cells.
func groupCells(results []campaign.Result) map[string][]campaign.Result {
	cells := make(map[string][]campaign.Result)
	for _, r := range results {
		k := r.Point.CellKey()
		cells[k] = append(cells[k], r)
	}
	return cells
}

func cellKey(kind string, platform string, mhz uint64, lineWords int, flush bool, probeRound int) string {
	return campaign.Point{
		Kind: kind, Platform: platform, MHz: mhz,
		LineWords: lineWords, Flush: flush, ProbeRound: probeRound,
	}.CellKey()
}

// Fig3FromResults folds campaign results back into Fig. 3 rows.
func Fig3FromResults(opt Options, probeRounds []int, results []campaign.Result) []Fig3Row {
	opt = opt.withDefaults()
	cells := groupCells(results)
	rows := make([]Fig3Row, 0, len(probeRounds))
	for _, pr := range probeRounds {
		rows = append(rows, Fig3Row{
			ProbeRound:   pr,
			WithFlush:    cellFromResults(cells[cellKey(KindFirstRound, "", 0, 1, true, pr)], opt.Budget),
			WithoutFlush: cellFromResults(cells[cellKey(KindFirstRound, "", 0, 1, false, pr)], opt.Budget),
		})
	}
	return rows
}

// Table1FromResults folds campaign results back into Table I rows.
func Table1FromResults(opt Options, lineWords, probeRounds []int, results []campaign.Result) []Table1Row {
	opt = opt.withDefaults()
	cells := groupCells(results)
	rows := make([]Table1Row, 0, len(lineWords))
	for _, lw := range lineWords {
		row := Table1Row{LineWords: lw}
		for _, pr := range probeRounds {
			row.Cells = append(row.Cells,
				cellFromResults(cells[cellKey(KindFirstRound, "", 0, lw, true, pr)], opt.Budget))
		}
		rows = append(rows, row)
	}
	return rows
}

// Table2FromResults folds campaign results back into Table II rows,
// taking the per-cell median round over trials (the race is
// key-independent, so trials agree; the median guards against a future
// noisy platform model).
func Table2FromResults(freqs []uint64, results []campaign.Result) []Table2Row {
	cells := groupCells(results)
	rowFor := func(platform, label string) Table2Row {
		row := Table2Row{Platform: label, EarliestRound: map[uint64]int{}}
		for _, f := range freqs {
			rs := cells[cellKey(KindRace, platform, f, 0, false, 0)]
			rounds := make([]int, 0, len(rs))
			for _, r := range rs {
				if !r.Failed {
					rounds = append(rounds, r.Round)
				}
			}
			if len(rounds) == 0 {
				continue
			}
			sort.Ints(rounds)
			row.EarliestRound[f] = rounds[len(rounds)/2]
		}
		return row
	}
	return []Table2Row{
		rowFor("soc", "Single-processing SoC"),
		rowFor("mpsoc", "Multi-processing SoC"),
	}
}

// RecoveryFromResults folds campaign results into the headline record.
func RecoveryFromResults(results []campaign.Result) RecoveryResult {
	var res RecoveryResult
	var efforts []uint64
	res.AllCorrect = true
	for _, r := range results {
		if r.Failed || r.DroppedOut || !r.Correct {
			res.AllCorrect = false
			res.Failures++
			continue
		}
		efforts = append(efforts, r.Encryptions)
	}
	res.Encryptions = stats.SummarizeUint64(efforts)
	return res
}
