package core

import (
	"sync"

	"grinch/internal/gift"
	"grinch/internal/probe"
	"grinch/internal/rng"
)

// BatchMode selects between the batched attack pipeline and the scalar
// reference path.
type BatchMode int

const (
	// BatchAuto (the zero value) batches whenever the channel supports
	// probe.BatchChannel, falling back to the scalar path otherwise.
	// Results are byte-identical either way — batching only reschedules
	// when victim traces are computed, never what is observed.
	BatchAuto BatchMode = iota
	// BatchOff forces the scalar path; the differential tests run both
	// modes and require identical output.
	BatchOff
)

// Batch sizing. Crafting draws the plaintext rng, so a batch crafted
// beyond the observations actually consumed must be rewound for the rng
// stream to stay byte-identical to the scalar path. Snapshots every
// batchSnapEvery crafts bound the replay to at most batchSnapEvery−1
// re-crafts on abandon; growing refills (4→8→…→64) keep the waste
// small on fast-converging targets (a clean channel converges just past
// the default 4-observation floor, so the opening batch matches it)
// while long eliminations settle at full 64-wide batches.
const (
	batchSnapEvery = 8
	batchFirstSize = 4
	batchMaxSize   = 64
)

// batchState is the in-flight crafted batch of one elimination pass:
// up to 64 crafted plaintexts, their primed raw line sets, and the rng
// snapshots needed to rewind uncommitted crafts. Pooled because sweeps
// run hundreds of thousands of eliminations.
type batchState struct {
	pts   [64]uint64
	raw   [64]probe.LineSet
	snaps [batchMaxSize / batchSnapEvery]rng.Source
	dec   gift.Batch64
	// n is the number of crafted entries, idx the next to commit.
	n, idx int
	// nextSize is the adaptive size of the next refill.
	nextSize int
	// primed reports whether raw holds channel-primed sets; when the
	// channel unexpectedly refuses a prime, the crafted plaintexts are
	// committed through the scalar collect path instead.
	primed bool
}

var batchStatePool = sync.Pool{New: func() any { return new(batchState) }}

func (bs *batchState) reset() {
	bs.n, bs.idx = 0, 0
	bs.nextSize = batchFirstSize
}

// refill crafts the next batch and primes it on the channel. Crafting
// consumes the plaintext rng exactly as the scalar path would, one
// CraftState per entry, with a snapshot every batchSnapEvery crafts so
// settle can rewind the tail that is never committed.
func (bs *batchState) refill(a *Attacker, spec *TargetSpec, rks []gift.RoundKey64) {
	size := bs.nextSize
	if bs.nextSize < batchMaxSize {
		bs.nextSize *= 2
	}
	// Never craft past the encryption budget: those observations could
	// not be committed anyway.
	if b := a.cfg.TotalBudget; b > 0 {
		if rem := b - a.ch.Encryptions(); uint64(size) > rem {
			size = int(rem)
		}
	}
	for i := 0; i < size; i++ {
		if i%batchSnapEvery == 0 {
			bs.snaps[i/batchSnapEvery] = a.rng.Snapshot()
		}
		bs.pts[i] = spec.CraftState(a.rng)
	}
	if spec.Round > 1 {
		if len(rks) < spec.Round-1 {
			// Match CraftPlaintext's contract for the scalar path.
			spec.CraftPlaintext(a.rng, rks) // panics
		}
		for i := size; i < batchMaxSize; i++ {
			bs.pts[i] = 0
		}
		gift.PartialDecryptBatch64(&bs.pts, rks, spec.Round-1, &bs.dec)
	}
	bs.primed = a.batchCh.PrimeBatch(bs.pts[:size], spec.Round, bs.raw[:size])
	bs.n, bs.idx = size, 0
}

// batchNext produces the next observation from the batch pipeline,
// refilling when the current batch is drained. The commit itself —
// counter, events, noise, probe mask — happens inside the channel's
// CollectPrimed with the scalar path's exact side-effect order.
func (a *Attacker) batchNext(bs *batchState, spec *TargetSpec, rks []gift.RoundKey64) (set, mask probe.LineSet, retries uint64, err error) {
	if bs.idx == bs.n {
		bs.refill(a, spec, rks)
	}
	i := bs.idx
	bs.idx++
	if bs.primed {
		set, mask = a.batchCh.CollectPrimed(bs.raw[i], spec.Round)
		return set, mask, 0, nil
	}
	return a.collectRetry(bs.pts[i], *spec)
}

// settle rewinds the plaintext rng over the crafted-but-uncommitted
// tail of the batch: restore the nearest snapshot at or before the
// commit cursor and replay the few crafts up to it. After settle the
// rng state is exactly what the scalar path would have left behind.
func (bs *batchState) settle(a *Attacker, spec *TargetSpec) {
	if bs.idx < bs.n {
		a.rng.Restore(bs.snaps[bs.idx/batchSnapEvery])
		for i := 0; i < bs.idx%batchSnapEvery; i++ {
			spec.CraftState(a.rng)
		}
	}
	bs.n, bs.idx = 0, 0
}

// supportsBatch verifies once, at attacker construction, that the
// channel's batch path is actually usable (a NewFromTracer oracle
// implements the interface methods but refuses to prime). The probe
// prime is speculative by contract: no observable channel state moves.
func supportsBatch(ch probe.Channel) (probe.BatchChannel, bool) {
	bc, ok := ch.(probe.BatchChannel)
	if !ok {
		return nil, false
	}
	var raw [1]probe.LineSet
	if !bc.PrimeBatch([]uint64{0}, 1, raw[:]) {
		return nil, false
	}
	return bc, true
}
