package soc

import (
	"testing"

	"grinch/internal/bitutil"
	"grinch/internal/gift"
	"grinch/internal/sim"
)

var testKey = bitutil.Word128{Lo: 0x0123456789abcdef, Hi: 0xfedcba9876543210}

func TestSingleSoCCiphertextCorrect(t *testing.T) {
	s := NewSingleSoC(testKey, DefaultParams(10))
	pt := uint64(0xfedcba9876543210)
	sess := s.RunSession(pt)
	want := gift.NewCipher64FromWord(testKey).EncryptBlock(pt)
	if sess.Ciphertext != want {
		t.Fatalf("platform ciphertext %016x, want %016x", sess.Ciphertext, want)
	}
}

// TestSingleSoCEarliestProbeRound reproduces Table II's single-SoC row:
// the first probe lands in rounds 2, 4 and 8 at 10, 25 and 50 MHz.
func TestSingleSoCEarliestProbeRound(t *testing.T) {
	want := map[uint64]int{10: 2, 25: 4, 50: 8}
	for mhz, round := range want {
		s := NewSingleSoC(testKey, DefaultParams(mhz))
		if got := s.EarliestProbeRound(); got != round {
			t.Errorf("%d MHz: earliest probe round %d, want %d", mhz, got, round)
		}
	}
}

// TestMPSoCEarliestProbeRound reproduces Table II's MPSoC row: a
// dedicated attacker tile probes during round 1 at every frequency.
func TestMPSoCEarliestProbeRound(t *testing.T) {
	for _, mhz := range []uint64{10, 25, 50} {
		m := NewMPSoC(testKey, DefaultParams(mhz))
		if got := m.EarliestProbeRound(); got != 1 {
			t.Errorf("%d MHz: earliest probe round %d, want 1", mhz, got)
		}
	}
}

func TestMPSoCCiphertextCorrect(t *testing.T) {
	m := NewMPSoC(testKey, DefaultParams(50))
	pt := uint64(0x1122334455667788)
	sess := m.RunSession(pt)
	want := gift.NewCipher64FromWord(testKey).EncryptBlock(pt)
	if sess.Ciphertext != want {
		t.Fatalf("platform ciphertext %016x, want %016x", sess.Ciphertext, want)
	}
}

func TestMPSoCRemoteAccessTime(t *testing.T) {
	// Paper §IV-B3: a remote shared-memory access "took approximately
	// 400 nanoseconds" (processor + NoC + cache response) at 50 MHz.
	m := NewMPSoC(testKey, DefaultParams(50))
	rt := m.RemoteAccessTime()
	if rt < 100*sim.Nanosecond || rt > 1600*sim.Nanosecond {
		t.Fatalf("remote access time %v, want within ~4x of the paper's 400ns", rt)
	}
	t.Logf("remote access time: %v", rt)
}

func TestMPSoCWindowsCoverEveryRound(t *testing.T) {
	m := NewMPSoC(testKey, DefaultParams(50))
	sess := m.RunSession(0xdeadbeefcafef00d)
	if len(sess.Windows) < gift.Rounds64 {
		t.Fatalf("only %d probe windows for a 28-round encryption", len(sess.Windows))
	}
	covered := map[int]bool{}
	for _, w := range sess.Windows {
		if w.FirstRound > w.LastRound {
			t.Fatalf("window with FirstRound %d > LastRound %d", w.FirstRound, w.LastRound)
		}
		for r := w.FirstRound; r <= w.LastRound; r++ {
			covered[r] = true
		}
	}
	for r := 1; r <= gift.Rounds64; r++ {
		if !covered[r] {
			t.Errorf("round %d covered by no probe window", r)
		}
	}
}

func TestSingleSoCWindowsTileTheEncryption(t *testing.T) {
	s := NewSingleSoC(testKey, DefaultParams(10))
	sess := s.RunSession(0x0102030405060708)
	if len(sess.Windows) == 0 {
		t.Fatal("no probe windows")
	}
	last := sess.Windows[len(sess.Windows)-1]
	if last.LastRound != gift.Rounds64 {
		t.Fatalf("final window ends at round %d, want %d", last.LastRound, gift.Rounds64)
	}
	for i := 1; i < len(sess.Windows); i++ {
		if sess.Windows[i].FirstRound < sess.Windows[i-1].LastRound {
			// Conservative overlap of one round is fine; regression
			// beyond that indicates broken accounting.
			if sess.Windows[i].FirstRound < sess.Windows[i-1].LastRound-1 {
				t.Fatalf("windows regress: %+v then %+v", sess.Windows[i-1], sess.Windows[i])
			}
		}
	}
}

func TestSingleSoCObservationsContainVictimLines(t *testing.T) {
	// Union of all windows must cover every line the victim touched in
	// rounds observed — at minimum, the union must be non-empty and
	// within the table.
	s := NewSingleSoC(testKey, DefaultParams(10))
	sess := s.RunSession(0x00ff00ff00ff00ff)
	var union int
	for _, w := range sess.Windows {
		union |= int(w.Set)
		if w.Set.Count() > 16 {
			t.Fatalf("window set %v exceeds table", w.Set)
		}
	}
	if union == 0 {
		t.Fatal("attacker saw no victim accesses at all")
	}
}

func TestPlatformChannelLines(t *testing.T) {
	for _, lineBytes := range []int{1, 2, 4, 8} {
		p := DefaultParams(10)
		p.CacheLineBytes = lineBytes
		ch := &PlatformChannel{P: NewSingleSoC(testKey, p), LineBytes: lineBytes}
		if got, want := ch.Lines(), 16/lineBytes; got != want {
			t.Errorf("lineBytes=%d: Lines=%d, want %d", lineBytes, got, want)
		}
	}
}

func TestPlatformChannelCollect(t *testing.T) {
	ch := &PlatformChannel{P: NewMPSoC(testKey, DefaultParams(50)), LineBytes: 1}
	set := ch.Collect(0x123456789abcdef0, 1)
	if set.Count() == 0 || set.Count() > 16 {
		t.Fatalf("collected %v", set)
	}
	if ch.Encryptions() != 1 {
		t.Fatalf("Encryptions = %d", ch.Encryptions())
	}
}

func TestSessionsCount(t *testing.T) {
	s := NewSingleSoC(testKey, DefaultParams(25))
	for i := 0; i < 3; i++ {
		s.RunSession(uint64(i))
	}
	if s.Sessions() != 3 {
		t.Fatalf("Sessions = %d", s.Sessions())
	}
}

func TestDeterministicSessions(t *testing.T) {
	run := func() Session {
		s := NewSingleSoC(testKey, DefaultParams(25))
		return s.RunSession(0xabcdef)
	}
	a, b := run(), run()
	if a.Ciphertext != b.Ciphertext || len(a.Windows) != len(b.Windows) {
		t.Fatal("sessions nondeterministic")
	}
	for i := range a.Windows {
		if a.Windows[i] != b.Windows[i] {
			t.Fatalf("window %d differs: %+v vs %+v", i, a.Windows[i], b.Windows[i])
		}
	}
}
