// Package metrics is the fleet-telemetry layer of the reproduction: a
// stdlib-only, race-safe registry of counters, gauges and fixed-bucket
// histograms, a deterministic snapshot model, a Prometheus text-format
// v0.0.4 exposition writer, and the cumulative-delta protocol workers
// use to ship their series to the campaignd coordinator.
//
// Determinism contract. Every instrument value is an integer and every
// histogram bucket bound is an exact integer, so a snapshot of a
// registry fed only simulation-derived quantities (encryption counts,
// observation counts, sim-clock picoseconds) is byte-deterministic:
// same spec, same seed → same snapshot bytes, any worker count, any
// scheduling. Wall-clock quantities are quarantined behind explicitly
// wall-marked instruments (WallGauge, WallHistogram); Deterministic
// filters them out, so the deterministic identity of a snapshot never
// contains a wall-clock read. The package itself never reads the
// clock — wall values are sampled by callers that carry their own
// reviewed //grinchvet:ignore waivers.
//
// Cost model. Like the nil obs.Tracer (DESIGN.md §10), a nil *Registry
// hands out nil instruments and every Add/Set/Observe on a nil
// instrument is a single nil-check branch — the attack hot path pays
// nothing measurable when metrics are off (BenchmarkAttackNilMetrics
// pins this). Active instruments are lock-free atomics; the registry
// mutex is only taken at instrument resolution and snapshot time.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Series kinds.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// Label is one name dimension. Labels on an instrument are sorted by
// key, so the same label set always produces the same series identity.
type Label struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// L builds a label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing uint64. A nil Counter is a
// no-op: components resolve instruments once at construction and emit
// unconditionally.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable signed value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets with exact integer
// upper bounds (inclusive: an observation lands in the first bucket
// whose bound is >= the value; larger values land in the implicit +Inf
// overflow bucket). Bounds are fixed at registration, so two
// histograms registered identically are always mergeable.
type Histogram struct {
	bounds []uint64
	counts []atomic.Uint64 // len(bounds)+1; last is the overflow bucket
	sum    atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// ExpBuckets returns n exponentially spaced integer bounds
// {start, start·factor, start·factor², …}.
func ExpBuckets(start, factor uint64, n int) []uint64 {
	out := make([]uint64, 0, n)
	b := start
	for i := 0; i < n; i++ {
		out = append(out, b)
		b *= factor
	}
	return out
}

// Canonical bucket sets shared across the stack, so worker and
// coordinator series always merge.
var (
	// DurationMSBuckets covers per-job wall durations from 1ms to 1min.
	DurationMSBuckets = []uint64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000, 60000}
	// EncryptionBuckets covers per-job victim-encryption counts up to
	// the paper's 1M practicality cap.
	EncryptionBuckets = ExpBuckets(64, 4, 8) // 64 .. ~1M
	// ObservationBuckets covers per-segment elimination lengths.
	ObservationBuckets = ExpBuckets(4, 4, 10) // 4 .. ~1M
)

// family is one registered metric name: its metadata plus all labeled
// series under it.
type family struct {
	name   string
	help   string
	kind   string
	wall   bool
	bounds []uint64
	series map[string]*labeledSeries // label signature → series
}

// labeledSeries is one (name, labels) instrument.
type labeledSeries struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry owns families and hands out instruments. The zero value is
// not usable; use New. A nil *Registry is valid and hands out nil
// instruments — the disabled fast path.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// New returns an empty registry.
func New() *Registry { return &Registry{fams: map[string]*family{}} }

// sortLabels returns labels sorted by key (copying, so callers'
// literals are never mutated).
func sortLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// labelSig renders a sorted label list into the series map key.
func labelSig(labels []Label) string {
	sig := ""
	for _, l := range labels {
		sig += l.Key + "\x00" + l.Value + "\x00"
	}
	return sig
}

// resolve returns (creating if needed) the series for (name, labels),
// enforcing kind/bound consistency: re-registering a name with a
// different shape is a programming error and panics.
func (r *Registry) resolve(name, help, kind string, wall bool, bounds []uint64, labels []Label) *labeledSeries {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{
			name:   name,
			help:   help,
			kind:   kind,
			wall:   wall,
			bounds: append([]uint64(nil), bounds...),
			series: map[string]*labeledSeries{},
		}
		r.fams[name] = f
	} else {
		if f.kind != kind || f.wall != wall || !boundsEqual(f.bounds, bounds) {
			panic("metrics: " + name + " re-registered with a different shape")
		}
		if f.help == "" {
			f.help = help
		}
	}
	sorted := sortLabels(labels)
	sig := labelSig(sorted)
	ls := f.series[sig]
	if ls == nil {
		ls = &labeledSeries{labels: sorted}
		switch kind {
		case KindCounter:
			ls.counter = &Counter{}
		case KindGauge:
			ls.gauge = &Gauge{}
		case KindHistogram:
			ls.hist = &Histogram{
				bounds: f.bounds,
				counts: make([]atomic.Uint64, len(f.bounds)+1),
			}
		}
		f.series[sig] = ls
	}
	return ls
}

func boundsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter returns the counter for (name, labels), registering it on
// first use. Nil registry → nil counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.resolve(name, help, KindCounter, false, nil, labels).counter
}

// Gauge returns the gauge for (name, labels).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.resolve(name, help, KindGauge, false, nil, labels).gauge
}

// WallGauge is Gauge for a wall-clock-derived value: the series is
// flagged and excluded from deterministic snapshots.
func (r *Registry) WallGauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.resolve(name, help, KindGauge, true, nil, labels).gauge
}

// Histogram returns the fixed-bucket histogram for (name, labels).
// bounds must be ascending integers; they are fixed at first
// registration.
func (r *Registry) Histogram(name, help string, bounds []uint64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.resolve(name, help, KindHistogram, false, bounds, labels).hist
}

// WallHistogram is Histogram for wall-clock-derived samples (per-job
// wall durations): flagged, excluded from deterministic snapshots.
func (r *Registry) WallHistogram(name, help string, bounds []uint64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.resolve(name, help, KindHistogram, true, bounds, labels).hist
}

// Snapshot returns every series' current value, sorted by (name, label
// signature) — byte-deterministic for deterministic inputs. Nil
// registry → nil.
func (r *Registry) Snapshot() []Series {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Series
	names := make([]string, 0, len(r.fams))
	for name := range r.fams { //grinchvet:ignore maporder key collection; sorted on the next line
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := r.fams[name]
		sigs := make([]string, 0, len(f.series))
		for sig := range f.series { //grinchvet:ignore maporder key collection; sorted on the next line
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			ls := f.series[sig]
			s := Series{
				Name:   f.name,
				Labels: ls.labels,
				Kind:   f.kind,
				Wall:   f.wall,
				Help:   f.help,
			}
			switch f.kind {
			case KindCounter:
				s.Value = ls.counter.Value()
			case KindGauge:
				s.Gauge = ls.gauge.Value()
			case KindHistogram:
				s.Bounds = f.bounds
				s.Counts = make([]uint64, len(ls.hist.counts))
				for i := range ls.hist.counts {
					s.Counts[i] = ls.hist.counts[i].Load()
				}
				s.Sum = ls.hist.sum.Load()
			}
			out = append(out, s)
		}
	}
	return out
}
