package gift

import (
	"encoding/hex"
	"testing"
	"testing/quick"

	"grinch/internal/bitutil"
)

// The known-answer vectors below are the official ones published with the
// GIFT reference implementation (github.com/giftcipher/gift, the same
// repository the GRINCH paper's experimental setup uses).
var gift64KATs = []struct {
	key, pt, ct string
}{
	{
		key: "00000000000000000000000000000000",
		pt:  "0000000000000000",
		ct:  "f62bc3ef34f775ac",
	},
	{
		key: "fedcba9876543210fedcba9876543210",
		pt:  "fedcba9876543210",
		ct:  "c1b71f66160ff587",
	},
}

func mustKey(t *testing.T, s string) [16]byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != 16 {
		t.Fatalf("bad key literal %q: %v", s, err)
	}
	var k [16]byte
	copy(k[:], b)
	return k
}

func mustUint64(t *testing.T, s string) uint64 {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != 8 {
		t.Fatalf("bad block literal %q: %v", s, err)
	}
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return v
}

func TestGift64KnownAnswers(t *testing.T) {
	for _, kat := range gift64KATs {
		c := NewCipher64(mustKey(t, kat.key))
		pt := mustUint64(t, kat.pt)
		want := mustUint64(t, kat.ct)
		if got := c.EncryptBlock(pt); got != want {
			t.Errorf("key %s: Encrypt(%s) = %016x, want %s", kat.key, kat.pt, got, kat.ct)
		}
		if got := c.DecryptBlock(want); got != pt {
			t.Errorf("key %s: Decrypt(%s) = %016x, want %s", kat.key, kat.ct, got, kat.pt)
		}
	}
}

func TestGift64ByteInterface(t *testing.T) {
	for _, kat := range gift64KATs {
		c := NewCipher64(mustKey(t, kat.key))
		src, _ := hex.DecodeString(kat.pt)
		want, _ := hex.DecodeString(kat.ct)
		dst := make([]byte, 8)
		c.Encrypt(dst, src)
		if hex.EncodeToString(dst) != kat.ct {
			t.Errorf("Encrypt bytes = %x, want %x", dst, want)
		}
		back := make([]byte, 8)
		c.Decrypt(back, dst)
		if hex.EncodeToString(back) != kat.pt {
			t.Errorf("Decrypt bytes = %x, want %s", back, kat.pt)
		}
	}
}

func TestGift64EncryptInPlace(t *testing.T) {
	c := NewCipher64(mustKey(t, gift64KATs[1].key))
	buf, _ := hex.DecodeString(gift64KATs[1].pt)
	c.Encrypt(buf, buf)
	if hex.EncodeToString(buf) != gift64KATs[1].ct {
		t.Fatalf("in-place Encrypt = %x, want %s", buf, gift64KATs[1].ct)
	}
}

func TestGift64RoundTripQuick(t *testing.T) {
	f := func(keyLo, keyHi, pt uint64) bool {
		c := NewCipher64FromWord(bitutil.Word128{Lo: keyLo, Hi: keyHi})
		return c.DecryptBlock(c.EncryptBlock(pt)) == pt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGift64BitslicedAgreesQuick(t *testing.T) {
	f := func(keyLo, keyHi, pt uint64) bool {
		c := NewCipher64FromWord(bitutil.Word128{Lo: keyLo, Hi: keyHi})
		return c.EncryptBlockBitsliced(pt) == c.EncryptBlock(pt) &&
			c.DecryptBlockBitsliced(c.EncryptBlock(pt)) == pt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRound64Inverse(t *testing.T) {
	f := func(state uint64, u, v uint16, cIdx uint8) bool {
		rk := RoundKey64{U: u, V: v, Const: RoundConstants[int(cIdx)%Rounds64]}
		return InvRound64(Round64(state, rk), rk) == state
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermBits64Inverse(t *testing.T) {
	f := func(s uint64) bool {
		return InvPermBits64(PermBits64(s)) == s && PermBits64(InvPermBits64(s)) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubCells64MatchesPerNibble(t *testing.T) {
	f := func(s uint64) bool {
		out := SubCells64(s)
		for i := uint(0); i < 16; i++ {
			if bitutil.Nibble(out, i) != uint64(SBox[bitutil.Nibble(s, i)]) {
				return false
			}
		}
		return InvSubCells64(out) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestKeyScheduleCoversAllBitsInFourRounds verifies the property GRINCH
// exploits: rounds 1..4 together consume all 128 key bits exactly once
// (32 bits per round), so recovering four consecutive round keys yields
// the master key.
func TestKeyScheduleCoversAllBitsInFourRounds(t *testing.T) {
	key := bitutil.Word128{Lo: 0x0123456789abcdef, Hi: 0xfedcba9876543210}
	rks := ExpandKey64(key)

	// Round r uses limbs k_{2r+1}, k_{2r} of the original key (the key
	// state shifts right by two limbs per round, unrotated for the
	// first four rounds' extraction).
	for r := 0; r < 4; r++ {
		wantU := key.Word16(uint(2*r + 1))
		wantV := key.Word16(uint(2 * r))
		if rks[r].U != wantU || rks[r].V != wantV {
			t.Fatalf("round %d key = (U=%04x,V=%04x), want (U=%04x,V=%04x)",
				r+1, rks[r].U, rks[r].V, wantU, wantV)
		}
	}
}

// TestRecoverMasterKeyFromFourRoundKeys checks the reassembly direction:
// the four first round keys determine the master key.
func TestRecoverMasterKeyFromFourRoundKeys(t *testing.T) {
	f := func(lo, hi uint64) bool {
		key := bitutil.Word128{Lo: lo, Hi: hi}
		rks := ExpandKey64(key)
		var rebuilt bitutil.Word128
		for r := 0; r < 4; r++ {
			rebuilt = rebuilt.SetWord16(uint(2*r), rks[r].V)
			rebuilt = rebuilt.SetWord16(uint(2*r+1), rks[r].U)
		}
		return rebuilt == key
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateKeyStatePeriodicity(t *testing.T) {
	// The key-state update is a bijection; iterating it must never lose
	// information. Check that distinct keys stay distinct over many
	// iterations (weak but cheap sanity) and that the documented limb
	// movement holds for one step.
	ks := bitutil.Word128{Lo: 0x1111222233334444, Hi: 0x5555666677778888}
	next := UpdateKeyState(ks)
	if next.Word16(0) != ks.Word16(2) || next.Word16(5) != ks.Word16(7) {
		t.Fatalf("limb shift wrong: next=%v ks=%v", next, ks)
	}
	if next.Word16(7) != bitutil.RotR16(ks.Word16(1), 2) {
		t.Fatalf("k7 rotation wrong")
	}
	if next.Word16(6) != bitutil.RotR16(ks.Word16(0), 12) {
		t.Fatalf("k6 rotation wrong")
	}
}

func TestEncryptTracedMatchesPlain(t *testing.T) {
	c := NewCipher64(mustKey(t, gift64KATs[1].key))
	pt := mustUint64(t, gift64KATs[1].pt)
	count := 0
	ct := c.EncryptTraced(pt, ObserverFunc(func(round, segment int, index uint8) {
		count++
		if round < 1 || round > Rounds64 {
			t.Fatalf("round %d out of range", round)
		}
		if segment < 0 || segment >= Segments64 {
			t.Fatalf("segment %d out of range", segment)
		}
		if index > 0xf {
			t.Fatalf("index %#x out of range", index)
		}
	}))
	if ct != c.EncryptBlock(pt) {
		t.Fatalf("traced ciphertext %016x != plain %016x", ct, c.EncryptBlock(pt))
	}
	if count != Rounds64*Segments64 {
		t.Fatalf("observed %d lookups, want %d", count, Rounds64*Segments64)
	}
}

func TestSBoxInputsConsistent(t *testing.T) {
	c := NewCipher64(mustKey(t, gift64KATs[1].key))
	pt := mustUint64(t, gift64KATs[1].pt)
	states := c.SBoxInputs(pt)
	if len(states) != Rounds64 {
		t.Fatalf("got %d states, want %d", len(states), Rounds64)
	}
	if states[0] != pt {
		t.Fatalf("round-1 S-box input %016x != plaintext %016x", states[0], pt)
	}
	// The trace observer must report exactly the nibbles of each state.
	r := 0
	c.EncryptTraced(pt, ObserverFunc(func(round, segment int, index uint8) {
		if round != r+1 && segment == 0 {
			r = round - 1
		}
		if got := uint8(bitutil.Nibble(states[round-1], uint(segment))); got != index {
			t.Fatalf("round %d segment %d: trace index %#x, state nibble %#x", round, segment, index, got)
		}
	}))
}

func TestPartialEncryptDecrypt64(t *testing.T) {
	c := NewCipher64(mustKey(t, gift64KATs[0].key))
	rks := c.RoundKeys()
	pt := uint64(0xdeadbeefcafef00d)
	for n := 0; n <= Rounds64; n++ {
		mid := PartialEncrypt64(pt, rks, n)
		if PartialDecrypt64(mid, rks, n) != pt {
			t.Fatalf("partial round-trip failed at n=%d", n)
		}
	}
	if PartialEncrypt64(pt, rks, Rounds64) != c.EncryptBlock(pt) {
		t.Fatalf("full partial encrypt != EncryptBlock")
	}
}

func TestPartialEncrypt64PanicsOnTooManyRounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n > len(rks)")
		}
	}()
	PartialEncrypt64(0, make([]RoundKey64, 3), 4)
}

// TestAvalanche64 is a statistical sanity check: flipping one plaintext
// bit should flip roughly half the ciphertext bits after full encryption.
func TestAvalanche64(t *testing.T) {
	c := NewCipher64(mustKey(t, gift64KATs[1].key))
	pt := uint64(0x0123456789abcdef)
	base := c.EncryptBlock(pt)
	total := 0
	for i := uint(0); i < 64; i++ {
		diff := base ^ c.EncryptBlock(pt^(1<<i))
		n := 0
		for d := diff; d != 0; d &= d - 1 {
			n++
		}
		total += n
		if n < 10 || n > 54 {
			t.Errorf("bit %d: only %d output bits flipped", i, n)
		}
	}
	avg := float64(total) / 64
	if avg < 28 || avg > 36 {
		t.Fatalf("average avalanche %.2f bits, want ≈32", avg)
	}
}
