package core

// GIFT-128 extension of the GRINCH attack. The paper demonstrates the
// attack on GIFT-64; GIFT-128 (the variant used by most GIFT-based NIST
// candidates) has the same structure with a different AddRoundKey
// geometry — key bits land on segment bits 1 (V) and 2 (U) instead of 0
// and 1, bit 0 is key-free, and each round consumes 64 key bits, so two
// attacked rounds cover the whole 128-bit key.
//
// A notable consequence of the shifted key positions: a 2-word cache
// line hides only index bit 0, which carries no key material in
// GIFT-128, so — unlike GIFT-64 — the attack loses nothing at 2-word
// lines (TestPairsForLine128Widths documents this).

import (
	"fmt"

	"grinch/internal/bitutil"
	"grinch/internal/gift"
	"grinch/internal/probe"
	"grinch/internal/rng"
)

// TargetSpec128 pins one GIFT-128 S-box access, mirroring TargetSpec.
type TargetSpec128 struct {
	Round   int
	Segment int
	// Sources are the four round-Round S-box cells feeding the target,
	// indexed by target bit position.
	Sources [4]Source
	// ConstXor is the round-constant contribution to the observed index
	// (bit 3 only).
	ConstXor uint8
}

// NewTarget128 builds the target specification for round key t and
// segment g (0..31) of GIFT-128.
func NewTarget128(t, g int) TargetSpec128 {
	if t < 1 || t > gift.Rounds128 {
		panic(fmt.Sprintf("core: round %d out of range", t))
	}
	if g < 0 || g >= gift.Segments128 {
		panic(fmt.Sprintf("core: segment %d out of range", g))
	}
	spec := TargetSpec128{Round: t, Segment: g}
	for j := 0; j < 4; j++ {
		p := int(gift.InvPerm128[4*g+j])
		spec.Sources[j] = Source{
			Segment: p / 4,
			Bit:     p % 4,
			Inputs:  sboxBitList(p % 4),
		}
	}
	// GIFT-128 XORs the fixed 1 into state bit 127 (segment 31, bit 3)
	// and constant bits c_i into bits 4i+3 for i = 0..5.
	c := gift.RoundConstants[t-1]
	switch {
	case g == 31:
		spec.ConstXor = 1 << 3
	case g < 6:
		spec.ConstXor = (c >> g & 1) << 3
	}
	return spec
}

// ExpectedIndex returns the observed S-box index for round-key bits
// (v, u) at this segment: GIFT-128 XORs v into index bit 1 and u into
// bit 2.
func (t TargetSpec128) ExpectedIndex(v, u uint8) uint8 {
	return pinnedValue ^ t.ConstXor ^ (v&1<<1 | u&1<<2)
}

// KeyBits reverse-engineers the two key bits from an observed index.
func (t TargetSpec128) KeyBits(index uint8) (v, u uint8) {
	d := index ^ pinnedValue ^ t.ConstXor
	return d >> 1 & 1, d >> 2 & 1
}

// FeasibleLines returns the lines the pinned target can land on.
func (t TargetSpec128) FeasibleLines(lineWords int) probe.LineSet {
	var set probe.LineSet
	for p := uint8(0); p < 4; p++ {
		set = set.Add(int(t.ExpectedIndex(p&1, p>>1)) / lineWords)
	}
	return set
}

// PairsForLine returns the candidate (v | u<<1) pairs consistent with an
// observed line.
func (t TargetSpec128) PairsForLine(line, lineWords int) []uint8 {
	var pairs []uint8
	for p := uint8(0); p < 4; p++ {
		if int(t.ExpectedIndex(p&1, p>>1))/lineWords == line {
			pairs = append(pairs, p)
		}
	}
	return pairs
}

// CraftState builds the round-Round S-box input state with the four
// source segments pinned and all others random.
func (t TargetSpec128) CraftState(r *rng.Source) bitutil.Word128 {
	var state bitutil.Word128
	var pinned uint32
	for _, src := range t.Sources {
		x := src.Inputs[r.Intn(len(src.Inputs))]
		state = state.SetNibble(uint(src.Segment), uint64(x))
		pinned |= 1 << src.Segment
	}
	for seg := uint(0); seg < gift.Segments128; seg++ {
		if pinned&(1<<seg) == 0 {
			state = state.SetNibble(seg, r.Nibble())
		}
	}
	return state
}

// CraftPlaintext inverts rounds Round-1..1 to turn the crafted state
// into a plaintext.
func (t TargetSpec128) CraftPlaintext(r *rng.Source, rks []gift.RoundKey128) bitutil.Word128 {
	state := t.CraftState(r)
	if t.Round == 1 {
		return state
	}
	if len(rks) < t.Round-1 {
		panic(fmt.Sprintf("core: crafting round %d needs %d round keys, have %d",
			t.Round, t.Round-1, len(rks)))
	}
	return gift.PartialDecrypt128(state, rks, t.Round-1)
}

// ParentSegments returns the round-(Round-1) segments whose key bits
// gate the crafted pinning, indexed by target bit position.
func (t TargetSpec128) ParentSegments() [4]int {
	var out [4]int
	for j, src := range t.Sources {
		out[j] = src.Segment
	}
	return out
}
