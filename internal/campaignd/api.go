// Package campaignd is the distributed campaign coordinator: it
// promotes the single-process orchestrator in internal/campaign to a
// sharded, multi-node service while preserving its byte-determinism
// contract end to end.
//
// Roles:
//
//   - The server (this package, served by cmd/campaignd) accepts
//     campaign specs over a small JSON/HTTP API, partitions each
//     spec's canonical job grid into contiguous shards, leases shards
//     to pull-based workers, ingests their results into per-shard
//     journals, and — once every shard is complete — merges the
//     journals in shard order into the same JSONL/CSV sinks
//     cmd/campaign writes.
//   - Workers (internal/campaignd/worker, served by cmd/campaignw)
//     lease one shard at a time, execute its jobs on a local pool via
//     campaign.ExecuteJobs, and stream result batches back.
//
// Determinism. Every job's RNG seed derives from (campaign seed, job
// index) and every result the server ingests or journals is the
// canonical projection (campaign.Result.Canonical — no wall-clock or
// worker fields), so a result is a pure function of the spec no matter
// which node computed it or how many times. Shards are contiguous
// index ranges and the merge walks them in order, so the merged
// JSONL/CSV bytes are identical to a single-process cmd/campaign run
// of the same spec — for any worker count, any shard size, and any
// node-loss/re-issue history. The campaignd tests assert this
// byte-for-byte.
//
// Fault tolerance. Leases carry a TTL and workers heartbeat; a lease
// that expires (node loss) is revoked and its shard re-issued. Results
// ingested before the loss are kept — journaled per shard — so the
// re-issued lease tells the new worker which job indices are already
// done and only the unreported remainder re-executes (the same
// checkpoint idea as cmd/campaign's journal, applied per shard).
// Ingestion and completion are fenced by lease ID: a zombie worker
// whose lease was re-issued gets 410 Gone and abandons the shard.
package campaignd

import (
	"grinch/internal/campaign"
	"grinch/internal/obs/metrics"
)

// API paths (version-prefixed so the wire protocol can evolve).
const (
	PathCampaigns  = "/api/v1/campaigns"
	PathLease      = "/api/v1/lease"
	PathResults    = "/api/v1/results"
	PathHeartbeat  = "/api/v1/heartbeat"
	PathComplete   = "/api/v1/complete"
	PathStatus     = "/status"
	PathStatusJSON = "/api/v1/status"
	PathMetrics    = "/metrics"
)

// SubmitRequest submits one campaign: the spec plus server-side
// execution options.
type SubmitRequest struct {
	Spec campaign.Spec `json:"spec"`
	// ShardSize caps jobs per shard (0: the server's default).
	ShardSize int `json:"shard_size,omitempty"`
	// Out and CSV, when set, are server-side paths the merged JSONL /
	// CSV output is written to once every shard completes. The merged
	// JSONL is always also retrievable from GET /api/v1/campaigns/{id}/output.
	Out string `json:"out,omitempty"`
	CSV string `json:"csv,omitempty"`
}

// SubmitResponse acknowledges a submitted campaign.
type SubmitResponse struct {
	ID     string `json:"id"`
	Jobs   int    `json:"jobs"`
	Shards int    `json:"shards"`
}

// Shard state machine: pending → leased → done, with leased → pending
// on lease expiry (re-issue).
const (
	ShardPending = "pending"
	ShardLeased  = "leased"
	ShardDone    = "done"
)

// ShardStatus is one shard's row in a campaign status report.
type ShardStatus struct {
	ShardRange
	State string `json:"state"`
	// Worker holds the current (leased) or last (done) worker ID.
	Worker string `json:"worker,omitempty"`
	// Done counts results ingested for this shard so far.
	Done int `json:"done"`
	// Reissues counts lease expiries that returned the shard to the
	// pending state.
	Reissues int `json:"reissues,omitempty"`
	// Encryptions sums the victim encryptions of the shard's ingested
	// results (journal-replayed results included).
	Encryptions uint64 `json:"encryptions,omitempty"`
	// P50MS/P90MS/P99MS are ingestion-observed job wall-latency
	// quantiles in milliseconds (0 until results arrive this process —
	// journals store canonical results, which carry no timing).
	P50MS float64 `json:"p50_ms,omitempty"`
	P90MS float64 `json:"p90_ms,omitempty"`
	P99MS float64 `json:"p99_ms,omitempty"`
}

// Campaign states.
const (
	CampaignRunning = "running"
	CampaignMerged  = "merged"
)

// CampaignStatus reports one campaign's progress.
type CampaignStatus struct {
	ID          string `json:"id"`
	Name        string `json:"name"`
	Fingerprint string `json:"fingerprint"`
	State       string `json:"state"`
	Jobs        int    `json:"jobs"`
	// Done counts ingested results across shards; Failed counts ingested
	// results whose job failed.
	Done   int `json:"done"`
	Failed int `json:"failed"`
	// Shards is included by the per-campaign endpoint and omitted from
	// list responses.
	Shards []ShardStatus `json:"shards,omitempty"`
}

// LeaseRequest asks for one shard of work.
type LeaseRequest struct {
	// Worker is the requesting worker's self-assigned identity, used
	// for status display and lease attribution.
	Worker string `json:"worker"`
}

// LeaseResponse grants a lease, or reports that no work is available.
type LeaseResponse struct {
	// Lease is nil when no shard is pending.
	Lease *Lease `json:"lease,omitempty"`
	// AllDone reports that every submitted campaign has merged — the
	// signal a draining worker exits on. Meaningful only when Lease is
	// nil.
	AllDone bool `json:"all_done,omitempty"`
}

// Lease is one granted shard: everything a worker needs to execute it
// without further coordination.
type Lease struct {
	// ID fences the lease: results, heartbeats and completion carrying
	// a revoked lease ID are rejected with 410 Gone.
	ID       string `json:"id"`
	Campaign string `json:"campaign"`
	ShardRange
	// Spec is the full campaign spec; the worker re-expands the
	// canonical job grid locally and slices [Start, End) — cheaper and
	// safer than shipping expanded jobs, since expansion is a pure
	// function of the spec.
	Spec campaign.Spec `json:"spec"`
	// DoneJobs lists job indices of this shard already ingested by the
	// server (from a previous holder of the shard); the worker skips
	// them — mid-shard resume.
	DoneJobs []int `json:"done_jobs,omitempty"`
	// TTLMS is the lease's time-to-live in milliseconds; the worker
	// heartbeats well inside it.
	TTLMS int64 `json:"ttl_ms"`
}

// ReportRequest streams a batch of completed results for a leased
// shard. Results outside the lease's shard range are rejected.
//
// Worker and Metrics piggyback the sender's telemetry delta (see
// metrics.Delta: cumulative totals plus a monotone sequence number, so
// retried or replayed batches can never double-count). The server
// applies the delta even when the lease turns out to be dead —
// telemetry is health data, not shard state.
type ReportRequest struct {
	Lease   string            `json:"lease"`
	Results []campaign.Result `json:"results"`
	Worker  string            `json:"worker,omitempty"`
	Metrics *metrics.Delta    `json:"metrics,omitempty"`
}

// HeartbeatRequest extends a lease, optionally carrying a telemetry
// delta (see ReportRequest).
type HeartbeatRequest struct {
	Lease   string         `json:"lease"`
	Worker  string         `json:"worker,omitempty"`
	Metrics *metrics.Delta `json:"metrics,omitempty"`
}

// CompleteRequest marks a leased shard fully executed. The server
// verifies every index in the shard range has been ingested. Worker
// and Metrics carry the final telemetry delta of the shard.
type CompleteRequest struct {
	Lease   string         `json:"lease"`
	Worker  string         `json:"worker,omitempty"`
	Metrics *metrics.Delta `json:"metrics,omitempty"`
}

// errorResponse is the JSON body of non-2xx API responses.
type errorResponse struct {
	Error string `json:"error"`
}
