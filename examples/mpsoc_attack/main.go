// MPSoC scenario: the attacker owns a dedicated tile on a 3×3 mesh NoC
// and probes the shared cache tile concurrently with the victim — the
// paper's most favourable platform ("the GRINCH was very efficient and
// probed the cache during the first round"). The example shows the
// per-round probe windows and then recovers the full 128-bit key over
// the live platform model.
//
//	go run ./examples/mpsoc_attack
package main

import (
	"fmt"
	"log"

	"grinch/internal/bitutil"
	"grinch/internal/core"
	"grinch/internal/soc"
)

func main() {
	key := bitutil.Word128{Lo: 0x6d70736f63746b31, Hi: 0x6772696e63686b79}
	params := soc.DefaultParams(50)
	node := soc.NewMPSoC(key, params)

	fmt.Println("MPSoC: 3×3 mesh NoC, victim tile (0,0), cache tile (1,1), attacker tile (2,2)")
	fmt.Printf("remote cache access: %v (paper: ≈400 ns)\n", node.RemoteAccessTime())
	fmt.Printf("earliest probed round: %d (paper Table II: 1 at every frequency)\n\n", node.EarliestProbeRound())

	// A dedicated tile means per-round observation windows — show the
	// first few for one encryption.
	sess := node.RunSession(0x0011223344556677)
	fmt.Println("first probe windows of one encryption:")
	for i, w := range sess.Windows {
		if i >= 6 {
			fmt.Printf("  … %d more windows\n\n", len(sess.Windows)-6)
			break
		}
		fmt.Printf("  t=%-10v rounds %2d..%-2d lines %v\n", w.At, w.FirstRound, w.LastRound, w.Set)
	}

	// Full key recovery over the live platform. The platform channel
	// carries real false-absence noise (victim accesses landing in the
	// probe's blind window), so the attack runs with a tolerant
	// elimination threshold instead of strict intersection.
	channel := &soc.PlatformChannel{P: node, LineBytes: params.CacheLineBytes}
	attacker, err := core.NewAttacker(channel, core.Config{
		Seed:            99,
		Threshold:       0.95,
		MinObservations: 48,
		TotalBudget:     500_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := attacker.RecoverKey()
	if err != nil {
		log.Fatalf("attack failed: %v", err)
	}
	kb, rb := key.Bytes(), res.Key.Bytes()
	fmt.Printf("victim key:    %x\n", kb)
	fmt.Printf("recovered key: %x\n", rb)
	fmt.Printf("encryptions:   %d\n", res.Encryptions)
	if res.Key != key {
		log.Fatal("recovery mismatch")
	}
	fmt.Println("full 128-bit key recovered across the NoC.")
}
