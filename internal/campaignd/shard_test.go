package campaignd

import (
	"reflect"
	"testing"
)

func TestPartition(t *testing.T) {
	cases := []struct {
		jobs, size int
		want       []ShardRange
	}{
		{0, 4, nil},
		{1, 4, []ShardRange{{0, 0, 1}}},
		{4, 4, []ShardRange{{0, 0, 4}}},
		{5, 4, []ShardRange{{0, 0, 4}, {1, 4, 5}}},
		{10, 3, []ShardRange{{0, 0, 3}, {1, 3, 6}, {2, 6, 9}, {3, 9, 10}}},
	}
	for _, c := range cases {
		got := Partition(c.jobs, c.size)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Partition(%d, %d) = %v, want %v", c.jobs, c.size, got, c.want)
		}
	}
}

// TestPartitionCoversGrid pins the merge-order precondition: shards
// are contiguous, non-overlapping, in order, and cover [0, numJobs)
// exactly — for any size, including one that does not divide the grid.
func TestPartitionCoversGrid(t *testing.T) {
	for _, jobs := range []int{1, 7, 64, 100, 1000} {
		for _, size := range []int{1, 3, 64, 1000} {
			shards := Partition(jobs, size)
			next := 0
			for i, sh := range shards {
				if sh.Shard != i {
					t.Fatalf("jobs=%d size=%d: shard %d numbered %d", jobs, size, i, sh.Shard)
				}
				if sh.Start != next || sh.End <= sh.Start || sh.Len() > size {
					t.Fatalf("jobs=%d size=%d: bad range %v after index %d", jobs, size, sh, next)
				}
				next = sh.End
			}
			if next != jobs {
				t.Fatalf("jobs=%d size=%d: partition covers [0,%d), want [0,%d)", jobs, size, next, jobs)
			}
		}
	}
}

func TestPartitionDefaultsAndDeterminism(t *testing.T) {
	if got := Partition(100, 0); got[0].Len() != DefaultShardSize {
		t.Fatalf("size 0 did not fall back to DefaultShardSize: %v", got[0])
	}
	a, b := Partition(12345, 77), Partition(12345, 77)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("partition is not deterministic")
	}
}
