package campaignd_test

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"grinch/internal/campaignd"
	"grinch/internal/campaignd/chaos"
	"grinch/internal/campaignd/worker"
)

// chaosWorker runs one draining worker through a fault-injecting
// transport and returns the transport for injection assertions.
func chaosWorker(t *testing.T, url, id string, plan chaos.Plan, retry *campaignd.RetryPolicy, flushRetries int) (*chaos.Transport, error) {
	t.Helper()
	tr := chaos.NewTransport(plan, nil)
	tr.Logf = t.Logf
	err := worker.Run(context.Background(), worker.Config{
		Server:       url,
		ID:           id,
		Exec:         toyExec,
		Workers:      2,
		Batch:        4,
		Poll:         5 * time.Millisecond,
		Drain:        true,
		Transport:    tr,
		Retry:        retry,
		FlushRetries: flushRetries,
		Logf:         t.Logf,
	})
	return tr, err
}

// fastRetry is the default posture with sub-millisecond backoff so
// chaos tests spend no meaningful wall time sleeping.
func fastRetry() *campaignd.RetryPolicy {
	p := campaignd.DefaultRetryPolicy()
	p.Base = 200 * time.Microsecond
	p.Max = 2 * time.Millisecond
	p.Seed = 1
	return &p
}

// TestReportReplayAfterDropResponse is the commit-then-lose-response
// race — the at-least-once hazard this PR exists to close. The server
// commits the first result batch, the response is lost on the wire,
// the client replays the batch, and the server dedupes: the duplicates
// counter absorbs exactly the replayed batch, nothing double-counts,
// and the merged bytes still equal the single-process run.
func TestReportReplayAfterDropResponse(t *testing.T) {
	spec := toySpec(2) // 12 jobs
	wantJSONL, _ := referenceBytes(t, spec)
	srv, ts := newTestServer(t, campaignd.Options{Logf: t.Logf})
	resp, err := srv.Submit(campaignd.SubmitRequest{Spec: spec, ShardSize: 6})
	if err != nil {
		t.Fatal(err)
	}

	plan := chaos.Plan{Faults: []chaos.Fault{
		{Kind: chaos.KindDropResponse, Path: campaignd.PathResults, Start: 1, Length: 1},
	}}
	tr, err := chaosWorker(t, ts.URL, "w-replay", plan, fastRetry(), 0)
	if err != nil {
		t.Fatalf("worker under drop-response: %v", err)
	}
	if got := tr.Injected(chaos.KindDropResponse); got != 1 {
		t.Fatalf("injected %d drop-responses, want 1", got)
	}

	m := srv.Metrics()
	if m.Duplicates != 4 {
		t.Errorf("duplicates = %d, want exactly the replayed batch of 4", m.Duplicates)
	}
	if m.JobsDone != spec.NumJobs() {
		t.Errorf("jobs done = %d, want %d (no loss, no double-count)", m.JobsDone, spec.NumJobs())
	}
	got, err := srv.Output(resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantJSONL) {
		t.Fatal("merged output after replayed batch differs from single-process run")
	}
}

// TestCompleteReplayAfterDropResponse: the server accepts a Complete,
// deletes the lease, and the response is lost. The replayed Complete
// must be acknowledged (the server remembers accepted lease IDs) —
// without that memory the retry gets 410 and the worker books a
// finished shard as lost.
func TestCompleteReplayAfterDropResponse(t *testing.T) {
	spec := toySpec(2)
	wantJSONL, _ := referenceBytes(t, spec)
	srv, ts := newTestServer(t, campaignd.Options{Logf: t.Logf})
	resp, err := srv.Submit(campaignd.SubmitRequest{Spec: spec, ShardSize: 6})
	if err != nil {
		t.Fatal(err)
	}

	plan := chaos.Plan{Faults: []chaos.Fault{
		{Kind: chaos.KindDropResponse, Path: campaignd.PathComplete, Start: 1, Length: 1},
	}}
	tr, err := chaosWorker(t, ts.URL, "w-complete", plan, fastRetry(), 0)
	if err != nil {
		t.Fatalf("worker under complete drop-response: %v", err)
	}
	if got := tr.Injected(chaos.KindDropResponse); got != 1 {
		t.Fatalf("injected %d drop-responses, want 1", got)
	}

	st, err := (&campaignd.Client{Base: ts.URL}).Status(resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != campaignd.CampaignMerged {
		t.Fatalf("campaign state %s after replayed Complete, want merged", st.State)
	}
	got, err := srv.Output(resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantJSONL) {
		t.Fatal("merged output after replayed Complete differs from single-process run")
	}
}

// TestPreHardeningClientLosesShard is the regression demonstration the
// acceptance criteria require: under the exact drop-response scenario
// the hardened stack heals (TestReportReplayAfterDropResponse), the
// pre-hardening posture — single-shot calls, single flush round —
// abandons the shard and fails the worker.
func TestPreHardeningClientLosesShard(t *testing.T) {
	spec := toySpec(2)
	srv, ts := newTestServer(t, campaignd.Options{Logf: t.Logf})
	resp, err := srv.Submit(campaignd.SubmitRequest{Spec: spec, ShardSize: 6})
	if err != nil {
		t.Fatal(err)
	}

	plan := chaos.Plan{Faults: []chaos.Fault{
		{Kind: chaos.KindDropResponse, Path: campaignd.PathResults, Start: 1, Length: 1},
	}}
	legacy := campaignd.NoRetryPolicy()
	_, err = chaosWorker(t, ts.URL, "w-legacy", plan, &legacy, 1)
	if err == nil {
		t.Fatal("the single-shot client survived a dropped response; the hardening demo is vacuous")
	}
	if !strings.Contains(err.Error(), "flush failed") {
		t.Fatalf("worker failed with %v, want an abandoned flush", err)
	}
	st, err := (&campaignd.Client{Base: ts.URL}).Status(resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State == campaignd.CampaignMerged {
		t.Fatal("campaign merged despite the abandoned shard — the failure demo proved nothing")
	}
}

// TestLeaseTTLValidation pins the heartbeat-ticker fix: a lease TTL
// that rounds to zero milliseconds is refused with a clear error
// (previously time.NewTicker(0/3) panicked the worker), and a tiny
// but positive TTL clamps the heartbeat interval instead of dividing
// it to nothing.
func TestLeaseTTLValidation(t *testing.T) {
	t.Run("ttl_ms=0 is refused", func(t *testing.T) {
		clock := newFakeClock()
		srv, ts := newTestServer(t, campaignd.Options{
			LeaseTTL: 500 * time.Microsecond, Now: clock.Now, Logf: t.Logf,
		})
		if _, err := srv.Submit(campaignd.SubmitRequest{Spec: toySpec(1)}); err != nil {
			t.Fatal(err)
		}
		err := runWorker(t, context.Background(), ts.URL, "w-ttl0", 1, toyExec)
		if err == nil || !strings.Contains(err.Error(), "invalid ttl_ms") {
			t.Fatalf("worker err = %v, want an invalid-TTL refusal (not a ticker panic)", err)
		}
	})

	t.Run("tiny ttl clamps the heartbeat", func(t *testing.T) {
		spec := toySpec(1)
		wantJSONL, _ := referenceBytes(t, spec)
		clock := newFakeClock() // frozen clock: the 1ms lease never expires
		srv, ts := newTestServer(t, campaignd.Options{
			LeaseTTL: time.Millisecond, Now: clock.Now, Logf: t.Logf,
		})
		resp, err := srv.Submit(campaignd.SubmitRequest{Spec: spec})
		if err != nil {
			t.Fatal(err)
		}
		if err := runWorker(t, context.Background(), ts.URL, "w-ttl1", 1, toyExec); err != nil {
			t.Fatalf("worker under a 1ms TTL: %v", err)
		}
		got, err := srv.Output(resp.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, wantJSONL) {
			t.Fatal("merged output under a clamped heartbeat differs from single-process run")
		}
	})
}

// TestFleetUnderMixedChaos soaks the quick way: three workers behind
// independently-seeded mixed fault plans (delays, 5xx, lost requests
// and responses) still converge to byte-identical output, and the
// coordinator's fleet status reflects the retries they burned.
func TestFleetUnderMixedChaos(t *testing.T) {
	spec := toySpec(6) // 36 jobs
	wantJSONL, _ := referenceBytes(t, spec)
	srv, ts := newTestServer(t, campaignd.Options{Logf: t.Logf})
	resp, err := srv.Submit(campaignd.SubmitRequest{Spec: spec, ShardSize: 5})
	if err != nil {
		t.Fatal(err)
	}

	mixed := func(seed uint64) chaos.Plan {
		return chaos.Plan{Seed: seed, Faults: []chaos.Fault{
			{Kind: chaos.KindDropResponse, Path: campaignd.PathResults, Probability: 0.15},
			{Kind: chaos.Kind5xx, Probability: 0.1},
			{Kind: chaos.KindDropRequest, Path: campaignd.PathResults, Probability: 0.1},
			{Kind: chaos.KindDelay, DelayMS: 1, Probability: 0.2},
		}}
	}
	type res struct {
		tr  *chaos.Transport
		err error
	}
	results := make(chan res, 3)
	for i, id := range []string{"w-chaos-0", "w-chaos-1", "w-chaos-2"} {
		go func(i int, id string) {
			tr, err := chaosWorker(t, ts.URL, id, mixed(uint64(1000+i)), fastRetry(), 0)
			results <- res{tr, err}
		}(i, id)
	}
	var injected uint64
	for i := 0; i < 3; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("worker under mixed chaos: %v", r.err)
		}
		injected += r.tr.InjectedTotal()
	}
	if injected == 0 {
		t.Fatal("no faults fired; the chaos drill exercised nothing")
	}
	t.Logf("mixed chaos drill injected %d faults", injected)

	got, err := srv.Output(resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantJSONL) {
		t.Fatal("merged output under mixed chaos differs from single-process run")
	}
	fs := srv.FleetStatus()
	if fs.Retry.WorkerRetriesTotal == 0 {
		t.Error("fleet status reports zero worker retries after an injected-fault run")
	}
	if fs.Retry.WorkerBackoffMSTotal == 0 {
		t.Log("note: retries completed with sub-millisecond backoff (expected with the fast test policy)")
	}
}
