package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// DeterminismAnalyzer returns the reproducibility pass. It only fires
// inside the configured deterministic core (Config.DeterministicPkgs),
// where campaign results must be a pure function of (spec, seed):
//
//	wallclock — calls to time.Now / time.Since / time.Until read the
//	            wall clock; timing may be *measured* for metrics but
//	            must never feed deterministic output (see the
//	            //grinchvet:ignore wallclock waivers on the metrics
//	            paths).
//	mathrand  — importing math/rand, math/rand/v2 or crypto/rand:
//	            all randomness must come from internal/rng, whose
//	            sequence is pinned by this repo, not by the Go release.
//	maporder  — ranging over a map: Go randomizes iteration order per
//	            run, so any output or ordering derived from it is
//	            nondeterministic. Sort the keys first (then waive the
//	            collection loop) or iterate a slice.
func DeterminismAnalyzer() *Analyzer {
	return &Analyzer{
		Name:  "determinism",
		Doc:   "forbid wall-clock, stdlib RNG and map-order dependence in the deterministic core",
		Rules: []string{"wallclock", "mathrand", "maporder"},
		Run:   runDeterminism,
	}
}

// wallclockFuncs are the time-package functions that read the wall
// clock. time.Sleep, timers and durations are allowed: they affect
// scheduling, not values.
var wallclockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// forbiddenRandImports maps banned import paths to the explanation.
var forbiddenRandImports = map[string]string{
	"math/rand":    "unseeded/global stdlib RNG",
	"math/rand/v2": "stdlib RNG with per-process seeding",
	"crypto/rand":  "operating-system entropy",
}

func runDeterminism(pass *Pass) {
	if !pass.Config.deterministic(pass.World.ModulePath, pass.Pkg.Path) {
		return
	}
	for _, file := range pass.Pkg.Files {
		// Import bans.
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if why, bad := forbiddenRandImports[path]; bad {
				pass.Report("mathrand", SeverityError, imp, "", path,
					fmt.Sprintf("import of %s (%s) in the deterministic core; derive all randomness from internal/rng", path, why))
			}
		}

		var fn string
		ast.Inspect(file, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.FuncDecl:
				fn = enclosingFuncName(t)
			case *ast.SelectorExpr:
				if pkgPath, ok := qualifiedPkg(pass.Pkg.Info, t); ok &&
					pkgPath == "time" && wallclockFuncs[t.Sel.Name] {
					pass.Report("wallclock", SeverityError, t, fn, "time."+t.Sel.Name,
						fmt.Sprintf("time.%s reads the wall clock inside the deterministic core; results must be a pure function of (spec, seed)", t.Sel.Name))
				}
			case *ast.RangeStmt:
				if rangesOverMap(pass.Pkg.Info, t) {
					pass.Report("maporder", SeverityWarning, t, fn, exprString(t.X),
						fmt.Sprintf("iteration over map %s has randomized order; sort keys before using them for output or ordering", describeExpr(t.X)))
				}
			}
			return true
		})
	}
}

// qualifiedPkg resolves a selector's base to an imported package path,
// when the selector is a qualified identifier (pkg.Name).
func qualifiedPkg(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	obj := info.Uses[id]
	pn, ok := obj.(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}

// rangesOverMap reports whether a range statement iterates a map.
func rangesOverMap(info *types.Info, r *ast.RangeStmt) bool {
	tv, ok := info.Types[r.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}
