package gift

import "grinch/internal/bitutil"

// This file contains the block-parallel bitsliced GIFT-64 kernel behind
// the batched attack pipeline. Where bitsliced.go slices one state into
// its four bit planes (within-block bitslicing, 16-bit planes), the
// Batch64 kernel slices 64 whole states across each other: word b of a
// Batch64 carries state bit b of all 64 blocks, so one boolean
// instruction advances all 64 encryptions by one gate. The S-box layer
// is the same published circuit as sboxPlanes, the permutation is a
// free plane reindexing, and AddRoundKey broadcasts each key-mask bit
// branchlessly — like the within-block variant, no secret-indexed
// access or secret branch exists anywhere in the kernel, which the
// grinchvet leakage pass verifies.

// Batch64 holds 64 GIFT-64 states bitsliced across blocks: bit j of
// word b is state bit b of block j. Load/Store pivot between this
// layout and the natural one-word-per-block layout via the 64×64 bit
// transpose.
type Batch64 [64]uint64

// Load fills the batch from 64 states in one-word-per-block layout.
//
//grinch:secret blocks
func (b *Batch64) Load(blocks *[64]uint64) {
	*b = Batch64(*blocks)
	bitutil.Transpose64((*[64]uint64)(b))
}

// Store writes the batch back out in one-word-per-block layout.
//
//grinch:secret
func (b *Batch64) Store(blocks *[64]uint64) {
	*blocks = [64]uint64(*b)
	bitutil.Transpose64(blocks)
}

// SubCells applies the GIFT S-box to every segment of every block: the
// published circuit of sboxPlanes, evaluated once per segment at
// 64-lane width. Planes 4i..4i+3 are the four index bits of segment i
// across all blocks.
//
//grinch:secret
func (b *Batch64) SubCells() {
	for i := 0; i < 64; i += 4 {
		s0, s1, s2, s3 := b[i], b[i+1], b[i+2], b[i+3]
		s1 ^= s0 & s2
		s0 ^= s1 & s3
		s2 ^= s0 | s1
		s3 ^= s2
		s1 ^= s3
		s3 = ^s3
		s2 ^= s0 & s1
		b[i], b[i+1], b[i+2], b[i+3] = s3, s1, s2, s0 // swap(S0, S3)
	}
}

// InvSubCells applies the inverse S-box to every segment of every
// block (the circuit of invSBoxPlanes at 64-lane width).
//
//grinch:secret
func (b *Batch64) InvSubCells() {
	for i := 0; i < 64; i += 4 {
		s3, s1, s2, s0 := b[i], b[i+1], b[i+2], b[i+3] // undo swap(S0, S3)
		s2 ^= s0 & s1
		s3 = ^s3
		s1 ^= s3
		s3 ^= s2
		s2 ^= s0 | s1
		s0 ^= s1 & s3
		s1 ^= s0 & s2
		b[i], b[i+1], b[i+2], b[i+3] = s0, s1, s2, s3
	}
}

// PermBits applies the GIFT-64 bit permutation: in the bitsliced layout
// a bit permutation is a plane reindexing, free of per-bit extraction.
func (b *Batch64) PermBits() {
	tmp := *b
	for i, p := range Perm64 {
		b[p] = tmp[i]
	}
}

// InvPermBits applies the inverse bit permutation.
func (b *Batch64) InvPermBits() {
	tmp := *b
	for i, p := range InvPerm64 {
		b[p] = tmp[i]
	}
}

// AddRoundKey XORs the round key, fixed bit and round constant into
// every block: each bit of the spread key mask is broadcast to a full
// 64-lane word arithmetically (0 → 0, 1 → all ones), never branched on.
//
//grinch:secret rk
func (b *Batch64) AddRoundKey(rk RoundKey64) {
	b.addRoundKeyMask(spreadKeyBits64(rk))
}

// addRoundKeyMask XORs an already-spread key mask into every block;
// Cipher64 callers pass the cached per-round expansion. The loop runs
// a fixed 64 broadcasts regardless of the mask's weight — iterating
// only set bits would be faster but would make the trip count (and so
// the timing) a function of the secret key.
//
//grinch:secret m
func (b *Batch64) addRoundKeyMask(m uint64) {
	for i := 0; i < 64; i += 4 {
		b[i] ^= -(m >> uint(i) & 1)
		b[i+1] ^= -(m >> uint(i+1) & 1)
		b[i+2] ^= -(m >> uint(i+2) & 1)
		b[i+3] ^= -(m >> uint(i+3) & 1)
	}
}

// Round applies one full GIFT-64 round to all 64 blocks.
//
//grinch:secret rk
func (b *Batch64) Round(rk RoundKey64) {
	b.SubCells()
	b.PermBits()
	b.AddRoundKey(rk)
}

// subCellsPermKeyInto applies one full round — S-box circuit, bit
// permutation, spread key mask — in a single pass into out: each
// segment's four output planes are written straight to their permuted
// positions with the key bit folded in, instead of three separate
// sweeps over the 64 words. The permutation indices come from the
// public Perm64 table and the key broadcast stays arithmetic, so the
// fused pass keeps the kernel's no-secret-index, no-secret-branch,
// fixed-trip-count guarantees. out must not alias b.
//
//grinch:secret m
func (b *Batch64) subCellsPermKeyInto(out *Batch64, m uint64) {
	for i := 0; i < 64; i += 4 {
		s0, s1, s2, s3 := b[i], b[i+1], b[i+2], b[i+3]
		s1 ^= s0 & s2
		s0 ^= s1 & s3
		s2 ^= s0 | s1
		s3 ^= s2
		s1 ^= s3
		s3 = ^s3
		s2 ^= s0 & s1
		p0, p1, p2, p3 := Perm64[i], Perm64[i+1], Perm64[i+2], Perm64[i+3]
		out[p0] = s3 ^ -(m >> p0 & 1) // swap(S0, S3)
		out[p1] = s1 ^ -(m >> p1 & 1)
		out[p2] = s2 ^ -(m >> p2 & 1)
		out[p3] = s0 ^ -(m >> p3 & 1)
	}
}

// InvRound inverts one GIFT-64 round for all 64 blocks.
//
//grinch:secret rk
func (b *Batch64) InvRound(rk RoundKey64) {
	b.AddRoundKey(rk)
	b.InvPermBits()
	b.InvSubCells()
}

// TraceBatch runs rounds 1..last of 64 encryptions bitsliced across
// blocks, calling visit once per round r in [first, last] with the
// bitsliced round-r S-box input state — the batched counterpart of
// SBoxInputsN for a whole lane group. st and st2 are caller-supplied
// scratch (their prior contents are overwritten; the fused round pass
// ping-pongs between them) so the hot path allocates nothing. The
// visited states are bit-identical to the corresponding SBoxInputsN
// elements; a window with first > last runs no rounds past last and
// visits nothing, exactly like the scalar slice indexing.
//
//grinch:secret pts
func (c *Cipher64) TraceBatch(pts *[64]uint64, first, last int, st, st2 *Batch64, visit func(round int, st *Batch64)) {
	if last > Rounds64 {
		last = Rounds64
	}
	cur, next := st, st2
	cur.Load(pts)
	for r := 1; r <= last; r++ {
		if r >= first {
			visit(r, cur)
		}
		cur.subCellsPermKeyInto(next, c.rkm[r-1])
		cur, next = next, cur
	}
}

// PartialDecryptBatch64 inverts rounds n..1 for 64 states in place —
// the batched counterpart of PartialDecrypt64, used to turn 64 crafted
// round-n+1 input states into the plaintexts that produce them. st is
// caller-supplied scratch.
//
//grinch:secret rks
func PartialDecryptBatch64(states *[64]uint64, rks []RoundKey64, n int, st *Batch64) {
	if n > len(rks) {
		panic("gift: batch partial decrypt needs more round keys than supplied")
	}
	if n <= 0 {
		return
	}
	st.Load(states)
	for r := n - 1; r >= 0; r-- {
		st.InvRound(rks[r])
	}
	st.Store(states)
}
