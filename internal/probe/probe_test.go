package probe

import (
	"testing"
	"testing/quick"

	"grinch/internal/cache"
)

func TestLineSetBasics(t *testing.T) {
	var s LineSet
	s = s.Add(0).Add(3).Add(7)
	if !s.Contains(0) || !s.Contains(3) || !s.Contains(7) || s.Contains(1) {
		t.Fatalf("membership wrong: %v", s)
	}
	if s.Count() != 3 {
		t.Fatalf("Count = %d", s.Count())
	}
	lines := s.Lines()
	if len(lines) != 3 || lines[0] != 0 || lines[1] != 3 || lines[2] != 7 {
		t.Fatalf("Lines = %v", lines)
	}
	if s.String() != "{0,3,7}" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestLineSetSole(t *testing.T) {
	if LineSet(0).Sole() != -1 {
		t.Fatal("empty set has a sole line")
	}
	if LineSet(0b1000).Sole() != 3 {
		t.Fatal("sole of {3} wrong")
	}
	if LineSet(0b1010).Sole() != -1 {
		t.Fatal("two-line set has a sole line")
	}
}

func TestLineSetOpsQuick(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := LineSet(a), LineSet(b)
		return x.Intersect(y) == y.Intersect(x) &&
			x.Union(y) == y.Union(x) &&
			x.Intersect(x.Union(y)) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFullSet(t *testing.T) {
	if FullSet(4) != LineSet(0b1111) {
		t.Fatalf("FullSet(4) = %v", FullSet(4))
	}
	if FullSet(16).Count() != 16 {
		t.Fatal("FullSet(16) wrong")
	}
}

func TestTableLayout(t *testing.T) {
	tab := TableLayout{Base: 0x100, EntryBytes: 1, Entries: 16}
	if tab.EntryAddr(5) != 0x105 {
		t.Fatalf("EntryAddr(5) = %#x", tab.EntryAddr(5))
	}
	for _, c := range []struct{ lineBytes, lines int }{{1, 16}, {2, 8}, {4, 4}, {8, 2}, {16, 1}, {32, 1}} {
		if got := tab.LinesIn(c.lineBytes); got != c.lines {
			t.Errorf("LinesIn(%d) = %d, want %d", c.lineBytes, got, c.lines)
		}
	}
	if tab.LineOf(7, 4) != 1 {
		t.Fatalf("LineOf(7,4) = %d", tab.LineOf(7, 4))
	}
}

func paperCache(t *testing.T, lineBytes int) *cache.Cache {
	t.Helper()
	c, err := cache.New(cache.PaperConfig(lineBytes))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFlushReloadObservesVictimAccesses(t *testing.T) {
	c := paperCache(t, 1)
	tab := TableLayout{Base: 0x400, EntryBytes: 1, Entries: 16}
	fr := &FlushReload{Cache: c, Table: tab}

	fr.Flush()
	// Victim touches entries 3, 5, 11.
	for _, e := range []int{3, 5, 11} {
		c.Access(tab.EntryAddr(e))
	}
	set, _ := fr.Reload()
	want := LineSet(0).Add(3).Add(5).Add(11)
	if set != want {
		t.Fatalf("observed %v, want %v", set, want)
	}
}

func TestFlushReloadLineGranularity(t *testing.T) {
	c := paperCache(t, 4) // 4 entries per line
	tab := TableLayout{Base: 0x400, EntryBytes: 1, Entries: 16}
	fr := &FlushReload{Cache: c, Table: tab}
	fr.Flush()
	c.Access(tab.EntryAddr(6)) // line 1
	set, _ := fr.Reload()
	if set != LineSet(0).Add(1) {
		t.Fatalf("observed %v, want {1}", set)
	}
}

func TestFlushReloadSecondReloadSeesAll(t *testing.T) {
	// The reload itself warms the lines, so without a fresh flush the
	// next reload reports everything resident (the reason the attack
	// must flush per observation window).
	c := paperCache(t, 1)
	tab := TableLayout{Base: 0, EntryBytes: 1, Entries: 16}
	fr := &FlushReload{Cache: c, Table: tab}
	fr.Flush()
	c.Access(tab.EntryAddr(2))
	fr.Reload()
	set, _ := fr.Reload()
	if set != FullSet(16) {
		t.Fatalf("second reload = %v, want full set", set)
	}
}

func TestFlushReloadEmptyAfterFlush(t *testing.T) {
	c := paperCache(t, 1)
	tab := TableLayout{Base: 0x80, EntryBytes: 1, Entries: 16}
	fr := &FlushReload{Cache: c, Table: tab}
	for i := 0; i < 16; i++ {
		c.Access(tab.EntryAddr(i))
	}
	fr.Flush()
	set, _ := fr.Reload()
	if set != 0 {
		t.Fatalf("after flush, reload reports %v", set)
	}
}

func TestPrimeProbeObservesVictimAccesses(t *testing.T) {
	// Small cache so priming is feasible: 4 sets, 2 ways, 1-byte lines.
	c, err := cache.New(cache.Config{Sets: 4, Ways: 2, LineBytes: 1, HitLatency: 1, MissLatency: 20, FlushLatency: 1})
	if err != nil {
		t.Fatal(err)
	}
	tab := TableLayout{Base: 0, EntryBytes: 1, Entries: 4}
	pp := &PrimeProbe{Cache: c, Table: tab, EvictionBase: 0x100}

	pp.Prime()
	// Victim touches entry 2 (set 2), evicting one attacker line there.
	c.Access(tab.EntryAddr(2))
	set, _ := pp.Probe()
	if !set.Contains(2) {
		t.Fatalf("probe missed victim access: %v", set)
	}
	if set.Count() != 1 {
		t.Fatalf("probe reported extra sets: %v", set)
	}
}

func TestPrimeProbeQuietVictim(t *testing.T) {
	c, err := cache.New(cache.Config{Sets: 4, Ways: 2, LineBytes: 1, HitLatency: 1, MissLatency: 20, FlushLatency: 1})
	if err != nil {
		t.Fatal(err)
	}
	tab := TableLayout{Base: 0, EntryBytes: 1, Entries: 4}
	pp := &PrimeProbe{Cache: c, Table: tab, EvictionBase: 0x100}
	pp.Prime()
	set, _ := pp.Probe()
	if set != 0 {
		t.Fatalf("idle victim but probe reports %v", set)
	}
}
