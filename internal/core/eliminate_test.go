package core

import (
	"testing"

	"grinch/internal/probe"
)

func TestEliminatorStrictIntersection(t *testing.T) {
	e := NewEliminator(16, 1)
	e.Observe(probe.LineSet(0b0000_1111))
	e.Observe(probe.LineSet(0b0011_0101))
	if got := e.Candidates(); got != probe.LineSet(0b0000_0101) {
		t.Fatalf("candidates = %v", got)
	}
	e.Observe(probe.LineSet(0b0000_0100))
	line, ok := e.Converged(1)
	if !ok || line != 2 {
		t.Fatalf("Converged = (%d,%v), want (2,true)", line, ok)
	}
}

func TestEliminatorBeforeObservations(t *testing.T) {
	e := NewEliminator(8, 1)
	if got := e.Candidates(); got != probe.FullSet(8) {
		t.Fatalf("initial candidates = %v", got)
	}
	if _, ok := e.Converged(0); ok {
		t.Fatal("converged with no observations")
	}
	if e.Exhausted() {
		t.Fatal("exhausted with no observations")
	}
}

func TestEliminatorExhaustion(t *testing.T) {
	e := NewEliminator(4, 1)
	e.Observe(probe.LineSet(0b0011))
	e.Observe(probe.LineSet(0b1100))
	if !e.Exhausted() {
		t.Fatal("disjoint observations should exhaust")
	}
	if _, ok := e.Converged(1); ok {
		t.Fatal("exhausted eliminator converged")
	}
}

func TestEliminatorMinObservationsGate(t *testing.T) {
	e := NewEliminator(4, 1)
	e.Observe(probe.LineSet(0b0001))
	if _, ok := e.Converged(2); ok {
		t.Fatal("converged before MinObservations")
	}
	e.Observe(probe.LineSet(0b0001))
	if line, ok := e.Converged(2); !ok || line != 0 {
		t.Fatalf("Converged = (%d,%v)", line, ok)
	}
}

func TestEliminatorThresholdToleratesAbsence(t *testing.T) {
	e := NewEliminator(4, 0.7)
	// Line 1 present in 4/5 observations (ratio 0.8 ≥ 0.7); line 2
	// present in 2/5 (0.4 < 0.7).
	sets := []probe.LineSet{0b0010, 0b0110, 0b0010, 0b0100, 0b0010}
	for _, s := range sets {
		e.Observe(s)
	}
	if got := e.Candidates(); got != probe.LineSet(0b0010) {
		t.Fatalf("candidates = %v", got)
	}
}

func TestEliminatorIgnoresOutOfRangeLines(t *testing.T) {
	e := NewEliminator(2, 1)
	e.Observe(probe.LineSet(0b1111)) // lines 2,3 beyond range
	e.Observe(probe.LineSet(0b0001))
	if line, ok := e.Converged(1); !ok || line != 0 {
		t.Fatalf("Converged = (%d,%v)", line, ok)
	}
}

func TestEliminatorPanicsOnBadArgs(t *testing.T) {
	for _, fn := range []func(){
		func() { NewEliminator(0, 1) },
		func() { NewEliminator(65, 1) },
		func() { NewEliminator(4, 0) },
		func() { NewEliminator(4, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestWorstPinShare(t *testing.T) {
	// The GIFT S-box is balanced; a wrong hypothesis can leave at most
	// 6/8 of the crafted inputs pinned (and at least something below 1,
	// or hypothesis testing would be impossible).
	if worstPinShare >= 1 || worstPinShare < 0.5 {
		t.Fatalf("worstPinShare = %v, expected in [0.5, 1)", worstPinShare)
	}
}
