package cofb

import (
	"bytes"
	"testing"
)

func FuzzSealOpen(f *testing.F) {
	f.Add([]byte{}, []byte{}, uint64(0))
	f.Add([]byte("hello world"), []byte("ad"), uint64(1))
	f.Add(bytes.Repeat([]byte{0xAA}, 48), []byte{}, uint64(2))
	f.Add(bytes.Repeat([]byte{0x55}, 17), bytes.Repeat([]byte{1}, 33), uint64(3))
	f.Fuzz(func(t *testing.T, pt, ad []byte, nseed uint64) {
		var key [16]byte
		key[0] = byte(nseed)
		a := New(key)
		var nonce [NonceSize]byte
		for i := range nonce {
			nonce[i] = byte(nseed >> (8 * (uint(i) % 8)))
		}
		ct := a.Seal(nil, nonce, pt, ad)
		got, err := a.Open(nil, nonce, ct, ad)
		if err != nil {
			t.Fatalf("Open rejected its own Seal: %v", err)
		}
		if !bytes.Equal(got, pt) {
			t.Fatalf("round trip mismatch: %x vs %x", got, pt)
		}
		// Any single-byte corruption must be rejected.
		if len(ct) > 0 {
			mutated := append([]byte(nil), ct...)
			mutated[int(nseed)%len(mutated)] ^= 0x80
			if _, err := a.Open(nil, nonce, mutated, ad); err == nil {
				t.Fatal("corrupted ciphertext accepted")
			}
		}
	})
}
