package soc

import (
	"grinch/internal/bitutil"
	"grinch/internal/cache"
	"grinch/internal/gift"
	"grinch/internal/noc"
	"grinch/internal/obs/metrics"
	"grinch/internal/probe"
	"grinch/internal/sim"
	"grinch/internal/victim"
)

// MPSoC is the paper's second platform: a tile-based multiprocessor with
// a mesh NoC (XY routing) and a shared cache tile. The attacker runs on
// its own tile, so it probes concurrently with the victim — the paper
// measured a ≈400 ns remote cache access against a ≈1.2 ms round time,
// which is why the MPSoC attacker reaches round 1 at every frequency
// (Table II).
type MPSoC struct {
	params   Params
	cipher   *gift.Cipher64
	table    probe.TableLayout
	sessions uint64
	meter    *probe.Meter
}

// NewMPSoC builds the platform around a victim key.
func NewMPSoC(key bitutil.Word128, params Params) *MPSoC {
	return &MPSoC{
		params: params,
		cipher: gift.NewCipher64FromWord(key),
		table:  probe.TableLayout{Base: params.TableBase, EntryBytes: 1, Entries: 16},
	}
}

// Table returns the victim's S-box table layout.
func (m *MPSoC) Table() probe.TableLayout { return m.table }

// SetMetrics points the per-session Flush+Reload primitive at a metrics
// registry (nil disables).
func (m *MPSoC) SetMetrics(r *metrics.Registry) {
	m.meter = probe.NewMeter(r, PrimitiveFlushReload.String())
}

// Sessions returns how many victim encryptions the platform has run.
func (m *MPSoC) Sessions() uint64 { return m.sessions }

// nocExecutor charges work to a dedicated core whose memory accesses
// cross the mesh to the shared cache tile and back.
type nocExecutor struct {
	proc  *sim.Proc
	clock sim.Clock
	mesh  *noc.Mesh
	cache *cache.Cache
	tile  noc.Coord
	cchTl noc.Coord
	line  int
}

func (e *nocExecutor) Exec(cycles uint64) { e.proc.Wait(e.clock.Cycles(cycles)) }

func (e *nocExecutor) Access(addr uint64) uint64 {
	// The cache lookup happens at the remote tile; its latency is the
	// "processing" leg of the round trip. State is updated on issue,
	// which preserves access ordering at the µs scale the attack sees.
	res := e.cache.Access(addr)
	before := e.proc.Now()
	e.mesh.RoundTrip(e.proc, e.tile, e.cchTl, 4, e.line, e.clock.Cycles(res.Latency))
	return e.clock.CyclesAt(e.proc.Now() - before)
}

// RunSession simulates one encryption of pt with the attacker polling
// Flush+Reload from its own tile. One probe window is produced per poll
// — several per round with the default polling period.
func (m *MPSoC) RunSession(pt uint64) Session {
	return m.runSession(pt, gift.Rounds64)
}

// RunSessionUntil is RunSession with the attacker standing down once the
// victim passes probeUntilRound; the victim's remaining rounds are
// fast-forwarded (their timing can no longer be observed), which makes
// attack campaigns over the platform an order of magnitude cheaper to
// simulate without changing anything the attacker sees.
func (m *MPSoC) RunSessionUntil(pt uint64, probeUntilRound int) Session {
	return m.runSession(pt, probeUntilRound)
}

func (m *MPSoC) runSession(pt uint64, probeUntilRound int) Session {
	m.sessions++
	k := sim.NewKernel()
	clock := sim.ClockMHz(m.params.ClockMHz)
	cch := cache.MustNew(cache.PaperConfig(m.params.CacheLineBytes))
	mesh := noc.MustNew(k, clock, m.params.Mesh)
	vic := victim.New(m.cipher, m.table, m.params.Timing)

	poll := m.params.AttackerPoll
	if poll == 0 {
		// Quarter-round windows keep the union of windows covering any
		// one round narrow enough for candidate elimination (the
		// paper's attacker has the same freedom: its probe is ~3000×
		// faster than a round).
		poll = clock.Cycles(vic.RoundCycles()) / 4
	}

	var sess Session
	done := false
	standDown := false

	k.Spawn("victim", func(p *sim.Proc) {
		ex := &nocExecutor{
			proc: p, clock: clock, mesh: mesh, cache: cch,
			tile: m.params.VictimTile, cchTl: m.params.CacheTile,
			line: m.params.CacheLineBytes,
		}
		// Small startup cost: fetching the plaintext over the NoC.
		mesh.RoundTrip(p, m.params.VictimTile, m.params.CacheTile, 4, 8, 0)
		sess.Ciphertext = vic.Encrypt(&cutoverExecutor{
			slow: ex, fast: &fastExecutor{cache: cch}, standDown: &standDown,
		}, pt)
		done = true
	})

	k.Spawn("attacker", func(p *sim.Proc) {
		ex := &nocExecutor{
			proc: p, clock: clock, mesh: mesh, cache: cch,
			tile: m.params.AttackerTile, cchTl: m.params.CacheTile,
			line: m.params.CacheLineBytes,
		}
		fr := &probe.FlushReload{Cache: cch, Table: m.table, Meter: m.meter}
		flushRemote(ex, fr)
		first := roundOrStart(vic)
		for {
			p.Wait(poll)
			last := roundOrEnd(vic, done)
			set := probeAndFlushRemote(ex, fr)
			sess.Windows = append(sess.Windows, ProbeWindow{
				FirstRound: first,
				LastRound:  last,
				Set:        set,
				At:         p.Now(),
			})
			if done || last > probeUntilRound {
				standDown = true
				break
			}
			first = roundOrStart(vic)
		}
	})

	k.Run()
	sess.CacheStats = cch.Stats()
	return sess
}

// cutoverExecutor runs the victim at full timing fidelity until the
// attacker stands down, then switches to an untimed executor: once no
// probe will ever run again, the remaining rounds' timing is
// unobservable and only the cache-state and ciphertext effects matter.
type cutoverExecutor struct {
	slow, fast victim.Executor
	standDown  *bool
}

func (e *cutoverExecutor) current() victim.Executor {
	if *e.standDown {
		return e.fast
	}
	return e.slow
}

func (e *cutoverExecutor) Exec(cycles uint64)        { e.current().Exec(cycles) }
func (e *cutoverExecutor) Access(addr uint64) uint64 { return e.current().Access(addr) }

// fastExecutor mutates cache state without consuming virtual time.
type fastExecutor struct {
	cache *cache.Cache
}

func (e *fastExecutor) Exec(uint64) {}
func (e *fastExecutor) Access(addr uint64) uint64 {
	e.cache.Access(addr)
	return 0
}

// EarliestProbeRound reports the round the attacker's first reload lands
// in (Table II metric).
func (m *MPSoC) EarliestProbeRound() int {
	sess := m.RunSession(0x0123456789abcdef)
	if len(sess.Windows) == 0 {
		return 0
	}
	return sess.Windows[0].LastRound
}

// flushRemote flushes every table line over the NoC: each flush is a
// one-way command packet plus the flush cost at the cache tile.
func flushRemote(ex *nocExecutor, fr *probe.FlushReload) {
	lineBytes := ex.cache.Config().LineBytes
	n := fr.Table.LinesIn(lineBytes)
	for l := 0; l < n; l++ {
		cycles := ex.cache.FlushLine(fr.Table.Base + uint64(l*lineBytes))
		ex.mesh.Send(ex.proc, ex.tile, ex.cchTl, 4)
		ex.Exec(cycles)
	}
}

// probeAndFlushRemote reloads and immediately re-flushes each table
// line over the NoC, one line at a time. Interleaving the flush with
// the reload keeps the blind window per line to roughly one NoC round
// trip — victim accesses landing inside it are lost, which is the
// platform channel's natural (small) false-absence noise.
func probeAndFlushRemote(ex *nocExecutor, fr *probe.FlushReload) probe.LineSet {
	lineBytes := ex.cache.Config().LineBytes
	n := fr.Table.LinesIn(lineBytes)
	var set probe.LineSet
	for l := 0; l < n; l++ {
		addr := fr.Table.Base + uint64(l*lineBytes)
		res := ex.cache.Access(addr)
		ex.mesh.RoundTrip(ex.proc, ex.tile, ex.cchTl, 4, lineBytes, ex.clock.Cycles(res.Latency))
		if res.Hit {
			set = set.Add(l)
		}
		cycles := ex.cache.FlushLine(addr)
		ex.mesh.Send(ex.proc, ex.tile, ex.cchTl, 4)
		ex.Exec(cycles)
	}
	return set
}

// RemoteAccessTime reports the modelled cost of one attacker cache
// access (processor + NoC + cache response), the paper's ≈400 ns
// figure, at the platform's clock.
func (m *MPSoC) RemoteAccessTime() sim.Time {
	k := sim.NewKernel()
	clock := sim.ClockMHz(m.params.ClockMHz)
	cch := cache.MustNew(cache.PaperConfig(m.params.CacheLineBytes))
	mesh := noc.MustNew(k, clock, m.params.Mesh)
	var rt sim.Time
	k.Spawn("meter", func(p *sim.Proc) {
		res := cch.Access(m.params.TableBase)
		rt = mesh.RoundTrip(p, m.params.AttackerTile, m.params.CacheTile, 4, m.params.CacheLineBytes, clock.Cycles(res.Latency))
	})
	k.Run()
	return rt
}
