// Package leaktable is a grinchvet fixture: the table-based S-box
// pattern the leakage pass must flag, next to a public-index lookup it
// must not.
package leaktable

var sbox = [16]uint8{1, 10, 4, 12, 6, 15, 3, 9, 2, 13, 11, 7, 5, 0, 8, 14}

// SubCells looks the secret state up in a table, nibble by nibble — the
// GRINCH leak in miniature.
//
//grinch:secret s
func SubCells(s uint64) uint64 {
	var out uint64
	for i := uint(0); i < 16; i++ {
		out |= uint64(sbox[(s>>(4*i))&0xf]) << (4 * i) // want "secret-index"
	}
	return out
}

// Public indexes the same table with unannotated data: no finding.
func Public(x uint64) uint64 {
	return uint64(sbox[x&0xf])
}

// LenIsPublic: the length of a secret slice is not secret.
//
//grinch:secret ks
func LenIsPublic(ks []uint64, n int) bool {
	return n > len(ks)
}
