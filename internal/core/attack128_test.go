package core

import (
	"testing"

	"grinch/internal/bitutil"
	"grinch/internal/gift"
	"grinch/internal/oracle"
	"grinch/internal/rng"
)

func cleanChannel128(t *testing.T, key bitutil.Word128, lineWords int) *oracle.Oracle128 {
	t.Helper()
	ch, err := oracle.New128(key, oracle.Config{ProbeRound: 1, Flush: true, LineWords: lineWords})
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func newAttacker128(t *testing.T, ch Channel128, cfg Config) *Attacker128 {
	t.Helper()
	a, err := NewAttacker128(ch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestTarget128SourceBitInvariant(t *testing.T) {
	for _, round := range []int{1, 2, 3} {
		for g := 0; g < 32; g++ {
			spec := NewTarget128(round, g)
			for j, src := range spec.Sources {
				if src.Bit != j {
					t.Fatalf("round %d segment %d: source %d has bit %d", round, g, j, src.Bit)
				}
			}
			seen := map[int]bool{}
			for _, src := range spec.Sources {
				if seen[src.Segment] {
					t.Fatalf("segment %d: duplicate source", g)
				}
				seen[src.Segment] = true
			}
		}
	}
}

func TestTarget128CoverageAcrossSegments(t *testing.T) {
	for j := 0; j < 4; j++ {
		seen := map[int]int{}
		for g := 0; g < 32; g++ {
			seen[NewTarget128(2, g).Sources[j].Segment]++
		}
		for seg := 0; seg < 32; seg++ {
			if seen[seg] != 1 {
				t.Fatalf("bit %d: segment %d feeds %d targets", j, seg, seen[seg])
			}
		}
	}
}

func TestCraftedStatePins128(t *testing.T) {
	r := rng.New(17)
	for trial := 0; trial < 5; trial++ {
		key := bitutil.Word128{Lo: r.Uint64(), Hi: r.Uint64()}
		c := gift.NewCipher128FromWord(key)
		rks := c.RoundKeys()
		for round := 1; round <= 3; round++ {
			for g := 0; g < 32; g += 5 {
				spec := NewTarget128(round, g)
				pt := spec.CraftPlaintext(r, rks[:round-1])
				states := c.SBoxInputs(pt)
				got := uint8(states[round].Nibble(uint(g)))
				v := uint8(rks[round-1].V >> g & 1)
				u := uint8(rks[round-1].U >> g & 1)
				if want := spec.ExpectedIndex(v, u); got != want {
					t.Fatalf("trial %d round %d segment %d: index %#x, want %#x", trial, round, g, got, want)
				}
			}
		}
	}
}

func TestKeyBits128RoundTrip(t *testing.T) {
	for _, g := range []int{0, 5, 6, 30, 31} {
		spec := NewTarget128(1, g)
		for p := uint8(0); p < 4; p++ {
			v, u := p&1, p>>1
			gv, gu := spec.KeyBits(spec.ExpectedIndex(v, u))
			if gv != v || gu != u {
				t.Fatalf("segment %d pair %d: got (%d,%d)", g, p, gv, gu)
			}
		}
	}
}

func TestConstXor128MatchesSpread(t *testing.T) {
	for round := 1; round <= 6; round++ {
		rk := gift.RoundKey128{Const: gift.RoundConstants[round-1]}
		state := gift.AddRoundKey128(bitutil.Word128{}, rk)
		for g := 0; g < 32; g++ {
			spec := NewTarget128(round, g)
			if nib := uint8(state.Nibble(uint(g))); nib != spec.ConstXor {
				t.Fatalf("round %d segment %d: spread %#x, ConstXor %#x", round, g, nib, spec.ConstXor)
			}
		}
	}
}

// TestPairsForLine128Widths documents the GIFT-128 asymmetry: a 2-word
// line hides only index bit 0, which carries no key material, so the
// key pair stays unique; a 4-word line hides v; an 8-word line hides
// both bits.
func TestPairsForLine128Widths(t *testing.T) {
	spec := NewTarget128(1, 3)
	for _, c := range []struct{ words, pairs int }{{1, 1}, {2, 1}, {4, 2}, {8, 4}} {
		line := int(spec.ExpectedIndex(0, 0)) / c.words
		if got := len(spec.PairsForLine(line, c.words)); got != c.pairs {
			t.Fatalf("width %d: %d pairs, want %d", c.words, got, c.pairs)
		}
	}
}

func TestRecoverKey128Ideal(t *testing.T) {
	key := bitutil.Word128{Lo: 0x0123456789abcdef, Hi: 0xfedcba9876543210}
	ch := cleanChannel128(t, key, 1)
	a := newAttacker128(t, ch, Config{Seed: 1})
	res, err := a.RecoverKey128()
	if err != nil {
		t.Fatal(err)
	}
	if res.Key != key {
		t.Fatalf("recovered %016x%016x, want %016x%016x", res.Key.Hi, res.Key.Lo, key.Hi, key.Lo)
	}
	if res.RoundsAttacked != 2 {
		t.Fatalf("attacked %d rounds, want 2 (GIFT-128 uses 64 key bits per round)", res.RoundsAttacked)
	}
	t.Logf("GIFT-128 full key: %d encryptions", res.Encryptions)
	// 32 segments × 2 rounds at ~7-12 encryptions per segment.
	if res.Encryptions > 1500 {
		t.Fatalf("recovery took %d encryptions", res.Encryptions)
	}
}

func TestRecoverKey128ManyKeys(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 5; trial++ {
		key := bitutil.Word128{Lo: r.Uint64(), Hi: r.Uint64()}
		ch := cleanChannel128(t, key, 1)
		a := newAttacker128(t, ch, Config{Seed: uint64(trial) + 10})
		res, err := a.RecoverKey128()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Key != key {
			t.Fatalf("trial %d: wrong key", trial)
		}
	}
}

// TestRecoverKey128TwoWordLinesLossless: GIFT-128's key bits sit at
// index bits 1-2, so a 2-word line costs extra encryptions but no
// hypothesis pass.
func TestRecoverKey128TwoWordLinesLossless(t *testing.T) {
	key := bitutil.Word128{Lo: 0xaabbccddeeff0011, Hi: 0x2233445566778899}
	ch := cleanChannel128(t, key, 2)
	a := newAttacker128(t, ch, Config{Seed: 4})
	res, err := a.RecoverKey128()
	if err != nil {
		t.Fatal(err)
	}
	if res.Key != key {
		t.Fatal("wrong key at 2-word lines")
	}
	if res.RoundsAttacked != 2 {
		t.Fatalf("2-word lines forced %d passes, want 2 (no ambiguity in GIFT-128)", res.RoundsAttacked)
	}
}

func TestRecoverKey128WideLinesImpractical(t *testing.T) {
	// GIFT-128's 32 segments touch essentially every line of a 4-line
	// (4-word) table in every encryption — the observation channel
	// saturates far harder than GIFT-64's (16 segments), making wide
	// lines a structural defence for GIFT-128. The attack must fail
	// cleanly under a budget rather than return a wrong key.
	key := bitutil.Word128{Lo: 0x5a5a5a5aa5a5a5a5, Hi: 0x0ff00ff0f00ff00f}
	ch := cleanChannel128(t, key, 4)
	a := newAttacker128(t, ch, Config{Seed: 6, TotalBudget: 30_000})
	res, err := a.RecoverKey128()
	if err == nil && res.Key != key {
		t.Fatal("wide-line attack returned a wrong key instead of failing")
	}
	if err == nil {
		t.Logf("4-word recovery unexpectedly succeeded in %d encryptions", res.Encryptions)
	}
}

func TestAssembleKey128Inverse(t *testing.T) {
	r := rng.New(31)
	for i := 0; i < 50; i++ {
		key := bitutil.Word128{Lo: r.Uint64(), Hi: r.Uint64()}
		rks := gift.ExpandKey128(key)
		var two [2]gift.RoundKey128
		copy(two[:], rks[:2])
		if AssembleKey128(two) != key {
			t.Fatalf("AssembleKey128 failed for %v", key)
		}
	}
}

func TestVerify128(t *testing.T) {
	key := bitutil.Word128{Lo: 1, Hi: 2}
	pt := bitutil.Word128{Lo: 3, Hi: 4}
	ct := gift.NewCipher128FromWord(key).EncryptBlock(pt)
	if !Verify128(key, pt, ct) {
		t.Fatal("Verify128 rejected the right key")
	}
	if Verify128(bitutil.Word128{Lo: 9}, pt, ct) {
		t.Fatal("Verify128 accepted a wrong key")
	}
}
