// Package noc models the mesh Network-on-Chip of the paper's MPSoC: a
// 2-D mesh of routers with XY deterministic routing (X hops first, then
// Y), per-hop router latency, and per-link serialization so contention
// costs virtual time.
//
// XY routing is deadlock-free on a mesh because the X-then-Y discipline
// orders channel dependencies acyclically; TestXYNoTurnBack encodes that
// property.
package noc

import (
	"fmt"

	"grinch/internal/sim"
)

// Coord is a tile position in the mesh.
type Coord struct {
	X, Y int
}

// String formats a coordinate as "(x,y)".
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Config describes a mesh.
type Config struct {
	// Width and Height are the mesh dimensions in tiles.
	Width, Height int
	// RouterCycles is the pipeline latency of one router traversal.
	RouterCycles uint64
	// LinkCycles is the serialization cost of one flit crossing one
	// link; a packet of N flits occupies each link for N×LinkCycles.
	LinkCycles uint64
	// FlitBytes is the payload carried per flit.
	FlitBytes int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Width < 1 || c.Height < 1 {
		return fmt.Errorf("noc: mesh %dx%d must be at least 1x1", c.Width, c.Height)
	}
	if c.FlitBytes < 1 {
		return fmt.Errorf("noc: FlitBytes = %d must be ≥ 1", c.FlitBytes)
	}
	return nil
}

// Stats accumulates network activity.
type Stats struct {
	Packets   uint64
	Hops      uint64
	TotalTime sim.Time
	WaitTime  sim.Time // time lost to link contention
}

type link struct {
	tail sim.Time // release time of the last packet on this link
}

// Mesh is the network. One Mesh belongs to one kernel.
type Mesh struct {
	cfg   Config
	k     *sim.Kernel
	clock sim.Clock
	// links[from][to] for adjacent tiles, keyed by flattened indices.
	links map[[2]int]*link
	stats Stats
}

// New builds a mesh NoC.
func New(k *sim.Kernel, clock sim.Clock, cfg Config) (*Mesh, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Mesh{cfg: cfg, k: k, clock: clock, links: map[[2]int]*link{}}, nil
}

// MustNew is New for known-good configurations.
func MustNew(k *sim.Kernel, clock sim.Clock, cfg Config) *Mesh {
	m, err := New(k, clock, cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the mesh configuration.
func (m *Mesh) Config() Config { return m.cfg }

func (m *Mesh) index(c Coord) int { return c.Y*m.cfg.Width + c.X }

func (m *Mesh) contains(c Coord) bool {
	return c.X >= 0 && c.X < m.cfg.Width && c.Y >= 0 && c.Y < m.cfg.Height
}

// Route returns the XY path from src to dst, inclusive of both
// endpoints: all X movement first, then all Y movement.
func (m *Mesh) Route(src, dst Coord) []Coord {
	if !m.contains(src) || !m.contains(dst) {
		panic(fmt.Sprintf("noc: route %v→%v outside %dx%d mesh", src, dst, m.cfg.Width, m.cfg.Height))
	}
	path := []Coord{src}
	cur := src
	for cur.X != dst.X {
		if cur.X < dst.X {
			cur.X++
		} else {
			cur.X--
		}
		path = append(path, cur)
	}
	for cur.Y != dst.Y {
		if cur.Y < dst.Y {
			cur.Y++
		} else {
			cur.Y--
		}
		path = append(path, cur)
	}
	return path
}

// Hops returns the hop count (links traversed) between two tiles.
func (m *Mesh) Hops(src, dst Coord) int {
	dx := src.X - dst.X
	if dx < 0 {
		dx = -dx
	}
	dy := src.Y - dst.Y
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// flits returns how many flits a payload needs (minimum 1, for the
// header).
func (m *Mesh) flits(payloadBytes int) uint64 {
	n := uint64(1)
	if payloadBytes > 0 {
		n = uint64((payloadBytes + m.cfg.FlitBytes - 1) / m.cfg.FlitBytes)
	}
	return n
}

func (m *Mesh) linkFor(a, b Coord) *link {
	key := [2]int{m.index(a), m.index(b)}
	l, ok := m.links[key]
	if !ok {
		l = &link{}
		m.links[key] = l
	}
	return l
}

// Send transports a packet from src to dst, blocking the calling process
// until the tail flit arrives. It returns the end-to-end latency.
// Store-and-forward at packet granularity: each link is held for the
// whole packet, which upper-bounds a wormhole router and keeps the
// model deterministic.
func (m *Mesh) Send(p *sim.Proc, src, dst Coord, payloadBytes int) sim.Time {
	start := p.Now()
	path := m.Route(src, dst)
	nflits := m.flits(payloadBytes)
	serial := m.clock.Cycles(nflits * m.cfg.LinkCycles)
	hop := m.clock.Cycles(m.cfg.RouterCycles)

	t := start + hop // source router traversal
	for i := 0; i+1 < len(path); i++ {
		l := m.linkFor(path[i], path[i+1])
		grant := t
		if l.tail > grant {
			grant = l.tail
		}
		m.stats.WaitTime += grant - t
		l.tail = grant + serial
		t = l.tail + hop // downstream router traversal
		m.stats.Hops++
	}
	m.stats.Packets++
	m.stats.TotalTime += t - start
	p.WaitUntil(t)
	return t - start
}

// RoundTrip sends a request of reqBytes from src to dst and a response
// of respBytes back, blocking until the response arrives; remote
// processing time at dst is added between the two legs. This is the
// shape of a remote cache access from a tile (the paper's ~400 ns
// "processor delay, NoC latency and cache memory response time").
func (m *Mesh) RoundTrip(p *sim.Proc, src, dst Coord, reqBytes, respBytes int, processing sim.Time) sim.Time {
	start := p.Now()
	m.Send(p, src, dst, reqBytes)
	if processing > 0 {
		p.Wait(processing)
	}
	m.Send(p, dst, src, respBytes)
	return p.Now() - start
}

// Stats returns a copy of the counters.
func (m *Mesh) Stats() Stats { return m.stats }
