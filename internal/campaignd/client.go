package campaignd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"grinch/internal/campaign"
	"grinch/internal/obs/metrics"
	"grinch/internal/rng"
)

// ErrLeaseGone reports that the server revoked the lease a call
// carried (expiry + re-issue): the worker must abandon the shard and
// lease a fresh one. Never retried — the lease cannot come back.
var ErrLeaseGone = errors.New("campaignd: lease revoked")

// Call classes. Each API call belongs to one class with its own retry
// budget: a report carries committed work and deserves persistence, a
// heartbeat is superseded by the next tick seconds later, a lease
// acquisition is already retried by the worker's pull loop.
const (
	ClassSubmit    = "submit"
	ClassLease     = "lease"
	ClassReport    = "report"
	ClassHeartbeat = "heartbeat"
	ClassComplete  = "complete"
	ClassQuery     = "query"
)

// DefaultCallTimeout bounds one HTTP attempt end to end. The pre-PR
// client used http.DefaultClient — no timeout at all — so a single
// stalled TCP connection hung a worker forever.
const DefaultCallTimeout = 30 * time.Second

// RetryPolicy configures the client's resilience layer: per-class
// attempt budgets, the exponential-backoff shape, the per-attempt
// timeout, and the jitter seed.
//
// Retried calls are safe end to end because every mutating call is
// idempotent server-side: Report deduplicates results by job index
// (results are pure functions of (spec, index)), Complete remembers
// lease IDs it already accepted, Heartbeat just re-extends, and
// telemetry deltas carry monotone sequence numbers. A response lost
// after the server committed therefore costs one duplicate round-trip,
// never a double-count.
type RetryPolicy struct {
	// Per-class total attempt budgets (first try included); 0 means the
	// class's default, negative means exactly one attempt.
	Submit    int
	Lease     int
	Report    int
	Heartbeat int
	Complete  int
	Query     int
	// Base and Max shape the exponential backoff: attempt k waits
	// Base·2^(k-1) capped at Max, plus up to 50% deterministic jitter.
	// Zero means the defaults (25ms base, 2s cap).
	Base time.Duration
	Max  time.Duration
	// CallTimeout bounds each attempt (0: DefaultCallTimeout).
	CallTimeout time.Duration
	// Seed drives the jitter generator. Backoff sequences are a pure
	// function of (Seed, attempt history) — no wall-clock reads — so
	// retry schedules are replayable in tests.
	Seed uint64
}

// DefaultRetryPolicy is the production posture: persistent on calls
// that carry committed work, impatient on calls that are naturally
// superseded.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		Submit:    4,
		Lease:     4,
		Report:    8,
		Heartbeat: 2,
		Complete:  8,
		Query:     3,
		Base:      25 * time.Millisecond,
		Max:       2 * time.Second,
	}
}

// NoRetryPolicy reproduces the pre-chaos client semantics — exactly
// one attempt per call, fail on the first dropped response — kept so
// tests can demonstrate the behavior this layer exists to fix.
func NoRetryPolicy() RetryPolicy {
	return RetryPolicy{
		Submit: -1, Lease: -1, Report: -1, Heartbeat: -1, Complete: -1, Query: -1,
		Base: time.Millisecond, Max: time.Millisecond,
	}
}

// attempts resolves the class's total attempt budget.
func (p RetryPolicy) attempts(class string) int {
	pick := func(v, def int) int {
		switch {
		case v < 0:
			return 1
		case v == 0:
			return def
		default:
			return v
		}
	}
	d := DefaultRetryPolicy()
	switch class {
	case ClassSubmit:
		return pick(p.Submit, d.Submit)
	case ClassLease:
		return pick(p.Lease, d.Lease)
	case ClassReport:
		return pick(p.Report, d.Report)
	case ClassHeartbeat:
		return pick(p.Heartbeat, d.Heartbeat)
	case ClassComplete:
		return pick(p.Complete, d.Complete)
	default:
		return pick(p.Query, d.Query)
	}
}

func (p RetryPolicy) base() time.Duration {
	if p.Base > 0 {
		return p.Base
	}
	return 25 * time.Millisecond
}

func (p RetryPolicy) max() time.Duration {
	if p.Max > 0 {
		return p.Max
	}
	return 2 * time.Second
}

func (p RetryPolicy) timeout() time.Duration {
	if p.CallTimeout > 0 {
		return p.CallTimeout
	}
	return DefaultCallTimeout
}

// transientError marks a failure worth retrying (transport errors,
// truncated bodies, 5xx, 429). RetryAfter carries the server's shed
// hint when one was sent.
type transientError struct {
	err        error
	retryAfter time.Duration
}

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Client is the JSON/HTTP client for the coordinator API, used by the
// shard worker, the CLIs, and the tests. The zero value (plus Base) is
// production-ready: a shared timeout-bearing http.Client and the
// default retry policy.
type Client struct {
	// Base is the server's base URL, e.g. "http://127.0.0.1:8844".
	Base string
	// HTTP overrides the transport; nil uses a shared client with
	// DefaultCallTimeout (never http.DefaultClient, which has no
	// timeout). Chaos drills install a fault-injecting transport here.
	HTTP *http.Client
	// Retry overrides the retry policy; nil means DefaultRetryPolicy.
	Retry *RetryPolicy
	// OnRetry, if set, observes every backoff: the call class, the
	// attempt that failed (1-based), the wait before the next attempt,
	// and the error. The worker wires its retry telemetry here.
	OnRetry func(class string, attempt int, wait time.Duration, err error)

	jmu    sync.Mutex
	jitter *rng.Source
}

// defaultHTTPClient is shared across Clients so connection pools are
// reused; its timeout is a backstop behind the per-attempt context
// timeout.
var defaultHTTPClient = &http.Client{Timeout: 2 * DefaultCallTimeout}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultHTTPClient
}

func (c *Client) policy() RetryPolicy {
	if c.Retry != nil {
		return *c.Retry
	}
	return DefaultRetryPolicy()
}

func (c *Client) url(path string) string {
	return strings.TrimSuffix(c.Base, "/") + path
}

// backoffWait computes the deterministic wait before retrying after
// the k-th failed attempt: Base·2^(k-1) capped at Max, plus up to 50%
// seeded jitter, floored by the server's Retry-After hint (itself
// capped at Max so a coarse seconds-granularity header cannot stall a
// fast test fleet).
func (c *Client) backoffWait(p RetryPolicy, attempt int, err error) time.Duration {
	wait := p.base() << uint(attempt-1)
	if wait > p.max() || wait <= 0 {
		wait = p.max()
	}
	var te *transientError
	if errors.As(err, &te) && te.retryAfter > 0 {
		if ra := min(te.retryAfter, p.max()); ra > wait {
			wait = ra
		}
	}
	c.jmu.Lock()
	if c.jitter == nil {
		c.jitter = rng.New(p.Seed)
	}
	j := c.jitter.Float64()
	c.jmu.Unlock()
	return wait + time.Duration(j*float64(wait)/2)
}

// do round-trips one call with the class's retry budget. body is nil
// for GETs. out may be nil; raw (when non-nil) receives the response
// body instead of JSON-decoding into out.
func (c *Client) do(class, method, path string, body []byte, out any, raw *[]byte) error {
	p := c.policy()
	budget := p.attempts(class)
	var err error
	for attempt := 1; ; attempt++ {
		err = c.once(method, path, body, out, raw, p.timeout())
		if err == nil {
			return nil
		}
		var te *transientError
		if !errors.As(err, &te) {
			return err
		}
		if attempt >= budget {
			if budget > 1 {
				return fmt.Errorf("campaignd: %s failed after %d attempts: %w", class, attempt, err)
			}
			return err
		}
		wait := c.backoffWait(p, attempt, err)
		if c.OnRetry != nil {
			c.OnRetry(class, attempt, wait, err)
		}
		time.Sleep(wait)
	}
}

// once performs a single HTTP attempt under its own timeout.
func (c *Client) once(method, path string, body []byte, out any, raw *[]byte, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.url(path), rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		// Transport-level failure: refused, dropped, timed out. The
		// request may or may not have been committed server-side; every
		// mutating call is idempotent, so replay is safe.
		return &transientError{err: err}
	}
	data, err := decodeResponse(resp)
	if err != nil {
		return err
	}
	if raw != nil {
		*raw = data
		return nil
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("campaignd: decoding %s response: %w", path, err)
	}
	return nil
}

// decodeResponse is the single response-decoding path for every call
// (the JSON API and the raw output endpoint alike): it drains the
// body, classifies the status, and maps error payloads. A body read
// error after a 2xx status is transient — the work committed, only
// the response bytes were lost.
func decodeResponse(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		if resp.StatusCode/100 == 2 {
			return nil, &transientError{err: fmt.Errorf("campaignd: reading response: %w", err)}
		}
		return nil, fmt.Errorf("campaignd: reading %s response: %w", resp.Status, err)
	}
	switch {
	case resp.StatusCode == http.StatusGone:
		return nil, ErrLeaseGone
	case resp.StatusCode == http.StatusTooManyRequests:
		// Overload shedding: always retryable, honoring Retry-After.
		err := fmt.Errorf("campaignd: server shedding load: %s", serverMessage(data, resp.Status))
		return nil, &transientError{err: err, retryAfter: parseRetryAfter(resp.Header.Get("Retry-After"))}
	case resp.StatusCode/100 == 5:
		return nil, &transientError{err: fmt.Errorf("campaignd: server: %s", serverMessage(data, resp.Status))}
	case resp.StatusCode/100 != 2:
		return nil, fmt.Errorf("campaignd: server: %s", serverMessage(data, resp.Status))
	}
	return data, nil
}

// serverMessage extracts the API error payload, falling back to the
// HTTP status line.
func serverMessage(data []byte, status string) string {
	var e errorResponse
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	return fmt.Sprintf("returned %s", status)
}

// parseRetryAfter reads the delay-seconds form of Retry-After (the
// only form the coordinator emits; HTTP-date would need a wall-clock
// read, which the deterministic scope forbids).
func parseRetryAfter(v string) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// post round-trips one JSON request; out may be nil.
func (c *Client) post(class, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return c.do(class, http.MethodPost, path, body, out, nil)
}

// get round-trips one GET.
func (c *Client) get(path string, out any) error {
	return c.do(ClassQuery, http.MethodGet, path, nil, out, nil)
}

// Submit registers a campaign.
func (c *Client) Submit(req SubmitRequest) (SubmitResponse, error) {
	var resp SubmitResponse
	err := c.post(ClassSubmit, PathCampaigns, req, &resp)
	return resp, err
}

// Lease asks for a shard; a nil Lease with AllDone reports a drained
// coordinator.
func (c *Client) Lease(worker string) (LeaseResponse, error) {
	var resp LeaseResponse
	err := c.post(ClassLease, PathLease, LeaseRequest{Worker: worker}, &resp)
	return resp, err
}

// Report streams a result batch for a leased shard.
func (c *Client) Report(leaseID string, results []campaign.Result) error {
	return c.ReportDelta(leaseID, results, "", nil)
}

// ReportDelta is Report with a piggybacked worker telemetry delta
// (ignored server-side when worker is empty or d is nil).
func (c *Client) ReportDelta(leaseID string, results []campaign.Result, worker string, d *metrics.Delta) error {
	return c.post(ClassReport, PathResults, ReportRequest{Lease: leaseID, Results: results, Worker: worker, Metrics: d}, nil)
}

// Heartbeat extends a lease.
func (c *Client) Heartbeat(leaseID string) error {
	return c.HeartbeatDelta(leaseID, "", nil)
}

// HeartbeatDelta is Heartbeat with a piggybacked telemetry delta.
func (c *Client) HeartbeatDelta(leaseID, worker string, d *metrics.Delta) error {
	return c.post(ClassHeartbeat, PathHeartbeat, HeartbeatRequest{Lease: leaseID, Worker: worker, Metrics: d}, nil)
}

// Complete marks a leased shard fully executed. Safe to retry: the
// server remembers accepted completions by lease ID, so a replay after
// a lost response acknowledges instead of 410ing.
func (c *Client) Complete(leaseID string) error {
	return c.CompleteDelta(leaseID, "", nil)
}

// CompleteDelta is Complete with a piggybacked telemetry delta.
func (c *Client) CompleteDelta(leaseID, worker string, d *metrics.Delta) error {
	return c.post(ClassComplete, PathComplete, CompleteRequest{Lease: leaseID, Worker: worker, Metrics: d}, nil)
}

// FleetStatus fetches the machine-readable coordinator status.
func (c *Client) FleetStatus() (FleetStatus, error) {
	var out FleetStatus
	err := c.get(PathStatusJSON, &out)
	return out, err
}

// Statuses lists every campaign.
func (c *Client) Statuses() ([]CampaignStatus, error) {
	var out []CampaignStatus
	err := c.get(PathCampaigns, &out)
	return out, err
}

// Status fetches one campaign with shard detail.
func (c *Client) Status(id string) (CampaignStatus, error) {
	var out CampaignStatus
	err := c.get(PathCampaigns+"/"+id, &out)
	return out, err
}

// Output fetches a merged campaign's canonical JSONL bytes.
func (c *Client) Output(id string) ([]byte, error) {
	var raw []byte
	err := c.do(ClassQuery, http.MethodGet, PathCampaigns+"/"+id+"/output", nil, nil, &raw)
	return raw, err
}
