package noc

import (
	"testing"
	"testing/quick"

	"grinch/internal/sim"
)

func testMesh(t *testing.T, w, h int) (*sim.Kernel, *Mesh) {
	t.Helper()
	k := sim.NewKernel()
	m, err := New(k, sim.ClockMHz(50), Config{
		Width: w, Height: h, RouterCycles: 2, LinkCycles: 1, FlitBytes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return k, m
}

func TestConfigValidation(t *testing.T) {
	k := sim.NewKernel()
	bad := []Config{
		{Width: 0, Height: 3, FlitBytes: 4},
		{Width: 3, Height: 0, FlitBytes: 4},
		{Width: 3, Height: 3, FlitBytes: 0},
	}
	for _, cfg := range bad {
		if _, err := New(k, sim.ClockMHz(50), cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestRouteXYShape(t *testing.T) {
	_, m := testMesh(t, 3, 3)
	path := m.Route(Coord{0, 0}, Coord{2, 2})
	want := []Coord{{0, 0}, {1, 0}, {2, 0}, {2, 1}, {2, 2}}
	if len(path) != len(want) {
		t.Fatalf("path %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path %v, want %v", path, want)
		}
	}
}

func TestRouteSelf(t *testing.T) {
	_, m := testMesh(t, 3, 3)
	path := m.Route(Coord{1, 1}, Coord{1, 1})
	if len(path) != 1 || path[0] != (Coord{1, 1}) {
		t.Fatalf("self route %v", path)
	}
}

// TestXYNoTurnBack encodes the deadlock-freedom discipline: once a
// packet starts moving in Y it never moves in X again, and it never
// reverses direction on either axis.
func TestXYNoTurnBack(t *testing.T) {
	_, m := testMesh(t, 4, 4)
	f := func(sx, sy, dx, dy uint8) bool {
		src := Coord{int(sx) % 4, int(sy) % 4}
		dst := Coord{int(dx) % 4, int(dy) % 4}
		path := m.Route(src, dst)
		turnedY := false
		var lastDX, lastDY int
		for i := 1; i < len(path); i++ {
			ddx := path[i].X - path[i-1].X
			ddy := path[i].Y - path[i-1].Y
			if ddx != 0 && ddy != 0 {
				return false // diagonal hop
			}
			if ddy != 0 {
				turnedY = true
			}
			if ddx != 0 && turnedY {
				return false // X movement after Y began
			}
			if ddx != 0 && lastDX != 0 && ddx != lastDX {
				return false // X reversal
			}
			if ddy != 0 && lastDY != 0 && ddy != lastDY {
				return false // Y reversal
			}
			if ddx != 0 {
				lastDX = ddx
			}
			if ddy != 0 {
				lastDY = ddy
			}
		}
		return len(path) == m.Hops(src, dst)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHopsManhattan(t *testing.T) {
	_, m := testMesh(t, 5, 5)
	if m.Hops(Coord{0, 0}, Coord{3, 4}) != 7 {
		t.Fatal("manhattan distance wrong")
	}
	if m.Hops(Coord{2, 2}, Coord{2, 2}) != 0 {
		t.Fatal("self distance nonzero")
	}
}

func TestRouteOutsideMeshPanics(t *testing.T) {
	_, m := testMesh(t, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Route(Coord{0, 0}, Coord{5, 0})
}

func TestSendLatencyNoContention(t *testing.T) {
	k, m := testMesh(t, 3, 3) // 50 MHz: 20 ns/cycle; router 2cy=40ns, link 1cy/flit
	var lat sim.Time
	k.Spawn("s", func(p *sim.Proc) {
		// 4-byte payload = 1 flit. Path (0,0)→(2,0): 2 links, 3 routers.
		lat = m.Send(p, Coord{0, 0}, Coord{2, 0}, 4)
	})
	k.Run()
	// 3 routers × 40ns + 2 links × 1 flit × 20ns = 120 + 40 = 160ns.
	if want := 160 * sim.Nanosecond; lat != want {
		t.Fatalf("latency %v, want %v", lat, want)
	}
}

func TestSendMultiFlitPayload(t *testing.T) {
	k, m := testMesh(t, 2, 1)
	var lat sim.Time
	k.Spawn("s", func(p *sim.Proc) {
		// 10 bytes / 4-byte flits = 3 flits; 1 link, 2 routers.
		lat = m.Send(p, Coord{0, 0}, Coord{1, 0}, 10)
	})
	k.Run()
	// 2 routers × 40ns + 1 link × 3 flits × 20ns = 80 + 60 = 140ns.
	if want := 140 * sim.Nanosecond; lat != want {
		t.Fatalf("latency %v, want %v", lat, want)
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	k, m := testMesh(t, 2, 1)
	var first, second sim.Time
	k.Spawn("a", func(p *sim.Proc) {
		m.Send(p, Coord{0, 0}, Coord{1, 0}, 4)
		first = p.Now()
	})
	k.Spawn("b", func(p *sim.Proc) {
		m.Send(p, Coord{0, 0}, Coord{1, 0}, 4)
		second = p.Now()
	})
	k.Run()
	if second <= first {
		t.Fatalf("contending packets not serialized: %v then %v", first, second)
	}
	if m.Stats().WaitTime == 0 {
		t.Fatal("no contention wait recorded")
	}
}

func TestOppositeLinksIndependent(t *testing.T) {
	k, m := testMesh(t, 2, 1)
	var a, b sim.Time
	k.Spawn("a", func(p *sim.Proc) {
		a = m.Send(p, Coord{0, 0}, Coord{1, 0}, 4)
	})
	k.Spawn("b", func(p *sim.Proc) {
		b = m.Send(p, Coord{1, 0}, Coord{0, 0}, 4)
	})
	k.Run()
	if a != b {
		t.Fatalf("opposite-direction transfers interfered: %v vs %v", a, b)
	}
}

func TestRoundTrip(t *testing.T) {
	k, m := testMesh(t, 3, 3)
	var rt sim.Time
	k.Spawn("s", func(p *sim.Proc) {
		rt = m.RoundTrip(p, Coord{0, 0}, Coord{2, 0}, 4, 4, 100*sim.Nanosecond)
	})
	k.Run()
	// Two 160ns legs + 100ns processing.
	if want := 420 * sim.Nanosecond; rt != want {
		t.Fatalf("round trip %v, want %v", rt, want)
	}
}

func TestStatsAccumulate(t *testing.T) {
	k, m := testMesh(t, 3, 1)
	k.Spawn("s", func(p *sim.Proc) {
		m.Send(p, Coord{0, 0}, Coord{2, 0}, 4)
		m.Send(p, Coord{2, 0}, Coord{0, 0}, 4)
	})
	k.Run()
	s := m.Stats()
	if s.Packets != 2 || s.Hops != 4 {
		t.Fatalf("stats = %+v", s)
	}
}
