package cache

import "grinch/internal/rng"

// Policy chooses eviction victims within a set. Implementations receive
// Touch on every hit, Insert on every fill, and Invalidate on flushes.
// A Policy instance belongs to exactly one Cache.
type Policy interface {
	// Reset prepares the policy for a cache with the given geometry,
	// discarding all history.
	Reset(sets, ways int)
	// Touch records a hit on (set, way).
	Touch(set, way int)
	// Insert records a fill of (set, way).
	Insert(set, way int)
	// Invalidate records that (set, way) was flushed.
	Invalidate(set, way int)
	// Victim picks the way to evict from a full set.
	Victim(set int) int
	// Name identifies the policy in experiment output.
	Name() string
}

// lru implements true least-recently-used replacement with per-way
// logical timestamps.
type lru struct {
	ways  int
	clock uint64
	last  []uint64 // sets × ways; 0 = never used
}

// NewLRU returns a least-recently-used policy (the default, and the
// paper's platform behaviour).
func NewLRU() Policy { return &lru{} }

func (p *lru) Name() string { return "lru" }

func (p *lru) Reset(sets, ways int) {
	p.ways = ways
	p.clock = 0
	p.last = make([]uint64, sets*ways)
}

func (p *lru) stamp(set, way int) {
	p.clock++
	p.last[set*p.ways+way] = p.clock
}

func (p *lru) Touch(set, way int)  { p.stamp(set, way) }
func (p *lru) Insert(set, way int) { p.stamp(set, way) }
func (p *lru) Invalidate(set, way int) {
	p.last[set*p.ways+way] = 0
}

func (p *lru) Victim(set int) int {
	base := set * p.ways
	best, bestT := 0, p.last[base]
	for w := 1; w < p.ways; w++ {
		if t := p.last[base+w]; t < bestT {
			best, bestT = w, t
		}
	}
	return best
}

// fifo implements first-in-first-out replacement: the victim is the way
// filled longest ago, regardless of hits.
type fifo struct {
	ways  int
	clock uint64
	fill  []uint64
}

// NewFIFO returns a first-in-first-out policy.
func NewFIFO() Policy { return &fifo{} }

func (p *fifo) Name() string { return "fifo" }

func (p *fifo) Reset(sets, ways int) {
	p.ways = ways
	p.clock = 0
	p.fill = make([]uint64, sets*ways)
}

func (p *fifo) Touch(int, int) {}

func (p *fifo) Insert(set, way int) {
	p.clock++
	p.fill[set*p.ways+way] = p.clock
}

func (p *fifo) Invalidate(set, way int) {
	p.fill[set*p.ways+way] = 0
}

func (p *fifo) Victim(set int) int {
	base := set * p.ways
	best, bestT := 0, p.fill[base]
	for w := 1; w < p.ways; w++ {
		if t := p.fill[base+w]; t < bestT {
			best, bestT = w, t
		}
	}
	return best
}

// random evicts a uniformly random way, driven by a deterministic seeded
// generator so simulations stay reproducible.
type random struct {
	ways int
	src  *rng.Source
	seed uint64
}

// NewRandom returns a random-replacement policy seeded deterministically.
func NewRandom(seed uint64) Policy { return &random{seed: seed} }

func (p *random) Name() string { return "random" }

func (p *random) Reset(sets, ways int) {
	p.ways = ways
	p.src = rng.New(p.seed)
}

func (p *random) Touch(int, int)      {}
func (p *random) Insert(int, int)     {}
func (p *random) Invalidate(int, int) {}

func (p *random) Victim(int) int { return p.src.Intn(p.ways) }

// plru implements tree-based pseudo-LRU (the common hardware
// approximation of LRU for high associativity). Ways must be a power of
// two; for other associativities the tree is sized to the next power of
// two and out-of-range victims fall back to way 0.
type plru struct {
	ways  int
	nodes int
	bits  [][]bool // per set: tree of direction bits
}

// NewPLRU returns a tree-based pseudo-LRU policy.
func NewPLRU() Policy { return &plru{} }

func (p *plru) Name() string { return "plru" }

func (p *plru) Reset(sets, ways int) {
	p.ways = ways
	n := 1
	for n < ways {
		n <<= 1
	}
	p.nodes = n - 1
	p.bits = make([][]bool, sets)
	for i := range p.bits {
		p.bits[i] = make([]bool, p.nodes)
	}
}

// touchPath flips the tree bits along the path to way so they point away
// from it.
func (p *plru) touchPath(set, way int) {
	if p.nodes == 0 {
		return
	}
	node := 0
	span := p.nodes + 1 // leaves under current node
	for span > 1 {
		span /= 2
		right := way%(span*2) >= span
		p.bits[set][node] = !right // point away from the touched half
		if right {
			node = 2*node + 2
		} else {
			node = 2*node + 1
		}
	}
}

func (p *plru) Touch(set, way int)      { p.touchPath(set, way) }
func (p *plru) Insert(set, way int)     { p.touchPath(set, way) }
func (p *plru) Invalidate(set, way int) {}

func (p *plru) Victim(set int) int {
	if p.nodes == 0 {
		return 0
	}
	node, way := 0, 0
	span := p.nodes + 1
	for span > 1 {
		span /= 2
		if p.bits[set][node] {
			way += span
			node = 2*node + 2
		} else {
			node = 2*node + 1
		}
	}
	if way >= p.ways {
		return 0
	}
	return way
}

// PolicyByName constructs a policy from its experiment-output name.
// Unknown names return nil.
func PolicyByName(name string, seed uint64) Policy {
	switch name {
	case "lru":
		return NewLRU()
	case "fifo":
		return NewFIFO()
	case "random":
		return NewRandom(seed)
	case "plru":
		return NewPLRU()
	}
	return nil
}
