package worker

import (
	"context"
	"strings"
	"testing"
	"time"

	"grinch/internal/campaignd"
)

// TestRunShardRejectsNonPositiveTTL pins the ticker-panic fix at the
// unit level: a lease whose TTL rounded to zero milliseconds is
// refused with a diagnosis, before the worker touches the network
// (previously time.NewTicker(ttl/3) panicked the whole process).
func TestRunShardRejectsNonPositiveTTL(t *testing.T) {
	for _, ttl := range []int64{0, -5} {
		err := runShard(context.Background(), Config{ID: "w-unit"}, nil, newMeter(),
			func(string, ...any) {}, &campaignd.Lease{ID: "L1", TTLMS: ttl})
		if err == nil || !strings.Contains(err.Error(), "invalid ttl_ms") {
			t.Fatalf("ttl_ms=%d: err = %v, want an invalid-TTL refusal", ttl, err)
		}
	}
}

// TestMeterRetryAccounting pins the retry telemetry: per-class
// counters, the unknown-class fallback, flush rounds, and the backoff
// total that the drain summary and fleet status read.
func TestMeterRetryAccounting(t *testing.T) {
	m := newMeter()
	m.retry(campaignd.ClassReport, 10*time.Millisecond)
	m.retry(campaignd.ClassReport, 15*time.Millisecond)
	m.retry(campaignd.ClassHeartbeat, 5*time.Millisecond)
	m.retry("no-such-class", 2*time.Millisecond) // falls back to query
	m.flushRetry(100 * time.Millisecond)

	if got := m.retriesBy[campaignd.ClassReport].Value(); got != 2 {
		t.Errorf("report retries = %d, want 2", got)
	}
	if got := m.retriesBy[campaignd.ClassQuery].Value(); got != 1 {
		t.Errorf("unknown-class fallback: query retries = %d, want 1", got)
	}
	if got := m.flushRetries.Value(); got != 1 {
		t.Errorf("flush retries = %d, want 1", got)
	}
	if got := m.backoffMS.Value(); got != 132 {
		t.Errorf("backoff total = %dms, want 132", got)
	}
	sum := m.summary()
	if sum.Retries != 5 || sum.BackoffMS != 132 {
		t.Errorf("summary retries=%d backoff=%d, want 5 and 132", sum.Retries, sum.BackoffMS)
	}
}

// TestIDSeed: the jitter seed is a stable function of the worker ID so
// a fleet's backoff schedules are decorrelated but per-worker
// replayable.
func TestIDSeed(t *testing.T) {
	if idSeed("w1") != idSeed("w1") {
		t.Error("idSeed is not stable")
	}
	if idSeed("w1") == idSeed("w2") {
		t.Error("distinct workers share a jitter seed")
	}
}
