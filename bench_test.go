package grinch

// Benchmark harness: one benchmark family per table/figure of the GRINCH
// paper plus ablations for the design choices called out in DESIGN.md §6.
// Every attack benchmark reports the paper's own cost metric — victim
// encryptions — via ReportMetric("encryptions/op").

import (
	"fmt"
	"testing"

	"grinch/internal/bitutil"
	"grinch/internal/cache"
	"grinch/internal/core"
	"grinch/internal/countermeasure"
	"grinch/internal/gift"
	"grinch/internal/obs"
	"grinch/internal/obs/metrics"
	"grinch/internal/oracle"
	"grinch/internal/probe"
	"grinch/internal/rng"
	"grinch/internal/soc"
)

// attackFirstRound runs one first-round attack and returns its
// encryption cost. tracer (usually nil) threads event tracing through
// the channel and attacker, for the tracing-overhead benchmarks.
func attackFirstRound(b *testing.B, key bitutil.Word128, ocfg oracle.Config, seed, budget uint64, tracer obs.Tracer) uint64 {
	b.Helper()
	ch, err := oracle.New(key, ocfg)
	if err != nil {
		b.Fatal(err)
	}
	ch.SetTracer(tracer)
	a, err := core.NewAttacker(ch, core.Config{Seed: seed, TotalBudget: budget, Tracer: tracer})
	if err != nil {
		b.Fatal(err)
	}
	out, err := a.AttackRound(1, nil, nil)
	if err != nil {
		return ch.Encryptions() // budget cells report their cap
	}
	return out.Encryptions
}

func benchFirstRound(b *testing.B, ocfg oracle.Config, budget uint64) {
	r := rng.New(2021)
	var total uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := bitutil.Word128{Lo: r.Uint64(), Hi: r.Uint64()}
		total += attackFirstRound(b, key, ocfg, r.Uint64(), budget, nil)
	}
	b.ReportMetric(float64(total)/float64(b.N), "encryptions/op")
}

// BenchmarkAttackNilTracer and BenchmarkAttackTraced pin the
// observability cost model (DESIGN.md §10): with a nil tracer the hot
// path pays only nil checks, so NilTracer must stay within noise of the
// untraced baseline (BenchmarkFig3/WithFlush/ProbeRound1 is the same
// workload); Traced shows the real price of buffering the full event
// stream.
func BenchmarkAttackNilTracer(b *testing.B) {
	r := rng.New(2021)
	var total uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := bitutil.Word128{Lo: r.Uint64(), Hi: r.Uint64()}
		total += attackFirstRound(b, key, oracle.Config{ProbeRound: 1, Flush: true, LineWords: 1}, r.Uint64(), 2_000_000, nil)
	}
	b.ReportMetric(float64(total)/float64(b.N), "encryptions/op")
}

func BenchmarkAttackTraced(b *testing.B) {
	r := rng.New(2021)
	var total uint64
	var events int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := bitutil.Word128{Lo: r.Uint64(), Hi: r.Uint64()}
		buf := &obs.Buffer{Job: i}
		total += attackFirstRound(b, key, oracle.Config{ProbeRound: 1, Flush: true, LineWords: 1}, r.Uint64(), 2_000_000, buf)
		events += len(buf.Events)
	}
	b.ReportMetric(float64(total)/float64(b.N), "encryptions/op")
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

// attackFirstRoundMetrics is attackFirstRound with a metrics registry
// (possibly nil) threaded through the attacker, for the fleet-metrics
// cost model.
func attackFirstRoundMetrics(b *testing.B, key bitutil.Word128, ocfg oracle.Config, seed, budget uint64, reg *metrics.Registry) uint64 {
	b.Helper()
	ch, err := oracle.New(key, ocfg)
	if err != nil {
		b.Fatal(err)
	}
	a, err := core.NewAttacker(ch, core.Config{Seed: seed, TotalBudget: budget, Metrics: reg})
	if err != nil {
		b.Fatal(err)
	}
	out, err := a.AttackRound(1, nil, nil)
	if err != nil {
		return ch.Encryptions()
	}
	return out.Encryptions
}

// BenchmarkAttackNilMetrics and BenchmarkAttackMetrics pin the
// fleet-metrics cost model (DESIGN.md §14) the same way the tracer
// pair above pins §10's: with a nil registry every emission is one
// nil-check branch, so NilMetrics must stay within noise of the
// untraced baseline; Metrics shows the live price of the pre-resolved
// atomic counters and histograms.
func BenchmarkAttackNilMetrics(b *testing.B) {
	r := rng.New(2021)
	var total uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := bitutil.Word128{Lo: r.Uint64(), Hi: r.Uint64()}
		total += attackFirstRoundMetrics(b, key, oracle.Config{ProbeRound: 1, Flush: true, LineWords: 1}, r.Uint64(), 2_000_000, nil)
	}
	b.ReportMetric(float64(total)/float64(b.N), "encryptions/op")
}

func BenchmarkAttackMetrics(b *testing.B) {
	r := rng.New(2021)
	reg := metrics.New() // shared across iterations, as a campaign would share it
	var total uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := bitutil.Word128{Lo: r.Uint64(), Hi: r.Uint64()}
		total += attackFirstRoundMetrics(b, key, oracle.Config{ProbeRound: 1, Flush: true, LineWords: 1}, r.Uint64(), 2_000_000, reg)
	}
	b.ReportMetric(float64(total)/float64(b.N), "encryptions/op")
	b.ReportMetric(float64(len(reg.Snapshot())), "series")
}

// BenchmarkFig3 regenerates the two Fig. 3 series; probing rounds 1–5
// are benchmarked directly (later rounds belong to cmd/experiments — at
// rounds 9–10 a single attack costs ~1M encryptions).
func BenchmarkFig3(b *testing.B) {
	for _, flush := range []bool{true, false} {
		name := "WithFlush"
		if !flush {
			name = "WithoutFlush"
		}
		for pr := 1; pr <= 5; pr++ {
			b.Run(fmt.Sprintf("%s/ProbeRound%d", name, pr), func(b *testing.B) {
				benchFirstRound(b, oracle.Config{ProbeRound: pr, Flush: flush, LineWords: 1}, 2_000_000)
			})
		}
	}
}

// BenchmarkTable1 regenerates Table I's tractable cells (drop-out cells
// are capped at a 200k budget so the benchmark terminates; the paper
// likewise drops >1M cells).
func BenchmarkTable1(b *testing.B) {
	cells := []struct{ lineWords, probeRound int }{
		{1, 1}, {1, 2}, {1, 3}, {1, 4}, {1, 5},
		{2, 1}, {2, 2}, {2, 3},
		{4, 1}, {4, 2},
		{8, 1},
	}
	for _, c := range cells {
		b.Run(fmt.Sprintf("Line%dWords/ProbeRound%d", c.lineWords, c.probeRound), func(b *testing.B) {
			benchFirstRound(b, oracle.Config{ProbeRound: c.probeRound, Flush: true, LineWords: c.lineWords}, 200_000)
		})
	}
}

// BenchmarkTable2 regenerates Table II: the full platform simulations
// measuring the earliest probe-able round.
func BenchmarkTable2(b *testing.B) {
	key := bitutil.Word128{Lo: 0x0123456789abcdef, Hi: 0xfedcba9876543210}
	for _, mhz := range []uint64{10, 25, 50} {
		b.Run(fmt.Sprintf("SingleSoC/%dMHz", mhz), func(b *testing.B) {
			var round int
			for i := 0; i < b.N; i++ {
				round = soc.NewSingleSoC(key, soc.DefaultParams(mhz)).EarliestProbeRound()
			}
			b.ReportMetric(float64(round), "earliest_round")
		})
		b.Run(fmt.Sprintf("MPSoC/%dMHz", mhz), func(b *testing.B) {
			var round int
			for i := 0; i < b.N; i++ {
				round = soc.NewMPSoC(key, soc.DefaultParams(mhz)).EarliestProbeRound()
			}
			b.ReportMetric(float64(round), "earliest_round")
		})
	}
}

// BenchmarkFullKeyRecovery is the paper's headline: complete 128-bit
// recovery under the best probing conditions ("fewer than 400
// encryptions").
func BenchmarkFullKeyRecovery(b *testing.B) {
	r := rng.New(7)
	var total uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := bitutil.Word128{Lo: r.Uint64(), Hi: r.Uint64()}
		ch, err := oracle.New(key, oracle.Config{ProbeRound: 1, Flush: true, LineWords: 1})
		if err != nil {
			b.Fatal(err)
		}
		a, err := core.NewAttacker(ch, core.Config{Seed: r.Uint64()})
		if err != nil {
			b.Fatal(err)
		}
		res, err := a.RecoverKey()
		if err != nil || res.Key != key {
			b.Fatalf("recovery failed: %v", err)
		}
		total += res.Encryptions
	}
	b.ReportMetric(float64(total)/float64(b.N), "encryptions/op")
}

// BenchmarkCountermeasure measures the §IV-C protections: the whitened
// schedule's attack (leaks sub-keys, defeats key assembly) and the
// throughput overhead of the reshaped table.
func BenchmarkCountermeasure(b *testing.B) {
	key := bitutil.Word128{Lo: 0x1111222233334444, Hi: 0x5555666677778888}
	b.Run("WhitenedScheduleAttack", func(b *testing.B) {
		r := rng.New(5)
		var total uint64
		for i := 0; i < b.N; i++ {
			k := bitutil.Word128{Lo: r.Uint64(), Hi: r.Uint64()}
			vic := countermeasure.NewWhitenedCipher64(k)
			ch, err := oracle.NewFromTracer(vic, oracle.Config{ProbeRound: 1, Flush: true, LineWords: 1})
			if err != nil {
				b.Fatal(err)
			}
			a, err := core.NewAttacker(ch, core.Config{Seed: r.Uint64()})
			if err != nil {
				b.Fatal(err)
			}
			res, err := a.RecoverKey()
			if err != nil {
				b.Fatal(err)
			}
			if res.Key == k {
				b.Fatal("whitened schedule failed to protect the key")
			}
			total += res.Encryptions
		}
		b.ReportMetric(float64(total)/float64(b.N), "encryptions/op")
	})
	b.Run("ReshapedTableThroughput", func(b *testing.B) {
		c := countermeasure.NewHardenedCipher64(key)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = c.EncryptBlock(uint64(i))
		}
	})
	b.Run("ReferenceTableThroughput", func(b *testing.B) {
		c := gift.NewCipher64FromWord(key)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = c.EncryptBlock(uint64(i))
		}
	})
}

// BenchmarkAblation_LineGranularity isolates the cost of losing index
// bits to line width at a fixed (clean) probing round.
func BenchmarkAblation_LineGranularity(b *testing.B) {
	for _, lw := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("%dWordsPerLine", lw), func(b *testing.B) {
			benchFirstRound(b, oracle.Config{ProbeRound: 1, Flush: true, LineWords: lw}, 200_000)
		})
	}
}

// BenchmarkAblation_ProbeMethod compares the two classical probing
// primitives on the same cache state (paper §III-C discusses why
// GRINCH prefers Flush+Reload).
func BenchmarkAblation_ProbeMethod(b *testing.B) {
	table := probe.TableLayout{Base: 0x1000, EntryBytes: 1, Entries: 16}
	victimTouch := func(c *cache.Cache, r *rng.Source) {
		for i := 0; i < 16; i++ {
			c.Access(table.EntryAddr(r.Intn(16)))
		}
	}
	b.Run("FlushReload", func(b *testing.B) {
		c := cache.MustNew(cache.PaperConfig(1))
		fr := &probe.FlushReload{Cache: c, Table: table}
		r := rng.New(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fr.Flush()
			victimTouch(c, r)
			fr.Reload()
		}
	})
	b.Run("PrimeProbe", func(b *testing.B) {
		c := cache.MustNew(cache.PaperConfig(1))
		pp := &probe.PrimeProbe{Cache: c, Table: table, EvictionBase: 0x100000}
		r := rng.New(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pp.Prime()
			victimTouch(c, r)
			pp.Probe()
		}
	})
}

// BenchmarkAblation_Replacement measures how the cache replacement
// policy affects raw simulation behaviour under a conflict-heavy
// workload (probe fidelity context for DESIGN.md §6).
func BenchmarkAblation_Replacement(b *testing.B) {
	for _, name := range []string{"lru", "fifo", "plru", "random"} {
		b.Run(name, func(b *testing.B) {
			cfg := cache.PaperConfig(1)
			cfg.Policy = cache.PolicyByName(name, 1)
			c := cache.MustNew(cfg)
			r := rng.New(3)
			addrs := make([]uint64, 4096)
			for i := range addrs {
				addrs[i] = uint64(r.Intn(4096))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Access(addrs[i%len(addrs)])
			}
			b.ReportMetric(c.Stats().HitRate()*100, "hit%")
		})
	}
}

// BenchmarkAblation_Noise sweeps injected observation noise against
// attack effort (threshold-mode elimination).
func BenchmarkAblation_Noise(b *testing.B) {
	for _, noise := range []float64{0, 0.02, 0.05, 0.10} {
		b.Run(fmt.Sprintf("FalseRate%.0f%%", noise*100), func(b *testing.B) {
			r := rng.New(11)
			var total uint64
			for i := 0; i < b.N; i++ {
				key := bitutil.Word128{Lo: r.Uint64(), Hi: r.Uint64()}
				ch, err := oracle.New(key, oracle.Config{
					ProbeRound: 1, Flush: true, LineWords: 1,
					FalsePresence: noise, FalseAbsence: noise, Seed: r.Uint64(),
				})
				if err != nil {
					b.Fatal(err)
				}
				cfg := core.Config{Seed: r.Uint64(), TotalBudget: 500_000}
				if noise > 0 {
					cfg.Threshold = 0.8
					cfg.MinObservations = 24
				}
				a, err := core.NewAttacker(ch, cfg)
				if err != nil {
					b.Fatal(err)
				}
				out, err := a.AttackRound(1, nil, nil)
				if err != nil {
					total += ch.Encryptions()
					continue
				}
				total += out.Encryptions
			}
			b.ReportMetric(float64(total)/float64(b.N), "encryptions/op")
		})
	}
}

// BenchmarkAblation_Bitsliced compares the table-based (leaky) and
// bitsliced (constant-time) cipher implementations — the cost of the
// software countermeasure.
func BenchmarkAblation_Bitsliced(b *testing.B) {
	key := bitutil.Word128{Lo: 0x0123456789abcdef, Hi: 0xfedcba9876543210}
	c64 := gift.NewCipher64FromWord(key)
	b.Run("Gift64Table", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = c64.EncryptBlock(uint64(i))
		}
	})
	b.Run("Gift64Bitsliced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = c64.EncryptBlockBitsliced(uint64(i))
		}
	})
	var arr [16]byte
	c128 := gift.NewCipher128(arr)
	b.Run("Gift128Table", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = c128.EncryptBlock(bitutil.Word128{Lo: uint64(i)})
		}
	})
	b.Run("Gift128Bitsliced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = c128.EncryptBlockBitsliced(bitutil.Word128{Lo: uint64(i)})
		}
	})
}

// BenchmarkPlatformSession measures the cost of one probed platform
// encryption (the unit of Table II and the platform-channel attack).
func BenchmarkPlatformSession(b *testing.B) {
	key := bitutil.Word128{Lo: 1, Hi: 2}
	b.Run("SingleSoC10MHz", func(b *testing.B) {
		s := soc.NewSingleSoC(key, soc.DefaultParams(10))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.RunSession(uint64(i))
		}
	})
	b.Run("MPSoC50MHz", func(b *testing.B) {
		m := soc.NewMPSoC(key, soc.DefaultParams(50))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.RunSession(uint64(i))
		}
	})
	b.Run("MPSoC50MHzEarlyStandDown", func(b *testing.B) {
		m := soc.NewMPSoC(key, soc.DefaultParams(50))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.RunSessionUntil(uint64(i), 2)
		}
	})
}
