package oracle

import (
	"reflect"
	"testing"

	"grinch/internal/gift"
	"grinch/internal/obs"
	"grinch/internal/probe"
)

// batchPts produces n deterministic pseudo-random plaintexts.
func batchPts(seed uint64, n int) []uint64 {
	pts := make([]uint64, n)
	x := seed | 1
	for i := range pts {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		pts[i] = x
	}
	return pts
}

// TestPrimeBatchCollectPrimedMatchesScalar is the channel-level
// differential: for every geometry the attack sweeps, priming a batch
// and committing observations one by one must produce the exact byte
// stream of the scalar CollectMasked path — same sets, same masks,
// same encryption counter, same noise draws, same Evict+Time cursor,
// same trace events.
func TestPrimeBatchCollectPrimedMatchesScalar(t *testing.T) {
	for _, lw := range []int{1, 2, 4, 8, 16} {
		for _, pr := range []int{1, 3} {
			for _, flush := range []bool{false, true} {
				for _, mode := range []ProbeMode{ProbeFlushReload, ProbeEvictTime} {
					for _, noisy := range []bool{false, true} {
						// 9 plaintexts run the small-batch scalar prime
						// path, 17 the bitsliced kernel; both must match
						// the scalar channel byte for byte.
						for _, npts := range []int{9, 17} {
							cfg := Config{ProbeRound: pr, Probe: mode, Flush: flush, LineWords: lw, Seed: 99}
							if noisy {
								cfg.FalsePresence = 0.08
								cfg.FalseAbsence = 0.12
							}
							scalar := mustOracle(t, cfg)
							batched := mustOracle(t, cfg)
							var scalarEv, batchEv obs.Buffer
							scalar.SetTracer(&scalarEv)
							batched.SetTracer(&batchEv)

							pts := batchPts(uint64(lw*100+pr), npts)
							targetRound := 2

							raw := make([]probe.LineSet, len(pts))
							if !batched.PrimeBatch(pts, targetRound, raw) {
								t.Fatalf("lw=%d pr=%d: PrimeBatch refused a real victim", lw, pr)
							}
							for i, pt := range pts {
								wantSet, wantMask := scalar.CollectMasked(pt, targetRound)
								gotSet, gotMask := batched.CollectPrimed(raw[i], targetRound)
								if gotSet != wantSet || gotMask != wantMask {
									t.Fatalf("lw=%d pr=%d flush=%v mode=%d noisy=%v n=%d enc %d: batch (%v,%v), scalar (%v,%v)",
										lw, pr, flush, mode, noisy, npts, i, gotSet, gotMask, wantSet, wantMask)
								}
							}
							if scalar.Encryptions() != batched.Encryptions() {
								t.Fatalf("encryption counters diverged: %d vs %d", batched.Encryptions(), scalar.Encryptions())
							}
							if !reflect.DeepEqual(scalarEv.Events, batchEv.Events) {
								t.Fatalf("lw=%d pr=%d: trace events diverged", lw, pr)
							}
						}
					}
				}
			}
		}
	}
}

// TestPrimeBatchInterleavedWithScalar proves a primed observation can
// be committed between plain Collect calls without perturbing the
// shared channel state (counter, cursor, noise stream).
func TestPrimeBatchInterleavedWithScalar(t *testing.T) {
	cfg := Config{ProbeRound: 1, Probe: ProbeEvictTime, Flush: true, LineWords: 2,
		FalsePresence: 0.1, FalseAbsence: 0.1, Seed: 7}
	ref := mustOracle(t, cfg)
	mix := mustOracle(t, cfg)

	pts := batchPts(41, 6)
	raw := make([]probe.LineSet, len(pts))
	if !mix.PrimeBatch(pts, 3, raw) {
		t.Fatal("PrimeBatch refused")
	}
	for i, pt := range pts {
		var wantSet, wantMask, gotSet, gotMask probe.LineSet
		wantSet, wantMask = ref.CollectMasked(pt, 3)
		if i%2 == 0 {
			gotSet, gotMask = mix.CollectPrimed(raw[i], 3)
		} else {
			// Abandoning the primed set and re-collecting scalar must
			// also agree: priming left no trace on the channel.
			gotSet, gotMask = mix.CollectMasked(pt, 3)
		}
		if gotSet != wantSet || gotMask != wantMask {
			t.Fatalf("enc %d: interleaved (%v,%v), reference (%v,%v)", i, gotSet, gotMask, wantSet, wantMask)
		}
	}
}

// TestPrimeBatchHasNoSideEffects pins the speculation contract: priming
// alone must not advance the counter, the cursor, the noise stream or
// emit events.
func TestPrimeBatchHasNoSideEffects(t *testing.T) {
	cfg := Config{ProbeRound: 2, Probe: ProbeEvictTime, LineWords: 4,
		FalsePresence: 0.2, FalseAbsence: 0.2, Seed: 13}
	o := mustOracle(t, cfg)
	var ev obs.Buffer
	o.SetTracer(&ev)

	pts := batchPts(3, 64)
	raw := make([]probe.LineSet, len(pts))
	for i := 0; i < 5; i++ {
		if !o.PrimeBatch(pts, 4, raw) {
			t.Fatal("PrimeBatch refused")
		}
	}
	if o.Encryptions() != 0 {
		t.Fatalf("PrimeBatch advanced the encryption counter to %d", o.Encryptions())
	}
	if o.cursor != 0 {
		t.Fatalf("PrimeBatch advanced the Evict+Time cursor to %d", o.cursor)
	}
	if len(ev.Events) != 0 {
		t.Fatalf("PrimeBatch emitted %d events", len(ev.Events))
	}
	// The noise stream must be untouched: a fresh oracle with the same
	// seed produces the same first observation.
	fresh := mustOracle(t, cfg)
	wantSet, wantMask := fresh.CollectMasked(pts[0], 4)
	gotSet, gotMask := o.CollectMasked(pts[0], 4)
	if gotSet != wantSet || gotMask != wantMask {
		t.Fatal("PrimeBatch consumed noise rng state")
	}
}

// TestPrimeBatchRawIsUnmaskedNoiseFree pins what the raw sets are: the
// exact touched-line sets before noise, so CollectPrimed can replay the
// scalar path's noise application byte for byte.
func TestPrimeBatchRawIsUnmaskedNoiseFree(t *testing.T) {
	noisy := Config{ProbeRound: 2, Flush: true, LineWords: 2,
		FalsePresence: 0.3, FalseAbsence: 0.3, Seed: 5}
	clean := noisy
	clean.FalsePresence, clean.FalseAbsence = 0, 0

	on := mustOracle(t, noisy)
	off := mustOracle(t, clean)
	pts := batchPts(9, 10)
	raw := make([]probe.LineSet, len(pts))
	if !on.PrimeBatch(pts, 2, raw) {
		t.Fatal("PrimeBatch refused")
	}
	for i, pt := range pts {
		if want := off.Collect(pt, 2); raw[i] != want {
			t.Fatalf("enc %d: raw %v, noise-free scalar %v", i, raw[i], want)
		}
	}
}

// TestPrimeBatchRefusals enumerates the scalar-fallback cases.
func TestPrimeBatchRefusals(t *testing.T) {
	cfg := Config{ProbeRound: 1, LineWords: 1}
	raw := make([]probe.LineSet, 65)

	// Foreign tracer (no bitsliced kernel available).
	c := gift.NewCipher64FromWord(testKey)
	ft, err := NewFromTracer(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ft.PrimeBatch(batchPts(1, 4), 1, raw) {
		t.Fatal("NewFromTracer oracle accepted PrimeBatch")
	}

	o := mustOracle(t, cfg)
	if o.PrimeBatch(nil, 1, raw) {
		t.Fatal("empty batch accepted")
	}
	if o.PrimeBatch(batchPts(1, 65), 1, raw) {
		t.Fatal("oversized batch accepted")
	}
	if o.PrimeBatch(batchPts(1, 4), 1, raw[:3]) {
		t.Fatal("short result buffer accepted")
	}
}
