// Package countermeasure implements the two protections the GRINCH
// paper proposes (§IV-C) and the machinery to demonstrate that they
// defeat the attack:
//
//  1. S-box reshaping: the 16×4-bit table is repacked into 8 rows of 8
//     bits so that, with an 8-byte cache line, the entire table lives in
//     a single line — the probe then carries no index information at
//     all. ("set the cache line to 8 bytes and reshape the S-Box from 16
//     rows of 4 bits to 8 rows of 8 bits")
//
//  2. Key-schedule whitening: the sub-keys of the early rounds are
//     masked with key material "that was not used yet", so the round
//     keys GRINCH recovers no longer equal master-key bits and the
//     128-bit key cannot be reassembled from four round keys.
package countermeasure

import (
	"grinch/internal/bitutil"
	"grinch/internal/gift"
	"grinch/internal/probe"
)

// ReshapedTable is the paper's first countermeasure: entries 2i and
// 2i+1 packed into byte i (low nibble = even entry), 8 bytes total.
type ReshapedTable [8]uint8

// NewReshapedTable packs the GIFT S-box.
func NewReshapedTable() ReshapedTable {
	var t ReshapedTable
	for i := 0; i < 8; i++ {
		t[i] = gift.SBox[2*i] | gift.SBox[2*i+1]<<4
	}
	return t
}

// Lookup substitutes one segment through the packed table, selecting
// the right nibble of the fetched byte (the paper's noted overhead).
func (t ReshapedTable) Lookup(x uint8) uint8 {
	b := t[x>>1]
	if x&1 == 1 {
		return b >> 4
	}
	return b & 0xf
}

// Row returns which table row (= byte address offset) the lookup for x
// touches; with an 8-byte cache line every row shares line 0.
func (t ReshapedTable) Row(x uint8) int { return int(x >> 1) }

// Layout returns the memory layout of the reshaped table: 8 one-byte
// rows. Placed line-aligned on a platform with 8-byte cache lines, it
// spans exactly one line.
func Layout(base uint64) probe.TableLayout {
	return probe.TableLayout{Base: base, EntryBytes: 1, Entries: 8}
}

// HardenedCipher64 is GIFT-64 implemented over the reshaped table. Its
// ciphertexts are identical to the reference cipher; only the memory
// footprint of SubCells changes.
type HardenedCipher64 struct {
	inner *gift.Cipher64
	table ReshapedTable
}

// NewHardenedCipher64 builds the reshaped-table cipher.
func NewHardenedCipher64(key bitutil.Word128) *HardenedCipher64 {
	return &HardenedCipher64{
		inner: gift.NewCipher64FromWord(key),
		table: NewReshapedTable(),
	}
}

// EncryptBlock encrypts one block using packed-table lookups.
func (c *HardenedCipher64) EncryptBlock(pt uint64) uint64 {
	s := pt
	for _, rk := range c.inner.RoundKeys() {
		var sub uint64
		for i := uint(0); i < gift.Segments64; i++ {
			sub |= uint64(c.table.Lookup(uint8(s>>(4*i)&0xf))) << (4 * i)
		}
		s = gift.AddRoundKey64(gift.PermBits64(sub), rk)
	}
	return s
}

// EncryptTracedRows encrypts while reporting the table ROW of every
// lookup — the most an attacker can resolve. With the whole table in
// one cache line, even these rows collapse to a single observable line.
func (c *HardenedCipher64) EncryptTracedRows(pt uint64, observe func(round, segment, row int)) uint64 {
	s := pt
	for r, rk := range c.inner.RoundKeys() {
		var sub uint64
		for i := uint(0); i < gift.Segments64; i++ {
			x := uint8(s >> (4 * i) & 0xf)
			observe(r+1, int(i), c.table.Row(x))
			sub |= uint64(c.table.Lookup(x)) << (4 * i)
		}
		s = gift.AddRoundKey64(gift.PermBits64(sub), rk)
	}
	return s
}

// whiten mixes a 16-bit limb nonlinearly through the GIFT S-box (a
// cheap, in-spirit realization of "applying some computation with bits
// that were not used yet"). It is a bijection on 16-bit words.
func whiten(x uint16) uint16 {
	var out uint16
	for i := uint(0); i < 4; i++ {
		out |= uint16(gift.SBox[(x>>(4*i))&0xf]) << (4 * i)
	}
	return bitutil.RotR16(out, 7)
}

// WhitenedExpandKey64 is the paper's second countermeasure: round t's
// sub-key words are XOR-masked with a whitened image of key limbs that
// round has not consumed yet (the limbs four rounds ahead in the
// rotation). The cipher stays a valid 128-bit-key block cipher, but the
// words GRINCH recovers are U⊕f(k_a), V⊕f(k_b) — no longer master-key
// bits, so the four recovered round keys cannot be reassembled into the
// key, and crafting inputs for round t+1 no longer reveals fresh
// material.
func WhitenedExpandKey64(key bitutil.Word128) []gift.RoundKey64 {
	rks := make([]gift.RoundKey64, gift.Rounds64)
	ks := key
	for r := 0; r < gift.Rounds64; r++ {
		rks[r] = gift.RoundKey64{
			U:     ks.Word16(1) ^ whiten(ks.Word16(5)),
			V:     ks.Word16(0) ^ whiten(ks.Word16(4)),
			Const: gift.RoundConstants[r],
		}
		ks = gift.UpdateKeyState(ks)
	}
	return rks
}

// WhitenedCipher64 is GIFT-64 with the whitened key schedule.
type WhitenedCipher64 struct {
	rks []gift.RoundKey64
}

// NewWhitenedCipher64 expands a key with the whitened schedule.
func NewWhitenedCipher64(key bitutil.Word128) *WhitenedCipher64 {
	return &WhitenedCipher64{rks: WhitenedExpandKey64(key)}
}

// EncryptBlock encrypts one block.
func (c *WhitenedCipher64) EncryptBlock(pt uint64) uint64 {
	s := pt
	for _, rk := range c.rks {
		s = gift.Round64(s, rk)
	}
	return s
}

// DecryptBlock decrypts one block.
func (c *WhitenedCipher64) DecryptBlock(ct uint64) uint64 {
	s := ct
	for r := len(c.rks) - 1; r >= 0; r-- {
		s = gift.InvRound64(s, c.rks[r])
	}
	return s
}

// RoundKeys exposes the whitened schedule (tests and the demonstration
// oracle need it).
func (c *WhitenedCipher64) RoundKeys() []gift.RoundKey64 {
	out := make([]gift.RoundKey64, len(c.rks))
	copy(out, c.rks)
	return out
}

// SBoxInputs mirrors gift.Cipher64.SBoxInputs for the whitened cipher.
func (c *WhitenedCipher64) SBoxInputs(pt uint64) []uint64 {
	states := make([]uint64, len(c.rks))
	s := pt
	for r := range c.rks {
		states[r] = s
		s = gift.Round64(s, c.rks[r])
	}
	return states
}
