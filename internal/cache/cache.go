// Package cache implements the shared-cache model used by every platform
// in this repository: a set-associative cache with configurable geometry
// (sets, ways, line size), pluggable replacement policy, flush support
// and cycle-level latency accounting.
//
// The GRINCH paper's platforms share an L1 with 1024 lines, 16-way
// set-associative, and a line size swept over 1/2/4/8 words (Table I);
// PaperConfig reproduces that geometry.
//
// The model is functional rather than structural: it tracks which line
// tags are resident per set and charges a fixed latency per hit, miss and
// flush. That is exactly the information an access-driven attacker can
// act on, so nothing the attack consumes is abstracted away.
package cache

import (
	"errors"
	"fmt"
	"math/bits"
)

// Config describes a cache geometry and its timing.
type Config struct {
	// Sets is the number of cache sets. Must be a power of two ≥ 1.
	Sets int
	// Ways is the associativity. Must be ≥ 1.
	Ways int
	// LineBytes is the line size in bytes. Must be a power of two ≥ 1.
	// The paper's platforms use 1-byte words; Table I sweeps the line
	// over 1, 2, 4 and 8 words.
	LineBytes int
	// Policy selects the replacement policy. Nil defaults to LRU.
	Policy Policy
	// HitLatency, MissLatency and FlushLatency are charged per
	// operation, in core cycles. MissLatency covers the full fetch from
	// the next level (the paper's platforms have L1 + DRAM only).
	HitLatency   uint64
	MissLatency  uint64
	FlushLatency uint64
}

// PaperConfig returns the geometry used throughout the GRINCH paper's
// experiments: 1024 lines, 16 ways (64 sets), with the given line size in
// bytes and default latencies (1-cycle hit, 30-cycle miss) roughly in
// line with a small in-order SoC.
func PaperConfig(lineBytes int) Config {
	return Config{
		Sets:         64,
		Ways:         16,
		LineBytes:    lineBytes,
		HitLatency:   1,
		MissLatency:  30,
		FlushLatency: 1,
	}
}

func (c Config) validate() error {
	if c.Sets < 1 || bits.OnesCount(uint(c.Sets)) != 1 {
		return fmt.Errorf("cache: Sets = %d must be a power of two ≥ 1", c.Sets)
	}
	if c.Ways < 1 {
		return fmt.Errorf("cache: Ways = %d must be ≥ 1", c.Ways)
	}
	if c.LineBytes < 1 || bits.OnesCount(uint(c.LineBytes)) != 1 {
		return fmt.Errorf("cache: LineBytes = %d must be a power of two ≥ 1", c.LineBytes)
	}
	return nil
}

// Lines returns the total number of cache lines the config describes.
func (c Config) Lines() int { return c.Sets * c.Ways }

// PaperLineSizes are the cache-line sizes, in bytes, swept by the
// paper's Table I (1-byte words, lines of 1/2/4/8 words). The
// quantitative leakage model in internal/analysis and its trace
// cross-check (internal/analysis/quantcheck) share this sweep, so the
// static bits-per-observation estimates line up with the line
// geometries the campaign configs actually run.
func PaperLineSizes() []int { return []int{1, 2, 4, 8} }

// LinesSpanned returns how many cache lines a contiguous table of
// tableBytes bytes occupies with the given line size: the number of
// distinct lines an attacker probing that table can observe. Zero-size
// tables span 0 lines; lineBytes must be ≥ 1.
func LinesSpanned(tableBytes, lineBytes int) int {
	if tableBytes <= 0 || lineBytes < 1 {
		return 0
	}
	return (tableBytes + lineBytes - 1) / lineBytes
}

// Result reports the outcome of a single access.
type Result struct {
	// Hit is true when the line was already resident.
	Hit bool
	// Latency is the cycle cost of this access.
	Latency uint64
	// Set is the set index the address mapped to.
	Set int
	// Evicted is the address of the first byte of the line that was
	// evicted to make room, when Eviction is true.
	Evicted  uint64
	Eviction bool
}

// Stats accumulates cache activity counters. The counters feed the
// observability layer's cache_snapshot events (internal/obs), so their
// semantics are part of the trace contract:
//
//   - Evictions counts capacity evictions in Access (a full set
//     displacing a valid victim line);
//   - Flushes counts flush operations issued (one per FlushLine call,
//     one per FlushAll), whether or not they found a resident line;
//   - FlushedLines counts lines actually invalidated by those
//     operations — the attacker-visible flush work.
type Stats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Flushes   uint64
	// FlushedLines counts resident lines invalidated by flushes.
	FlushedLines uint64
	// Cycles is the total latency charged across all operations.
	Cycles uint64
}

// Add accumulates o's counters into s — for folding the per-session
// stats of throwaway caches (one per platform session) into a running
// total.
func (s *Stats) Add(o Stats) {
	s.Accesses += o.Accesses
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Flushes += o.Flushes
	s.FlushedLines += o.FlushedLines
	s.Cycles += o.Cycles
}

// HitRate returns Hits/Accesses, or 0 for an untouched cache.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

type line struct {
	tag   uint64
	valid bool
}

// Cache is a set-associative cache. It is not safe for concurrent use;
// platform simulations serialize accesses through the event kernel,
// which is how the modelled hardware behaves too.
type Cache struct {
	cfg       Config
	lineShift uint
	setMask   uint64
	lines     []line // sets × ways, row-major
	policy    Policy
	stats     Stats
}

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p := cfg.Policy
	if p == nil {
		p = NewLRU()
	}
	c := &Cache{
		cfg:       cfg,
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:   uint64(cfg.Sets - 1),
		lines:     make([]line, cfg.Sets*cfg.Ways),
		policy:    p,
	}
	p.Reset(cfg.Sets, cfg.Ways)
	return c, nil
}

// MustNew is New for configurations known good at compile time.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// lineAddr is the address stripped of its line-offset bits.
func (c *Cache) lineAddr(addr uint64) uint64 { return addr >> c.lineShift }

// setOf returns the set index for an address.
func (c *Cache) setOf(addr uint64) int { return int(c.lineAddr(addr) & c.setMask) }

// tagOf returns the tag for an address.
func (c *Cache) tagOf(addr uint64) uint64 {
	return c.lineAddr(addr) >> uint(bits.TrailingZeros(uint(c.cfg.Sets)))
}

// LineBase returns the address of the first byte of the line containing
// addr.
func (c *Cache) LineBase(addr uint64) uint64 {
	return addr &^ uint64(c.cfg.LineBytes-1)
}

// Access performs one read access and returns its outcome. A miss
// allocates the line, evicting the policy's victim if the set is full.
func (c *Cache) Access(addr uint64) Result {
	set := c.setOf(addr)
	tag := c.tagOf(addr)
	base := set * c.cfg.Ways
	c.stats.Accesses++

	for w := 0; w < c.cfg.Ways; w++ {
		l := &c.lines[base+w]
		if l.valid && l.tag == tag {
			c.stats.Hits++
			c.stats.Cycles += c.cfg.HitLatency
			c.policy.Touch(set, w)
			return Result{Hit: true, Latency: c.cfg.HitLatency, Set: set}
		}
	}

	// Miss: find an invalid way, otherwise evict the policy's victim.
	c.stats.Misses++
	c.stats.Cycles += c.cfg.MissLatency
	res := Result{Latency: c.cfg.MissLatency, Set: set}
	victim := -1
	for w := 0; w < c.cfg.Ways; w++ {
		if !c.lines[base+w].valid {
			victim = w
			break
		}
	}
	if victim < 0 {
		victim = c.policy.Victim(set)
		old := c.lines[base+victim]
		res.Eviction = true
		res.Evicted = c.rebuildAddr(set, old.tag)
		c.stats.Evictions++
	}
	c.lines[base+victim] = line{tag: tag, valid: true}
	c.policy.Insert(set, victim)
	return res
}

// rebuildAddr reconstructs the base address of a line from set and tag.
func (c *Cache) rebuildAddr(set int, tag uint64) uint64 {
	setBits := uint(bits.TrailingZeros(uint(c.cfg.Sets)))
	return (tag<<setBits | uint64(set)) << c.lineShift
}

// Contains reports whether the line holding addr is resident, without
// touching replacement state. This is the oracle view used by tests; an
// attacker must go through Access (see internal/probe).
func (c *Cache) Contains(addr uint64) bool {
	set := c.setOf(addr)
	tag := c.tagOf(addr)
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		l := c.lines[base+w]
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// FlushLine invalidates the line containing addr, if resident, charging
// FlushLatency either way. This models a clflush-style instruction, the
// primitive Flush+Reload needs.
func (c *Cache) FlushLine(addr uint64) uint64 {
	set := c.setOf(addr)
	tag := c.tagOf(addr)
	base := set * c.cfg.Ways
	c.stats.Flushes++
	c.stats.Cycles += c.cfg.FlushLatency
	for w := 0; w < c.cfg.Ways; w++ {
		l := &c.lines[base+w]
		if l.valid && l.tag == tag {
			l.valid = false
			c.stats.FlushedLines++
			c.policy.Invalidate(set, w)
			break
		}
	}
	return c.cfg.FlushLatency
}

// FlushRange flushes every line overlapping [addr, addr+size) and
// returns the total latency charged.
func (c *Cache) FlushRange(addr, size uint64) uint64 {
	if size == 0 {
		return 0
	}
	var total uint64
	first := c.LineBase(addr)
	last := c.LineBase(addr + size - 1)
	for a := first; ; a += uint64(c.cfg.LineBytes) {
		total += c.FlushLine(a)
		if a == last {
			break
		}
	}
	return total
}

// FlushAll invalidates the entire cache (the paper's optional "flush the
// cache" attacker capability).
func (c *Cache) FlushAll() {
	for i := range c.lines {
		if c.lines[i].valid {
			c.stats.FlushedLines++
		}
		c.lines[i] = line{}
	}
	c.policy.Reset(c.cfg.Sets, c.cfg.Ways)
	c.stats.Flushes++
	c.stats.Cycles += c.cfg.FlushLatency
}

// ResidentLines returns the base addresses of all currently resident
// lines, in unspecified order. Used by experiment plumbing and tests.
func (c *Cache) ResidentLines() []uint64 {
	var out []uint64
	for set := 0; set < c.cfg.Sets; set++ {
		base := set * c.cfg.Ways
		for w := 0; w < c.cfg.Ways; w++ {
			if c.lines[base+w].valid {
				out = append(out, c.rebuildAddr(set, c.lines[base+w].tag))
			}
		}
	}
	return out
}

// Stats returns a copy of the accumulated counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without touching cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// ErrBadGeometry is wrapped by New for invalid configurations. Retained
// as a sentinel so callers can distinguish configuration errors.
var ErrBadGeometry = errors.New("cache: bad geometry")
