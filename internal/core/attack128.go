package core

import (
	"fmt"

	"grinch/internal/bitutil"
	"grinch/internal/gift"
	"grinch/internal/obs"
	"grinch/internal/probe"
	"grinch/internal/rng"
)

// Channel128 is the GIFT-128 observation channel, mirroring
// probe.Channel with a 128-bit plaintext.
type Channel128 interface {
	Collect(pt bitutil.Word128, targetRound int) probe.LineSet
	Lines() int
	Encryptions() uint64
}

// FallibleChannel128 mirrors probe.FallibleChannel for GIFT-128
// channels: CollectErr reports probe failures (retryable when the
// error exposes `Transient() bool`) instead of degrading them.
type FallibleChannel128 interface {
	Channel128
	CollectErr(pt bitutil.Word128, targetRound int) (probe.LineSet, error)
}

// Attacker128 drives the GRINCH attack against a GIFT-128 victim.
type Attacker128 struct {
	ch        Channel128
	cfg       Config
	rng       *rng.Source
	lineWords int
	meter     attackMeter
	// backoffPS, lastRound and lastStatuses mirror Attacker's
	// robustness bookkeeping (retry clock and graceful-degradation
	// statuses).
	backoffPS    uint64
	lastRound    int
	lastStatuses []SegmentStatus
}

// NewAttacker128 builds a GIFT-128 attacker.
func NewAttacker128(ch Channel128, cfg Config) (*Attacker128, error) {
	lines := ch.Lines()
	if lines < 2 || 16%lines != 0 {
		return nil, fmt.Errorf("core: channel exposes %d table lines; the attack needs 2..16 dividing 16", lines)
	}
	cfg = cfg.withDefaults()
	return &Attacker128{
		ch:        ch,
		cfg:       cfg,
		rng:       rng.New(cfg.Seed),
		lineWords: 16 / lines,
		meter:     newAttackMeter(cfg.Metrics, "GIFT-128"),
	}, nil
}

// Encryptions returns the channel's total encryption count.
func (a *Attacker128) Encryptions() uint64 { return a.ch.Encryptions() }

func (a *Attacker128) overBudget() bool {
	return a.cfg.TotalBudget > 0 && a.ch.Encryptions() >= a.cfg.TotalBudget
}

// SimPS mirrors Attacker.SimPS.
func (a *Attacker128) SimPS() uint64 {
	ps := a.backoffPS
	if s, ok := a.ch.(interface{ SimPS() uint64 }); ok {
		ps += s.SimPS()
	}
	return ps
}

func (a *Attacker128) overDeadline() bool {
	return a.cfg.SimDeadlinePS > 0 && a.SimPS() >= a.cfg.SimDeadlinePS
}

// collectRetry128 mirrors Attacker.collectRetry (no masked-channel
// variant exists for GIFT-128).
func (a *Attacker128) collectRetry128(pt bitutil.Word128, spec TargetSpec128) (set probe.LineSet, retries uint64, err error) {
	fc, ok := a.ch.(FallibleChannel128)
	if !ok {
		return a.ch.Collect(pt, spec.Round), 0, nil
	}
	for attempt := 0; ; attempt++ {
		s, cerr := fc.CollectErr(pt, spec.Round)
		if cerr == nil {
			return s, retries, nil
		}
		if !isTransient(cerr) || attempt >= a.cfg.Retry.MaxAttempts {
			return 0, retries, cerr
		}
		retries++
		wait := a.cfg.Retry.backoff(attempt + 1)
		a.backoffPS += wait
		if a.cfg.Tracer != nil {
			a.cfg.Tracer.Emit(obs.Event{
				Kind:    obs.KindRetry,
				Enc:     a.ch.Encryptions(),
				Cipher:  "GIFT-128",
				Round:   spec.Round,
				Segment: spec.Segment,
				Attempt: attempt + 1,
				SimPS:   wait,
			})
		}
		if a.overDeadline() {
			return 0, retries, ErrSimDeadline
		}
	}
}

func (a *Attacker128) observableShift() int {
	s := 0
	for w := a.lineWords; w > 1; w >>= 1 {
		s++
	}
	return s
}

// TargetOutcome128 mirrors TargetOutcome.
type TargetOutcome128 struct {
	Spec         TargetSpec128
	Line         int
	Pairs        []uint8
	Observations uint64
	Converged    bool
	Exhausted    bool
	Infeasible   bool
	Restarts     int
	Retries      uint64
	Quarantined  uint64
	Confidence   float64
	ChannelErr   error
}

// AttackTarget128 runs the crafted-elimination loop for one GIFT-128
// segment (see Attacker.AttackTarget for the semantics).
func (a *Attacker128) AttackTarget128(spec TargetSpec128, rks []gift.RoundKey128) TargetOutcome128 {
	return a.attackTarget128(spec, rks, false)
}

func (a *Attacker128) attackTarget128(spec TargetSpec128, rks []gift.RoundKey128, confirm bool) TargetOutcome128 {
	threshold := a.cfg.Threshold
	minObs := a.cfg.MinObservations
	out := a.eliminateTarget128(spec, rks, confirm, threshold, minObs)
	for out.Exhausted && !confirm && out.ChannelErr == nil &&
		out.Restarts < a.cfg.MaxRestarts && !a.overBudget() && !a.overDeadline() {
		threshold = relaxThreshold(threshold, a.cfg.restartRelax())
		if threshold < 1 && minObs < relaxedMinObservations {
			minObs = relaxedMinObservations
		}
		restarts := out.Restarts + 1
		a.meter.restarts.Inc()
		if a.cfg.Tracer != nil {
			a.cfg.Tracer.Emit(obs.Event{
				Kind:      obs.KindTargetRestarted,
				Enc:       a.ch.Encryptions(),
				Cipher:    "GIFT-128",
				Round:     spec.Round,
				Segment:   spec.Segment,
				Attempt:   restarts,
				Threshold: threshold,
			})
		}
		prev := out
		out = a.eliminateTarget128(spec, rks, confirm, threshold, minObs)
		out.Restarts = restarts
		out.Observations += prev.Observations
		out.Retries += prev.Retries
		out.Quarantined += prev.Quarantined
	}
	return out
}

// eliminateTarget128 mirrors Attacker.eliminateTarget.
func (a *Attacker128) eliminateTarget128(spec TargetSpec128, rks []gift.RoundKey128, confirm bool, threshold float64, minObs uint64) TargetOutcome128 {
	var elim Eliminator
	elim.Reset(a.ch.Lines(), threshold)
	feasible := spec.FeasibleLines(a.lineWords)
	full := probe.FullSet(a.ch.Lines())
	startEnc := a.ch.Encryptions()
	out := TargetOutcome128{Spec: spec, Line: -1}
	var confirmLeft uint64
	confirming := false

	for tries := uint64(0); tries < a.cfg.MaxObservationsPerTarget && !a.overBudget(); tries++ {
		if a.overDeadline() {
			out.ChannelErr = ErrSimDeadline
			break
		}
		pt := spec.CraftPlaintext(a.rng, rks)
		set, retries, err := a.collectRetry128(pt, spec)
		out.Retries += retries
		if err != nil {
			out.ChannelErr = err
			break
		}
		if a.cfg.Quarantine && degenerate(set, full) {
			out.Quarantined++
			continue
		}
		elim.Observe(set)
		a.meter.observations.Inc()
		if a.cfg.Tracer != nil {
			traceObservation(a.cfg.Tracer, a.ch.Encryptions(), "GIFT-128", spec.Round, spec.Segment, set, &elim)
		}

		if elim.Exhausted() && (threshold == 1 || elim.Observations() >= minObs) {
			out.Exhausted = true
			break
		}
		line, ok := elim.Converged(minObs)
		if !ok {
			confirming = false
			continue
		}
		if !feasible.Contains(line) {
			out.Infeasible = true
			break
		}
		if !confirm {
			out.Line = line
			out.Converged = true
			break
		}
		if !confirming {
			confirming = true
			confirmLeft = a.confirmSpan128(&elim, line)
		}
		if confirmLeft == 0 {
			out.Line = line
			out.Converged = true
			break
		}
		confirmLeft--
	}
	if out.Converged {
		out.Pairs = spec.PairsForLine(out.Line, a.lineWords)
		out.Confidence = confidence(&elim, out.Line, a.ch.Lines())
		if a.cfg.Tracer != nil {
			traceRecovered(a.cfg.Tracer, a.ch.Encryptions(), "GIFT-128", spec.Round, spec.Segment, out.Line, elim.Observations())
		}
	}
	out.Observations = elim.Observations()
	a.meter.retries.Add(out.Retries)
	a.meter.quarantined.Add(out.Quarantined)
	a.meter.segmentDone(elim.Observations(), uint64(elim.Candidates().Count()),
		a.ch.Encryptions()-startEnc, out.Converged, out.Exhausted, out.Infeasible)
	return out
}

// confirmSpan128 mirrors Attacker.confirmSpan (the S-box, and hence
// worstPinShare, is shared between the variants).
func (a *Attacker128) confirmSpan128(elim *Eliminator, line int) uint64 {
	var pMax float64
	for l := 0; l < a.ch.Lines(); l++ {
		if l == line {
			continue
		}
		if p := elim.PresenceRatio(l); p > pMax {
			pMax = p
		}
	}
	if pMax > 0.999 {
		pMax = 0.999
	}
	deathRate := (1 - worstPinShare) * (1 - pMax)
	const fpRate = 1e-4
	k := uint64(logRatio(fpRate, 1-deathRate)) + 1
	if limit := a.cfg.MaxObservationsPerTarget; k > limit {
		k = limit
	}
	return k
}

// RoundOutcome128 mirrors RoundOutcome with 32 segments.
type RoundOutcome128 struct {
	Round         int
	Cands         [32][]uint8
	ConfirmedPrev [32]uint8
	PrevResolved  bool
	Encryptions   uint64
}

// Unique reports whether every segment resolved to a single pair.
func (r RoundOutcome128) Unique() (gift.RoundKey128, bool) {
	var pairs [32]uint8
	for g, c := range r.Cands {
		if len(c) != 1 {
			return gift.RoundKey128{}, false
		}
		pairs[g] = c[0]
	}
	return roundKeyFromPairs128(r.Round, pairs), true
}

func roundKeyFromPairs128(round int, pairs [32]uint8) gift.RoundKey128 {
	var rk gift.RoundKey128
	for g, p := range pairs {
		rk.V |= uint32(p&1) << g
		rk.U |= uint32(p>>1&1) << g
	}
	rk.Const = gift.RoundConstants[round-1]
	return rk
}

// AttackRound128 attacks round key t across all 32 segments, with the
// same hypothesis machinery as the GIFT-64 path.
func (a *Attacker128) AttackRound128(t int, resolved []gift.RoundKey128, prevCands *[32][]uint8) (RoundOutcome128, error) {
	if t >= 2 {
		need := t - 1
		if prevCands != nil {
			need = t - 2
		}
		if len(resolved) < need {
			return RoundOutcome128{}, fmt.Errorf("core: attacking round %d needs %d resolved round keys, have %d", t, need, len(resolved))
		}
	}

	out := RoundOutcome128{Round: t}
	start := a.ch.Encryptions()
	a.lastRound = t
	a.lastStatuses = a.lastStatuses[:0]

	var confirmed [32]int8
	for i := range confirmed {
		confirmed[i] = -1
	}
	obsShift := a.observableShift()

	for g := 0; g < gift.Segments128; g++ {
		spec := NewTarget128(t, g)

		if prevCands == nil {
			o := a.AttackTarget128(spec, resolved[:max(t-1, 0)])
			a.lastStatuses = append(a.lastStatuses, statusFor(t, g, o.Converged, o.Line, o.Observations, o.Restarts, o.Retries, o.Confidence))
			if !o.Converged {
				if o.ChannelErr != nil {
					return out, fmt.Errorf("core: round %d segment %d: %w", t, g, o.ChannelErr)
				}
				if a.overBudget() {
					return out, ErrBudgetExceeded
				}
				return out, fmt.Errorf("core: round %d segment %d: %d observations, %w",
					t, g, o.Observations, ErrNoConvergence)
			}
			out.Cands[g] = o.Pairs
			continue
		}

		parents := spec.ParentSegments()
		var enumPos []int
		for j := obsShift; j < 4; j++ {
			enumPos = append(enumPos, j)
		}
		options := make([][]uint8, len(enumPos))
		for i, j := range enumPos {
			seg := parents[j]
			if confirmed[seg] >= 0 {
				options[i] = []uint8{uint8(confirmed[seg])}
			} else {
				options[i] = (*prevCands)[seg]
			}
		}

		won := false
		var last TargetOutcome128
		for _, combo := range cartesian(options) {
			var pairs [32]uint8
			for seg := 0; seg < 32; seg++ {
				if confirmed[seg] >= 0 {
					pairs[seg] = uint8(confirmed[seg])
				} else if len(prevCands[seg]) > 0 {
					pairs[seg] = prevCands[seg][0]
				}
			}
			for i, j := range enumPos {
				pairs[parents[j]] = combo[i]
			}
			rkPrev := roundKeyFromPairs128(t-1, pairs)
			rks := append(append([]gift.RoundKey128{}, resolved[:t-2]...), rkPrev)
			o := a.attackTarget128(spec, rks, true)
			last = o
			if !o.Converged {
				if o.ChannelErr != nil {
					a.lastStatuses = append(a.lastStatuses, statusFor(t, g, false, -1, o.Observations, o.Restarts, o.Retries, 0))
					return out, fmt.Errorf("core: round %d segment %d: %w", t, g, o.ChannelErr)
				}
				if a.overBudget() {
					a.lastStatuses = append(a.lastStatuses, statusFor(t, g, false, -1, o.Observations, o.Restarts, o.Retries, 0))
					return out, ErrBudgetExceeded
				}
				continue
			}
			for i, j := range enumPos {
				confirmed[parents[j]] = int8(combo[i])
			}
			out.Cands[g] = o.Pairs
			won = true
			break
		}
		a.lastStatuses = append(a.lastStatuses, statusFor(t, g, won, last.Line, last.Observations, last.Restarts, last.Retries, last.Confidence))
		if !won {
			return out, fmt.Errorf("core: round %d segment %d: no crafting hypothesis converged (%w)", t, g, ErrNoConvergence)
		}
	}

	if prevCands != nil {
		for seg, c := range confirmed {
			if c < 0 {
				return out, fmt.Errorf("core: round %d left segment %d of round %d unresolved", t, seg, t-1)
			}
			out.ConfirmedPrev[seg] = uint8(confirmed[seg])
		}
		out.PrevResolved = true
	}
	out.Encryptions = a.ch.Encryptions() - start
	return out, nil
}

// KeyResult128 is a completed GIFT-128 key recovery.
type KeyResult128 struct {
	Key            bitutil.Word128
	RoundKeys      [2]gift.RoundKey128
	Encryptions    uint64
	RoundsAttacked int
}

// RecoverKey128 runs the full attack: GIFT-128 consumes all 128 key
// bits in just two rounds (64 per round), so two passes suffice — three
// when wide lines force a disambiguation pass.
func (a *Attacker128) RecoverKey128() (KeyResult128, error) {
	res, _, err := a.recoverKey128()
	return res, err
}

func (a *Attacker128) recoverKey128() (KeyResult128, []gift.RoundKey128, error) {
	var res KeyResult128
	start := a.ch.Encryptions()

	var resolved []gift.RoundKey128
	var pending *[32][]uint8
	passes := 0
	t := 1
	for len(resolved) < 2 {
		if t > 6 {
			return res, resolved, fmt.Errorf("core: no resolution after %d round passes", passes)
		}
		passes++
		out, err := a.AttackRound128(t, resolved, pending)
		if err != nil {
			return res, resolved, err
		}
		if pending != nil {
			resolved = append(resolved, roundKeyFromPairs128(t-1, out.ConfirmedPrev))
			pending = nil
		}
		if len(resolved) >= 2 {
			break
		}
		if rk, ok := out.Unique(); ok {
			resolved = append(resolved, rk)
		} else {
			cands := out.Cands
			pending = &cands
		}
		t++
	}

	copy(res.RoundKeys[:], resolved[:2])
	res.Key = AssembleKey128(res.RoundKeys)
	res.Encryptions = a.ch.Encryptions() - start
	res.RoundsAttacked = passes
	return res, resolved, nil
}

// RecoverKey128Graceful mirrors Attacker.RecoverKeyGraceful: failures
// degrade into a structured PartialResult instead of an error. A nil
// PartialResult means full recovery.
func (a *Attacker128) RecoverKey128Graceful() (KeyResult128, *PartialResult) {
	start := a.ch.Encryptions()
	res, resolved, err := a.recoverKey128()
	if err == nil {
		return res, nil
	}
	p := newPartialResult("GIFT-128", len(resolved), err, a.ch.Encryptions()-start)
	p.fillSegments(a.lastStatuses, a.lastRound, gift.Segments128)
	return res, p
}

// AssembleKey128 rebuilds the master key from the first two round keys:
// round 1 consumes U = k5‖k4 and V = k1‖k0, round 2 consumes U = k7‖k6
// and V = k3‖k2 (see gift.ExpandKey128).
func AssembleKey128(rks [2]gift.RoundKey128) bitutil.Word128 {
	var key bitutil.Word128
	key = key.SetWord16(0, uint16(rks[0].V))
	key = key.SetWord16(1, uint16(rks[0].V>>16))
	key = key.SetWord16(4, uint16(rks[0].U))
	key = key.SetWord16(5, uint16(rks[0].U>>16))
	key = key.SetWord16(2, uint16(rks[1].V))
	key = key.SetWord16(3, uint16(rks[1].V>>16))
	key = key.SetWord16(6, uint16(rks[1].U))
	key = key.SetWord16(7, uint16(rks[1].U>>16))
	return key
}

// Verify128 checks a recovered key against one known block pair.
func Verify128(key bitutil.Word128, pt, ct bitutil.Word128) bool {
	return gift.NewCipher128FromWord(key).EncryptBlock(pt) == ct
}
