package campaign

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"grinch/internal/stats"
)

// Sink consumes campaign results. The runner calls Begin once before
// the first result, Write once per job in strictly ascending job-index
// order (regardless of the order workers finish), and Close exactly
// once at the end of the run — including interrupted runs, where the
// sink has received a clean index-prefix of the campaign. Write is
// never called concurrently.
type Sink interface {
	Begin(spec Spec, totalJobs int) error
	Write(Result) error
	Close() error
}

// JSONLSink streams one JSON object per line. With Timing false (the
// default) the per-execution fields (duration, worker) are stripped so
// the byte stream is identical for any worker count — the serialized
// form of the determinism contract.
type JSONLSink struct {
	W io.Writer
	// Timing preserves duration_ns/worker in the records.
	Timing bool

	bw *bufio.Writer
}

// Begin implements Sink.
func (s *JSONLSink) Begin(Spec, int) error {
	s.bw = bufio.NewWriter(s.W)
	return nil
}

// Write implements Sink.
func (s *JSONLSink) Write(r Result) error {
	if !s.Timing {
		r = r.Canonical()
	}
	b, err := json.Marshal(r)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = s.bw.Write(b)
	return err
}

// Close implements Sink.
func (s *JSONLSink) Close() error { return s.bw.Flush() }

// CSVSink streams results as flat CSV rows with a fixed header, for
// spreadsheet/pandas consumption. Timing fields are omitted, so the
// file is deterministic.
type CSVSink struct {
	W io.Writer

	cw *csv.Writer
}

var csvHeader = []string{
	"job", "kind", "platform", "mhz", "line_words", "flush",
	"probe_round", "fault", "trial", "seed", "encryptions", "dropped_out",
	"correct", "round", "partial", "resolved_rounds", "segments_converged",
	"confidence", "reason", "retries", "faults", "failed", "error",
}

// Begin implements Sink.
func (s *CSVSink) Begin(Spec, int) error {
	s.cw = csv.NewWriter(s.W)
	return s.cw.Write(csvHeader)
}

// Write implements Sink.
func (s *CSVSink) Write(r Result) error {
	p := r.Point
	return s.cw.Write([]string{
		strconv.Itoa(r.Job), p.Kind, p.Platform,
		strconv.FormatUint(p.MHz, 10), strconv.Itoa(p.LineWords),
		strconv.FormatBool(p.Flush), strconv.Itoa(p.ProbeRound),
		p.Fault, strconv.Itoa(p.Trial), strconv.FormatUint(r.Seed, 10),
		strconv.FormatUint(r.Encryptions, 10),
		strconv.FormatBool(r.DroppedOut), strconv.FormatBool(r.Correct),
		strconv.Itoa(r.Round), strconv.FormatBool(r.Partial),
		strconv.Itoa(r.ResolvedRounds), strconv.Itoa(r.SegmentsConverged),
		strconv.FormatFloat(r.Confidence, 'g', -1, 64), r.Reason,
		strconv.FormatUint(r.Retries, 10), strconv.FormatUint(r.Faults, 10),
		strconv.FormatBool(r.Failed), r.Err,
	})
}

// Close implements Sink.
func (s *CSVSink) Close() error {
	s.cw.Flush()
	return s.cw.Error()
}

// Collector retains every result in job-index order for in-process
// aggregation — the sink the experiment drivers use to fold campaign
// output back into paper tables.
type Collector struct {
	Results []Result
}

// Begin implements Sink.
func (c *Collector) Begin(_ Spec, totalJobs int) error {
	c.Results = make([]Result, 0, totalJobs)
	return nil
}

// Write implements Sink.
func (c *Collector) Write(r Result) error {
	c.Results = append(c.Results, r)
	return nil
}

// Close implements Sink.
func (c *Collector) Close() error { return nil }

// CellAgg is one grid cell's aggregate over its trials.
type CellAgg struct {
	Point Point // Trial is zero; the cell's coordinates
	// Encryptions per finished trial, in trial order.
	Trials []uint64
	// Rounds per trial for platform-race cells.
	Rounds     []int
	DroppedOut bool
	Failed     int
	Correct    int
	// Partial counts trials that ended in graceful degradation rather
	// than full recovery; Faults totals injected faults across trials.
	Partial int
	Faults  uint64
}

// Summary summarizes the per-trial encryption counts.
func (c CellAgg) Summary() stats.Summary { return stats.SummarizeUint64(c.Trials) }

// Aggregator groups results by grid cell as they stream in, feeding
// the existing stats summaries. Cells come back in job-index order, so
// the aggregate view is as deterministic as the raw stream.
type Aggregator struct {
	cells map[string]*CellAgg
	order []string
}

// Begin implements Sink.
func (a *Aggregator) Begin(Spec, int) error {
	a.cells = make(map[string]*CellAgg)
	a.order = a.order[:0]
	return nil
}

// Write implements Sink.
func (a *Aggregator) Write(r Result) error {
	key := r.Point.CellKey()
	cell, ok := a.cells[key]
	if !ok {
		p := r.Point
		p.Trial = 0
		cell = &CellAgg{Point: p}
		a.cells[key] = cell
		a.order = append(a.order, key)
	}
	if r.Failed {
		cell.Failed++
		return nil
	}
	cell.Trials = append(cell.Trials, r.Encryptions)
	if r.DroppedOut {
		cell.DroppedOut = true
	}
	if r.Correct {
		cell.Correct++
	}
	if r.Round != 0 {
		cell.Rounds = append(cell.Rounds, r.Round)
	}
	if r.Partial {
		cell.Partial++
	}
	cell.Faults += r.Faults
	return nil
}

// Close implements Sink.
func (a *Aggregator) Close() error { return nil }

// Cells returns the aggregated cells in first-seen (job-index) order.
func (a *Aggregator) Cells() []CellAgg {
	out := make([]CellAgg, 0, len(a.order))
	for _, k := range a.order {
		out = append(out, *a.cells[k])
	}
	return out
}

// multiSink fans Write calls out to several sinks, failing on the
// first error.
type multiSink []Sink

func (m multiSink) Begin(spec Spec, total int) error {
	for _, s := range m {
		if err := s.Begin(spec, total); err != nil {
			return err
		}
	}
	return nil
}

func (m multiSink) Write(r Result) error {
	for _, s := range m {
		if err := s.Write(r); err != nil {
			return err
		}
	}
	return nil
}

func (m multiSink) Close() error {
	var first error
	for _, s := range m {
		if err := s.Close(); err != nil && first == nil {
			first = fmt.Errorf("campaign: closing sink: %w", err)
		}
	}
	return first
}
