package oracle

import (
	"testing"

	"grinch/internal/bitutil"
	"grinch/internal/gift"
	"grinch/internal/present"
	"grinch/internal/probe"
	"grinch/internal/rng"
)

func TestOracle128CollectMatchesTrace(t *testing.T) {
	key := bitutil.Word128{Lo: 0x1111, Hi: 0x2222}
	c := gift.NewCipher128FromWord(key)
	o, err := New128(key, Config{ProbeRound: 2, Flush: true, LineWords: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	for i := 0; i < 20; i++ {
		pt := bitutil.Word128{Lo: r.Uint64(), Hi: r.Uint64()}
		got := o.Collect(pt, 1)
		states := c.SBoxInputs(pt)
		var want probe.LineSet
		for round := 2; round <= 3; round++ {
			for seg := uint(0); seg < 32; seg++ {
				want = want.Add(int(states[round-1].Nibble(seg)))
			}
		}
		if got != want {
			t.Fatalf("trial %d: got %v want %v", i, got, want)
		}
	}
	if o.Encryptions() != 20 {
		t.Fatalf("Encryptions = %d", o.Encryptions())
	}
	if o.Cipher() == nil {
		t.Fatal("Cipher() nil for New128 oracle")
	}
}

func TestOracle128TruncatedFastPathAgrees(t *testing.T) {
	// The SBoxInputsN fast path must produce identical observations to
	// the full trace.
	key := bitutil.Word128{Lo: 7, Hi: 9}
	c := gift.NewCipher128FromWord(key)
	fast, _ := New128(key, Config{ProbeRound: 1, Flush: true, LineWords: 2})
	slow, _ := New128FromTracer(fullTracer128{c}, Config{ProbeRound: 1, Flush: true, LineWords: 2})
	r := rng.New(2)
	for i := 0; i < 30; i++ {
		pt := bitutil.Word128{Lo: r.Uint64(), Hi: r.Uint64()}
		if fast.Collect(pt, 2) != slow.Collect(pt, 2) {
			t.Fatalf("fast path diverges at trial %d", i)
		}
	}
}

// fullTracer128 hides the SBoxInputsN method to force the slow path.
type fullTracer128 struct{ c *gift.Cipher128 }

func (f fullTracer128) SBoxInputs(pt bitutil.Word128) []bitutil.Word128 {
	return f.c.SBoxInputs(pt)
}

func TestOracle128Validation(t *testing.T) {
	if _, err := New128(bitutil.Word128{}, Config{ProbeRound: 0, LineWords: 1}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestOracle128LineWindowClamp(t *testing.T) {
	o, _ := New128(bitutil.Word128{Lo: 1}, Config{ProbeRound: 100, Flush: false, LineWords: 1})
	set := o.Collect(bitutil.Word128{Lo: 2}, 1)
	if set.Count() == 0 || set.Count() > 16 {
		t.Fatalf("clamped window set = %v", set)
	}
}

func TestOraclePresentWindowSemantics(t *testing.T) {
	// PRESENT's signal round for key t is round t itself: at ProbeRound
	// 1 with flush, Collect(pt, t) must equal the round-t index set.
	var key [10]byte
	key[3] = 0xab
	c := present.NewCipher80(key)
	o, err := NewPresent(c, Config{ProbeRound: 1, Flush: true, LineWords: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	for i := 0; i < 20; i++ {
		pt := r.Uint64()
		for _, target := range []int{1, 2, 5} {
			got := o.Collect(pt, target)
			states := c.SBoxInputs(pt)
			var want probe.LineSet
			for seg := uint(0); seg < 16; seg++ {
				want = want.Add(int(states[target-1] >> (4 * seg) & 0xf))
			}
			if got != want {
				t.Fatalf("target %d: got %v want %v", target, got, want)
			}
		}
	}
}

func TestOraclePresentNoFlushSuperset(t *testing.T) {
	var key [10]byte
	c := present.NewCipher80(key)
	of, _ := NewPresent(c, Config{ProbeRound: 2, Flush: true, LineWords: 1})
	onf, _ := NewPresent(c, Config{ProbeRound: 2, Flush: false, LineWords: 1})
	r := rng.New(4)
	for i := 0; i < 20; i++ {
		pt := r.Uint64()
		f, nf := of.Collect(pt, 3), onf.Collect(pt, 3)
		if f.Union(nf) != nf {
			t.Fatal("flush observation not a subset of no-flush")
		}
	}
}

func TestOraclePresentValidation(t *testing.T) {
	var key [10]byte
	c := present.NewCipher80(key)
	if _, err := NewPresent(c, Config{ProbeRound: 1, LineWords: 3}); err == nil {
		t.Fatal("invalid line width accepted")
	}
}

func TestEvictTimeMaskCyclesAllLines(t *testing.T) {
	key := bitutil.Word128{Lo: 5, Hi: 6}
	o, err := New(key, Config{ProbeRound: 1, Flush: true, LineWords: 1, Probe: ProbeEvictTime})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for i := 0; i < 32; i++ {
		set, mask := o.CollectMasked(uint64(i), 1)
		if mask.Count() != 1 {
			t.Fatalf("Evict+Time mask %v examines %d lines", mask, mask.Count())
		}
		if set.Union(mask) != mask {
			t.Fatalf("set %v leaks outside mask %v", set, mask)
		}
		seen[mask.Sole()]++
	}
	for l := 0; l < 16; l++ {
		if seen[l] != 2 {
			t.Fatalf("line %d probed %d times in 32 encryptions", l, seen[l])
		}
	}
}

func TestFlushReloadMaskIsFull(t *testing.T) {
	key := bitutil.Word128{Lo: 5, Hi: 6}
	o, _ := New(key, Config{ProbeRound: 1, Flush: true, LineWords: 4})
	set, mask := o.CollectMasked(42, 1)
	if mask != probe.FullSet(4) {
		t.Fatalf("Flush+Reload mask = %v", mask)
	}
	if set.Union(mask) != mask {
		t.Fatal("set exceeds table lines")
	}
}

func TestEvictTimeMembershipAgreesWithFullView(t *testing.T) {
	key := bitutil.Word128{Lo: 0xdead, Hi: 0xbeef}
	et, _ := New(key, Config{ProbeRound: 1, Flush: true, LineWords: 1, Probe: ProbeEvictTime})
	fr, _ := New(key, Config{ProbeRound: 1, Flush: true, LineWords: 1})
	r := rng.New(9)
	for i := 0; i < 64; i++ {
		pt := r.Uint64()
		full := fr.Collect(pt, 1)
		set, mask := et.CollectMasked(pt, 1)
		if full.Intersect(mask) != set {
			t.Fatalf("Evict+Time view %v inconsistent with full view %v (mask %v)", set, full, mask)
		}
	}
}
