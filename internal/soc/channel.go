package soc

import (
	"grinch/internal/cache"
	"grinch/internal/obs"
	"grinch/internal/probe"
)

// Platform is the common surface of SingleSoC and MPSoC.
type Platform interface {
	// RunSession encrypts pt on the platform under attacker probing.
	RunSession(pt uint64) Session
	// RunSessionUntil is RunSession with probing stopped (and the
	// remaining victim rounds fast-forwarded) once the probe windows
	// cover probeUntilRound.
	RunSessionUntil(pt uint64, probeUntilRound int) Session
	// Table locates the victim's S-box table.
	Table() probe.TableLayout
	// Sessions counts victim encryptions so far.
	Sessions() uint64
	// EarliestProbeRound reports where the first probe lands (Table II).
	EarliestProbeRound() int
}

var (
	_ Platform = (*SingleSoC)(nil)
	_ Platform = (*MPSoC)(nil)
)

// PlatformChannel adapts a platform to the attack's probe.Channel: each
// Collect runs a full platform session and returns the union of the
// probe windows covering the target's signal round. The window width —
// and therefore the channel's noise — is dictated by the platform's
// real scheduling and interconnect timing rather than by an oracle
// parameter.
type PlatformChannel struct {
	P Platform
	// LineBytes must match the platform's cache line size.
	LineBytes int
	// Tracer, when set, receives encryption boundaries, one
	// probe_observation per probe window, a sim_time event carrying the
	// virtual timestamp of the session's last probe — the sim-kernel
	// clock, never wall time — and a cache_snapshot with the shared
	// cache's counters accumulated across sessions.
	Tracer obs.Tracer

	// stats accumulates the per-session cache counters (each session
	// runs on a fresh cache) so snapshots are cumulative, matching the
	// persistent-cache channels.
	stats cache.Stats
}

// Lines returns the number of cache lines the table spans.
func (c *PlatformChannel) Lines() int {
	return c.P.Table().LinesIn(c.LineBytes)
}

// Encryptions returns the victim's total encryptions.
func (c *PlatformChannel) Encryptions() uint64 { return c.P.Sessions() }

// Collect runs one probed encryption and extracts the observation
// relevant to targetRound: the S-box accesses of round targetRound+1.
// Probing stops once that round is fully covered, so campaigns scale
// with the target depth rather than the full encryption length.
func (c *PlatformChannel) Collect(pt uint64, targetRound int) probe.LineSet {
	if c.Tracer != nil {
		c.Tracer.Emit(obs.Event{Kind: obs.KindEncryptionStart, Enc: c.P.Sessions() + 1, Cipher: "GIFT-64", Round: targetRound})
	}
	sess := c.P.RunSessionUntil(pt, targetRound+1)
	set := windowsCovering(sess.Windows, targetRound+1)
	c.stats.Add(sess.CacheStats)
	if c.Tracer != nil {
		enc := c.P.Sessions()
		for _, w := range sess.Windows {
			c.Tracer.Emit(obs.Event{
				Kind:  obs.KindProbeObservation,
				Enc:   enc,
				Round: w.FirstRound,
				Lines: uint64(w.Set),
			})
		}
		if n := len(sess.Windows); n > 0 {
			c.Tracer.Emit(obs.Event{Kind: obs.KindSimTime, Enc: enc, SimPS: uint64(sess.Windows[n-1].At)})
		}
		snap := probe.CacheSnapshotStats(c.stats)
		snap.Enc = enc
		c.Tracer.Emit(snap)
		c.Tracer.Emit(obs.Event{Kind: obs.KindEncryptionEnd, Enc: enc})
	}
	return set
}

var _ probe.Channel = (*PlatformChannel)(nil)
