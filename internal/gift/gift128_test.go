package gift

import (
	"encoding/hex"
	"testing"
	"testing/quick"

	"grinch/internal/bitutil"
)

// Official GIFT-128 known-answer vectors from the designers' reference
// implementation.
var gift128KATs = []struct {
	key, pt, ct string
}{
	{
		key: "00000000000000000000000000000000",
		pt:  "00000000000000000000000000000000",
		ct:  "cd0bd738388ad3f668b15a36ceb6ff92",
	},
	{
		key: "fedcba9876543210fedcba9876543210",
		pt:  "fedcba9876543210fedcba9876543210",
		ct:  "8422241a6dbf5a9346af468409ee0152",
	},
}

func mustWord128(t *testing.T, s string) bitutil.Word128 {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != 16 {
		t.Fatalf("bad 128-bit literal %q: %v", s, err)
	}
	var arr [16]byte
	copy(arr[:], b)
	return bitutil.Word128FromBytes(arr)
}

func TestGift128KnownAnswers(t *testing.T) {
	for _, kat := range gift128KATs {
		c := NewCipher128(mustKey(t, kat.key))
		pt := mustWord128(t, kat.pt)
		want := mustWord128(t, kat.ct)
		if got := c.EncryptBlock(pt); got != want {
			t.Errorf("key %s: Encrypt(%s) = %016x%016x, want %s", kat.key, kat.pt, got.Hi, got.Lo, kat.ct)
		}
		if got := c.DecryptBlock(want); got != pt {
			t.Errorf("key %s: Decrypt(%s) = %016x%016x, want %s", kat.key, kat.ct, got.Hi, got.Lo, kat.pt)
		}
	}
}

func TestGift128ByteInterface(t *testing.T) {
	for _, kat := range gift128KATs {
		c := NewCipher128(mustKey(t, kat.key))
		src, _ := hex.DecodeString(kat.pt)
		dst := make([]byte, 16)
		c.Encrypt(dst, src)
		if hex.EncodeToString(dst) != kat.ct {
			t.Errorf("Encrypt bytes = %x, want %s", dst, kat.ct)
		}
		back := make([]byte, 16)
		c.Decrypt(back, dst)
		if hex.EncodeToString(back) != kat.pt {
			t.Errorf("Decrypt bytes = %x, want %s", back, kat.pt)
		}
	}
}

func TestGift128RoundTripQuick(t *testing.T) {
	f := func(keyLo, keyHi, ptLo, ptHi uint64) bool {
		c := NewCipher128FromWord(bitutil.Word128{Lo: keyLo, Hi: keyHi})
		pt := bitutil.Word128{Lo: ptLo, Hi: ptHi}
		return c.DecryptBlock(c.EncryptBlock(pt)) == pt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGift128BitslicedAgreesQuick(t *testing.T) {
	f := func(keyLo, keyHi, ptLo, ptHi uint64) bool {
		c := NewCipher128FromWord(bitutil.Word128{Lo: keyLo, Hi: keyHi})
		pt := bitutil.Word128{Lo: ptLo, Hi: ptHi}
		ct := c.EncryptBlock(pt)
		return c.EncryptBlockBitsliced(pt) == ct && c.DecryptBlockBitsliced(ct) == pt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRound128Inverse(t *testing.T) {
	f := func(lo, hi uint64, u, v uint32, cIdx uint8) bool {
		rk := RoundKey128{U: u, V: v, Const: RoundConstants[int(cIdx)%Rounds128]}
		s := bitutil.Word128{Lo: lo, Hi: hi}
		return InvRound128(Round128(s, rk), rk) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermBits128Inverse(t *testing.T) {
	f := func(lo, hi uint64) bool {
		s := bitutil.Word128{Lo: lo, Hi: hi}
		return InvPermBits128(PermBits128(s)) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGift128TracedMatchesPlain(t *testing.T) {
	c := NewCipher128(mustKey(t, gift128KATs[1].key))
	pt := mustWord128(t, gift128KATs[1].pt)
	count := 0
	ct := c.EncryptTraced(pt, ObserverFunc(func(round, segment int, index uint8) {
		count++
		if segment < 0 || segment >= Segments128 || index > 0xf {
			t.Fatalf("bad observation round=%d segment=%d index=%#x", round, segment, index)
		}
	}))
	if ct != c.EncryptBlock(pt) {
		t.Fatalf("traced ciphertext differs from plain encryption")
	}
	if count != Rounds128*Segments128 {
		t.Fatalf("observed %d lookups, want %d", count, Rounds128*Segments128)
	}
}

// TestKeySchedule128CoversAllBitsInTwoRounds documents the GIFT-128
// analogue of the GRINCH observation: each round consumes 64 key bits
// (k5‖k4 and k1‖k0), so two consecutive round keys cover all limbs
// except k7,k6,k3,k2 — and four rounds cover every limb at least once.
func TestKeySchedule128CoversAllBitsInTwoRounds(t *testing.T) {
	key := bitutil.Word128{Lo: 0x0011223344556677, Hi: 0x8899aabbccddeeff}
	rks := ExpandKey128(key)
	// Round 1 uses k5,k4 (U) and k1,k0 (V) of the original key.
	if rks[0].U != uint32(key.Word16(5))<<16|uint32(key.Word16(4)) {
		t.Fatalf("round-1 U wrong")
	}
	if rks[0].V != uint32(key.Word16(1))<<16|uint32(key.Word16(0)) {
		t.Fatalf("round-1 V wrong")
	}
	// Round 2 uses limbs shifted by two: k7,k6 and k3,k2.
	if rks[1].U != uint32(key.Word16(7))<<16|uint32(key.Word16(6)) {
		t.Fatalf("round-2 U wrong")
	}
	if rks[1].V != uint32(key.Word16(3))<<16|uint32(key.Word16(2)) {
		t.Fatalf("round-2 V wrong")
	}
}

func TestPartialEncryptDecrypt128(t *testing.T) {
	c := NewCipher128(mustKey(t, gift128KATs[0].key))
	rks := c.RoundKeys()
	pt := bitutil.Word128{Lo: 0xdeadbeefcafef00d, Hi: 0x0123456789abcdef}
	for n := 0; n <= Rounds128; n++ {
		mid := PartialEncrypt128(pt, rks, n)
		if PartialDecrypt128(mid, rks, n) != pt {
			t.Fatalf("partial round-trip failed at n=%d", n)
		}
	}
	if PartialEncrypt128(pt, rks, Rounds128) != c.EncryptBlock(pt) {
		t.Fatalf("full partial encrypt != EncryptBlock")
	}
}

func TestSBoxInputs128Consistent(t *testing.T) {
	c := NewCipher128(mustKey(t, gift128KATs[1].key))
	pt := mustWord128(t, gift128KATs[1].pt)
	states := c.SBoxInputs(pt)
	if len(states) != Rounds128 {
		t.Fatalf("got %d states, want %d", len(states), Rounds128)
	}
	if states[0] != pt {
		t.Fatalf("round-1 S-box input differs from plaintext")
	}
	c.EncryptTraced(pt, ObserverFunc(func(round, segment int, index uint8) {
		if got := uint8(states[round-1].Nibble(uint(segment))); got != index {
			t.Fatalf("round %d segment %d: trace %#x, state nibble %#x", round, segment, index, got)
		}
	}))
}

func TestAvalanche128(t *testing.T) {
	c := NewCipher128(mustKey(t, gift128KATs[1].key))
	pt := bitutil.Word128{Lo: 0x0123456789abcdef, Hi: 0xfedcba9876543210}
	base := c.EncryptBlock(pt)
	count := func(w bitutil.Word128) int {
		n := 0
		for d := w.Lo; d != 0; d &= d - 1 {
			n++
		}
		for d := w.Hi; d != 0; d &= d - 1 {
			n++
		}
		return n
	}
	total := 0
	for i := uint(0); i < 128; i++ {
		flipped := pt.SetBit(i, pt.Bit(i)^1)
		n := count(base.Xor(c.EncryptBlock(flipped)))
		total += n
		if n < 40 || n > 88 {
			t.Errorf("bit %d: %d output bits flipped", i, n)
		}
	}
	avg := float64(total) / 128
	if avg < 58 || avg > 70 {
		t.Fatalf("average avalanche %.2f bits, want ≈64", avg)
	}
}
