package oracle

import (
	"strings"
	"testing"

	"grinch/internal/bitutil"
	"grinch/internal/gift"
	"grinch/internal/probe"
	"grinch/internal/rng"
)

var testKey = bitutil.Word128{Lo: 0x0123456789abcdef, Hi: 0xfedcba9876543210}

func mustOracle(t *testing.T, cfg Config) *Oracle {
	t.Helper()
	o, err := New(testKey, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{ProbeRound: 0, LineWords: 1},
		{ProbeRound: 1, LineWords: 3},
		{ProbeRound: 1, LineWords: 0},
		{ProbeRound: 1, LineWords: 1, FalsePresence: 1.5},
		{ProbeRound: 1, LineWords: 1, FalseAbsence: -0.1},
	}
	for _, cfg := range bad {
		if _, err := New(testKey, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

// TestNoiseValidationNamesField pins the error contract: an
// out-of-range noise probability names the offending field and the
// rejected value, and the [0,1) range is enforced identically for both
// fields and both cipher variants (Oracle128 shares Config.Validate).
func TestNoiseValidationNamesField(t *testing.T) {
	cases := []struct {
		cfg   Config
		field string
	}{
		{Config{ProbeRound: 1, LineWords: 1, FalsePresence: 1}, "FalsePresence"},
		{Config{ProbeRound: 1, LineWords: 1, FalsePresence: -0.25}, "FalsePresence"},
		{Config{ProbeRound: 1, LineWords: 1, FalseAbsence: 1.5}, "FalseAbsence"},
		{Config{ProbeRound: 1, LineWords: 1, FalseAbsence: -0.1}, "FalseAbsence"},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if err == nil {
			t.Errorf("config %+v accepted", c.cfg)
			continue
		}
		if !strings.Contains(err.Error(), c.field) {
			t.Errorf("error %q does not name field %s", err, c.field)
		}
		if _, err128 := New128(testKey, c.cfg); err128 == nil || err128.Error() != err.Error() {
			t.Errorf("GIFT-128 oracle validation diverged: %v vs %v", err128, err)
		}
	}
	// The boundary just inside the range stays accepted.
	ok := Config{ProbeRound: 1, LineWords: 1, FalsePresence: 0.999, FalseAbsence: 0.999}
	if err := ok.Validate(); err != nil {
		t.Errorf("config %+v rejected: %v", ok, err)
	}
}

func TestLinesForWidths(t *testing.T) {
	for _, c := range []struct{ words, lines int }{{1, 16}, {2, 8}, {4, 4}, {8, 2}, {16, 1}} {
		o := mustOracle(t, Config{ProbeRound: 1, Flush: true, LineWords: c.words})
		if o.Lines() != c.lines {
			t.Errorf("LineWords=%d: Lines=%d, want %d", c.words, o.Lines(), c.lines)
		}
	}
}

// TestCollectMatchesReferenceTrace recomputes the expected observation
// from the cipher's round states and compares.
func TestCollectMatchesReferenceTrace(t *testing.T) {
	cases := []struct {
		probeRound  int
		flush       bool
		targetRound int
	}{
		{1, true, 1}, {1, false, 1}, {3, true, 1}, {3, false, 2}, {2, true, 4}, {28, false, 1},
	}
	c := gift.NewCipher64FromWord(testKey)
	r := rng.New(4)
	for _, cse := range cases {
		o := mustOracle(t, Config{ProbeRound: cse.probeRound, Flush: cse.flush, LineWords: 1})
		for i := 0; i < 10; i++ {
			pt := r.Uint64()
			got := o.Collect(pt, cse.targetRound)

			states := c.SBoxInputs(pt)
			first := 1
			if cse.flush {
				first = cse.targetRound + 1
			}
			last := cse.targetRound + cse.probeRound
			if last > gift.Rounds64 {
				last = gift.Rounds64
			}
			var want probe.LineSet
			for round := first; round <= last; round++ {
				for seg := uint(0); seg < 16; seg++ {
					want = want.Add(int(bitutil.Nibble(states[round-1], seg)))
				}
			}
			if got != want {
				t.Fatalf("probeRound=%d flush=%v target=%d: got %v want %v",
					cse.probeRound, cse.flush, cse.targetRound, got, want)
			}
		}
	}
}

func TestFlushObservesOnlyTargetWindow(t *testing.T) {
	// At ProbeRound 1 with flush the observed set is exactly the 16
	// round-(t+1) accesses; with at most 16 distinct nibbles the count
	// is ≤ 16 and usually ≥ 8.
	o := mustOracle(t, Config{ProbeRound: 1, Flush: true, LineWords: 1})
	set := o.Collect(0x1234567890abcdef, 1)
	if set.Count() > 16 || set.Count() < 2 {
		t.Fatalf("window observation has %d lines", set.Count())
	}
}

func TestNoFlushSupersetOfFlush(t *testing.T) {
	r := rng.New(8)
	of := mustOracle(t, Config{ProbeRound: 2, Flush: true, LineWords: 1})
	onf := mustOracle(t, Config{ProbeRound: 2, Flush: false, LineWords: 1})
	for i := 0; i < 50; i++ {
		pt := r.Uint64()
		f := of.Collect(pt, 1)
		nf := onf.Collect(pt, 1)
		if f.Union(nf) != nf {
			t.Fatalf("flush observation %v not a subset of no-flush %v", f, nf)
		}
	}
}

func TestLineGranularityCoarsens(t *testing.T) {
	r := rng.New(9)
	fine := mustOracle(t, Config{ProbeRound: 1, Flush: true, LineWords: 1})
	coarse := mustOracle(t, Config{ProbeRound: 1, Flush: true, LineWords: 4})
	for i := 0; i < 50; i++ {
		pt := r.Uint64()
		f := fine.Collect(pt, 1)
		c4 := coarse.Collect(pt, 1)
		var want probe.LineSet
		for _, idx := range f.Lines() {
			want = want.Add(idx / 4)
		}
		if c4 != want {
			t.Fatalf("coarse set %v, want %v (from %v)", c4, want, f)
		}
	}
}

func TestEncryptionCounter(t *testing.T) {
	o := mustOracle(t, Config{ProbeRound: 1, Flush: true, LineWords: 1})
	for i := 0; i < 7; i++ {
		o.Collect(uint64(i), 1)
	}
	if o.Encryptions() != 7 {
		t.Fatalf("Encryptions = %d", o.Encryptions())
	}
}

func TestFalsePresenceAddsLines(t *testing.T) {
	clean := mustOracle(t, Config{ProbeRound: 1, Flush: true, LineWords: 1})
	noisy := mustOracle(t, Config{ProbeRound: 1, Flush: true, LineWords: 1, FalsePresence: 0.5, Seed: 3})
	r := rng.New(10)
	extra := 0
	for i := 0; i < 200; i++ {
		pt := r.Uint64()
		c := clean.Collect(pt, 1)
		n := noisy.Collect(pt, 1)
		if c.Union(n) != n {
			t.Fatalf("false presence removed lines")
		}
		extra += n.Count() - c.Count()
	}
	if extra == 0 {
		t.Fatal("FalsePresence=0.5 added no lines in 200 trials")
	}
}

func TestFalseAbsenceRemovesLines(t *testing.T) {
	clean := mustOracle(t, Config{ProbeRound: 1, Flush: true, LineWords: 1})
	noisy := mustOracle(t, Config{ProbeRound: 1, Flush: true, LineWords: 1, FalseAbsence: 0.5, Seed: 5})
	r := rng.New(11)
	removed := 0
	for i := 0; i < 200; i++ {
		pt := r.Uint64()
		c := clean.Collect(pt, 1)
		n := noisy.Collect(pt, 1)
		if n.Union(c) != c {
			t.Fatalf("false absence added lines")
		}
		removed += c.Count() - n.Count()
	}
	if removed == 0 {
		t.Fatal("FalseAbsence=0.5 removed no lines in 200 trials")
	}
}

func TestNoiseDeterministicBySeed(t *testing.T) {
	run := func() []probe.LineSet {
		o := mustOracle(t, Config{ProbeRound: 1, Flush: true, LineWords: 1, FalsePresence: 0.3, FalseAbsence: 0.3, Seed: 42})
		var out []probe.LineSet
		for i := 0; i < 50; i++ {
			out = append(out, o.Collect(uint64(i)*0x9e3779b97f4a7c15, 1))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("noise not deterministic at trial %d", i)
		}
	}
}
