package chaos

import (
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"grinch/internal/rng"
)

// Error is the typed transport error an injected fault surfaces —
// unwrappable through *url.Error so tests and telemetry can tell an
// injected failure from a real one.
type Error struct {
	Kind Kind
	Path string
	// N is the 1-based ordinal of the request among requests to Path.
	N uint64
}

func (e *Error) Error() string {
	return fmt.Sprintf("chaos: injected %s on %s (request %d)", e.Kind, e.Path, e.N)
}

// Transport is a fault-injecting http.RoundTripper: it wraps Inner
// (nil: http.DefaultTransport) and applies the Plan's first matching,
// active, firing fault to each request. Safe for concurrent use.
type Transport struct {
	plan  Plan
	inner http.RoundTripper
	// Logf receives one line per injected fault; nil discards.
	Logf func(format string, args ...any)
	// Sleep implements delay faults; nil uses time.Sleep. Tests inject
	// a recorder so delay plans run instantly.
	Sleep func(d time.Duration)

	mu     sync.Mutex
	counts map[string]uint64 // per-path request ordinals
	seeds  map[string]uint64 // per-path derived seeds (cached)
	hits   map[Kind]uint64   // injected faults by kind
}

// NewTransport builds a fault-injecting transport around inner (nil:
// http.DefaultTransport). The plan must be valid (Plan.Validate).
func NewTransport(plan Plan, inner http.RoundTripper) *Transport {
	return &Transport{
		plan:   plan,
		inner:  inner,
		counts: map[string]uint64{},
		seeds:  map[string]uint64{},
		hits:   map[Kind]uint64{},
	}
}

func (t *Transport) next() http.RoundTripper {
	if t.inner != nil {
		return t.inner
	}
	return http.DefaultTransport
}

func (t *Transport) logf(format string, args ...any) {
	if t.Logf != nil {
		t.Logf(format, args...)
	}
}

func (t *Transport) sleep(d time.Duration) {
	if t.Sleep != nil {
		t.Sleep(d)
		return
	}
	time.Sleep(d)
}

// decide numbers the request within its path stream and returns the
// first firing fault, if any. Decisions for the n-th request of a path
// are drawn from rng.Derive(Derive(seed, fnv(path)), n) — random
// access, so the fault sequence a path sees is independent of how
// requests to other paths interleave.
func (t *Transport) decide(path string) (Fault, uint64, bool) {
	t.mu.Lock()
	n := t.counts[path] + 1
	t.counts[path] = n
	pathSeed, ok := t.seeds[path]
	if !ok {
		h := fnv.New64a()
		io.WriteString(h, path)
		pathSeed = rng.Derive(t.plan.Seed, h.Sum64())
		t.seeds[path] = pathSeed
	}
	t.mu.Unlock()

	g := rng.New(rng.Derive(pathSeed, n))
	for _, f := range t.plan.Faults {
		if !f.matches(path) || !f.active(n) {
			continue
		}
		if g.Float64() < f.prob() {
			t.mu.Lock()
			t.hits[f.Kind]++
			t.mu.Unlock()
			return f, n, true
		}
	}
	return Fault{}, n, false
}

// Injected returns how many faults of the kind have fired.
func (t *Transport) Injected(kind Kind) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hits[kind]
}

// InjectedTotal returns how many faults have fired in total.
func (t *Transport) InjectedTotal() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n uint64
	for _, k := range Kinds() {
		n += t.hits[Kind(k)]
	}
	return n
}

// Summary renders the per-kind injection counts compactly for drill
// logs ("delay=3 drop-response=2"; "none" when nothing fired).
func (t *Transport) Summary() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var parts []string
	for _, k := range Kinds() {
		if n := t.hits[Kind(k)]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, n))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

// RoundTrip applies the plan to one request. Faults that fail the
// round-trip close the request body, per the http.RoundTripper
// contract.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	f, n, hit := t.decide(req.URL.Path)
	if !hit {
		return t.next().RoundTrip(req)
	}
	t.logf("chaos: injecting %s on %s (request %d)", f.Kind, req.URL.Path, n)
	switch f.Kind {
	case KindRefuse, KindDropRequest:
		// The request never reaches the server: nothing was committed.
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, &Error{Kind: f.Kind, Path: req.URL.Path, N: n}

	case Kind5xx:
		// Fabricate a server error without forwarding; drain the body so
		// the client's write side completes as it would against a real
		// server that read the request before erroring.
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		status := f.Status
		if status == 0 {
			status = http.StatusServiceUnavailable
		}
		body := `{"error":"chaos: injected server error"}`
		return &http.Response{
			Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
			StatusCode:    status,
			Proto:         req.Proto,
			ProtoMajor:    req.ProtoMajor,
			ProtoMinor:    req.ProtoMinor,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil

	case KindDelay:
		t.sleep(time.Duration(f.DelayMS) * time.Millisecond)
		return t.next().RoundTrip(req)

	case KindDropResponse:
		// Forward fully — the server processes and commits — then lose
		// the response on the way back.
		resp, err := t.next().RoundTrip(req)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, &Error{Kind: f.Kind, Path: req.URL.Path, N: n}

	case KindTruncate:
		// Forward fully, then cut the response body off halfway: the
		// reader sees an unexpected EOF after the server committed.
		resp, err := t.next().RoundTrip(req)
		if err != nil {
			return nil, err
		}
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		resp.Body = &truncatedBody{data: data[:len(data)/2]}
		return resp, nil
	}
	// Validated plans never reach here.
	return nil, &Error{Kind: f.Kind, Path: req.URL.Path, N: n}
}

// truncatedBody serves a byte prefix and then fails the read, modeling
// a connection cut mid-body.
type truncatedBody struct {
	data []byte
	off  int
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.ErrUnexpectedEOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}

func (b *truncatedBody) Close() error { return nil }
