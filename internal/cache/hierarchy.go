package cache

import "fmt"

// Hierarchy models the two-level memory hierarchy of the paper's threat
// model ("memory hierarchies comprising several levels of cache (e.g.,
// L1 to L3) and DRAMs. When a cache miss occurs, data is searched
// throughout the cache levels and eventually looked up in the DRAM") —
// and the paper's stated future work: "further explore the effect of
// the memory hierarchy on the effectiveness of the attack".
//
// The victim core owns a private L1; the attacker probes the shared L2.
// The decisive property is *inclusion*:
//
//   - With an inclusive L2 (Inclusive=true), flushing an L2 line
//     back-invalidates the victim's L1 copy, so the victim's next access
//     must refill through L2 and the attacker sees it — Flush+Reload
//     keeps working, at the cost of an extra level of latency.
//
//   - With a non-inclusive L2, the victim's L1 keeps serving hits after
//     the attacker flushes L2. Warm table lines never touch L2 again, so
//     the attacker's signal dies after the first few encryptions —
//     private-L1 + non-inclusive-L2 is itself a countermeasure.
//
// TestHierarchyAttack{Inclusive,NonInclusive} and
// internal/oracle.NewHierarchy turn this into the attack-level result.
type Hierarchy struct {
	// VictimL1 is the victim core's private first-level cache.
	VictimL1 *Cache
	// L2 is the shared second-level cache the attacker can probe.
	L2 *Cache
	// Inclusive selects whether L2 evictions and flushes
	// back-invalidate VictimL1.
	Inclusive bool
	// DRAMLatency is the cycle cost beyond L2 on a full miss.
	DRAMLatency uint64
}

// NewHierarchy builds a two-level hierarchy from L1 and L2 geometries.
func NewHierarchy(l1, l2 Config, inclusive bool, dramLatency uint64) (*Hierarchy, error) {
	vl1, err := New(l1)
	if err != nil {
		return nil, fmt.Errorf("L1: %w", err)
	}
	sl2, err := New(l2)
	if err != nil {
		return nil, fmt.Errorf("L2: %w", err)
	}
	return &Hierarchy{VictimL1: vl1, L2: sl2, Inclusive: inclusive, DRAMLatency: dramLatency}, nil
}

// HierResult reports one victim access through the hierarchy.
type HierResult struct {
	// Level is 1 for an L1 hit, 2 for an L2 hit, 3 for a DRAM fill.
	Level int
	// Latency is the total cycle cost.
	Latency uint64
}

// VictimAccess performs one victim read: L1, then L2, then DRAM.
// Fills propagate into both levels. When the shared L2 evicts a line
// under an inclusive policy, the victim's L1 copy is invalidated too.
func (h *Hierarchy) VictimAccess(addr uint64) HierResult {
	r1 := h.VictimL1.Access(addr)
	if r1.Hit {
		return HierResult{Level: 1, Latency: r1.Latency}
	}
	r2 := h.L2.Access(addr)
	if h.Inclusive && r2.Eviction {
		h.VictimL1.FlushLine(r2.Evicted)
	}
	if r2.Hit {
		return HierResult{Level: 2, Latency: r1.Latency + r2.Latency}
	}
	return HierResult{Level: 3, Latency: r1.Latency + r2.Latency + h.DRAMLatency}
}

// AttackerFlushLine flushes a line from the shared L2 (the attacker's
// reach). Under an inclusive policy the victim's private copy goes too;
// under a non-inclusive policy it survives — the crux of the future-work
// experiment.
func (h *Hierarchy) AttackerFlushLine(addr uint64) {
	h.L2.FlushLine(addr)
	if h.Inclusive {
		h.VictimL1.FlushLine(addr)
	}
}

// AttackerProbeLine reports whether the line is resident in the shared
// L2 (what an attacker's timed reload distinguishes) and re-warms it,
// as a real reload would.
func (h *Hierarchy) AttackerProbeLine(addr uint64) bool {
	res := h.L2.Access(addr)
	if h.Inclusive && res.Eviction {
		h.VictimL1.FlushLine(res.Evicted)
	}
	return res.Hit
}
