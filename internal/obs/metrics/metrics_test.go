package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", DurationMSBuckets)
	c.Add(3)
	c.Inc()
	g.Set(7)
	g.Add(1)
	h.Observe(10)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if snap := r.Snapshot(); snap != nil {
		t.Fatalf("nil registry snapshot = %v, want nil", snap)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := New()
	c := r.Counter("jobs_total", "jobs", L("status", "done"))
	c.Add(5)
	c.Inc()
	if got := c.Value(); got != 6 {
		t.Fatalf("counter = %d, want 6", got)
	}
	g := r.Gauge("depth", "")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	h := r.Histogram("lat", "", []uint64{10, 100, 1000})
	for _, v := range []uint64{1, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	s, ok := Find(snap, "lat")
	if !ok {
		t.Fatal("lat series missing")
	}
	// Bounds inclusive: 1,10 → bucket0; 11,100 → bucket1; 5000 → +Inf.
	want := []uint64{2, 2, 0, 1}
	for i, c := range s.Counts {
		if c != want[i] {
			t.Fatalf("bucket counts = %v, want %v", s.Counts, want)
		}
	}
	if s.Sum != 1+10+11+100+5000 {
		t.Fatalf("sum = %d", s.Sum)
	}
	if s.Count() != 5 {
		t.Fatalf("count = %d, want 5", s.Count())
	}
}

func TestResolveSameInstrument(t *testing.T) {
	r := New()
	a := r.Counter("x_total", "", L("a", "1"), L("b", "2"))
	b := r.Counter("x_total", "", L("b", "2"), L("a", "1")) // label order irrelevant
	if a != b {
		t.Fatal("same (name, labels) must resolve to the same instrument")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("instruments not shared")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with a different kind must panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestSnapshotDeterministic(t *testing.T) {
	build := func() []Series {
		r := New()
		r.Counter("b_total", "help b", L("x", "2")).Add(2)
		r.Counter("b_total", "help b", L("x", "1")).Add(1)
		r.Counter("a_total", "help a").Add(7)
		r.Histogram("h", "", []uint64{1, 2}).Observe(2)
		r.WallHistogram("wall_ms", "", DurationMSBuckets).Observe(123)
		return r.Snapshot()
	}
	j1, _ := json.Marshal(build())
	j2, _ := json.Marshal(build())
	if !bytes.Equal(j1, j2) {
		t.Fatalf("snapshots differ:\n%s\n%s", j1, j2)
	}
	det := Deterministic(build())
	for _, s := range det {
		if s.Wall {
			t.Fatalf("wall series %s survived Deterministic", s.Name)
		}
	}
	if len(det) != len(build())-1 {
		t.Fatalf("Deterministic dropped %d series, want 1", len(build())-len(det))
	}
}

func TestSnapshotRace(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := r.Counter("races_total", "", L("g", fmt.Sprint(i%2)))
			h := r.Histogram("race_hist", "", ObservationBuckets)
			for n := 0; n < 1000; n++ {
				c.Inc()
				h.Observe(uint64(n))
				if n%100 == 0 {
					r.Snapshot()
				}
			}
		}(i)
	}
	wg.Wait()
	snap := r.Snapshot()
	var total uint64
	for _, s := range snap {
		if s.Name == "races_total" {
			total += s.Value
		}
	}
	if total != 8000 {
		t.Fatalf("counter total = %d, want 8000", total)
	}
	if s, _ := Find(snap, "race_hist"); s.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", s.Count())
	}
}

func TestQuantile(t *testing.T) {
	r := New()
	h := r.Histogram("q", "", []uint64{10, 20, 30, 40})
	// 100 observations uniform over buckets: 25 in each of the 4.
	for b := 0; b < 4; b++ {
		for i := 0; i < 25; i++ {
			h.Observe(uint64(b*10 + 5))
		}
	}
	s, _ := Find(r.Snapshot(), "q")
	if p50 := s.Quantile(0.50); p50 < 15 || p50 > 25 {
		t.Fatalf("p50 = %v, want ~20", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 35 || p99 > 40 {
		t.Fatalf("p99 = %v, want ~40", p99)
	}
	// Overflow clamps to the last bound.
	h2 := r.Histogram("q2", "", []uint64{10})
	h2.Observe(1000)
	s2, _ := Find(r.Snapshot(), "q2")
	if got := s2.Quantile(0.5); got != 10 {
		t.Fatalf("overflow quantile = %v, want 10", got)
	}
	if (Series{}).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
}

func TestSum(t *testing.T) {
	a := []Series{
		{Name: "jobs_total", Kind: KindCounter, Value: 3},
		{Name: "lat", Kind: KindHistogram, Bounds: []uint64{10, 20}, Counts: []uint64{1, 2, 0}, Sum: 40},
	}
	b := []Series{
		{Name: "jobs_total", Kind: KindCounter, Value: 4},
		{Name: "lat", Kind: KindHistogram, Bounds: []uint64{10, 20}, Counts: []uint64{0, 1, 1}, Sum: 60},
		{Name: "extra", Kind: KindGauge, Gauge: -2},
	}
	m := Sum(a, b)
	if s, _ := Find(m, "jobs_total"); s.Value != 7 {
		t.Fatalf("summed counter = %d, want 7", s.Value)
	}
	if s, _ := Find(m, "lat"); s.Counts[0] != 1 || s.Counts[1] != 3 || s.Counts[2] != 1 || s.Sum != 100 {
		t.Fatalf("summed histogram = %+v", s)
	}
	if s, _ := Find(m, "extra"); s.Gauge != -2 {
		t.Fatalf("gauge lost: %+v", s)
	}
	// Sum must not mutate its inputs' bucket slices.
	if a[1].Counts[1] != 2 {
		t.Fatal("Sum mutated input")
	}
}

func TestStoreIdempotence(t *testing.T) {
	st := NewStore()
	d := Delta{Seq: 1, Series: []Series{{Name: "w_jobs_total", Kind: KindCounter, Value: 10}}}
	if !st.Apply("w1", d) {
		t.Fatal("first apply must be fresh")
	}
	// Same delta replayed (journal replay / retried batch): ignored.
	if st.Apply("w1", d) {
		t.Fatal("replayed delta must be stale")
	}
	if st.Apply("w1", Delta{Seq: 0}) {
		t.Fatal("older delta must be stale")
	}
	if s, _ := Find(st.Merged(), "w_jobs_total"); s.Value != 10 {
		t.Fatalf("merged = %d, want 10", s.Value)
	}
	// A newer cumulative replaces wholesale — no double counting.
	st.Apply("w1", Delta{Seq: 2, Series: []Series{{Name: "w_jobs_total", Kind: KindCounter, Value: 15}}})
	if s, _ := Find(st.Merged(), "w_jobs_total"); s.Value != 15 {
		t.Fatalf("merged after update = %d, want 15", s.Value)
	}
	// Second source sums.
	st.Apply("w2", Delta{Seq: 1, Series: []Series{{Name: "w_jobs_total", Kind: KindCounter, Value: 5}}})
	if s, _ := Find(st.Merged(), "w_jobs_total"); s.Value != 20 {
		t.Fatalf("merged two sources = %d, want 20", s.Value)
	}
	if got := st.Sources(); len(got) != 2 || got[0] != "w1" || got[1] != "w2" {
		t.Fatalf("sources = %v", got)
	}
}

func TestWithLabel(t *testing.T) {
	in := []Series{{Name: "x_total", Kind: KindCounter, Value: 1, Labels: []Label{L("z", "9")}}}
	out := WithLabel(in, "worker", "w1")
	if len(out[0].Labels) != 2 || out[0].Labels[0] != L("worker", "w1") || out[0].Labels[1] != L("z", "9") {
		t.Fatalf("labels = %v", out[0].Labels)
	}
	if len(in[0].Labels) != 1 {
		t.Fatal("WithLabel mutated input")
	}
}

func TestWriteProm(t *testing.T) {
	r := New()
	r.Counter("grinch_jobs_total", "Jobs accounted.", L("status", "done")).Add(12)
	r.Counter("grinch_jobs_total", "Jobs accounted.", L("status", "failed")).Add(3)
	r.Gauge("grinch_depth", "Queue depth.").Set(-4)
	h := r.Histogram("grinch_lat_ms", "Latency.", []uint64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)
	var buf bytes.Buffer
	if err := WriteProm(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := strings.Join([]string{
		"# HELP grinch_depth Queue depth.",
		"# TYPE grinch_depth gauge",
		"grinch_depth -4",
		"# HELP grinch_jobs_total Jobs accounted.",
		"# TYPE grinch_jobs_total counter",
		`grinch_jobs_total{status="done"} 12`,
		`grinch_jobs_total{status="failed"} 3`,
		"# HELP grinch_lat_ms Latency.",
		"# TYPE grinch_lat_ms histogram",
		`grinch_lat_ms_bucket{le="10"} 1`,
		`grinch_lat_ms_bucket{le="100"} 2`,
		`grinch_lat_ms_bucket{le="+Inf"} 3`,
		"grinch_lat_ms_sum 5055",
		"grinch_lat_ms_count 3",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// Byte-determinism: render twice.
	var buf2 bytes.Buffer
	WriteProm(&buf2, r.Snapshot())
	if buf.String() != buf2.String() {
		t.Fatal("exposition not byte-deterministic")
	}
}

func TestPromEscaping(t *testing.T) {
	series := []Series{{
		Name: "esc", Kind: KindCounter, Value: 1,
		Help:   "line1\nline2 \\ backslash",
		Labels: []Label{L("p", `a"b\c`+"\n")},
	}}
	var buf bytes.Buffer
	if err := WriteProm(&buf, series); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, `# HELP esc line1\nline2 \\ backslash`) {
		t.Fatalf("help not escaped:\n%s", got)
	}
	if !strings.Contains(got, `esc{p="a\"b\\c\n"} 1`) {
		t.Fatalf("label not escaped:\n%s", got)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(4, 4, 3)
	want := []uint64{4, 16, 64}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}
