package experiments

import (
	"fmt"
	"strings"

	"grinch/internal/bitutil"
	"grinch/internal/core"
	"grinch/internal/oracle"
	"grinch/internal/present"
	"grinch/internal/rng"
	"grinch/internal/stats"
)

// CompareRow is one cipher's full-key attack cost under ideal probing.
type CompareRow struct {
	Cipher      string
	KeyBits     int
	RoundPasses int
	Encryptions stats.Summary
	PerKeyBit   float64
	AllCorrect  bool
}

// CompareCiphers measures full-key recovery across the three
// table-based cipher targets under identical channel conditions (probe
// round 1, flush, 1-word lines) — the extension experiment quantifying
// the paper's §II GIFT-vs-PRESENT comparison from the attacker's side,
// plus GIFT-128 (the variant the NIST LWC candidates actually use).
func CompareCiphers(opt Options) []CompareRow {
	opt = opt.withDefaults()
	rows := []CompareRow{
		compareGift64(opt),
		compareGift128(opt),
		comparePresent80(opt),
	}
	return rows
}

func compareGift64(opt Options) CompareRow {
	r := rng.New(opt.Seed ^ 0x64)
	row := CompareRow{Cipher: "GIFT-64", KeyBits: 128, AllCorrect: true}
	var efforts []uint64
	for i := 0; i < opt.Trials; i++ {
		key := bitutil.Word128{Lo: r.Uint64(), Hi: r.Uint64()}
		ch, err := oracle.New(key, oracle.Config{ProbeRound: 1, Flush: true, LineWords: 1})
		if err != nil {
			panic(err)
		}
		a, err := core.NewAttacker(ch, core.Config{Seed: r.Uint64(), TotalBudget: opt.Budget})
		if err != nil {
			panic(err)
		}
		res, err := a.RecoverKey()
		if err != nil || res.Key != key {
			row.AllCorrect = false
			continue
		}
		row.RoundPasses = res.RoundsAttacked
		efforts = append(efforts, res.Encryptions)
	}
	row.Encryptions = stats.SummarizeUint64(efforts)
	row.PerKeyBit = row.Encryptions.Median / float64(row.KeyBits)
	return row
}

func compareGift128(opt Options) CompareRow {
	r := rng.New(opt.Seed ^ 0x128)
	row := CompareRow{Cipher: "GIFT-128", KeyBits: 128, AllCorrect: true}
	var efforts []uint64
	for i := 0; i < opt.Trials; i++ {
		key := bitutil.Word128{Lo: r.Uint64(), Hi: r.Uint64()}
		ch, err := oracle.New128(key, oracle.Config{ProbeRound: 1, Flush: true, LineWords: 1})
		if err != nil {
			panic(err)
		}
		a, err := core.NewAttacker128(ch, core.Config{Seed: r.Uint64(), TotalBudget: opt.Budget})
		if err != nil {
			panic(err)
		}
		res, err := a.RecoverKey128()
		if err != nil || res.Key != key {
			row.AllCorrect = false
			continue
		}
		row.RoundPasses = res.RoundsAttacked
		efforts = append(efforts, res.Encryptions)
	}
	row.Encryptions = stats.SummarizeUint64(efforts)
	row.PerKeyBit = row.Encryptions.Median / float64(row.KeyBits)
	return row
}

func comparePresent80(opt Options) CompareRow {
	r := rng.New(opt.Seed ^ 0x80)
	row := CompareRow{Cipher: "PRESENT-80", KeyBits: 80, AllCorrect: true}
	var efforts []uint64
	for i := 0; i < opt.Trials; i++ {
		var key [10]byte
		lo, hi := r.Uint64(), r.Uint64()
		key[0], key[1] = byte(hi>>8), byte(hi)
		for j := 0; j < 8; j++ {
			key[2+j] = byte(lo >> (56 - 8*uint(j)))
		}
		c := present.NewCipher80(key)
		ch, err := oracle.NewPresent(c, oracle.Config{ProbeRound: 1, Flush: true, LineWords: 1})
		if err != nil {
			panic(err)
		}
		a, err := core.NewAttackerP(ch, core.Config{Seed: r.Uint64(), TotalBudget: opt.Budget})
		if err != nil {
			panic(err)
		}
		res, err := a.RecoverKey80()
		if err != nil || res.Key != key {
			row.AllCorrect = false
			continue
		}
		row.RoundPasses = res.RoundsAttacked
		efforts = append(efforts, res.Encryptions)
	}
	row.Encryptions = stats.SummarizeUint64(efforts)
	row.PerKeyBit = row.Encryptions.Median / float64(row.KeyBits)
	return row
}

// ProbeMethodRow compares probing primitives on the same target.
type ProbeMethodRow struct {
	Method      string
	Encryptions stats.Summary
}

// CompareProbeMethods measures the first-round attack through
// Flush+Reload vs the time-driven Evict+Time baseline (paper §III-C:
// "For the GRINCH attack, the Flush+Reload method is better choice").
func CompareProbeMethods(opt Options) []ProbeMethodRow {
	opt = opt.withDefaults()
	run := func(mode oracle.ProbeMode) stats.Summary {
		r := rng.New(opt.Seed ^ uint64(mode) ^ 0xbeef)
		var efforts []uint64
		for i := 0; i < opt.Trials; i++ {
			key := bitutil.Word128{Lo: r.Uint64(), Hi: r.Uint64()}
			ch, err := oracle.New(key, oracle.Config{
				ProbeRound: 1, Flush: true, LineWords: 1, Probe: mode,
			})
			if err != nil {
				panic(err)
			}
			a, err := core.NewAttacker(ch, core.Config{Seed: r.Uint64(), TotalBudget: opt.Budget})
			if err != nil {
				panic(err)
			}
			out, err := a.AttackRound(1, nil, nil)
			if err != nil {
				efforts = append(efforts, opt.Budget)
				continue
			}
			efforts = append(efforts, out.Encryptions)
		}
		return stats.SummarizeUint64(efforts)
	}
	return []ProbeMethodRow{
		{Method: "Flush+Reload", Encryptions: run(oracle.ProbeFlushReload)},
		{Method: "Evict+Time", Encryptions: run(oracle.ProbeEvictTime)},
	}
}

// RenderCompare renders the cross-cipher comparison.
func RenderCompare(rows []CompareRow) string {
	var b strings.Builder
	b.WriteString("Extension — full-key attack cost across table-based ciphers\n")
	b.WriteString("(ideal channel: probe round 1, flush, 1-word lines)\n")
	fmt.Fprintf(&b, "%-12s %8s %12s %14s %12s %s\n",
		"cipher", "key bits", "round passes", "encryptions", "per key bit", "all correct")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %8d %12d %14.0f %12.2f %v\n",
			r.Cipher, r.KeyBits, r.RoundPasses, r.Encryptions.Median, r.PerKeyBit, r.AllCorrect)
	}
	return b.String()
}

// RenderProbeMethods renders the probing-primitive comparison.
func RenderProbeMethods(rows []ProbeMethodRow) string {
	var b strings.Builder
	b.WriteString("Extension — probing primitive cost, first-round attack on GIFT-64\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-14s median %6.0f encryptions\n", r.Method, r.Encryptions.Median)
	}
	if len(rows) == 2 && rows[0].Encryptions.Median > 0 {
		fmt.Fprintf(&b, "  ratio: %.1fx (one line of information per encryption vs sixteen)\n",
			rows[1].Encryptions.Median/rows[0].Encryptions.Median)
	}
	return b.String()
}
