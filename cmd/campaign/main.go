// Command campaign runs a swept attack-experiment campaign on the
// internal/campaign orchestrator: parallel, resumable, with structured
// result output.
//
// Usage:
//
//	campaign table1                          # built-in preset, defaults
//	campaign -trials 10 -workers 8 fig3      # scaled-up Fig. 3 sweep
//	campaign -spec sweep.json -out results.jsonl
//	campaign -journal t1.journal table1      # checkpointed; re-run to resume
//	campaign -csv results.csv -quiet table2
//	campaign -trace t1.trace.jsonl table1    # record the event trace
//	campaign -debug-addr :6060 table1        # expvar metrics + pprof
//	campaign -faults plans.json recovery     # sweep a structured-fault axis
//
// A campaign is a grid of independent attack jobs (probe round × flush
// × line size × platform × clock × trial). Jobs run on a bounded
// worker pool; every job's RNG derives from (campaign seed, job
// index), so results are identical for any -workers value. With
// -journal, completed jobs are checkpointed after each finish: an
// interrupted run (Ctrl-C drains in-flight jobs and flushes the
// journal) resumes exactly where it stopped.
//
// With -trace, every job records its internal trajectory (internal/obs
// events: encryption boundaries, probe observations, candidate-set
// updates, segment recoveries) and the JSONL trace is written in
// job-index order — byte-identical for any -workers value. Render it
// with cmd/traceview. Jobs resumed from a journal are not re-executed
// and do not appear in the trace.
//
// Failed jobs are logged once each on stderr and make the run exit
// non-zero unless -keep-going is set (the grid still completes either
// way; failures are recorded, not retried).
//
// Presets: fig3 | table1 | table2 | recovery. A -spec JSON file has
// the shape:
//
//	{"name":"sweep","kind":"first-round","seed":2021,"trials":5,
//	 "budget":1000000,"line_words":[1,2,4,8],"flush":[true],
//	 "probe_rounds":[1,2,3,4,5]}
//
// A spec may also carry "fault_plans" (an array of named internal/faults
// plans, each one grid coordinate — the robustness-curve axis), "retry"
// ({"attempts":N,"backoff_ps":M}) and "deadline_ps". -faults loads the
// fault axis from a separate JSON file instead (one plan object or an
// array of named plans) and overrides the spec's.
//
// Progress (with ETA) is reported on stderr every -progress interval;
// the per-cell aggregate table lands on stdout after the run,
// alongside any -out/-csv/-trace files.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // -debug-addr serves the default mux's profiles
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"grinch/internal/campaign"
	"grinch/internal/experiments"
	"grinch/internal/faults"
	"grinch/internal/obs"
	obsmetrics "grinch/internal/obs/metrics"
)

func main() {
	var (
		specPath  = flag.String("spec", "", "campaign spec JSON file (alternative to a preset name)")
		workers   = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS); results are identical for any value")
		trials    = flag.Int("trials", 3, "trials per grid cell (presets only)")
		budget    = flag.Uint64("budget", 1_000_000, "per-attack encryption budget (presets only)")
		seed      = flag.Uint64("seed", 2021, "campaign seed (presets only)")
		journal   = flag.String("journal", "", "checkpoint journal path; an existing journal resumes the campaign")
		outPath   = flag.String("out", "", "JSON-lines result file (\"-\" for stdout)")
		csvPath   = flag.String("csv", "", "CSV result file")
		tracePath = flag.String("trace", "", "JSON-lines event-trace file (internal/obs format; render with traceview)")
		timing    = flag.Bool("timing", false, "include per-job duration/worker in -out records (breaks byte-determinism)")
		faultFile = flag.String("faults", "", "fault-plan JSON file (one plan object or an array of named plans); adds a fault axis to the grid")
		keepGoing = flag.Bool("keep-going", false, "exit zero even when jobs failed (failures are still logged and recorded)")
		progress  = flag.Duration("progress", 500*time.Millisecond, "stderr progress-ticker interval")
		debugAddr = flag.String("debug-addr", "", "serve expvar campaign metrics and net/http/pprof on this address (e.g. :6060)")
		quiet     = flag.Bool("quiet", false, "suppress the stderr progress ticker")
	)
	flag.Parse()

	spec, err := loadSpec(*specPath, experiments.Options{Trials: *trials, Budget: *budget, Seed: *seed})
	if err != nil {
		fatalf("%v", err)
	}
	if *faultFile != "" {
		plans, err := loadFaultPlans(*faultFile)
		if err != nil {
			fatalf("%v", err)
		}
		spec.FaultPlans = plans
	}

	sinks, closers, err := buildSinks(*outPath, *csvPath, *timing)
	if err != nil {
		fatalf("%v", err)
	}
	agg := &campaign.Aggregator{}
	fails := &failures{}
	sinks = append(sinks, agg, fails)

	var trace *obs.Writer
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatalf("%v", err)
		}
		trace = obs.NewWriter(f)
		closers = append(closers, func() {
			if err := trace.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "campaign: flushing trace: %v\n", err)
			}
			f.Close()
		})
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	metrics := campaign.NewMetrics()
	var reg *obsmetrics.Registry
	if *debugAddr != "" {
		// The registry rides the debug endpoint: without -debug-addr it
		// stays nil and the run loop takes the zero-cost path.
		reg = obsmetrics.New()
		serveDebug(*debugAddr, metrics, reg)
	}
	var done64 atomic.Int64
	opts := campaign.Options{
		Workers:  *workers,
		Sinks:    sinks,
		Journal:  *journal,
		Metrics:  metrics,
		Registry: reg,
		Progress: func(done, total int) {
			done64.Store(int64(done))
		},
	}
	if trace != nil {
		opts.Trace = trace
	}

	var stopTicker func()
	if !*quiet && *progress > 0 {
		stopTicker = startTicker(spec, metrics, &done64, *workers, *progress)
	}
	rep, err := campaign.Run(ctx, spec, experiments.Execute, opts)
	if stopTicker != nil {
		stopTicker()
	}
	for _, c := range closers {
		c()
	}
	fails.report()

	switch {
	case err == context.Canceled:
		fmt.Fprintf(os.Stderr,
			"campaign %s: interrupted after %d/%d jobs (%v); journal flushed — re-run with the same flags to resume\n",
			spec.Name, rep.Skipped+rep.Executed, rep.Total, rep.Elapsed.Round(time.Millisecond))
		os.Exit(130)
	case err != nil:
		fatalf("%v", err)
	}

	printSummary(rep, agg, metrics, trace)
	if len(fails.list) > 0 && !*keepGoing {
		fmt.Fprintf(os.Stderr, "campaign %s: %d job(s) failed (use -keep-going to exit zero anyway)\n",
			spec.Name, len(fails.list))
		os.Exit(1)
	}
}

// failures collects failed results — as a sink it also sees jobs whose
// failure was replayed from the journal, which Report.Failed (executed
// jobs only) misses. Each job index is kept once, so a failure that is
// both replayed and re-delivered can never be double-counted in the
// exit-code path.
type failures struct {
	list []campaign.Result
	seen map[int]bool
}

func (f *failures) Begin(campaign.Spec, int) error { return nil }

func (f *failures) Write(r campaign.Result) error {
	if r.Failed && !f.seen[r.Job] {
		if f.seen == nil {
			f.seen = map[int]bool{}
		}
		f.seen[r.Job] = true
		f.list = append(f.list, r)
	}
	return nil
}

func (f *failures) Close() error { return nil }

// report logs each failed job once on stderr.
func (f *failures) report() {
	for _, r := range f.list {
		fmt.Fprintf(os.Stderr, "campaign: job %d (%s) failed: %s\n", r.Job, r.Point, r.Err)
	}
}

// serveDebug publishes the campaign metrics as the expvar "campaign"
// variable (schema documented in DESIGN.md §14) and serves the default
// mux — /debug/vars (expvar), /metrics (Prometheus text exposition of
// the campaign_* registry) and /debug/pprof (net/http/pprof) — on
// addr. Debugging telemetry only: it never feeds back into results or
// traces.
func serveDebug(addr string, m *campaign.Metrics, reg *obsmetrics.Registry) {
	expvar.Publish("campaign", m)
	http.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obsmetrics.ContentType)
		if err := obsmetrics.WriteProm(w, reg.Snapshot()); err != nil {
			fmt.Fprintf(os.Stderr, "campaign: writing /metrics: %v\n", err)
		}
	})
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "campaign: debug server: %v\n", err)
		}
	}()
}

// loadFaultPlans reads a -faults file: one plan object or an array of
// named plans, each becoming one value of the campaign's fault axis.
// A lone unnamed plan gets the name "faulted" so it can serve as an
// axis value.
func loadFaultPlans(path string) ([]faults.Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	plans, err := faults.ParsePlans(data)
	if err != nil {
		return nil, err
	}
	if len(plans) == 1 && plans[0].Name == "" {
		plans[0].Name = "faulted"
	}
	return plans, nil
}

// loadSpec builds the campaign spec from -spec or a preset argument.
func loadSpec(path string, opt experiments.Options) (campaign.Spec, error) {
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return campaign.Spec{}, err
		}
		return campaign.ParseSpec(data)
	}
	if flag.NArg() != 1 {
		return campaign.Spec{}, fmt.Errorf("campaign: need a preset (fig3, table1, table2, recovery) or -spec file")
	}
	return experiments.SpecByName(flag.Arg(0), opt)
}

// buildSinks assembles the file sinks and their close functions.
func buildSinks(outPath, csvPath string, timing bool) ([]campaign.Sink, []func(), error) {
	var sinks []campaign.Sink
	var closers []func()
	open := func(path string) (*os.File, error) {
		if path == "-" {
			return os.Stdout, nil
		}
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		closers = append(closers, func() { f.Close() })
		return f, nil
	}
	if outPath != "" {
		f, err := open(outPath)
		if err != nil {
			return nil, nil, err
		}
		sinks = append(sinks, &campaign.JSONLSink{W: f, Timing: timing})
	}
	if csvPath != "" {
		f, err := open(csvPath)
		if err != nil {
			return nil, nil, err
		}
		sinks = append(sinks, &campaign.CSVSink{W: f})
	}
	return sinks, closers, nil
}

// startTicker reports progress + ETA on stderr every interval until
// stopped. The ETA derives from the metrics' per-job mean duration and
// the worker count, so it stabilizes as soon as a few jobs finish.
func startTicker(spec campaign.Spec, m *campaign.Metrics, done *atomic.Int64, workers int, interval time.Duration) func() {
	total := spec.NumJobs()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	stop := make(chan struct{})
	tick := time.NewTicker(interval)
	go func() {
		defer tick.Stop()
		for {
			select {
			case <-stop:
				fmt.Fprintln(os.Stderr)
				return
			case <-tick.C:
				snap := m.Snapshot()
				d := int(done.Load())
				line := fmt.Sprintf("\rcampaign %s: %d/%d jobs", spec.Name, d, total)
				if snap.JobsDone > 0 && snap.JobMSMean > 0 {
					remaining := total - d
					eta := time.Duration(float64(remaining)*snap.JobMSMean/float64(workers)) * time.Millisecond
					line += fmt.Sprintf(" (%.1fms/job, queue %d, in-flight %d, ETA %v)",
						snap.JobMSMean, snap.QueueDepth, snap.InFlight, eta.Round(time.Second))
				}
				fmt.Fprint(os.Stderr, line+"   ")
			}
		}
	}()
	return func() { close(stop) }
}

// printSummary renders the per-cell aggregate table and run totals.
func printSummary(rep campaign.Report, agg *campaign.Aggregator, m *campaign.Metrics, trace *obs.Writer) {
	fmt.Printf("campaign %s: %d jobs (%d resumed from journal, %d failed) in %v\n",
		rep.Spec.Name, rep.Total, rep.Skipped, rep.Failed+rep.FailedReplayed, rep.Elapsed.Round(time.Millisecond))
	snap := m.Snapshot()
	fmt.Printf("  %d victim encryptions this run; per-job %.1fms mean, %.1fms max\n",
		snap.Encryptions, snap.JobMSMean, snap.JobMSMax)
	if trace != nil {
		fmt.Printf("  %d trace events recorded\n", trace.Count())
	}
	fmt.Println()
	fmt.Printf("%-44s %8s %12s %12s %12s\n", "cell", "trials", "median", "min", "max")
	for _, c := range agg.Cells() {
		s := c.Summary()
		median := fmt.Sprintf("%.0f", s.Median)
		if c.DroppedOut {
			median = ">" + fmt.Sprintf("%.0f", s.Max)
		}
		if len(c.Rounds) > 0 {
			// Platform-race cells measure a round, not an effort.
			median = fmt.Sprintf("round %d", c.Rounds[len(c.Rounds)/2])
		}
		fmt.Printf("%-44s %8d %12s %12.0f %12.0f", c.Point, len(c.Trials), median, s.Min, s.Max)
		if c.Partial > 0 {
			fmt.Printf("  %d/%d partial, %d faults", c.Partial, len(c.Trials), c.Faults)
		}
		fmt.Println()
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "campaign: "+format+"\n", args...)
	os.Exit(1)
}
