package gift

import "testing"

// specPerm64 is the explicit P64 table from the GIFT specification
// (Banik et al., Table 2), used to cross-check the generated closed form.
var specPerm64 = [64]uint8{
	0, 17, 34, 51, 48, 1, 18, 35, 32, 49, 2, 19, 16, 33, 50, 3,
	4, 21, 38, 55, 52, 5, 22, 39, 36, 53, 6, 23, 20, 37, 54, 7,
	8, 25, 42, 59, 56, 9, 26, 43, 40, 57, 10, 27, 24, 41, 58, 11,
	12, 29, 46, 63, 60, 13, 30, 47, 44, 61, 14, 31, 28, 45, 62, 15,
}

// specPerm128 is the explicit P128 table from the specification.
var specPerm128 = [128]uint8{
	0, 33, 66, 99, 96, 1, 34, 67, 64, 97, 2, 35, 32, 65, 98, 3,
	4, 37, 70, 103, 100, 5, 38, 71, 68, 101, 6, 39, 36, 69, 102, 7,
	8, 41, 74, 107, 104, 9, 42, 75, 72, 105, 10, 43, 40, 73, 106, 11,
	12, 45, 78, 111, 108, 13, 46, 79, 76, 109, 14, 47, 44, 77, 110, 15,
	16, 49, 82, 115, 112, 17, 50, 83, 80, 113, 18, 51, 48, 81, 114, 19,
	20, 53, 86, 119, 116, 21, 54, 87, 84, 117, 22, 55, 52, 85, 118, 23,
	24, 57, 90, 123, 120, 25, 58, 91, 88, 121, 26, 59, 56, 89, 122, 27,
	28, 61, 94, 127, 124, 29, 62, 95, 92, 125, 30, 63, 60, 93, 126, 31,
}

func TestPerm64MatchesSpecTable(t *testing.T) {
	if Perm64 != specPerm64 {
		t.Fatalf("generated Perm64 disagrees with specification table:\n got %v\nwant %v", Perm64, specPerm64)
	}
}

func TestPerm128MatchesSpecTable(t *testing.T) {
	if Perm128 != specPerm128 {
		t.Fatalf("generated Perm128 disagrees with specification table:\n got %v\nwant %v", Perm128, specPerm128)
	}
}

func TestInvPerm64IsInverse(t *testing.T) {
	for i := range Perm64 {
		if got := InvPerm64[Perm64[i]]; got != uint8(i) {
			t.Fatalf("InvPerm64[Perm64[%d]] = %d, want %d", i, got, i)
		}
	}
}

func TestInvPerm128IsInverse(t *testing.T) {
	for i := range Perm128 {
		if got := InvPerm128[Perm128[i]]; got != uint8(i) {
			t.Fatalf("InvPerm128[Perm128[%d]] = %d, want %d", i, got, i)
		}
	}
}

func TestSBoxIsPermutation(t *testing.T) {
	var seen [16]bool
	for _, v := range SBox {
		if seen[v] {
			t.Fatalf("S-box value %#x repeated", v)
		}
		seen[v] = true
	}
	for i, v := range SBox {
		if InvSBox[v] != uint8(i) {
			t.Fatalf("InvSBox[SBox[%#x]] = %#x, want %#x", i, InvSBox[v], i)
		}
	}
}

// TestRoundConstantSequence checks the first constants of the LFSR
// sequence against the values listed in the GIFT specification.
func TestRoundConstantSequence(t *testing.T) {
	want := []uint8{
		0x01, 0x03, 0x07, 0x0F, 0x1F, 0x3E, 0x3D, 0x3B, 0x37, 0x2F,
		0x1E, 0x3C, 0x39, 0x33, 0x27, 0x0E, 0x1D, 0x3A, 0x35, 0x2B,
		0x16, 0x2C, 0x18, 0x30, 0x21, 0x02, 0x05, 0x0B, 0x17, 0x2E,
		0x1C, 0x38, 0x31, 0x23, 0x06, 0x0D, 0x1B, 0x36, 0x2D, 0x1A,
	}
	if len(RoundConstants) < len(want) {
		t.Fatalf("only %d round constants generated, want at least %d", len(RoundConstants), len(want))
	}
	for i, w := range want {
		if RoundConstants[i] != w {
			t.Fatalf("RoundConstants[%d] = %#02x, want %#02x", i, RoundConstants[i], w)
		}
	}
}

func TestRoundConstantsNonZeroAndSixBit(t *testing.T) {
	for i, c := range RoundConstants {
		if c == 0 {
			t.Fatalf("round constant %d is zero: LFSR entered the degenerate state", i)
		}
		if c > 0x3f {
			t.Fatalf("round constant %d = %#x exceeds 6 bits", i, c)
		}
	}
}

func TestSBoxBranchNumberIsTwo(t *testing.T) {
	// GIFT's design point (paper §II): its S-box only needs branching
	// number 2, unlike PRESENT's BN3. Verify BN == 2: the minimum over
	// nonzero input differences of (weight(Δin) + weight(Δout)).
	popcount := func(x uint8) int {
		n := 0
		for ; x != 0; x &= x - 1 {
			n++
		}
		return n
	}
	best := 8
	for a := 1; a < 16; a++ {
		for d := 1; d < 16; d++ {
			dout := SBox[a] ^ SBox[a^d]
			if dout == 0 {
				continue
			}
			if w := popcount(uint8(d)) + popcount(dout); w < best {
				best = w
			}
		}
	}
	if best != 2 {
		t.Fatalf("GIFT S-box branch number = %d, specification says 2", best)
	}
}
