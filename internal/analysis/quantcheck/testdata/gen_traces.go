//go:build ignore

// gen_traces regenerates the quantcheck fixture traces: one recorded
// GIFT-64 attack per paper line geometry that still converges at
// fixture scale (1-, 2- and 4-word lines → 16-, 8- and 4-line
// universes; the 8-word/2-line geometry needs tens of thousands of
// observations and is exercised analytically in the tests instead).
// Run it from this directory:
//
//	go run gen_traces.go
//
// Each trace is two single-segment eliminations (segments 0 and 1 of
// round 1) recorded into per-job buffers, exactly like the report
// package's fixture, so the fit sees a small pooled group per
// geometry. Checking the traces in decouples the quantcheck goldens
// from the attack internals: an attack change only moves the measured
// side when a regeneration is deliberate — which is precisely the
// drift grinchvet -quant-check exists to catch.
package main

import (
	"fmt"
	"log"
	"os"

	"grinch/internal/bitutil"
	"grinch/internal/core"
	"grinch/internal/obs"
	"grinch/internal/oracle"
	"grinch/internal/rng"
)

func main() {
	for _, lineWords := range []int{1, 2, 4} {
		name := fmt.Sprintf("trace-linewords%d.jsonl", lineWords)
		f, err := os.Create(name)
		if err != nil {
			log.Fatal(err)
		}
		w := obs.NewWriter(f)

		r := rng.New(1)
		key := bitutil.Word128{Lo: r.Uint64(), Hi: r.Uint64()}
		for job := 0; job < 2; job++ {
			buf := &obs.Buffer{Job: job}
			ch, err := oracle.New(key, oracle.Config{
				ProbeRound: 1,
				Flush:      true,
				LineWords:  lineWords,
				Seed:       uint64(job) + 7,
			})
			if err != nil {
				log.Fatal(err)
			}
			ch.SetTracer(buf)
			a, err := core.NewAttacker(ch, core.Config{Seed: uint64(job) + 13, Tracer: buf})
			if err != nil {
				log.Fatal(err)
			}
			out := a.AttackTarget(core.NewTarget64(1, job), nil)
			if !out.Converged {
				log.Fatalf("linewords=%d job %d did not converge", lineWords, job)
			}
			if err := w.WriteEvents(buf.Events); err != nil {
				log.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("%s: wrote %d events", name, w.Count())
	}
}
