package victim

import (
	"testing"

	"grinch/internal/bitutil"
	"grinch/internal/gift"
	"grinch/internal/probe"
)

// recordingExecutor captures the victim's access stream without any
// platform timing.
type recordingExecutor struct {
	cycles   uint64
	accesses []uint64
}

func (e *recordingExecutor) Exec(c uint64) { e.cycles += c }
func (e *recordingExecutor) Access(addr uint64) uint64 {
	e.accesses = append(e.accesses, addr)
	e.cycles += 1
	return 1
}

var testKey = bitutil.Word128{Lo: 0x0123456789abcdef, Hi: 0xfedcba9876543210}

func testVictim() (*Victim, *gift.Cipher64) {
	c := gift.NewCipher64FromWord(testKey)
	table := probe.TableLayout{Base: 0x1000, EntryBytes: 1, Entries: 16}
	return New(c, table, DefaultTiming()), c
}

func TestEncryptMatchesCipher(t *testing.T) {
	v, c := testVictim()
	ex := &recordingExecutor{}
	pt := uint64(0xfedcba9876543210)
	if got, want := v.Encrypt(ex, pt), c.EncryptBlock(pt); got != want {
		t.Fatalf("victim ciphertext %016x, want %016x", got, want)
	}
}

func TestAccessStreamMatchesTrace(t *testing.T) {
	v, c := testVictim()
	ex := &recordingExecutor{}
	pt := uint64(0x1122334455667788)
	v.Encrypt(ex, pt)

	var want []uint64
	c.EncryptTraced(pt, gift.ObserverFunc(func(round, segment int, index uint8) {
		want = append(want, v.Table().EntryAddr(int(index)))
	}))
	if len(ex.accesses) != len(want) {
		t.Fatalf("%d accesses, want %d", len(ex.accesses), len(want))
	}
	for i := range want {
		if ex.accesses[i] != want[i] {
			t.Fatalf("access %d = %#x, want %#x", i, ex.accesses[i], want[i])
		}
	}
}

func TestCycleBudget(t *testing.T) {
	v, _ := testVictim()
	ex := &recordingExecutor{}
	v.Encrypt(ex, 0)
	// 28 rounds × (compute + 16×overhead) + 448 unit accesses.
	want := 28*(v.timing.ComputeCyclesPerRound+16*v.timing.LookupOverheadCycles) + 448
	if ex.cycles != want {
		t.Fatalf("cycles = %d, want %d", ex.cycles, want)
	}
}

func TestRoundCyclesCalibration(t *testing.T) {
	v, _ := testVictim()
	// DESIGN.md calibration: ≈1.2–1.35 ms per round at 50 MHz.
	cycles := v.RoundCycles()
	if cycles < 55_000 || cycles > 70_000 {
		t.Fatalf("round budget %d cycles is outside the paper-calibrated band", cycles)
	}
}

func TestProgressTracking(t *testing.T) {
	v, _ := testVictim()
	if v.CurrentRound() != 0 || v.Encryptions() != 0 {
		t.Fatal("fresh victim not idle")
	}
	ex := &recordingExecutor{}
	v.Encrypt(ex, 1)
	if v.CurrentRound() != 0 {
		t.Fatal("victim not idle after encryption")
	}
	if v.Encryptions() != 1 {
		t.Fatalf("Encryptions = %d", v.Encryptions())
	}
}

// trackingExecutor asserts the round counter is live during execution.
type trackingExecutor struct {
	v      *Victim
	t      *testing.T
	rounds map[int]bool
}

func (e *trackingExecutor) Exec(uint64) {}
func (e *trackingExecutor) Access(uint64) uint64 {
	r := e.v.CurrentRound()
	if r < 1 || r > gift.Rounds64 {
		e.t.Fatalf("CurrentRound = %d during access", r)
	}
	e.rounds[r] = true
	return 1
}

func TestCurrentRoundDuringEncryption(t *testing.T) {
	v, _ := testVictim()
	ex := &trackingExecutor{v: v, t: t, rounds: map[int]bool{}}
	v.Encrypt(ex, 0xabcdef)
	if len(ex.rounds) != gift.Rounds64 {
		t.Fatalf("accesses observed in %d rounds, want %d", len(ex.rounds), gift.Rounds64)
	}
}
