// Package oracle provides the ideal observation channel the GRINCH paper
// uses for its first two experiments ("For the first two experiments,
// RTL simulations were used to collect clean data"): the exact set of
// S-box table lines touched between the probe's flush point and the
// probe itself, with configurable probing round, flush behaviour, cache
// line width and optional injected noise.
//
// The channel semantics (DESIGN.md §4): when the attack targets round t
// (wanting the round-(t+1) S-box accesses) and the probe lands
// ProbeRound rounds later, the observed set covers rounds
//
//	[t+1, t+ProbeRound]  with flush (the flush lands between the
//	                     round-t and round-(t+1) lookups)
//	[1,   t+ProbeRound]  without flush (stale earlier accesses remain)
//
// so ProbeRound = 1 is the cleanest channel (exactly the signal round)
// and larger values accumulate noise rounds, reproducing Fig. 3.
package oracle

import (
	"fmt"

	"grinch/internal/bitutil"
	"grinch/internal/gift"
	"grinch/internal/obs"
	"grinch/internal/probe"
	"grinch/internal/rng"
)

// ProbeMode selects the probing primitive the channel models.
type ProbeMode int

const (
	// ProbeFlushReload (default) examines every table line per
	// encryption — the paper's preferred primitive (§III-C).
	ProbeFlushReload ProbeMode = iota
	// ProbeEvictTime models the time-driven baseline: one line is
	// evicted per encryption and only the victim's total-time elevation
	// for that line is learned, so each observation covers a single
	// line (round-robin across encryptions).
	ProbeEvictTime
)

// Config controls the observation channel.
type Config struct {
	// ProbeRound is how many rounds of S-box accesses the probe
	// accumulates past the target round (the paper's "cache probing
	// round" axis, 1 = earliest/cleanest). Must be ≥ 1.
	ProbeRound int
	// Probe selects the probing primitive (default Flush+Reload).
	Probe ProbeMode
	// Flush erases the accesses of rounds before the target round
	// (paper: "GRINCH with Flush").
	Flush bool
	// LineWords is how many table entries share one cache line
	// (paper Table I: 1, 2, 4, 8). Must divide 16.
	LineWords int
	// FalsePresence is the per-line probability that an untouched line
	// is reported touched (co-tenant pollution).
	FalsePresence float64
	// FalseAbsence is the per-line probability that a touched line is
	// reported untouched (eviction between access and probe).
	FalseAbsence float64
	// Seed drives the noise generator.
	Seed uint64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.ProbeRound < 1 {
		return fmt.Errorf("oracle: ProbeRound = %d must be ≥ 1", c.ProbeRound)
	}
	switch c.LineWords {
	case 1, 2, 4, 8, 16:
	default:
		return fmt.Errorf("oracle: LineWords = %d must be one of 1,2,4,8,16", c.LineWords)
	}
	if err := validateNoise("FalsePresence", c.FalsePresence); err != nil {
		return err
	}
	if err := validateNoise("FalseAbsence", c.FalseAbsence); err != nil {
		return err
	}
	return nil
}

// validateNoise checks one noise probability field, naming the
// offending field and value in the error. Both GIFT-64 and GIFT-128
// oracles share this range: [0,1) — a probability of exactly 1 would
// make every observation pure noise and is always a config mistake.
func validateNoise(field string, v float64) error {
	if v < 0 || v >= 1 {
		return fmt.Errorf("oracle: %s = %v out of range [0,1)", field, v)
	}
	return nil
}

// Tracer produces per-round S-box input states for a victim cipher —
// the address stream the cache leaks. gift.Cipher64 implements it; so
// do the hardened cipher variants in internal/countermeasure, which
// lets the same oracle demonstrate the countermeasures.
type Tracer interface {
	SBoxInputs(pt uint64) []uint64
}

// truncatedTracer is the fast path for victims that can stop the trace
// at the probe window's end.
type truncatedTracer interface {
	SBoxInputsN(pt uint64, n int) []uint64
}

// appendTracer is the allocation-free refinement of truncatedTracer:
// the victim appends its round states into a caller-owned buffer that
// the oracle reuses across encryptions. gift.Cipher64 implements it.
type appendTracer interface {
	SBoxInputsAppend(dst []uint64, pt uint64, n int) []uint64
}

// Oracle is an ideal probing channel against a GIFT-64 victim. It
// implements probe.Channel and probe.MaskedChannel.
type Oracle struct {
	cfg         Config
	tracer      Tracer         //grinch:secret
	cipher      *gift.Cipher64 //grinch:secret
	noise       *rng.Source
	lines       int
	full        probe.LineSet
	encryptions uint64
	// cursor cycles the evicted line in Evict+Time mode.
	cursor int
	events obs.Tracer
	// states is the reusable victim-trace buffer for the scalar Collect
	// path (appendTracer victims), reset per encryption.
	states []uint64
}

// New builds an oracle for a victim holding the given key.
//
//grinch:secret key
func New(key bitutil.Word128, cfg Config) (*Oracle, error) {
	c := gift.NewCipher64FromWord(key)
	o, err := NewFromTracer(c, cfg)
	if err != nil {
		return nil, err
	}
	o.cipher = c
	return o, nil
}

// NewFromTracer builds an oracle over any traced victim implementation.
//
//grinch:secret tr
func NewFromTracer(tr Tracer, cfg Config) (*Oracle, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Oracle{
		cfg:    cfg,
		tracer: tr,
		noise:  rng.New(cfg.Seed),
		lines:  16 / cfg.LineWords,
		full:   probe.FullSet(16 / cfg.LineWords),
	}, nil
}

// MustNew is New for known-good configurations.
//
//grinch:secret key
func MustNew(key bitutil.Word128, cfg Config) *Oracle {
	o, err := New(key, cfg)
	if err != nil {
		panic(err)
	}
	return o
}

// Lines returns the number of cache lines the S-box table spans.
func (o *Oracle) Lines() int { return o.lines }

// Encryptions returns how many encryptions the victim has performed for
// this channel (the attack-effort metric).
func (o *Oracle) Encryptions() uint64 { return o.encryptions }

// Cipher exposes the victim cipher when the oracle was built with New
// (nil for NewFromTracer victims); tests use it to verify recovery.
func (o *Oracle) Cipher() *gift.Cipher64 { return o.cipher }

// SetTracer attaches an event tracer (nil disables tracing). The
// channel emits encryption_start/encryption_end per Collect.
func (o *Oracle) SetTracer(t obs.Tracer) { o.events = t }

// Collect runs one victim encryption of pt and returns the line set the
// probe observes when the attack targets round targetRound.
func (o *Oracle) Collect(pt uint64, targetRound int) probe.LineSet {
	o.encryptions++
	if o.events != nil {
		o.events.Emit(obs.Event{Kind: obs.KindEncryptionStart, Enc: o.encryptions, Cipher: "GIFT-64", Round: targetRound})
		defer o.events.Emit(obs.Event{Kind: obs.KindEncryptionEnd, Enc: o.encryptions})
	}

	first := 1
	if o.cfg.Flush {
		first = targetRound + 1
	}
	last := targetRound + o.cfg.ProbeRound
	if last > gift.Rounds64 {
		last = gift.Rounds64
	}

	var states []uint64
	switch tt := o.tracer.(type) {
	case appendTracer:
		o.states = tt.SBoxInputsAppend(o.states[:0], pt, last)
		states = o.states
	case truncatedTracer:
		states = tt.SBoxInputsN(pt, last)
	default:
		states = o.tracer.SBoxInputs(pt)
	}

	var set probe.LineSet
	for r := first; r <= last; r++ {
		s := states[r-1]
		for i := uint(0); i < gift.Segments64; i++ {
			idx := int(bitutil.Nibble(s, i))
			set = set.Add(idx / o.cfg.LineWords)
		}
	}
	return o.applyNoise(set)
}

// CollectMasked implements probe.MaskedChannel: under Evict+Time the
// attacker learns one line's membership per encryption; under
// Flush+Reload the mask covers the whole table.
func (o *Oracle) CollectMasked(pt uint64, targetRound int) (set, mask probe.LineSet) {
	full := o.Collect(pt, targetRound)
	if o.cfg.Probe != ProbeEvictTime {
		return full, o.full
	}
	l := o.cursor
	o.cursor = (o.cursor + 1) % o.lines
	mask = probe.LineSet(0).Add(l)
	return full.Intersect(mask), mask
}

// applyNoise injects false presences and absences per line.
func (o *Oracle) applyNoise(set probe.LineSet) probe.LineSet {
	return applyNoise(&o.cfg, o.noise, o.lines, set)
}

// applyNoise is shared by the GIFT-64 and GIFT-128 oracles. The line
// set is the victim's access pattern — secret-derived — so the
// membership branch below is a (simulation-side) secret-dependent
// branch the leakage pass keeps on the books.
//
//grinch:secret set return
func applyNoise(cfg *Config, noise *rng.Source, lines int, set probe.LineSet) probe.LineSet {
	if cfg.FalsePresence == 0 && cfg.FalseAbsence == 0 {
		return set
	}
	out := set
	for l := 0; l < lines; l++ {
		if set.Contains(l) {
			if cfg.FalseAbsence > 0 && noise.Float64() < cfg.FalseAbsence {
				out &^= 1 << l
			}
		} else {
			if cfg.FalsePresence > 0 && noise.Float64() < cfg.FalsePresence {
				out = out.Add(l)
			}
		}
	}
	return out
}

// compile-time interface check
var _ probe.Channel = (*Oracle)(nil)
