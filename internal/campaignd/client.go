package campaignd

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"grinch/internal/campaign"
	"grinch/internal/obs/metrics"
)

// ErrLeaseGone reports that the server revoked the lease a call
// carried (expiry + re-issue): the worker must abandon the shard and
// lease a fresh one.
var ErrLeaseGone = errors.New("campaignd: lease revoked")

// Client is a thin JSON/HTTP client for the coordinator API, used by
// the shard worker, the CLIs, and the tests.
type Client struct {
	// Base is the server's base URL, e.g. "http://127.0.0.1:8844".
	Base string
	// HTTP overrides the transport; nil uses http.DefaultClient.
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// post round-trips one JSON request; out may be nil.
func (c *Client) post(path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Post(c.url(path), "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	return c.finish(resp, out)
}

// get round-trips one GET.
func (c *Client) get(path string, out any) error {
	resp, err := c.httpClient().Get(c.url(path))
	if err != nil {
		return err
	}
	return c.finish(resp, out)
}

func (c *Client) url(path string) string {
	return strings.TrimSuffix(c.Base, "/") + path
}

func (c *Client) finish(resp *http.Response, out any) error {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode == http.StatusGone {
		return ErrLeaseGone
	}
	if resp.StatusCode/100 != 2 {
		var e errorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("campaignd: server: %s", e.Error)
		}
		return fmt.Errorf("campaignd: server returned %s", resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Submit registers a campaign.
func (c *Client) Submit(req SubmitRequest) (SubmitResponse, error) {
	var resp SubmitResponse
	err := c.post(PathCampaigns, req, &resp)
	return resp, err
}

// Lease asks for a shard; a nil Lease with AllDone reports a drained
// coordinator.
func (c *Client) Lease(worker string) (LeaseResponse, error) {
	var resp LeaseResponse
	err := c.post(PathLease, LeaseRequest{Worker: worker}, &resp)
	return resp, err
}

// Report streams a result batch for a leased shard.
func (c *Client) Report(leaseID string, results []campaign.Result) error {
	return c.ReportDelta(leaseID, results, "", nil)
}

// ReportDelta is Report with a piggybacked worker telemetry delta
// (ignored server-side when worker is empty or d is nil).
func (c *Client) ReportDelta(leaseID string, results []campaign.Result, worker string, d *metrics.Delta) error {
	return c.post(PathResults, ReportRequest{Lease: leaseID, Results: results, Worker: worker, Metrics: d}, nil)
}

// Heartbeat extends a lease.
func (c *Client) Heartbeat(leaseID string) error {
	return c.HeartbeatDelta(leaseID, "", nil)
}

// HeartbeatDelta is Heartbeat with a piggybacked telemetry delta.
func (c *Client) HeartbeatDelta(leaseID, worker string, d *metrics.Delta) error {
	return c.post(PathHeartbeat, HeartbeatRequest{Lease: leaseID, Worker: worker, Metrics: d}, nil)
}

// Complete marks a leased shard fully executed.
func (c *Client) Complete(leaseID string) error {
	return c.CompleteDelta(leaseID, "", nil)
}

// CompleteDelta is Complete with a piggybacked telemetry delta.
func (c *Client) CompleteDelta(leaseID, worker string, d *metrics.Delta) error {
	return c.post(PathComplete, CompleteRequest{Lease: leaseID, Worker: worker, Metrics: d}, nil)
}

// FleetStatus fetches the machine-readable coordinator status.
func (c *Client) FleetStatus() (FleetStatus, error) {
	var out FleetStatus
	err := c.get(PathStatusJSON, &out)
	return out, err
}

// Statuses lists every campaign.
func (c *Client) Statuses() ([]CampaignStatus, error) {
	var out []CampaignStatus
	err := c.get(PathCampaigns, &out)
	return out, err
}

// Status fetches one campaign with shard detail.
func (c *Client) Status(id string) (CampaignStatus, error) {
	var out CampaignStatus
	err := c.get(PathCampaigns+"/"+id, &out)
	return out, err
}

// Output fetches a merged campaign's canonical JSONL bytes.
func (c *Client) Output(id string) ([]byte, error) {
	resp, err := c.httpClient().Get(c.url(PathCampaigns + "/" + id + "/output"))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		var e errorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("campaignd: server: %s", e.Error)
		}
		return nil, fmt.Errorf("campaignd: server returned %s", resp.Status)
	}
	return data, nil
}
