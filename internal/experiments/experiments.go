// Package experiments regenerates every table and figure of the GRINCH
// paper's evaluation (§IV):
//
//   - Fig3: encryptions required to break the first GIFT round vs. the
//     cache-probing round, with and without a flush.
//   - Table1: the same effort across cache line sizes of 1/2/4/8 words
//     and probing rounds 1..5, with the paper's 1M-encryption drop-out.
//   - Table2: the earliest successfully probed round on the single-SoC
//     and MPSoC platforms at 10/25/50 MHz.
//   - FullRecovery: the headline "full 128-bit key in fewer than 400
//     encryptions" run.
//   - Countermeasures: both §IV-C protections demonstrated.
//
// Each experiment is deterministic given Options.Seed.
package experiments

import (
	"errors"
	"fmt"

	"grinch/internal/bitutil"
	"grinch/internal/core"
	"grinch/internal/countermeasure"
	"grinch/internal/gift"
	"grinch/internal/oracle"
	"grinch/internal/rng"
	"grinch/internal/stats"
)

// Options control experiment scale.
type Options struct {
	// Trials per cell; each trial uses a fresh random key. Default 3.
	Trials int
	// Budget is the per-attack encryption cap. Cells that exceed it
	// are reported as dropped out, mirroring the paper's ">1M" entries.
	// Default 1,000,000.
	Budget uint64
	// Seed makes the whole run reproducible.
	Seed uint64
	// Workers bounds the campaign worker pool the swept experiments
	// (Fig3, Table1, Table2, FullRecovery) run on; 0 means GOMAXPROCS.
	// Results are identical for every value — each grid cell's RNG is
	// derived from (Seed, job index), never from execution order.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Trials == 0 {
		o.Trials = 3
	}
	if o.Budget == 0 {
		o.Budget = 1_000_000
	}
	return o
}

// Cell is one experiment measurement over Options.Trials trials.
type Cell struct {
	// Median encryptions over the trials that finished.
	Median float64
	// DroppedOut is set when any trial blew the budget (the paper
	// reports such cells as ">1M").
	DroppedOut bool
	// Trials holds the raw per-trial encryption counts (budget value
	// for dropped trials).
	Trials []uint64
}

// Summary summarizes the completed trials.
func (c Cell) Summary() stats.Summary { return stats.SummarizeUint64(c.Trials) }

// String renders the cell the way the paper's tables do.
func (c Cell) String() string {
	if c.DroppedOut {
		return ">" + humanCount(float64(budgetOf(c)))
	}
	return humanCount(c.Median)
}

func budgetOf(c Cell) uint64 {
	var max uint64
	for _, t := range c.Trials {
		if t > max {
			max = t
		}
	}
	return max
}

func humanCount(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.0fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// Fig3Row is one x-axis position of paper Fig. 3.
type Fig3Row struct {
	ProbeRound   int
	WithFlush    Cell
	WithoutFlush Cell
}

// Fig3 regenerates paper Fig. 3: first-round attack effort vs. probing
// round, with and without flush, at the paper's default 1-word line.
// The grid runs as a campaign on opt.Workers workers.
func Fig3(opt Options, probeRounds []int) []Fig3Row {
	opt = opt.withDefaults()
	if len(probeRounds) == 0 {
		probeRounds = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	}
	results := runCampaign(Fig3Spec(opt, probeRounds), opt.Workers)
	return Fig3FromResults(opt, probeRounds, results)
}

// Table1Row is one line-size row of paper Table I.
type Table1Row struct {
	LineWords int
	// Cells indexed by probing round, aligned with the ProbeRounds
	// passed to Table1.
	Cells []Cell
}

// Table1 regenerates paper Table I: first-round attack effort across
// cache line sizes and probing rounds (flush enabled, as in the
// paper's best case). The grid runs as a campaign on opt.Workers
// workers.
func Table1(opt Options, lineWords, probeRounds []int) []Table1Row {
	opt = opt.withDefaults()
	if len(lineWords) == 0 {
		lineWords = []int{1, 2, 4, 8}
	}
	if len(probeRounds) == 0 {
		probeRounds = []int{1, 2, 3, 4, 5}
	}
	results := runCampaign(Table1Spec(opt, lineWords, probeRounds), opt.Workers)
	return Table1FromResults(opt, lineWords, probeRounds, results)
}

// Table2Row is one platform row of paper Table II.
type Table2Row struct {
	Platform string
	// EarliestRound maps clock MHz to the first successfully probed
	// round.
	EarliestRound map[uint64]int
}

// Table2 regenerates paper Table II by running the full platform
// simulations as a campaign on opt.Workers workers, opt.Trials fresh
// keys per cell.
func Table2(opt Options, freqs []uint64) []Table2Row {
	opt = opt.withDefaults()
	if len(freqs) == 0 {
		freqs = []uint64{10, 25, 50}
	}
	results := runCampaign(Table2Spec(opt, freqs), opt.Workers)
	return Table2FromResults(freqs, results)
}

// RecoveryResult is the headline full-key experiment.
type RecoveryResult struct {
	Encryptions stats.Summary
	AllCorrect  bool
	Failures    int
}

// FullRecovery measures complete 128-bit key recovery under the paper's
// best probing conditions (probe round 1, flush, 1-word lines), one
// campaign job per trial.
func FullRecovery(opt Options) RecoveryResult {
	opt = opt.withDefaults()
	return RecoveryFromResults(runCampaign(RecoverySpec(opt), opt.Workers))
}

// CounterResult reports the countermeasure demonstrations.
type CounterResult struct {
	// ReshapedRejected: with the reshaped single-line table the attack
	// cannot even be constructed.
	ReshapedRejected bool
	// WhitenedRoundKeysRecovered: the cache channel still leaks the
	// per-round sub-keys…
	WhitenedRoundKeysRecovered bool
	// WhitenedKeyRecoveryFailed: …but the master key cannot be
	// reassembled.
	WhitenedKeyRecoveryFailed bool
	Encryptions               uint64
}

// Countermeasures runs the §IV-C demonstrations.
func Countermeasures(opt Options) CounterResult {
	opt = opt.withDefaults()
	r := rng.New(opt.Seed ^ 0xcafe)
	key := bitutil.Word128{Lo: r.Uint64(), Hi: r.Uint64()}
	var res CounterResult

	// Countermeasure 1: reshaped table in one cache line.
	single, err := oracle.New(key, oracle.Config{ProbeRound: 1, Flush: true, LineWords: 16})
	if err == nil {
		_, err = core.NewAttacker(single, core.Config{})
		res.ReshapedRejected = err != nil
	}

	// Countermeasure 2: whitened key schedule.
	vic := countermeasure.NewWhitenedCipher64(key)
	ch, err := oracle.NewFromTracer(vic, oracle.Config{ProbeRound: 1, Flush: true, LineWords: 1, Seed: r.Uint64()})
	if err != nil {
		panic(err)
	}
	a, err := core.NewAttacker(ch, core.Config{Seed: r.Uint64(), TotalBudget: opt.Budget})
	if err != nil {
		panic(err)
	}
	out, err := a.RecoverKey()
	res.Encryptions = ch.Encryptions()
	if err == nil {
		want := vic.RoundKeys()
		recovered := true
		for t := 0; t < 4; t++ {
			if out.RoundKeys[t].U != want[t].U || out.RoundKeys[t].V != want[t].V {
				recovered = false
			}
		}
		res.WhitenedRoundKeysRecovered = recovered
		pt := r.Uint64()
		res.WhitenedKeyRecoveryFailed = out.Key != key && !core.Verify(out.Key, pt, vic.EncryptBlock(pt))
	} else if errors.Is(err, core.ErrBudgetExceeded) || errors.Is(err, core.ErrNoConvergence) {
		// The attack failing outright also demonstrates the defense.
		res.WhitenedKeyRecoveryFailed = true
	}
	return res
}

// PaperFig3WithFlush holds the approximate with-flush series read off
// paper Fig. 3 / Table I row 1 for side-by-side reporting.
var PaperFig3WithFlush = map[int]float64{
	1: 96, 2: 312, 3: 840, 4: 2448, 5: 5864,
}

// PaperTable1 holds the published Table I values (0 = ">1M" drop-out).
var PaperTable1 = map[int][]float64{
	1: {96, 312, 840, 2448, 5864},
	2: {136, 1112, 11440, 188536, 0},
	4: {136, 123848, 0, 0, 0},
	8: {113000, 0, 0, 0, 0},
}

// PaperTable2 holds the published Table II values.
var PaperTable2 = map[string]map[uint64]int{
	"Single-processing SoC": {10: 2, 25: 4, 50: 8},
	"Multi-processing SoC":  {10: 1, 25: 1, 50: 1},
}

// sanity: key schedule invariant used across the package.
var _ = gift.Rounds64
