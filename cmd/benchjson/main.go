// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document, so benchmark baselines can be
// committed (BENCH_baseline.json, written by `make bench-json`) and
// diffed across changes without scraping text.
//
// Usage:
//
//	go test -bench . -run XXX ./... | benchjson -o BENCH_baseline.json
//	go test -bench Table1 -benchtime 3x -run XXX . | benchjson
//
// The parser understands the standard testing output: `goos:`,
// `goarch:`, `cpu:` and `pkg:` headers, and benchmark result lines of
// the form
//
//	BenchmarkName-8   100   12345 ns/op   678.0 encryptions/op
//
// including custom ReportMetric units. Every metric is kept as a
// name→value map per benchmark, with the GOMAXPROCS suffix split off.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name    string             `json:"name"`
	Pkg     string             `json:"pkg,omitempty"`
	Procs   int                `json:"procs,omitempty"`
	Runs    int                `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the emitted JSON document.
type Doc struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "-", "output path (\"-\" for stdout)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "benchjson: reads `go test -bench` output on stdin; unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}

	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks → %s\n", len(doc.Benchmarks), *out)
}

// parse scans `go test -bench` text and collects headers and result
// lines. Unrecognized lines (PASS, ok, test logs) are skipped.
func parse(r io.Reader) (Doc, error) {
	doc := Doc{GoVersion: runtime.Version()}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseResult(line)
			if !ok {
				continue
			}
			b.Pkg = pkg
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	return doc, sc.Err()
}

// parseResult parses one `BenchmarkName-P  N  v1 u1  v2 u2 ...` line.
func parseResult(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Metrics: map[string]float64{}}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	runs, err := strconv.Atoi(fields[1])
	if err != nil {
		return Benchmark{}, false
	}
	b.Runs = runs
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
