package soc

import (
	"grinch/internal/bitutil"
	"grinch/internal/bus"
	"grinch/internal/cache"
	"grinch/internal/gift"
	"grinch/internal/obs/metrics"
	"grinch/internal/probe"
	"grinch/internal/rtos"
	"grinch/internal/sim"
	"grinch/internal/victim"
)

// SingleSoC is the paper's first platform: one processor, a shared L1
// behind a bus, and an RTOS scheduler multiplexing the victim and the
// attacker on the core. Each RunSession simulates one attacker-triggered
// encryption with interleaved Flush+Reload probing.
type SingleSoC struct {
	params   Params
	cipher   *gift.Cipher64
	table    probe.TableLayout
	sessions uint64
	meter    *probe.Meter
}

// NewSingleSoC builds the platform around a victim key.
func NewSingleSoC(key bitutil.Word128, params Params) *SingleSoC {
	return &SingleSoC{
		params: params,
		cipher: gift.NewCipher64FromWord(key),
		table:  probe.TableLayout{Base: params.TableBase, EntryBytes: 1, Entries: 16},
	}
}

// Table returns the victim's S-box table layout.
func (s *SingleSoC) Table() probe.TableLayout { return s.table }

// SetMetrics points the per-session probing primitives at a metrics
// registry (nil disables). The meter survives across sessions even
// though each session builds a throwaway prober over a fresh cache.
func (s *SingleSoC) SetMetrics(r *metrics.Registry) {
	s.meter = probe.NewMeter(r, s.params.Primitive.String())
}

// Sessions returns how many victim encryptions the platform has run.
func (s *SingleSoC) Sessions() uint64 { return s.sessions }

// rtosExecutor charges victim/attacker work to an RTOS task, with
// memory accesses travelling over the shared bus into the shared cache.
type rtosExecutor struct {
	task      *rtos.Task
	bus       *bus.Bus
	cache     *cache.Cache
	busCycles uint64
}

func (e *rtosExecutor) Exec(cycles uint64) { e.task.Exec(cycles) }

func (e *rtosExecutor) Access(addr uint64) uint64 {
	res := e.cache.Access(addr)
	cycles := e.busCycles + res.Latency
	e.task.Exec(cycles)
	return cycles
}

// RunSession simulates one encryption of pt: the attacker flushes the
// table, hands the plaintext to the victim, and reloads at every
// scheduling opportunity until the encryption completes, recording one
// probe window per opportunity. On a shared core those opportunities
// are quantum-spaced, which is exactly why later rounds dominate the
// observations at higher clock rates (paper Table II).
func (s *SingleSoC) RunSession(pt uint64) Session {
	return s.runSession(pt, gift.Rounds64)
}

// RunSessionUntil is RunSession with the attacker standing down once its
// windows cover probeUntilRound; the victim's remaining rounds are
// fast-forwarded.
func (s *SingleSoC) RunSessionUntil(pt uint64, probeUntilRound int) Session {
	return s.runSession(pt, probeUntilRound)
}

func (s *SingleSoC) runSession(pt uint64, probeUntilRound int) Session {
	s.sessions++
	k := sim.NewKernel()
	clock := sim.ClockMHz(s.params.ClockMHz)
	cch := cache.MustNew(cache.PaperConfig(s.params.CacheLineBytes))
	shared := bus.New(k, clock)
	sched := rtos.New(k, clock, rtos.Config{
		Quantum:         s.params.Quantum,
		CtxSwitchCycles: s.params.CtxSwitchCycles,
	})
	vic := victim.New(s.cipher, s.table, s.params.Timing)
	ptq := sim.NewQueue[uint64](k)

	var sess Session
	done := false
	standDown := false

	// The attacker is spawned first so its first prepare (flush or
	// prime) precedes the victim's first lookup.
	sched.Spawn("attacker", func(t *rtos.Task) {
		ex := &rtosExecutor{task: t, bus: shared, cache: cch, busCycles: s.params.BusCyclesPerAccess}
		pr := s.newProber(cch)

		prepareCharged(ex, pr)
		first := roundOrStart(vic)
		ptq.Send(pt)

		for {
			t.YieldSlice()
			last := roundOrEnd(vic, done)
			set := observeCharged(ex, pr)
			sess.Windows = append(sess.Windows, ProbeWindow{
				FirstRound: first,
				LastRound:  last,
				Set:        set,
				At:         t.Now(),
			})
			if done || last > probeUntilRound {
				standDown = true
				break
			}
			prepareCharged(ex, pr)
			first = roundOrStart(vic)
		}
	})

	sched.Spawn("victim", func(t *rtos.Task) {
		ex := &rtosExecutor{task: t, bus: shared, cache: cch, busCycles: s.params.BusCyclesPerAccess}
		p := rtos.Recv(t, ptq)
		sess.Ciphertext = vic.Encrypt(&cutoverExecutor{
			slow: ex, fast: &fastExecutor{cache: cch}, standDown: &standDown,
		}, p)
		done = true
	})

	k.Run()
	sess.CacheStats = cch.Stats()
	return sess
}

// EarliestProbeRound reports the round number the attacker's first
// reload lands in — the paper's Table II metric.
func (s *SingleSoC) EarliestProbeRound() int {
	sess := s.RunSession(0x0123456789abcdef)
	if len(sess.Windows) == 0 {
		return 0
	}
	return sess.Windows[0].LastRound
}

// prober abstracts the attacker's probing primitive on a platform:
// Prepare resets the observation window (flush, or prime), Observe
// reads it out (reload, or probe). Both return the cache cycles spent
// plus the number of memory operations (for bus accounting).
type prober interface {
	Prepare() (cycles, accesses uint64)
	Observe() (set probe.LineSet, cycles, accesses uint64)
}

// frProber adapts Flush+Reload.
type frProber struct{ fr *probe.FlushReload }

func (p frProber) Prepare() (uint64, uint64) {
	lines := uint64(p.fr.Table.LinesIn(p.fr.Cache.Config().LineBytes))
	return p.fr.Flush(), lines
}

func (p frProber) Observe() (probe.LineSet, uint64, uint64) {
	lines := uint64(p.fr.Table.LinesIn(p.fr.Cache.Config().LineBytes))
	set, cycles := p.fr.Reload()
	return set, cycles, lines
}

// ppProber adapts Prime+Probe (the probe re-establishes the prime).
type ppProber struct {
	pp     *probe.PrimeProbe
	primed bool
}

func (p *ppProber) ops() uint64 {
	cfg := p.pp.Cache.Config()
	return uint64(p.pp.Table.LinesIn(cfg.LineBytes) * cfg.Ways)
}

func (p *ppProber) Prepare() (uint64, uint64) {
	if p.primed {
		// Probe already re-touched every attacker line.
		return 0, 0
	}
	p.primed = true
	return p.pp.Prime(), p.ops()
}

func (p *ppProber) Observe() (probe.LineSet, uint64, uint64) {
	set, cycles := p.pp.Probe()
	return set, cycles, p.ops()
}

// newProber builds the configured probing primitive over the platform
// cache.
func (s *SingleSoC) newProber(cch *cache.Cache) prober {
	if s.params.Primitive == PrimitivePrimeProbe {
		return &ppProber{pp: &probe.PrimeProbe{
			Cache:        cch,
			Table:        s.table,
			EvictionBase: s.params.EvictionBase,
			Meter:        s.meter,
		}}
	}
	return frProber{fr: &probe.FlushReload{Cache: cch, Table: s.table, Meter: s.meter}}
}

// prepareCharged runs Prepare, charging cache and bus time.
func prepareCharged(ex *rtosExecutor, pr prober) {
	cycles, accesses := pr.Prepare()
	ex.Exec(cycles + accesses*ex.busCycles)
}

// observeCharged runs Observe, charging cache and bus time.
func observeCharged(ex *rtosExecutor, pr prober) probe.LineSet {
	set, cycles, accesses := pr.Observe()
	ex.Exec(cycles + accesses*ex.busCycles)
	return set
}

// roundOrStart labels a window's first round: an idle victim means the
// window begins at round 1.
func roundOrStart(v *victim.Victim) int {
	if r := v.CurrentRound(); r > 0 {
		return r
	}
	return 1
}

// roundOrEnd labels a window's last round: a finished victim means the
// window extends to the final round.
func roundOrEnd(v *victim.Victim, done bool) int {
	if r := v.CurrentRound(); r > 0 {
		return r
	}
	if done {
		return gift.Rounds64
	}
	return 1
}
