package core

import (
	"errors"
	"testing"

	"grinch/internal/bitutil"
	"grinch/internal/gift"
	"grinch/internal/obs"
	"grinch/internal/probe"
)

// transientErr is a minimal retryable channel failure (the duck-typed
// contract faults.TransientError satisfies).
type transientErr struct{}

func (transientErr) Error() string   { return "transient probe failure" }
func (transientErr) Transient() bool { return true }

// flakyChannel wraps a channel and fails every failEvery-th collection
// with a transient error (failEvery == 1 fails always). The victim
// encryption still happens on failure, matching the fault injector's
// transient semantics.
type flakyChannel struct {
	ch        probe.Channel
	failEvery uint64
	calls     uint64
}

func (f *flakyChannel) Lines() int          { return f.ch.Lines() }
func (f *flakyChannel) Encryptions() uint64 { return f.ch.Encryptions() }
func (f *flakyChannel) Collect(pt uint64, r int) probe.LineSet {
	s, err := f.CollectErr(pt, r)
	if err != nil {
		return 0
	}
	return s
}
func (f *flakyChannel) CollectErr(pt uint64, r int) (probe.LineSet, error) {
	f.calls++
	s := f.ch.Collect(pt, r)
	if f.failEvery > 0 && f.calls%f.failEvery == 0 {
		return 0, transientErr{}
	}
	return s, nil
}

// degradeChannel wraps a channel and replaces every k-th observation
// with the given set (empty models a dropped probe window, full an
// all-lines thrash).
type degradeChannel struct {
	ch  probe.Channel
	k   uint64
	set probe.LineSet
}

func (d *degradeChannel) Lines() int          { return d.ch.Lines() }
func (d *degradeChannel) Encryptions() uint64 { return d.ch.Encryptions() }
func (d *degradeChannel) Collect(pt uint64, r int) probe.LineSet {
	s := d.ch.Collect(pt, r)
	if d.ch.Encryptions()%d.k == 0 {
		return d.set
	}
	return s
}

// TestRetryBoundedAttempts pins the retry cap: an always-failing
// channel is retried exactly MaxAttempts times per observation and the
// target then aborts with the channel error instead of spinning.
func TestRetryBoundedAttempts(t *testing.T) {
	key := bitutil.Word128{Lo: 0x1111222233334444, Hi: 0x5555666677778888}
	fl := &flakyChannel{ch: cleanChannel(t, key, 1), failEvery: 1}
	var buf obs.Buffer
	a := newAttacker(t, fl, Config{Seed: 1, Retry: RetryPolicy{MaxAttempts: 3, BackoffPS: 100}, Tracer: &buf})

	o := a.AttackTarget(NewTarget64(1, 0), nil)
	if o.Converged || o.ChannelErr == nil {
		t.Fatalf("outcome %+v: want channel failure", o)
	}
	if o.Retries != 3 {
		t.Fatalf("retried %d times, want exactly MaxAttempts = 3", o.Retries)
	}
	if fl.calls != 4 {
		t.Fatalf("channel saw %d collections, want 1 + 3 retries", fl.calls)
	}
	// Backoff is exponential in sim-time: 100, 200, 400 ps.
	if got := a.SimPS(); got != 700 {
		t.Fatalf("accrued backoff %d ps, want 700", got)
	}
	var retry []obs.Event
	for _, e := range buf.Events {
		if e.Kind == obs.KindRetry {
			retry = append(retry, e)
		}
	}
	if len(retry) != 3 || retry[0].Attempt != 1 || retry[2].Attempt != 3 || retry[2].SimPS != 400 {
		t.Fatalf("retry events %+v", retry)
	}
}

// TestRetryRecoversKey exercises the happy retry path: a channel that
// fails one collection in five still yields full key recovery under a
// small retry budget.
func TestRetryRecoversKey(t *testing.T) {
	key := bitutil.Word128{Lo: 0x0123456789abcdef, Hi: 0xfedcba9876543210}
	fl := &flakyChannel{ch: cleanChannel(t, key, 1), failEvery: 5}
	a := newAttacker(t, fl, Config{Seed: 1, Retry: RetryPolicy{MaxAttempts: 2}})
	res, err := a.RecoverKey()
	if err != nil {
		t.Fatal(err)
	}
	if res.Key != key {
		t.Fatalf("recovered wrong key under transient failures")
	}
}

// TestRetryDisabledFailsFast: with the zero policy the first transient
// failure aborts, surfacing the error through the round attack.
func TestRetryDisabledFailsFast(t *testing.T) {
	key := bitutil.Word128{Lo: 1, Hi: 2}
	fl := &flakyChannel{ch: cleanChannel(t, key, 1), failEvery: 1}
	a := newAttacker(t, fl, Config{Seed: 1})
	_, err := a.AttackRound(1, nil, nil)
	if err == nil || !isTransient(err) {
		t.Fatalf("err = %v, want wrapped transient channel failure", err)
	}
	if fl.calls != 1 {
		t.Fatalf("channel saw %d collections, want fail-fast 1", fl.calls)
	}
}

// TestQuarantineSurvivesDroppedWindows: periodic empty observations
// poison a strict intersection (one empty set eliminates everything);
// quarantine discards them and recovery proceeds.
func TestQuarantineSurvivesDroppedWindows(t *testing.T) {
	key := bitutil.Word128{Lo: 0x0123456789abcdef, Hi: 0xfedcba9876543210}
	drop := func() probe.Channel {
		return &degradeChannel{ch: cleanChannel(t, key, 1), k: 7, set: 0}
	}

	a := newAttacker(t, drop(), Config{Seed: 1})
	if _, err := a.RecoverKey(); err == nil {
		t.Fatal("strict intersection survived dropped windows without quarantine")
	}

	a = newAttacker(t, drop(), Config{Seed: 1, Quarantine: true})
	res, err := a.RecoverKey()
	if err != nil {
		t.Fatal(err)
	}
	if res.Key != key {
		t.Fatal("recovered wrong key")
	}
}

// TestQuarantineSurvivesAllLinesThrash: all-lines observations carry no
// index information; quarantine keeps them from inflating presence
// ratios (and from stalling strict eliminations).
func TestQuarantineSurvivesAllLinesThrash(t *testing.T) {
	key := bitutil.Word128{Lo: 0xaaaabbbbccccdddd, Hi: 0x1111222233334444}
	full := probe.FullSet(16)
	ch := &degradeChannel{ch: cleanChannel(t, key, 1), k: 3, set: full}
	a := newAttacker(t, ch, Config{Seed: 2, Quarantine: true})
	res, err := a.RecoverKey()
	if err != nil {
		t.Fatal(err)
	}
	if res.Key != key {
		t.Fatal("recovered wrong key")
	}
}

// TestRestartAfterExhaustion: a destructive prefix (empty observations
// while the attacker has no statistics yet) exhausts a strict
// elimination immediately; a restart relaxes the threshold and the
// segment converges on the second pass.
func TestRestartAfterExhaustion(t *testing.T) {
	key := bitutil.Word128{Lo: 0x0123456789abcdef, Hi: 0xfedcba9876543210}
	// The first two observations come back empty, everything after is
	// clean.
	inner := cleanChannel(t, key, 1)
	ch := channelFunc{
		lines: inner.Lines,
		encs:  inner.Encryptions,
		collect: func(pt uint64, r int) probe.LineSet {
			s := inner.Collect(pt, r)
			if inner.Encryptions() <= 2 {
				return 0
			}
			return s
		},
	}

	var buf obs.Buffer
	a := newAttacker(t, ch, Config{Seed: 3, MaxRestarts: 2, Tracer: &buf})
	o := a.AttackTarget(NewTarget64(1, 0), nil)
	if !o.Converged {
		t.Fatalf("outcome %+v: want convergence after restart", o)
	}
	if o.Restarts == 0 {
		t.Fatal("converged without restarting; the destructive prefix was not exercised")
	}
	found := false
	for _, e := range buf.Events {
		if e.Kind == obs.KindTargetRestarted {
			found = true
			if e.Threshold >= 1 || e.Threshold < 0.5 {
				t.Fatalf("restart event threshold %v outside (0.5, 1)", e.Threshold)
			}
		}
	}
	if !found {
		t.Fatal("no target_restarted event emitted")
	}

	// Without restarts the same channel exhausts terminally.
	inner2 := cleanChannel(t, key, 1)
	ch2 := channelFunc{
		lines: inner2.Lines,
		encs:  inner2.Encryptions,
		collect: func(pt uint64, r int) probe.LineSet {
			s := inner2.Collect(pt, r)
			if inner2.Encryptions() <= 2 {
				return 0
			}
			return s
		},
	}
	a2 := newAttacker(t, ch2, Config{Seed: 3})
	if o2 := a2.AttackTarget(NewTarget64(1, 0), nil); !o2.Exhausted || o2.Converged {
		t.Fatalf("outcome %+v: want terminal exhaustion without restarts", o2)
	}
}

// channelFunc adapts closures to probe.Channel for scripted tests.
type channelFunc struct {
	collect func(uint64, int) probe.LineSet
	lines   func() int
	encs    func() uint64
}

func (c channelFunc) Collect(pt uint64, r int) probe.LineSet { return c.collect(pt, r) }
func (c channelFunc) Lines() int                             { return c.lines() }
func (c channelFunc) Encryptions() uint64                    { return c.encs() }

// TestSimDeadlineAborts: retry backoff advances the simulated clock and
// the deadline turns a retry storm into a typed abort.
func TestSimDeadlineAborts(t *testing.T) {
	key := bitutil.Word128{Lo: 3, Hi: 4}
	fl := &flakyChannel{ch: cleanChannel(t, key, 1), failEvery: 1}
	a := newAttacker(t, fl, Config{
		Seed:          1,
		Retry:         RetryPolicy{MaxAttempts: 1 << 20, BackoffPS: 1000},
		SimDeadlinePS: 10_000,
	})
	o := a.AttackTarget(NewTarget64(1, 0), nil)
	if !errors.Is(o.ChannelErr, ErrSimDeadline) {
		t.Fatalf("ChannelErr = %v, want ErrSimDeadline", o.ChannelErr)
	}
	if a.SimPS() < 10_000 {
		t.Fatalf("aborted at %d ps, before the deadline", a.SimPS())
	}
	// 1000·(1+2+4+8) = 15000 ≥ 10000 after four retries: the storm is
	// bounded well below the retry cap.
	if fl.calls > 8 {
		t.Fatalf("channel saw %d collections; deadline did not bound the storm", fl.calls)
	}
}

// TestRecoverKeyGraceful covers the degradation ladder: full success
// returns a nil partial; budget exhaustion and channel failure return
// structured partials instead of bare errors.
func TestRecoverKeyGraceful(t *testing.T) {
	key := bitutil.Word128{Lo: 0x0123456789abcdef, Hi: 0xfedcba9876543210}

	a := newAttacker(t, cleanChannel(t, key, 1), Config{Seed: 1})
	res, partial := a.RecoverKeyGraceful()
	if partial != nil {
		t.Fatalf("clean run degraded: %+v", partial)
	}
	if res.Key != key {
		t.Fatal("recovered wrong key")
	}

	a = newAttacker(t, cleanChannel(t, key, 1), Config{Seed: 1, TotalBudget: 40})
	_, partial = a.RecoverKeyGraceful()
	if partial == nil {
		t.Fatal("budget-starved run reported full success")
	}
	if partial.Reason != "budget-exceeded" {
		t.Fatalf("reason %q, want budget-exceeded", partial.Reason)
	}
	if len(partial.Segments) != gift.Segments64 {
		t.Fatalf("%d segment statuses, want %d (attempted + padded)", len(partial.Segments), gift.Segments64)
	}
	if partial.Converged() == 0 {
		t.Fatal("40 encryptions should converge at least one segment")
	}
	if partial.Converged() == gift.Segments64 {
		t.Fatal("partial claims every segment converged under a 40-encryption budget")
	}
	for g, s := range partial.Segments {
		if s.Segment != g || s.Round != 1 {
			t.Fatalf("segment status %d: %+v", g, s)
		}
		if s.Converged && s.Confidence <= 0 {
			t.Fatalf("converged segment %d has zero confidence", g)
		}
		if !s.Converged && s.Line != -1 {
			t.Fatalf("unconverged segment %d reports line %d", g, s.Line)
		}
	}

	fl := &flakyChannel{ch: cleanChannel(t, key, 1), failEvery: 1}
	a = newAttacker(t, fl, Config{Seed: 1, Retry: RetryPolicy{MaxAttempts: 2}})
	_, partial = a.RecoverKeyGraceful()
	if partial == nil || partial.Reason != "channel-transient" {
		t.Fatalf("partial %+v, want channel-transient", partial)
	}
	if partial.ResolvedRounds != 0 {
		t.Fatalf("resolved %d rounds over a dead channel", partial.ResolvedRounds)
	}
}

// TestRecoverKey128Graceful mirrors the graceful ladder for GIFT-128.
func TestRecoverKey128Graceful(t *testing.T) {
	key := bitutil.Word128{Lo: 0x0011223344556677, Hi: 0x8899aabbccddeeff}
	clean := func() Channel128 { return cleanChannel128(t, key, 1) }

	a, err := NewAttacker128(clean(), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, partial := a.RecoverKey128Graceful()
	if partial != nil || res.Key != key {
		t.Fatalf("clean GIFT-128 run degraded: %+v", partial)
	}

	a, err = NewAttacker128(clean(), Config{Seed: 1, TotalBudget: 40})
	if err != nil {
		t.Fatal(err)
	}
	_, partial = a.RecoverKey128Graceful()
	if partial == nil || partial.Reason != "budget-exceeded" || partial.Cipher != "GIFT-128" {
		t.Fatalf("partial %+v", partial)
	}
	if len(partial.Segments) != gift.Segments128 {
		t.Fatalf("%d segment statuses, want %d", len(partial.Segments), gift.Segments128)
	}
}
