package core

import (
	"errors"
	"testing"

	"grinch/internal/bitutil"
	"grinch/internal/gift"
	"grinch/internal/oracle"
	"grinch/internal/probe"
	"grinch/internal/rng"
)

func idealOracle(t *testing.T, key bitutil.Word128, cfg oracle.Config) *oracle.Oracle {
	t.Helper()
	o, err := oracle.New(key, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func cleanChannel(t *testing.T, key bitutil.Word128, lineWords int) *oracle.Oracle {
	return idealOracle(t, key, oracle.Config{
		ProbeRound: 1,
		Flush:      true,
		LineWords:  lineWords,
	})
}

func newAttacker(t *testing.T, ch probe.Channel, cfg Config) *Attacker {
	t.Helper()
	a, err := NewAttacker(ch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestRecoverKeyIdealConditions(t *testing.T) {
	// Headline experiment (paper abstract): full 128-bit recovery under
	// the best probing conditions in fewer than ~400 encryptions.
	key := bitutil.Word128{Lo: 0x0123456789abcdef, Hi: 0xfedcba9876543210}
	ch := cleanChannel(t, key, 1)
	a := newAttacker(t, ch, Config{Seed: 1})
	res, err := a.RecoverKey()
	if err != nil {
		t.Fatal(err)
	}
	if res.Key != key {
		t.Fatalf("recovered %016x%016x, want %016x%016x", res.Key.Hi, res.Key.Lo, key.Hi, key.Lo)
	}
	if res.RoundsAttacked != 4 {
		t.Fatalf("attacked %d rounds, want 4", res.RoundsAttacked)
	}
	t.Logf("full key recovered in %d encryptions", res.Encryptions)
	if res.Encryptions > 1000 {
		t.Fatalf("recovery took %d encryptions; paper reports < 400 under ideal conditions", res.Encryptions)
	}
}

func TestRecoverKeyManyRandomKeys(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 10; trial++ {
		key := bitutil.Word128{Lo: r.Uint64(), Hi: r.Uint64()}
		ch := cleanChannel(t, key, 1)
		a := newAttacker(t, ch, Config{Seed: uint64(trial)})
		res, err := a.RecoverKey()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Key != key {
			t.Fatalf("trial %d: wrong key recovered", trial)
		}
	}
}

func TestRecoverKeyVerify(t *testing.T) {
	key := bitutil.Word128{Lo: 0xdeadbeef12345678, Hi: 0x0badc0ffee000dd0}
	ch := cleanChannel(t, key, 1)
	a := newAttacker(t, ch, Config{Seed: 3})
	res, err := a.RecoverKey()
	if err != nil {
		t.Fatal(err)
	}
	pt := uint64(0x1122334455667788)
	ct := gift.NewCipher64FromWord(key).EncryptBlock(pt)
	if !Verify(res.Key, pt, ct) {
		t.Fatal("Verify rejected the recovered key")
	}
	if Verify(res.Key, pt, ct^1) {
		t.Fatal("Verify accepted a wrong ciphertext")
	}
}

func TestRecoverKeyWideLines(t *testing.T) {
	// Paper §III-D / Table I: wide cache lines hide the low index bits;
	// the attack must carry candidate hypotheses into the next round and
	// still recover the full key (using a fifth disambiguation pass).
	// 8-word lines leave only two observable lines, which makes
	// hypothesis discrimination statistically impractical — consistent
	// with the paper's >1M drop-outs — and is covered by
	// TestWideLine8WordImpractical instead.
	for _, lineWords := range []int{2, 4} {
		key := bitutil.Word128{Lo: 0xa5a5a5a55a5a5a5a, Hi: 0x123456789abcdef0}
		ch := cleanChannel(t, key, lineWords)
		a := newAttacker(t, ch, Config{Seed: 11})
		res, err := a.RecoverKey()
		if err != nil {
			t.Fatalf("lineWords=%d: %v", lineWords, err)
		}
		if res.Key != key {
			t.Fatalf("lineWords=%d: wrong key", lineWords)
		}
		if res.RoundsAttacked != 5 {
			t.Fatalf("lineWords=%d: %d round passes, want 5", lineWords, res.RoundsAttacked)
		}
		t.Logf("lineWords=%d: %d encryptions", lineWords, res.Encryptions)
	}
}

func TestWideLine8WordImpractical(t *testing.T) {
	// With 8-word lines only two table lines remain observable; both are
	// touched by noise in almost every encryption, so full-key recovery
	// blows through any practical budget (paper Table I reports >1M for
	// all but one cell of the 8-word row). The attack must fail cleanly
	// under a budget rather than return a wrong key.
	key := bitutil.Word128{Lo: 0x7777888899990000, Hi: 0x1111222233334444}
	ch := cleanChannel(t, key, 8)
	a := newAttacker(t, ch, Config{Seed: 13, TotalBudget: 50_000})
	res, err := a.RecoverKey()
	if err == nil && res.Key != key {
		t.Fatal("wide-line attack returned a wrong key instead of failing")
	}
	if err == nil {
		t.Logf("8-word recovery unexpectedly succeeded in %d encryptions", res.Encryptions)
	}
}

func TestRecoverKeyLaterProbeRoundCostsMore(t *testing.T) {
	key := bitutil.Word128{Lo: 0x1111222233334444, Hi: 0x5555666677778888}
	var efforts []uint64
	for _, pr := range []int{1, 2, 3} {
		ch := idealOracle(t, key, oracle.Config{ProbeRound: pr, Flush: true, LineWords: 1})
		a := newAttacker(t, ch, Config{Seed: 5})
		res, err := a.RecoverKey()
		if err != nil {
			t.Fatalf("probe round %d: %v", pr, err)
		}
		if res.Key != key {
			t.Fatalf("probe round %d: wrong key", pr)
		}
		efforts = append(efforts, res.Encryptions)
	}
	if !(efforts[0] < efforts[1] && efforts[1] < efforts[2]) {
		t.Fatalf("effort not increasing with probe round: %v", efforts)
	}
}

func TestFlushReducesEffort(t *testing.T) {
	key := bitutil.Word128{Lo: 0x0f0f0f0f0f0f0f0f, Hi: 0xf0f0f0f0f0f0f0f0}
	run := func(flush bool) uint64 {
		ch := idealOracle(t, key, oracle.Config{ProbeRound: 2, Flush: flush, LineWords: 1})
		a := newAttacker(t, ch, Config{Seed: 8})
		res, err := a.RecoverKey()
		if err != nil {
			t.Fatal(err)
		}
		if res.Key != key {
			t.Fatal("wrong key")
		}
		return res.Encryptions
	}
	withFlush, without := run(true), run(false)
	if withFlush >= without {
		t.Fatalf("flush (%d) should cost less than no flush (%d)", withFlush, without)
	}
}

func TestAttackFirstRoundOnly(t *testing.T) {
	// The Fig. 3 / Table I metric: recover the 32 first-round key bits.
	key := bitutil.Word128{Lo: 0xcafebabe87654321, Hi: 0x13579bdf02468ace}
	ch := cleanChannel(t, key, 1)
	a := newAttacker(t, ch, Config{Seed: 2})
	out, err := a.AttackRound(1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rk, ok := out.Unique()
	if !ok {
		t.Fatal("first-round attack left ambiguity at line width 1")
	}
	want := gift.ExpandKey64(key)[0]
	if rk.U != want.U || rk.V != want.V {
		t.Fatalf("recovered rk1 (U=%04x V=%04x), want (U=%04x V=%04x)", rk.U, rk.V, want.U, want.V)
	}
	t.Logf("first round: %d encryptions", out.Encryptions)
	// Paper Table I: 96 encryptions at probe round 1. Allow generous
	// slack; the shape matters, not the constant.
	if out.Encryptions > 400 {
		t.Fatalf("first-round attack took %d encryptions, expected ~100", out.Encryptions)
	}
}

func TestBudgetAborts(t *testing.T) {
	key := bitutil.Word128{Lo: 1, Hi: 2}
	// Saturated channel: probing very late makes elimination hopeless.
	ch := idealOracle(t, key, oracle.Config{ProbeRound: 20, Flush: false, LineWords: 1})
	a := newAttacker(t, ch, Config{Seed: 4, TotalBudget: 2000})
	_, err := a.RecoverKey()
	if err == nil {
		t.Fatal("expected failure on saturated channel")
	}
	if !errors.Is(err, ErrBudgetExceeded) && !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("unexpected error: %v", err)
	}
	if ch.Encryptions() > 2000+1<<17 {
		t.Fatalf("budget ignored: %d encryptions", ch.Encryptions())
	}
}

func TestNoisyChannelWithThreshold(t *testing.T) {
	// False absences break strict intersection; the threshold mode must
	// still recover the key.
	key := bitutil.Word128{Lo: 0x9999aaaabbbbcccc, Hi: 0xddddeeeeffff0000}
	ch := idealOracle(t, key, oracle.Config{
		ProbeRound:    1,
		Flush:         true,
		LineWords:     1,
		FalseAbsence:  0.05,
		FalsePresence: 0.05,
		Seed:          77,
	})
	a := newAttacker(t, ch, Config{Seed: 6, Threshold: 0.8, MinObservations: 24})
	res, err := a.RecoverKey()
	if err != nil {
		t.Fatal(err)
	}
	if res.Key != key {
		t.Fatal("wrong key under noise")
	}
	t.Logf("noisy channel: %d encryptions", res.Encryptions)
}

func TestNewAttackerRejectsSingleLine(t *testing.T) {
	key := bitutil.Word128{}
	ch := idealOracle(t, key, oracle.Config{ProbeRound: 1, Flush: true, LineWords: 16})
	if _, err := NewAttacker(ch, Config{}); err == nil {
		t.Fatal("single-line table accepted; it carries no information (countermeasure 1)")
	}
}

func TestAssembleKeyInverse(t *testing.T) {
	r := rng.New(31)
	for i := 0; i < 50; i++ {
		key := bitutil.Word128{Lo: r.Uint64(), Hi: r.Uint64()}
		rks := gift.ExpandKey64(key)
		var four [4]gift.RoundKey64
		copy(four[:], rks[:4])
		if AssembleKey(four) != key {
			t.Fatalf("AssembleKey failed for key %v", key)
		}
	}
}

func TestAttackRoundRequiresResolvedKeys(t *testing.T) {
	key := bitutil.Word128{Lo: 3, Hi: 4}
	ch := cleanChannel(t, key, 1)
	a := newAttacker(t, ch, Config{Seed: 1})
	if _, err := a.AttackRound(3, nil, nil); err == nil {
		t.Fatal("round 3 attack without round keys should fail")
	}
}

func TestCartesian(t *testing.T) {
	combos := cartesian([][]uint8{{1, 2}, {3}, {4, 5}})
	if len(combos) != 4 {
		t.Fatalf("got %d combos", len(combos))
	}
	want := [][]uint8{{1, 3, 4}, {1, 3, 5}, {2, 3, 4}, {2, 3, 5}}
	for i, c := range combos {
		for j := range c {
			if c[j] != want[i][j] {
				t.Fatalf("combos = %v", combos)
			}
		}
	}
	if got := cartesian(nil); len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("empty cartesian = %v", got)
	}
}
