package core

import (
	"errors"
	"testing"

	"grinch/internal/bitutil"
	"grinch/internal/gift"
	"grinch/internal/oracle"
	"grinch/internal/present"
	"grinch/internal/rng"
)

func TestNewAttacker128RejectsSingleLine(t *testing.T) {
	ch, err := oracle.New128(bitutil.Word128{}, oracle.Config{ProbeRound: 1, Flush: true, LineWords: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAttacker128(ch, Config{}); err == nil {
		t.Fatal("single-line channel accepted")
	}
}

func TestNewAttackerPRejectsSingleLine(t *testing.T) {
	var key [10]byte
	c := present.NewCipher80(key)
	ch, err := oracle.NewPresent(c, oracle.Config{ProbeRound: 1, Flush: true, LineWords: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAttackerP(ch, Config{}); err == nil {
		t.Fatal("single-line channel accepted")
	}
}

func TestAttackRound128RequiresResolvedKeys(t *testing.T) {
	ch := cleanChannel128(t, bitutil.Word128{Lo: 1}, 1)
	a := newAttacker128(t, ch, Config{Seed: 1})
	if _, err := a.AttackRound128(3, nil, nil); err == nil {
		t.Fatal("round 3 without round keys accepted")
	}
}

func TestAttackRoundPRequiresResolvedKeys(t *testing.T) {
	var key [10]byte
	c := present.NewCipher80(key)
	ch, _ := oracle.NewPresent(c, oracle.Config{ProbeRound: 1, Flush: true, LineWords: 1})
	a, err := NewAttackerP(ch, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.AttackRoundP(3, nil, nil); err == nil {
		t.Fatal("round 3 without round keys accepted")
	}
}

func TestBudgetAborts128(t *testing.T) {
	key := bitutil.Word128{Lo: 3, Hi: 4}
	ch, err := oracle.New128(key, oracle.Config{ProbeRound: 30, Flush: false, LineWords: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := newAttacker128(t, ch, Config{Seed: 2, TotalBudget: 1000})
	_, err = a.RecoverKey128()
	if err == nil {
		t.Fatal("saturated channel should fail")
	}
	if !errors.Is(err, ErrBudgetExceeded) && !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestBudgetAbortsPresent(t *testing.T) {
	var key [10]byte
	key[0] = 0x42
	c := present.NewCipher80(key)
	ch, _ := oracle.NewPresent(c, oracle.Config{ProbeRound: 25, Flush: false, LineWords: 1})
	a, err := NewAttackerP(ch, Config{Seed: 2, TotalBudget: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.RecoverKey80(); err == nil {
		t.Fatal("saturated channel should fail")
	}
}

func TestTargetSpecPPanicsOutOfRange(t *testing.T) {
	for _, fn := range []func(){
		func() { NewTargetP(0, 0) },
		func() { NewTargetP(32, 0) },
		func() { NewTargetP(1, 16) },
		func() { NewTarget128(0, 0) },
		func() { NewTarget128(1, 32) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestCraftPlaintextPanicsWithoutKeys(t *testing.T) {
	r := rng.New(1)
	for _, fn := range []func(){
		func() { NewTarget64(3, 0).CraftPlaintext(r, nil) },
		func() { NewTarget128(3, 0).CraftPlaintext(r, nil) },
		func() { NewTargetP(3, 0).CraftPlaintext(r, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestRoundOutcomeUniqueNegative(t *testing.T) {
	var out RoundOutcome
	out.Round = 1
	for g := range out.Cands {
		out.Cands[g] = []uint8{0, 1} // ambiguous
	}
	if _, ok := out.Unique(); ok {
		t.Fatal("ambiguous outcome reported unique")
	}

	var out128 RoundOutcome128
	out128.Round = 1
	for g := range out128.Cands {
		out128.Cands[g] = []uint8{2}
	}
	out128.Cands[7] = nil
	if _, ok := out128.Unique(); ok {
		t.Fatal("incomplete 128 outcome reported unique")
	}

	var outP RoundOutcomeP
	outP.Round = 1
	for g := range outP.Cands {
		outP.Cands[g] = []uint8{5}
	}
	if rk, ok := outP.Unique(); !ok || rk != 0x5555555555555555 {
		t.Fatalf("uniform PRESENT outcome: rk=%x ok=%v", rk, ok)
	}
}

func TestAttackTargetReportsFailureOnWrongHypothesis(t *testing.T) {
	// Feed a deliberately wrong round key for crafting round 2: the
	// pinning breaks, so with confirmation enabled the outcome must
	// report exhaustion or infeasibility rather than converge.
	key := bitutil.Word128{Lo: 0x0123456789abcdef, Hi: 0xfedcba9876543210}
	ch := cleanChannel(t, key, 1)
	a := newAttacker(t, ch, Config{Seed: 3})
	out1, err := a.AttackRound(1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rk, ok := out1.Unique()
	if !ok {
		t.Fatal("round 1 ambiguous at 1-word lines")
	}
	rk.U ^= 0xffff // corrupt every U bit
	spec := NewTarget64(2, 5)
	o := a.attackTarget(spec, []gift.RoundKey64{rk}, true)
	if o.Converged {
		t.Fatalf("corrupted round key converged to line %d", o.Line)
	}
	if !o.Exhausted && !o.Infeasible {
		t.Fatalf("expected exhaustion or infeasibility, got %+v", o)
	}
}
