package oracle

import (
	"grinch/internal/bitutil"
	"grinch/internal/gift"
	"grinch/internal/obs"
	"grinch/internal/probe"
	"grinch/internal/rng"
)

// Tracer128 produces per-round S-box input states for a GIFT-128
// victim. gift.Cipher128 implements it.
type Tracer128 interface {
	SBoxInputs(pt bitutil.Word128) []bitutil.Word128
}

// truncatedTracer128 is the fast path for victims that can stop the
// trace at the probe window's end.
type truncatedTracer128 interface {
	SBoxInputsN(pt bitutil.Word128, n int) []bitutil.Word128
}

// Oracle128 is the ideal probing channel against a GIFT-128 victim,
// with the same window semantics as Oracle. It implements
// core.Channel128.
type Oracle128 struct {
	cfg         Config
	tracer      Tracer128       //grinch:secret
	cipher      *gift.Cipher128 //grinch:secret
	noise       *rng.Source
	lines       int
	encryptions uint64
	events      obs.Tracer
}

// New128 builds an oracle for a GIFT-128 victim holding the given key.
//
//grinch:secret key
func New128(key bitutil.Word128, cfg Config) (*Oracle128, error) {
	c := gift.NewCipher128FromWord(key)
	o, err := New128FromTracer(c, cfg)
	if err != nil {
		return nil, err
	}
	o.cipher = c
	return o, nil
}

// New128FromTracer builds an oracle over any traced GIFT-128 victim.
//
//grinch:secret tr
func New128FromTracer(tr Tracer128, cfg Config) (*Oracle128, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Oracle128{
		cfg:    cfg,
		tracer: tr,
		noise:  rng.New(cfg.Seed),
		lines:  16 / cfg.LineWords,
	}, nil
}

// Lines returns the number of cache lines the S-box table spans.
func (o *Oracle128) Lines() int { return o.lines }

// Encryptions returns the victim's encryption count.
func (o *Oracle128) Encryptions() uint64 { return o.encryptions }

// Cipher exposes the victim cipher when built with New128.
func (o *Oracle128) Cipher() *gift.Cipher128 { return o.cipher }

// SetTracer attaches an event tracer (nil disables tracing).
func (o *Oracle128) SetTracer(t obs.Tracer) { o.events = t }

// Collect runs one victim encryption and returns the observed line set
// for an attack on targetRound.
func (o *Oracle128) Collect(pt bitutil.Word128, targetRound int) probe.LineSet {
	o.encryptions++
	if o.events != nil {
		o.events.Emit(obs.Event{Kind: obs.KindEncryptionStart, Enc: o.encryptions, Cipher: "GIFT-128", Round: targetRound})
		defer o.events.Emit(obs.Event{Kind: obs.KindEncryptionEnd, Enc: o.encryptions})
	}

	first := 1
	if o.cfg.Flush {
		first = targetRound + 1
	}
	last := targetRound + o.cfg.ProbeRound
	if last > gift.Rounds128 {
		last = gift.Rounds128
	}

	var states []bitutil.Word128
	if tt, ok := o.tracer.(truncatedTracer128); ok {
		states = tt.SBoxInputsN(pt, last)
	} else {
		states = o.tracer.SBoxInputs(pt)
	}
	var set probe.LineSet
	for r := first; r <= last; r++ {
		s := states[r-1]
		for i := uint(0); i < gift.Segments128; i++ {
			idx := int(s.Nibble(i))
			set = set.Add(idx / o.cfg.LineWords)
		}
	}
	return applyNoise(&o.cfg, o.noise, o.lines, set)
}
