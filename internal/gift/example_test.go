package gift_test

import (
	"fmt"

	"grinch/internal/gift"
)

// Encrypt and decrypt one GIFT-64 block with the official second test
// vector.
func ExampleNewCipher64() {
	key := [16]byte{0xfe, 0xdc, 0xba, 0x98, 0x76, 0x54, 0x32, 0x10,
		0xfe, 0xdc, 0xba, 0x98, 0x76, 0x54, 0x32, 0x10}
	c := gift.NewCipher64(key)
	ct := c.EncryptBlock(0xfedcba9876543210)
	fmt.Printf("%016x\n", ct)
	fmt.Printf("%016x\n", c.DecryptBlock(ct))
	// Output:
	// c1b71f66160ff587
	// fedcba9876543210
}

// Observe the S-box lookups a table-based implementation performs — the
// memory-access stream a shared cache leaks to GRINCH.
func ExampleCipher64_EncryptTraced() {
	var key [16]byte
	c := gift.NewCipher64(key)
	count := 0
	c.EncryptTraced(0, gift.ObserverFunc(func(round, segment int, index uint8) {
		count++
	}))
	fmt.Println(count, "table lookups per encryption")
	// Output:
	// 448 table lookups per encryption
}
