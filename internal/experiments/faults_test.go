package experiments

import (
	"bytes"
	"context"
	"testing"

	"grinch/internal/campaign"
	"grinch/internal/faults"
	"grinch/internal/obs"
)

// faultedRecoverySpec is a small full-recovery campaign with a
// structured-fault axis exercising every fault kind plus the retry
// policy — the integration surface of the robustness stack.
func faultedRecoverySpec() campaign.Spec {
	return campaign.Spec{
		Name:   "faulted-recovery",
		Kind:   KindRecovery,
		Seed:   2021,
		Trials: 2,
		Budget: 4000,
		FaultPlans: []faults.Plan{
			{Name: "mild", Faults: []faults.Fault{
				{Kind: faults.KindDrop, Probability: 0.05},
			}},
			{Name: "mixed", Seed: 3, Faults: []faults.Fault{
				{Kind: faults.KindDrop, Probability: 0.1},
				{Kind: faults.KindBurst, FalsePresence: 0.2, FalseAbsence: 0.1, Start: 50, Length: 20, Period: 200},
				{Kind: faults.KindMisalign, Offset: 1, Start: 300, Length: 5, Period: 500},
				{Kind: faults.KindTransient, Probability: 0.02},
			}},
		},
		Retry:      &campaign.RetrySpec{Attempts: 2, BackoffPS: 500},
		DeadlinePS: 0,
	}
}

// runFaulted executes the faulted campaign and returns the
// deterministic JSONL, CSV and trace bytes.
func runFaulted(t *testing.T, workers int) (jsonl, csvb, trace []byte) {
	t.Helper()
	var jb, cb, tb bytes.Buffer
	tw := obs.NewWriter(&tb)
	_, err := campaign.Run(context.Background(), faultedRecoverySpec(), Execute,
		campaign.Options{
			Workers: workers,
			Sinks:   []campaign.Sink{&campaign.JSONLSink{W: &jb}, &campaign.CSVSink{W: &cb}},
			Trace:   tw,
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return jb.Bytes(), cb.Bytes(), tb.Bytes()
}

// TestFaultCampaignByteReproducible extends the determinism contract to
// fault-injected campaigns: with a fixed seed, result sinks and the
// event trace are byte-identical at -workers=1 and -workers=8, because
// injection decisions are random-access in the encryption counter and
// never depend on scheduling.
func TestFaultCampaignByteReproducible(t *testing.T) {
	j1, c1, t1 := runFaulted(t, 1)
	j8, c8, t8 := runFaulted(t, 8)
	if !bytes.Equal(j1, j8) {
		t.Error("fault-injected JSONL differs between -workers=1 and -workers=8")
	}
	if !bytes.Equal(c1, c8) {
		t.Error("fault-injected CSV differs between -workers=1 and -workers=8")
	}
	if !bytes.Equal(t1, t8) {
		t.Error("fault-injected trace differs between -workers=1 and -workers=8")
	}
	// The campaign must actually have injected faults, or the test
	// proves nothing.
	events, err := obs.ReadAll(bytes.NewReader(t1))
	if err != nil {
		t.Fatal(err)
	}
	injected := 0
	for _, e := range events {
		if e.Kind == obs.KindFaultInjected {
			injected++
		}
	}
	if injected == 0 {
		t.Fatal("traced fault campaign recorded no fault_injected events")
	}
}

// TestBurstIntensityRobustnessCurve is the acceptance sweep: the same
// recovery attack under increasing burst intensity recovers the full
// key at low intensity and degrades to a structured partial result —
// not an executor error — at high intensity.
func TestBurstIntensityRobustnessCurve(t *testing.T) {
	spec := campaign.Spec{
		Name:   "burst-curve",
		Kind:   KindRecovery,
		Seed:   7,
		Trials: 2,
		Budget: 20_000,
		FaultPlans: []faults.Plan{
			{Name: "low", Faults: []faults.Fault{
				{Kind: faults.KindBurst, FalsePresence: 0.05},
			}},
			{Name: "high", Faults: []faults.Fault{
				{Kind: faults.KindBurst, FalsePresence: 0.3, FalseAbsence: 0.85},
			}},
		},
	}
	col := &campaign.Collector{}
	if _, err := campaign.Run(context.Background(), spec, Execute,
		campaign.Options{Workers: 4, Sinks: []campaign.Sink{col}}); err != nil {
		t.Fatal(err)
	}
	for _, r := range col.Results {
		if r.Failed {
			t.Fatalf("job %d errored instead of degrading: %s", r.Job, r.Err)
		}
		switch r.Point.Fault {
		case "low":
			if !r.Correct || r.DroppedOut || r.Partial {
				t.Errorf("low-intensity job %d did not fully recover: %+v", r.Job, r.Measurement)
			}
		case "high":
			if !r.Partial || !r.DroppedOut {
				t.Errorf("high-intensity job %d did not degrade to a partial result: %+v", r.Job, r.Measurement)
			}
			if r.Reason == "" {
				t.Errorf("high-intensity job %d has no failure reason", r.Job)
			}
		default:
			t.Fatalf("unexpected fault coordinate %q", r.Point.Fault)
		}
		if r.Faults == 0 {
			t.Errorf("job %d reports zero injected faults", r.Job)
		}
	}
}
