// Package probe defines the attacker's observation channel — the set of
// S-box table cache lines seen as touched after an encryption — and the
// classical probing primitives (Flush+Reload, Prime+Probe) that realize
// it against the cache model.
//
// Everything the GRINCH attack consumes flows through the Channel
// interface, so the same attack code runs against the ideal trace oracle
// (the paper's RTL-simulation channel, package internal/oracle) and
// against the full SoC platform simulations (package internal/soc).
package probe

import (
	"fmt"
	"math/bits"
	"strings"

	"grinch/internal/cache"
	"grinch/internal/obs"
	"grinch/internal/sim"
)

// LineSet is a bitmask over the cache lines backing the S-box table.
// Line 0 holds the lowest table indices. A 16-entry table with W entries
// per line occupies 16/W lines, so 16 bits always suffice; the type is
// wider to accommodate derived experiments with larger tables.
type LineSet uint64

// Add returns s with the given line marked.
func (s LineSet) Add(line int) LineSet { return s | 1<<line }

// Contains reports whether the line is marked.
func (s LineSet) Contains(line int) bool { return s&(1<<line) != 0 }

// Count returns the number of marked lines.
func (s LineSet) Count() int { return bits.OnesCount64(uint64(s)) }

// Intersect returns the lines present in both sets.
func (s LineSet) Intersect(o LineSet) LineSet { return s & o }

// Union returns the lines present in either set.
func (s LineSet) Union(o LineSet) LineSet { return s | o }

// Lines returns the marked line numbers in ascending order.
func (s LineSet) Lines() []int {
	out := make([]int, 0, s.Count())
	for v := uint64(s); v != 0; v &= v - 1 {
		out = append(out, bits.TrailingZeros64(v))
	}
	return out
}

// Sole returns the single marked line, or -1 unless exactly one is set.
func (s LineSet) Sole() int {
	if s.Count() != 1 {
		return -1
	}
	return bits.TrailingZeros64(uint64(s))
}

// String renders the set like "{0,3,7}".
func (s LineSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range s.Lines() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", l)
	}
	b.WriteByte('}')
	return b.String()
}

// FullSet returns the set with lines 0..n-1 all marked.
func FullSet(n int) LineSet { return LineSet(1)<<n - 1 }

// Channel is one crafted-plaintext observation: encrypt pt while probing
// for the S-box accesses of round targetRound+1 (the first accesses that
// depend on round key targetRound). Implementations differ in what extra
// noise the returned set carries.
type Channel interface {
	// Collect runs one encryption of pt with the probe aimed at
	// targetRound (1-based round-key index) and returns the observed
	// line set.
	Collect(pt uint64, targetRound int) LineSet
	// Lines returns how many cache lines the S-box table spans.
	Lines() int
	// Encryptions returns the total number of encryptions the channel
	// has performed (the paper's attack-effort metric).
	Encryptions() uint64
}

// FallibleChannel is a Channel whose probes can fail outright — a
// fault-injected wrapper (internal/faults) or a future live backend.
// CollectErr performs the same observation as Collect but reports the
// failure instead of degrading it. Errors exposing a
// `Transient() bool` method (faults.TransientError does) mark the
// failure retryable; the attack core's RetryPolicy keys on that.
type FallibleChannel interface {
	Channel
	// CollectErr runs one observation; on error the victim encryption
	// may still have been consumed (the channel's Encryptions counter
	// is authoritative) but the returned set is meaningless.
	CollectErr(pt uint64, targetRound int) (LineSet, error)
}

// MaskedChannel is a Channel whose probing primitive examines only part
// of the table per encryption: an Evict+Time attacker (Osvik–Shamir–
// Tromer style, the time-driven class the paper contrasts GRINCH with)
// evicts a single line and learns only whether the victim's total time
// was elevated — one line of information per encryption, against
// Flush+Reload's sixteen.
type MaskedChannel interface {
	Channel
	// CollectMasked returns the observed set together with the mask of
	// lines actually examined this encryption.
	CollectMasked(pt uint64, targetRound int) (set, mask LineSet)
}

// BatchChannel is a Channel that can precompute many observations at
// once without committing any of them — the contract behind the batched
// attack pipeline's byte-identical-to-scalar guarantee.
//
// PrimeBatch speculatively evaluates the raw (noise-free, unmasked)
// line sets for up to 64 crafted plaintexts with no observable side
// effects: the Encryptions counter, trace events, noise stream and any
// probing cursor are untouched. CollectPrimed then commits one primed
// observation with semantics identical to Collect/CollectMasked on the
// same plaintext — counter increment, event emission, noise application
// and mask selection all happen at commit time, in commit order. An
// attack that stops mid-batch therefore leaves the channel in exactly
// the state a scalar attack would, and uncommitted speculative work
// simply evaporates.
//
// PrimeBatch returns false when the channel cannot batch the request
// (foreign victim implementations, oversized batches); the caller must
// then fall back to the scalar path for those observations.
type BatchChannel interface {
	Channel
	// PrimeBatch fills raw[i] with the side-effect-free raw line set of
	// pts[i] for the given target round. len(raw) must be ≥ len(pts).
	PrimeBatch(pts []uint64, targetRound int, raw []LineSet) bool
	// CollectPrimed commits one primed raw set, returning the observed
	// set and examined mask exactly as CollectMasked would have.
	CollectPrimed(raw LineSet, targetRound int) (set, mask LineSet)
}

// TableLayout describes where the victim's S-box table lives in memory.
type TableLayout struct {
	// Base is the address of entry 0. Must be line-aligned for the
	// index→line mapping to be exact (the reference implementation
	// aligns its tables).
	Base uint64
	// EntryBytes is the size of one table entry (1 for GIFT's byte
	// table).
	EntryBytes int
	// Entries is the table length (16 for GIFT).
	Entries int
}

// EntryAddr returns the address of table entry i.
func (t TableLayout) EntryAddr(i int) uint64 {
	return t.Base + uint64(i*t.EntryBytes)
}

// LinesIn returns how many cache lines of size lineBytes the table
// spans.
func (t TableLayout) LinesIn(lineBytes int) int {
	total := t.Entries * t.EntryBytes
	n := (total + lineBytes - 1) / lineBytes
	if n < 1 {
		n = 1
	}
	return n
}

// LineOf returns which table line (0-based) entry i falls in for the
// given cache line size.
func (t TableLayout) LineOf(i, lineBytes int) int {
	return int(t.EntryAddr(i)-t.Base) / lineBytes
}

// FlushReload implements the Flush+Reload primitive against a cache
// model: Flush evicts the table lines; Reload touches each line and
// classifies hit/miss by access latency.
type FlushReload struct {
	Cache *cache.Cache
	Table TableLayout
	// HitThreshold is the latency (cycles) at or below which a reload
	// counts as a hit. Defaults to the cache's hit latency when zero.
	HitThreshold uint64
	// Tracer, when set, receives one cache_snapshot event per Reload
	// with the cache's cumulative activity counters.
	Tracer obs.Tracer
	// Meter, when set, counts primitive operations and their cycle
	// cost (nil disables metering).
	Meter *Meter
}

// threshold returns the classification boundary.
func (fr *FlushReload) threshold() uint64 {
	if fr.HitThreshold != 0 {
		return fr.HitThreshold
	}
	return fr.Cache.Config().HitLatency
}

// Flush evicts every table line and returns the cycles spent.
func (fr *FlushReload) Flush() uint64 {
	cycles := fr.Cache.FlushRange(fr.Table.Base, uint64(fr.Table.Entries*fr.Table.EntryBytes))
	fr.Meter.op(cycles)
	return cycles
}

// Reload touches every table line and returns those that were resident,
// classifying residency by latency. The reload itself refills the lines
// (as on real hardware), so the caller must Flush again before the next
// observation window.
func (fr *FlushReload) Reload() (LineSet, uint64) {
	lineBytes := fr.Cache.Config().LineBytes
	n := fr.Table.LinesIn(lineBytes)
	var set LineSet
	var cycles uint64
	for l := 0; l < n; l++ {
		addr := fr.Table.Base + uint64(l*lineBytes)
		res := fr.Cache.Access(addr)
		cycles += res.Latency
		if res.Latency <= fr.threshold() {
			set = set.Add(l)
		}
	}
	fr.Meter.observed(cycles)
	if fr.Tracer != nil {
		fr.Tracer.Emit(CacheSnapshot(fr.Cache))
	}
	return set, cycles
}

// CacheSnapshot folds a cache's cumulative counters into a
// cache_snapshot event — the shared emission helper for every
// cache-backed channel.
func CacheSnapshot(c *cache.Cache) obs.Event {
	return CacheSnapshotStats(c.Stats())
}

// CacheSnapshotStats is CacheSnapshot for a caller that holds the
// counters rather than the cache — platform channels accumulate stats
// across throwaway per-session caches.
func CacheSnapshotStats(s cache.Stats) obs.Event {
	return obs.Event{
		Kind:         obs.KindCacheSnapshot,
		Hits:         s.Hits,
		Misses:       s.Misses,
		Evictions:    s.Evictions,
		Flushes:      s.Flushes,
		FlushedLines: s.FlushedLines,
	}
}

// PrimeProbe implements the Prime+Probe primitive: Prime fills the sets
// backing the table with attacker lines; Probe re-touches the attacker
// lines and reports the table lines whose sets showed evictions.
//
// The attacker's eviction buffer lives at EvictionBase and must map to
// the same cache sets as the table (congruent addresses).
type PrimeProbe struct {
	Cache        *cache.Cache
	Table        TableLayout
	EvictionBase uint64
	HitThreshold uint64
	// Tracer, when set, receives one cache_snapshot event per Probe.
	Tracer obs.Tracer
	// Meter, when set, counts primitive operations and their cycle
	// cost (nil disables metering).
	Meter *Meter
}

func (pp *PrimeProbe) threshold() uint64 {
	if pp.HitThreshold != 0 {
		return pp.HitThreshold
	}
	return pp.Cache.Config().HitLatency
}

// setStride returns the address distance between lines mapping to the
// same cache set.
func (pp *PrimeProbe) setStride() uint64 {
	cfg := pp.Cache.Config()
	return uint64(cfg.Sets * cfg.LineBytes)
}

// evictionAddrs returns the attacker addresses congruent to table line
// l, one per way.
func (pp *PrimeProbe) evictionAddrs(l int) []uint64 {
	cfg := pp.Cache.Config()
	lineAddr := pp.Table.Base + uint64(l*cfg.LineBytes)
	setOffset := lineAddr % pp.setStride()
	out := make([]uint64, cfg.Ways)
	for w := 0; w < cfg.Ways; w++ {
		out[w] = pp.EvictionBase + uint64(w)*pp.setStride() + setOffset
	}
	return out
}

// Prime fills every cache set backing the table with attacker lines,
// evicting the victim's table data. Returns cycles spent.
func (pp *PrimeProbe) Prime() uint64 {
	lineBytes := pp.Cache.Config().LineBytes
	n := pp.Table.LinesIn(lineBytes)
	var cycles uint64
	for l := 0; l < n; l++ {
		for _, a := range pp.evictionAddrs(l) {
			cycles += pp.Cache.Access(a).Latency
		}
	}
	pp.Meter.op(cycles)
	return cycles
}

// Probe re-touches the attacker lines; a miss means the victim displaced
// one of them, i.e. the victim touched that table line's set. Returns
// the inferred touched lines and the cycles spent. Probe re-establishes
// the prime as it goes.
func (pp *PrimeProbe) Probe() (LineSet, uint64) {
	lineBytes := pp.Cache.Config().LineBytes
	n := pp.Table.LinesIn(lineBytes)
	var set LineSet
	var cycles uint64
	for l := 0; l < n; l++ {
		missed := false
		for _, a := range pp.evictionAddrs(l) {
			res := pp.Cache.Access(a)
			cycles += res.Latency
			if res.Latency > pp.threshold() {
				missed = true
			}
		}
		if missed {
			set = set.Add(l)
		}
	}
	pp.Meter.observed(cycles)
	if pp.Tracer != nil {
		pp.Tracer.Emit(CacheSnapshot(pp.Cache))
	}
	return set, cycles
}

// Timing knobs shared by platform probes.
const (
	// DefaultProbeGap is the attacker's back-off between consecutive
	// platform probes when polling.
	DefaultProbeGap = 100 * sim.Microsecond
)
