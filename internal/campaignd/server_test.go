package campaignd_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"grinch/internal/campaign"
	"grinch/internal/campaignd"
	"grinch/internal/campaignd/worker"
	"grinch/internal/obs"
	"grinch/internal/rng"
)

// toyExec is a deterministic executor: every measurement is a pure
// function of the job seed, with seed-dependent CPU work so scheduling
// interleaves, and a deterministic sprinkling of failed jobs so the
// merge path carries Failed/Err records too.
func toyExec(job campaign.Job, _ obs.Tracer) (campaign.Measurement, error) {
	r := rng.New(job.Seed)
	n := 100 + r.Intn(1000)
	acc := uint64(0)
	for i := 0; i < n*20; i++ {
		acc += r.Uint64() >> 60
	}
	if job.Seed%17 == 0 {
		return campaign.Measurement{}, fmt.Errorf("toy: deterministic failure for seed %d", job.Seed)
	}
	return campaign.Measurement{Encryptions: uint64(n) + acc%2, DroppedOut: n > 1050, Correct: n%2 == 0}, nil
}

func toySpec(trials int) campaign.Spec {
	return campaign.Spec{
		Name:        "toy",
		Kind:        "toy",
		Seed:        2021,
		Trials:      trials,
		Budget:      1000,
		LineWords:   []int{1, 2},
		ProbeRounds: []int{1, 2, 3},
	}
}

// referenceBytes runs the spec through the single-process orchestrator
// — the byte-determinism reference the distributed path must match.
func referenceBytes(t *testing.T, spec campaign.Spec) (jsonl, csv []byte) {
	t.Helper()
	var jl, cs bytes.Buffer
	_, err := campaign.Run(context.Background(), spec, toyExec, campaign.Options{
		Workers: 2,
		Sinks:   []campaign.Sink{&campaign.JSONLSink{W: &jl}, &campaign.CSVSink{W: &cs}},
	})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	return jl.Bytes(), cs.Bytes()
}

// fakeClock is an injectable clock the tests advance to trigger lease
// expiry without real waiting.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// newTestServer boots a coordinator behind httptest.
func newTestServer(t *testing.T, opts campaignd.Options) (*campaignd.Server, *httptest.Server) {
	t.Helper()
	srv, err := campaignd.NewServer(opts)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(func() { srv.Close() })
	return srv, ts
}

func runWorker(t *testing.T, ctx context.Context, url, id string, pool int, exec campaign.Executor) error {
	t.Helper()
	return worker.Run(ctx, worker.Config{
		Server:  url,
		ID:      id,
		Exec:    exec,
		Workers: pool,
		Batch:   4,
		Poll:    5 * time.Millisecond,
		Drain:   true,
		Logf:    t.Logf,
	})
}

// TestDistributedDeterminism is the correctness proof of the scale-out
// path: the same spec run through campaignd with 1 worker node and
// with 3 worker nodes produces merged JSONL and CSV byte-identical to
// the single-process orchestrator.
func TestDistributedDeterminism(t *testing.T) {
	spec := toySpec(4)
	wantJSONL, wantCSV := referenceBytes(t, spec)

	for _, nodes := range []int{1, 3} {
		t.Run(fmt.Sprintf("nodes=%d", nodes), func(t *testing.T) {
			dir := t.TempDir()
			outPath := filepath.Join(dir, "merged.jsonl")
			csvPath := filepath.Join(dir, "merged.csv")
			srv, ts := newTestServer(t, campaignd.Options{Logf: t.Logf})
			resp, err := srv.Submit(campaignd.SubmitRequest{
				Spec: spec, ShardSize: 5, Out: outPath, CSV: csvPath,
			})
			if err != nil {
				t.Fatalf("submit: %v", err)
			}
			if resp.Jobs != spec.NumJobs() || resp.Shards != (spec.NumJobs()+4)/5 {
				t.Fatalf("submit response %+v for %d jobs", resp, spec.NumJobs())
			}

			var wg sync.WaitGroup
			errs := make([]error, nodes)
			for n := 0; n < nodes; n++ {
				wg.Add(1)
				go func(n int) {
					defer wg.Done()
					errs[n] = runWorker(t, context.Background(), ts.URL, fmt.Sprintf("w%d", n), 2, toyExec)
				}(n)
			}
			wg.Wait()
			for n, err := range errs {
				if err != nil {
					t.Fatalf("worker %d: %v", n, err)
				}
			}

			got, err := srv.Output(resp.ID)
			if err != nil {
				t.Fatalf("output: %v", err)
			}
			if !bytes.Equal(got, wantJSONL) {
				t.Fatalf("merged JSONL differs from single-process run (%d vs %d bytes)", len(got), len(wantJSONL))
			}
			fileJSONL, err := os.ReadFile(outPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(fileJSONL, wantJSONL) {
				t.Fatal("merged JSONL file differs from single-process run")
			}
			fileCSV, err := os.ReadFile(csvPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(fileCSV, wantCSV) {
				t.Fatal("merged CSV file differs from single-process run")
			}
		})
	}
}

// killAfter wraps an executor to cancel a context after n completed
// executions — the in-process stand-in for kill -9 on a worker node.
func killAfter(exec campaign.Executor, n int32, cancel context.CancelFunc) campaign.Executor {
	var done atomic.Int32
	return func(j campaign.Job, tr obs.Tracer) (campaign.Measurement, error) {
		m, err := exec(j, tr)
		if done.Add(1) >= n {
			cancel()
		}
		return m, err
	}
}

// TestWorkerKillAndRestart kills a worker mid-shard, lets its lease
// expire, and finishes the campaign with a second worker: the shard is
// re-issued with the ingested prefix intact, the replacement skips the
// already-done jobs, and the merged output is still byte-identical to
// the single-process run — the acceptance scenario of the distributed
// subsystem.
func TestWorkerKillAndRestart(t *testing.T) {
	spec := toySpec(4) // 24 jobs
	wantJSONL, _ := referenceBytes(t, spec)
	clock := newFakeClock()
	ttl := 10 * time.Second
	srv, ts := newTestServer(t, campaignd.Options{
		Now: clock.Now, LeaseTTL: ttl, Logf: t.Logf,
	})
	resp, err := srv.Submit(campaignd.SubmitRequest{Spec: spec, ShardSize: 8})
	if err != nil {
		t.Fatal(err)
	}

	// Worker A dies after ~3 jobs, mid-shard, without completing.
	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	errA := worker.Run(ctxA, worker.Config{
		Server: ts.URL, ID: "wA", Exec: killAfter(toyExec, 3, cancelA),
		Workers: 1, Batch: 1, Poll: 5 * time.Millisecond, Logf: t.Logf,
	})
	if errA == nil || ctxA.Err() == nil {
		t.Fatalf("worker A was supposed to die mid-shard, got err=%v", errA)
	}
	st, err := (&campaignd.Client{Base: ts.URL}).Status(resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done == 0 || st.Done >= spec.NumJobs() || st.State != campaignd.CampaignRunning {
		t.Fatalf("after the kill: done=%d/%d state=%s, want a strict mid-campaign prefix", st.Done, spec.NumJobs(), st.State)
	}
	ingestedByA := st.Done

	// The lease is still live: a replacement worker must not steal the
	// shard before the TTL elapses.
	clock.Advance(ttl / 2)

	// After expiry the shard re-issues; worker B finishes everything,
	// skipping what A already reported.
	clock.Advance(ttl)
	var execsB atomic.Int32
	countingExec := func(j campaign.Job, tr obs.Tracer) (campaign.Measurement, error) {
		execsB.Add(1)
		return toyExec(j, tr)
	}
	if err := runWorker(t, context.Background(), ts.URL, "wB", 2, countingExec); err != nil {
		t.Fatalf("worker B: %v", err)
	}

	st, err = (&campaignd.Client{Base: ts.URL}).Status(resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != campaignd.CampaignMerged || st.Done != spec.NumJobs() {
		t.Fatalf("after restart: state=%s done=%d, want merged %d", st.State, st.Done, spec.NumJobs())
	}
	reissues := 0
	for _, sh := range st.Shards {
		reissues += sh.Reissues
	}
	if reissues == 0 {
		t.Fatal("the killed worker's shard was never re-issued")
	}
	if got := int(execsB.Load()); got != spec.NumJobs()-ingestedByA {
		t.Errorf("worker B executed %d jobs, want %d (grid %d minus %d ingested before the kill)",
			got, spec.NumJobs()-ingestedByA, spec.NumJobs(), ingestedByA)
	}

	got, err := srv.Output(resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantJSONL) {
		t.Fatal("merged output after kill/restart differs from single-process run")
	}
}

// TestServerRestartRecovery kills the coordinator itself mid-campaign:
// a new server over the same data directory resumes from the shard
// journals (ingested results survive, shards re-lease) and the final
// merge is still byte-identical.
func TestServerRestartRecovery(t *testing.T) {
	spec := toySpec(4)
	wantJSONL, wantCSV := referenceBytes(t, spec)
	dataDir := t.TempDir()
	clock := newFakeClock()

	srv1, ts1 := newTestServer(t, campaignd.Options{
		DataDir: dataDir, Now: clock.Now, LeaseTTL: 10 * time.Second, Logf: t.Logf,
	})
	resp, err := srv1.Submit(campaignd.SubmitRequest{
		Spec: spec, ShardSize: 8, Out: "merged.jsonl", CSV: "merged.csv",
	})
	if err != nil {
		t.Fatal(err)
	}
	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	worker.Run(ctxA, worker.Config{
		Server: ts1.URL, ID: "wA", Exec: killAfter(toyExec, 3, cancelA),
		Workers: 1, Batch: 1, Poll: 5 * time.Millisecond, Logf: t.Logf,
	})
	stBefore, err := (&campaignd.Client{Base: ts1.URL}).Status(resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if stBefore.Done == 0 {
		t.Fatal("worker A reported nothing before the coordinator restart")
	}
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	// Coordinator restart: journals replay; the dead lease is gone with
	// the process, so the shard is immediately pending again.
	srv2, ts2 := newTestServer(t, campaignd.Options{
		DataDir: dataDir, Now: clock.Now, LeaseTTL: 10 * time.Second, Logf: t.Logf,
	})
	st, err := (&campaignd.Client{Base: ts2.URL}).Status(resp.ID)
	if err != nil {
		t.Fatalf("recovered campaign not found: %v", err)
	}
	if st.Done != stBefore.Done {
		t.Fatalf("recovery lost results: done=%d, want %d", st.Done, stBefore.Done)
	}

	if err := runWorker(t, context.Background(), ts2.URL, "wB", 2, toyExec); err != nil {
		t.Fatalf("worker B after recovery: %v", err)
	}
	got, err := srv2.Output(resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantJSONL) {
		t.Fatal("merged output after coordinator restart differs from single-process run")
	}
	fileCSV, err := os.ReadFile(filepath.Join(dataDir, resp.ID, "merged.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fileCSV, wantCSV) {
		t.Fatal("merged CSV after coordinator restart differs from single-process run")
	}

	// A second recovery over the finished campaign re-merges
	// idempotently.
	ts2.Close()
	srv2.Close()
	srv3, err := campaignd.NewServer(campaignd.Options{DataDir: dataDir, Now: clock.Now})
	if err != nil {
		t.Fatalf("re-recovering a merged campaign: %v", err)
	}
	defer srv3.Close()
	again, err := srv3.Output(resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, wantJSONL) {
		t.Fatal("idempotent re-merge changed bytes")
	}
}

// TestLeaseFencing pins the zombie-worker protocol: after expiry and
// re-issue, the old lease's reports, heartbeats and completion are
// rejected with the gone signal.
func TestLeaseFencing(t *testing.T) {
	spec := campaign.Spec{Name: "tiny", Kind: "toy", Seed: 7, Trials: 4}
	clock := newFakeClock()
	ttl := 10 * time.Second
	srv, ts := newTestServer(t, campaignd.Options{Now: clock.Now, LeaseTTL: ttl, Logf: t.Logf})
	if _, err := srv.Submit(campaignd.SubmitRequest{Spec: spec}); err != nil {
		t.Fatal(err)
	}
	client := &campaignd.Client{Base: ts.URL}

	leaseA, err := client.Lease("zombie")
	if err != nil || leaseA.Lease == nil {
		t.Fatalf("lease A: %+v, %v", leaseA, err)
	}
	// Heartbeats keep it alive across half a TTL...
	clock.Advance(ttl / 2)
	if err := client.Heartbeat(leaseA.Lease.ID); err != nil {
		t.Fatalf("heartbeat on a live lease: %v", err)
	}
	// ...but silence past the TTL kills it.
	clock.Advance(ttl + time.Second)
	leaseB, err := client.Lease("healthy")
	if err != nil || leaseB.Lease == nil {
		t.Fatalf("re-issue after expiry: %+v, %v", leaseB, err)
	}
	if leaseB.Lease.Shard != leaseA.Lease.Shard || leaseB.Lease.ID == leaseA.Lease.ID {
		t.Fatalf("expected the same shard under a fresh lease, got %+v after %+v", leaseB.Lease, leaseA.Lease)
	}

	jobs := spec.Jobs()
	mkResult := func(j campaign.Job) campaign.Result {
		r := campaign.Result{Job: j.Index, Point: j.Point, Seed: j.Seed}
		m, err := toyExec(j, nil)
		if err != nil {
			r.Failed = true
			r.Err = err.Error()
			return r
		}
		r.Measurement = m
		return r
	}
	if err := client.Report(leaseA.Lease.ID, []campaign.Result{mkResult(jobs[0])}); err != campaignd.ErrLeaseGone {
		t.Fatalf("zombie report: err=%v, want ErrLeaseGone", err)
	}
	if err := client.Heartbeat(leaseA.Lease.ID); err != campaignd.ErrLeaseGone {
		t.Fatalf("zombie heartbeat: err=%v, want ErrLeaseGone", err)
	}
	if err := client.Complete(leaseA.Lease.ID); err != campaignd.ErrLeaseGone {
		t.Fatalf("zombie complete: err=%v, want ErrLeaseGone", err)
	}

	// The healthy lease works: completing early (missing jobs) is
	// rejected, full coverage completes.
	if err := client.Complete(leaseB.Lease.ID); err == nil || err == campaignd.ErrLeaseGone {
		t.Fatalf("complete with missing jobs: err=%v, want a coverage error", err)
	}
	for _, j := range jobs {
		if err := client.Report(leaseB.Lease.ID, []campaign.Result{mkResult(j)}); err != nil {
			t.Fatalf("healthy report: %v", err)
		}
	}
	// Duplicates are dropped, not duplicated in the merge.
	if err := client.Report(leaseB.Lease.ID, []campaign.Result{mkResult(jobs[1])}); err != nil {
		t.Fatalf("duplicate report: %v", err)
	}
	// Out-of-range jobs are rejected.
	bogus := mkResult(jobs[0])
	bogus.Job = spec.NumJobs() + 5
	if err := client.Report(leaseB.Lease.ID, []campaign.Result{bogus}); err == nil {
		t.Fatal("out-of-range report was accepted")
	}
	if err := client.Complete(leaseB.Lease.ID); err != nil {
		t.Fatalf("complete: %v", err)
	}

	wantJSONL, _ := referenceBytes(t, spec)
	sts, err := client.Statuses()
	if err != nil || len(sts) != 1 {
		t.Fatalf("statuses: %v, %v", sts, err)
	}
	got, err := client.Output(sts[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantJSONL) {
		t.Fatal("hand-driven protocol merge differs from single-process run")
	}
}

// TestStatusSurfaces smoke-tests the human/debug surfaces: the status
// page shows shard states and workers, expvar and pprof respond.
func TestStatusSurfaces(t *testing.T) {
	spec := toySpec(2)
	srv, ts := newTestServer(t, campaignd.Options{Logf: t.Logf})
	if _, err := srv.Submit(campaignd.SubmitRequest{Spec: spec, ShardSize: 4}); err != nil {
		t.Fatal(err)
	}
	if err := runWorker(t, context.Background(), ts.URL, "w-status", 2, toyExec); err != nil {
		t.Fatal(err)
	}

	page := get(t, ts.URL+"/status")
	for _, want := range []string{"campaignd", "toy", "done", "w-status", "merged"} {
		if !strings.Contains(page, want) {
			t.Errorf("status page is missing %q", want)
		}
	}
	if !strings.Contains(get(t, ts.URL+"/debug/vars"), "memstats") {
		t.Error("expvar endpoint did not serve")
	}
	if !strings.Contains(get(t, ts.URL+"/debug/pprof/"), "profile") {
		t.Error("pprof index did not serve")
	}

	m := srv.Metrics()
	if m.JobsDone != spec.NumJobs() || m.CampaignsMerged != 1 || m.ShardsDone != m.Shards {
		t.Errorf("metrics snapshot inconsistent after a finished campaign: %+v", m)
	}

	// Unknown campaigns 404; unmerged output refuses.
	resp, err := http.Get(ts.URL + campaignd.PathCampaigns + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown campaign returned %d", resp.StatusCode)
	}
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSubmitValidation rejects malformed specs at the API boundary.
func TestSubmitValidation(t *testing.T) {
	srv, ts := newTestServer(t, campaignd.Options{})
	if _, err := srv.Submit(campaignd.SubmitRequest{Spec: campaign.Spec{Name: "nokind"}}); err == nil {
		t.Fatal("spec without a kind was accepted")
	}
	resp, err := http.Post(ts.URL+campaignd.PathCampaigns, "application/json",
		strings.NewReader(`{"spec": {"name": "nokind"}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid submit returned %d, want 400", resp.StatusCode)
	}
}
