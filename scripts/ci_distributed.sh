#!/usr/bin/env bash
# CI smoke test for the distributed campaign service: boot campaignd
# and two campaignw workers on localhost, run a small Table I grid, and
# require the merged output to be byte-identical to a single-process
# cmd/campaign run of the same spec. All binaries are built with -race.
#
# Usage: scripts/ci_distributed.sh [port]
set -euo pipefail

cd "$(dirname "$0")/.."
PORT="${1:-18931}"
ADDR="127.0.0.1:${PORT}"
WORK="$(mktemp -d)"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== building -race binaries"
go build -race -o "$WORK/bin/" ./cmd/campaign ./cmd/campaignd ./cmd/campaignw

SPEC_ARGS=(-trials 2 -budget 200000 -seed 2021)

echo "== single-process reference run"
"$WORK/bin/campaign" "${SPEC_ARGS[@]}" -quiet \
  -out "$WORK/ref.jsonl" -csv "$WORK/ref.csv" table1 >/dev/null

echo "== coordinator + 2 workers on $ADDR"
# No -exit-when-done: the coordinator stays up after the merge so the
# /metrics scrape below can't race its shutdown; it is TERMed (graceful
# exit 0) once the assertions pass.
"$WORK/bin/campaignd" -addr "$ADDR" -data "$WORK/data" "${SPEC_ARGS[@]}" \
  -out "$WORK/merged.jsonl" -csv "$WORK/merged.csv" table1 &
SERVER_PID=$!
PIDS+=("$SERVER_PID")

WORKER_PIDS=()
for i in 1 2; do
  "$WORK/bin/campaignw" -server "http://$ADDR" -id "ci-w$i" -drain &
  WORKER_PIDS+=("$!")
  PIDS+=("$!")
done

# Scrape GET /metrics while the fleet is live. The reference run
# already fixed the expected row count, so we poll until the
# coordinator's job counter reconciles with it AND the campaign has
# merged — the counter derives from the same deduplicated result
# tables the merge reads, so exact equality is the contract, not an
# approximation.
echo "== scraping /metrics while the run is live"
EXPECTED_ROWS="$(wc -l <"$WORK/ref.jsonl")"
BODY=""
RECONCILED=""
for _ in $(seq 1 600); do
  if BODY="$(curl -fs "http://$ADDR/metrics" 2>/dev/null)"; then
    DONE="$(printf '%s\n' "$BODY" | awk '$1 ~ /^campaignd_jobs_done_total([{]|$)/ {s+=$NF} END{printf "%d", s+0}')"
    if [ "$DONE" -eq "$EXPECTED_ROWS" ] &&
       printf '%s\n' "$BODY" | grep -q '^campaignd_campaigns{state="merged"} 1$'; then
      RECONCILED=1
      break
    fi
  fi
  sleep 0.1
done
if [ -z "$RECONCILED" ]; then
  echo "FAIL: campaignd_jobs_done_total never reconciled to $EXPECTED_ROWS merged jobs" >&2
  exit 1
fi
for series in campaignd_jobs_done_total campaignd_results_ingested_total \
              campaignd_shard_job_ms campaignd_workers_seen \
              campaignw_jobs_total campaignw_batches_total; do
  if ! printf '%s\n' "$BODY" | grep -q "^${series}"; then
    echo "FAIL: /metrics exposition is missing series ${series}" >&2
    exit 1
  fi
done
echo "OK: /metrics reconciles ($EXPECTED_ROWS jobs) and serves the fleet series"

# Drain-mode workers exit on their own once the coordinator reports
# every campaign merged.
for pid in "${WORKER_PIDS[@]}"; do
  if ! wait "$pid"; then
    echo "FAIL: campaignw exited non-zero" >&2
    exit 1
  fi
done

kill -TERM "$SERVER_PID"
if ! wait "$SERVER_PID"; then
  echo "FAIL: campaignd exited non-zero" >&2
  exit 1
fi

echo "== diffing merged output against the single-process run"
cmp "$WORK/merged.jsonl" "$WORK/ref.jsonl"
cmp "$WORK/merged.csv" "$WORK/ref.csv"
echo "OK: distributed merge is byte-identical ($(wc -c <"$WORK/merged.jsonl") bytes JSONL, $(wc -c <"$WORK/merged.csv") bytes CSV)"
