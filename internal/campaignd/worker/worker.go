// Package worker is the pull-based shard executor of the distributed
// campaign service: it leases one shard at a time from a campaignd
// coordinator, executes the shard's jobs on a local bounded pool
// (campaign.ExecuteJobs), streams result batches back, and heartbeats
// to keep the lease alive.
//
// Determinism is inherited, not re-implemented: the worker re-expands
// the canonical job grid from the spec in its lease (a pure function
// of the spec), slices its shard range, skips the indices the lease
// reports already done, and every result it computes is the same bytes
// any other node would compute. Crash-safety is the coordinator's
// journal plus this pull loop: a worker that dies mid-shard simply
// stops heartbeating, the lease expires, and the next worker resumes
// the shard where the ingested results end.
package worker

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"time"

	"grinch/internal/campaign"
	"grinch/internal/campaignd"
)

// Config configures a worker process.
type Config struct {
	// Server is the coordinator's base URL.
	Server string
	// ID is the worker's identity in leases and status displays.
	ID string
	// Exec runs one job (experiments.Execute in production; tests
	// substitute toys). Tracing is not threaded through the distributed
	// path, so Exec always receives a nil tracer.
	Exec campaign.Executor
	// Workers bounds the local pool (0: GOMAXPROCS).
	Workers int
	// Batch is how many results accumulate before a report flush (0:
	// DefaultBatch). Smaller batches lose less to a crash; larger ones
	// amortize round-trips.
	Batch int
	// Poll is the idle sleep between lease attempts when the
	// coordinator has no pending shard (0: DefaultPoll).
	Poll time.Duration
	// Drain, when set, exits the loop cleanly once the coordinator
	// reports every campaign merged. Otherwise the worker keeps
	// polling for future submissions.
	Drain bool
	// ConnectRetries bounds consecutive failed lease round-trips
	// (coordinator down or not yet listening) before giving up (0:
	// DefaultConnectRetries). Each failure sleeps one Poll. The client
	// layer's own per-call retries run inside each round-trip, so the
	// effective outage budget is ConnectRetries × the lease class's
	// backoff ceiling.
	ConnectRetries int
	// FlushRetries bounds worker-level report-flush rounds: each round
	// is a full client call (with its own per-call retry budget), and
	// between rounds the worker backs off — so a coordinator restart
	// longer than one call's budget degrades into waiting, not into an
	// abandoned shard (0: DefaultFlushRetries).
	FlushRetries int
	// Transport, when set, replaces the HTTP transport — the chaos
	// drill hook (cmd/campaignw -chaos wires a chaos.Transport here).
	// Ignored when client is overridden.
	Transport http.RoundTripper
	// Retry overrides the client retry policy (nil: defaults with a
	// jitter seed derived from ID, so a fleet's backoff schedules are
	// decorrelated but per-worker replayable).
	Retry *campaignd.RetryPolicy
	// Logf receives operator log lines; nil discards them.
	Logf func(format string, args ...any)

	// client overrides the HTTP client (tests).
	client *campaignd.Client
}

// Defaults.
const (
	DefaultBatch          = 16
	DefaultPoll           = 250 * time.Millisecond
	DefaultConnectRetries = 40
	DefaultFlushRetries   = 5
	// flushBackoffBase/Max shape the between-round flush backoff.
	flushBackoffBase = 250 * time.Millisecond
	flushBackoffMax  = 4 * time.Second
	// minHeartbeatInterval floors the heartbeat ticker: a lease TTL of
	// a few milliseconds must clamp, not panic time.NewTicker.
	minHeartbeatInterval = time.Millisecond
)

// idSeed derives a deterministic jitter seed from the worker identity.
func idSeed(id string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, id)
	return h.Sum64()
}

// Run executes the pull loop until ctx is cancelled, the coordinator
// drains (Config.Drain), or repeated connection failures exhaust the
// retry budget. A cancelled context is a clean shutdown: the current
// shard is abandoned un-completed and its lease left to expire (the
// coordinator keeps every result already reported).
func Run(ctx context.Context, cfg Config) error {
	if cfg.Exec == nil {
		return errors.New("worker: Config.Exec is required")
	}
	if cfg.ID == "" {
		return errors.New("worker: Config.ID is required")
	}
	if cfg.Batch <= 0 {
		cfg.Batch = DefaultBatch
	}
	if cfg.Poll <= 0 {
		cfg.Poll = DefaultPoll
	}
	if cfg.ConnectRetries <= 0 {
		cfg.ConnectRetries = DefaultConnectRetries
	}
	if cfg.FlushRetries <= 0 {
		cfg.FlushRetries = DefaultFlushRetries
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	m := newMeter()
	client := cfg.client
	if client == nil {
		pol := campaignd.DefaultRetryPolicy()
		if cfg.Retry != nil {
			pol = *cfg.Retry
		}
		if pol.Seed == 0 {
			pol.Seed = idSeed(cfg.ID)
		}
		client = &campaignd.Client{Base: cfg.Server, Retry: &pol}
		if cfg.Transport != nil {
			client.HTTP = &http.Client{Transport: cfg.Transport, Timeout: 2 * campaignd.DefaultCallTimeout}
		}
	}
	if client.OnRetry == nil {
		client.OnRetry = func(class string, attempt int, wait time.Duration, err error) {
			m.retry(class, wait)
			logf("worker %s: %s attempt %d failed (%v); retrying in %s", cfg.ID, class, attempt, err, wait)
		}
	}
	start := time.Now() //grinchvet:ignore wallclock drain-summary telemetry, never reaches result bytes

	failures := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		resp, err := client.Lease(cfg.ID)
		if err != nil {
			failures++
			m.leaseTries.Inc()
			if failures >= cfg.ConnectRetries {
				return fmt.Errorf("worker %s: leasing: %w (after %d attempts)", cfg.ID, err, failures)
			}
			logf("worker %s: leasing: %v (retrying)", cfg.ID, err)
			if !sleepCtx(ctx, cfg.Poll) {
				return ctx.Err()
			}
			continue
		}
		failures = 0
		if resp.Lease == nil {
			if cfg.Drain && resp.AllDone {
				sum := m.summary()
				logf("worker %s: coordinator drained; exiting — %d jobs (%d failed) in %d shards (%d lost), %d lease retries, %d call retries (%dms backoff), %.1fs wall",
					cfg.ID, sum.Jobs, sum.Failed, sum.Shards, sum.Lost, sum.LeaseRetries, sum.Retries, sum.BackoffMS,
					time.Since(start).Seconds()) //grinchvet:ignore wallclock drain-summary telemetry
				return nil
			}
			if !sleepCtx(ctx, cfg.Poll) {
				return ctx.Err()
			}
			continue
		}
		if err := runShard(ctx, cfg, client, m, logf, resp.Lease); err != nil {
			if errors.Is(err, campaignd.ErrLeaseGone) {
				// The coordinator re-issued the shard (our heartbeats were
				// too late); whatever we reported is kept, the rest is the
				// next holder's problem.
				m.shardsLost.Inc()
				logf("worker %s: lease %s revoked mid-shard; abandoning", cfg.ID, resp.Lease.ID)
				continue
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
	}
}

// sleepCtx sleeps d or until ctx is done, reporting whether the sleep
// completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// runShard executes one leased shard: expand, skip done, execute,
// batch-report, complete. Every round-trip to the coordinator carries
// the worker's cumulative telemetry delta.
func runShard(ctx context.Context, cfg Config, client *campaignd.Client, m *meter, logf func(string, ...any), l *campaignd.Lease) error {
	if l.TTLMS <= 0 {
		// A non-positive TTL cannot fence anything: refuse the lease
		// loudly instead of dividing it into a panicking ticker.
		return fmt.Errorf("worker %s: lease %s carries invalid ttl_ms %d (must be positive); refusing the shard", cfg.ID, l.ID, l.TTLMS)
	}
	all := l.Spec.Jobs()
	if l.End > len(all) {
		return fmt.Errorf("worker %s: lease %s range [%d,%d) exceeds grid size %d", cfg.ID, l.ID, l.Start, l.End, len(all))
	}
	done := make(map[int]bool, len(l.DoneJobs))
	for _, idx := range l.DoneJobs {
		done[idx] = true
	}
	jobs := make([]campaign.Job, 0, l.Len())
	for _, j := range all[l.Start:l.End] {
		if !done[j.Index] {
			jobs = append(jobs, j)
		}
	}
	logf("worker %s: lease %s: %s %s — %d jobs (%d resumed)", cfg.ID, l.ID, l.Campaign, l.ShardRange, len(jobs), len(l.DoneJobs))

	// Heartbeat at a third of the TTL until the shard is finished. A
	// revoked lease cancels the shard so in-flight jobs stop feeding a
	// dead lease. The interval is floored: a degenerate few-millisecond
	// TTL (stress tests, mis-tuned coordinators) clamps to a spammy but
	// live heartbeat instead of panicking time.NewTicker with a
	// non-positive duration.
	shardCtx, stopShard := context.WithCancelCause(ctx)
	defer stopShard(nil)
	ttl := time.Duration(l.TTLMS) * time.Millisecond
	hbInterval := ttl / 3
	if hbInterval < minHeartbeatInterval {
		hbInterval = minHeartbeatInterval
	}
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		tick := time.NewTicker(hbInterval)
		defer tick.Stop()
		for {
			select {
			case <-shardCtx.Done():
				return
			case <-tick.C:
				if err := client.HeartbeatDelta(l.ID, cfg.ID, m.delta()); err != nil {
					if errors.Is(err, campaignd.ErrLeaseGone) {
						stopShard(campaignd.ErrLeaseGone)
						return
					}
					logf("worker %s: heartbeat: %v", cfg.ID, err)
				}
			}
		}
	}()

	// flush reports the pending batch, persistently: each round is a
	// full client call (which retries transient failures internally);
	// if a round still fails, the worker backs off and tries again up
	// to FlushRetries rounds instead of abandoning a shard whose
	// results it already computed. The batch is only cleared on
	// success, and the server dedupes by job index, so a response lost
	// after the commit costs one duplicate round-trip, never a
	// double-count. A revoked lease or cancelled shard stops the
	// persistence immediately — those failures cannot heal.
	batch := make([]campaign.Result, 0, cfg.Batch)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		var err error
		for round := 1; ; round++ {
			err = client.ReportDelta(l.ID, batch, cfg.ID, m.delta())
			if err == nil {
				m.batches.Inc()
				batch = batch[:0]
				return nil
			}
			if errors.Is(err, campaignd.ErrLeaseGone) || shardCtx.Err() != nil {
				return err
			}
			if round >= cfg.FlushRetries {
				return fmt.Errorf("worker %s: lease %s: flush failed after %d rounds: %w", cfg.ID, l.ID, round, err)
			}
			wait := flushBackoffBase << uint(round-1)
			if wait > flushBackoffMax {
				wait = flushBackoffMax
			}
			m.flushRetry(wait)
			logf("worker %s: lease %s: flush round %d failed (%v); holding %d results and retrying in %s",
				cfg.ID, l.ID, round, err, len(batch), wait)
			if !sleepCtx(shardCtx, wait) {
				if cause := context.Cause(shardCtx); cause != nil {
					return cause
				}
				return shardCtx.Err()
			}
		}
	}
	execErr := campaign.ExecuteJobs(shardCtx, jobs, cfg.Exec, cfg.Workers, func(r campaign.Result) error {
		m.result(r)
		batch = append(batch, r)
		if len(batch) >= cfg.Batch {
			return flush()
		}
		return nil
	})
	stopShard(nil)
	<-hbDone
	if cause := context.Cause(shardCtx); errors.Is(cause, campaignd.ErrLeaseGone) {
		return campaignd.ErrLeaseGone
	}
	if execErr != nil {
		return execErr
	}
	if err := flush(); err != nil {
		return err
	}
	// Count the shard before snapshotting the delta: the complete
	// round-trip is the worker's last word on this shard, and it may be
	// the last round-trip of the whole run.
	m.shardsDone.Inc()
	if err := client.CompleteDelta(l.ID, cfg.ID, m.delta()); err != nil {
		return err
	}
	logf("worker %s: lease %s complete", cfg.ID, l.ID)
	return nil
}
