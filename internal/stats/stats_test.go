package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || !almost(s.Mean, 2.5) || !almost(s.Median, 2.5) {
		t.Fatalf("summary = %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Median != 7 || s.Mean != 7 || s.StdDev != 0 || s.CI95() != 0 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestStdDevKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	// Sample standard deviation of this classic set is ≈2.138.
	if math.Abs(s.StdDev-2.13809) > 1e-4 {
		t.Fatalf("stddev = %v", s.StdDev)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5}, {75, 32.5},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); !almost(got, c.want) {
			t.Errorf("P%.0f = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileBoundsQuick(t *testing.T) {
	f := func(raw []float64, p float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		pp := math.Mod(math.Abs(p), 100)
		sorted := append([]float64(nil), xs...)
		sortFloats(sorted)
		v := Percentile(sorted, pp)
		return v >= s.Min && v <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestSummarizeUint64(t *testing.T) {
	s := SummarizeUint64([]uint64{100, 200, 300})
	if s.N != 3 || !almost(s.Mean, 200) {
		t.Fatalf("summary = %+v", s)
	}
}

func TestMedianEvenOdd(t *testing.T) {
	if m := Summarize([]float64{1, 2, 3}).Median; !almost(m, 2) {
		t.Fatalf("odd median = %v", m)
	}
	if m := Summarize([]float64{1, 2, 3, 100}).Median; !almost(m, 2.5) {
		t.Fatalf("even median = %v", m)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); !almost(g, 10) {
		t.Fatalf("geomean = %v", g)
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Fatal("non-positive sample not rejected")
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean not 0")
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	small := Summarize([]float64{1, 2, 3, 4})
	var big []float64
	for i := 0; i < 16; i++ {
		big = append(big, float64(1+i%4))
	}
	if Summarize(big).CI95() >= small.CI95() {
		t.Fatal("CI did not shrink with larger sample")
	}
}

func TestStringFormat(t *testing.T) {
	got := Summarize([]float64{1, 2, 3}).String()
	if got == "" {
		t.Fatal("empty string")
	}
}
