package campaignd

import (
	"fmt"
	"html/template"
	"net/http"
	"sort"
)

// MetricsSnapshot is the coordinator's operator-telemetry counter set,
// JSON-serializable for expvar publication (cmd/campaignd publishes it
// as the "campaignd" variable on /debug/vars).
type MetricsSnapshot struct {
	Campaigns       int     `json:"campaigns"`
	CampaignsMerged int     `json:"campaigns_merged"`
	Shards          int     `json:"shards"`
	ShardsDone      int     `json:"shards_done"`
	ShardsLeased    int     `json:"shards_leased"`
	JobsTotal       int     `json:"jobs_total"`
	JobsDone        int     `json:"jobs_done"`
	JobsFailed      int     `json:"jobs_failed"`
	Encryptions     uint64  `json:"encryptions"`
	LeasesIssued    int     `json:"leases_issued"`
	LeasesActive    int     `json:"leases_active"`
	Reissues        int     `json:"reissues"`
	Duplicates      int     `json:"duplicates"`
	Shed            int     `json:"shed"`
	Workers         int     `json:"workers"`
	UptimeSeconds   float64 `json:"uptime_seconds"`
	JobsPerSecond   float64 `json:"jobs_per_second"`
	// ETASeconds estimates time-to-drain from the observed ingestion
	// rate (0 when idle or done). SuggestedShardSize is a shard-size
	// hint derived from observed job latency against the lease TTL (0
	// until latency data accumulates).
	ETASeconds         float64 `json:"eta_seconds"`
	SuggestedShardSize int     `json:"suggested_shard_size"`
}

// Metrics returns the current snapshot. Jobs/sec is ingested results
// over uptime — a coarse operator number, not a benchmark.
func (s *Server) Metrics() MetricsSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked()
	snap := MetricsSnapshot{
		Campaigns:    len(s.order),
		LeasesIssued: s.leasesIssued,
		LeasesActive: len(s.leases),
		Reissues:     s.reissues,
		Duplicates:   s.duplicates,
		Shed:         int(s.shed.Load()),
		Workers:      len(s.workers),
	}
	for _, id := range s.order {
		c := s.campaigns[id]
		if c.merged {
			snap.CampaignsMerged++
		}
		snap.JobsTotal += c.jobs
		snap.Shards += len(c.shards)
		for _, sh := range c.shards {
			snap.JobsDone += len(sh.results)
			snap.JobsFailed += sh.failed
			snap.Encryptions += sh.encs
			switch sh.state {
			case ShardDone:
				snap.ShardsDone++
			case ShardLeased:
				snap.ShardsLeased++
			}
		}
	}
	up := s.now().Sub(s.started).Seconds()
	snap.UptimeSeconds = up
	if up > 0 {
		snap.JobsPerSecond = float64(s.resultsIngested) / up
	}
	if snap.JobsPerSecond > 0 && snap.JobsTotal > snap.JobsDone {
		snap.ETASeconds = float64(snap.JobsTotal-snap.JobsDone) / snap.JobsPerSecond
	}
	snap.SuggestedShardSize = s.suggestedShardSizeLocked()
	return snap
}

// statusModel is the template input for the status page.
type statusModel struct {
	Metrics   MetricsSnapshot
	Campaigns []statusCampaign
	Workers   []statusWorker
}

type statusCampaign struct {
	CampaignStatus
	MergeErr string
}

type statusWorker struct {
	ID      string
	AgoSecs float64
	Leases  int
	Results int
}

var statusTmpl = template.Must(template.New("status").Parse(`<!DOCTYPE html>
<html><head><title>campaignd</title>
<style>
body { font-family: monospace; margin: 2em; }
table { border-collapse: collapse; margin: 0.6em 0 1.4em; }
td, th { border: 1px solid #999; padding: 2px 10px; text-align: left; }
th { background: #eee; }
.done { color: #060; } .leased { color: #06c; } .pending { color: #666; }
</style></head><body>
<h2>campaignd — distributed campaign coordinator</h2>
<p>{{.Metrics.Campaigns}} campaigns ({{.Metrics.CampaignsMerged}} merged) ·
{{.Metrics.JobsDone}}/{{.Metrics.JobsTotal}} jobs ({{.Metrics.JobsFailed}} failed) ·
{{printf "%.1f" .Metrics.JobsPerSecond}} jobs/sec ·
{{.Metrics.LeasesActive}} active leases ({{.Metrics.LeasesIssued}} issued, {{.Metrics.Reissues}} re-issued, {{.Metrics.Duplicates}} duplicate results, {{.Metrics.Shed}} shed) ·
{{.Metrics.Workers}} workers seen ·
up {{printf "%.0f" .Metrics.UptimeSeconds}}s ·
<a href="/debug/vars">expvar</a> · <a href="/debug/pprof/">pprof</a></p>
{{range .Campaigns}}
<h3>{{.ID}} — {{.Name}} [{{.State}}] {{.Done}}/{{.Jobs}} jobs{{if .Failed}}, {{.Failed}} failed{{end}}{{if .MergeErr}} — merge error: {{.MergeErr}}{{end}}</h3>
<table><tr><th>shard</th><th>jobs</th><th>state</th><th>worker</th><th>done</th><th>re-issues</th></tr>
{{range .Shards}}<tr><td>{{.Shard}}</td><td>[{{.Start}},{{.End}})</td><td class="{{.State}}">{{.State}}</td><td>{{.Worker}}</td><td>{{.Done}}/{{.Len}}</td><td>{{.Reissues}}</td></tr>
{{end}}</table>
{{else}}<p>No campaigns submitted. POST a spec to /api/v1/campaigns.</p>
{{end}}
{{if .Workers}}<h3>workers</h3>
<table><tr><th>worker</th><th>last seen</th><th>leases</th><th>results</th></tr>
{{range .Workers}}<tr><td>{{.ID}}</td><td>{{printf "%.1f" .AgoSecs}}s ago</td><td>{{.Leases}}</td><td>{{.Results}}</td></tr>
{{end}}</table>{{end}}
</body></html>
`))

// handleStatusPage renders the human-facing shard board.
func (s *Server) handleStatusPage(w http.ResponseWriter, r *http.Request) {
	model := s.statusModel()
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := statusTmpl.Execute(w, model); err != nil {
		s.logf("status page: %v", err)
	}
}

func (s *Server) statusModel() statusModel {
	metrics := s.Metrics()
	s.mu.Lock()
	defer s.mu.Unlock()
	model := statusModel{Metrics: metrics}
	for _, id := range s.order {
		c := s.campaigns[id]
		model.Campaigns = append(model.Campaigns, statusCampaign{
			CampaignStatus: s.statusLocked(c, true),
			MergeErr:       c.mergeErr,
		})
	}
	ids := sortedWorkerIDs(s.workers)
	now := s.now()
	for _, id := range ids {
		wi := s.workers[id]
		model.Workers = append(model.Workers, statusWorker{
			ID:      id,
			AgoSecs: now.Sub(wi.lastSeen).Seconds(),
			Leases:  wi.leases,
			Results: wi.results,
		})
	}
	return model
}

// sortedWorkerIDs lists the worker directory's keys in sorted order.
func sortedWorkerIDs(workers map[string]*workerSeen) []string {
	ids := make([]string, 0, len(workers))
	for id := range workers { //grinchvet:ignore maporder key collection; sorted on the next line
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// String renders the snapshot compactly for logs.
func (m MetricsSnapshot) String() string {
	return fmt.Sprintf("campaigns %d/%d merged, jobs %d/%d (%d failed), leases %d active, %.1f jobs/sec",
		m.CampaignsMerged, m.Campaigns, m.JobsDone, m.JobsTotal, m.JobsFailed, m.LeasesActive, m.JobsPerSecond)
}
