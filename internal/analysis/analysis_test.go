package analysis

import (
	"path/filepath"
	"regexp"
	"testing"
)

// The fixture harness is a hand-rolled analysistest: each package under
// testdata/src is loaded standalone, analyzed, and its findings matched
// against `// want "regexp"` marker comments. A finding matches a want
// on the same file and line whose pattern matches "rule: message";
// unmatched wants and unexpected findings both fail. A comment may
// carry several quoted patterns (`// want "a" "b"`) for lines that
// produce several findings.

var wantRE = regexp.MustCompile(`"([^"]+)"`)
var wantLineRE = regexp.MustCompile(`//\s*want "`)

type wantMark struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func collectWants(t *testing.T, pkg *Package) []*wantMark {
	t.Helper()
	var wants []*wantMark
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !wantLineRE.MatchString(c.Text) {
					continue
				}
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want pattern %q: %v", m[1], err)
					}
					pos := pkg.Fset.Position(c.Pos())
					wants = append(wants, &wantMark{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

func runFixture(t *testing.T, name string, cfg Config) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	w, pkg, err := LoadPackageDir(dir, name)
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, pkg)
	findings := Analyze(w, w.Pkgs, cfg)
	for _, f := range findings {
		matched := false
		for _, want := range wants {
			if !want.hit && want.file == f.File && want.line == f.Line &&
				want.re.MatchString(f.Rule+": "+f.Message) {
				want.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, want := range wants {
		if !want.hit {
			t.Errorf("%s:%d: expected a finding matching %q, got none", want.file, want.line, want.re)
		}
	}
}

func TestLeakTableFixture(t *testing.T) { runFixture(t, "leaktable", Config{}) }

func TestCleanBitslicedFixture(t *testing.T) { runFixture(t, "cleanbits", Config{}) }

func TestSuppressionFixture(t *testing.T) { runFixture(t, "suppress", Config{}) }

func TestSuppressionEdgeFixture(t *testing.T) { runFixture(t, "suppressedge", Config{}) }

func TestGeometryFixture(t *testing.T) {
	runFixture(t, "geom", Config{Quant: true, QuantLineBytes: 1})
}

func TestTaintFlowFixture(t *testing.T) { runFixture(t, "taintflow", Config{}) }

func TestSecretBranchFixture(t *testing.T) { runFixture(t, "branch", Config{}) }

func TestDeterminismFixture(t *testing.T) {
	runFixture(t, "determin", Config{DeterministicPkgs: []string{"determin"}})
}

// TestDeterminismScopedToCore: the same fixture outside the configured
// deterministic core produces nothing.
func TestDeterminismScopedToCore(t *testing.T) {
	w, _, err := LoadPackageDir(filepath.Join("testdata", "src", "determin"), "determin")
	if err != nil {
		t.Fatal(err)
	}
	if fs := Analyze(w, w.Pkgs, Config{}); len(fs) != 0 {
		t.Fatalf("determinism rules fired outside the deterministic core: %v", fs)
	}
}

// TestRuleFilter: Config.Rules restricts emission.
func TestRuleFilter(t *testing.T) {
	w, _, err := LoadPackageDir(filepath.Join("testdata", "src", "branch"), "branch")
	if err != nil {
		t.Fatal(err)
	}
	fs := Analyze(w, w.Pkgs, Config{Rules: []string{"secret-index"}})
	for _, f := range fs {
		if f.Rule != "secret-index" {
			t.Fatalf("rule filter leaked %s", f)
		}
	}
	if len(fs) != 0 {
		t.Fatalf("branch fixture has no secret-index sites, got %v", fs)
	}
}

// TestModuleWideInvariants loads the real module and pins the
// acceptance criteria of the analyzer itself: the table-based S-box
// paths are flagged, the bitsliced implementation and the attack-side
// packages are clean.
func TestModuleWideInvariants(t *testing.T) {
	w, err := LoadModule("../..")
	if err != nil {
		t.Fatal(err)
	}
	findings := Analyze(w, w.Pkgs, Config{DeterministicPkgs: DefaultDeterministicPkgs()})

	perFile := map[string][]Finding{}
	for _, f := range findings {
		rel, err := filepath.Rel(w.Root, f.File)
		if err != nil {
			t.Fatal(err)
		}
		perFile[filepath.ToSlash(rel)] = append(perFile[filepath.ToSlash(rel)], f)
	}

	countRule := func(file, rule string) int {
		n := 0
		for _, f := range perFile[file] {
			if f.Rule == rule {
				n++
			}
		}
		return n
	}

	// The table S-box paths must be flagged.
	if n := countRule("internal/gift/gift64.go", "secret-index"); n < 3 {
		t.Errorf("gift64.go: %d secret-index findings, want ≥ 3 (SubCells64, InvSubCells64, EncryptTraced)", n)
	}
	if n := countRule("internal/gift/gift128.go", "secret-index"); n < 1 {
		t.Errorf("gift128.go: %d secret-index findings, want ≥ 1 (EncryptTraced)", n)
	}
	if n := countRule("internal/present/present.go", "secret-index"); n < 3 {
		t.Errorf("present.go: %d secret-index findings, want ≥ 3 (SubCells, InvSubCells, key schedule)", n)
	}
	if n := countRule("internal/victim/victim.go", "secret-index"); n < 1 {
		t.Errorf("victim.go: %d secret-index findings, want ≥ 1 (Encrypt lookup loop)", n)
	}
	if n := countRule("internal/cofb/cofb.go", "secret-branch"); n < 1 {
		t.Errorf("cofb.go: %d secret-branch findings, want ≥ 1 (GF-doubling carry)", n)
	}

	// The bitsliced implementation must be clean — it is the
	// constant-time countermeasure the flagged paths are compared against.
	if fs := perFile["internal/gift/bitsliced.go"]; len(fs) != 0 {
		t.Errorf("bitsliced.go must be clean, got %v", fs)
	}

	// Attack-side packages operate on attacker-observable data only.
	for _, f := range findings {
		rel, _ := filepath.Rel(w.Root, f.File)
		for _, clean := range []string{"internal/core/", "internal/countermeasure/"} {
			if filepath.ToSlash(rel) != "" && len(rel) > len(clean) && filepath.ToSlash(rel)[:len(clean)] == clean {
				t.Errorf("attack-side file flagged: %s", f)
			}
		}
	}
}
