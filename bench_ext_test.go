package grinch

// Benchmarks for the extensions beyond the paper's own artifacts:
// GIFT-128 and PRESENT attack targets, the GIFT-COFB AEAD, and the
// Evict+Time (time-driven) probing baseline.

import (
	"testing"

	"grinch/internal/bitutil"
	"grinch/internal/cache"
	"grinch/internal/cofb"
	"grinch/internal/core"
	"grinch/internal/oracle"
	"grinch/internal/present"
	"grinch/internal/rng"
)

// BenchmarkExtension_FullRecoveryByCipher measures full-key recovery for
// each table-based target under identical ideal probing, reporting the
// encryption cost (the cross-cipher comparison of EXPERIMENTS.md).
func BenchmarkExtension_FullRecoveryByCipher(b *testing.B) {
	b.Run("GIFT-64", func(b *testing.B) {
		r := rng.New(1)
		var total uint64
		for i := 0; i < b.N; i++ {
			key := bitutil.Word128{Lo: r.Uint64(), Hi: r.Uint64()}
			ch, _ := oracle.New(key, oracle.Config{ProbeRound: 1, Flush: true, LineWords: 1})
			a, _ := core.NewAttacker(ch, core.Config{Seed: r.Uint64()})
			res, err := a.RecoverKey()
			if err != nil || res.Key != key {
				b.Fatal("recovery failed")
			}
			total += res.Encryptions
		}
		b.ReportMetric(float64(total)/float64(b.N), "encryptions/op")
	})
	b.Run("GIFT-128", func(b *testing.B) {
		r := rng.New(2)
		var total uint64
		for i := 0; i < b.N; i++ {
			key := bitutil.Word128{Lo: r.Uint64(), Hi: r.Uint64()}
			ch, _ := oracle.New128(key, oracle.Config{ProbeRound: 1, Flush: true, LineWords: 1})
			a, _ := core.NewAttacker128(ch, core.Config{Seed: r.Uint64()})
			res, err := a.RecoverKey128()
			if err != nil || res.Key != key {
				b.Fatal("recovery failed")
			}
			total += res.Encryptions
		}
		b.ReportMetric(float64(total)/float64(b.N), "encryptions/op")
	})
	b.Run("PRESENT-80", func(b *testing.B) {
		r := rng.New(3)
		var total uint64
		for i := 0; i < b.N; i++ {
			var key [10]byte
			lo, hi := r.Uint64(), r.Uint64()
			key[0], key[1] = byte(hi>>8), byte(hi)
			for j := 0; j < 8; j++ {
				key[2+j] = byte(lo >> (56 - 8*uint(j)))
			}
			c := present.NewCipher80(key)
			ch, _ := oracle.NewPresent(c, oracle.Config{ProbeRound: 1, Flush: true, LineWords: 1})
			a, _ := core.NewAttackerP(ch, core.Config{Seed: r.Uint64()})
			res, err := a.RecoverKey80()
			if err != nil || res.Key != key {
				b.Fatal("recovery failed")
			}
			total += res.Encryptions
		}
		b.ReportMetric(float64(total)/float64(b.N), "encryptions/op")
	})
}

// BenchmarkAblation_ProbeChannel compares the access-driven channel
// (Flush+Reload) with the time-driven baseline (Evict+Time) at the
// attack level: same elimination, 16x less information per encryption.
func BenchmarkAblation_ProbeChannel(b *testing.B) {
	for _, mode := range []struct {
		name string
		m    oracle.ProbeMode
	}{{"FlushReload", oracle.ProbeFlushReload}, {"EvictTime", oracle.ProbeEvictTime}} {
		b.Run(mode.name, func(b *testing.B) {
			r := rng.New(4)
			var total uint64
			for i := 0; i < b.N; i++ {
				key := bitutil.Word128{Lo: r.Uint64(), Hi: r.Uint64()}
				ch, _ := oracle.New(key, oracle.Config{ProbeRound: 1, Flush: true, LineWords: 1, Probe: mode.m})
				a, _ := core.NewAttacker(ch, core.Config{Seed: r.Uint64()})
				out, err := a.AttackRound(1, nil, nil)
				if err != nil {
					b.Fatal(err)
				}
				total += out.Encryptions
			}
			b.ReportMetric(float64(total)/float64(b.N), "encryptions/op")
		})
	}
}

// BenchmarkCOFB measures the AEAD built on GIFT-128.
func BenchmarkCOFB(b *testing.B) {
	key := [16]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	a := cofb.New(key)
	var nonce [cofb.NonceSize]byte
	b.Run("Seal64B", func(b *testing.B) {
		pt := make([]byte, 64)
		b.SetBytes(64)
		for i := 0; i < b.N; i++ {
			nonce[0] = byte(i)
			_ = a.Seal(nil, nonce, pt, nil)
		}
	})
	b.Run("Seal1KiB", func(b *testing.B) {
		pt := make([]byte, 1024)
		b.SetBytes(1024)
		for i := 0; i < b.N; i++ {
			nonce[0] = byte(i)
			_ = a.Seal(nil, nonce, pt, nil)
		}
	})
	b.Run("Open64B", func(b *testing.B) {
		pt := make([]byte, 64)
		ct := a.Seal(nil, nonce, pt, nil)
		b.SetBytes(64)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := a.Open(nil, nonce, ct, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtension_AEADKeyRecovery is the flagship extension: full
// key recovery against GIFT-COFB through chosen nonces.
func BenchmarkExtension_AEADKeyRecovery(b *testing.B) {
	r := rng.New(6)
	var total uint64
	for i := 0; i < b.N; i++ {
		key := bitutil.Word128{Lo: r.Uint64(), Hi: r.Uint64()}
		aead := cofb.NewFromWord(key)
		ch, _ := oracle.New128FromTracer(aead, oracle.Config{ProbeRound: 1, Flush: true, LineWords: 1})
		a, _ := core.NewAttacker128(ch, core.Config{Seed: r.Uint64()})
		res, err := a.RecoverKey128()
		if err != nil || res.Key != key {
			b.Fatal("AEAD key recovery failed")
		}
		total += res.Encryptions
	}
	b.ReportMetric(float64(total)/float64(b.N), "sealed_nonces/op")
}

// BenchmarkPresentThroughput compares the comparison cipher's raw speed
// with GIFT's (see BenchmarkAblation_Bitsliced for the GIFT numbers).
func BenchmarkPresentThroughput(b *testing.B) {
	var key [10]byte
	c := present.NewCipher80(key)
	b.Run("PRESENT-80", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = c.EncryptBlock(uint64(i))
		}
	})
}

// BenchmarkExtension_HierarchyAttack measures the attack through a
// two-level hierarchy with an inclusive shared L2 (the paper's
// future-work configuration where the attack still works).
func BenchmarkExtension_HierarchyAttack(b *testing.B) {
	r := rng.New(8)
	var total uint64
	for i := 0; i < b.N; i++ {
		key := bitutil.Word128{Lo: r.Uint64(), Hi: r.Uint64()}
		h, err := cache.NewHierarchy(
			cache.Config{Sets: 16, Ways: 2, LineBytes: 1, HitLatency: 1, MissLatency: 0, FlushLatency: 1},
			cache.PaperConfig(1), true, 100)
		if err != nil {
			b.Fatal(err)
		}
		ch, err := oracle.NewHierarchyChannel(key, oracle.Config{ProbeRound: 1, Flush: true, LineWords: 1}, h, 0x1000)
		if err != nil {
			b.Fatal(err)
		}
		a, err := core.NewAttacker(ch, core.Config{Seed: r.Uint64(), TotalBudget: 100_000})
		if err != nil {
			b.Fatal(err)
		}
		res, err := a.RecoverKey()
		if err != nil || res.Key != key {
			b.Fatal("hierarchy recovery failed")
		}
		total += res.Encryptions
	}
	b.ReportMetric(float64(total)/float64(b.N), "encryptions/op")
}
