package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: grinch
cpu: AMD EPYC 7B13
BenchmarkAttackNilTracer-8   	     100	  12345678 ns/op	      4567 encryptions/op
BenchmarkTable1/flush_w1-8   	       3	 987654321 ns/op	    100000 encryptions/op	 128 B/op	       2 allocs/op
some test log line
PASS
ok  	grinch	1.234s
pkg: grinch/internal/experiments
BenchmarkTable1Campaign/serial-8 	       3	 111222333 ns/op
ok  	grinch/internal/experiments	0.5s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" || doc.CPU != "AMD EPYC 7B13" {
		t.Fatalf("headers: %+v", doc)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkAttackNilTracer" || b.Procs != 8 || b.Runs != 100 || b.Pkg != "grinch" {
		t.Fatalf("first benchmark: %+v", b)
	}
	if b.Metrics["ns/op"] != 12345678 || b.Metrics["encryptions/op"] != 4567 {
		t.Fatalf("first metrics: %+v", b.Metrics)
	}
	sub := doc.Benchmarks[1]
	if sub.Name != "BenchmarkTable1/flush_w1" || len(sub.Metrics) != 4 {
		t.Fatalf("sub-benchmark: %+v", sub)
	}
	if doc.Benchmarks[2].Pkg != "grinch/internal/experiments" {
		t.Fatalf("pkg header did not switch: %+v", doc.Benchmarks[2])
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkNoFields",
		"Benchmark-8 abc 1 ns/op",
		"BenchmarkOdd-8 3 12 ns/op trailing",
		"BenchmarkBadValue-8 3 twelve ns/op",
	} {
		if _, ok := parseResult(line); ok {
			t.Errorf("parseResult accepted %q", line)
		}
	}
}
