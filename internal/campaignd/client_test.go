package campaignd_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"grinch/internal/campaignd"
)

// fastPolicy is a retry policy with sub-millisecond backoff so retry
// tests run in microseconds of wall sleep.
func fastPolicy() campaignd.RetryPolicy {
	return campaignd.RetryPolicy{
		Base: 100 * time.Microsecond,
		Max:  time.Millisecond,
		Seed: 7,
	}
}

// scriptServer serves a scripted status sequence (the last entry
// repeats) and counts requests.
func scriptServer(t *testing.T, statuses ...int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i := int(n.Add(1)) - 1
		if i >= len(statuses) {
			i = len(statuses) - 1
		}
		status := statuses[i]
		if status == http.StatusOK {
			w.Write([]byte(`{}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write([]byte(`{"error":"scripted failure"}`))
	}))
	t.Cleanup(ts.Close)
	return ts, &n
}

// TestClientRetriesTransient proves the resilience layer: two scripted
// 500s, then success — the call succeeds and the OnRetry hook saw both
// backoffs.
func TestClientRetriesTransient(t *testing.T) {
	ts, n := scriptServer(t, 500, 503, 200)
	pol := fastPolicy()
	var retries []int
	c := &campaignd.Client{Base: ts.URL, Retry: &pol,
		OnRetry: func(class string, attempt int, wait time.Duration, err error) {
			if class != campaignd.ClassReport {
				t.Errorf("OnRetry class %q, want report", class)
			}
			retries = append(retries, attempt)
		}}
	if err := c.Report("lease-x", nil); err != nil {
		t.Fatalf("Report after two transient failures: %v", err)
	}
	if n.Load() != 3 {
		t.Fatalf("server saw %d requests, want 3", n.Load())
	}
	if len(retries) != 2 || retries[0] != 1 || retries[1] != 2 {
		t.Fatalf("OnRetry attempts %v, want [1 2]", retries)
	}
}

// TestClientHonorsRetryAfter pins the overload-shedding handshake: a
// 429 with Retry-After floors the backoff at the server's hint (capped
// by the policy Max).
func TestClientHonorsRetryAfter(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"ingest overloaded"}`))
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	pol := fastPolicy()
	pol.Max = 30 * time.Millisecond // cap the 1s hint so the test stays fast
	var waits []time.Duration
	c := &campaignd.Client{Base: ts.URL, Retry: &pol,
		OnRetry: func(_ string, _ int, wait time.Duration, _ error) { waits = append(waits, wait) }}
	if err := c.Heartbeat("lease-x"); err != nil {
		t.Fatalf("heartbeat through one 429: %v", err)
	}
	if len(waits) != 1 {
		t.Fatalf("%d retries, want 1", len(waits))
	}
	// Base backoff would be ~100µs; the Retry-After floor must push the
	// wait to Max (30ms) plus up to 50% jitter.
	if waits[0] < 30*time.Millisecond || waits[0] > 45*time.Millisecond {
		t.Errorf("backoff %s ignored the Retry-After floor (want 30ms..45ms)", waits[0])
	}
}

// TestClientLeaseGoneNotRetried: 410 means the lease is dead and can
// never come back — retrying would only delay the worker re-leasing.
func TestClientLeaseGoneNotRetried(t *testing.T) {
	ts, n := scriptServer(t, http.StatusGone)
	pol := fastPolicy()
	c := &campaignd.Client{Base: ts.URL, Retry: &pol}
	if err := c.Heartbeat("stale"); !errors.Is(err, campaignd.ErrLeaseGone) {
		t.Fatalf("err = %v, want ErrLeaseGone", err)
	}
	if n.Load() != 1 {
		t.Fatalf("server saw %d requests; a revoked lease must not be retried", n.Load())
	}
}

// TestClientTerminalClientError: a 4xx (other than 410/429) is the
// caller's bug; retrying cannot fix it.
func TestClientTerminalClientError(t *testing.T) {
	ts, n := scriptServer(t, http.StatusBadRequest)
	pol := fastPolicy()
	c := &campaignd.Client{Base: ts.URL, Retry: &pol}
	err := c.Report("lease-x", nil)
	if err == nil || !strings.Contains(err.Error(), "scripted failure") {
		t.Fatalf("err = %v, want the server's message, untried", err)
	}
	if n.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1", n.Load())
	}
}

// TestClientBudgetExhausted: a persistent outage burns the class
// budget and reports how hard it tried.
func TestClientBudgetExhausted(t *testing.T) {
	ts, n := scriptServer(t, http.StatusServiceUnavailable)
	pol := fastPolicy()
	pol.Report = 3
	c := &campaignd.Client{Base: ts.URL, Retry: &pol}
	err := c.Report("lease-x", nil)
	if err == nil || !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("err = %v, want a 3-attempt budget exhaustion", err)
	}
	if n.Load() != 3 {
		t.Fatalf("server saw %d requests, want exactly the budget", n.Load())
	}
}

// TestClientNoRetryPolicyIsSingleShot pins the legacy posture the
// chaos layer replaced: one attempt, first transient failure surfaces.
func TestClientNoRetryPolicyIsSingleShot(t *testing.T) {
	ts, n := scriptServer(t, http.StatusServiceUnavailable, http.StatusOK)
	pol := campaignd.NoRetryPolicy()
	c := &campaignd.Client{Base: ts.URL, Retry: &pol}
	if err := c.Report("lease-x", nil); err == nil {
		t.Fatal("single-shot policy retried through a 503")
	}
	if n.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1", n.Load())
	}
}

// TestClientBackoffDeterminism: same seed, same failure script → the
// same backoff schedule, replayable across client instances.
func TestClientBackoffDeterminism(t *testing.T) {
	schedule := func(seed uint64) []time.Duration {
		ts, _ := scriptServer(t, http.StatusServiceUnavailable)
		pol := fastPolicy()
		pol.Seed = seed
		pol.Report = 4
		var waits []time.Duration
		var mu sync.Mutex
		c := &campaignd.Client{Base: ts.URL, Retry: &pol,
			OnRetry: func(_ string, _ int, wait time.Duration, _ error) {
				mu.Lock()
				waits = append(waits, wait)
				mu.Unlock()
			}}
		c.Report("lease-x", nil)
		return waits
	}
	a, b := schedule(12345), schedule(12345)
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("schedules %v / %v, want 3 waits each", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at backoff %d: %s vs %s", i, a[i], b[i])
		}
	}
}

// TestClientPerAttemptTimeout: a stalled coordinator cannot hang a
// call past its per-attempt deadline (the pre-hardening client used
// http.DefaultClient and hung forever).
func TestClientPerAttemptTimeout(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // stall until the test ends
	}))
	defer ts.Close()
	// Unblock the handler before ts.Close() waits on it (defers are LIFO).
	defer close(release)

	pol := campaignd.NoRetryPolicy()
	pol.CallTimeout = 20 * time.Millisecond
	c := &campaignd.Client{Base: ts.URL, Retry: &pol}
	start := time.Now()
	err := c.Heartbeat("lease-x")
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want a deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %s; the deadline did not bound the attempt", elapsed)
	}
}
