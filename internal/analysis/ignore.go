package analysis

import "strings"

// The //grinchvet:ignore directive waives findings at one site:
//
//	//grinchvet:ignore <rule> [free-form reason]
//	//grinchvet:ignore <rule>,<rule2> [reason]
//
// Placed on the offending line (trailing comment) or on the line
// immediately above it, it suppresses findings of the named rules on
// that line. The reason is encouraged — it is the reviewable record of
// why a wall-clock read or a secret-dependent branch is acceptable.
const ignoreDirective = "grinchvet:ignore"

// collectIgnores indexes every ignore directive of a package into
// w.ignores: file -> line -> suppressed rules. A directive on its own
// line suppresses the following line; a trailing directive suppresses
// its own line. Both are recorded (a directive line produces no
// findings itself, so the extra entry is harmless).
func collectIgnores(w *World, pkg *Package) {
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				rest := strings.TrimPrefix(text, ignoreDirective)
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				rules := strings.Split(fields[0], ",")
				pos := pkg.Fset.Position(c.Pos())
				m := w.ignores[pos.Filename]
				if m == nil {
					m = map[int][]string{}
					w.ignores[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], rules...)
				m[pos.Line+1] = append(m[pos.Line+1], rules...)
			}
		}
	}
}

// suppressed reports whether a finding is waived by an ignore directive
// on its line or the line above.
func (w *World) suppressed(f Finding) bool {
	m := w.ignores[f.File]
	if m == nil {
		return false
	}
	for _, r := range m[f.Line] {
		if r == f.Rule || r == "all" {
			return true
		}
	}
	return false
}
