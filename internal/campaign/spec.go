package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"

	"grinch/internal/faults"
)

// Spec declares a campaign: an experiment kind, a reproducibility seed,
// a per-cell trial count, and the swept parameter axes. The grid is the
// cross product of the non-empty axes; empty axes are not swept and
// contribute a single zero value. Specs serialize to JSON for
// cmd/campaign input files and journal fingerprinting.
type Spec struct {
	Name   string `json:"name"`
	Kind   string `json:"kind"`
	Seed   uint64 `json:"seed"`
	Trials int    `json:"trials,omitempty"`
	Budget uint64 `json:"budget,omitempty"`

	Platforms   []string `json:"platforms,omitempty"`
	MHz         []uint64 `json:"mhz,omitempty"`
	LineWords   []int    `json:"line_words,omitempty"`
	Flush       []bool   `json:"flush,omitempty"`
	ProbeRounds []int    `json:"probe_rounds,omitempty"`

	// FaultPlans is the structured-fault axis (internal/faults): each
	// named plan becomes one grid coordinate, so a single spec sweeps a
	// robustness curve — e.g. the same attack under increasing burst
	// intensity. Empty means no fault injection (a single unfaulted
	// coordinate).
	FaultPlans []faults.Plan `json:"fault_plans,omitempty"`
	// Retry, when set, gives every job's attack core a bounded
	// transient-failure retry policy. A pointer so older specs (and
	// their journal fingerprints) are unaffected.
	Retry *RetrySpec `json:"retry,omitempty"`
	// DeadlinePS bounds each job's simulated clock (channel virtual
	// time plus retry backoff) in picoseconds; 0 means no deadline.
	DeadlinePS uint64 `json:"deadline_ps,omitempty"`
	// ScalarPath runs every job on the attack core's scalar reference
	// pipeline instead of the batched one (see Job.ScalarPath). Omitted
	// from serialized specs when false, so existing journals keep their
	// fingerprints.
	ScalarPath bool `json:"scalar_path,omitempty"`
}

// RetrySpec is the job-level retry policy: how many times a transient
// channel failure is retried per observation and the simulated backoff
// charged before the first retry (doubling per attempt).
type RetrySpec struct {
	Attempts  int    `json:"attempts"`
	BackoffPS uint64 `json:"backoff_ps,omitempty"`
}

// Validate rejects specs the runner cannot expand meaningfully.
func (s Spec) Validate() error {
	if s.Kind == "" {
		return fmt.Errorf("campaign: spec %q has no kind", s.Name)
	}
	if s.Trials < 0 {
		return fmt.Errorf("campaign: spec %q has negative trials", s.Name)
	}
	if s.Retry != nil && s.Retry.Attempts < 0 {
		return fmt.Errorf("campaign: spec %q has negative retry attempts", s.Name)
	}
	seen := map[string]bool{}
	for i, p := range s.FaultPlans {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("campaign: spec %q fault plan %d: %w", s.Name, i, err)
		}
		if p.Name == "" {
			return fmt.Errorf("campaign: spec %q fault plan %d needs a name (plans are grid-axis values)", s.Name, i)
		}
		if seen[p.Name] {
			return fmt.Errorf("campaign: spec %q has duplicate fault plan name %q", s.Name, p.Name)
		}
		seen[p.Name] = true
	}
	return nil
}

// normalized fills defaults: at least one trial per cell.
func (s Spec) normalized() Spec {
	if s.Trials == 0 {
		s.Trials = 1
	}
	return s
}

// NumJobs returns the size of the expanded grid.
func (s Spec) NumJobs() int {
	s = s.normalized()
	return axisLen(len(s.Platforms)) * axisLen(len(s.MHz)) *
		axisLen(len(s.LineWords)) * axisLen(len(s.Flush)) *
		axisLen(len(s.ProbeRounds)) * axisLen(len(s.FaultPlans)) * s.Trials
}

func axisLen(n int) int {
	if n == 0 {
		return 1
	}
	return n
}

// Jobs expands the spec into its job list in canonical order: platforms
// outermost, then clocks, line sizes, flush, probe rounds, fault plans,
// and trials innermost. The order — and therefore every job's Index and
// Seed — is a pure function of the spec, which is what makes journals
// reusable and results independent of scheduling.
func (s Spec) Jobs() []Job {
	s = s.normalized()
	platforms := s.Platforms
	if len(platforms) == 0 {
		platforms = []string{""}
	}
	mhz := s.MHz
	if len(mhz) == 0 {
		mhz = []uint64{0}
	}
	lineWords := s.LineWords
	if len(lineWords) == 0 {
		lineWords = []int{0}
	}
	flush := s.Flush
	if len(flush) == 0 {
		flush = []bool{false}
	}
	probeRounds := s.ProbeRounds
	if len(probeRounds) == 0 {
		probeRounds = []int{0}
	}
	plans := s.FaultPlans
	if len(plans) == 0 {
		plans = []faults.Plan{{}}
	}
	var retry RetrySpec
	if s.Retry != nil {
		retry = *s.Retry
	}

	jobs := make([]Job, 0, s.NumJobs())
	idx := 0
	for _, pl := range platforms {
		for _, f := range mhz {
			for _, lw := range lineWords {
				for _, fl := range flush {
					for _, pr := range probeRounds {
						for _, plan := range plans {
							for t := 0; t < s.Trials; t++ {
								jobs = append(jobs, Job{
									Index: idx,
									Point: Point{
										Kind:       s.Kind,
										Platform:   pl,
										MHz:        f,
										LineWords:  lw,
										Flush:      fl,
										ProbeRound: pr,
										Fault:      plan.Name,
										Trial:      t,
									},
									Seed:       DeriveSeed(s.Seed, idx),
									Budget:     s.Budget,
									FaultPlan:  plan,
									Retry:      retry,
									DeadlinePS: s.DeadlinePS,
									ScalarPath: s.ScalarPath,
								})
								idx++
							}
						}
					}
				}
			}
		}
	}
	return jobs
}

// Fingerprint returns a short stable hash of the spec's canonical JSON.
// The journal stores it so a resume against a journal written for a
// different campaign fails loudly instead of silently skipping the
// wrong jobs.
func (s Spec) Fingerprint() string {
	b, err := json.Marshal(s.normalized())
	if err != nil {
		// Spec is a plain data struct; Marshal cannot fail on it.
		panic(err)
	}
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// ParseSpec decodes a JSON spec, rejecting unknown fields so a typo in
// an axis name ("probe_round" for "probe_rounds") cannot silently
// collapse a sweep to a single cell.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("campaign: parsing spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}
