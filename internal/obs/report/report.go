// Package report folds raw event traces (internal/obs) into human- and
// spreadsheet-readable views: per-segment convergence tables and
// Fig. 3-style convergence curves, as ASCII or CSV. It is a pure
// function of the event stream — rendering a trace twice produces
// byte-identical output.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"

	"grinch/internal/obs"
)

// SegmentKey identifies one elimination: a campaign job attacking one
// segment of one round key of one cipher.
type SegmentKey struct {
	Job     int
	Cipher  string
	Round   int
	Segment int
}

func (k SegmentKey) String() string {
	c := k.Cipher
	if c == "" {
		c = "?"
	}
	return fmt.Sprintf("job %d %s r%d g%d", k.Job, c, k.Round, k.Segment)
}

// Point is one step of a segment's convergence trajectory.
type Point struct {
	// Enc is the channel's encryption counter at the observation.
	Enc uint64
	// Observations is the elimination's observation count.
	Observations uint64
	// Survivors is the candidate-line count after the observation.
	Survivors int
	// EntropyBits is the residual uncertainty, log2(Survivors).
	EntropyBits float64
}

// Segment is one elimination's folded trajectory.
type Segment struct {
	Key SegmentKey
	// Curve is the survivor trajectory in observation order.
	Curve []Point
	// Recovered is set when a segment_recovered event closed the
	// elimination; Line is the recovered table line.
	Recovered bool
	Line      int
	// Encryptions spans the elimination: last minus first encryption
	// counter seen, plus one.
	Encryptions uint64
}

// Fold groups a trace's candidate_update and segment_recovered events
// by segment, in first-appearance order (which is deterministic: traces
// are written in job-index order and, within a job, emission order).
func Fold(events []obs.Event) []Segment {
	index := map[SegmentKey]int{}
	var segs []Segment
	get := func(k SegmentKey) *Segment {
		i, ok := index[k]
		if !ok {
			i = len(segs)
			index[k] = i
			segs = append(segs, Segment{Key: k})
		}
		return &segs[i]
	}
	for _, e := range events {
		k := SegmentKey{Job: e.Job, Cipher: e.Cipher, Round: e.Round, Segment: e.Segment}
		switch e.Kind {
		case obs.KindCandidateUpdate:
			s := get(k)
			s.Curve = append(s.Curve, Point{
				Enc:          e.Enc,
				Observations: e.Observations,
				Survivors:    e.Survivors,
				EntropyBits:  e.EntropyBits,
			})
		case obs.KindSegmentRecovered:
			s := get(k)
			s.Recovered = true
			s.Line = e.Line
		}
	}
	for i := range segs {
		if c := segs[i].Curve; len(c) > 0 {
			segs[i].Encryptions = c[len(c)-1].Enc - c[0].Enc + 1
		}
	}
	return segs
}

// WriteTable renders the per-segment convergence table: one row per
// elimination with its observation count, encryption span, final
// survivor count and recovered line.
func WriteTable(w io.Writer, segs []Segment) error {
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "JOB\tCIPHER\tROUND\tSEG\tOBS\tENC\tSURVIVORS\tENTROPY\tLINE")
	for _, s := range segs {
		obsN, surv, ent := uint64(0), -1, 0.0
		if n := len(s.Curve); n > 0 {
			last := s.Curve[n-1]
			obsN, surv, ent = last.Observations, last.Survivors, last.EntropyBits
		}
		line := "-"
		if s.Recovered {
			line = strconv.Itoa(s.Line)
		}
		fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%d\t%d\t%d\t%.2f\t%s\n",
			s.Key.Job, s.Key.Cipher, s.Key.Round, s.Key.Segment,
			obsN, s.Encryptions, surv, ent, line)
	}
	return tw.Flush()
}

// WriteCurveCSV renders every segment's trajectory as flat CSV rows
// (job, cipher, round, segment, enc, observations, survivors,
// entropy_bits) for plotting — the Fig. 3-style convergence data.
func WriteCurveCSV(w io.Writer, segs []Segment) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"job", "cipher", "round", "segment",
		"enc", "observations", "survivors", "entropy_bits",
	}); err != nil {
		return err
	}
	for _, s := range segs {
		for _, p := range s.Curve {
			if err := cw.Write([]string{
				strconv.Itoa(s.Key.Job), s.Key.Cipher,
				strconv.Itoa(s.Key.Round), strconv.Itoa(s.Key.Segment),
				strconv.FormatUint(p.Enc, 10),
				strconv.FormatUint(p.Observations, 10),
				strconv.Itoa(p.Survivors),
				strconv.FormatFloat(p.EntropyBits, 'f', -1, 64),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// curveWidth and curveHeight bound the ASCII plot grid.
const (
	curveWidth  = 64
	curveHeight = 8
)

// WriteCurveASCII renders one segment's survivor trajectory as a small
// ASCII plot: x = observation index (compressed into curveWidth
// columns), y = surviving candidates. The terminal companion to the
// paper's Fig. 3 convergence behaviour.
func WriteCurveASCII(w io.Writer, s Segment) error {
	if len(s.Curve) == 0 {
		_, err := fmt.Fprintf(w, "%s: no candidate updates\n", s.Key)
		return err
	}
	maxS := 0
	for _, p := range s.Curve {
		if p.Survivors > maxS {
			maxS = p.Survivors
		}
	}
	if maxS == 0 {
		maxS = 1
	}
	width := len(s.Curve)
	if width > curveWidth {
		width = curveWidth
	}
	// grid[y][x]: y = 0 is the top row (maxS survivors).
	grid := make([][]byte, curveHeight)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(" ", width))
	}
	for x := 0; x < width; x++ {
		// Sample the curve at the column's observation index.
		i := x * (len(s.Curve) - 1) / maxInt(width-1, 1)
		surv := s.Curve[i].Survivors
		y := (curveHeight - 1) - surv*(curveHeight-1)/maxS
		grid[y][x] = '*'
	}
	status := "open"
	if s.Recovered {
		status = fmt.Sprintf("recovered line %d", s.Line)
	}
	last := s.Curve[len(s.Curve)-1]
	if _, err := fmt.Fprintf(w, "%s: %d obs, %d enc, %s\n",
		s.Key, last.Observations, s.Encryptions, status); err != nil {
		return err
	}
	for y, row := range grid {
		label := "  "
		switch y {
		case 0:
			label = fmt.Sprintf("%2d", maxS)
		case curveHeight - 1:
			label = " 0"
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "   +%s> obs 1..%d\n", strings.Repeat("-", width), last.Observations)
	return err
}

// WriteCurves renders every segment's ASCII curve, separated by blank
// lines.
func WriteCurves(w io.Writer, segs []Segment) error {
	for i, s := range segs {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if err := WriteCurveASCII(w, s); err != nil {
			return err
		}
	}
	return nil
}

// CacheSummary aggregates the final cache_snapshot per job.
type CacheSummary struct {
	Job                                            int
	Hits, Misses, Evictions, Flushes, FlushedLines uint64
}

// FoldCache extracts the last cache_snapshot of every job (snapshots
// are cumulative, so the last one is the job's total), in ascending job
// order.
func FoldCache(events []obs.Event) []CacheSummary {
	last := map[int]CacheSummary{}
	var jobs []int
	for _, e := range events {
		if e.Kind != obs.KindCacheSnapshot {
			continue
		}
		if _, seen := last[e.Job]; !seen {
			jobs = append(jobs, e.Job)
		}
		last[e.Job] = CacheSummary{
			Job: e.Job, Hits: e.Hits, Misses: e.Misses,
			Evictions: e.Evictions, Flushes: e.Flushes, FlushedLines: e.FlushedLines,
		}
	}
	sort.Ints(jobs)
	out := make([]CacheSummary, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, last[j])
	}
	return out
}

// WriteCacheTable renders the per-job cache-activity totals.
func WriteCacheTable(w io.Writer, sums []CacheSummary) error {
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "JOB\tHITS\tMISSES\tEVICTIONS\tFLUSHES\tFLUSHED_LINES")
	for _, s := range sums {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\n",
			s.Job, s.Hits, s.Misses, s.Evictions, s.Flushes, s.FlushedLines)
	}
	return tw.Flush()
}

// FaultSummary aggregates one job's injected faults and the recovery
// actions the attack core took in response (retries, restarts).
type FaultSummary struct {
	Job int
	// Injected counts fault_injected events by fault kind.
	Injected map[string]uint64
	// Retries counts retry events; BackoffPS totals their simulated
	// backoff wait.
	Retries   uint64
	BackoffPS uint64
	// Restarts counts target_restarted events; FinalThreshold is the
	// relaxed threshold of the last restart (0 when never restarted).
	Restarts       uint64
	FinalThreshold float64
}

// FoldFaults aggregates fault_injected, retry and target_restarted
// events per job, in ascending job order. Traces without fault activity
// fold to an empty slice.
func FoldFaults(events []obs.Event) []FaultSummary {
	sums := map[int]*FaultSummary{}
	var jobs []int
	get := func(job int) *FaultSummary {
		s, ok := sums[job]
		if !ok {
			s = &FaultSummary{Job: job, Injected: map[string]uint64{}}
			sums[job] = s
			jobs = append(jobs, job)
		}
		return s
	}
	for _, e := range events {
		switch e.Kind {
		case obs.KindFaultInjected:
			get(e.Job).Injected[e.Fault]++
		case obs.KindRetry:
			s := get(e.Job)
			s.Retries++
			s.BackoffPS += e.SimPS
		case obs.KindTargetRestarted:
			s := get(e.Job)
			s.Restarts++
			s.FinalThreshold = e.Threshold
		}
	}
	sort.Ints(jobs)
	out := make([]FaultSummary, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, *sums[j])
	}
	return out
}

// WriteFaultTable renders the per-job fault and recovery totals. Fault
// kinds become columns, in sorted order over the kinds the trace
// actually contains, so the table is a pure function of the trace.
func WriteFaultTable(w io.Writer, sums []FaultSummary) error {
	kindSet := map[string]bool{}
	for _, s := range sums {
		for k := range s.Injected {
			kindSet[k] = true
		}
	}
	kinds := make([]string, 0, len(kindSet))
	for k := range kindSet {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)

	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	header := "JOB"
	for _, k := range kinds {
		header += "\t" + strings.ToUpper(k)
	}
	fmt.Fprintln(tw, header+"\tRETRIES\tBACKOFF_PS\tRESTARTS\tTHRESHOLD")
	for _, s := range sums {
		row := strconv.Itoa(s.Job)
		for _, k := range kinds {
			row += "\t" + strconv.FormatUint(s.Injected[k], 10)
		}
		threshold := "-"
		if s.Restarts > 0 {
			threshold = strconv.FormatFloat(s.FinalThreshold, 'g', 4, 64)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%s\n",
			row, s.Retries, s.BackoffPS, s.Restarts, threshold)
	}
	return tw.Flush()
}

// MetricsSummary rolls one job's trace up into the fleet-metric
// vocabulary (DESIGN.md §14): the same totals the live registries
// export as grinch_attack_* / grinch_probe_* series, recovered here
// from the recorded events so an offline trace and a scraped /metrics
// endpoint can be cross-checked.
type MetricsSummary struct {
	Job int
	// Encryptions counts encryption_start events (victim work).
	Encryptions uint64
	// Probes counts probe_observation events (channel reads).
	Probes uint64
	// Observations counts candidate_update events (attack decisions).
	Observations uint64
	// Segments counts distinct (cipher, round, segment) eliminations;
	// Recovered counts those closed by a segment_recovered event.
	Segments  int
	Recovered int
	// Retries, Restarts and Faults mirror the fault-recovery counters.
	Retries  uint64
	Restarts uint64
	Faults   uint64
}

// FoldMetrics rolls a trace up per job, in ascending job order.
func FoldMetrics(events []obs.Event) []MetricsSummary {
	sums := map[int]*MetricsSummary{}
	segs := map[int]map[SegmentKey]bool{}
	var jobs []int
	get := func(job int) *MetricsSummary {
		s, ok := sums[job]
		if !ok {
			s = &MetricsSummary{Job: job}
			sums[job] = s
			segs[job] = map[SegmentKey]bool{}
			jobs = append(jobs, job)
		}
		return s
	}
	for _, e := range events {
		switch e.Kind {
		case obs.KindEncryptionStart:
			get(e.Job).Encryptions++
		case obs.KindProbeObservation:
			get(e.Job).Probes++
		case obs.KindCandidateUpdate:
			s := get(e.Job)
			s.Observations++
			k := SegmentKey{Job: e.Job, Cipher: e.Cipher, Round: e.Round, Segment: e.Segment}
			if !segs[e.Job][k] {
				segs[e.Job][k] = true
				s.Segments++
			}
		case obs.KindSegmentRecovered:
			s := get(e.Job)
			k := SegmentKey{Job: e.Job, Cipher: e.Cipher, Round: e.Round, Segment: e.Segment}
			if !segs[e.Job][k] {
				segs[e.Job][k] = true
				s.Segments++
			}
			s.Recovered++
		case obs.KindRetry:
			get(e.Job).Retries++
		case obs.KindTargetRestarted:
			get(e.Job).Restarts++
		case obs.KindFaultInjected:
			get(e.Job).Faults++
		}
	}
	sort.Ints(jobs)
	out := make([]MetricsSummary, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, *sums[j])
	}
	return out
}

// WriteMetricsTable renders the per-job metric rollup.
func WriteMetricsTable(w io.Writer, sums []MetricsSummary) error {
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "JOB\tENC\tPROBES\tOBS\tSEGMENTS\tRECOVERED\tRETRIES\tRESTARTS\tFAULTS")
	for _, s := range sums {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			s.Job, s.Encryptions, s.Probes, s.Observations,
			s.Segments, s.Recovered, s.Retries, s.Restarts, s.Faults)
	}
	return tw.Flush()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
