// Package branch is a grinchvet fixture for secret-dependent control
// flow: if, switch and for conditions on tainted data.
package branch

// IfOnSecret branches on key-derived data — the GF-doubling pattern.
//
//grinch:secret d
func IfOnSecret(d uint64) uint64 {
	carry := d >> 63
	d <<= 1
	if carry != 0 { // want "secret-branch"
		d ^= 0x1b
	}
	return d
}

// SwitchOnSecret switches on a secret nibble.
//
//grinch:secret s
func SwitchOnSecret(s uint64) int {
	switch s & 0xf { // want "secret-branch"
	case 0:
		return 1
	default:
		return 0
	}
}

// LoopOnSecret loops while secret bits remain.
//
//grinch:secret s
func LoopOnSecret(s uint64) int {
	n := 0
	for s != 0 { // want "secret-branch"
		s &= s - 1
		n++
	}
	return n
}

// ErrIsPublic: the error of a call with secret arguments is control
// metadata, not key material.
//
//grinch:secret key
func ErrIsPublic(key uint64) uint64 {
	v, err := build(key)
	if err != nil {
		return 0
	}
	return v
}

func build(k uint64) (uint64, error) { return k, nil }

// PublicBranch: unannotated data may branch freely.
func PublicBranch(n int) int {
	if n > 4 {
		return 4
	}
	return n
}
