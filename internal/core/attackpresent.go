package core

// GRINCH-P: the GRINCH methodology adapted to PRESENT, the cipher GIFT
// was designed to replace (paper §II). PRESENT XORs its round key into
// the whole state *before* SubCells, so a pinned S-box access leaks all
// four index bits as key bits — twice GIFT's yield per segment — and the
// crafting step is simpler (the target segment of the round input is set
// directly instead of through inverse-permuted source bits). Two
// attacked rounds expose K1 and K2, from which the 80-bit master key is
// reconstructed by inverting the key schedule (present.RecoverKey80).
//
// The comparison quantifies the paper's point from the other side:
// table-based PRESENT software is strictly easier prey for an
// access-driven attacker than GIFT, whose AddRoundKey touches only two
// bits per segment.

import (
	"fmt"

	"grinch/internal/present"
	"grinch/internal/probe"
	"grinch/internal/rng"
)

// ChannelP is the PRESENT observation channel. The signal round for
// round key t is round t itself (key-first ordering), so Collect's
// window starts at targetRound rather than targetRound+1.
type ChannelP interface {
	Collect(pt uint64, targetRound int) probe.LineSet
	Lines() int
	Encryptions() uint64
}

// TargetSpecP pins one PRESENT S-box access: segment Segment of the
// round-Round input state is fixed to 0xF, so the observed index is
// 0xF ⊕ K_Round[Segment].
type TargetSpecP struct {
	Round   int
	Segment int
}

// NewTargetP builds a PRESENT target.
func NewTargetP(t, g int) TargetSpecP {
	if t < 1 || t > present.Rounds {
		panic(fmt.Sprintf("core: round %d out of range", t))
	}
	if g < 0 || g >= present.Segments {
		panic(fmt.Sprintf("core: segment %d out of range", g))
	}
	return TargetSpecP{Round: t, Segment: g}
}

// ExpectedIndex returns the observed index for round-key nibble val.
func (t TargetSpecP) ExpectedIndex(val uint8) uint8 {
	return pinnedValue ^ val&0xf
}

// KeyNibble reverse-engineers the round-key nibble from an observed
// index.
func (t TargetSpecP) KeyNibble(index uint8) uint8 {
	return index ^ pinnedValue
}

// NibblesForLine returns the candidate key nibbles consistent with an
// observed line under the given line width.
func (t TargetSpecP) NibblesForLine(line, lineWords int) []uint8 {
	var out []uint8
	for v := uint8(0); v < 16; v++ {
		if int(t.ExpectedIndex(v))/lineWords == line {
			out = append(out, v)
		}
	}
	return out
}

// CraftState builds the round-Round input with the target segment
// pinned to 0xF and every other segment random.
func (t TargetSpecP) CraftState(r *rng.Source) uint64 {
	var state uint64
	for seg := uint(0); seg < present.Segments; seg++ {
		if int(seg) == t.Segment {
			state |= uint64(pinnedValue) << (4 * seg)
		} else {
			state |= r.Nibble() << (4 * seg)
		}
	}
	return state
}

// CraftPlaintext inverts rounds Round-1..1 with the known (or
// hypothesized) round keys.
func (t TargetSpecP) CraftPlaintext(r *rng.Source, rks []uint64) uint64 {
	state := t.CraftState(r)
	if t.Round == 1 {
		return state
	}
	if len(rks) < t.Round-1 {
		panic(fmt.Sprintf("core: crafting round %d needs %d round keys, have %d",
			t.Round, t.Round-1, len(rks)))
	}
	return present.PartialDecrypt(state, rks, t.Round-1)
}

// ParentSegments returns the round-(Round-1) S-boxes feeding the target
// segment's four input bits, indexed by target bit position: pinning
// s_t[g] through InvRound depends on those S-boxes' round-(Round-1) key
// nibbles.
func (t TargetSpecP) ParentSegments() [4]int {
	var out [4]int
	for j := 0; j < 4; j++ {
		out[j] = int(present.InvPerm[4*t.Segment+j]) / 4
	}
	return out
}

// worstPinShareP mirrors worstPinShare for the PRESENT S-box: the
// largest probability (over uniform x) that a wrong key hypothesis on a
// parent leaves one chosen output bit of S(x⊕e) equal to that of S(x).
var worstPinShareP = computeWorstPinShareP()

func computeWorstPinShareP() float64 {
	best := 0
	for o := 0; o < 4; o++ {
		for e := uint8(1); e < 16; e++ {
			same := 0
			for x := uint8(0); x < 16; x++ {
				if (present.SBox[x]^present.SBox[x^e])>>o&1 == 0 {
					same++
				}
			}
			if same > best && same < 16 {
				best = same
			}
		}
	}
	return float64(best) / 16
}

// AttackerP drives GRINCH-P over a PRESENT channel.
type AttackerP struct {
	ch        ChannelP
	cfg       Config
	rng       *rng.Source
	lineWords int
	meter     attackMeter
}

// NewAttackerP builds a PRESENT attacker.
func NewAttackerP(ch ChannelP, cfg Config) (*AttackerP, error) {
	lines := ch.Lines()
	if lines < 2 || 16%lines != 0 {
		return nil, fmt.Errorf("core: channel exposes %d table lines; the attack needs 2..16 dividing 16", lines)
	}
	cfg = cfg.withDefaults()
	return &AttackerP{
		ch:        ch,
		cfg:       cfg,
		rng:       rng.New(cfg.Seed),
		lineWords: 16 / lines,
		meter:     newAttackMeter(cfg.Metrics, "PRESENT"),
	}, nil
}

// Encryptions returns the channel's total encryption count.
func (a *AttackerP) Encryptions() uint64 { return a.ch.Encryptions() }

func (a *AttackerP) overBudget() bool {
	return a.cfg.TotalBudget > 0 && a.ch.Encryptions() >= a.cfg.TotalBudget
}

// TargetOutcomeP is the result of one PRESENT segment attack.
type TargetOutcomeP struct {
	Spec         TargetSpecP
	Line         int
	Nibbles      []uint8
	Observations uint64
	Converged    bool
	Exhausted    bool
}

// AttackTargetP runs crafted elimination for one segment.
func (a *AttackerP) AttackTargetP(spec TargetSpecP, rks []uint64) TargetOutcomeP {
	var elim Eliminator
	elim.Reset(a.ch.Lines(), a.cfg.Threshold)
	startEnc := a.ch.Encryptions()
	out := TargetOutcomeP{Spec: spec, Line: -1}

	for elim.Observations() < a.cfg.MaxObservationsPerTarget && !a.overBudget() {
		pt := spec.CraftPlaintext(a.rng, rks)
		elim.Observe(a.ch.Collect(pt, spec.Round))
		a.meter.observations.Inc()

		if elim.Exhausted() && (a.cfg.Threshold == 1 || elim.Observations() >= a.cfg.MinObservations) {
			out.Exhausted = true
			break
		}
		if line, ok := elim.Converged(a.cfg.MinObservations); ok {
			out.Line = line
			out.Converged = true
			break
		}
	}
	if out.Converged {
		out.Nibbles = spec.NibblesForLine(out.Line, a.lineWords)
	}
	out.Observations = elim.Observations()
	a.meter.segmentDone(elim.Observations(), uint64(elim.Candidates().Count()),
		a.ch.Encryptions()-startEnc, out.Converged, out.Exhausted, false)
	return out
}

// RoundOutcomeP is the result of attacking one PRESENT round key.
type RoundOutcomeP struct {
	Round       int
	Cands       [16][]uint8 // candidate key nibbles per segment
	Encryptions uint64
}

// Unique reports whether every segment resolved to one nibble and
// returns the 64-bit round key.
func (r RoundOutcomeP) Unique() (uint64, bool) {
	var rk uint64
	for g, c := range r.Cands {
		if len(c) != 1 {
			return 0, false
		}
		rk |= uint64(c[0]) << (4 * g)
	}
	return rk, true
}

// AttackRoundP attacks round key t across all 16 segments. Crafting
// for rounds ≥ 2 requires the earlier round keys to be fully resolved:
// PRESENT's deterministic S-box derivative makes per-target hypothesis
// enumeration unsound (see RecoverKey80), so — unlike the GIFT paths —
// no prevCands mode exists.
func (a *AttackerP) AttackRoundP(t int, resolved []uint64, prevCands *[16][]uint8) (RoundOutcomeP, error) {
	if prevCands != nil {
		return RoundOutcomeP{}, fmt.Errorf("core: PRESENT hypothesis passes are unsupported (deterministic S-box derivative; see RecoverKey80)")
	}
	if t >= 2 && len(resolved) < t-1 {
		return RoundOutcomeP{}, fmt.Errorf("core: attacking round %d needs %d resolved round keys, have %d", t, t-1, len(resolved))
	}

	out := RoundOutcomeP{Round: t}
	start := a.ch.Encryptions()

	for g := 0; g < present.Segments; g++ {
		spec := NewTargetP(t, g)
		o := a.AttackTargetP(spec, resolved[:max(t-1, 0)])
		if !o.Converged {
			if a.overBudget() {
				return out, ErrBudgetExceeded
			}
			return out, fmt.Errorf("core: PRESENT round %d segment %d: %d observations, %w",
				t, g, o.Observations, ErrNoConvergence)
		}
		out.Cands[g] = o.Nibbles
	}

	out.Encryptions = a.ch.Encryptions() - start
	return out, nil
}

// KeyResultP is a completed PRESENT-80 key recovery.
type KeyResultP struct {
	Key            [10]byte
	RoundKeys      [2]uint64
	Encryptions    uint64
	RoundsAttacked int
}

// RecoverKey80 runs GRINCH-P to completion: rounds 1 and 2 expose 64
// round-key bits each, and present.RecoverKey80 inverts the key
// schedule.
//
// Wide cache lines are rejected: PRESENT's permutation routes output
// bit (p mod 4) of every S-box p into position (p mod 4) of its
// children, and the PRESENT S-box has a deterministic derivative on
// that axis — S(x)⊕S(x⊕1) always has bit 0 set — so a wrong hidden-bit
// hypothesis at a bit-0-fed target flips the pinned value *constantly*
// instead of randomizing it, and next-round elimination converges to a
// self-consistent wrong answer. Disambiguation would need round-(t+2)
// cone analysis; rather than risk a silently wrong key, the attack
// declines (an interesting structural contrast with GIFT, whose
// position-preserving permutation avoids the trap — see
// TestPresentWideLineDeterministicDerivative).
func (a *AttackerP) RecoverKey80() (KeyResultP, error) {
	var res KeyResultP
	if a.lineWords > 1 {
		return res, fmt.Errorf("core: GRINCH-P full recovery needs 1-word cache lines (got %d-word): PRESENT's deterministic S-box derivative defeats next-round disambiguation", a.lineWords)
	}
	start := a.ch.Encryptions()

	var resolved []uint64
	passes := 0
	for t := 1; len(resolved) < 2; t++ {
		passes++
		out, err := a.AttackRoundP(t, resolved, nil)
		if err != nil {
			return res, err
		}
		rk, ok := out.Unique()
		if !ok {
			return res, fmt.Errorf("core: PRESENT round %d left ambiguity at 1-word lines", t)
		}
		resolved = append(resolved, rk)
	}

	copy(res.RoundKeys[:], resolved[:2])
	res.Key = present.RecoverKey80(res.RoundKeys[0], res.RoundKeys[1])
	res.Encryptions = a.ch.Encryptions() - start
	res.RoundsAttacked = passes
	return res, nil
}
