// Package chaos is the network-layer counterpart of internal/faults: a
// deterministic, seedable fault-injecting http.RoundTripper that
// disturbs the campaignd wire protocol according to a declarative Plan.
//
// internal/faults makes *probe-stream* disturbance first-class so the
// attack core's recovery can be measured as a curve; this package does
// the same for the *distributed* stack. The failure modes it models are
// the ones real fleets hit — a coordinator that is down or restarting
// (refuse), congested links (delay), requests lost before the server
// sees them (drop-request), responses lost after the server committed
// (drop-response — the classic at-least-once hazard), overloaded or
// crashing servers (5xx), and connections cut mid-body (truncate).
// Because the coordinator's merge is byte-deterministic and its
// ingestion is idempotent, the merged output under any chaos plan must
// be byte-identical to a fault-free single-process run; that contract
// is the oracle every chaos test and the churn soak assert.
//
// Determinism contract: the decision for the n-th request matching a
// fault's path filter is drawn from a private generator seeded with
// rng.Derive(plan seed, n) — the same random-access discipline as
// faults.Plan. Requests are numbered per URL path, so an interleaved
// heartbeat never shifts the fault sequence seen by the results path.
// With a single in-flight caller per path the injection sequence is
// exactly replayable; under concurrency the per-path numbering still
// pins which request ordinals fault, independent of wall time.
package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind names a network fault class. The strings are part of the -chaos
// flag syntax and the plan-file schema.
type Kind string

const (
	// KindRefuse fails the round-trip before any bytes leave the
	// client: a connection refused (coordinator down or not yet
	// listening). The server never sees the request.
	KindRefuse Kind = "refuse"
	// KindDelay holds the request for DelayMS milliseconds before
	// forwarding it — congestion, a GC pause, a slow link. The request
	// still completes normally.
	KindDelay Kind = "delay"
	// KindDropRequest loses the request on the wire: the server never
	// sees it and the client gets a transport error. Indistinguishable
	// from refuse at the server, but distinguishable in what the
	// failure means: the work was NOT committed.
	KindDropRequest Kind = "drop-request"
	// KindDropResponse forwards the request — the server fully
	// processes and commits it — then loses the response. The client
	// sees a transport error for a call that *succeeded* server-side:
	// the at-least-once hazard that makes idempotent replay mandatory.
	KindDropResponse Kind = "drop-response"
	// Kind5xx fabricates a server-error response (Status, default 503)
	// without forwarding; the server never sees the request.
	Kind5xx Kind = "5xx"
	// KindTruncate forwards the request, then cuts the response body
	// off halfway — the read side sees an unexpected EOF after the
	// server committed. Like drop-response but failing mid-decode
	// rather than mid-transport.
	KindTruncate Kind = "truncate"
)

// Kinds lists every known fault kind, sorted, for error messages and
// flag docs.
func Kinds() []string {
	ks := []string{
		string(KindRefuse), string(KindDelay), string(KindDropRequest),
		string(KindDropResponse), string(Kind5xx), string(KindTruncate),
	}
	sort.Strings(ks)
	return ks
}

// Fault is one declarative network fault: a kind, an optional path
// filter, a window over the per-path request counter, and
// kind-specific parameters. The window semantics mirror faults.Fault:
// Start is 1-based, Length 0 means open-ended, Period repeats the
// window start-to-start.
type Fault struct {
	Kind Kind `json:"kind"`
	// Path restricts the fault to requests whose URL path has this
	// prefix (e.g. campaignd.PathResults); empty matches every request.
	Path string `json:"path,omitempty"`
	// Start is the first matching request (1-based) the fault affects.
	// 0 is normalized to 1.
	Start uint64 `json:"start,omitempty"`
	// Length is the window size in requests. 0 means open-ended.
	Length uint64 `json:"length,omitempty"`
	// Period repeats the window every Period requests. 0 fires the
	// window once. Period must be >= Length when both are set.
	Period uint64 `json:"period,omitempty"`
	// Probability is the per-request chance the fault fires inside its
	// window (0 is normalized to 1 = always).
	Probability float64 `json:"probability,omitempty"`
	// DelayMS is the hold time for delay faults, in milliseconds.
	DelayMS int `json:"delay_ms,omitempty"`
	// Status is the fabricated status code for 5xx faults (default
	// 503).
	Status int `json:"status,omitempty"`
}

// active reports whether the fault's window covers the n-th matching
// request (1-based) — the same windowing arithmetic as faults.Fault.
func (f Fault) active(n uint64) bool {
	start := f.Start
	if start == 0 {
		start = 1
	}
	if n < start {
		return false
	}
	off := n - start
	if f.Period > 0 {
		off %= f.Period
	}
	return f.Length == 0 || off < f.Length
}

// prob returns the normalized per-request firing probability.
func (f Fault) prob() float64 {
	if f.Probability == 0 {
		return 1
	}
	return f.Probability
}

// matches reports whether the fault applies to a request path.
func (f Fault) matches(path string) bool {
	return f.Path == "" || strings.HasPrefix(path, f.Path)
}

// Validate checks one fault's shape.
func (f Fault) Validate() error {
	switch f.Kind {
	case KindRefuse, KindDropRequest, KindDropResponse, KindTruncate:
	case KindDelay:
		if f.DelayMS <= 0 {
			return fmt.Errorf("chaos: delay fault needs ms > 0")
		}
	case Kind5xx:
		if f.Status != 0 && (f.Status < 500 || f.Status > 599) {
			return fmt.Errorf("chaos: 5xx fault status %d outside [500,599]", f.Status)
		}
	default:
		return fmt.Errorf("chaos: unknown fault kind %q (known: %s)", f.Kind, strings.Join(Kinds(), ", "))
	}
	if f.Probability < 0 || f.Probability > 1 {
		return fmt.Errorf("chaos: %s probability %v outside [0,1]", f.Kind, f.Probability)
	}
	if f.Period > 0 && f.Length > f.Period {
		return fmt.Errorf("chaos: %s window length %d exceeds period %d", f.Kind, f.Length, f.Period)
	}
	return nil
}

// String renders the fault in the compact flag syntax.
func (f Fault) String() string {
	var b strings.Builder
	b.WriteString(string(f.Kind))
	if f.Path != "" {
		fmt.Fprintf(&b, ":path=%s", f.Path)
	}
	if f.Start > 0 {
		fmt.Fprintf(&b, ":start=%d", f.Start)
	}
	if f.Length > 0 {
		fmt.Fprintf(&b, ":len=%d", f.Length)
	}
	if f.Period > 0 {
		fmt.Fprintf(&b, ":period=%d", f.Period)
	}
	if f.Probability > 0 {
		fmt.Fprintf(&b, ":p=%g", f.Probability)
	}
	if f.DelayMS > 0 {
		fmt.Fprintf(&b, ":ms=%d", f.DelayMS)
	}
	if f.Status > 0 {
		fmt.Fprintf(&b, ":status=%d", f.Status)
	}
	return b.String()
}

// Plan is a seed plus an ordered fault list. For each request, faults
// are consulted in order and the first one that fires wins — the same
// first-match composition as faults.Plan, so a plan reads top to
// bottom.
type Plan struct {
	Seed   uint64  `json:"seed"`
	Faults []Fault `json:"faults"`
}

// Validate checks every fault.
func (p Plan) Validate() error {
	for i, f := range p.Faults {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("fault %d: %w", i, err)
		}
	}
	return nil
}

// Empty reports a plan with no faults.
func (p Plan) Empty() bool { return len(p.Faults) == 0 }

// String renders the plan in the compact flag syntax.
func (p Plan) String() string {
	parts := make([]string, len(p.Faults))
	for i, f := range p.Faults {
		parts[i] = f.String()
	}
	return strings.Join(parts, ",")
}

// ParsePlan parses the compact -chaos flag syntax: a comma-separated
// fault list, each fault a colon-separated kind plus key=value
// parameters:
//
//	drop-response:path=/api/v1/results:p=0.2
//	delay:ms=40:p=0.5,5xx:status=503:start=10:len=5:period=50
//
// Keys: path, start, len, period, p, ms, status. The seed is supplied
// separately (it is an operator knob, not part of the scenario shape).
func ParsePlan(spec string, seed uint64) (Plan, error) {
	p := Plan{Seed: seed}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		f := Fault{Kind: Kind(fields[0])}
		for _, kv := range fields[1:] {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return Plan{}, fmt.Errorf("chaos: fault %q: parameter %q is not key=value", part, kv)
			}
			var err error
			switch key {
			case "path":
				f.Path = val
			case "start":
				f.Start, err = strconv.ParseUint(val, 10, 64)
			case "len":
				f.Length, err = strconv.ParseUint(val, 10, 64)
			case "period":
				f.Period, err = strconv.ParseUint(val, 10, 64)
			case "p":
				f.Probability, err = strconv.ParseFloat(val, 64)
			case "ms":
				f.DelayMS, err = strconv.Atoi(val)
			case "status":
				f.Status, err = strconv.Atoi(val)
			default:
				return Plan{}, fmt.Errorf("chaos: fault %q: unknown parameter %q", part, key)
			}
			if err != nil {
				return Plan{}, fmt.Errorf("chaos: fault %q: parameter %q: %v", part, kv, err)
			}
		}
		if err := f.Validate(); err != nil {
			return Plan{}, err
		}
		p.Faults = append(p.Faults, f)
	}
	return p, nil
}
