//go:build ignore

// gen_fixture regenerates testdata/trace.jsonl, the recorded event
// trace the golden tests render from. Run it from this directory:
//
//	go run gen_fixture.go
//
// The trace is two single-segment eliminations (segments 0 and 1 of
// round 1, GIFT-64, 1-word lines) recorded into per-job buffers, the
// way a 2-job traced campaign would lay them out. Keeping the fixture
// checked in decouples the renderer's goldens from the attack
// internals: an attack change only moves the goldens when the fixture
// is deliberately regenerated.
package main

import (
	"log"
	"os"

	"grinch/internal/bitutil"
	"grinch/internal/core"
	"grinch/internal/obs"
	"grinch/internal/oracle"
	"grinch/internal/rng"
)

func main() {
	f, err := os.Create("testdata/trace.jsonl")
	if err != nil {
		log.Fatal(err)
	}
	w := obs.NewWriter(f)

	r := rng.New(1)
	key := bitutil.Word128{Lo: r.Uint64(), Hi: r.Uint64()}
	for job := 0; job < 2; job++ {
		buf := &obs.Buffer{Job: job}
		ch, err := oracle.New(key, oracle.Config{ProbeRound: 1, Flush: true, LineWords: 1, Seed: uint64(job) + 7})
		if err != nil {
			log.Fatal(err)
		}
		ch.SetTracer(buf)
		a, err := core.NewAttacker(ch, core.Config{Seed: uint64(job) + 13, Tracer: buf})
		if err != nil {
			log.Fatal(err)
		}
		out := a.AttackTarget(core.NewTarget64(1, job), nil)
		if !out.Converged {
			log.Fatalf("job %d did not converge", job)
		}
		if err := w.WriteEvents(buf.Events); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d events", w.Count())
}
