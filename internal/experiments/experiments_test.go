package experiments

import (
	"reflect"
	"strings"
	"testing"

	"grinch/internal/campaign"
)

// Small options keep the test suite quick; the full-scale runs live in
// cmd/experiments and the root benchmark harness.
func quickOpts() Options {
	return Options{Trials: 1, Budget: 200_000, Seed: 7}
}

func TestFig3ShapeAndMonotonicity(t *testing.T) {
	rows := Fig3(quickOpts(), []int{1, 2, 3})
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for i, r := range rows {
		if r.WithFlush.DroppedOut || r.WithoutFlush.DroppedOut {
			t.Fatalf("early probe rounds dropped out: %+v", r)
		}
		if r.WithFlush.Median >= r.WithoutFlush.Median {
			t.Errorf("probe round %d: flush (%v) not cheaper than no-flush (%v)",
				r.ProbeRound, r.WithFlush.Median, r.WithoutFlush.Median)
		}
		if i > 0 && r.WithFlush.Median <= rows[i-1].WithFlush.Median {
			t.Errorf("with-flush effort not increasing: round %d", r.ProbeRound)
		}
	}
	// Paper anchor: ~96 encryptions at probe round 1 with flush.
	if m := rows[0].WithFlush.Median; m < 40 || m > 400 {
		t.Errorf("probe round 1 with flush: %v encryptions, paper reports ≈96", m)
	}
}

func TestTable1ShapeAcrossLineSizes(t *testing.T) {
	rows := Table1(quickOpts(), []int{1, 2}, []int{1, 2})
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Wider lines must cost at least as much at the same probe round.
	if !rows[0].Cells[0].DroppedOut && !rows[1].Cells[0].DroppedOut {
		if rows[1].Cells[0].Median < rows[0].Cells[0].Median {
			t.Errorf("2-word line cheaper than 1-word at probe round 1: %v vs %v",
				rows[1].Cells[0].Median, rows[0].Cells[0].Median)
		}
	}
	// Later probe rounds must cost at least as much per row.
	for _, row := range rows {
		if row.Cells[1].DroppedOut {
			continue
		}
		if row.Cells[1].Median < row.Cells[0].Median {
			t.Errorf("line %d: probe round 2 cheaper than round 1", row.LineWords)
		}
	}
}

func TestTable1DropOut(t *testing.T) {
	// An 8-word line probed late must blow a small budget, like the
	// paper's ">1M" cells.
	opt := Options{Trials: 1, Budget: 3_000, Seed: 3}
	rows := Table1(opt, []int{8}, []int{3})
	if !rows[0].Cells[0].DroppedOut {
		t.Fatalf("8-word line at probe round 3 finished under 3k encryptions: %+v", rows[0].Cells[0])
	}
	if got := rows[0].Cells[0].String(); !strings.HasPrefix(got, ">") {
		t.Fatalf("drop-out cell renders as %q", got)
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	rows := Table2(Options{Trials: 1, Seed: 1}, nil)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		paper := PaperTable2[row.Platform]
		for f, want := range paper {
			if got := row.EarliestRound[f]; got != want {
				t.Errorf("%s at %d MHz: round %d, paper says %d", row.Platform, f, got, want)
			}
		}
	}
}

func TestFullRecoveryHeadline(t *testing.T) {
	res := FullRecovery(Options{Trials: 2, Budget: 10_000, Seed: 5})
	if !res.AllCorrect {
		t.Fatalf("key recovery failed: %+v", res)
	}
	// Paper headline: fewer than 400 encryptions; allow slack for the
	// reproduction's different elimination constants.
	if res.Encryptions.Median > 1000 {
		t.Fatalf("median effort %v, expected a few hundred", res.Encryptions.Median)
	}
}

func TestCountermeasures(t *testing.T) {
	res := Countermeasures(Options{Trials: 1, Budget: 100_000, Seed: 9})
	if !res.ReshapedRejected {
		t.Error("reshaped-table countermeasure did not block the attack")
	}
	if !res.WhitenedKeyRecoveryFailed {
		t.Error("whitened key schedule did not prevent key recovery")
	}
	if !res.WhitenedRoundKeysRecovered {
		t.Error("whitened demo lost its leak: sub-keys should still be recoverable")
	}
}

func TestRenderers(t *testing.T) {
	fig3 := Fig3(quickOpts(), []int{1, 2})
	if s := RenderFig3(fig3); !strings.Contains(s, "probe round") || !strings.Contains(s, "paper") {
		t.Errorf("RenderFig3 output malformed:\n%s", s)
	}
	if s := Fig3CSV(fig3); !strings.HasPrefix(s, "probe_round,") || len(strings.Split(strings.TrimSpace(s), "\n")) != 3 {
		t.Errorf("Fig3CSV malformed:\n%s", s)
	}

	t1 := Table1(quickOpts(), []int{1}, []int{1})
	if s := RenderTable1(t1, []int{1}); !strings.Contains(s, "1 word(s)") {
		t.Errorf("RenderTable1 malformed:\n%s", s)
	}
	if s := Table1CSV(t1, []int{1}); !strings.HasPrefix(s, "line_words,round_1") {
		t.Errorf("Table1CSV malformed:\n%s", s)
	}

	t2 := Table2(Options{Trials: 1, Seed: 1}, nil)
	if s := RenderTable2(t2); !strings.Contains(s, "Single-processing SoC") {
		t.Errorf("RenderTable2 malformed:\n%s", s)
	}

	rec := FullRecovery(Options{Trials: 1, Budget: 5_000, Seed: 2})
	if s := RenderRecovery(rec); !strings.Contains(s, "128-bit") {
		t.Errorf("RenderRecovery malformed:\n%s", s)
	}

	cm := Countermeasures(Options{Trials: 1, Budget: 50_000, Seed: 4})
	if s := RenderCountermeasures(cm); !strings.Contains(s, "Countermeasures") {
		t.Errorf("RenderCountermeasures malformed:\n%s", s)
	}
}

func TestCellStringFinite(t *testing.T) {
	c := Cell{Median: 96, Trials: []uint64{96}}
	if c.String() != "96" {
		t.Fatalf("cell renders as %q", c.String())
	}
	c = Cell{Median: 123848, Trials: []uint64{123848}}
	if c.String() != "124k" {
		t.Fatalf("cell renders as %q", c.String())
	}
	c = Cell{Median: 1.5e6, Trials: []uint64{1500000}}
	if c.String() != "1.5M" {
		t.Fatalf("cell renders as %q", c.String())
	}
}

func TestDeterminism(t *testing.T) {
	a := Fig3(quickOpts(), []int{1})
	b := Fig3(quickOpts(), []int{1})
	if a[0].WithFlush.Median != b[0].WithFlush.Median {
		t.Fatal("Fig3 not deterministic under fixed seed")
	}
}

// TestWorkerCountInvariance is the campaign determinism contract at the
// experiment level: the same spec and seed must produce identical
// tables no matter how many workers execute the grid.
func TestWorkerCountInvariance(t *testing.T) {
	serial := quickOpts()
	serial.Workers = 1
	pooled := quickOpts()
	pooled.Workers = 8

	f1 := Fig3(serial, []int{1, 2})
	f8 := Fig3(pooled, []int{1, 2})
	if !reflect.DeepEqual(f1, f8) {
		t.Errorf("Fig3 differs between 1 and 8 workers:\n%+v\n%+v", f1, f8)
	}

	t1 := Table1(serial, []int{1, 2}, []int{1, 2})
	t8 := Table1(pooled, []int{1, 2}, []int{1, 2})
	if !reflect.DeepEqual(t1, t8) {
		t.Errorf("Table1 differs between 1 and 8 workers:\n%+v\n%+v", t1, t8)
	}

	r1 := FullRecovery(Options{Trials: 2, Budget: 10_000, Seed: 5, Workers: 1})
	r8 := FullRecovery(Options{Trials: 2, Budget: 10_000, Seed: 5, Workers: 8})
	if !reflect.DeepEqual(r1, r8) {
		t.Errorf("FullRecovery differs between 1 and 8 workers:\n%+v\n%+v", r1, r8)
	}
}

// TestSpecByName covers the cmd/campaign presets.
func TestSpecByName(t *testing.T) {
	for _, name := range []string{"fig3", "table1", "table2", "recovery"} {
		spec, err := SpecByName(name, quickOpts())
		if err != nil {
			t.Fatal(err)
		}
		if spec.Name != name || spec.NumJobs() == 0 {
			t.Errorf("preset %s expands to %+v", name, spec)
		}
	}
	if _, err := SpecByName("nope", quickOpts()); err == nil {
		t.Error("unknown preset accepted")
	}
}

// TestExecuteRejectsUnknownKind keeps the executor's dispatch honest.
func TestExecuteRejectsUnknownKind(t *testing.T) {
	if _, err := Execute(campaign.Job{Point: campaign.Point{Kind: "nope"}}, nil); err == nil {
		t.Error("unknown kind accepted")
	}
}
