// Package quantcheck closes the loop between grinchvet's static
// quantitative leakage model (internal/analysis, quant.go) and the
// empirical convergence the attack actually achieves: it takes the
// statically resolved table geometry on one side and a recorded event
// trace (internal/obs) on the other, fits the measured
// bits-eliminated-per-observation from the survivor curves, and
// reports the deviation between prediction and measurement.
//
// # The model
//
// A table of E entries × B bytes spans L = ⌈E·B/lineBytes⌉ cache
// lines. One traced observation is one victim encryption whose probed
// round performs A table accesses (one per cipher segment): the
// crafted target access always touches the true line, the other A−1
// land (approximately) uniformly on the L lines. Under the paper's
// strict-intersection elimination a wrong candidate line therefore
// survives one observation with probability
//
//	p = 1 − (1 − 1/L)^(A−1)
//
// so the wrong-survivor count decays geometrically, W·p^m after m
// observations (W = L−1), and the modeled information yield is
//
//	bits/observation = −log2(p)
//
// with expected observations-to-convergence E[M] = Σ_m (1−(1−p^m)^W).
//
// # The measurement
//
// From a folded survivor curve the total wrong-candidate lifetime
// T = Σ_m (survivors_m − 1) has expectation W·p/(1−p) under the same
// model, so p̂ = T/(W+T) is the measured survival probability and
// −log2(p̂) the measured bits-per-observation — no curve-shape
// assumptions beyond the geometric decay being fitted. Segments of one
// (cipher, line-geometry) configuration are pooled (ΣT over ΣW) before
// comparing, which is the paper-table granularity (Fig. 3 / Table I
// rows).
//
// The line universe L is recovered from the trace itself (the highest
// line index any probe observation or candidate mask touches) and
// snapped to the static geometry's admissible line sizes
// (cache.PaperLineSizes); a trace whose universe fits no admissible
// geometry fails the check — that is the drift signal the closed loop
// exists for.
package quantcheck

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"text/tabwriter"

	"grinch/internal/cache"
	"grinch/internal/obs"
	"grinch/internal/obs/report"
)

// DefaultTolerance is the default maximum relative deviation between
// predicted and measured bits-per-observation. The fit is a stochastic
// estimate over finitely many segments; on the committed Fig. 3-scale
// fixtures the observed deviation stays well under 15%, so 25% gives
// slack for fixture regeneration without masking a real model change
// (the nearest geometry step, L=16 → L=8 at A=16, moves the
// prediction by over 60%).
const DefaultTolerance = 0.25

// Geometry is the static table shape handed over from the analyzer's
// quant pass: entry count and entry size of the probed table.
type Geometry struct {
	Entries    int
	EntryBytes int
}

// TableBytes is the table's total footprint.
func (g Geometry) TableBytes() int { return g.Entries * g.EntryBytes }

// Protocol describes, per cipher, where the probed table lives in the
// module (so the CLI can pull its geometry out of the analyzer's
// findings) and how many table accesses one probed observation window
// contains under the Fig. 3 protocol (one probed round, one access per
// segment).
type Protocol struct {
	Cipher string
	// TablePkg is the module-relative package defining the table;
	// TableName the finding detail naming it.
	TablePkg  string
	TableName string
	// Accesses is the number of table accesses per observation window.
	Accesses int
}

// protocols lists the ciphers the tracer can emit, in stable order.
var protocols = []Protocol{
	{Cipher: "GIFT-64", TablePkg: "internal/gift", TableName: "SBox", Accesses: 16},
	{Cipher: "GIFT-128", TablePkg: "internal/gift", TableName: "SBox", Accesses: 32},
	{Cipher: "PRESENT-80", TablePkg: "internal/present", TableName: "SBox", Accesses: 16},
}

// Protocols returns the known cipher protocols.
func Protocols() []Protocol {
	out := make([]Protocol, len(protocols))
	copy(out, protocols)
	return out
}

// ProtocolFor resolves a trace's cipher label.
func ProtocolFor(cipher string) (Protocol, bool) {
	for _, p := range protocols {
		if p.Cipher == cipher {
			return p, true
		}
	}
	return Protocol{}, false
}

// Prediction is the static model's output for one line geometry.
type Prediction struct {
	// Lines is the observable line count L; LineBytes the line size
	// that produces it; Accesses the protocol's A.
	Lines     int
	LineBytes int
	Accesses  int
	// SurvivalProb is p, the modeled per-observation survival
	// probability of a wrong candidate line.
	SurvivalProb float64
	// BitsPerObservation is −log2(p).
	BitsPerObservation float64
	// ObsToConverge is E[M], the expected observations until a unique
	// survivor.
	ObsToConverge float64
}

// Predict applies the static model to a geometry at one line size.
func Predict(g Geometry, lineBytes, accesses int) (Prediction, error) {
	lines := cache.LinesSpanned(g.TableBytes(), lineBytes)
	if lines < 2 {
		return Prediction{}, fmt.Errorf("quantcheck: %d-byte table spans %d line(s) at %dB — nothing to observe",
			g.TableBytes(), lines, lineBytes)
	}
	if accesses < 2 {
		return Prediction{}, fmt.Errorf("quantcheck: protocol needs ≥ 2 accesses per observation, got %d", accesses)
	}
	p := 1 - math.Pow(1-1/float64(lines), float64(accesses-1))
	return Prediction{
		Lines:              lines,
		LineBytes:          lineBytes,
		Accesses:           accesses,
		SurvivalProb:       p,
		BitsPerObservation: -math.Log2(p),
		ObsToConverge:      expectedObs(lines-1, p),
	}, nil
}

// expectedObs computes E[M] = Σ_{m≥0} (1 − (1−p^m)^w), the expected
// number of observations until all w wrong candidates have died when
// each survives an observation independently with probability p.
func expectedObs(w int, p float64) float64 {
	if w <= 0 || p <= 0 {
		return 0
	}
	sum, pm := 0.0, 1.0
	for m := 0; m < 4_000_000; m++ {
		term := 1 - math.Pow(1-pm, float64(w))
		if term < 1e-12 {
			break
		}
		sum += term
		pm *= p
	}
	return sum
}

// SegmentFit is one elimination's measured convergence statistics.
type SegmentFit struct {
	Key report.SegmentKey
	// Universe is the inferred line count L the elimination ran over.
	Universe int
	// WrongLifetimes is T = Σ (survivors−1)·Δobs over the curve.
	WrongLifetimes float64
	// Observations is the final observation count; Recovered whether
	// the elimination converged.
	Observations uint64
	Recovered    bool
	// SurvivalProb is p̂ = T/(W+T); BitsPerObservation −log2(p̂)
	// (+Inf when the first observation already eliminated everything).
	SurvivalProb       float64
	BitsPerObservation float64
}

// FitSegment fits the geometric survival model to one folded segment.
func FitSegment(s report.Segment, universe int) SegmentFit {
	fit := SegmentFit{Key: s.Key, Universe: universe, Recovered: s.Recovered}
	var prev uint64
	for _, pt := range s.Curve {
		d := uint64(1)
		if pt.Observations > prev {
			d = pt.Observations - prev
		}
		prev = pt.Observations
		if pt.Survivors > 1 {
			fit.WrongLifetimes += float64(pt.Survivors-1) * float64(d)
		}
	}
	if len(s.Curve) > 0 {
		fit.Observations = s.Curve[len(s.Curve)-1].Observations
	}
	w := float64(universe - 1)
	if w > 0 {
		fit.SurvivalProb = fit.WrongLifetimes / (w + fit.WrongLifetimes)
	}
	fit.BitsPerObservation = math.Inf(1)
	if fit.SurvivalProb > 0 {
		fit.BitsPerObservation = -math.Log2(fit.SurvivalProb)
	}
	return fit
}

// Group is one paper-table row: every traced segment sharing a cipher
// and line geometry, pooled, against the static prediction.
type Group struct {
	Cipher string
	Pred   Prediction
	Segs   []SegmentFit
	// Recovered counts converged segments; MeanObs averages their
	// observation counts.
	Recovered int
	MeanObs   float64
	// MeasuredProb pools the segment fits (ΣT over ΣW);
	// MeasuredBits is −log2 of it.
	MeasuredProb float64
	MeasuredBits float64
	// Deviation is |MeasuredBits−PredBits| / PredBits.
	Deviation float64
}

// Report is a full predicted-vs-measured comparison.
type Report struct {
	Groups    []Group
	Tolerance float64
}

// OK reports whether every group's deviation is within tolerance.
func (r *Report) OK() bool {
	for _, g := range r.Groups {
		if g.Deviation > r.Tolerance || math.IsNaN(g.Deviation) || math.IsInf(g.Deviation, 0) {
			return false
		}
	}
	return len(r.Groups) > 0
}

// Check folds a trace, infers each elimination's line universe, fits
// the survivor curves and compares against the static predictions.
// geoms maps cipher label → statically resolved table geometry.
func Check(events []obs.Event, geoms map[string]Geometry, tolerance float64) (*Report, error) {
	segs := report.Fold(events)
	if len(segs) == 0 {
		return nil, fmt.Errorf("quantcheck: trace has no candidate updates to fit")
	}
	universes := inferUniverses(events)

	type groupKey struct {
		cipher string
		lines  int
	}
	acc := map[groupKey]*Group{}
	var order []groupKey
	for _, s := range segs {
		if len(s.Curve) == 0 {
			continue
		}
		proto, ok := ProtocolFor(s.Key.Cipher)
		if !ok {
			return nil, fmt.Errorf("quantcheck: no protocol for cipher %q", s.Key.Cipher)
		}
		g, ok := geoms[s.Key.Cipher]
		if !ok {
			return nil, fmt.Errorf("quantcheck: no static geometry for cipher %q — did the analyzer lose the %s table?",
				s.Key.Cipher, proto.TableName)
		}
		need := universes[streamKey{s.Key.Job, s.Key.Cipher, s.Key.Round}]
		lineBytes, lines, err := snapUniverse(g, need)
		if err != nil {
			return nil, fmt.Errorf("quantcheck: %s job %d: %w", s.Key.Cipher, s.Key.Job, err)
		}
		k := groupKey{s.Key.Cipher, lines}
		grp, ok := acc[k]
		if !ok {
			pred, err := Predict(g, lineBytes, proto.Accesses)
			if err != nil {
				return nil, err
			}
			grp = &Group{Cipher: s.Key.Cipher, Pred: pred}
			acc[k] = grp
			order = append(order, k)
		}
		grp.Segs = append(grp.Segs, FitSegment(s, lines))
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("quantcheck: no fittable segments in trace")
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].cipher != order[j].cipher {
			return order[i].cipher < order[j].cipher
		}
		return order[i].lines < order[j].lines
	})

	rep := &Report{Tolerance: tolerance}
	for _, k := range order {
		grp := acc[k]
		var sumT, sumW, sumObs float64
		for _, f := range grp.Segs {
			sumT += f.WrongLifetimes
			sumW += float64(f.Universe - 1)
			if f.Recovered {
				grp.Recovered++
				sumObs += float64(f.Observations)
			}
		}
		if grp.Recovered > 0 {
			grp.MeanObs = sumObs / float64(grp.Recovered)
		}
		if sumW+sumT > 0 {
			grp.MeasuredProb = sumT / (sumW + sumT)
		}
		grp.MeasuredBits = math.Inf(1)
		if grp.MeasuredProb > 0 {
			grp.MeasuredBits = -math.Log2(grp.MeasuredProb)
		}
		grp.Deviation = math.Abs(grp.MeasuredBits-grp.Pred.BitsPerObservation) / grp.Pred.BitsPerObservation
		rep.Groups = append(rep.Groups, *grp)
	}
	return rep, nil
}

// streamKey identifies one probe stream: all segments of a job share
// the observations of their (cipher, round) channel.
type streamKey struct {
	job    int
	cipher string
	round  int
}

// inferUniverses ORs every probe and candidate mask per stream and
// returns the minimum line count each stream must span.
func inferUniverses(events []obs.Event) map[streamKey]int {
	need := map[streamKey]int{}
	for _, e := range events {
		if e.Kind != obs.KindProbeObservation && e.Kind != obs.KindCandidateUpdate {
			continue
		}
		k := streamKey{e.Job, e.Cipher, e.Round}
		if n := bits.Len64(e.Lines); n > need[k] {
			need[k] = n
		}
	}
	return need
}

// snapUniverse picks the smallest admissible line geometry (per
// cache.PaperLineSizes, largest line first so fewest lines) whose line
// count covers the observed universe.
func snapUniverse(g Geometry, need int) (lineBytes, lines int, err error) {
	sizes := cache.PaperLineSizes()
	for i := len(sizes) - 1; i >= 0; i-- {
		l := cache.LinesSpanned(g.TableBytes(), sizes[i])
		if l >= need && l >= 2 {
			return sizes[i], l, nil
		}
	}
	return 0, 0, fmt.Errorf("trace observes %d lines but the %d-byte table spans at most %d — static geometry and trace disagree",
		need, g.TableBytes(), cache.LinesSpanned(g.TableBytes(), sizes[0]))
}

// WriteTable renders the comparison: one row per (cipher, geometry)
// group, the paper-table granularity.
func (r *Report) WriteTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "CIPHER\tLINE_B\tLINES\tSEGS\tRECOVERED\tPRED_BITS/OBS\tMEAS_BITS/OBS\tDEV\tPRED_OBS\tMEAS_OBS\tSTATUS")
	for _, g := range r.Groups {
		status := "ok"
		if g.Deviation > r.Tolerance || math.IsNaN(g.Deviation) || math.IsInf(g.Deviation, 0) {
			status = fmt.Sprintf("DRIFT>%.0f%%", r.Tolerance*100)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.4f\t%.4f\t%.1f%%\t%.1f\t%.1f\t%s\n",
			g.Cipher, g.Pred.LineBytes, g.Pred.Lines, len(g.Segs), g.Recovered,
			g.Pred.BitsPerObservation, g.MeasuredBits, g.Deviation*100,
			g.Pred.ObsToConverge, g.MeanObs, status)
	}
	return tw.Flush()
}

// WriteSegments renders the per-segment fits behind the group rows.
func (r *Report) WriteSegments(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "JOB\tCIPHER\tROUND\tSEG\tLINES\tOBS\tLIFETIMES\tP_HAT\tBITS/OBS\tRECOVERED")
	for _, g := range r.Groups {
		for _, f := range g.Segs {
			rec := "no"
			if f.Recovered {
				rec = "yes"
			}
			fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%d\t%d\t%.0f\t%.4f\t%.4f\t%s\n",
				f.Key.Job, f.Key.Cipher, f.Key.Round, f.Key.Segment,
				f.Universe, f.Observations, f.WrongLifetimes,
				f.SurvivalProb, f.BitsPerObservation, rec)
		}
	}
	return tw.Flush()
}
