// Package worker is the pull-based shard executor of the distributed
// campaign service: it leases one shard at a time from a campaignd
// coordinator, executes the shard's jobs on a local bounded pool
// (campaign.ExecuteJobs), streams result batches back, and heartbeats
// to keep the lease alive.
//
// Determinism is inherited, not re-implemented: the worker re-expands
// the canonical job grid from the spec in its lease (a pure function
// of the spec), slices its shard range, skips the indices the lease
// reports already done, and every result it computes is the same bytes
// any other node would compute. Crash-safety is the coordinator's
// journal plus this pull loop: a worker that dies mid-shard simply
// stops heartbeating, the lease expires, and the next worker resumes
// the shard where the ingested results end.
package worker

import (
	"context"
	"errors"
	"fmt"
	"time"

	"grinch/internal/campaign"
	"grinch/internal/campaignd"
)

// Config configures a worker process.
type Config struct {
	// Server is the coordinator's base URL.
	Server string
	// ID is the worker's identity in leases and status displays.
	ID string
	// Exec runs one job (experiments.Execute in production; tests
	// substitute toys). Tracing is not threaded through the distributed
	// path, so Exec always receives a nil tracer.
	Exec campaign.Executor
	// Workers bounds the local pool (0: GOMAXPROCS).
	Workers int
	// Batch is how many results accumulate before a report flush (0:
	// DefaultBatch). Smaller batches lose less to a crash; larger ones
	// amortize round-trips.
	Batch int
	// Poll is the idle sleep between lease attempts when the
	// coordinator has no pending shard (0: DefaultPoll).
	Poll time.Duration
	// Drain, when set, exits the loop cleanly once the coordinator
	// reports every campaign merged. Otherwise the worker keeps
	// polling for future submissions.
	Drain bool
	// ConnectRetries bounds consecutive failed lease round-trips
	// (coordinator down or not yet listening) before giving up (0:
	// DefaultConnectRetries). Each failure sleeps one Poll.
	ConnectRetries int
	// Logf receives operator log lines; nil discards them.
	Logf func(format string, args ...any)

	// client overrides the HTTP client (tests).
	client *campaignd.Client
}

// Defaults.
const (
	DefaultBatch          = 16
	DefaultPoll           = 250 * time.Millisecond
	DefaultConnectRetries = 40
)

// Run executes the pull loop until ctx is cancelled, the coordinator
// drains (Config.Drain), or repeated connection failures exhaust the
// retry budget. A cancelled context is a clean shutdown: the current
// shard is abandoned un-completed and its lease left to expire (the
// coordinator keeps every result already reported).
func Run(ctx context.Context, cfg Config) error {
	if cfg.Exec == nil {
		return errors.New("worker: Config.Exec is required")
	}
	if cfg.ID == "" {
		return errors.New("worker: Config.ID is required")
	}
	if cfg.Batch <= 0 {
		cfg.Batch = DefaultBatch
	}
	if cfg.Poll <= 0 {
		cfg.Poll = DefaultPoll
	}
	if cfg.ConnectRetries <= 0 {
		cfg.ConnectRetries = DefaultConnectRetries
	}
	client := cfg.client
	if client == nil {
		client = &campaignd.Client{Base: cfg.Server}
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	m := newMeter()
	start := time.Now() //grinchvet:ignore wallclock drain-summary telemetry, never reaches result bytes

	failures := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		resp, err := client.Lease(cfg.ID)
		if err != nil {
			failures++
			m.leaseTries.Inc()
			if failures >= cfg.ConnectRetries {
				return fmt.Errorf("worker %s: leasing: %w (after %d attempts)", cfg.ID, err, failures)
			}
			logf("worker %s: leasing: %v (retrying)", cfg.ID, err)
			if !sleepCtx(ctx, cfg.Poll) {
				return ctx.Err()
			}
			continue
		}
		failures = 0
		if resp.Lease == nil {
			if cfg.Drain && resp.AllDone {
				sum := m.summary()
				logf("worker %s: coordinator drained; exiting — %d jobs (%d failed) in %d shards (%d lost), %d lease retries, %.1fs wall",
					cfg.ID, sum.Jobs, sum.Failed, sum.Shards, sum.Lost, sum.LeaseRetries,
					time.Since(start).Seconds()) //grinchvet:ignore wallclock drain-summary telemetry
				return nil
			}
			if !sleepCtx(ctx, cfg.Poll) {
				return ctx.Err()
			}
			continue
		}
		if err := runShard(ctx, cfg, client, m, logf, resp.Lease); err != nil {
			if errors.Is(err, campaignd.ErrLeaseGone) {
				// The coordinator re-issued the shard (our heartbeats were
				// too late); whatever we reported is kept, the rest is the
				// next holder's problem.
				m.shardsLost.Inc()
				logf("worker %s: lease %s revoked mid-shard; abandoning", cfg.ID, resp.Lease.ID)
				continue
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
	}
}

// sleepCtx sleeps d or until ctx is done, reporting whether the sleep
// completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// runShard executes one leased shard: expand, skip done, execute,
// batch-report, complete. Every round-trip to the coordinator carries
// the worker's cumulative telemetry delta.
func runShard(ctx context.Context, cfg Config, client *campaignd.Client, m *meter, logf func(string, ...any), l *campaignd.Lease) error {
	all := l.Spec.Jobs()
	if l.End > len(all) {
		return fmt.Errorf("worker %s: lease %s range [%d,%d) exceeds grid size %d", cfg.ID, l.ID, l.Start, l.End, len(all))
	}
	done := make(map[int]bool, len(l.DoneJobs))
	for _, idx := range l.DoneJobs {
		done[idx] = true
	}
	jobs := make([]campaign.Job, 0, l.Len())
	for _, j := range all[l.Start:l.End] {
		if !done[j.Index] {
			jobs = append(jobs, j)
		}
	}
	logf("worker %s: lease %s: %s %s — %d jobs (%d resumed)", cfg.ID, l.ID, l.Campaign, l.ShardRange, len(jobs), len(l.DoneJobs))

	// Heartbeat at a third of the TTL until the shard is finished. A
	// revoked lease cancels the shard so in-flight jobs stop feeding a
	// dead lease.
	shardCtx, stopShard := context.WithCancelCause(ctx)
	defer stopShard(nil)
	ttl := time.Duration(l.TTLMS) * time.Millisecond
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		tick := time.NewTicker(ttl / 3)
		defer tick.Stop()
		for {
			select {
			case <-shardCtx.Done():
				return
			case <-tick.C:
				if err := client.HeartbeatDelta(l.ID, cfg.ID, m.delta()); err != nil {
					if errors.Is(err, campaignd.ErrLeaseGone) {
						stopShard(campaignd.ErrLeaseGone)
						return
					}
					logf("worker %s: heartbeat: %v", cfg.ID, err)
				}
			}
		}
	}()

	batch := make([]campaign.Result, 0, cfg.Batch)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := client.ReportDelta(l.ID, batch, cfg.ID, m.delta()); err != nil {
			return err
		}
		m.batches.Inc()
		batch = batch[:0]
		return nil
	}
	execErr := campaign.ExecuteJobs(shardCtx, jobs, cfg.Exec, cfg.Workers, func(r campaign.Result) error {
		m.result(r)
		batch = append(batch, r)
		if len(batch) >= cfg.Batch {
			return flush()
		}
		return nil
	})
	stopShard(nil)
	<-hbDone
	if cause := context.Cause(shardCtx); errors.Is(cause, campaignd.ErrLeaseGone) {
		return campaignd.ErrLeaseGone
	}
	if execErr != nil {
		return execErr
	}
	if err := flush(); err != nil {
		return err
	}
	// Count the shard before snapshotting the delta: the complete
	// round-trip is the worker's last word on this shard, and it may be
	// the last round-trip of the whole run.
	m.shardsDone.Inc()
	if err := client.CompleteDelta(l.ID, cfg.ID, m.delta()); err != nil {
		return err
	}
	logf("worker %s: lease %s complete", cfg.ID, l.ID)
	return nil
}
