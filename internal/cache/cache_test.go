package cache

import (
	"testing"
	"testing/quick"

	"grinch/internal/rng"
)

func smallConfig() Config {
	return Config{Sets: 4, Ways: 2, LineBytes: 4, HitLatency: 1, MissLatency: 10, FlushLatency: 2}
}

func TestNewRejectsBadGeometry(t *testing.T) {
	bad := []Config{
		{Sets: 0, Ways: 1, LineBytes: 1},
		{Sets: 3, Ways: 1, LineBytes: 1},
		{Sets: 4, Ways: 0, LineBytes: 1},
		{Sets: 4, Ways: 1, LineBytes: 0},
		{Sets: 4, Ways: 1, LineBytes: 3},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted invalid geometry", cfg)
		}
	}
}

func TestPaperConfigGeometry(t *testing.T) {
	cfg := PaperConfig(1)
	if cfg.Lines() != 1024 {
		t.Fatalf("paper cache has %d lines, want 1024", cfg.Lines())
	}
	if cfg.Ways != 16 {
		t.Fatalf("paper cache is %d-way, want 16", cfg.Ways)
	}
	if _, err := New(cfg); err != nil {
		t.Fatalf("PaperConfig invalid: %v", err)
	}
}

func TestMissThenHit(t *testing.T) {
	c := MustNew(smallConfig())
	r := c.Access(0x100)
	if r.Hit {
		t.Fatal("first access hit an empty cache")
	}
	if r.Latency != 10 {
		t.Fatalf("miss latency %d, want 10", r.Latency)
	}
	r = c.Access(0x100)
	if !r.Hit {
		t.Fatal("second access to same line missed")
	}
	if r.Latency != 1 {
		t.Fatalf("hit latency %d, want 1", r.Latency)
	}
}

func TestSameLineDifferentOffsetHits(t *testing.T) {
	c := MustNew(smallConfig()) // 4-byte lines
	c.Access(0x100)
	for off := uint64(1); off < 4; off++ {
		if r := c.Access(0x100 + off); !r.Hit {
			t.Fatalf("offset %d within the line missed", off)
		}
	}
	if r := c.Access(0x104); r.Hit {
		t.Fatal("next line hit without being fetched")
	}
}

func TestContainsAfterAccessQuick(t *testing.T) {
	c := MustNew(smallConfig())
	f := func(addr uint64) bool {
		c.Access(addr)
		return c.Contains(addr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetMapping(t *testing.T) {
	cfg := smallConfig() // 4 sets, 4-byte lines
	c := MustNew(cfg)
	// Addresses 0, 4, 8, 12 map to sets 0..3; 16 wraps to set 0.
	for i, want := range []int{0, 1, 2, 3, 0} {
		if r := c.Access(uint64(4 * i)); r.Set != want {
			t.Fatalf("addr %#x mapped to set %d, want %d", 4*i, r.Set, want)
		}
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := MustNew(smallConfig()) // 2 ways
	// Three conflicting lines in set 0 (stride = sets*lineBytes = 16).
	a, b, d := uint64(0), uint64(16), uint64(32)
	c.Access(a)
	c.Access(b)
	c.Access(a) // a most recent; b is LRU
	r := c.Access(d)
	if !r.Eviction || r.Evicted != b {
		t.Fatalf("expected eviction of %#x, got eviction=%v addr=%#x", b, r.Eviction, r.Evicted)
	}
	if !c.Contains(a) || c.Contains(b) || !c.Contains(d) {
		t.Fatal("post-eviction residency wrong")
	}
}

func TestFIFOEvictionIgnoresHits(t *testing.T) {
	cfg := smallConfig()
	cfg.Policy = NewFIFO()
	c := MustNew(cfg)
	a, b, d := uint64(0), uint64(16), uint64(32)
	c.Access(a)
	c.Access(b)
	c.Access(a) // hit must NOT refresh a under FIFO
	r := c.Access(d)
	if !r.Eviction || r.Evicted != a {
		t.Fatalf("FIFO should evict first-filled %#x, evicted %#x", a, r.Evicted)
	}
}

func TestRandomPolicyDeterministic(t *testing.T) {
	run := func() []uint64 {
		cfg := smallConfig()
		cfg.Policy = NewRandom(7)
		c := MustNew(cfg)
		src := rng.New(3)
		var evicted []uint64
		for i := 0; i < 200; i++ {
			r := c.Access(uint64(src.Intn(16)) * 16) // all in set 0
			if r.Eviction {
				evicted = append(evicted, r.Evicted)
			}
		}
		return evicted
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("eviction counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("eviction %d differs: %#x vs %#x", i, a[i], b[i])
		}
	}
}

func TestPLRUVictimIsNotMostRecent(t *testing.T) {
	cfg := Config{Sets: 1, Ways: 4, LineBytes: 1, HitLatency: 1, MissLatency: 10, FlushLatency: 1, Policy: NewPLRU()}
	c := MustNew(cfg)
	for i := uint64(0); i < 4; i++ {
		c.Access(i)
	}
	c.Access(3) // most recently touched
	r := c.Access(100)
	if !r.Eviction {
		t.Fatal("full set did not evict")
	}
	if r.Evicted == 3 {
		t.Fatal("PLRU evicted the most recently touched way")
	}
}

func TestFlushLine(t *testing.T) {
	c := MustNew(smallConfig())
	c.Access(0x40)
	if !c.Contains(0x40) {
		t.Fatal("line not resident after access")
	}
	lat := c.FlushLine(0x40)
	if lat != 2 {
		t.Fatalf("flush latency %d, want 2", lat)
	}
	if c.Contains(0x40) {
		t.Fatal("line resident after flush")
	}
	if r := c.Access(0x40); r.Hit {
		t.Fatal("access after flush hit")
	}
}

func TestFlushRangeCoversPartialLines(t *testing.T) {
	c := MustNew(smallConfig()) // 4-byte lines
	for a := uint64(0); a < 32; a += 4 {
		c.Access(a)
	}
	// Range [2, 10) overlaps lines 0, 4, 8.
	c.FlushRange(2, 8)
	for _, a := range []uint64{0, 4, 8} {
		if c.Contains(a) {
			t.Errorf("line %#x survived FlushRange", a)
		}
	}
	for _, a := range []uint64{12, 16, 20, 24, 28} {
		if !c.Contains(a) {
			t.Errorf("line %#x wrongly flushed", a)
		}
	}
	if c.FlushRange(0, 0) != 0 {
		t.Error("zero-size FlushRange charged latency")
	}
}

func TestFlushAll(t *testing.T) {
	c := MustNew(smallConfig())
	for a := uint64(0); a < 64; a += 4 {
		c.Access(a)
	}
	c.FlushAll()
	if n := len(c.ResidentLines()); n != 0 {
		t.Fatalf("%d lines resident after FlushAll", n)
	}
}

func TestStatsAccounting(t *testing.T) {
	c := MustNew(smallConfig())
	c.Access(0)  // miss
	c.Access(0)  // hit
	c.Access(16) // miss (set 0)
	c.Access(32) // miss + eviction
	c.FlushLine(0)
	s := c.Stats()
	if s.Accesses != 4 || s.Hits != 1 || s.Misses != 3 || s.Evictions != 1 || s.Flushes != 1 {
		t.Fatalf("stats = %+v", s)
	}
	wantCycles := uint64(10 + 1 + 10 + 10 + 2)
	if s.Cycles != wantCycles {
		t.Fatalf("cycles = %d, want %d", s.Cycles, wantCycles)
	}
	if got := s.HitRate(); got != 0.25 {
		t.Fatalf("hit rate = %v, want 0.25", got)
	}
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not zero counters")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Accesses: 1, Hits: 2, Misses: 3, Evictions: 4, Flushes: 5, FlushedLines: 6, Cycles: 7}
	a.Add(Stats{Accesses: 10, Hits: 20, Misses: 30, Evictions: 40, Flushes: 50, FlushedLines: 60, Cycles: 70})
	want := Stats{Accesses: 11, Hits: 22, Misses: 33, Evictions: 44, Flushes: 55, FlushedLines: 66, Cycles: 77}
	if a != want {
		t.Fatalf("Add = %+v, want %+v", a, want)
	}
}

// TestFlushCountersDistinguishOpsFromWork pins the semantics of the
// two flush counters feeding cache_snapshot trace events: Flushes
// counts operations issued, FlushedLines counts lines actually
// invalidated.
func TestFlushCountersDistinguishOpsFromWork(t *testing.T) {
	c := MustNew(smallConfig())
	c.Access(0)
	c.Access(64) // same set as 0, second way

	// Flushing a non-resident line is an op with no work.
	c.FlushLine(128)
	if s := c.Stats(); s.Flushes != 1 || s.FlushedLines != 0 {
		t.Fatalf("no-op flush: %+v", s)
	}
	// Flushing a resident line counts both.
	c.FlushLine(0)
	if s := c.Stats(); s.Flushes != 2 || s.FlushedLines != 1 {
		t.Fatalf("resident flush: %+v", s)
	}
	// Re-flushing the now-absent line is an op with no work again.
	c.FlushLine(0)
	if s := c.Stats(); s.Flushes != 3 || s.FlushedLines != 1 {
		t.Fatalf("double flush: %+v", s)
	}
	// FlushRange over both lines invalidates only the remaining one.
	c.FlushRange(0, 128)
	s := c.Stats()
	if s.FlushedLines != 2 {
		t.Fatalf("FlushRange flushed %d lines total, want 2: %+v", s.FlushedLines, s)
	}
}

func TestFlushAllCountsResidentLines(t *testing.T) {
	c := MustNew(smallConfig())
	// Fill three distinct lines (sets 0 and 1).
	c.Access(0)
	c.Access(4)
	c.Access(64)
	before := c.Stats()
	c.FlushAll()
	s := c.Stats()
	if got := s.FlushedLines - before.FlushedLines; got != 3 {
		t.Fatalf("FlushAll invalidated %d lines, want 3", got)
	}
	if got := s.Flushes - before.Flushes; got != 1 {
		t.Fatalf("FlushAll counted %d ops, want 1", got)
	}
	// Flushing the now-empty cache does no line work.
	c.FlushAll()
	if c.Stats().FlushedLines != s.FlushedLines {
		t.Fatal("FlushAll of an empty cache reported flushed lines")
	}
}

// TestEvictionCounterMatchesResults cross-checks the Evictions counter
// against the per-access Result.Eviction reports.
func TestEvictionCounterMatchesResults(t *testing.T) {
	c := MustNew(smallConfig())
	src := rng.New(3)
	var want uint64
	for i := 0; i < 2000; i++ {
		if c.Access(uint64(src.Intn(256))).Eviction {
			want++
		}
	}
	if got := c.Stats().Evictions; got != want || want == 0 {
		t.Fatalf("Evictions = %d, per-access reports = %d (want nonzero match)", got, want)
	}
}

func TestResidencyNeverExceedsWays(t *testing.T) {
	cfg := smallConfig()
	c := MustNew(cfg)
	src := rng.New(11)
	for i := 0; i < 5000; i++ {
		c.Access(uint64(src.Intn(1 << 12)))
		perSet := map[int]int{}
		for _, a := range c.ResidentLines() {
			perSet[c.setOf(a)]++
		}
		for set, n := range perSet {
			if n > cfg.Ways {
				t.Fatalf("set %d holds %d lines, ways=%d", set, n, cfg.Ways)
			}
		}
	}
}

// TestWorkingSetFitsNoEvictions: a working set no larger than the
// associativity per set must reach a 100% hit steady state under every
// history-based policy.
func TestWorkingSetFitsNoEvictions(t *testing.T) {
	for _, mk := range []func() Policy{NewLRU, NewFIFO, NewPLRU} {
		cfg := Config{Sets: 2, Ways: 4, LineBytes: 2, HitLatency: 1, MissLatency: 5, FlushLatency: 1, Policy: mk()}
		c := MustNew(cfg)
		addrs := []uint64{0, 2, 4, 6, 8, 10, 12, 14} // alternate sets, 4 lines per set
		for _, a := range addrs {
			c.Access(a)
		}
		c.ResetStats()
		for round := 0; round < 10; round++ {
			for _, a := range addrs {
				if r := c.Access(a); !r.Hit {
					t.Fatalf("%s: steady-state miss at %#x", cfg.Policy.Name(), a)
				}
			}
		}
	}
}

func TestLineBase(t *testing.T) {
	c := MustNew(smallConfig())
	if c.LineBase(0x107) != 0x104 {
		t.Fatalf("LineBase(0x107) = %#x", c.LineBase(0x107))
	}
	if c.LineBase(0x104) != 0x104 {
		t.Fatalf("LineBase(0x104) = %#x", c.LineBase(0x104))
	}
}

func TestRebuildAddrInverse(t *testing.T) {
	c := MustNew(smallConfig())
	f := func(addr uint64) bool {
		base := c.LineBase(addr)
		return c.rebuildAddr(c.setOf(addr), c.tagOf(addr)) == base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"lru", "fifo", "random", "plru"} {
		p := PolicyByName(name, 1)
		if p == nil || p.Name() != name {
			t.Errorf("PolicyByName(%q) = %v", name, p)
		}
	}
	if PolicyByName("nope", 1) != nil {
		t.Error("unknown policy name did not return nil")
	}
}
