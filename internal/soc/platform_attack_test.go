package soc

import (
	"testing"

	"grinch/internal/bitutil"
	"grinch/internal/core"
	"grinch/internal/gift"
)

// These tests run the actual GRINCH attack over the live platform
// models — the paper's "practical demonstration" (§IV-B3) — rather than
// the ideal oracle. The platform channel carries real noise: wide
// quantum-spaced windows on the single SoC, and blind-window losses on
// the MPSoC, so the attack uses a tolerant elimination threshold.

func TestFirstRoundAttackOverMPSoC(t *testing.T) {
	key := bitutil.Word128{Lo: 0xa3fd1dea5e1864ee, Hi: 0xb0cdabdae5668cc0}
	ch := &PlatformChannel{P: NewMPSoC(key, DefaultParams(50)), LineBytes: 1}
	a, err := core.NewAttacker(ch, core.Config{
		Seed: 9, Threshold: 0.95, MinObservations: 48, TotalBudget: 20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := a.AttackRound(1, nil, nil)
	if err != nil {
		t.Fatalf("attack over MPSoC failed: %v", err)
	}
	rk, ok := out.Unique()
	if !ok {
		t.Fatal("first-round attack left ambiguity")
	}
	want := gift.ExpandKey64(key)[0]
	if rk.U != want.U || rk.V != want.V {
		t.Fatalf("recovered (U=%04x V=%04x), want (U=%04x V=%04x)", rk.U, rk.V, want.U, want.V)
	}
	t.Logf("MPSoC first-round attack: %d encryptions", out.Encryptions)
}

func TestFirstRoundAttackOverSingleSoC(t *testing.T) {
	// At 10 MHz the first quantum-spaced probe covers rounds 1..2 —
	// exactly the paper's practical single-SoC case. The single-core
	// channel has no blind window, so strict intersection works.
	key := bitutil.Word128{Lo: 0x5566778899aabbcc, Hi: 0x1122334455667788}
	ch := &PlatformChannel{P: NewSingleSoC(key, DefaultParams(10)), LineBytes: 1}
	a, err := core.NewAttacker(ch, core.Config{Seed: 4, TotalBudget: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	out, err := a.AttackRound(1, nil, nil)
	if err != nil {
		t.Fatalf("attack over single SoC failed: %v", err)
	}
	rk, ok := out.Unique()
	if !ok {
		t.Fatal("first-round attack left ambiguity")
	}
	want := gift.ExpandKey64(key)[0]
	if rk.U != want.U || rk.V != want.V {
		t.Fatal("recovered round key mismatch")
	}
	t.Logf("single-SoC first-round attack: %d encryptions", out.Encryptions)
}

func TestFullKeyRecoveryOverMPSoC(t *testing.T) {
	if testing.Short() {
		t.Skip("full platform recovery takes several seconds")
	}
	key := bitutil.Word128{Lo: 0x6d70736f63746b31, Hi: 0x6772696e63686b79}
	ch := &PlatformChannel{P: NewMPSoC(key, DefaultParams(50)), LineBytes: 1}
	a, err := core.NewAttacker(ch, core.Config{
		Seed: 99, Threshold: 0.95, MinObservations: 48, TotalBudget: 100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.RecoverKey()
	if err != nil {
		t.Fatalf("full recovery over MPSoC failed: %v", err)
	}
	if res.Key != key {
		t.Fatal("recovered key mismatch")
	}
	t.Logf("MPSoC full key recovery: %d encryptions", res.Encryptions)
}

func TestRunSessionUntilStopsEarly(t *testing.T) {
	key := bitutil.Word128{Lo: 1, Hi: 2}
	m := NewMPSoC(key, DefaultParams(50))
	full := m.RunSession(3)
	short := m.RunSessionUntil(3, 2)
	if len(short.Windows) >= len(full.Windows) {
		t.Fatalf("early stand-down produced %d windows vs %d for the full session",
			len(short.Windows), len(full.Windows))
	}
	// The ciphertext must still be exact despite the fast-forward.
	if short.Ciphertext != full.Ciphertext {
		t.Fatal("fast-forwarded session corrupted the ciphertext")
	}
	// Rounds up to the stand-down point must be covered.
	covered := map[int]bool{}
	for _, w := range short.Windows {
		for r := w.FirstRound; r <= w.LastRound; r++ {
			covered[r] = true
		}
	}
	for r := 1; r <= 2; r++ {
		if !covered[r] {
			t.Fatalf("round %d not covered before stand-down", r)
		}
	}
}

func TestSingleSoCWideLinesSaturate(t *testing.T) {
	// 2-byte cache lines combined with the single SoC's quantum-wide
	// probe windows (rounds 1..2+ per observation) drive the per-line
	// noise presence past 98%, so elimination cannot finish within any
	// practical budget — the platform manifestation of Table I's rapid
	// blow-up beyond the first column. The attack must fail cleanly.
	if testing.Short() {
		t.Skip("burns the full test budget by design")
	}
	key := bitutil.Word128{Lo: 0x0f0e0d0c0b0a0908, Hi: 0x0706050403020100}
	p := DefaultParams(10)
	p.CacheLineBytes = 2
	ch := &PlatformChannel{P: NewSingleSoC(key, p), LineBytes: 2}
	a, err := core.NewAttacker(ch, core.Config{Seed: 12, TotalBudget: 4_000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.AttackRound(1, nil, nil); err == nil {
		t.Fatal("wide-line quantum-window attack unexpectedly converged in 4k encryptions")
	}
}

func TestMPSoCRemoteAccessScalesWithClock(t *testing.T) {
	slow := NewMPSoC(testKey, DefaultParams(10)).RemoteAccessTime()
	fast := NewMPSoC(testKey, DefaultParams(50)).RemoteAccessTime()
	if fast >= slow {
		t.Fatalf("remote access at 50 MHz (%v) not faster than at 10 MHz (%v)", fast, slow)
	}
}
