package probe

import (
	"grinch/internal/obs/metrics"
)

// Meter carries the probe layer's pre-resolved instruments, labeled by
// primitive ("flush_reload", "prime_probe"). A nil Meter is fully
// inert — each emission is one nil check, matching the nil-tracer cost
// model — so channels simply leave the field unset when metrics are
// disabled.
type Meter struct {
	ops          *metrics.Counter
	observations *metrics.Counter
	cycles       *metrics.Counter
}

// NewMeter resolves the probe instrument set for one primitive. Returns
// nil (the disabled meter) when r is nil.
func NewMeter(r *metrics.Registry, primitive string) *Meter {
	if r == nil {
		return nil
	}
	p := metrics.L("primitive", primitive)
	return &Meter{
		ops: r.Counter("grinch_probe_ops_total",
			"Probe primitive operations (flush/prime setup passes).", p),
		observations: r.Counter("grinch_probe_observations_total",
			"Probe observation passes (reload/probe reads).", p),
		cycles: r.Counter("grinch_probe_cycles_total",
			"Simulated cycles spent inside probe primitives.", p),
	}
}

// op accounts one setup pass (Flush or Prime) and its cycle cost.
func (m *Meter) op(cycles uint64) {
	if m == nil {
		return
	}
	m.ops.Inc()
	m.cycles.Add(cycles)
}

// observed accounts one observation pass (Reload or Probe) and its
// cycle cost.
func (m *Meter) observed(cycles uint64) {
	if m == nil {
		return
	}
	m.observations.Inc()
	m.cycles.Add(cycles)
}
