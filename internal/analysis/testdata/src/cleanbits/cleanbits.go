// Package cleanbits is a grinchvet fixture: a bitsliced S-box circuit
// over secret data. Everything is boolean operations — the leakage pass
// must report this package clean.
package cleanbits

// SubCells applies an S-box circuit to the four bit planes of s with no
// table lookup and no branch.
//
//grinch:secret s
func SubCells(s uint64) uint64 {
	var p0, p1, p2, p3 uint16
	for i := uint(0); i < 16; i++ {
		nib := s >> (4 * i)
		p0 |= uint16(nib&1) << i
		p1 |= uint16(nib>>1&1) << i
		p2 |= uint16(nib>>2&1) << i
		p3 |= uint16(nib>>3&1) << i
	}
	p1 ^= p0 & p2
	p0 ^= p1 & p3
	p2 ^= p0 | p1
	p3 ^= p2
	p1 ^= p3
	p3 = ^p3
	p2 ^= p0 & p1
	p0, p3 = p3, p0
	var out uint64
	for i := uint(0); i < 16; i++ {
		nib := uint64(p0>>i&1) | uint64(p1>>i&1)<<1 |
			uint64(p2>>i&1)<<2 | uint64(p3>>i&1)<<3
		out |= nib << (4 * i)
	}
	return out
}
