// Package gift implements the GIFT family of lightweight block ciphers
// (GIFT-64 and GIFT-128) exactly as specified in "GIFT: A Small PRESENT"
// (Banik et al., CHES 2017 / ePrint 2017/622), which is the cipher
// attacked by the GRINCH paper.
//
// Beyond plain encryption and decryption the package exposes what a cache
// attack needs:
//
//   - a round-stepping API (round keys, per-round states, single round
//     and inverse-round transforms), used by the attack to craft
//     plaintexts and reverse-engineer key bits;
//   - an instrumented table-based implementation that reports every
//     S-box lookup (round, segment, index) to an observer — the memory
//     access stream that leaks through the cache;
//   - a bitsliced, lookup-free implementation used both as a correctness
//     cross-check and as the constant-time countermeasure.
//
// Bit conventions follow the GIFT specification: state bit 0 (b0) is the
// least significant bit, segment i is the nibble at bits 4i..4i+3, and a
// 128-bit key is the limb vector k7‖k6‖…‖k0 of 16-bit words with k0 at
// bits 0..15 (see internal/bitutil).
package gift

import "grinch/internal/bitutil"

// SBox is the GIFT substitution box GS applied to every 4-bit segment in
// the SubCells step. It is shared by GIFT-64 and GIFT-128.
var SBox = [16]uint8{
	0x1, 0xa, 0x4, 0xc, 0x6, 0xf, 0x3, 0x9,
	0x2, 0xd, 0xb, 0x7, 0x5, 0x0, 0x8, 0xe,
}

// InvSBox is the inverse of SBox, used by decryption and by the attack's
// plaintext-crafting step (paper Algorithm 1, Inv_SBOX).
var InvSBox = bitutil.InvertSBox(&SBox)

// Rounds64 and Rounds128 are the round counts fixed by the specification.
const (
	Rounds64  = 28
	Rounds128 = 40
)

// Segments64 and Segments128 are the number of 4-bit segments per state.
const (
	Segments64  = 16
	Segments128 = 32
)

// Perm64 is the GIFT-64 bit permutation: PermBits moves state bit i to
// position Perm64[i]. Generated from the specification's closed form
//
//	P64(i) = 4⌊i/16⌋ + 16((3⌊(i mod 16)/4⌋ + (i mod 4)) mod 4) + (i mod 4)
//
// and cross-checked against the paper's explicit table in tables_test.go.
var Perm64 = genPerm64()

// InvPerm64 is the inverse of Perm64 (used by decryption and by the
// attack's Inv_Permutation step in Algorithm 1).
var InvPerm64 = bitutil.InvertPerm64(&Perm64)

// Perm128 is the GIFT-128 bit permutation, from the closed form
//
//	P128(i) = 4⌊i/16⌋ + 32((3⌊(i mod 16)/4⌋ + (i mod 4)) mod 4) + (i mod 4)
var Perm128 = genPerm128()

// InvPerm128 is the inverse of Perm128.
var InvPerm128 = bitutil.InvertPerm128(&Perm128)

// RoundConstants holds the 6-bit round constants produced by the
// specification's LFSR (x⁶+x⁵+1 style update: shift left, new bit
// c0 = c5 ⊕ c4 ⊕ 1, starting from the all-zero state so the first
// round uses 0x01). Sized for the longest variant.
var RoundConstants = genRoundConstants(Rounds128)

func genPerm64() [64]uint8 {
	var p [64]uint8
	for i := 0; i < 64; i++ {
		p[i] = uint8(4*(i/16) + 16*((3*((i%16)/4)+i%4)%4) + i%4)
	}
	return p
}

func genPerm128() [128]uint8 {
	var p [128]uint8
	for i := 0; i < 128; i++ {
		p[i] = uint8(4*(i/16) + 32*((3*((i%16)/4)+i%4)%4) + i%4)
	}
	return p
}

func genRoundConstants(n int) []uint8 {
	cs := make([]uint8, n)
	c := uint8(0)
	for i := range cs {
		c = (c<<1 | (c>>5^c>>4^1)&1) & 0x3f
		cs[i] = c
	}
	return cs
}
