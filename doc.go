// Package grinch is the root of a full reproduction of "GRINCH: A Cache
// Attack against GIFT Lightweight Cipher" (Reinbrecht et al., DATE
// 2021).
//
// The implementation lives under internal/ (see DESIGN.md for the
// system inventory), runnable programs under cmd/ and examples/, and
// the benchmark harness that regenerates every paper table and figure
// in bench_test.go next to this file:
//
//	go test -bench=Fig3 -benchmem .
//	go test -bench=Table1 .
//	go test -bench=Table2 .
//	go test -bench=FullKeyRecovery .
//	go test -bench=Ablation .
//
// The benchmarks report the paper's own metric — victim encryptions per
// recovered key material — via the "encryptions" benchmark metric, in
// addition to wall-clock timings.
package grinch
