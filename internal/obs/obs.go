// Package obs is the attack pipeline's observability layer: a
// deterministic, zero-cost-when-disabled event-tracing subsystem.
//
// The paper's core results (Fig. 3, Tables I–II) are convergence
// curves — how the surviving candidate set shrinks per encryption — but
// an attack run that only reports its final Encryptions total is a
// black box when it converges slowly, stalls, or disagrees with the
// paper. Tracing records the internal trajectory as a stream of typed
// events: encryption boundaries, probe observations, candidate-set
// updates, segment recoveries, cache activity snapshots and simulated
// time, each stamped with the channel's encryption counter.
//
// Design rules:
//
//   - Nil-safe. Emitting components hold a Tracer field that defaults
//     to nil; every emission site is guarded by a nil check, so an
//     untraced hot path pays one predictable branch and nothing else
//     (BenchmarkAttackNilTracer pins this at the attack level).
//   - Deterministic. Events carry encryption counters and sim-kernel
//     time, never wall-clock readings, so a traced run is as
//     byte-reproducible as an untraced one: same spec + same seed ⇒
//     byte-identical JSONL event stream for any worker count
//     (TestTraceDeterminism* in this package and internal/campaign).
//   - Ordered. Concurrent campaign workers never share a Tracer; each
//     job records into its own Buffer and the runner flushes buffers to
//     the trace sink in job-index order (the same reorder machinery
//     that makes result sinks deterministic).
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
)

// Kind discriminates event types. Values are stable: they are the
// "kind" strings of serialized traces and part of the repo's output
// contract.
type Kind string

// The event taxonomy (DESIGN.md §10).
const (
	// KindEncryptionStart/End bracket one victim encryption on the
	// observation channel. Enc is the channel's (1-based) encryption
	// counter.
	KindEncryptionStart Kind = "encryption_start"
	KindEncryptionEnd   Kind = "encryption_end"
	// KindProbeObservation is one probe result consumed by the attack:
	// the observed line set for (Round, Segment) at encryption Enc.
	KindProbeObservation Kind = "probe_observation"
	// KindCandidateUpdate reports the surviving candidate lines for the
	// segment under attack after folding in one observation.
	KindCandidateUpdate Kind = "candidate_update"
	// KindSegmentRecovered marks a segment's elimination converging on
	// a single line.
	KindSegmentRecovered Kind = "segment_recovered"
	// KindCacheSnapshot is a cumulative cache-activity reading
	// (hits/misses/evictions/flushes) from a cache-backed channel.
	KindCacheSnapshot Kind = "cache_snapshot"
	// KindSimTime reports the simulation kernel's virtual clock (in
	// picoseconds) after a platform session — never wall-clock.
	KindSimTime Kind = "sim_time"
	// KindFaultInjected marks one structured fault firing on the
	// observation channel (internal/faults): Fault holds the fault
	// kind, Enc the affected encryption.
	KindFaultInjected Kind = "fault_injected"
	// KindRetry marks the attack core retrying a transient channel
	// failure: Attempt is the retry ordinal (1-based), SimPS the
	// deterministic backoff charged to the simulated clock.
	KindRetry Kind = "retry"
	// KindTargetRestarted marks a per-target elimination restart after
	// exhaustion under noise: Attempt is the restart ordinal and
	// Threshold the relaxed survival threshold the next pass uses.
	KindTargetRestarted Kind = "target_restarted"
)

// Event is one trace record. It is a flat union over the kinds above
// (the same style as campaign.Measurement): fields a kind does not use
// stay zero and are omitted from the serialized form. Every field is a
// pure function of (spec, seed) — wall-clock readings must never be
// stored here (grinchvet's determinism pass covers this package).
type Event struct {
	Kind Kind `json:"kind"`
	// Job is the campaign job index the event belongs to; stamped by
	// the per-job Buffer, zero for single-run traces.
	Job int `json:"job,omitempty"`
	// Enc is the observation channel's encryption counter at emission
	// (1-based; the paper's attack-effort metric).
	Enc uint64 `json:"enc,omitempty"`
	// Cipher labels the victim ("GIFT-64", "GIFT-128", "PRESENT-80").
	Cipher string `json:"cipher,omitempty"`
	// Round is the attacked round-key index; Segment the 4-bit segment
	// under attack.
	Round   int `json:"round,omitempty"`
	Segment int `json:"segment,omitempty"`
	// Lines is the observed probe.LineSet bitmask
	// (probe_observation) or the surviving candidate mask
	// (candidate_update).
	Lines uint64 `json:"lines,omitempty"`
	// Survivors is the surviving candidate-line count;
	// EntropyBits = log2(Survivors) is the residual line-level
	// uncertainty for the segment.
	Survivors   int     `json:"survivors,omitempty"`
	EntropyBits float64 `json:"entropy_bits,omitempty"`
	// Line is the recovered table line (segment_recovered).
	Line int `json:"line,omitempty"`
	// Observations is the per-target elimination count backing the
	// event.
	Observations uint64 `json:"observations,omitempty"`
	// Cache activity counters (cache_snapshot), cumulative for the
	// emitting cache.
	Hits         uint64 `json:"hits,omitempty"`
	Misses       uint64 `json:"misses,omitempty"`
	Evictions    uint64 `json:"evictions,omitempty"`
	Flushes      uint64 `json:"flushes,omitempty"`
	FlushedLines uint64 `json:"flushed_lines,omitempty"`
	// SimPS is the simulation kernel's virtual time in picoseconds
	// (sim_time), or the backoff charged for one retry (retry).
	SimPS uint64 `json:"sim_ps,omitempty"`
	// Fault is the structured-fault kind that fired (fault_injected).
	Fault string `json:"fault,omitempty"`
	// Attempt is the retry or restart ordinal, 1-based (retry,
	// target_restarted).
	Attempt int `json:"attempt,omitempty"`
	// Threshold is the relaxed candidate-survival threshold a restarted
	// elimination will use (target_restarted).
	Threshold float64 `json:"threshold,omitempty"`
}

// Tracer receives events. Implementations need not be safe for
// concurrent use: the pipeline guarantees a Tracer is only ever driven
// from one goroutine (campaign workers each get a private Buffer).
//
// A nil Tracer disables tracing; emitting code guards every call with
// `if tr != nil`, which is the entire cost of the disabled path.
type Tracer interface {
	Emit(Event)
}

// Sink persists a completed event batch. The campaign runner calls
// WriteEvents once per job, in strictly ascending job-index order, so
// a deterministic sink's byte output is independent of worker count.
type Sink interface {
	WriteEvents([]Event) error
}

// EntropyBits returns log2(survivors) — the residual uncertainty, in
// bits, of a candidate set of the given size (0 for ≤1 survivor).
func EntropyBits(survivors int) float64 {
	if survivors <= 1 {
		return 0
	}
	if survivors&(survivors-1) == 0 {
		// Exact for powers of two, the common case (line counts).
		return float64(bits.Len(uint(survivors)) - 1)
	}
	return math.Log2(float64(survivors))
}

// Buffer is an in-memory Tracer that stamps every event with a job
// index. One Buffer per campaign job keeps parallel workers from ever
// interleaving events; the runner hands the finished batch to the
// trace sink in job-index order.
type Buffer struct {
	// Job is stamped onto every recorded event.
	Job int
	// Events is the recorded stream, in emission order.
	Events []Event
}

// Emit implements Tracer.
func (b *Buffer) Emit(e Event) {
	e.Job = b.Job
	b.Events = append(b.Events, e)
}

// Writer is a JSONL event sink: one JSON object per line, in emission
// order. It implements both Tracer (for single-run tools that stream
// events straight to a file) and Sink (for the campaign runner's
// batch-per-job delivery). Serialization uses encoding/json over the
// fixed Event struct, so field order — and therefore the byte stream —
// is deterministic.
//
// Errors are sticky: the first write error is retained and reported by
// Flush/Err; subsequent emissions become no-ops. That keeps the Tracer
// interface clean (no error return on the hot path) without losing the
// failure.
type Writer struct {
	bw  *bufio.Writer
	err error
	n   int
}

// NewWriter builds a JSONL event writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w)}
}

// Emit implements Tracer.
func (w *Writer) Emit(e Event) {
	if w.err != nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		w.err = err
		return
	}
	b = append(b, '\n')
	if _, err := w.bw.Write(b); err != nil {
		w.err = err
		return
	}
	w.n++
}

// WriteEvents implements Sink.
func (w *Writer) WriteEvents(events []Event) error {
	for _, e := range events {
		w.Emit(e)
	}
	return w.err
}

// Count returns how many events have been written.
func (w *Writer) Count() int { return w.n }

// Err returns the sticky error, if any.
func (w *Writer) Err() error { return w.err }

// Flush drains the buffer and returns the sticky error or the flush
// error.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// ReadAll decodes a JSONL event stream (the Writer's output format).
// Unknown fields are rejected so a trace from a future incompatible
// schema fails loudly rather than folding into nonsense.
func ReadAll(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var out []Event
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("obs: event %d: %w", len(out)+1, err)
		}
		out = append(out, e)
	}
}

// Compile-time checks: Buffer traces, Writer both traces and sinks.
var (
	_ Tracer = (*Buffer)(nil)
	_ Tracer = (*Writer)(nil)
	_ Sink   = (*Writer)(nil)
)
