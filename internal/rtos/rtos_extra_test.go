package rtos

import (
	"strings"
	"testing"

	"grinch/internal/sim"
)

func TestTaskAccessors(t *testing.T) {
	k := sim.NewKernel()
	s := newSched(k, sim.Millisecond, 0)
	var task *Task
	task = s.Spawn("worker", func(tt *Task) {
		if tt.Name() != "worker" {
			t.Errorf("Name = %q", tt.Name())
		}
		if tt.Proc() == nil {
			t.Error("Proc nil")
		}
		tt.Exec(10)
	})
	k.Run()
	if task.Runtime() == 0 {
		t.Error("Runtime not accounted")
	}
}

func TestSchedulerString(t *testing.T) {
	k := sim.NewKernel()
	s := newSched(k, sim.Millisecond, 0)
	if !strings.Contains(s.String(), "idle") {
		t.Errorf("idle scheduler renders as %q", s.String())
	}
	s.Spawn("a", func(task *Task) {
		if !strings.Contains(s.String(), "a") {
			t.Errorf("running scheduler renders as %q", s.String())
		}
		task.Exec(1)
	})
	k.Run()
}

func TestSchedulerClock(t *testing.T) {
	k := sim.NewKernel()
	s := newSched(k, sim.Millisecond, 0)
	if s.Clock().Period != sim.ClockMHz(10).Period {
		t.Fatal("Clock() mismatch")
	}
}

func TestRecvFastPathKeepsCPU(t *testing.T) {
	k := sim.NewKernel()
	s := newSched(k, 10*sim.Millisecond, 0)
	q := sim.NewQueue[int](k)
	q.Send(42)
	switchesBefore := uint64(0)
	s.Spawn("recv", func(task *Task) {
		switchesBefore = s.Switches()
		if v := Recv(task, q); v != 42 {
			t.Errorf("Recv = %d", v)
		}
		// A buffered value must not trigger a reschedule.
		if s.Switches() != switchesBefore {
			t.Error("Recv fast path rescheduled")
		}
		task.Exec(1)
	})
	k.Run()
}

func TestRecvBlockingPath(t *testing.T) {
	k := sim.NewKernel()
	s := newSched(k, 10*sim.Millisecond, 0)
	q := sim.NewQueue[string](k)
	var got string
	var at sim.Time
	s.Spawn("recv", func(task *Task) {
		got = Recv(task, q)
		at = task.Now()
		task.Exec(1)
	})
	s.Spawn("other", func(task *Task) {
		task.Exec(100) // runs while recv blocks
	})
	k.Schedule(5*sim.Millisecond, func() { q.Send("late") })
	k.Run()
	if got != "late" || at < 5*sim.Millisecond {
		t.Fatalf("got %q at %v", got, at)
	}
}

func TestManyTasksRoundRobinFairness(t *testing.T) {
	k := sim.NewKernel()
	s := newSched(k, sim.Millisecond, 10)
	const n = 5
	runtimes := make([]*Task, n)
	for i := 0; i < n; i++ {
		runtimes[i] = s.Spawn("t", func(task *Task) {
			task.Exec(50_000) // 5 ms CPU each
		})
	}
	k.Run()
	for i, task := range runtimes {
		if task.Runtime() != 5*sim.Millisecond {
			t.Fatalf("task %d runtime %v", i, task.Runtime())
		}
	}
	// Total wall time ≈ 25 ms + switch overhead; fairness means nobody
	// finished before 21 ms (they interleave).
	if k.Now() < 25*sim.Millisecond {
		t.Fatalf("simulation ended at %v", k.Now())
	}
}

func TestExecZeroIsNoop(t *testing.T) {
	k := sim.NewKernel()
	s := newSched(k, sim.Millisecond, 0)
	var before, after sim.Time
	s.Spawn("z", func(task *Task) {
		task.Exec(1)
		before = task.Now()
		task.Exec(0)
		after = task.Now()
	})
	k.Run()
	if before != after {
		t.Fatal("Exec(0) advanced time")
	}
}
