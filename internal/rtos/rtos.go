// Package rtos models the preemptive round-robin task scheduler the
// GRINCH paper runs on its single-processor SoC ("RTOS … uses a quantum
// time of 10 milliseconds"). Tasks are simulation processes that consume
// CPU through Exec; when a task exhausts its quantum it is preempted at
// the next charge boundary and the next ready task runs after a context
// switch. A single runnable task keeps the CPU without paying switch
// costs.
//
// The scheduler is what turns cipher rounds into a probing race on a
// shared core: the attacker task only observes the cache when the victim
// is preempted, so the earliest probe-able round is quantum·f divided by
// the victim's cycles per round (paper Table II).
package rtos

import (
	"fmt"

	"grinch/internal/sim"
)

// Config describes the scheduler.
type Config struct {
	// Quantum is the time slice per task (the paper uses 10 ms).
	Quantum sim.Time
	// CtxSwitchCycles is the CPU cost of a context switch.
	CtxSwitchCycles uint64
}

// Scheduler is a single-core round-robin scheduler.
type Scheduler struct {
	k       *sim.Kernel
	clock   sim.Clock
	cfg     Config
	current *Task
	ready   []*Task
	// switches counts completed context switches.
	switches uint64
}

// New creates a scheduler for one core in clock domain clock.
func New(k *sim.Kernel, clock sim.Clock, cfg Config) *Scheduler {
	if cfg.Quantum == 0 {
		panic("rtos: zero quantum")
	}
	return &Scheduler{k: k, clock: clock, cfg: cfg}
}

// Clock returns the core's clock.
func (s *Scheduler) Clock() sim.Clock { return s.clock }

// Switches returns the number of context switches performed.
func (s *Scheduler) Switches() uint64 { return s.switches }

// Task is a schedulable thread of execution. Tasks must consume CPU only
// through Exec/Sleep/YieldSlice; parking the underlying process directly
// would hold the core without the scheduler knowing.
type Task struct {
	name      string
	sched     *Scheduler
	proc      *sim.Proc
	grant     *sim.Queue[struct{}]
	granted   bool     // the pending grant event has fired for us
	sliceEnd  sim.Time // absolute time the current slice expires
	queued    bool
	runtime   sim.Time // accumulated CPU time
	preempted uint64
}

// Spawn creates a task whose body starts running when the scheduler
// first grants it the CPU.
func (s *Scheduler) Spawn(name string, body func(t *Task)) *Task {
	t := &Task{name: name, sched: s}
	t.grant = sim.NewQueue[struct{}](s.k)
	t.proc = s.k.Spawn(name, func(p *sim.Proc) {
		t.enqueue()
		t.waitTurn()
		body(t)
		t.release()
	})
	return t
}

// Name returns the task name.
func (t *Task) Name() string { return t.name }

// Runtime returns the CPU time the task has consumed.
func (t *Task) Runtime() sim.Time { return t.runtime }

// Preemptions returns how many times the task lost the CPU to quantum
// expiry.
func (t *Task) Preemptions() uint64 { return t.preempted }

// Now returns the current virtual time.
func (t *Task) Now() sim.Time { return t.proc.Now() }

// Proc exposes the underlying simulation process (for use with queues).
func (t *Task) Proc() *sim.Proc { return t.proc }

// enqueue marks t ready.
func (t *Task) enqueue() {
	if t.queued {
		return
	}
	t.queued = true
	t.sched.ready = append(t.sched.ready, t)
	t.sched.kick()
}

// kick grants the CPU to the head of the ready queue if the core is
// idle. The grant lands after the context-switch delay.
func (s *Scheduler) kick() {
	if s.current != nil || len(s.ready) == 0 {
		return
	}
	next := s.ready[0]
	s.ready = s.ready[1:]
	next.queued = false
	s.current = next
	s.switches++
	s.k.Schedule(s.clock.Cycles(s.cfg.CtxSwitchCycles), func() {
		if s.current != next {
			return // task released the CPU before the switch completed
		}
		next.sliceEnd = s.k.Now() + s.cfg.Quantum
		next.granted = true
		next.grant.Send(struct{}{})
	})
}

// running reports whether t currently owns the core with a live slice.
func (t *Task) running() bool {
	return t.sched.current == t && t.granted
}

// waitTurn blocks until t owns the core with slice time remaining.
func (t *Task) waitTurn() {
	s := t.sched
	if t.running() && t.Now() >= t.sliceEnd {
		// Slice expired. Rotate only if someone else is waiting;
		// a lone task keeps the core with a fresh slice.
		if len(s.ready) == 0 {
			t.sliceEnd = t.Now() + s.cfg.Quantum
		} else {
			t.preempted++
			t.granted = false
			s.current = nil
			t.enqueue()
		}
	}
	for !t.running() {
		t.grant.Recv(t.proc)
	}
}

// release gives up the CPU entirely (task blocking or exiting).
func (t *Task) release() {
	s := t.sched
	if s.current == t {
		t.granted = false
		s.current = nil
		s.kick()
	}
}

// Exec consumes n CPU cycles, spanning preemptions as needed: execution
// pauses while other tasks hold the core and resumes on the task's next
// slice.
func (t *Task) Exec(n uint64) {
	s := t.sched
	for n > 0 {
		t.waitTurn()
		avail := s.clock.CyclesAt(t.sliceEnd - t.Now())
		if avail == 0 {
			// Less than one whole cycle left: treat the slice as over.
			t.sliceEnd = t.Now()
			continue
		}
		run := n
		if run > avail {
			run = avail
		}
		d := s.clock.Cycles(run)
		t.proc.Wait(d)
		t.runtime += d
		n -= run
	}
}

// Sleep blocks the task for d of virtual time, releasing the CPU. On
// wake the task re-queues and resumes when the scheduler reaches it (so
// the effective delay may exceed d under contention).
func (t *Task) Sleep(d sim.Time) {
	t.release()
	t.proc.Wait(d)
	t.enqueue()
	t.waitTurn()
}

// YieldSlice voluntarily ends the task's current slice (cooperative
// yield), letting other ready tasks run before t continues.
func (t *Task) YieldSlice() {
	t.sliceEnd = t.Now()
	t.waitTurn()
}

// Recv blocks task t on a simulation queue, releasing the CPU while
// waiting and re-acquiring it (through the scheduler) once a value
// arrives. A value that is already buffered is taken without giving up
// the CPU. Tasks must use this instead of Queue.Recv directly, which
// would hold the core while blocked.
func Recv[T any](t *Task, q *sim.Queue[T]) T {
	if v, ok := q.TryRecv(); ok {
		return v
	}
	t.release()
	v := q.Recv(t.proc)
	t.enqueue()
	t.waitTurn()
	return v
}

// String describes the scheduler state (for debugging traces).
func (s *Scheduler) String() string {
	cur := "idle"
	if s.current != nil {
		cur = s.current.name
	}
	return fmt.Sprintf("rtos{current=%s ready=%d switches=%d}", cur, len(s.ready), s.switches)
}
