# Development targets. `make check` is what CI runs.

GO ?= go

.PHONY: check vet lint lint-quant baseline build test race soak chaos bench bench-json bench-guard quick

check: vet lint lint-quant build race bench-guard

vet:
	$(GO) vet ./...

# grinchvet: the repo's own static analyzer (secret-dependent accesses,
# determinism). Fails on any finding not in grinchvet.baseline.
lint:
	$(GO) run ./cmd/grinchvet ./...

# The quantitative gate: every leakage finding must carry a resolved
# bits-per-observation estimate (baseline-checked in quant mode), and
# the static model must agree with the measured convergence of the
# committed Fig. 3 fixture trace within tolerance. Drift in either the
# analyzer's geometry model or the attack core fails the build.
lint-quant:
	$(GO) run ./cmd/grinchvet -quant -quant-check internal/obs/report/testdata/trace.jsonl ./...

# Accept the current finding set as the new baseline (review the diff!).
baseline:
	$(GO) run ./cmd/grinchvet -quant -write-baseline ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The platform models run coroutine-style simulation processes, so the
# race detector is the gate that keeps them honest.
race:
	$(GO) test -race ./...

# Opt-in node-churn soak: coordinator restart, worker kill/respawn and
# chaos transports in one in-process test (see soak_test.go).
soak:
	$(GO) test -race -tags soak -run TestChurnSoak -count=1 ./internal/campaignd

# The full chaos drill: the soak above plus a process-level run with
# -race binaries, SIGKILLed workers and a restarted coordinator.
chaos:
	scripts/ci_chaos.sh

# Serial-vs-pooled campaign execution of a small Table I grid.
bench:
	$(GO) test -bench BenchmarkTable1Campaign -benchtime 3x -run XXX ./internal/experiments/

# Machine-readable benchmark baseline: a fixed small benchmark set
# (attack hot path + campaign orchestration) parsed into
# BENCH_baseline.json via cmd/benchjson. Values are machine-dependent;
# the committed file records the reference machine's numbers. Override
# BENCH_OUT to write elsewhere (the regression guard measures into a
# scratch file instead of clobbering the baseline).
BENCH_OUT ?= BENCH_baseline.json
bench-json:
	$(GO) test -bench 'BenchmarkAttackNilTracer$$|BenchmarkAttackNilMetrics$$|BenchmarkAttackMetrics$$|BenchmarkTable1$$|BenchmarkTable1Campaign$$' \
		-benchtime 3x -run XXX . ./internal/experiments/ | \
		$(GO) run ./cmd/benchjson -o $(BENCH_OUT)

# Perf-regression gate: re-measure the benchmark set and fail on any
# benchmark more than BENCH_TOLERANCE_PCT (default 25) percent slower
# than the committed BENCH_baseline.json.
bench-guard:
	scripts/ci_bench_guard.sh

# Fast smoke of the full paper reproduction.
quick:
	$(GO) run ./cmd/experiments -quick all
