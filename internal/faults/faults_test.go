package faults

import (
	"errors"
	"strings"
	"testing"

	"grinch/internal/obs"
	"grinch/internal/probe"
)

func TestFaultWindows(t *testing.T) {
	cases := []struct {
		name   string
		f      Fault
		active []uint64
		quiet  []uint64
	}{
		{
			name:   "open-ended from start",
			f:      Fault{Kind: KindDrop, Start: 5},
			active: []uint64{5, 6, 100},
			quiet:  []uint64{1, 4},
		},
		{
			name:   "zero start normalizes to 1",
			f:      Fault{Kind: KindDrop, Length: 3},
			active: []uint64{1, 2, 3},
			quiet:  []uint64{4, 50},
		},
		{
			name:   "periodic window",
			f:      Fault{Kind: KindBurst, FalsePresence: 0.5, Start: 10, Length: 2, Period: 10},
			active: []uint64{10, 11, 20, 21, 110},
			quiet:  []uint64{9, 12, 19, 22},
		},
	}
	for _, c := range cases {
		for _, enc := range c.active {
			if !c.f.active(enc) {
				t.Errorf("%s: enc %d should be active", c.name, enc)
			}
		}
		for _, enc := range c.quiet {
			if c.f.active(enc) {
				t.Errorf("%s: enc %d should be quiet", c.name, enc)
			}
		}
	}
}

func TestPlanValidation(t *testing.T) {
	bad := []struct {
		plan Plan
		want string
	}{
		{Plan{Faults: []Fault{{Kind: "gamma-ray"}}}, "unknown kind"},
		{Plan{Faults: []Fault{{Kind: "gamma-ray"}}}, "burst, drop, misalign, transient"},
		{Plan{Faults: []Fault{{}}}, "no kind"},
		{Plan{Faults: []Fault{{Kind: KindBurst}}}, "false_presence"},
		{Plan{Faults: []Fault{{Kind: KindBurst, FalsePresence: 1.5}}}, "[0,1)"},
		{Plan{Faults: []Fault{{Kind: KindMisalign}}}, "offset"},
		{Plan{Faults: []Fault{{Kind: KindDrop, Probability: 2}}}, "[0,1]"},
		{Plan{Faults: []Fault{{Kind: KindDrop, Length: 5, Period: 3}}}, "exceeds period"},
	}
	for _, c := range bad {
		err := c.plan.Validate()
		if err == nil {
			t.Errorf("plan %+v accepted", c.plan)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("plan %+v: error %q does not mention %q", c.plan, err, c.want)
		}
	}
	ok := Plan{Faults: []Fault{
		{Kind: KindBurst, FalsePresence: 0.2, FalseAbsence: 0.1, Start: 1, Length: 8, Period: 64},
		{Kind: KindDrop, Probability: 0.05},
		{Kind: KindMisalign, Offset: -1, Start: 100, Length: 10},
		{Kind: KindTransient, Probability: 0.01},
	}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestParsePlanStrict(t *testing.T) {
	if _, err := ParsePlan([]byte(`{"name":"x","faults":[{"kind":"drop","probabillity":0.5}]}`)); err == nil {
		t.Fatal("misspelled field accepted")
	}
	p, err := ParsePlan([]byte(`{"name":"x","seed":7,"faults":[{"kind":"drop","probability":0.5}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "x" || p.Seed != 7 || len(p.Faults) != 1 {
		t.Fatalf("parsed %+v", p)
	}
}

func TestParsePlans(t *testing.T) {
	// Object form: a single (possibly unnamed) plan.
	ps, err := ParsePlans([]byte(`{"faults":[{"kind":"drop"}]}`))
	if err != nil || len(ps) != 1 {
		t.Fatalf("object form: %v %v", ps, err)
	}
	// Array form: names are grid-axis values, so they must exist and be
	// distinct.
	ps, err = ParsePlans([]byte(`[{"name":"a","faults":[{"kind":"drop"}]},{"name":"b"}]`))
	if err != nil || len(ps) != 2 {
		t.Fatalf("array form: %v %v", ps, err)
	}
	if _, err = ParsePlans([]byte(`[{"faults":[{"kind":"drop"}]}]`)); err == nil {
		t.Fatal("unnamed plan in list accepted")
	}
	if _, err = ParsePlans([]byte(`[{"name":"a"},{"name":"a"}]`)); err == nil {
		t.Fatal("duplicate plan names accepted")
	}
}

// fakeChan is a scripted GIFT-64 channel: every collection returns the
// same line set and records the probed round.
type fakeChan struct {
	encs   uint64
	set    probe.LineSet
	rounds []int
}

func (c *fakeChan) Collect(pt uint64, r int) probe.LineSet {
	c.encs++
	c.rounds = append(c.rounds, r)
	return c.set
}
func (c *fakeChan) Lines() int          { return 16 }
func (c *fakeChan) Encryptions() uint64 { return c.encs }

func TestDropAndTransientSemantics(t *testing.T) {
	plan := Plan{Name: "t", Faults: []Fault{
		{Kind: KindDrop, Start: 2, Length: 1},
		{Kind: KindTransient, Start: 4, Length: 1},
	}}
	ch := &fakeChan{set: probe.LineSet(0b1010)}
	in := NewInjector(ch, plan, 1)

	got, err := in.CollectErr(1, 3)
	if err != nil || got != ch.set {
		t.Fatalf("enc 1: got %v, %v; want clean passthrough", got, err)
	}
	got, err = in.CollectErr(2, 3)
	if err != nil || got != 0 {
		t.Fatalf("enc 2 (drop): got %v, %v; want empty set", got, err)
	}
	if _, err = in.CollectErr(3, 3); err != nil {
		t.Fatalf("enc 3: unexpected error %v", err)
	}
	_, err = in.CollectErr(4, 3)
	var te *TransientError
	if !errors.As(err, &te) || !te.Transient() || te.Enc != 4 {
		t.Fatalf("enc 4 (transient): got %v, want *TransientError at enc 4", err)
	}
	// The transient consumed the victim encryption: the probe failed,
	// not the victim, so windows and budgets keep advancing.
	if ch.Encryptions() != 4 {
		t.Fatalf("victim performed %d encryptions, want 4", ch.Encryptions())
	}
	// Plain Collect degrades the same transient to a dropped set.
	ch2 := &fakeChan{set: ch.set}
	in2 := NewInjector(ch2, plan, 1)
	for i := 0; i < 3; i++ {
		in2.Collect(uint64(i), 3)
	}
	if got := in2.Collect(9, 3); got != 0 {
		t.Fatalf("Collect under transient: got %v, want empty", got)
	}
	st := in2.Stats()
	if st.Drops != 1 || st.Transients != 1 || st.Total() != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestMisalignShiftsProbeRound(t *testing.T) {
	plan := Plan{Faults: []Fault{{Kind: KindMisalign, Offset: 2, Start: 2, Length: 1}}}
	ch := &fakeChan{set: 1}
	in := NewInjector(ch, plan, 1)
	in.Collect(1, 3)
	in.Collect(2, 3)
	in.Collect(3, 3)
	want := []int{3, 5, 3}
	for i, r := range want {
		if ch.rounds[i] != r {
			t.Fatalf("rounds %v, want %v", ch.rounds, want)
		}
	}
	// A negative offset clamps at round 1.
	down := Plan{Faults: []Fault{{Kind: KindMisalign, Offset: -5}}}
	ch2 := &fakeChan{set: 1}
	NewInjector(ch2, down, 1).Collect(1, 3)
	if ch2.rounds[0] != 1 {
		t.Fatalf("negative offset probed round %d, want clamp to 1", ch2.rounds[0])
	}
}

func TestBurstOverlaysCorrelatedNoise(t *testing.T) {
	plan := Plan{Faults: []Fault{{Kind: KindBurst, FalsePresence: 0.9, FalseAbsence: 0.9, Start: 1, Length: 64}}}
	ch := &fakeChan{set: probe.LineSet(0x00ff)}
	in := NewInjector(ch, plan, 3)
	flips := 0
	for enc := 1; enc <= 64; enc++ {
		got := in.Collect(uint64(enc), 1)
		diff := got ^ ch.set
		flips += diff.Count()
	}
	// 16 lines × 64 encryptions × 0.9 flip probability ≈ 920 expected
	// flips; anything above half says the burst is really firing.
	if flips < 500 {
		t.Fatalf("only %d line flips across the burst window", flips)
	}
	if in.Stats().Bursts != 64 {
		t.Fatalf("burst fired %d times, want 64", in.Stats().Bursts)
	}
}

// TestDecisionsAreRandomAccess pins the determinism contract: the
// injection decision for encryption n is a pure function of
// (plan, seed, n), so two injectors over channels at different starting
// points agree wherever their encryption counters overlap.
func TestDecisionsAreRandomAccess(t *testing.T) {
	plan := Plan{Seed: 9, Faults: []Fault{
		{Kind: KindDrop, Probability: 0.3},
		{Kind: KindBurst, FalsePresence: 0.4, FalseAbsence: 0.2},
	}}
	base := probe.LineSet(0x0f0f)

	collect := func(skip int) []probe.LineSet {
		ch := &fakeChan{set: base}
		in := NewInjector(ch, plan, 5)
		for i := 0; i < skip; i++ {
			in.Collect(0, 1)
		}
		var out []probe.LineSet
		for i := 0; i < 32; i++ {
			out = append(out, in.Collect(0, 1))
		}
		return out
	}

	a := collect(8)  // encryptions 9..40
	b := collect(20) // encryptions 21..52
	for i := 0; i < 20; i++ {
		// a's element i+12 and b's element i are the same encryption.
		if a[i+12] != b[i] {
			t.Fatalf("encryption %d decided differently: %v vs %v", 21+i, a[i+12], b[i])
		}
	}
}

func TestInjectorEmitsFaultEvents(t *testing.T) {
	plan := Plan{Faults: []Fault{{Kind: KindDrop, Start: 3, Length: 2}}}
	ch := &fakeChan{set: 1}
	in := NewInjector(ch, plan, 1)
	var buf obs.Buffer
	in.SetTracer(&buf)
	for i := 0; i < 5; i++ {
		in.Collect(0, 1)
	}
	if len(buf.Events) != 2 {
		t.Fatalf("got %d events, want 2: %+v", len(buf.Events), buf.Events)
	}
	for i, e := range buf.Events {
		if e.Kind != obs.KindFaultInjected || e.Fault != string(KindDrop) || e.Enc != uint64(3+i) {
			t.Fatalf("event %d: %+v", i, e)
		}
	}
}

func TestEmptyPlanIsIdentity(t *testing.T) {
	ch := &fakeChan{set: probe.LineSet(0b0110)}
	in := NewInjector(ch, Plan{}, 1)
	for i := 0; i < 10; i++ {
		set, err := in.CollectErr(uint64(i), 2)
		if err != nil || set != ch.set {
			t.Fatalf("empty plan disturbed the channel: %v, %v", set, err)
		}
	}
	if in.Stats().Total() != 0 {
		t.Fatalf("empty plan injected %d faults", in.Stats().Total())
	}
}
