package cofb_test

import (
	"fmt"

	"grinch/internal/cofb"
)

// Seal and open a message with associated data.
func ExampleAEAD_Seal() {
	key := [16]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	aead := cofb.New(key)

	var nonce [cofb.NonceSize]byte
	nonce[15] = 1 // never reuse a nonce under the same key

	sealed := aead.Seal(nil, nonce, []byte("telemetry frame 0042"), []byte("header"))
	opened, err := aead.Open(nil, nonce, sealed, []byte("header"))
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s\n", opened)

	// Tampering with any byte is detected.
	sealed[0] ^= 1
	_, err = aead.Open(nil, nonce, sealed, []byte("header"))
	fmt.Println(err)
	// Output:
	// telemetry frame 0042
	// cofb: message authentication failed
}
