// Command socsim runs one probed encryption on a platform model and
// prints the attacker's probe-window timeline — a direct view of the
// victim/attacker race the GRINCH paper's Table II measures.
//
// Usage:
//
//	socsim -platform soc -mhz 10
//	socsim -platform mpsoc -mhz 50 -line-bytes 2
package main

import (
	"flag"
	"fmt"
	"os"

	"grinch/internal/bitutil"
	"grinch/internal/rng"
	"grinch/internal/soc"
)

func main() {
	var (
		platform  = flag.String("platform", "soc", "soc (single processor + RTOS) or mpsoc (tile mesh)")
		primitive = flag.String("primitive", "flush-reload", "single-SoC probing primitive: flush-reload or prime-probe")
		mhz       = flag.Uint64("mhz", 10, "clock frequency in MHz")
		lineBytes = flag.Int("line-bytes", 1, "cache line size in bytes")
		seed      = flag.Uint64("seed", 1, "victim key seed")
		pt        = flag.Uint64("pt", 0x0123456789abcdef, "plaintext block")
	)
	flag.Parse()

	r := rng.New(*seed)
	key := bitutil.Word128{Lo: r.Uint64(), Hi: r.Uint64()}
	params := soc.DefaultParams(*mhz)
	params.CacheLineBytes = *lineBytes
	switch *primitive {
	case "flush-reload":
		params.Primitive = soc.PrimitiveFlushReload
	case "prime-probe":
		params.Primitive = soc.PrimitivePrimeProbe
	default:
		fmt.Fprintf(os.Stderr, "socsim: unknown primitive %q\n", *primitive)
		os.Exit(2)
	}

	var p soc.Platform
	switch *platform {
	case "soc":
		p = soc.NewSingleSoC(key, params)
	case "mpsoc":
		m := soc.NewMPSoC(key, params)
		fmt.Printf("remote cache access time: %v (paper: ≈400ns at 50 MHz)\n", m.RemoteAccessTime())
		p = m
	default:
		fmt.Fprintf(os.Stderr, "socsim: unknown platform %q\n", *platform)
		os.Exit(2)
	}

	sess := p.RunSession(*pt)
	fmt.Printf("platform:   %s at %d MHz, %d-byte cache lines\n", *platform, *mhz, *lineBytes)
	fmt.Printf("plaintext:  %016x\n", *pt)
	fmt.Printf("ciphertext: %016x\n", sess.Ciphertext)
	fmt.Printf("probe windows (%d):\n", len(sess.Windows))
	shown := sess.Windows
	const maxShown = 40
	truncated := false
	if len(shown) > maxShown {
		shown = shown[:maxShown]
		truncated = true
	}
	for i, w := range shown {
		fmt.Printf("  #%-3d t=%-12v rounds %2d..%-2d lines=%s\n", i+1, w.At, w.FirstRound, w.LastRound, w.Set)
	}
	if truncated {
		fmt.Printf("  … %d more\n", len(sess.Windows)-maxShown)
	}
	fmt.Printf("earliest probed round: %d (paper Table II: SoC 2/4/8 at 10/25/50 MHz; MPSoC 1)\n",
		sess.Windows[0].LastRound)
}
