package experiments

import (
	"strings"
	"testing"
)

func TestPlatformEffort10MHz(t *testing.T) {
	rows := PlatformEffort(Options{Trials: 1, Budget: 50_000, Seed: 11}, []uint64{10})
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.DroppedOut {
			t.Fatalf("%s at %d MHz dropped out", r.Platform, r.MHz)
		}
		if r.Encryptions == 0 {
			t.Fatalf("%s: zero effort", r.Platform)
		}
	}
	// The single SoC probes at round 2 (wide window, rounds 1..2); the
	// MPSoC probes per round — the MPSoC must not be dramatically worse.
	if rows[0].WindowRounds != 2 || rows[1].WindowRounds != 1 {
		t.Fatalf("first-probe rounds: %d, %d", rows[0].WindowRounds, rows[1].WindowRounds)
	}
}

func TestRenderPlatformEffort(t *testing.T) {
	rows := []PlatformEffortRow{
		{Platform: "Single-processing SoC", MHz: 10, Encryptions: 1234, WindowRounds: 2},
		{Platform: "Multi-processing SoC", MHz: 10, Encryptions: 99999, DroppedOut: true, WindowRounds: 1},
	}
	s := RenderPlatformEffort(rows)
	if !strings.Contains(s, "Single-processing SoC") || !strings.Contains(s, ">") {
		t.Fatalf("render malformed:\n%s", s)
	}
}

func TestFig3Chart(t *testing.T) {
	rows := []Fig3Row{
		{ProbeRound: 1, WithFlush: Cell{Median: 96, Trials: []uint64{96}}, WithoutFlush: Cell{Median: 400, Trials: []uint64{400}}},
		{ProbeRound: 9, WithFlush: Cell{DroppedOut: true, Trials: []uint64{1000000}}, WithoutFlush: Cell{DroppedOut: true, Trials: []uint64{1000000}}},
	}
	s := Fig3Chart(rows)
	if !strings.Contains(s, "█") || !strings.Contains(s, "░") || !strings.Contains(s, ">1.0M") {
		t.Fatalf("chart malformed:\n%s", s)
	}
}
