package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between adjacent seeds in 100 draws", same)
	}
}

func TestReseedRestartsStream(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after Reseed, draw %d = %#x, want %#x", i, got, first[i])
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 16, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-squared test over 16 buckets; loose threshold to keep the test
	// deterministic and non-flaky (the stream is fixed by the seed).
	r := New(99)
	const buckets, draws = 16, 160000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	expected := float64(draws) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 degrees of freedom: p=0.001 critical value ≈ 37.7.
	if chi2 > 37.7 {
		t.Fatalf("chi-squared = %.2f, distribution looks non-uniform", chi2)
	}
}

func TestNibbleRange(t *testing.T) {
	r := New(5)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Nibble()
		if v > 15 {
			t.Fatalf("Nibble() = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 16 {
		t.Fatalf("only %d of 16 nibble values seen in 1000 draws", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of Float64 draws = %.4f, want ≈0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	for _, n := range []int{0, 1, 2, 5, 64} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(17)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collide (%d/100)", same)
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(23)
	trues := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool() {
			trues++
		}
	}
	ratio := float64(trues) / n
	if ratio < 0.49 || ratio > 0.51 {
		t.Fatalf("Bool() true ratio = %.4f", ratio)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn16(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(16)
	}
}

func TestSnapshotRestoreReplaysStream(t *testing.T) {
	r := New(99)
	for i := 0; i < 37; i++ {
		r.Uint64()
	}
	snap := r.Snapshot()
	first := make([]uint64, 64)
	for i := range first {
		first[i] = r.Uint64()
	}
	// Mixed draw kinds after the capture must not matter: Restore rewinds
	// the raw state, not a draw count.
	r.Intn(7)
	r.Float64()
	r.Restore(snap)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("replay diverged at draw %d", i)
		}
	}
}

// TestIntnPowerOfTwoMatchesLemire pins the power-of-two fast path to the
// general Lemire path: same value, same single-draw stream consumption.
func TestIntnPowerOfTwoMatchesLemire(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64, 1024} {
		a := New(uint64(n))
		b := New(uint64(n))
		for i := 0; i < 2000; i++ {
			got := a.Intn(n)
			// Reference: the un-shortcut Lemire computation over the same
			// single draw (rejection never fires for power-of-two n).
			v := b.Uint64()
			hi, _ := mul64(v, uint64(n))
			if got != int(hi) {
				t.Fatalf("Intn(%d) draw %d: fast path %d, Lemire %d", n, i, got, hi)
			}
			if got < 0 || got >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, got)
			}
		}
		// Streams must stay in lockstep (exactly one draw per call).
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Intn(%d) consumed a different number of draws", n)
		}
	}
}

func TestIntnPow2MatchesIntn(t *testing.T) {
	for _, k := range []uint{1, 2, 3, 5, 10, 32, 63} {
		a := New(uint64(k) * 7)
		b := New(uint64(k) * 7)
		n := 1 << k
		for i := 0; i < 2000; i++ {
			got := a.IntnPow2(k)
			var want int
			if k < 31 {
				want = b.Intn(n)
			} else {
				// Intn takes an int; for huge k compare against the raw
				// shifted draw instead.
				want = int(b.Uint64() >> (64 - k))
			}
			if got != want {
				t.Fatalf("IntnPow2(%d) draw %d: got %d, Intn(%d) %d", k, i, got, n, want)
			}
		}
		// One draw per call: the streams must stay in lockstep.
		if a.Uint64() != b.Uint64() {
			t.Fatalf("IntnPow2(%d) consumed a different number of draws", k)
		}
	}
}
