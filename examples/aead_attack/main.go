// AEAD attack: GRINCH against GIFT-COFB, the NIST LWC finalist built on
// GIFT-128 (the paper's motivation: "7 [candidates] are based on GIFT
// cipher"). COFB encrypts the nonce before anything else — Y₀ = E_K(N)
// — so an attacker who requests encryptions with chosen nonces is
// handing the block cipher chosen plaintexts, and the S-box cache leak
// of that first call carries the key. GIFT-128 consumes 64 key bits per
// round, so two attacked rounds recover the whole AEAD key.
//
//	go run ./examples/aead_attack
package main

import (
	"fmt"
	"log"

	"grinch/internal/bitutil"
	"grinch/internal/cofb"
	"grinch/internal/core"
	"grinch/internal/oracle"
)

func main() {
	// --- The victim: an IoT gateway sealing telemetry with GIFT-COFB. ---
	key := [16]byte{0x4c, 0x57, 0x43, 0x2d, 0x66, 0x69, 0x6e, 0x61,
		0x6c, 0x69, 0x73, 0x74, 0x21, 0x21, 0x21, 0x21}
	gateway := cofb.New(key)

	nonce := [cofb.NonceSize]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	telemetry := []byte(`{"sensor":"turbine-7","rpm":3612,"temp":81.4}`)
	sealed := gateway.Seal(nil, nonce, telemetry, []byte("v2"))
	fmt.Printf("gateway seals %d bytes of telemetry (+%d-byte tag)\n\n", len(telemetry), cofb.TagSize)

	// --- The attacker: co-resident malware that submits encryption
	// requests with chosen nonces and probes the S-box table while the
	// mode computes Y₀ = E_K(N). The channel below is that leak: each
	// Collect models one Seal call on a crafted nonce. ---
	channel, err := oracle.New128FromTracer(gateway, oracle.Config{
		ProbeRound: 1,
		Flush:      true,
		LineWords:  1,
	})
	if err != nil {
		log.Fatal(err)
	}
	attacker, err := core.NewAttacker128(channel, core.Config{Seed: 2024})
	if err != nil {
		log.Fatal(err)
	}

	res, err := attacker.RecoverKey128()
	if err != nil {
		log.Fatalf("attack failed: %v", err)
	}

	kb := res.Key.Bytes()
	fmt.Printf("victim AEAD key: %x\n", key)
	fmt.Printf("recovered key:   %x\n", kb)
	fmt.Printf("sealed nonces consumed: %d (two attacked rounds — GIFT-128\n", res.Encryptions)
	fmt.Printf("spends 64 key bits per round, vs four rounds for GIFT-64)\n\n")

	if kb != key {
		log.Fatal("key mismatch")
	}

	// --- Endgame: the attacker decrypts the captured telemetry. ---
	stolen := cofb.NewFromWord(bitutil.Word128FromBytes(key))
	opened, err := stolen.Open(nil, nonce, sealed, []byte("v2"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decrypted capture: %s\n", opened)
	fmt.Println("full AEAD key recovered through the cache side channel.")
}
