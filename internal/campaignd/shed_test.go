package campaignd

import (
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"grinch/internal/campaign"
	"grinch/internal/obs/metrics"
)

// TestIngestShedding pins the overload-shedding handshake end to end:
// with every ingest slot occupied the coordinator answers 429 +
// Retry-After instead of queueing, the shed counter and fleet status
// record it, and the client's backoff turns the refusal into a delayed
// success once a slot frees up.
func TestIngestShedding(t *testing.T) {
	spec := campaign.Spec{Name: "tiny", Kind: "toy", Seed: 7, Trials: 4}
	srv, err := NewServer(Options{MaxInflightIngest: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	if _, err := srv.Submit(SubmitRequest{Spec: spec}); err != nil {
		t.Fatal(err)
	}

	pol := RetryPolicy{Report: 4, Base: time.Millisecond, Max: 5 * time.Millisecond, Seed: 3}
	var release func()
	var once sync.Once
	client := &Client{Base: ts.URL, Retry: &pol,
		OnRetry: func(class string, attempt int, wait time.Duration, err error) {
			// The first attempt was shed; free the slot so the retry lands.
			once.Do(release)
		}}
	lease, err := client.Lease("w-shed")
	if err != nil || lease.Lease == nil {
		t.Fatalf("lease: %+v, %v", lease, err)
	}

	// Occupy the only ingest slot, as a slow concurrent report would.
	rel, ok := srv.admitIngest()
	if !ok {
		t.Fatal("the first admission was refused with an empty server")
	}
	release = rel

	j := spec.Jobs()[0]
	res := campaign.Result{Job: j.Index, Point: j.Point, Seed: j.Seed,
		Measurement: campaign.Measurement{Encryptions: 1}}
	if err := client.Report(lease.Lease.ID, []campaign.Result{res}); err != nil {
		t.Fatalf("report through a shed: %v", err)
	}

	if got := srv.Shed(); got < 1 {
		t.Fatalf("Shed() = %d, want at least 1", got)
	}
	if m := srv.Metrics(); m.Shed < 1 {
		t.Errorf("MetricsSnapshot.Shed = %d, want at least 1", m.Shed)
	}
	if fs := srv.FleetStatus(); fs.Retry.ShedTotal < 1 {
		t.Errorf("FleetStatus retry health missed the shed: %+v", fs.Retry)
	}
	if _, ok := metrics.Find(srv.PromSnapshot(), "campaignd_shed_total"); !ok {
		t.Error("campaignd_shed_total missing from the Prometheus exposition")
	}
	// The result itself must have landed despite the initial refusal.
	if m := srv.Metrics(); m.JobsDone != 1 {
		t.Errorf("jobs done = %d after the retried report, want 1", m.JobsDone)
	}
}

// TestAdmitIngestDisabled: a negative limit turns shedding off.
func TestAdmitIngestDisabled(t *testing.T) {
	srv, err := NewServer(Options{MaxInflightIngest: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for i := 0; i < 1000; i++ {
		if _, ok := srv.admitIngest(); !ok {
			t.Fatal("admission refused with shedding disabled")
		}
	}
	if srv.Shed() != 0 {
		t.Errorf("Shed() = %d with shedding disabled", srv.Shed())
	}
}

// TestDefaultClientHasTimeout pins the satellite fix: the fallback
// http.Client must carry a real timeout (the pre-hardening client used
// http.DefaultClient, which never times out).
func TestDefaultClientHasTimeout(t *testing.T) {
	if defaultHTTPClient.Timeout <= 0 {
		t.Fatal("the default client has no timeout; a stalled coordinator would hang workers forever")
	}
}
