// Command giftcli encrypts and decrypts single blocks with GIFT-64 and
// GIFT-128, optionally using the bitsliced (constant-time) or
// reshaped-table (hardened) implementations.
//
// Usage:
//
//	giftcli -mode encrypt -variant 64  -key <32 hex> -block <16 hex>
//	giftcli -mode decrypt -variant 128 -key <32 hex> -block <32 hex>
//	giftcli -mode encrypt -variant 64  -impl bitsliced -key ... -block ...
//	giftcli -selftest
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"

	"grinch/internal/bitutil"
	"grinch/internal/countermeasure"
	"grinch/internal/gift"
)

func main() {
	var (
		mode     = flag.String("mode", "encrypt", "encrypt or decrypt")
		variant  = flag.Int("variant", 64, "block size: 64 or 128")
		impl     = flag.String("impl", "table", "implementation: table, bitsliced or reshaped")
		keyHex   = flag.String("key", "", "128-bit key as 32 hex digits")
		blockHex = flag.String("block", "", "plaintext/ciphertext block in hex (16 or 32 digits)")
		selftest = flag.Bool("selftest", false, "run the official test vectors and exit")
	)
	flag.Parse()

	if *selftest {
		runSelfTest()
		return
	}

	key, err := parseKey(*keyHex)
	if err != nil {
		fatalf("bad -key: %v", err)
	}
	block, err := hex.DecodeString(*blockHex)
	if err != nil {
		fatalf("bad -block: %v", err)
	}

	switch *variant {
	case 64:
		if len(block) != 8 {
			fatalf("GIFT-64 blocks are 16 hex digits, got %d", len(*blockHex))
		}
		out := run64(*mode, *impl, key, block)
		fmt.Printf("%x\n", out)
	case 128:
		if len(block) != 16 {
			fatalf("GIFT-128 blocks are 32 hex digits, got %d", len(*blockHex))
		}
		out := run128(*mode, *impl, key, block)
		fmt.Printf("%x\n", out)
	default:
		fatalf("-variant must be 64 or 128")
	}
}

func parseKey(s string) ([16]byte, error) {
	var key [16]byte
	b, err := hex.DecodeString(s)
	if err != nil {
		return key, err
	}
	if len(b) != 16 {
		return key, fmt.Errorf("need 32 hex digits, got %d", len(s))
	}
	copy(key[:], b)
	return key, nil
}

func run64(mode, impl string, key [16]byte, block []byte) []byte {
	c := gift.NewCipher64(key)
	var pt uint64
	for _, b := range block {
		pt = pt<<8 | uint64(b)
	}
	var out uint64
	switch {
	case mode == "encrypt" && impl == "table":
		out = c.EncryptBlock(pt)
	case mode == "encrypt" && impl == "bitsliced":
		out = c.EncryptBlockBitsliced(pt)
	case mode == "encrypt" && impl == "reshaped":
		out = countermeasure.NewHardenedCipher64(bitutil.Word128FromBytes(key)).EncryptBlock(pt)
	case mode == "decrypt" && impl == "table":
		out = c.DecryptBlock(pt)
	case mode == "decrypt" && impl == "bitsliced":
		out = c.DecryptBlockBitsliced(pt)
	default:
		fatalf("unsupported mode/impl combination %q/%q for GIFT-64", mode, impl)
	}
	res := make([]byte, 8)
	for i := 7; i >= 0; i-- {
		res[i] = byte(out)
		out >>= 8
	}
	return res
}

func run128(mode, impl string, key [16]byte, block []byte) []byte {
	c := gift.NewCipher128(key)
	out := make([]byte, 16)
	switch {
	case mode == "encrypt" && impl == "table":
		c.Encrypt(out, block)
	case mode == "decrypt" && impl == "table":
		c.Decrypt(out, block)
	case mode == "encrypt" && impl == "bitsliced":
		var in [16]byte
		copy(in[:], block)
		w := c.EncryptBlockBitsliced(bitutil.Word128FromBytes(in))
		b := w.Bytes()
		copy(out, b[:])
	default:
		fatalf("unsupported mode/impl combination %q/%q for GIFT-128", mode, impl)
	}
	return out
}

func runSelfTest() {
	vectors := []struct {
		variant   int
		key, p, c string
	}{
		{64, "00000000000000000000000000000000", "0000000000000000", "f62bc3ef34f775ac"},
		{64, "fedcba9876543210fedcba9876543210", "fedcba9876543210", "c1b71f66160ff587"},
		{128, "00000000000000000000000000000000", "00000000000000000000000000000000", "cd0bd738388ad3f668b15a36ceb6ff92"},
		{128, "fedcba9876543210fedcba9876543210", "fedcba9876543210fedcba9876543210", "8422241a6dbf5a9346af468409ee0152"},
	}
	ok := true
	for _, v := range vectors {
		key, _ := parseKey(v.key)
		block, _ := hex.DecodeString(v.p)
		var got string
		if v.variant == 64 {
			got = fmt.Sprintf("%x", run64("encrypt", "table", key, block))
		} else {
			got = fmt.Sprintf("%x", run128("encrypt", "table", key, block))
		}
		status := "ok"
		if got != v.c {
			status = "FAIL (got " + got + ")"
			ok = false
		}
		fmt.Printf("GIFT-%-3d key=%s pt=%s ct=%s %s\n", v.variant, v.key, v.p, v.c, status)
	}
	if !ok {
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "giftcli: "+format+"\n", args...)
	os.Exit(2)
}
