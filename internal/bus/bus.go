// Package bus models the shared on-chip bus of the paper's
// single-processor SoC: one transaction at a time, FIFO arbitration, and
// a fixed cycle cost per transfer. Requesters are simulation processes
// that block until their transfer completes, so contention shows up as
// virtual-time delay exactly as it would on the modelled interconnect.
package bus

import "grinch/internal/sim"

// Stats accumulates bus activity.
type Stats struct {
	Transactions uint64
	// BusyTime is the total time the bus spent transferring.
	BusyTime sim.Time
	// WaitTime is the total time requesters spent queued for the bus.
	WaitTime sim.Time
}

// Bus is a single shared bus with FIFO arbitration.
type Bus struct {
	k     *sim.Kernel
	clock sim.Clock
	// tail is the time at which the last granted transaction releases
	// the bus; the next requester is granted at max(now, tail).
	tail  sim.Time
	stats Stats
}

// New creates a bus in clock domain clock.
func New(k *sim.Kernel, clock sim.Clock) *Bus {
	return &Bus{k: k, clock: clock}
}

// Transact performs one bus transaction of the given length in bus
// cycles. The calling process blocks until the transfer finishes and
// receives the total elapsed time (queueing + transfer).
func (b *Bus) Transact(p *sim.Proc, cycles uint64) sim.Time {
	start := p.Now()
	grant := start
	if b.tail > grant {
		grant = b.tail
	}
	dur := b.clock.Cycles(cycles)
	b.tail = grant + dur
	b.stats.Transactions++
	b.stats.BusyTime += dur
	b.stats.WaitTime += grant - start
	p.WaitUntil(b.tail)
	return b.tail - start
}

// Stats returns a copy of the counters.
func (b *Bus) Stats() Stats { return b.stats }

// Utilization returns BusyTime as a fraction of elapsed simulation time.
func (b *Bus) Utilization() float64 {
	if b.k.Now() == 0 {
		return 0
	}
	return float64(b.stats.BusyTime) / float64(b.k.Now())
}
