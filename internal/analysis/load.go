package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("grinch/internal/gift").
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Fset is the world-shared file set.
	Fset *token.FileSet
	// Files are the parsed non-test sources, comments included.
	Files []*ast.File
	// Types and Info are the go/types results. Type checking runs with
	// stubbed non-module imports, so Info is complete for everything
	// defined in this module and best-effort for stdlib-typed
	// expressions — exactly what the passes need.
	Types *types.Package
	Info  *types.Info
}

// World is a loaded module: every package, the shared file set, the
// module-wide secret annotation table and the suppression index.
type World struct {
	// ModulePath is the module identity from go.mod ("grinch").
	ModulePath string
	// Root is the module root directory.
	Root string
	Fset *token.FileSet
	// Pkgs holds every loaded package in deterministic (path) order.
	Pkgs []*Package

	byPath map[string]*Package
	// secrets is the module-wide annotation table (annotate.go).
	secrets *secretTable
	// ignores maps file name -> line -> ignored rules (ignore.go).
	ignores map[string]map[int][]string
	// geoms is the container-geometry table for the quant model
	// (quant.go): declaration-inferred and annotated sizes.
	geoms map[types.Object]Geometry
}

// PackageByPath returns a loaded package, or nil.
func (w *World) PackageByPath(path string) *Package { return w.byPath[path] }

// stubImporter satisfies go/types for imports outside the module by
// returning empty, complete packages. Selections into them fail to
// resolve; the type checker records the error with the configured
// handler and keeps going. The determinism rules work syntactically off
// import paths, and the leakage rules only need module-internal types,
// so the stubs cost nothing — and keep the analyzer free of go/packages
// and of shelling out to the go tool.
type stubImporter struct {
	known map[string]*types.Package
}

func (si *stubImporter) Import(path string) (*types.Package, error) {
	if p, ok := si.known[path]; ok {
		return p, nil
	}
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	// "v2"-style elements make bad package names; use the parent.
	if strings.HasPrefix(name, "v") && len(name) <= 3 {
		parts := strings.Split(path, "/")
		if len(parts) >= 2 {
			name = parts[len(parts)-2]
		}
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	si.known[path] = p
	return p, nil
}

// LoadModule loads and type-checks every package of the module rooted
// at (or above) dir. All packages are loaded regardless of patterns —
// dependencies must be checked to type their dependents; pattern
// filtering happens at analysis time via Match.
func LoadModule(dir string) (*World, error) {
	root, modulePath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	w := &World{
		ModulePath: modulePath,
		Root:       root,
		Fset:       token.NewFileSet(),
		byPath:     map[string]*Package{},
		ignores:    map[string]map[int][]string{},
	}

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	// Parse every package first so the import graph is known.
	type parsed struct {
		pkg     *Package
		imports []string
	}
	byPath := map[string]*parsed{}
	var order []string
	for _, d := range dirs {
		rel, err := filepath.Rel(root, d)
		if err != nil {
			return nil, err
		}
		path := modulePath
		if rel != "." {
			path = modulePath + "/" + filepath.ToSlash(rel)
		}
		files, err := parseDir(w.Fset, d)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			continue
		}
		p := &parsed{pkg: &Package{Path: path, Dir: d, Fset: w.Fset, Files: files}}
		for _, f := range files {
			for _, imp := range f.Imports {
				ip := strings.Trim(imp.Path.Value, `"`)
				if ip == modulePath || strings.HasPrefix(ip, modulePath+"/") {
					p.imports = append(p.imports, ip)
				}
			}
		}
		byPath[path] = p
		order = append(order, path)
	}
	sort.Strings(order)

	// Type check in dependency order.
	si := &stubImporter{known: map[string]*types.Package{}}
	state := map[string]int{} // 0 unvisited, 1 in progress, 2 done
	var check func(path string) error
	check = func(path string) error {
		p, ok := byPath[path]
		if !ok {
			return fmt.Errorf("analysis: import %q not found in module", path)
		}
		switch state[path] {
		case 1:
			return fmt.Errorf("analysis: import cycle through %q", path)
		case 2:
			return nil
		}
		state[path] = 1
		for _, dep := range p.imports {
			if err := check(dep); err != nil {
				return err
			}
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{
			Importer: si,
			Error:    func(error) {}, // stub-import fallout; keep going
		}
		tp, _ := conf.Check(path, w.Fset, p.pkg.Files, info)
		p.pkg.Types = tp
		p.pkg.Info = info
		si.known[path] = tp
		state[path] = 2
		w.byPath[path] = p.pkg
		w.Pkgs = append(w.Pkgs, p.pkg)
		return nil
	}
	for _, path := range order {
		if err := check(path); err != nil {
			return nil, err
		}
	}

	w.finish()
	return w, nil
}

// LoadPackageDir loads one directory as a standalone package under the
// given import path, with no module context — the test-fixture loader.
func LoadPackageDir(dir, importPath string) (*World, *Package, error) {
	w := &World{
		ModulePath: "",
		Root:       dir,
		Fset:       token.NewFileSet(),
		byPath:     map[string]*Package{},
		ignores:    map[string]map[int][]string{},
	}
	files, err := parseDir(w.Fset, dir)
	if err != nil {
		return nil, nil, err
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer: &stubImporter{known: map[string]*types.Package{}},
		Error:    func(error) {},
	}
	tp, _ := conf.Check(importPath, w.Fset, files, info)
	pkg := &Package{Path: importPath, Dir: dir, Fset: w.Fset, Files: files, Types: tp, Info: info}
	w.Pkgs = []*Package{pkg}
	w.byPath[importPath] = pkg
	w.finish()
	return w, pkg, nil
}

// finish builds the world-level derived tables once all packages are in.
func (w *World) finish() {
	w.secrets = collectSecrets(w)
	w.geoms = collectGeometries(w)
	for _, pkg := range w.Pkgs {
		collectIgnores(w, pkg)
	}
}

// Match returns the loaded packages selected by Go-style patterns
// relative to the module root: "./..." (everything), "./x/..."
// (subtree), "./x" (exact). Bare import paths are accepted too.
func (w *World) Match(patterns []string) []*Package {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var out []*Package
	seen := map[string]bool{}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		pat = strings.TrimPrefix(pat, "./")
		recursive := false
		if pat == "..." {
			pat, recursive = "", true
		} else if strings.HasSuffix(pat, "/...") {
			pat, recursive = strings.TrimSuffix(pat, "/..."), true
		}
		for _, pkg := range w.Pkgs {
			rel := strings.TrimPrefix(strings.TrimPrefix(pkg.Path, w.ModulePath), "/")
			full := pkg.Path
			match := false
			switch {
			case recursive && pat == "":
				match = true
			case recursive:
				match = rel == pat || strings.HasPrefix(rel, pat+"/") ||
					full == pat || strings.HasPrefix(full, pat+"/")
			default:
				match = rel == pat || full == pat
			}
			if match && !seen[pkg.Path] {
				seen[pkg.Path] = true
				out = append(out, pkg)
			}
		}
	}
	return out
}

// findModule walks upward from dir to the enclosing go.mod.
func findModule(dir string) (root, modulePath string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// packageDirs lists every directory under root that holds non-test Go
// files, skipping testdata, vendored and hidden trees.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, path)
				return nil
			}
		}
		return nil
	})
	return dirs, err
}

// parseDir parses the non-test Go files of one directory. Files whose
// package clause disagrees with the directory majority are dropped (a
// main/doc split would otherwise poison type checking).
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	counts := map[string]int{}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
		counts[f.Name.Name]++
	}
	if len(counts) > 1 {
		major, n := "", 0
		for name, c := range counts {
			if c > n || (c == n && name < major) {
				major, n = name, c
			}
		}
		kept := files[:0]
		for _, f := range files {
			if f.Name.Name == major {
				kept = append(kept, f)
			}
		}
		files = kept
	}
	return files, nil
}
