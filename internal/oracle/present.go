package oracle

import (
	"grinch/internal/present"
	"grinch/internal/probe"
	"grinch/internal/rng"
)

// TracerP produces per-round S-box index states for a PRESENT victim
// (present.Cipher80 and present.Cipher128 implement it).
type TracerP interface {
	SBoxInputs(pt uint64) []uint64
}

// truncatedTracerP is the fast path for victims that can stop the trace
// early.
type truncatedTracerP interface {
	SBoxInputsN(pt uint64, n int) []uint64
}

// OracleP is the ideal probing channel against a table-based PRESENT
// victim. PRESENT adds the round key before SubCells, so the signal
// window for round key t starts at round t (not t+1 as in GIFT):
//
//	[t,  t+ProbeRound-1]  with flush
//	[1,  t+ProbeRound-1]  without flush
//
// It implements core.ChannelP.
type OracleP struct {
	cfg         Config
	tracer      TracerP //grinch:secret
	noise       *rng.Source
	lines       int
	encryptions uint64
}

// NewPresent builds an oracle over a PRESENT victim.
//
//grinch:secret tr
func NewPresent(tr TracerP, cfg Config) (*OracleP, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &OracleP{
		cfg:    cfg,
		tracer: tr,
		noise:  rng.New(cfg.Seed),
		lines:  16 / cfg.LineWords,
	}, nil
}

// Lines returns the number of cache lines the S-box table spans.
func (o *OracleP) Lines() int { return o.lines }

// Encryptions returns the victim's encryption count.
func (o *OracleP) Encryptions() uint64 { return o.encryptions }

// Collect runs one victim encryption and returns the observed line set
// for an attack on round key targetRound.
func (o *OracleP) Collect(pt uint64, targetRound int) probe.LineSet {
	o.encryptions++

	first := 1
	if o.cfg.Flush {
		first = targetRound
	}
	last := targetRound + o.cfg.ProbeRound - 1
	if last > present.Rounds {
		last = present.Rounds
	}

	var states []uint64
	if tt, ok := o.tracer.(truncatedTracerP); ok {
		states = tt.SBoxInputsN(pt, last)
	} else {
		states = o.tracer.SBoxInputs(pt)
	}
	var set probe.LineSet
	for r := first; r <= last; r++ {
		s := states[r-1]
		for i := uint(0); i < present.Segments; i++ {
			idx := int(s >> (4 * i) & 0xf)
			set = set.Add(idx / o.cfg.LineWords)
		}
	}
	return applyNoise(&o.cfg, o.noise, o.lines, set)
}
