// Command tracegen dumps the S-box memory-access trace of a cipher
// execution as CSV — the raw side-channel signal every experiment in
// this repository is built on. Useful for external analysis (plotting
// access patterns, feeding other cache models).
//
// Usage:
//
//	tracegen -cipher gift64  -key <32 hex> -pt <16 hex>
//	tracegen -cipher gift128 -key <32 hex> -pt <32 hex>
//	tracegen -cipher present80 -key <20 hex> -pt <16 hex>
//	tracegen -cipher gift64 -rounds 2 -lines 4   # line-granular view
//
// Output columns: round, segment, index, line (index/lineWords).
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"

	"grinch/internal/bitutil"
	"grinch/internal/gift"
	"grinch/internal/present"
)

func main() {
	var (
		cipher    = flag.String("cipher", "gift64", "gift64, gift128 or present80")
		keyHex    = flag.String("key", "", "key in hex (32 digits; 20 for present80)")
		ptHex     = flag.String("pt", "", "plaintext block in hex")
		rounds    = flag.Int("rounds", 0, "limit output to the first N rounds (0 = all)")
		lineWords = flag.Int("lines", 1, "table entries per cache line for the line column")
	)
	flag.Parse()

	if *lineWords < 1 || 16%*lineWords != 0 {
		fatalf("-lines must divide 16")
	}

	fmt.Println("round,segment,index,line")
	switch *cipher {
	case "gift64":
		key := parseBytes(*keyHex, 16)
		pt := parseUint64(*ptHex)
		var k [16]byte
		copy(k[:], key)
		c := gift.NewCipher64(k)
		emit := trimmedEmitter(*rounds, *lineWords)
		c.EncryptTraced(pt, gift.ObserverFunc(emit))
	case "gift128":
		key := parseBytes(*keyHex, 16)
		ptb := parseBytes(*ptHex, 16)
		var k, p [16]byte
		copy(k[:], key)
		copy(p[:], ptb)
		c := gift.NewCipher128(k)
		emit := trimmedEmitter(*rounds, *lineWords)
		c.EncryptTraced(bitutil.Word128FromBytes(p), gift.ObserverFunc(emit))
	case "present80":
		key := parseBytes(*keyHex, 10)
		pt := parseUint64(*ptHex)
		var k [10]byte
		copy(k[:], key)
		c := present.NewCipher80(k)
		emit := trimmedEmitter(*rounds, *lineWords)
		for r, state := range c.SBoxInputs(pt) {
			for seg := uint(0); seg < present.Segments; seg++ {
				emit(r+1, int(seg), uint8(state>>(4*seg)&0xf))
			}
		}
	default:
		fatalf("unknown cipher %q", *cipher)
	}
}

// trimmedEmitter prints trace rows up to the round limit.
func trimmedEmitter(maxRounds, lineWords int) func(round, segment int, index uint8) {
	return func(round, segment int, index uint8) {
		if maxRounds > 0 && round > maxRounds {
			return
		}
		fmt.Printf("%d,%d,%d,%d\n", round, segment, index, int(index)/lineWords)
	}
}

func parseBytes(s string, n int) []byte {
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != n {
		fatalf("need %d hex bytes, got %q", n, s)
	}
	return b
}

func parseUint64(s string) uint64 {
	b := parseBytes(s, 8)
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return v
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(2)
}
