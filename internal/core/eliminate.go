package core

import (
	"math/bits"

	"grinch/internal/probe"
)

// Eliminator implements paper Step 3 (Eliminate Candidates): the pinned
// target index is present in every observation, so candidate lines are
// those that appear in (almost) all observations and the survivors
// shrink toward the target as noise lines drop out.
//
// With Threshold == 1 this is the paper's strict set intersection. A
// threshold below 1 tolerates false absences (the target line evicted
// between access and probe): a line stays candidate while its appearance
// ratio is at least the threshold.
//
// Internally the strict mode runs on EliminatorLanes, a bitset-parallel
// accumulator: the candidate set is a single uint64 AND-mask and the
// per-line presence counts accumulate in packed 4-bit SWAR lanes — one
// observation costs a handful of word ops regardless of the line count,
// with a flush into the exact count arrays every 15 observations. The
// first partially-masked observation (an Evict+Time probe) or a relaxed
// threshold drops the eliminator back to the exact per-line counting
// path; results are identical either way, only the bookkeeping schedule
// differs.
type Eliminator struct {
	lines     int
	threshold float64
	full      probe.LineSet
	counts    [64]uint64
	probed    [64]uint64 // how many observations actually examined each line
	n         uint64
	lanes     EliminatorLanes
}

// EliminatorLanes is the strict-intersection fast path: observations
// are full line sets, so the surviving candidates are one running
// AND-mask and the presence counts are deferred into acc — word w holds
// 4-bit counters for lines 16w..16w+15, filled from a byte-spread table
// (two lookups per 16 lines). nacc counts observations accumulated
// since the last flush; it must stay below 16 so no nibble overflows.
type EliminatorLanes struct {
	active    bool
	survivors probe.LineSet
	acc       [4]uint64
	nacc      int
}

// laneSpread maps a byte of a line set to its nibble-spread image: bit
// i of the byte lands at bit 4i, turning a set membership into a packed
// increment for eight 4-bit counters.
var laneSpread = buildLaneSpread()

func buildLaneSpread() [256]uint32 {
	var t [256]uint32
	for b := 0; b < 256; b++ {
		var v uint32
		for i := 0; i < 8; i++ {
			v |= uint32(b>>i&1) << (4 * i)
		}
		t[b] = v
	}
	return t
}

// NewEliminator creates an eliminator over the given number of table
// lines. threshold must be in (0, 1]; 1 means strict intersection.
func NewEliminator(lines int, threshold float64) *Eliminator {
	e := new(Eliminator)
	e.Reset(lines, threshold)
	return e
}

// Reset reinitialises the eliminator in place, validating like
// NewEliminator. The attack loops keep one Eliminator value per target
// and Reset it between restarts instead of reallocating.
func (e *Eliminator) Reset(lines int, threshold float64) {
	if lines < 1 || lines > 64 {
		panic("core: eliminator needs 1..64 lines")
	}
	if threshold <= 0 || threshold > 1 {
		panic("core: threshold must be in (0,1]")
	}
	*e = Eliminator{
		lines:     lines,
		threshold: threshold,
		full:      probe.FullSet(lines),
	}
	e.lanes = EliminatorLanes{
		active:    threshold == 1,
		survivors: e.full,
	}
}

// Observe folds one fully-probed line set into the statistics.
func (e *Eliminator) Observe(set probe.LineSet) {
	e.ObserveMasked(set, e.full)
}

// ObserveBatch folds a run of fully-probed observations — the commit
// half of the batched attack pipeline. Equivalent to calling Observe on
// each set in order.
func (e *Eliminator) ObserveBatch(sets []probe.LineSet) {
	for _, s := range sets {
		e.ObserveMasked(s, e.full)
	}
}

// ObserveMasked folds a partially-probed observation in: only the lines
// in mask were examined this encryption (an Evict+Time attacker tests a
// single line per run; Flush+Reload examines them all). Lines outside
// the mask are neither credited nor debited.
func (e *Eliminator) ObserveMasked(set, mask probe.LineSet) {
	if e.lanes.active {
		if mask&e.full == e.full {
			e.n++
			s := set & e.full
			e.lanes.survivors &= s
			w := uint64(s)
			e.lanes.acc[0] += uint64(laneSpread[w&0xff]) | uint64(laneSpread[w>>8&0xff])<<32
			if w >>= 16; w != 0 {
				e.lanes.acc[1] += uint64(laneSpread[w&0xff]) | uint64(laneSpread[w>>8&0xff])<<32
				if w >>= 16; w != 0 {
					e.lanes.acc[2] += uint64(laneSpread[w&0xff]) | uint64(laneSpread[w>>8&0xff])<<32
					if w >>= 16; w != 0 {
						e.lanes.acc[3] += uint64(laneSpread[w&0xff]) | uint64(laneSpread[w>>8&0xff])<<32
					}
				}
			}
			e.lanes.nacc++
			if e.lanes.nacc == 15 {
				e.foldPending()
			}
			return
		}
		e.leaveLanes()
	}
	e.n++
	for m := uint64(mask & e.full); m != 0; m &= m - 1 {
		l := bits.TrailingZeros64(m)
		e.probed[l]++
		if set.Contains(l) {
			e.counts[l]++
		}
	}
}

// foldPending flushes the packed 4-bit presence counters into the
// exact count arrays. Lane mode stays active; the flush runs every 15
// observations (before any nibble can overflow) and on any query that
// needs exact counts.
func (e *Eliminator) foldPending() {
	np := e.lanes.nacc
	if np == 0 {
		return
	}
	for l := 0; l < e.lines; l++ {
		e.probed[l] += uint64(np)
		e.counts[l] += e.lanes.acc[l>>4] >> (4 * (l & 15)) & 0xf
	}
	e.lanes.acc = [4]uint64{}
	e.lanes.nacc = 0
}

// leaveLanes settles the deferred counts and switches to exact per-line
// bookkeeping — required once a partial mask arrives, because lane mode
// assumes every observation examined every line.
func (e *Eliminator) leaveLanes() {
	e.foldPending()
	e.lanes.active = false
}

// Observations returns how many observations have been folded in.
func (e *Eliminator) Observations() uint64 { return e.n }

// qualifies reports whether line l still meets the threshold.
func (e *Eliminator) qualifies(l int) bool {
	if e.probed[l] == 0 {
		return true // never examined: cannot be ruled out
	}
	if e.threshold == 1 {
		return e.counts[l] == e.probed[l]
	}
	req := uint64(e.threshold * float64(e.probed[l]))
	if req < 1 {
		req = 1
	}
	return e.counts[l] >= req
}

// Candidates returns the lines that still qualify.
func (e *Eliminator) Candidates() probe.LineSet {
	if e.n == 0 {
		return e.full
	}
	if e.lanes.active {
		return e.lanes.survivors
	}
	var set probe.LineSet
	for l := 0; l < e.lines; l++ {
		if e.qualifies(l) {
			set = set.Add(l)
		}
	}
	return set
}

// Converged reports the surviving line once exactly one candidate
// remains, every line has been examined, and the survivor has at least
// minObs examinations behind it. The lane-mode body is small enough to
// inline into the per-observation attack loop; exact bookkeeping is
// outlined.
func (e *Eliminator) Converged(minObs uint64) (line int, ok bool) {
	if e.lanes.active {
		// Every lane observation examined every line, so the sole
		// survivor has n ≥ minObs examinations by construction.
		if e.n < minObs || e.lanes.survivors.Count() != 1 {
			return -1, false
		}
		return e.lanes.survivors.Sole(), true
	}
	return e.convergedExact(minObs)
}

func (e *Eliminator) convergedExact(minObs uint64) (line int, ok bool) {
	if e.n < minObs {
		return -1, false
	}
	c := e.Candidates()
	if c.Count() != 1 {
		return -1, false
	}
	sole := c.Sole()
	if e.probed[sole] < minObs {
		return -1, false
	}
	return sole, true
}

// Exhausted reports that no candidate survives — the signature of a
// wrong crafting hypothesis (the "pinned" index was not actually pinned)
// or of destructive noise.
func (e *Eliminator) Exhausted() bool {
	if e.lanes.active {
		return e.n > 0 && e.lanes.survivors == 0
	}
	return e.exhaustedExact()
}

func (e *Eliminator) exhaustedExact() bool {
	return e.n > 0 && e.Candidates().Count() == 0
}

// Recovered reports whether line l is the sole surviving candidate.
// Out-of-range indices (negative or ≥ lines) are never recovered.
func (e *Eliminator) Recovered(l int) bool {
	if l < 0 || l >= e.lines || e.n == 0 {
		return false
	}
	c := e.Candidates()
	return c.Count() == 1 && c.Sole() == l
}

// PresenceRatio returns line l's appearance ratio over the observations
// that examined it (0 when never examined or out of range).
func (e *Eliminator) PresenceRatio(l int) float64 {
	if l < 0 || l >= e.lines {
		return 0
	}
	if e.lanes.active {
		e.foldPending()
	}
	if e.probed[l] == 0 {
		return 0
	}
	return float64(e.counts[l]) / float64(e.probed[l])
}
