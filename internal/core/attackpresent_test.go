package core

import (
	"testing"

	"grinch/internal/bitutil"
	"grinch/internal/oracle"
	"grinch/internal/present"
	"grinch/internal/rng"
)

func presentKey(r *rng.Source) [10]byte {
	var key [10]byte
	lo, hi := r.Uint64(), r.Uint64()
	key[0] = byte(hi >> 8)
	key[1] = byte(hi)
	for i := 0; i < 8; i++ {
		key[2+i] = byte(lo >> (56 - 8*uint(i)))
	}
	return key
}

func presentChannel(t *testing.T, c *present.Cipher80, lineWords int) *oracle.OracleP {
	t.Helper()
	ch, err := oracle.NewPresent(c, oracle.Config{ProbeRound: 1, Flush: true, LineWords: lineWords})
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestPresentTargetCrafting(t *testing.T) {
	r := rng.New(12)
	key := presentKey(r)
	c := present.NewCipher80(key)
	rks := c.RoundKeys()
	for round := 1; round <= 3; round++ {
		for g := 0; g < 16; g += 3 {
			spec := NewTargetP(round, g)
			for rep := 0; rep < 5; rep++ {
				pt := spec.CraftPlaintext(r, rks[:round-1])
				states := c.SBoxInputs(pt)
				got := uint8(states[round-1] >> (4 * uint(g)) & 0xf)
				keyNibble := uint8(rks[round-1] >> (4 * uint(g)) & 0xf)
				if want := spec.ExpectedIndex(keyNibble); got != want {
					t.Fatalf("round %d segment %d: index %#x, want %#x", round, g, got, want)
				}
			}
		}
	}
}

func TestPresentKeyNibbleRoundTrip(t *testing.T) {
	spec := NewTargetP(1, 5)
	for v := uint8(0); v < 16; v++ {
		if got := spec.KeyNibble(spec.ExpectedIndex(v)); got != v {
			t.Fatalf("nibble %d round-trips to %d", v, got)
		}
	}
}

func TestPresentNibblesForLine(t *testing.T) {
	spec := NewTargetP(1, 0)
	for _, c := range []struct{ words, n int }{{1, 1}, {2, 2}, {4, 4}, {8, 8}} {
		line := int(spec.ExpectedIndex(7)) / c.words
		if got := len(spec.NibblesForLine(line, c.words)); got != c.n {
			t.Fatalf("width %d: %d candidates, want %d", c.words, got, c.n)
		}
	}
}

// TestPresentParentStructure documents how PRESENT's pLayer differs
// from GIFT's: every S-box p feeds its four children at the SAME
// position p mod 4 (GIFT's permutation instead spreads each segment
// across all four positions). This alignment is why wide-line
// hypothesis pruning does not transfer from GIFT to PRESENT.
func TestPresentParentStructure(t *testing.T) {
	feeds := map[int]map[int]int{} // parent segment → position → count
	for g := 0; g < 16; g++ {
		parents := NewTargetP(2, g).ParentSegments()
		for j, p := range parents {
			if feeds[p] == nil {
				feeds[p] = map[int]int{}
			}
			feeds[p][j]++
		}
	}
	for p := 0; p < 16; p++ {
		pos := feeds[p]
		if len(pos) != 1 || pos[p%4] != 4 {
			t.Fatalf("parent %d feeds positions %v, want position %d ×4", p, pos, p%4)
		}
	}
}

// TestPresentWideLineDeterministicDerivative verifies the property that
// blocks wide-line recovery: for input difference 1 the PRESENT S-box
// flips output bit 0 deterministically (DDT row Δ=1 has bit 0 active
// for every x), so a hidden-bit hypothesis error is unobservable as
// variance at bit-0-fed targets.
func TestPresentWideLineDeterministicDerivative(t *testing.T) {
	for x := uint8(0); x < 16; x++ {
		if (present.SBox[x]^present.SBox[x^1])&1 != 1 {
			t.Fatalf("S(%#x)⊕S(%#x) has bit 0 clear — derivative not deterministic after all", x, x^1)
		}
	}
	// GIFT's S-box does NOT have this trap on any (bit, diff) axis that
	// its permutation would align: f_j(x⊕e) varies over the pinned
	// input lists (checked in computeWorstPinShare: share < 1).
	if worstPinShare >= 1 {
		t.Fatal("GIFT share degenerate")
	}
}

func TestWorstPinShareP(t *testing.T) {
	if worstPinShareP >= 1 || worstPinShareP < 0.5 {
		t.Fatalf("worstPinShareP = %v", worstPinShareP)
	}
}

// TestRecoverPresent80Ideal: the headline for the comparison — PRESENT
// falls in two attacked rounds with four key bits per pinned segment.
func TestRecoverPresent80Ideal(t *testing.T) {
	r := rng.New(20)
	key := presentKey(r)
	c := present.NewCipher80(key)
	ch := presentChannel(t, c, 1)
	a, err := NewAttackerP(ch, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.RecoverKey80()
	if err != nil {
		t.Fatal(err)
	}
	if res.Key != key {
		t.Fatalf("recovered %x, want %x", res.Key, key)
	}
	if res.RoundsAttacked != 2 {
		t.Fatalf("attacked %d rounds, want 2", res.RoundsAttacked)
	}
	t.Logf("PRESENT-80 full key: %d encryptions", res.Encryptions)
	if res.Encryptions > 600 {
		t.Fatalf("PRESENT recovery took %d encryptions, expected a couple hundred", res.Encryptions)
	}
}

func TestRecoverPresent80ManyKeys(t *testing.T) {
	r := rng.New(33)
	for trial := 0; trial < 5; trial++ {
		key := presentKey(r)
		c := present.NewCipher80(key)
		ch := presentChannel(t, c, 1)
		a, err := NewAttackerP(ch, Config{Seed: uint64(trial) + 7})
		if err != nil {
			t.Fatal(err)
		}
		res, err := a.RecoverKey80()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Key != key {
			t.Fatalf("trial %d: wrong key", trial)
		}
	}
}

func TestRecoverPresent80WideLinesRefused(t *testing.T) {
	// Wide lines are declined outright (see RecoverKey80's doc comment
	// and TestPresentWideLineDeterministicDerivative): proceeding could
	// return a silently wrong key.
	r := rng.New(44)
	key := presentKey(r)
	c := present.NewCipher80(key)
	ch := presentChannel(t, c, 2)
	a, err := NewAttackerP(ch, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.RecoverKey80(); err == nil {
		t.Fatal("wide-line PRESENT recovery should be refused")
	}
	// First-round line identification (the Table I metric) still works.
	out, err := a.AttackRoundP(1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for g, cands := range out.Cands {
		truth := uint8(c.RoundKeys()[0] >> (4 * uint(g)) & 0xf)
		found := false
		for _, v := range cands {
			if v == truth {
				found = true
			}
		}
		if !found {
			t.Fatalf("segment %d: truth %d not among candidates %v", g, truth, cands)
		}
	}
}

// TestPresentCheaperPerBitThanGift quantifies the §II comparison from
// the attack side: recovering PRESENT's 64 first-round key bits must
// cost less than twice GIFT's 32 first-round bits (it leaks 4 bits per
// pinned segment instead of 2, with the same elimination cost).
func TestPresentCheaperPerBitThanGift(t *testing.T) {
	r := rng.New(50)

	key := presentKey(r)
	cp := present.NewCipher80(key)
	chP := presentChannel(t, cp, 1)
	ap, err := NewAttackerP(chP, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	outP, err := ap.AttackRoundP(1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	gKey := bitutil.Word128{Lo: r.Uint64(), Hi: r.Uint64()}
	chG := cleanChannel(t, gKey, 1)
	ag := newAttacker(t, chG, Config{Seed: 2})
	outG, err := ag.AttackRound(1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	perBitP := float64(outP.Encryptions) / 64
	perBitG := float64(outG.Encryptions) / 32
	t.Logf("per-key-bit effort: PRESENT %.2f, GIFT %.2f encryptions", perBitP, perBitG)
	if perBitP >= perBitG {
		t.Fatalf("PRESENT (%.2f/bit) should be cheaper prey than GIFT (%.2f/bit)", perBitP, perBitG)
	}
}
