// Command experiments regenerates every table and figure of the GRINCH
// paper's evaluation section.
//
// Usage:
//
//	experiments fig3              # Fig. 3 (effort vs probing round)
//	experiments table1            # Table I (effort vs line size)
//	experiments table2            # Table II (platform probing race)
//	experiments recovery          # headline full-key run
//	experiments counter           # §IV-C countermeasures
//	experiments all               # everything
//
// Flags:
//
//	-trials N   trials per cell (default 3)
//	-budget N   per-attack encryption cap (default 1000000, the paper's
//	            practicality threshold)
//	-seed N     reproducibility seed
//	-workers N  campaign worker pool for the swept experiments
//	            (default GOMAXPROCS; results identical for any value)
//	-csv        emit CSV instead of aligned text (fig3/table1 only)
//	-quick      small budgets for a fast smoke run
//
// The swept experiments (fig3, table1, table2, recovery) run through
// the internal/campaign orchestrator. For journaled, resumable sweeps
// with streaming result files, use cmd/campaign instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"grinch/internal/experiments"
)

func main() {
	var (
		trials  = flag.Int("trials", 3, "trials per experiment cell")
		budget  = flag.Uint64("budget", 1_000_000, "per-attack encryption budget (drop-out threshold)")
		seed    = flag.Uint64("seed", 2021, "reproducibility seed")
		workers = flag.Int("workers", 0, "campaign worker pool (0 = GOMAXPROCS)")
		csv     = flag.Bool("csv", false, "emit CSV (fig3 and table1)")
		quick   = flag.Bool("quick", false, "fast smoke run (1 trial, 100k budget, fewer cells)")
	)
	flag.Parse()

	opt := experiments.Options{Trials: *trials, Budget: *budget, Seed: *seed, Workers: *workers}
	fig3Rounds := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	t1Lines := []int{1, 2, 4, 8}
	t1Rounds := []int{1, 2, 3, 4, 5}
	if *quick {
		opt.Trials = 1
		opt.Budget = 100_000
		fig3Rounds = []int{1, 2, 3, 4, 5}
		t1Lines = []int{1, 2, 4}
		t1Rounds = []int{1, 2, 3}
	}

	what := "all"
	if flag.NArg() > 0 {
		what = flag.Arg(0)
	}

	run := func(name string, fn func()) {
		start := time.Now() //grinchvet:ignore wallclock progress display only
		fn()
		//grinchvet:ignore wallclock progress display only
		fmt.Printf("(%s finished in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	switch what {
	case "fig3":
		run("fig3", func() { fig3(opt, fig3Rounds, *csv) })
	case "table1":
		run("table1", func() { table1(opt, t1Lines, t1Rounds, *csv) })
	case "table2":
		run("table2", func() { table2(opt) })
	case "recovery":
		run("recovery", func() { recovery(opt) })
	case "counter":
		run("counter", func() { counter(opt) })
	case "compare":
		run("compare", func() { compare(opt) })
	case "platform":
		run("platform", func() { platformEffort(opt) })
	case "all":
		run("fig3", func() { fig3(opt, fig3Rounds, *csv) })
		run("table1", func() { table1(opt, t1Lines, t1Rounds, *csv) })
		run("table2", func() { table2(opt) })
		run("recovery", func() { recovery(opt) })
		run("counter", func() { counter(opt) })
		run("compare", func() { compare(opt) })
		run("platform", func() { platformEffort(opt) })
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (fig3, table1, table2, recovery, counter, compare, platform, all)\n", what)
		os.Exit(2)
	}
}

func platformEffort(opt experiments.Options) {
	// The 50 MHz single-SoC window spans ~8 rounds; cap the budget so
	// the drop-out is quick (the point is the contrast, not the exact
	// blow-up size).
	if opt.Budget > 50_000 {
		opt.Budget = 50_000
	}
	fmt.Print(experiments.RenderPlatformEffort(experiments.PlatformEffort(opt, nil)))
}

func compare(opt experiments.Options) {
	fmt.Print(experiments.RenderCompare(experiments.CompareCiphers(opt)))
	fmt.Println()
	fmt.Print(experiments.RenderProbeMethods(experiments.CompareProbeMethods(opt)))
}

func fig3(opt experiments.Options, rounds []int, csv bool) {
	rows := experiments.Fig3(opt, rounds)
	if csv {
		fmt.Print(experiments.Fig3CSV(rows))
		return
	}
	fmt.Print(experiments.RenderFig3(rows))
	fmt.Println()
	fmt.Print(experiments.Fig3Chart(rows))
}

func table1(opt experiments.Options, lines, rounds []int, csv bool) {
	rows := experiments.Table1(opt, lines, rounds)
	if csv {
		fmt.Print(experiments.Table1CSV(rows, rounds))
		return
	}
	fmt.Print(experiments.RenderTable1(rows, rounds))
}

func table2(opt experiments.Options) {
	fmt.Print(experiments.RenderTable2(experiments.Table2(opt, nil)))
}

func recovery(opt experiments.Options) {
	fmt.Print(experiments.RenderRecovery(experiments.FullRecovery(opt)))
}

func counter(opt experiments.Options) {
	fmt.Print(experiments.RenderCountermeasures(experiments.Countermeasures(opt)))
}
