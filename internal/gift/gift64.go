package gift

import (
	"encoding/binary"
	"fmt"

	"grinch/internal/bitutil"
)

// RoundKey64 is the key material mixed into the state at the end of one
// GIFT-64 round: two 16-bit words U and V plus the 6-bit round constant.
// Bit u_i is XORed into state bit 4i+1 and bit v_i into state bit 4i.
type RoundKey64 struct {
	U, V  uint16
	Const uint8
}

// Cipher64 is a GIFT-64 instance with an expanded key schedule. It
// implements the same Encrypt/Decrypt/BlockSize contract as
// crypto/cipher.Block (8-byte blocks).
type Cipher64 struct {
	rk [Rounds64]RoundKey64 //grinch:secret
	// rkm caches spreadKeyBits64 of each round key: the expansion is a
	// pure function of the fixed schedule, and the trace hot paths
	// apply it once per round per encryption.
	rkm [Rounds64]uint64 //grinch:secret
}

// NewCipher64 expands a 128-bit key (big-endian byte order, as in the
// official test vectors) into a GIFT-64 cipher.
//
//grinch:secret key
func NewCipher64(key [16]byte) *Cipher64 {
	return NewCipher64FromWord(bitutil.Word128FromBytes(key))
}

// NewCipher64FromWord expands a key given as a 128-bit word (limb k0 at
// bits 0..15, k7 at bits 112..127).
//
//grinch:secret key
func NewCipher64FromWord(key bitutil.Word128) *Cipher64 {
	c := &Cipher64{}
	ks := ExpandKey64(key)
	copy(c.rk[:], ks)
	for r := 0; r < Rounds64; r++ {
		c.rkm[r] = spreadKeyBits64(c.rk[r])
	}
	return c
}

// BlockSize returns the GIFT-64 block size in bytes.
func (c *Cipher64) BlockSize() int { return 8 }

// Encrypt encrypts the 8-byte block src into dst (big-endian blocks).
// dst and src may overlap. It panics if either slice is shorter than 8
// bytes, matching crypto/cipher.Block semantics.
func (c *Cipher64) Encrypt(dst, src []byte) {
	pt := binary.BigEndian.Uint64(src)
	binary.BigEndian.PutUint64(dst, c.EncryptBlock(pt))
}

// Decrypt decrypts the 8-byte block src into dst (big-endian blocks).
func (c *Cipher64) Decrypt(dst, src []byte) {
	ct := binary.BigEndian.Uint64(src)
	binary.BigEndian.PutUint64(dst, c.DecryptBlock(ct))
}

// EncryptBlock encrypts one 64-bit block in the natural b63..b0 order.
func (c *Cipher64) EncryptBlock(pt uint64) uint64 {
	s := pt
	for r := 0; r < Rounds64; r++ {
		s = PermBits64(SubCells64(s)) ^ c.rkm[r]
	}
	return s
}

// DecryptBlock decrypts one 64-bit block.
func (c *Cipher64) DecryptBlock(ct uint64) uint64 {
	s := ct
	for r := Rounds64 - 1; r >= 0; r-- {
		s = InvRound64(s, c.rk[r])
	}
	return s
}

// RoundKeys returns the expanded round keys. The attack uses round key r
// to relate round-(r+2) S-box indices to key bits.
func (c *Cipher64) RoundKeys() []RoundKey64 {
	out := make([]RoundKey64, Rounds64)
	copy(out, c.rk[:])
	return out
}

// ExpandKey64 runs the GIFT key schedule for GIFT-64: round r uses
// U = k1, V = k0 of the current key state, after which the state rotates
// k7‖…‖k0 ← (k1 ⋙ 2)‖(k0 ⋙ 12)‖k7‖…‖k2.
//
//grinch:secret key return
func ExpandKey64(key bitutil.Word128) []RoundKey64 {
	rks := make([]RoundKey64, Rounds64)
	ks := key
	for r := 0; r < Rounds64; r++ {
		rks[r] = RoundKey64{
			U:     ks.Word16(1),
			V:     ks.Word16(0),
			Const: RoundConstants[r],
		}
		ks = UpdateKeyState(ks)
	}
	return rks
}

// UpdateKeyState applies one step of the GIFT key-state rotation, shared
// by GIFT-64 and GIFT-128 (the variants differ only in which limbs each
// round extracts).
//
//grinch:secret ks return
func UpdateKeyState(ks bitutil.Word128) bitutil.Word128 {
	var next bitutil.Word128
	next = next.SetWord16(7, bitutil.RotR16(ks.Word16(1), 2))
	next = next.SetWord16(6, bitutil.RotR16(ks.Word16(0), 12))
	for i := uint(0); i < 6; i++ {
		next = next.SetWord16(i, ks.Word16(i+2))
	}
	return next
}

// SubCells64 applies the S-box to all 16 segments. From round 2 on the
// state is key-XORed, so the table indices are secret-dependent — this
// is the memory-access leak the GRINCH attack observes.
//
//grinch:secret s
func SubCells64(s uint64) uint64 {
	var out uint64
	for i := uint(0); i < Segments64; i++ {
		out |= uint64(SBox[(s>>(4*i))&0xf]) << (4 * i)
	}
	return out
}

// InvSubCells64 applies the inverse S-box to all 16 segments.
//
//grinch:secret s
func InvSubCells64(s uint64) uint64 {
	var out uint64
	for i := uint(0); i < Segments64; i++ {
		out |= uint64(InvSBox[(s>>(4*i))&0xf]) << (4 * i)
	}
	return out
}

// perm64Groups and invPerm64Groups are the permutation tables compiled
// into rotation classes (25 each for GIFT-64) — same output as the
// per-bit table walk at roughly a third of the cost, still branch-free.
var (
	perm64Groups    = bitutil.CompilePerm64(&Perm64)
	invPerm64Groups = bitutil.CompilePerm64(&InvPerm64)
)

// PermBits64 applies the GIFT-64 bit permutation.
func PermBits64(s uint64) uint64 {
	return bitutil.ApplyPerm64(s, perm64Groups)
}

// InvPermBits64 applies the inverse bit permutation.
func InvPermBits64(s uint64) uint64 {
	return bitutil.ApplyPerm64(s, invPerm64Groups)
}

// AddRoundKey64 XORs the round key and round constant into the state:
// u_i into bit 4i+1, v_i into bit 4i, the fixed 1 into bit 63 and the
// constant bits c5..c0 into bits 23, 19, 15, 11, 7, 3.
//
//grinch:secret rk return
func AddRoundKey64(s uint64, rk RoundKey64) uint64 {
	s ^= spreadKeyBits64(rk)
	return s
}

// spreadKeyBits64 expands a round key into the 64-bit XOR mask applied by
// AddRoundKey64. Because XOR is an involution the same mask also removes
// the round key during decryption.
//
//grinch:secret rk return
func spreadKeyBits64(rk RoundKey64) uint64 {
	var m uint64
	for i := uint(0); i < 16; i++ {
		m |= (uint64(rk.U>>i) & 1) << (4*i + 1)
		m |= (uint64(rk.V>>i) & 1) << (4 * i)
	}
	m |= 1 << 63
	for i := uint(0); i < 6; i++ {
		m |= (uint64(rk.Const>>i) & 1) << (4*i + 3)
	}
	return m
}

// Round64 applies one full GIFT-64 round: SubCells, PermBits, AddRoundKey.
//
//grinch:secret s rk
func Round64(s uint64, rk RoundKey64) uint64 {
	return AddRoundKey64(PermBits64(SubCells64(s)), rk)
}

// InvRound64 inverts one GIFT-64 round.
//
//grinch:secret s rk
func InvRound64(s uint64, rk RoundKey64) uint64 {
	return InvSubCells64(InvPermBits64(AddRoundKey64(s, rk)))
}

// SBoxObserver receives every S-box table lookup performed by a traced
// encryption: the 1-based round number, the segment within the state and
// the 4-bit table index. This is the address stream a shared cache leaks.
type SBoxObserver interface {
	ObserveSBox(round, segment int, index uint8)
}

// ObserverFunc adapts a function to the SBoxObserver interface.
type ObserverFunc func(round, segment int, index uint8)

// ObserveSBox calls f.
func (f ObserverFunc) ObserveSBox(round, segment int, index uint8) {
	f(round, segment, index)
}

// EncryptTraced encrypts like EncryptBlock but reports every S-box lookup
// to obs in execution order (round 1 first, segment 0 first within a
// round), mirroring the lookup loop of the reference table-based C code.
func (c *Cipher64) EncryptTraced(pt uint64, obs SBoxObserver) uint64 {
	s := pt
	for r := 0; r < Rounds64; r++ {
		var sub uint64
		for i := uint(0); i < Segments64; i++ {
			idx := uint8((s >> (4 * i)) & 0xf)
			obs.ObserveSBox(r+1, int(i), idx)
			sub |= uint64(SBox[idx]) << (4 * i)
		}
		s = AddRoundKey64(PermBits64(sub), c.rk[r])
	}
	return s
}

// SBoxInputs returns, for each round r (1-based index r+1), the state at
// the input of that round's SubCells step — i.e. the 16 S-box indices of
// round r are the nibbles of element r-1. len(result) == Rounds64.
func (c *Cipher64) SBoxInputs(pt uint64) []uint64 {
	return c.SBoxInputsN(pt, Rounds64)
}

// SBoxInputsN is SBoxInputs truncated to the first n rounds — the
// trace-oracle fast path when the probe window ends early. n is clamped
// to the round count.
func (c *Cipher64) SBoxInputsN(pt uint64, n int) []uint64 {
	if n > Rounds64 {
		n = Rounds64
	}
	states := make([]uint64, n)
	s := pt
	for r := 0; r < n; r++ {
		states[r] = s
		s = PermBits64(SubCells64(s)) ^ c.rkm[r]
	}
	return states
}

// SBoxInputsAppend is SBoxInputsN writing into a caller-supplied
// buffer: the first n round states are appended to dst (grown as
// needed) and the extended slice returned. The trace oracle reuses one
// buffer across encryptions, so the per-encryption slice allocation of
// SBoxInputsN disappears from the hot loop.
func (c *Cipher64) SBoxInputsAppend(dst []uint64, pt uint64, n int) []uint64 {
	if n > Rounds64 {
		n = Rounds64
	}
	s := pt
	for r := 0; r < n; r++ {
		dst = append(dst, s)
		s = PermBits64(SubCells64(s)) ^ c.rkm[r]
	}
	return dst
}

// PartialEncrypt64 applies rounds 1..n of the cipher (n=0 returns pt
// unchanged). The attack uses it to compute intermediate states from
// already-recovered round keys.
//
//grinch:secret rks
func PartialEncrypt64(pt uint64, rks []RoundKey64, n int) uint64 {
	if n > len(rks) {
		panic(fmt.Sprintf("gift: partial encrypt over %d rounds with %d round keys", n, len(rks)))
	}
	s := pt
	for r := 0; r < n; r++ {
		s = Round64(s, rks[r])
	}
	return s
}

// PartialDecrypt64 inverts rounds n..1.
//
//grinch:secret rks
func PartialDecrypt64(ct uint64, rks []RoundKey64, n int) uint64 {
	if n > len(rks) {
		panic(fmt.Sprintf("gift: partial decrypt over %d rounds with %d round keys", n, len(rks)))
	}
	s := ct
	for r := n - 1; r >= 0; r-- {
		s = InvRound64(s, rks[r])
	}
	return s
}
