package chaos

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// roundTripFunc adapts a function to http.RoundTripper.
type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

// okBody returns a stub inner transport that serves status with body
// and counts how often it is reached.
func okBody(status int, body string, calls *atomic.Int64) http.RoundTripper {
	return roundTripFunc(func(r *http.Request) (*http.Response, error) {
		if calls != nil {
			calls.Add(1)
		}
		return &http.Response{
			StatusCode: status,
			Status:     http.StatusText(status),
			Header:     http.Header{},
			Body:       io.NopCloser(strings.NewReader(body)),
			Request:    r,
		}, nil
	})
}

func mustReq(t *testing.T, path string) *http.Request {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, "http://coordinator"+path, strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	return req
}

// TestParsePlanRoundTrip pins the -chaos flag syntax: parse, field
// values, and String() re-parsing to the same plan.
func TestParsePlanRoundTrip(t *testing.T) {
	spec := "drop-response:path=/api/v1/results:p=0.2,delay:ms=40:p=0.5,5xx:status=502:start=10:len=5:period=50,refuse,truncate:path=/api/v1/campaigns,drop-request:p=1"
	p, err := ParsePlan(spec, 42)
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if p.Seed != 42 || len(p.Faults) != 6 {
		t.Fatalf("plan %+v: want seed 42, 6 faults", p)
	}
	f := p.Faults[0]
	if f.Kind != KindDropResponse || f.Path != "/api/v1/results" || f.Probability != 0.2 {
		t.Errorf("fault 0 parsed as %+v", f)
	}
	f = p.Faults[1]
	if f.Kind != KindDelay || f.DelayMS != 40 || f.Probability != 0.5 {
		t.Errorf("fault 1 parsed as %+v", f)
	}
	f = p.Faults[2]
	if f.Kind != Kind5xx || f.Status != 502 || f.Start != 10 || f.Length != 5 || f.Period != 50 {
		t.Errorf("fault 2 parsed as %+v", f)
	}

	again, err := ParsePlan(p.String(), 42)
	if err != nil {
		t.Fatalf("re-parsing String(): %v", err)
	}
	if p.String() != again.String() {
		t.Errorf("String round-trip drifted: %q vs %q", p.String(), again.String())
	}

	empty, err := ParsePlan("  ", 7)
	if err != nil || !empty.Empty() {
		t.Errorf("blank spec: plan %+v, err %v; want empty", empty, err)
	}
}

// TestParsePlanErrors rejects malformed specs with telling messages.
func TestParsePlanErrors(t *testing.T) {
	cases := []struct{ spec, wantSub string }{
		{"explode", "unknown fault kind"},
		{"delay", "needs ms > 0"},
		{"delay:ms=nope", "parameter"},
		{"5xx:status=404", "outside [500,599]"},
		{"refuse:p=1.5", "outside [0,1]"},
		{"refuse:len=10:period=5", "exceeds period"},
		{"refuse:foo=1", "unknown parameter"},
		{"refuse:path", "not key=value"},
	}
	for _, c := range cases {
		if _, err := ParsePlan(c.spec, 1); err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParsePlan(%q) err = %v, want substring %q", c.spec, err, c.wantSub)
		}
	}
}

// TestFaultWindow pins the faults.Fault-style windowing arithmetic.
func TestFaultWindow(t *testing.T) {
	f := Fault{Kind: KindRefuse, Start: 10, Length: 5, Period: 50}
	for n, want := range map[uint64]bool{
		1: false, 9: false, 10: true, 14: true, 15: false, 59: false,
		60: true, 64: true, 65: false, 110: true,
	} {
		if got := f.active(n); got != want {
			t.Errorf("window{10,5,50}.active(%d) = %v, want %v", n, got, want)
		}
	}
	open := Fault{Kind: KindRefuse, Start: 3}
	if open.active(2) || !open.active(3) || !open.active(1000) {
		t.Error("open-ended window from 3 misbehaved")
	}
	zero := Fault{Kind: KindRefuse}
	if !zero.active(1) {
		t.Error("zero Start must normalize to 1")
	}
}

// TestTransportDeterminism is the replayability contract: the fault
// ordinals a path sees are a pure function of (seed, path, ordinal) —
// identical across transports and unmoved by traffic on other paths.
func TestTransportDeterminism(t *testing.T) {
	plan := Plan{Seed: 99, Faults: []Fault{
		{Kind: KindDropRequest, Path: "/a", Probability: 0.5},
	}}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	faultOrdinals := func(interleave bool) []uint64 {
		tr := NewTransport(plan, okBody(200, "{}", nil))
		var hit []uint64
		for i := 0; i < 200; i++ {
			if interleave {
				// Traffic on another path must not shift /a's sequence.
				tr.RoundTrip(mustReq(t, "/b"))
			}
			_, err := tr.RoundTrip(mustReq(t, "/a"))
			var ce *Error
			if errors.As(err, &ce) {
				hit = append(hit, ce.N)
			} else if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
		}
		return hit
	}
	plain := faultOrdinals(false)
	if len(plain) < 50 || len(plain) > 150 {
		t.Fatalf("p=0.5 over 200 requests fired %d times; generator looks broken", len(plain))
	}
	for run := 0; run < 3; run++ {
		again := faultOrdinals(false)
		if len(again) != len(plain) {
			t.Fatalf("replay fired %d faults, want %d", len(again), len(plain))
		}
		for i := range plain {
			if plain[i] != again[i] {
				t.Fatalf("replay diverged at fault %d: ordinal %d vs %d", i, again[i], plain[i])
			}
		}
	}
	mixed := faultOrdinals(true)
	if len(mixed) != len(plain) {
		t.Fatalf("interleaved traffic changed the fault count: %d vs %d", len(mixed), len(plain))
	}
	for i := range plain {
		if plain[i] != mixed[i] {
			t.Fatalf("interleaved traffic shifted fault %d: ordinal %d vs %d", i, mixed[i], plain[i])
		}
	}
}

// TestTransportKinds exercises each fault kind's wire behavior against
// a stub inner transport.
func TestTransportKinds(t *testing.T) {
	t.Run("refuse and drop-request never reach the server", func(t *testing.T) {
		for _, kind := range []Kind{KindRefuse, KindDropRequest} {
			var calls atomic.Int64
			tr := NewTransport(Plan{Faults: []Fault{{Kind: kind}}}, okBody(200, "{}", &calls))
			_, err := tr.RoundTrip(mustReq(t, "/x"))
			var ce *Error
			if !errors.As(err, &ce) || ce.Kind != kind || ce.N != 1 {
				t.Fatalf("%s: err = %v, want *Error{%s, n=1}", kind, err, kind)
			}
			if calls.Load() != 0 {
				t.Errorf("%s leaked the request to the server", kind)
			}
			if tr.Injected(kind) != 1 || tr.InjectedTotal() != 1 {
				t.Errorf("%s: injection counters %d/%d", kind, tr.Injected(kind), tr.InjectedTotal())
			}
		}
	})

	t.Run("5xx fabricates without forwarding", func(t *testing.T) {
		var calls atomic.Int64
		tr := NewTransport(Plan{Faults: []Fault{{Kind: Kind5xx, Status: 502}}}, okBody(200, "{}", &calls))
		resp, err := tr.RoundTrip(mustReq(t, "/x"))
		if err != nil || resp.StatusCode != 502 {
			t.Fatalf("resp %+v err %v, want fabricated 502", resp, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(body), "chaos") {
			t.Errorf("fabricated body %q does not identify itself", body)
		}
		if calls.Load() != 0 {
			t.Error("5xx fault forwarded the request")
		}
	})

	t.Run("delay forwards after the hold", func(t *testing.T) {
		var calls atomic.Int64
		var slept time.Duration
		tr := NewTransport(Plan{Faults: []Fault{{Kind: KindDelay, DelayMS: 40}}}, okBody(200, "ok", &calls))
		tr.Sleep = func(d time.Duration) { slept += d }
		resp, err := tr.RoundTrip(mustReq(t, "/x"))
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("resp %+v err %v", resp, err)
		}
		resp.Body.Close()
		if slept != 40*time.Millisecond || calls.Load() != 1 {
			t.Errorf("slept %s, %d forwards; want 40ms and 1", slept, calls.Load())
		}
	})

	t.Run("drop-response commits server-side then fails", func(t *testing.T) {
		var calls atomic.Int64
		tr := NewTransport(Plan{Faults: []Fault{{Kind: KindDropResponse}}}, okBody(200, "{}", &calls))
		_, err := tr.RoundTrip(mustReq(t, "/x"))
		var ce *Error
		if !errors.As(err, &ce) || ce.Kind != KindDropResponse {
			t.Fatalf("err = %v, want injected drop-response", err)
		}
		if calls.Load() != 1 {
			t.Error("drop-response must forward the request before losing the response")
		}
	})

	t.Run("truncate cuts the body mid-read", func(t *testing.T) {
		tr := NewTransport(Plan{Faults: []Fault{{Kind: KindTruncate}}}, okBody(200, "0123456789abcdef", nil))
		resp, err := tr.RoundTrip(mustReq(t, "/x"))
		if err != nil {
			t.Fatal(err)
		}
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !errors.Is(rerr, io.ErrUnexpectedEOF) {
			t.Fatalf("read err = %v, want unexpected EOF", rerr)
		}
		if string(data) != "01234567" {
			t.Errorf("got prefix %q, want the first half", data)
		}
	})

	t.Run("summary names what fired", func(t *testing.T) {
		tr := NewTransport(Plan{Faults: []Fault{{Kind: KindRefuse}}}, okBody(200, "{}", nil))
		if got := tr.Summary(); got != "none" {
			t.Errorf("idle summary %q", got)
		}
		tr.RoundTrip(mustReq(t, "/x"))
		if got := tr.Summary(); got != "refuse=1" {
			t.Errorf("summary %q, want refuse=1", got)
		}
	})
}

// TestTransportAgainstRealServer sanity-checks the transport in a real
// http.Client against httptest — the exact wiring the worker uses.
func TestTransportAgainstRealServer(t *testing.T) {
	var served atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		io.Copy(io.Discard, r.Body)
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	// Fault only the second request.
	plan := Plan{Faults: []Fault{{Kind: KindDropResponse, Start: 2, Length: 1}}}
	tr := NewTransport(plan, nil)
	client := &http.Client{Transport: tr}

	if resp, err := client.Post(ts.URL+"/r", "application/json", strings.NewReader("{}")); err != nil {
		t.Fatalf("request 1: %v", err)
	} else {
		resp.Body.Close()
	}
	if _, err := client.Post(ts.URL+"/r", "application/json", strings.NewReader("{}")); err == nil {
		t.Fatal("request 2 should have lost its response")
	}
	if resp, err := client.Post(ts.URL+"/r", "application/json", strings.NewReader("{}")); err != nil {
		t.Fatalf("request 3: %v", err)
	} else {
		resp.Body.Close()
	}
	if served.Load() != 3 {
		t.Errorf("server saw %d requests, want 3 (drop-response still commits)", served.Load())
	}
}
