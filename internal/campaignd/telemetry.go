package campaignd

import (
	"net/http"

	"grinch/internal/obs/metrics"
)

// This file is the coordinator's fleet-metrics surface: the Prometheus
// exposition (GET /metrics) and the machine-readable status
// (GET /api/v1/status). The job counters in the exposition derive from
// the shard result maps — the authoritative, deduplicated,
// journal-recovered store the merge itself reads — so for a merged
// campaign, campaignd_jobs_done_total exactly equals the merged JSONL
// row count (the CI reconciliation in scripts/ci_distributed.sh pins
// this). Worker-shipped telemetry deltas are aggregated per worker and
// additionally exposed with a worker="<id>" label.

// PromSnapshot assembles every series the coordinator exposes: its own
// state-derived counters and gauges, the per-shard ingestion-latency
// histograms, and the latest per-worker telemetry labeled worker="id".
// The result is sorted by identity, ready for metrics.WriteProm.
func (s *Server) PromSnapshot() []metrics.Series {
	s.mu.Lock()
	s.sweepLocked()
	synth := s.synthSeriesLocked()
	s.mu.Unlock()

	groups := [][]metrics.Series{synth, s.reg.Snapshot()}
	for _, src := range s.telemetry.Sources() {
		groups = append(groups, metrics.WithLabel(s.telemetry.Source(src), "worker", src))
	}
	return metrics.Sum(groups...)
}

// synthSeriesLocked derives the coordinator's own series from its
// authoritative state under mu.
func (s *Server) synthSeriesLocked() []metrics.Series {
	counter := func(name, help string, v uint64, labels ...metrics.Label) metrics.Series {
		return metrics.Series{Name: name, Kind: metrics.KindCounter, Value: v, Help: help, Labels: labels}
	}
	gauge := func(name, help string, v int64, labels ...metrics.Label) metrics.Series {
		return metrics.Series{Name: name, Kind: metrics.KindGauge, Gauge: v, Help: help, Labels: labels}
	}
	var out []metrics.Series
	running, merged := 0, 0
	for _, id := range s.order {
		c := s.campaigns[id]
		if c.merged {
			merged++
		} else {
			running++
		}
		var done, failed, encs uint64
		shardsBy := map[string]int64{ShardPending: 0, ShardLeased: 0, ShardDone: 0}
		for _, sh := range c.shards {
			done += uint64(len(sh.results))
			failed += uint64(sh.failed)
			encs += sh.encs
			shardsBy[sh.state]++
		}
		cl := metrics.L("campaign", id)
		out = append(out,
			gauge("campaignd_jobs", "Campaign grid size.", int64(c.jobs), cl),
			counter("campaignd_jobs_done_total", "Results ingested into the authoritative shard store (deduplicated; reconciles with merged output rows).", done, cl),
			counter("campaignd_jobs_failed_total", "Ingested results whose job failed.", failed, cl),
			counter("campaignd_encryptions_total", "Victim encryptions summed over ingested results.", encs, cl),
		)
		for _, state := range []string{ShardPending, ShardLeased, ShardDone} {
			out = append(out, gauge("campaignd_shards", "Shards by state.", shardsBy[state], cl, metrics.L("state", state)))
		}
	}
	out = append(out,
		gauge("campaignd_campaigns", "Campaigns by state.", int64(running), metrics.L("state", CampaignRunning)),
		gauge("campaignd_campaigns", "Campaigns by state.", int64(merged), metrics.L("state", CampaignMerged)),
		counter("campaignd_leases_issued_total", "Shard leases granted.", uint64(s.leasesIssued)),
		counter("campaignd_lease_reissues_total", "Expired leases whose shard returned to pending.", uint64(s.reissues)),
		counter("campaignd_duplicate_results_total", "Duplicate results discarded at ingestion.", uint64(s.duplicates)),
		counter("campaignd_results_ingested_total", "Results accepted at ingestion (first copies only).", uint64(s.resultsIngested)),
		counter("campaignd_shed_total", "Ingest requests refused with 429 by overload admission control.", s.shed.Load()),
		gauge("campaignd_ingest_inflight", "Result-ingest requests currently in flight.", s.ingestInflight.Load()),
		gauge("campaignd_leases_active", "Live leases.", int64(len(s.leases))),
		gauge("campaignd_workers_seen", "Distinct workers ever seen.", int64(len(s.workers))),
	)
	return out
}

// suggestedShardSizeLocked derives a shard-size hint from observed job
// latency: a shard should take roughly four lease TTLs of wall time —
// long enough to amortize lease round-trips, short enough that a lost
// node costs little. Returns 0 until ingestion-latency data exists.
func (s *Server) suggestedShardSizeLocked() int {
	var all []metrics.Series
	for _, ser := range s.reg.Snapshot() {
		if ser.Name == "campaignd_shard_job_ms" {
			all = append(all, ser)
		}
	}
	if len(all) == 0 {
		return 0
	}
	var count, sum uint64
	for _, ser := range all {
		count += ser.Count()
		sum += ser.Sum
	}
	if count == 0 {
		return 0
	}
	// Sub-millisecond jobs round every observation to zero; clamp the
	// mean to the histogram's resolution so the hint stays finite
	// instead of reporting "no data" for a fleet that is simply fast.
	meanMS := float64(sum) / float64(count)
	if meanMS < 1 {
		meanMS = 1
	}
	n := int(4 * float64(s.opts.LeaseTTL.Milliseconds()) / meanMS)
	if n < 1 {
		n = 1
	}
	if n > 100000 {
		n = 100000
	}
	return n
}

// FleetStatus is the machine-readable coordinator status: the counter
// snapshot plus per-campaign shard detail (with latency quantiles),
// the worker directory, and the fleet's retry health.
type FleetStatus struct {
	MetricsSnapshot
	Campaigns []CampaignStatus `json:"campaigns"`
	Workers   []WorkerStatus   `json:"workers,omitempty"`
	Retry     RetryHealth      `json:"retry"`
}

// RetryHealth aggregates the fleet's resilience telemetry: how often
// the coordinator shed ingest load, and how much retrying and backing
// off the workers have reported (summed across the fleet from their
// heartbeat deltas). A healthy quiet fleet is all zeros; a rising
// retries count with flat shed points at the network, shed points at
// coordinator overload.
type RetryHealth struct {
	ShedTotal             uint64 `json:"shed_total"`
	WorkerRetriesTotal    uint64 `json:"worker_retries_total"`
	WorkerBackoffMSTotal  uint64 `json:"worker_backoff_ms_total"`
	WorkerShardsLostTotal uint64 `json:"worker_shards_lost_total"`
}

// retryHealth folds the fleet-wide retry telemetry from the worker
// delta store plus the coordinator's shed counter.
func (s *Server) retryHealth() RetryHealth {
	h := RetryHealth{ShedTotal: s.shed.Load()}
	for _, ser := range s.telemetry.Merged() {
		switch ser.Name {
		case "campaignw_report_retries_total":
			h.WorkerRetriesTotal += ser.Value
		case "campaignw_backoff_ms_total":
			h.WorkerBackoffMSTotal += ser.Value
		case "campaignw_shards_total":
			if v, ok := metrics.Find([]metrics.Series{ser}, ser.Name, metrics.L("outcome", "lost")); ok {
				h.WorkerShardsLostTotal += v.Value
			}
		}
	}
	return h
}

// WorkerStatus is one worker's row in the fleet status.
type WorkerStatus struct {
	ID                 string  `json:"id"`
	LastSeenAgoSeconds float64 `json:"last_seen_ago_seconds"`
	Leases             int     `json:"leases"`
	Results            int     `json:"results"`
}

// FleetStatus returns the current fleet status.
func (s *Server) FleetStatus() FleetStatus {
	fs := FleetStatus{MetricsSnapshot: s.Metrics(), Retry: s.retryHealth()}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range s.order {
		fs.Campaigns = append(fs.Campaigns, s.statusLocked(s.campaigns[id], true))
	}
	now := s.now()
	for _, id := range sortedWorkerIDs(s.workers) {
		wi := s.workers[id]
		fs.Workers = append(fs.Workers, WorkerStatus{
			ID:                 id,
			LastSeenAgoSeconds: now.Sub(wi.lastSeen).Seconds(),
			Leases:             wi.leases,
			Results:            wi.results,
		})
	}
	return fs
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", metrics.ContentType)
	if err := metrics.WriteProm(w, s.PromSnapshot()); err != nil {
		s.logf("metrics exposition: %v", err)
	}
}

// handleStatusJSON serves the machine-readable fleet status.
func (s *Server) handleStatusJSON(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.FleetStatus())
}

// applyDelta installs a request's piggybacked telemetry, if any.
func (s *Server) applyDelta(worker string, d *metrics.Delta) {
	if d == nil || worker == "" {
		return
	}
	s.telemetry.Apply(worker, *d)
}

// WorkerTelemetry returns the latest series a worker shipped (nil if
// the worker never sent a delta). Exposed for tests and embedders.
func (s *Server) WorkerTelemetry(worker string) []metrics.Series {
	return s.telemetry.Source(worker)
}
