// Command traceview renders recorded attack event traces (the JSONL
// internal/obs format written by `grinch -trace` and `campaign -trace`)
// into human-readable views.
//
// Usage:
//
//	traceview run.trace.jsonl            # convergence table + ASCII curves
//	traceview -table run.trace.jsonl     # per-segment convergence table only
//	traceview -curves run.trace.jsonl    # Fig. 3-style ASCII curves only
//	traceview -csv run.trace.jsonl       # flat CSV of every curve point
//	traceview -cache run.trace.jsonl     # per-job cache-activity totals
//	traceview -faults run.trace.jsonl    # per-job fault/retry/restart totals
//	traceview -metrics run.trace.jsonl   # per-job metric rollup (fleet vocabulary)
//	campaign -trace - ... | traceview -  # read the trace from stdin
//
// Rendering is a pure function of the trace bytes: the same trace
// always renders to the same output.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"grinch/internal/obs"
	"grinch/internal/obs/report"
)

func main() {
	var (
		tableOnly  = flag.Bool("table", false, "render only the per-segment convergence table")
		curvesOnly = flag.Bool("curves", false, "render only the ASCII convergence curves")
		csvOut     = flag.Bool("csv", false, "render every curve point as CSV")
		cacheOut   = flag.Bool("cache", false, "render per-job cache-activity totals")
		faultsOut  = flag.Bool("faults", false, "render per-job fault-injection and recovery totals")
		metricsOut = flag.Bool("metrics", false, "render the per-job metric rollup (encryptions, probes, observations, segments, recovery)")
	)
	flag.Parse()

	if flag.NArg() != 1 {
		fatalf("need exactly one trace file (\"-\" for stdin)")
	}
	events, err := load(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	if len(events) == 0 {
		fatalf("%s: trace holds no events", flag.Arg(0))
	}

	out := os.Stdout
	switch {
	case *csvOut:
		err = report.WriteCurveCSV(out, report.Fold(events))
	case *metricsOut:
		err = report.WriteMetricsTable(out, report.FoldMetrics(events))
	case *faultsOut:
		sums := report.FoldFaults(events)
		if len(sums) == 0 {
			fatalf("trace holds no fault_injected/retry/target_restarted events (run the attack with a -faults plan)")
		}
		err = report.WriteFaultTable(out, sums)
	case *cacheOut:
		sums := report.FoldCache(events)
		if len(sums) == 0 {
			fatalf("trace holds no cache_snapshot events (the ideal oracle channel emits none; soc/mpsoc and hierarchy channels do)")
		}
		err = report.WriteCacheTable(out, sums)
	case *tableOnly:
		err = report.WriteTable(out, report.Fold(events))
	case *curvesOnly:
		err = report.WriteCurves(out, report.Fold(events))
	default:
		segs := report.Fold(events)
		if err = report.WriteTable(out, segs); err == nil {
			fmt.Fprintln(out)
			err = report.WriteCurves(out, segs)
		}
	}
	if err != nil {
		fatalf("%v", err)
	}
}

// load reads and decodes a JSONL trace ("-" = stdin).
func load(path string) ([]obs.Event, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return obs.ReadAll(r)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "traceview: "+format+"\n", args...)
	os.Exit(1)
}
