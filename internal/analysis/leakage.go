package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// LeakageAnalyzer returns the secret-dependent-access pass.
//
// The pass runs per function: taint sources are //grinch:secret
// annotated parameters (of this function), fields and package-level
// variables (wherever referenced), and calls to functions annotated
// "return". Taint propagates intraprocedurally to a fixpoint through
// assignments, bit/arithmetic operations, field selection, indexing a
// tainted container, range statements, and function calls (a call with
// a tainted argument or receiver returns tainted data — the
// overapproximation that carries key-XORed state through helper
// chains). The builtins len and cap do not propagate: the length of a
// secret slice is public.
//
// Findings:
//
//	secret-index  — x[i] where i is tainted: a secret-dependent memory
//	                access, the cache side channel GRINCH exploits.
//	secret-branch — if/switch/for condition on tainted data: a
//	                secret-dependent control flow, the timing analogue.
func LeakageAnalyzer() *Analyzer {
	return &Analyzer{
		Name:  "leakage",
		Doc:   "flag secret-dependent array indexing and branching (cache/timing side channels)",
		Rules: []string{"secret-index", "secret-branch"},
		Run:   runLeakage,
	}
}

func runLeakage(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ta := &taintAnalysis{
				pass:    pass,
				info:    pass.Pkg.Info,
				secrets: pass.World.secrets,
				tainted: map[types.Object]bool{},
				fn:      enclosingFuncName(fd),
			}
			ta.solve(fd.Body)
			ta.report(fd.Body)
		}
	}
}

// taintAnalysis tracks, per function, which local objects carry secret-
// derived data. The analysis is flow-insensitive: assignments are
// re-applied until the tainted set stops growing, so taint acquired on
// a later line (or a later loop iteration) reaches earlier uses too —
// exactly right for the cipher round loops this pass exists for.
type taintAnalysis struct {
	pass    *Pass
	info    *types.Info
	secrets *secretTable
	tainted map[types.Object]bool
	fn      string
}

// solve iterates assignment propagation to a fixpoint.
func (ta *taintAnalysis) solve(body *ast.BlockStmt) {
	for {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				changed = ta.assign(s) || changed
			case *ast.GenDecl:
				for _, spec := range s.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Values) == 0 {
						continue
					}
					changed = ta.assignPairs(identExprs(vs.Names), vs.Values) || changed
				}
			case *ast.RangeStmt:
				if ta.exprTainted(s.X) {
					changed = ta.taintLHS(s.Key) || changed
					changed = ta.taintLHS(s.Value) || changed
				}
			}
			return true
		})
		if !changed {
			return
		}
	}
}

func identExprs(ids []*ast.Ident) []ast.Expr {
	out := make([]ast.Expr, len(ids))
	for i, id := range ids {
		out[i] = id
	}
	return out
}

// assign propagates one assignment statement.
func (ta *taintAnalysis) assign(s *ast.AssignStmt) bool {
	// x op= y taints x when y is tainted (x's own taint persists anyway).
	return ta.assignPairs(s.Lhs, s.Rhs)
}

func (ta *taintAnalysis) assignPairs(lhs, rhs []ast.Expr) bool {
	changed := false
	if len(lhs) == len(rhs) {
		for i := range lhs {
			if ta.exprTainted(rhs[i]) {
				changed = ta.taintLHS(lhs[i]) || changed
			}
		}
		return changed
	}
	// x, y := f() — all LHS taint if the single RHS does, except the
	// comma-ok bool of a type assertion: whether a secret value has some
	// dynamic type is a type fact, not key-derived data.
	if len(rhs) == 1 && ta.exprTainted(rhs[0]) {
		_, isAssert := rhs[0].(*ast.TypeAssertExpr)
		for i, l := range lhs {
			if isAssert && i == 1 {
				continue
			}
			changed = ta.taintLHS(l) || changed
		}
	}
	return changed
}

// taintLHS marks the object behind an assignable expression.
func (ta *taintAnalysis) taintLHS(e ast.Expr) bool {
	switch t := e.(type) {
	case nil:
		return false
	case *ast.Ident:
		if t.Name == "_" {
			return false
		}
		o := ta.info.Defs[t]
		if o == nil {
			o = ta.info.Uses[t]
		}
		return ta.taintObj(o)
	case *ast.SelectorExpr:
		if sel, ok := ta.info.Selections[t]; ok {
			return ta.taintObj(sel.Obj())
		}
		return ta.taintObj(ta.info.Uses[t.Sel])
	case *ast.ParenExpr:
		return ta.taintLHS(t.X)
	case *ast.StarExpr:
		return ta.taintLHS(t.X)
	case *ast.IndexExpr:
		// v[i] = secret: the container becomes secret-bearing.
		return ta.taintLHS(t.X)
	}
	return false
}

func (ta *taintAnalysis) taintObj(o types.Object) bool {
	if o == nil || ta.tainted[o] || isErrorType(o.Type()) {
		return false
	}
	ta.tainted[o] = true
	return true
}

// isErrorType reports whether t is the built-in error interface. Error
// values returned alongside secret data are control metadata, not key
// material — without this, every `o, err := f(secret)` would flag the
// `if err != nil` that follows.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func (ta *taintAnalysis) objTainted(o types.Object) bool {
	return o != nil && (ta.tainted[o] || ta.secrets.object(o))
}

// exprTainted reports whether an expression carries secret-derived data.
func (ta *taintAnalysis) exprTainted(e ast.Expr) bool {
	switch t := e.(type) {
	case nil:
		return false
	case *ast.Ident:
		o := ta.info.Uses[t]
		if o == nil {
			o = ta.info.Defs[t]
		}
		return ta.objTainted(o)
	case *ast.SelectorExpr:
		if sel, ok := ta.info.Selections[t]; ok {
			if ta.objTainted(sel.Obj()) {
				return true
			}
			return ta.exprTainted(t.X) // field of a tainted struct
		}
		// Qualified identifier pkg.X.
		return ta.objTainted(ta.info.Uses[t.Sel])
	case *ast.BinaryExpr:
		return ta.exprTainted(t.X) || ta.exprTainted(t.Y)
	case *ast.UnaryExpr:
		return ta.exprTainted(t.X)
	case *ast.ParenExpr:
		return ta.exprTainted(t.X)
	case *ast.StarExpr:
		return ta.exprTainted(t.X)
	case *ast.IndexExpr:
		// Reading a secret table at any index, or any table at a secret
		// index, yields secret data.
		return ta.exprTainted(t.X) || ta.exprTainted(t.Index)
	case *ast.SliceExpr:
		return ta.exprTainted(t.X)
	case *ast.TypeAssertExpr:
		return ta.exprTainted(t.X)
	case *ast.CompositeLit:
		for _, el := range t.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if ta.exprTainted(kv.Value) {
					return true
				}
				continue
			}
			if ta.exprTainted(el) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		return ta.callTainted(t)
	case *ast.FuncLit:
		// A closure capturing secret data produces secret data: treat
		// the function value itself as tainted so a call through the
		// variable it is bound to taints too (see callTainted).
		return ta.funcLitCapturesSecret(t)
	}
	return false
}

// funcLitCapturesSecret reports whether a function literal references
// any tainted or annotated object.
func (ta *taintAnalysis) funcLitCapturesSecret(fl *ast.FuncLit) bool {
	captures := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if captures {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			o := ta.info.Uses[id]
			if o == nil {
				o = ta.info.Defs[id]
			}
			if _, isVar := o.(*types.Var); isVar && ta.objTainted(o) {
				captures = true
			}
		}
		return true
	})
	return captures
}

// callTainted decides whether a call's result is secret: calls to
// //grinch:secret return functions always are; otherwise any tainted
// argument or receiver taints the result (len/cap excepted).
func (ta *taintAnalysis) callTainted(call *ast.CallExpr) bool {
	if fn := ta.calleeObject(call); fn != nil {
		if ta.secrets.secretReturn(fn) {
			return true
		}
		if b, ok := fn.(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap":
				return false
			}
		}
		// A call through a secret-capturing closure (function-valued
		// variable tainted by its FuncLit) yields secret data even with
		// public arguments.
		if _, isVar := fn.(*types.Var); isVar && ta.objTainted(fn) {
			return true
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if _, isMethod := ta.info.Selections[sel]; isMethod && ta.exprTainted(sel.X) {
			return true
		}
	}
	for _, arg := range call.Args {
		if ta.exprTainted(arg) {
			return true
		}
	}
	return false
}

// calleeObject resolves the called function, if it is a named one.
func (ta *taintAnalysis) calleeObject(call *ast.CallExpr) types.Object {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return ta.info.Uses[f]
	case *ast.SelectorExpr:
		if sel, ok := ta.info.Selections[f]; ok {
			return sel.Obj()
		}
		return ta.info.Uses[f.Sel]
	case *ast.ParenExpr:
		inner, ok := f.X.(ast.Expr)
		if ok {
			c := *call
			c.Fun = inner
			return ta.calleeObject(&c)
		}
	}
	return nil
}

// report walks the solved function and emits findings. In quant mode
// every finding carries its quantitative estimate (quant.go) and the
// message gains the bracketed bits-per-observation annotation.
func (ta *taintAnalysis) report(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.IndexExpr:
			if ta.indexable(t.X) && ta.exprTainted(t.Index) {
				base := exprString(t.X)
				if base == "" {
					base = "expression"
				}
				var q *Quant
				if ta.pass.Config.Quant {
					q = quantForIndex(ta.pass, t.X)
				}
				f := ta.pass.Report("secret-index", SeverityError, t, ta.fn, base,
					fmt.Sprintf("memory access into %s indexed by secret-dependent value %s%s",
						base, describeExpr(t.Index), q.suffix()))
				f.Quant = q
			}
		case *ast.IfStmt:
			if ta.exprTainted(t.Cond) {
				ta.reportBranch(t.Cond, fmt.Sprintf("branch condition %s depends on secret data", describeExpr(t.Cond)))
			}
		case *ast.SwitchStmt:
			if t.Tag != nil && ta.exprTainted(t.Tag) {
				ta.reportBranch(t.Tag, fmt.Sprintf("switch on secret-dependent value %s", describeExpr(t.Tag)))
			}
		case *ast.ForStmt:
			if t.Cond != nil && ta.exprTainted(t.Cond) {
				ta.reportBranch(t.Cond, fmt.Sprintf("loop condition %s depends on secret data", describeExpr(t.Cond)))
			}
		}
		return true
	})
}

// reportBranch emits one secret-branch finding with the 1-bit quant
// model attached in quant mode.
func (ta *taintAnalysis) reportBranch(cond ast.Expr, message string) {
	var q *Quant
	if ta.pass.Config.Quant {
		q = quantForBranch()
	}
	f := ta.pass.Report("secret-branch", SeverityError, cond, ta.fn, describeExpr(cond), message+q.suffix())
	f.Quant = q
}

// indexable reports whether indexing e is a memory access worth
// flagging: arrays, slices, maps, strings and pointers to arrays. When
// the type is unknown (stub-imported), be conservative and flag.
func (ta *taintAnalysis) indexable(e ast.Expr) bool {
	tv, ok := ta.info.Types[e]
	if !ok || tv.Type == nil {
		return true
	}
	t := tv.Type.Underlying()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem().Underlying()
	}
	switch t.(type) {
	case *types.Array, *types.Slice, *types.Map, *types.Basic:
		return true
	case *types.Signature, *types.Named:
		return false // generic instantiation, not an access
	}
	return true
}

// describeExpr renders an expression for diagnostics, falling back to a
// generic description for complex expressions.
func describeExpr(e ast.Expr) string {
	if s := exprString(e); s != "" {
		return fmt.Sprintf("%q", s)
	}
	return "(expression)"
}
