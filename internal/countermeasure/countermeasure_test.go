package countermeasure

import (
	"testing"
	"testing/quick"

	"grinch/internal/bitutil"
	"grinch/internal/core"
	"grinch/internal/gift"
	"grinch/internal/oracle"
	"grinch/internal/probe"
)

var testKey = bitutil.Word128{Lo: 0x0123456789abcdef, Hi: 0xfedcba9876543210}

func TestReshapedTableLookup(t *testing.T) {
	tab := NewReshapedTable()
	for x := uint8(0); x < 16; x++ {
		if got := tab.Lookup(x); got != gift.SBox[x] {
			t.Fatalf("Lookup(%#x) = %#x, want %#x", x, got, gift.SBox[x])
		}
	}
}

func TestReshapedTableRows(t *testing.T) {
	tab := NewReshapedTable()
	for x := uint8(0); x < 16; x++ {
		if tab.Row(x) != int(x/2) {
			t.Fatalf("Row(%#x) = %d", x, tab.Row(x))
		}
	}
}

func TestReshapedFitsOneLine(t *testing.T) {
	// The countermeasure's point: with 8-byte cache lines the table
	// spans exactly one line, so a probe resolves nothing.
	layout := Layout(0x2000)
	if lines := layout.LinesIn(8); lines != 1 {
		t.Fatalf("reshaped table spans %d 8-byte lines, want 1", lines)
	}
	// Whereas the original 16-entry table would span 2.
	orig := probe.TableLayout{Base: 0x2000, EntryBytes: 1, Entries: 16}
	if lines := orig.LinesIn(8); lines != 2 {
		t.Fatalf("original table spans %d lines, want 2", lines)
	}
}

func TestHardenedCipherMatchesReference(t *testing.T) {
	f := func(keyLo, keyHi, pt uint64) bool {
		key := bitutil.Word128{Lo: keyLo, Hi: keyHi}
		h := NewHardenedCipher64(key)
		ref := gift.NewCipher64FromWord(key)
		return h.EncryptBlock(pt) == ref.EncryptBlock(pt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHardenedCipherRowTraceCollapses(t *testing.T) {
	h := NewHardenedCipher64(testKey)
	rows := map[int]bool{}
	h.EncryptTracedRows(0x123456789abcdef0, func(round, segment, row int) {
		if row < 0 || row > 7 {
			t.Fatalf("row %d out of range", row)
		}
		rows[row] = true
	})
	// Rows vary — but they all live in one 8-byte cache line, so the
	// attacker-visible line set is the single line {0}.
	layout := Layout(0)
	lines := map[int]bool{}
	for r := range rows {
		lines[layout.LineOf(r, 8)] = true
	}
	if len(lines) != 1 {
		t.Fatalf("row trace maps to %d cache lines, want 1", len(lines))
	}
}

func TestAttackRejectedAgainstReshapedTable(t *testing.T) {
	// With the whole table in one line the channel has a single line;
	// the attacker cannot even be constructed — candidate elimination
	// has nothing to distinguish (paper countermeasure 1).
	ch, err := oracle.New(testKey, oracle.Config{ProbeRound: 1, Flush: true, LineWords: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.NewAttacker(ch, core.Config{}); err == nil {
		t.Fatal("attack constructed against a single-line table")
	}
}

func TestWhitenIsBijection(t *testing.T) {
	seen := map[uint16]bool{}
	for x := 0; x < 1<<16; x++ {
		y := whiten(uint16(x))
		if seen[y] {
			t.Fatalf("whiten collision at %#x", x)
		}
		seen[y] = true
	}
}

func TestWhitenedCipherRoundTrip(t *testing.T) {
	f := func(keyLo, keyHi, pt uint64) bool {
		c := NewWhitenedCipher64(bitutil.Word128{Lo: keyLo, Hi: keyHi})
		return c.DecryptBlock(c.EncryptBlock(pt)) == pt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWhitenedCipherDiffersFromStandard(t *testing.T) {
	c := NewWhitenedCipher64(testKey)
	ref := gift.NewCipher64FromWord(testKey)
	pt := uint64(0xfedcba9876543210)
	if c.EncryptBlock(pt) == ref.EncryptBlock(pt) {
		t.Fatal("whitened schedule produced the standard ciphertext")
	}
}

func TestWhitenedRoundKeysHideMasterKey(t *testing.T) {
	rks := WhitenedExpandKey64(testKey)
	std := gift.ExpandKey64(testKey)
	same := 0
	for r := 0; r < 4; r++ {
		if rks[r].U == std[r].U {
			same++
		}
		if rks[r].V == std[r].V {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("%d of 8 early sub-key words equal the raw key limbs", same)
	}
}

// TestGrinchDefeatedByWhitenedSchedule is the paper's countermeasure-2
// demonstration: GRINCH still recovers the per-round sub-keys (the
// cache channel is unchanged), but reassembling them no longer yields
// the master key, so full key retrieval fails.
func TestGrinchDefeatedByWhitenedSchedule(t *testing.T) {
	vic := NewWhitenedCipher64(testKey)
	ch, err := oracle.NewFromTracer(vic, oracle.Config{ProbeRound: 1, Flush: true, LineWords: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.NewAttacker(ch, core.Config{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.RecoverKey()
	if err != nil {
		t.Fatalf("attack machinery failed outright: %v", err)
	}
	// The per-round sub-keys were recovered faithfully…
	want := vic.RoundKeys()
	for r := 0; r < 4; r++ {
		if res.RoundKeys[r].U != want[r].U || res.RoundKeys[r].V != want[r].V {
			t.Fatalf("round %d sub-key not recovered", r+1)
		}
	}
	// …but they are whitened images: the assembled "key" is wrong.
	if res.Key == testKey {
		t.Fatal("whitened schedule failed: master key recovered")
	}
	pt := uint64(0x1111222233334444)
	if core.Verify(res.Key, pt, vic.EncryptBlock(pt)) {
		t.Fatal("assembled key verifies against the victim cipher")
	}
}
