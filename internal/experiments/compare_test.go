package experiments

import (
	"strings"
	"testing"
)

func TestCompareCiphers(t *testing.T) {
	rows := CompareCiphers(Options{Trials: 1, Budget: 100_000, Seed: 3})
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]CompareRow{}
	for _, r := range rows {
		if !r.AllCorrect {
			t.Fatalf("%s: recovery failed", r.Cipher)
		}
		byName[r.Cipher] = r
	}
	// PRESENT leaks 4 bits per pinned segment vs GIFT's 2: cheaper per
	// key bit.
	if byName["PRESENT-80"].PerKeyBit >= byName["GIFT-64"].PerKeyBit {
		t.Errorf("PRESENT per-bit (%f) should beat GIFT-64 (%f)",
			byName["PRESENT-80"].PerKeyBit, byName["GIFT-64"].PerKeyBit)
	}
	// GIFT-128 needs only two round passes; GIFT-64 needs four.
	if byName["GIFT-128"].RoundPasses != 2 || byName["GIFT-64"].RoundPasses != 4 {
		t.Errorf("round passes: GIFT-128=%d (want 2), GIFT-64=%d (want 4)",
			byName["GIFT-128"].RoundPasses, byName["GIFT-64"].RoundPasses)
	}
	if byName["PRESENT-80"].RoundPasses != 2 {
		t.Errorf("PRESENT-80 passes = %d, want 2", byName["PRESENT-80"].RoundPasses)
	}
}

func TestCompareProbeMethods(t *testing.T) {
	rows := CompareProbeMethods(Options{Trials: 1, Budget: 100_000, Seed: 5})
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	fr, et := rows[0].Encryptions.Median, rows[1].Encryptions.Median
	if et < 8*fr {
		t.Fatalf("Evict+Time (%f) should cost ~16x Flush+Reload (%f)", et, fr)
	}
}

func TestCompareRenderers(t *testing.T) {
	opt := Options{Trials: 1, Budget: 100_000, Seed: 7}
	if s := RenderCompare(CompareCiphers(opt)); !strings.Contains(s, "PRESENT-80") || !strings.Contains(s, "GIFT-128") {
		t.Errorf("RenderCompare malformed:\n%s", s)
	}
	if s := RenderProbeMethods(CompareProbeMethods(opt)); !strings.Contains(s, "Evict+Time") || !strings.Contains(s, "ratio") {
		t.Errorf("RenderProbeMethods malformed:\n%s", s)
	}
}
