// Package suppressedge probes //grinchvet:ignore edge cases the basic
// suppress fixture does not cover: findings inside closures, lines
// producing several findings of different rules, and method bodies
// reached through method values.
package suppressedge

var table = [16]uint8{0: 1}

// Closure: the ignore applies to the offending line inside the
// closure body, same as at function scope.
//
//grinch:secret s
func Closure(s uint64) uint8 {
	f := func() uint8 {
		//grinchvet:ignore secret-index fixture: suppressed inside a closure
		return table[s&0xf]
	}
	g := func() uint8 {
		return table[(s>>4)&0xf] // want "secret-index"
	}
	return f() + g()
}

// MultiFinding: one line with both an index and a branch finding. A
// single-rule ignore must only kill its own rule; the comma form
// kills both.
//
//grinch:secret s
func MultiFinding(s uint64) uint8 {
	//grinchvet:ignore secret-index fixture: branch on the same line must survive
	if table[s&0xf] > 8 { // want "secret-branch"
		return 1
	}
	//grinchvet:ignore secret-index,secret-branch fixture: both waived
	if table[s&0xf] > 8 {
		return 2
	}
	if table[s&0xf] > 8 { // want "secret-index" "secret-branch"
		return 3
	}
	return 0
}

type box struct {
	//grinch:secret key
	key uint64
}

// lookup leaks; the suppressed copy is waived inside the method body.
func (b box) lookup() uint8 {
	return table[b.key&0xf] // want "secret-index"
}

func (b box) lookupWaived() uint8 {
	//grinchvet:ignore secret-index fixture: waived inside a method body
	return table[b.key&0xf]
}

// MethodValue: calling through a bound method value still analyzes the
// method body once — the ignore inside lookupWaived holds, the finding
// in lookup stays attributed to lookup (not to the call site).
func MethodValue(b box) uint8 {
	f := b.lookup
	g := b.lookupWaived
	return f() + g()
}
