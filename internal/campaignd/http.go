package campaignd

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
)

// ServeHTTP makes the coordinator an http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// buildMux wires the JSON API, the human status page, and the debug
// surface (expvar + pprof — the -debug-addr endpoint from the
// single-process CLI, grown into the server proper).
func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathCampaigns, s.handleSubmit)
	mux.HandleFunc("GET "+PathCampaigns, s.handleList)
	mux.HandleFunc("GET "+PathCampaigns+"/{id}", s.handleCampaign)
	mux.HandleFunc("GET "+PathCampaigns+"/{id}/output", s.handleOutput)
	mux.HandleFunc("POST "+PathLease, s.handleLease)
	mux.HandleFunc("POST "+PathResults, s.handleResults)
	mux.HandleFunc("POST "+PathHeartbeat, s.handleHeartbeat)
	mux.HandleFunc("POST "+PathComplete, s.handleComplete)
	mux.HandleFunc("GET "+PathStatus, s.handleStatusPage)
	mux.HandleFunc("GET "+PathStatusJSON, s.handleStatusJSON)
	mux.HandleFunc("GET "+PathMetrics, s.handleMetrics)
	mux.HandleFunc("GET /", s.handleRoot)
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// errCode maps a server error onto its HTTP status: fencing failures
// are 410 Gone (the worker must abandon the shard), everything else is
// a 409 the worker may surface.
func errCode(err error) int {
	if le, ok := err.(*leaseErr); ok && le.gone {
		return http.StatusGone
	}
	return http.StatusConflict
}

func decode[T any](w http.ResponseWriter, r *http.Request) (T, bool) {
	var v T
	if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return v, false
	}
	return v, true
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[SubmitRequest](w, r)
	if !ok {
		return
	}
	resp, err := s.Submit(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Statuses())
}

func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Status(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown campaign %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleOutput(w http.ResponseWriter, r *http.Request) {
	out, err := s.Output(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	w.Write(out)
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[LeaseRequest](w, r)
	if !ok {
		return
	}
	if req.Worker == "" {
		writeError(w, http.StatusBadRequest, "lease request needs a worker id")
		return
	}
	writeJSON(w, http.StatusOK, s.Acquire(req.Worker))
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	// Admission control runs before the body is even decoded: shedding
	// must stay cheap precisely when the coordinator is drowning.
	release, admitted := s.admitIngest()
	if !admitted {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "ingest overloaded (%d in flight); retry", s.opts.MaxInflightIngest)
		return
	}
	defer release()
	req, ok := decode[ReportRequest](w, r)
	if !ok {
		return
	}
	s.applyDelta(req.Worker, req.Metrics)
	if err := s.Ingest(req.Lease, req.Results); err != nil {
		writeError(w, errCode(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[HeartbeatRequest](w, r)
	if !ok {
		return
	}
	s.applyDelta(req.Worker, req.Metrics)
	if err := s.Heartbeat(req.Lease); err != nil {
		writeError(w, errCode(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[CompleteRequest](w, r)
	if !ok {
		return
	}
	s.applyDelta(req.Worker, req.Metrics)
	if err := s.Complete(req.Lease); err != nil {
		writeError(w, errCode(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleRoot(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	http.Redirect(w, r, PathStatus, http.StatusFound)
}
