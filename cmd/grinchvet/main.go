// Command grinchvet is the repository's static analyzer: it proves
// which cipher implementations perform secret-dependent memory accesses
// (the property the GRINCH attack exploits) and polices the
// determinism contract of the campaign/simulation core.
//
// Usage:
//
//	grinchvet [flags] [patterns]
//
//	go run ./cmd/grinchvet ./...            # whole module, text output
//	go run ./cmd/grinchvet -json ./...      # machine-readable findings
//	go run ./cmd/grinchvet ./internal/gift  # one package
//	go run ./cmd/grinchvet -quant -write-baseline ./...  # accept current findings
//	go run ./cmd/grinchvet -quant ./...     # findings + leakage budgets
//	go run ./cmd/grinchvet -quant-check trace.jsonl ./...  # model vs measurement
//
// -quant enables the quantitative leakage model: every leakage finding
// carries a bits-per-observation estimate derived from the indexed
// table's static geometry, and per-function/per-package leakage
// budgets are printed after the findings. -quant-check closes the
// loop: it folds a recorded attack trace (internal/obs JSONL), fits
// the measured bits-eliminated-per-observation from the survivor
// curves, and fails when measurement and static model diverge beyond
// -quant-tolerance.
//
// Exit status: 0 when every finding is covered by the baseline (or
// there are none) and any -quant-check passed, 1 when new findings
// exist or the quant check drifted, 2 on load/usage errors.
//
// The analyzer is stdlib-only (go/parser + go/types); it loads the
// module itself and never shells out to the go tool, so it runs
// identically in CI and offline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"text/tabwriter"

	"grinch/internal/analysis"
	"grinch/internal/analysis/quantcheck"
	"grinch/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		jsonOut       = flag.Bool("json", false, "emit findings as a JSON array")
		baselinePath  = flag.String("baseline", "", "baseline file gating the exit status (default: grinchvet.baseline at the module root, if present)")
		writeBaseline = flag.Bool("write-baseline", false, "write the current findings to the baseline file and exit 0")
		rules         = flag.String("rules", "", "comma-separated rule filter (default: all rules)")
		detPkgs       = flag.String("det", strings.Join(analysis.DefaultDeterministicPkgs(), ","), "comma-separated module-relative package trees bound by determinism rules")
		verbose       = flag.Bool("v", false, "list analyzed packages and baseline statistics")
		quant         = flag.Bool("quant", false, "attach quantitative leakage estimates to findings and print leakage budgets")
		quantLine     = flag.Int("quant-line", 0, fmt.Sprintf("modeled cache-line size in bytes for -quant (default %d, the paper's word-granular probe)", analysis.DefaultQuantLineBytes))
		quantCheck    = flag.String("quant-check", "", "attack trace (obs JSONL) to check against the static model; implies -quant")
		quantTol      = flag.Float64("quant-tolerance", quantcheck.DefaultTolerance, "max relative deviation between predicted and measured bits/observation for -quant-check")
	)
	flag.Parse()
	if *quantCheck != "" {
		*quant = true
	}

	world, err := analysis.LoadModule(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "grinchvet:", err)
		return 2
	}
	pkgs := world.Match(flag.Args())
	if len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "grinchvet: no packages match", flag.Args())
		return 2
	}
	if *verbose {
		for _, p := range pkgs {
			fmt.Fprintln(os.Stderr, "analyzing", p.Path)
		}
	}

	cfg := analysis.Config{
		DeterministicPkgs: splitList(*detPkgs),
		Quant:             *quant,
		QuantLineBytes:    *quantLine,
	}
	if *rules != "" {
		cfg.Rules = splitList(*rules)
	}
	findings := analysis.Analyze(world, pkgs, cfg)

	// Resolve the baseline: explicit flag wins; otherwise the module
	// default applies when the file exists.
	bpath := *baselinePath
	if bpath == "" {
		def := filepath.Join(world.Root, "grinchvet.baseline")
		if _, err := os.Stat(def); err == nil {
			bpath = def
		}
	}

	if *writeBaseline {
		if bpath == "" {
			bpath = filepath.Join(world.Root, "grinchvet.baseline")
		}
		if err := analysis.WriteBaseline(bpath, world.Root, findings); err != nil {
			fmt.Fprintln(os.Stderr, "grinchvet:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "grinchvet: wrote %d finding(s) to %s\n", len(findings), bpath)
		return 0
	}

	fresh := findings
	var stale []string
	if bpath != "" {
		base, err := analysis.ReadBaseline(bpath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "grinchvet:", err)
			return 2
		}
		fresh, stale = analysis.Diff(findings, base, world.Root)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		var payload any = findings
		if *quant {
			// In quant mode the JSON payload is an object so the
			// budgets travel with the findings.
			perFunc, perPkg := analysis.Budgets(findings)
			payload = struct {
				Findings []analysis.Finding   `json:"findings"`
				PerFunc  []analysis.BudgetRow `json:"budget_per_func"`
				PerPkg   []analysis.BudgetRow `json:"budget_per_pkg"`
			}{findings, perFunc, perPkg}
		}
		if err := enc.Encode(payload); err != nil {
			fmt.Fprintln(os.Stderr, "grinchvet:", err)
			return 2
		}
	} else {
		for _, f := range fresh {
			fmt.Println(f.String())
		}
		if *quant {
			if err := writeBudgets(os.Stdout, findings); err != nil {
				fmt.Fprintln(os.Stderr, "grinchvet:", err)
				return 2
			}
		}
	}

	// Stale entries are only meaningful when the whole module was
	// analyzed; a package subset legitimately misses the other
	// packages' baselined findings.
	if len(pkgs) == len(world.Pkgs) {
		for _, s := range stale {
			fmt.Fprintf(os.Stderr, "grinchvet: stale baseline entry (no longer produced): %s\n", strings.ReplaceAll(s, "\t", " | "))
		}
	} else {
		stale = nil
	}
	if *verbose || len(fresh) > 0 {
		fmt.Fprintf(os.Stderr, "grinchvet: %d finding(s), %d new, %d baselined, %d stale\n",
			len(findings), len(fresh), len(findings)-len(fresh), len(stale))
	}
	drift := false
	if *quantCheck != "" {
		ok, err := runQuantCheck(*quantCheck, *quantTol, world, findings, *jsonOut, *verbose)
		if err != nil {
			fmt.Fprintln(os.Stderr, "grinchvet:", err)
			return 2
		}
		drift = !ok
	}
	if len(fresh) > 0 || drift {
		return 1
	}
	return 0
}

// writeBudgets renders the per-function and per-package leakage
// budgets of a quant run as text tables.
func writeBudgets(w io.Writer, findings []analysis.Finding) error {
	perFunc, perPkg := analysis.Budgets(findings)
	if len(perFunc) == 0 {
		return nil
	}
	render := func(title string, rows []analysis.BudgetRow, withFunc bool) error {
		fmt.Fprintf(w, "\n%s:\n", title)
		tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
		if withFunc {
			fmt.Fprintln(tw, "PKG\tFUNC\tFINDINGS\tUNRESOLVED\tBITS/OBS")
		} else {
			fmt.Fprintln(tw, "PKG\tFINDINGS\tUNRESOLVED\tBITS/OBS")
		}
		for _, r := range rows {
			if withFunc {
				fn := r.Func
				if fn == "" {
					fn = "(package scope)"
				}
				fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%.2f\n", r.Pkg, fn, r.Findings, r.Unresolved, r.Bits)
			} else {
				fmt.Fprintf(tw, "%s\t%d\t%d\t%.2f\n", r.Pkg, r.Findings, r.Unresolved, r.Bits)
			}
		}
		return tw.Flush()
	}
	if err := render("leakage budget per function", perFunc, true); err != nil {
		return err
	}
	return render("leakage budget per package", perPkg, false)
}

// runQuantCheck folds the trace and compares measured convergence to
// the static model. The table geometries come from the quant-enriched
// findings themselves — the check fails if the analyzer can no longer
// see or size a protocol table, which is exactly the drift it gates.
func runQuantCheck(path string, tol float64, world *analysis.World, findings []analysis.Finding, jsonOut, verbose bool) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	events, err := obs.ReadAll(f)
	if err != nil {
		return false, fmt.Errorf("%s: %w", path, err)
	}
	geoms, err := quantGeometries(world.ModulePath, findings)
	if err != nil {
		return false, err
	}
	rep, err := quantcheck.Check(events, geoms, tol)
	if err != nil {
		return false, fmt.Errorf("%s: %w", path, err)
	}
	out := io.Writer(os.Stdout)
	if jsonOut {
		// Keep stdout parseable: the comparison goes to stderr.
		out = os.Stderr
	}
	fmt.Fprintf(out, "\nquant-check %s (tolerance %.0f%%):\n", path, tol*100)
	if err := rep.WriteTable(out); err != nil {
		return false, err
	}
	if verbose {
		fmt.Fprintln(out)
		if err := rep.WriteSegments(out); err != nil {
			return false, err
		}
	}
	if !rep.OK() {
		fmt.Fprintln(os.Stderr, "grinchvet: quant-check FAILED — static leakage model and measured convergence disagree")
		return false, nil
	}
	return true, nil
}

// quantGeometries resolves each known cipher protocol's table geometry
// from the quant-enriched findings.
func quantGeometries(modulePath string, findings []analysis.Finding) (map[string]quantcheck.Geometry, error) {
	geoms := map[string]quantcheck.Geometry{}
	for _, proto := range quantcheck.Protocols() {
		pkg := proto.TablePkg
		if modulePath != "" {
			pkg = modulePath + "/" + proto.TablePkg
		}
		found := false
		for _, f := range findings {
			if f.Rule != "secret-index" || f.Pkg != pkg || f.Detail != proto.TableName || f.Quant == nil {
				continue
			}
			if !f.Quant.Resolved {
				return nil, fmt.Errorf("quant-check: %s table %s.%s found but geometry unresolved — annotate it with //grinch:geometry",
					proto.Cipher, pkg, proto.TableName)
			}
			geoms[proto.Cipher] = quantcheck.Geometry{
				Entries:    int(f.Quant.Entries),
				EntryBytes: int(f.Quant.EntryBytes),
			}
			found = true
			break
		}
		if !found {
			return nil, fmt.Errorf("quant-check: no secret-index finding for the %s table (%s.%s) — static leakage pass lost the attack surface",
				proto.Cipher, pkg, proto.TableName)
		}
	}
	return geoms, nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
