package core

import (
	"testing"

	"grinch/internal/bitutil"
	"grinch/internal/gift"
	"grinch/internal/oracle"
)

// TestEvictTimeBaseline runs the attack through the time-driven
// Evict+Time channel (one line of information per encryption) and
// checks both correctness and the expected ~16x effort blow-up relative
// to Flush+Reload — the quantified version of the paper's §III-C
// argument for preferring Flush+Reload.
func TestEvictTimeBaseline(t *testing.T) {
	key := bitutil.Word128{Lo: 0x13579bdf02468ace, Hi: 0xfdb97531eca86420}

	run := func(mode oracle.ProbeMode) uint64 {
		ch, err := oracle.New(key, oracle.Config{
			ProbeRound: 1, Flush: true, LineWords: 1, Probe: mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		a, err := NewAttacker(ch, Config{Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		out, err := a.AttackRound(1, nil, nil)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		rk, ok := out.Unique()
		if !ok {
			t.Fatalf("mode %v: ambiguity at 1-word lines", mode)
		}
		want := gift.ExpandKey64(key)[0]
		if rk.U != want.U || rk.V != want.V {
			t.Fatalf("mode %v: wrong round key", mode)
		}
		return out.Encryptions
	}

	fr := run(oracle.ProbeFlushReload)
	et := run(oracle.ProbeEvictTime)
	t.Logf("first-round effort: Flush+Reload %d, Evict+Time %d (%.1fx)", fr, et, float64(et)/float64(fr))
	if et < 8*fr {
		t.Fatalf("Evict+Time (%d) should cost roughly 16x Flush+Reload (%d)", et, fr)
	}
}
