package experiments

import (
	"fmt"
	"testing"
)

// benchOpts is a small Table I grid (2 line sizes × 3 probe rounds ×
// 2 trials = 12 jobs) that finishes in seconds but still has enough
// cells to show pool scaling. The campaign determinism contract means
// every worker count below computes the identical table.
func benchOpts(workers int) Options {
	return Options{Trials: 2, Budget: 100_000, Seed: 2021, Workers: workers}
}

// BenchmarkTable1Campaign compares serial against pooled execution of
// the same Table I grid through the campaign orchestrator. The recorded
// speedup lives in EXPERIMENTS.md ("Campaign orchestrator").
func BenchmarkTable1Campaign(b *testing.B) {
	lineWords := []int{1, 2}
	probeRounds := []int{1, 2, 3}
	// Fixed worker counts rather than GOMAXPROCS so the comparison is
	// stable across machines; on a single-core host the pooled run
	// measures pure orchestration overhead instead of speedup.
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows := Table1(benchOpts(workers), lineWords, probeRounds)
				if len(rows) != len(lineWords) {
					b.Fatalf("got %d rows", len(rows))
				}
			}
		})
	}
}
