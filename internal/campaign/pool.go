package campaign

import (
	"context"
	"runtime"
	"sync"
)

// ExecuteJobs runs an explicit job slice on a bounded worker pool and
// hands every completed result to emit. It is the low-level execution
// primitive under the distributed shard worker (internal/campaignd/
// worker): unlike Run it does not expand a spec, journal, or reorder —
// the caller decides which jobs to run (a shard slice, minus the
// indices its lease says are already done) and what to do with each
// result (batch it to the coordinator, which sorts by index at merge).
//
// Semantics:
//
//   - emit is called from a single goroutine, in completion order. The
//     determinism contract is unaffected: each Result is a pure
//     function of its Job (seeds are index-derived), only the emission
//     order varies with scheduling.
//   - A panicking or erroring executor yields a Failed result, exactly
//     as in Run.
//   - Cancelling ctx stops dispatch; in-flight jobs drain and are still
//     emitted, then ExecuteJobs returns ctx.Err(). An emit error stops
//     dispatch the same way and is returned instead.
func ExecuteJobs(ctx context.Context, jobs []Job, exec Executor, workers int, emit func(Result) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	dispatchCtx, stopDispatch := context.WithCancel(ctx)
	defer stopDispatch()

	jobCh := make(chan Job)
	resCh := make(chan Result)
	go func() {
		defer close(jobCh)
		for _, j := range jobs {
			select {
			case jobCh <- j:
			case <-dispatchCtx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for job := range jobCh {
				resCh <- runJob(job, exec, id, nil)
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(resCh)
	}()

	var emitErr error
	for r := range resCh {
		if emitErr != nil {
			continue // drain
		}
		if err := emit(r); err != nil {
			emitErr = err
			stopDispatch()
		}
	}
	if emitErr != nil {
		return emitErr
	}
	return ctx.Err()
}
