// Package taintflow is a grinchvet fixture for taint propagation:
// through assignment chains, arithmetic, helper calls, secret-return
// functions, struct fields and closures.
package taintflow

var table = [256]uint8{0: 1}

// expand is annotated as producing secret data.
//
//grinch:secret key return
func expand(key uint64) uint64 { return key * 3 }

type cipher struct {
	rk uint64 //grinch:secret
}

// ThroughAssignments: secret → a → b → index.
//
//grinch:secret s
func ThroughAssignments(s uint64) uint8 {
	a := s ^ 0xff
	b := a >> 4
	return table[b&0xff] // want "secret-index"
}

// ThroughCall: the result of a secret-return function is secret, even
// with a public argument.
func ThroughCall(pt uint64) uint8 {
	rk := expand(0)
	x := pt ^ rk
	return table[x&0xff] // want "secret-index"
}

// ThroughField: reading an annotated struct field yields secret data.
func ThroughField(c *cipher, pt uint64) uint8 {
	x := pt ^ c.rk
	return table[x&0xff] // want "secret-index"
}

// ThroughClosure: a closure capturing secret data produces secret data
// when called.
//
//grinch:secret full
func ThroughClosure(full uint64) uint8 {
	bit := func(i uint) uint64 { return full >> i & 1 }
	idx := bit(3)<<1 | bit(7)
	return table[idx] // want "secret-index"
}

// LaterTaint: flow-insensitivity — taint acquired on a later loop
// iteration reaches the use above it.
//
//grinch:secret k
func LaterTaint(k uint64) uint8 {
	var out uint8
	x := uint64(0)
	for i := 0; i < 4; i++ {
		out = table[x&0xff] // want "secret-index"
		x ^= k
	}
	return out
}

// PublicStaysPublic: no annotation anywhere, no finding.
func PublicStaysPublic(pt uint64) uint8 {
	x := pt ^ 42
	return table[x&0xff]
}
