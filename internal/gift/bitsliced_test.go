package gift

import (
	"testing"
	"testing/quick"

	"grinch/internal/bitutil"
)

// TestSBoxCircuitExhaustive verifies the boolean S-box circuit against
// the lookup table for all 16 inputs, one nibble at a time.
func TestSBoxCircuitExhaustive(t *testing.T) {
	for x := uint64(0); x < 16; x++ {
		got := SubCells64Bitsliced(x) & 0xf
		if got != uint64(SBox[x]) {
			t.Errorf("circuit S(%#x) = %#x, table says %#x", x, got, SBox[x])
		}
		gotInv := InvSubCells64Bitsliced(x) & 0xf
		if gotInv != uint64(InvSBox[x]) {
			t.Errorf("circuit S⁻¹(%#x) = %#x, table says %#x", x, gotInv, InvSBox[x])
		}
	}
}

func TestSubCells64BitslicedQuick(t *testing.T) {
	f := func(s uint64) bool {
		return SubCells64Bitsliced(s) == SubCells64(s) &&
			InvSubCells64Bitsliced(s) == InvSubCells64(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubCells128BitslicedQuick(t *testing.T) {
	f := func(lo, hi uint64) bool {
		s := bitutil.Word128{Lo: lo, Hi: hi}
		return SubCells128Bitsliced(s) == SubCells128(s) &&
			InvSubCells128Bitsliced(s) == InvSubCells128(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPlanesRoundTripQuick(t *testing.T) {
	f := func(s uint64) bool {
		p0, p1, p2, p3 := planes64(s)
		return unplanes64(p0, p1, p2, p3) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPlanes128RoundTripQuick(t *testing.T) {
	f := func(lo, hi uint64) bool {
		s := bitutil.Word128{Lo: lo, Hi: hi}
		p0, p1, p2, p3 := planes128(s)
		return unplanes128(p0, p1, p2, p3) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitslicedKnownAnswers(t *testing.T) {
	for _, kat := range gift64KATs {
		c := NewCipher64(mustKey(t, kat.key))
		pt := mustUint64(t, kat.pt)
		want := mustUint64(t, kat.ct)
		if got := c.EncryptBlockBitsliced(pt); got != want {
			t.Errorf("bitsliced Encrypt(%s) = %016x, want %s", kat.pt, got, kat.ct)
		}
	}
	for _, kat := range gift128KATs {
		c := NewCipher128(mustKey(t, kat.key))
		pt := mustWord128(t, kat.pt)
		want := mustWord128(t, kat.ct)
		if got := c.EncryptBlockBitsliced(pt); got != want {
			t.Errorf("bitsliced 128 Encrypt(%s) != KAT", kat.pt)
		}
	}
}
