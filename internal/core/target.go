// Package core implements the GRINCH attack (paper §III): an
// access-driven cache attack that recovers the full 128-bit GIFT key by
// crafting plaintexts that pin one S-box index per round and segment,
// eliminating candidate indices from observed cache line sets, and
// reverse-engineering the key bits from the surviving index.
//
// The attack follows the paper's five-step methodology:
//
//  1. Generate plaintext + encrypt (Algorithms 1 and 2) — target.go
//  2. Probe the cache — delegated to a probe.Channel
//  3. Eliminate candidates — eliminate.go
//  4. Reverse-engineer key bits — TargetSpec.KeyBits
//  5. Update plaintext generation for the next round — attack.go
//
// Wide cache lines hide the low index bits (paper §III-D); the attack
// then carries up to four candidate key-bit pairs per segment into the
// next round, where wrong hypotheses destroy the pinning and are pruned
// (attack.go).
package core

import (
	"fmt"
	"math/bits"

	"grinch/internal/gift"
	"grinch/internal/probe"
	"grinch/internal/rng"
)

// Source describes one of the four S-box outputs of round t that feed
// the attacked segment of round t+1 (the output of paper Algorithm 1 for
// one bit).
type Source struct {
	// Segment is the segment of the round-t S-box input state that
	// produces this bit.
	Segment int
	// Bit is the output bit (0..3) of that segment's S-box that the
	// permutation routes into the target; GIFT's permutation preserves
	// the bit position within a segment, so Bit equals the target bit
	// position this source feeds.
	Bit int
	// Inputs lists the S-box inputs x for which SBox[x] has Bit set —
	// the paper's list_A/list_B of valid crafted values (8 entries).
	Inputs []uint8
}

// TargetSpec pins one S-box access: the four input bits of segment
// Segment at the input of round Round+1's SubCells are forced to 1
// before the round-Round AddRoundKey, so the observed index differs from
// 0b1111 exactly by the two round-key bits and the known round constant.
type TargetSpec struct {
	// Round is the attacked round key (1-based): the crafted constraint
	// acts on the S-box accesses of round Round+1.
	Round int
	// Segment is the attacked segment g (0..15): key bits V_g and U_g
	// of round key Round are recovered.
	Segment int
	// Sources are the four round-Round S-box cells feeding the target,
	// indexed by target bit position (Sources[j] feeds index bit j).
	Sources [4]Source
	// ConstXor is the round-constant contribution to the observed
	// index (bit 3 only; bits 0..2 never carry constants in GIFT-64).
	ConstXor uint8

	// Crafting fast-path metadata, precomputed by buildTarget64 so the
	// per-plaintext hot loop is free of slice chases and pin-tracking
	// branches. craftInputs[i] packs Sources[i].Inputs as eight nibbles;
	// craftSrcShift[i] is 4*Sources[i].Segment; craftUnpinned lists the
	// shifts 4*seg of the twelve non-source segments in ascending
	// segment order (the draw order the scalar loop uses). craftFast is
	// false for hand-built specs, which take the general path.
	craftFast     bool
	craftSrcShift [4]uint8
	craftInputs   [4]uint32
	craftUnpinned [12]uint8
}

// sboxBitList returns the S-box inputs whose output has bit j set
// (paper Algorithm 1 lines 6-13, expressed directly instead of through
// Inv_SBOX).
func sboxBitList(j int) []uint8 {
	var list []uint8
	for x := uint8(0); x < 16; x++ {
		if gift.SBox[x]>>j&1 == 1 {
			list = append(list, x)
		}
	}
	return list
}

// target64Specs caches every (round, segment) specification: the specs
// are pure functions of the cipher's constants, and campaign sweeps
// request them hundreds of thousands of times. The cached Sources'
// Inputs slices are shared — TargetSpec consumers only read them.
var target64Specs = buildTarget64Specs()

func buildTarget64Specs() [gift.Rounds64][gift.Segments64]TargetSpec {
	var specs [gift.Rounds64][gift.Segments64]TargetSpec
	for t := 1; t <= gift.Rounds64; t++ {
		for g := 0; g < gift.Segments64; g++ {
			specs[t-1][g] = buildTarget64(t, g)
		}
	}
	return specs
}

// NewTarget64 returns the target specification for round key t
// (1-based) and segment g of GIFT-64.
func NewTarget64(t, g int) TargetSpec {
	if t < 1 || t > gift.Rounds64 {
		panic(fmt.Sprintf("core: round %d out of range", t))
	}
	if g < 0 || g >= gift.Segments64 {
		panic(fmt.Sprintf("core: segment %d out of range", g))
	}
	return target64Specs[t-1][g]
}

// buildTarget64 constructs one specification. This is paper Algorithm 1
// (SET_TARGET_BITS): the state positions that AddRoundKey XORs with the
// target key bits are inverse-permuted to locate the S-box output bits
// that must be pinned.
func buildTarget64(t, g int) TargetSpec {
	spec := TargetSpec{Round: t, Segment: g}
	for j := 0; j < 4; j++ {
		// State bit 4g+j of the round-(t+1) S-box input comes from
		// S-box output bit InvPerm64[4g+j] of round t.
		p := int(gift.InvPerm64[4*g+j])
		spec.Sources[j] = Source{
			Segment: p / 4,
			Bit:     p % 4,
			Inputs:  sboxBitList(p % 4),
		}
	}
	// Round-constant contribution to the observed index: GIFT-64 XORs a
	// fixed 1 into state bit 63 (segment 15, bit 3) and constant bits
	// c_i into bits 4i+3 for i = 0..5 (segments 0..5, bit 3).
	c := gift.RoundConstants[t-1]
	switch {
	case g == 15:
		spec.ConstXor = 1 << 3
	case g < 6:
		spec.ConstXor = (c >> g & 1) << 3
	}
	spec.compileCraft()
	return spec
}

// compileCraft fills the crafting fast-path metadata. It only succeeds
// when every source list has exactly 8 entries (every balanced S-box
// output bit does) and the four sources pin four distinct segments
// (GIFT's permutation guarantees it); otherwise craftFast stays false
// and CraftState falls back to the general loop.
func (t *TargetSpec) compileCraft() {
	var pinned uint16
	for i := range t.Sources {
		src := &t.Sources[i]
		if len(src.Inputs) != 8 {
			return
		}
		for k, x := range src.Inputs {
			t.craftInputs[i] |= uint32(x) << (4 * k)
		}
		t.craftSrcShift[i] = uint8(4 * src.Segment)
		pinned |= 1 << src.Segment
	}
	if bits.OnesCount16(pinned) != 4 {
		return
	}
	n := 0
	for seg := 0; seg < gift.Segments64; seg++ {
		if pinned&(1<<seg) == 0 {
			t.craftUnpinned[n] = uint8(4 * seg)
			n++
		}
	}
	t.craftFast = true
}

// pinnedValue is the value the four pinned bits take before AddRoundKey
// (the paper sets both target bits to 1; we pin all four source bits so
// exactly one index is activated).
const pinnedValue = 0xf

// ExpectedIndex returns the S-box index that will be observed in round
// Round+1, segment Segment, when round key Round has V bit v and U bit u
// at this segment.
func (t TargetSpec) ExpectedIndex(v, u uint8) uint8 {
	return pinnedValue ^ t.ConstXor ^ (v&1 | u&1<<1)
}

// KeyBits reverse-engineers the two key bits from the observed index
// (paper Step 4: Key[i] ← ¬Index[a], adjusted for the round constant).
// v is the bit XORed at state position 4g (key bit g of the round key's
// V word) and u the bit at 4g+1 (bit g of U).
func (t TargetSpec) KeyBits(index uint8) (v, u uint8) {
	d := index ^ pinnedValue ^ t.ConstXor
	return d & 1, d >> 1 & 1
}

// FeasibleLines returns the table lines the pinned target can land on:
// the four possible key-bit pairs map to at most four indices, which a
// wide line collapses further. A converged line outside this set cannot
// be the target — it is a noise line that survived by chance.
func (t TargetSpec) FeasibleLines(lineWords int) probe.LineSet {
	var set probe.LineSet
	for p := uint8(0); p < 4; p++ {
		set = set.Add(int(t.ExpectedIndex(p&1, p>>1)) / lineWords)
	}
	return set
}

// PairsForLine returns the candidate (v | u<<1) key-bit pairs consistent
// with the observed table line when lineWords table entries share one
// cache line: wide lines hide the low index bits, leaving up to four
// candidates (paper §III-D).
func (t TargetSpec) PairsForLine(line, lineWords int) []uint8 {
	var pairs []uint8
	for p := uint8(0); p < 4; p++ {
		if int(t.ExpectedIndex(p&1, p>>1))/lineWords == line {
			pairs = append(pairs, p)
		}
	}
	return pairs
}

// CraftState builds the round-Round S-box input state (paper Algorithm
// 2, GENERATE): each source segment gets a value drawn from its valid
// list so the pinned output bit is 1; every other segment is random.
func (t *TargetSpec) CraftState(r *rng.Source) uint64 {
	if !t.craftFast {
		return t.craftStateGeneral(r)
	}
	// Fast path over the compiled metadata: every source draw is
	// Intn(8) — and IntnPow2(3) is the same draw, same value, small
	// enough to inline — indexing a packed nibble list instead of a
	// slice, and the unpinned segments stream straight off the
	// precomputed shift list with no pin bookkeeping. With every draw
	// inlined and no call left in the body, the local generator copy
	// stays register-resident across all 16 draws of the craft.
	st := *r
	var state uint64
	for i := 0; i < 4; i++ {
		x := t.craftInputs[i] >> (4 * uint(st.IntnPow2(3))) & 0xf
		state |= uint64(x) << t.craftSrcShift[i]
	}
	u := &t.craftUnpinned
	state |= st.Nibble() << u[0]
	state |= st.Nibble() << u[1]
	state |= st.Nibble() << u[2]
	state |= st.Nibble() << u[3]
	state |= st.Nibble() << u[4]
	state |= st.Nibble() << u[5]
	state |= st.Nibble() << u[6]
	state |= st.Nibble() << u[7]
	state |= st.Nibble() << u[8]
	state |= st.Nibble() << u[9]
	state |= st.Nibble() << u[10]
	state |= st.Nibble() << u[11]
	*r = st
	return state
}

// craftStateGeneral handles source lists of any length; specs built by
// NewTarget64 never take it (the GIFT S-box is balanced), but the
// method's contract does not require 8-entry lists.
func (t *TargetSpec) craftStateGeneral(r *rng.Source) uint64 {
	var state uint64
	var pinned uint16
	for i := range t.Sources {
		src := &t.Sources[i]
		x := src.Inputs[r.Intn(len(src.Inputs))]
		state |= uint64(x) << (4 * src.Segment)
		pinned |= 1 << src.Segment
	}
	for seg := 0; seg < gift.Segments64; seg++ {
		if pinned&(1<<seg) == 0 {
			state |= r.Nibble() << (4 * seg)
		}
	}
	return state
}

// CraftPlaintext turns a crafted round-Round state into the plaintext
// that produces it, by inverting rounds Round-1..1 with the (known or
// hypothesized) earlier round keys. For Round == 1 the state is the
// plaintext (paper Step 5 reduces to Step 1).
func (t TargetSpec) CraftPlaintext(r *rng.Source, rks []gift.RoundKey64) uint64 {
	state := t.CraftState(r)
	if t.Round == 1 {
		return state
	}
	if len(rks) < t.Round-1 {
		panic(fmt.Sprintf("core: crafting round %d needs %d round keys, have %d",
			t.Round, t.Round-1, len(rks)))
	}
	return gift.PartialDecrypt64(state, rks, t.Round-1)
}

// ParentSegments returns the four round-(Round-1)-key segments whose key
// bits determine whether the crafted state is realized, indexed by the
// target bit position they influence. (For Round == 1 the sources are
// plaintext segments and no key is involved.)
func (t TargetSpec) ParentSegments() [4]int {
	var out [4]int
	for j, src := range t.Sources {
		out[j] = src.Segment
	}
	return out
}
