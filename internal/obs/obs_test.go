package obs

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func sampleEvents() []Event {
	return []Event{
		{Kind: KindEncryptionStart, Enc: 1, Cipher: "GIFT-64"},
		{Kind: KindProbeObservation, Enc: 1, Round: 1, Segment: 0, Lines: 0b1011},
		{Kind: KindCandidateUpdate, Enc: 1, Round: 1, Segment: 0, Lines: 0b1011, Survivors: 3, EntropyBits: EntropyBits(3)},
		{Kind: KindSegmentRecovered, Enc: 9, Round: 1, Segment: 0, Line: 3, Observations: 9},
		{Kind: KindCacheSnapshot, Hits: 5, Misses: 2, Evictions: 1, Flushes: 4, FlushedLines: 3},
		{Kind: KindSimTime, Enc: 1, SimPS: 123456},
	}
}

func TestBufferStampsJobIndex(t *testing.T) {
	b := &Buffer{Job: 7}
	for _, e := range sampleEvents() {
		b.Emit(e)
	}
	if len(b.Events) != len(sampleEvents()) {
		t.Fatalf("buffer holds %d events, want %d", len(b.Events), len(sampleEvents()))
	}
	for i, e := range b.Events {
		if e.Job != 7 {
			t.Fatalf("event %d not stamped with job index: %+v", i, e)
		}
	}
}

func TestWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	in := sampleEvents()
	if err := w.WriteEvents(in); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != len(in) {
		t.Fatalf("writer counted %d events, want %d", w.Count(), len(in))
	}
	out, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\nin  %+v\nout %+v", in, out)
	}
}

func TestWriterBytesAreDeterministic(t *testing.T) {
	render := func() []byte {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteEvents(sampleEvents()); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Fatal("identical event streams serialized to different bytes")
	}
}

// TestNoWallClockKeys pins the determinism contract at the schema
// level: no serialized event may carry a wall-clock-looking key. This
// mirrors campaign's Result.Canonical regression test.
func TestNoWallClockKeys(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteEvents(sampleEvents()); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"duration", "wall", "time_ns", "timestamp", "unix", "worker"} {
		if strings.Contains(buf.String(), key) {
			t.Fatalf("serialized event stream contains wall-clock key %q:\n%s", key, buf.String())
		}
	}
}

func TestReadAllRejectsUnknownFields(t *testing.T) {
	in := strings.NewReader(`{"kind":"sim_time","wall_ns":123}`)
	if _, err := ReadAll(in); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestWriterStickyError(t *testing.T) {
	w := NewWriter(failWriter{})
	// The bufio layer defers the failure until its buffer fills or is
	// flushed; after Flush the error must be sticky and final.
	w.Emit(Event{Kind: KindSimTime})
	if err := w.Flush(); err == nil {
		t.Fatal("flush on a failing writer returned nil")
	}
	w.Emit(Event{Kind: KindSimTime})
	if w.Err() == nil {
		t.Fatal("error not sticky")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("injected") }

func TestEntropyBits(t *testing.T) {
	cases := []struct {
		survivors int
		want      float64
	}{
		{0, 0}, {1, 0}, {2, 1}, {4, 2}, {8, 3}, {16, 4},
	}
	for _, c := range cases {
		if got := EntropyBits(c.survivors); got != c.want {
			t.Fatalf("EntropyBits(%d) = %v, want %v", c.survivors, got, c.want)
		}
	}
	if got := EntropyBits(3); got < 1.58 || got > 1.59 {
		t.Fatalf("EntropyBits(3) = %v, want ~1.585", got)
	}
}
