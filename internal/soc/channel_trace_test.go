package soc

import (
	"testing"

	"grinch/internal/obs"
)

// TestPlatformChannelEmitsCumulativeCacheSnapshots pins the platform
// channel's trace contract: every traced Collect ends with one
// cache_snapshot whose counters accumulate across sessions (each
// session runs on a fresh cache, so without accumulation the snapshots
// would reset every encryption).
func TestPlatformChannelEmitsCumulativeCacheSnapshots(t *testing.T) {
	buf := &obs.Buffer{}
	ch := &PlatformChannel{P: NewSingleSoC(testKey, DefaultParams(10)), LineBytes: 1, Tracer: buf}

	ch.Collect(0x0123456789abcdef, 1)
	ch.Collect(0xfedcba9876543210, 1)

	var snaps []obs.Event
	for _, ev := range buf.Events {
		if ev.Kind == obs.KindCacheSnapshot {
			snaps = append(snaps, ev)
		}
	}
	if len(snaps) != 2 {
		t.Fatalf("got %d cache_snapshot events, want 2", len(snaps))
	}
	for i, s := range snaps {
		if s.Enc != uint64(i+1) {
			t.Errorf("snapshot %d stamped enc %d, want %d", i, s.Enc, i+1)
		}
		if s.Hits == 0 || s.Misses == 0 || s.Flushes == 0 {
			t.Errorf("snapshot %d has zero counters: %+v", i, s)
		}
	}
	if snaps[1].Hits <= snaps[0].Hits || snaps[1].Misses <= snaps[0].Misses || snaps[1].Flushes <= snaps[0].Flushes {
		t.Fatalf("counters did not accumulate: first %+v, second %+v", snaps[0], snaps[1])
	}

	// Each traced encryption ends with snapshot then encryption_end.
	for i := 1; i < len(buf.Events); i++ {
		if buf.Events[i].Kind == obs.KindEncryptionEnd && buf.Events[i-1].Kind != obs.KindCacheSnapshot {
			t.Fatalf("event %d before encryption_end is %q, want cache_snapshot", i-1, buf.Events[i-1].Kind)
		}
	}
}

// TestSessionCarriesCacheStats pins that platform sessions report the
// per-session cache activity the channel accumulates.
func TestSessionCarriesCacheStats(t *testing.T) {
	s := NewSingleSoC(testKey, DefaultParams(10))
	sess := s.RunSession(0x0123456789abcdef)
	if sess.CacheStats.Accesses == 0 || sess.CacheStats.Misses == 0 {
		t.Fatalf("single-SoC session cache stats empty: %+v", sess.CacheStats)
	}
	m := NewMPSoC(testKey, DefaultParams(10))
	sess = m.RunSession(0x0123456789abcdef)
	if sess.CacheStats.Accesses == 0 || sess.CacheStats.Misses == 0 {
		t.Fatalf("MPSoC session cache stats empty: %+v", sess.CacheStats)
	}
}
