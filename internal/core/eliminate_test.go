package core

import (
	"testing"

	"grinch/internal/probe"
)

func TestEliminatorStrictIntersection(t *testing.T) {
	e := NewEliminator(16, 1)
	e.Observe(probe.LineSet(0b0000_1111))
	e.Observe(probe.LineSet(0b0011_0101))
	if got := e.Candidates(); got != probe.LineSet(0b0000_0101) {
		t.Fatalf("candidates = %v", got)
	}
	e.Observe(probe.LineSet(0b0000_0100))
	line, ok := e.Converged(1)
	if !ok || line != 2 {
		t.Fatalf("Converged = (%d,%v), want (2,true)", line, ok)
	}
}

func TestEliminatorBeforeObservations(t *testing.T) {
	e := NewEliminator(8, 1)
	if got := e.Candidates(); got != probe.FullSet(8) {
		t.Fatalf("initial candidates = %v", got)
	}
	if _, ok := e.Converged(0); ok {
		t.Fatal("converged with no observations")
	}
	if e.Exhausted() {
		t.Fatal("exhausted with no observations")
	}
}

func TestEliminatorExhaustion(t *testing.T) {
	e := NewEliminator(4, 1)
	e.Observe(probe.LineSet(0b0011))
	e.Observe(probe.LineSet(0b1100))
	if !e.Exhausted() {
		t.Fatal("disjoint observations should exhaust")
	}
	if _, ok := e.Converged(1); ok {
		t.Fatal("exhausted eliminator converged")
	}
}

func TestEliminatorMinObservationsGate(t *testing.T) {
	e := NewEliminator(4, 1)
	e.Observe(probe.LineSet(0b0001))
	if _, ok := e.Converged(2); ok {
		t.Fatal("converged before MinObservations")
	}
	e.Observe(probe.LineSet(0b0001))
	if line, ok := e.Converged(2); !ok || line != 0 {
		t.Fatalf("Converged = (%d,%v)", line, ok)
	}
}

func TestEliminatorThresholdToleratesAbsence(t *testing.T) {
	e := NewEliminator(4, 0.7)
	// Line 1 present in 4/5 observations (ratio 0.8 ≥ 0.7); line 2
	// present in 2/5 (0.4 < 0.7).
	sets := []probe.LineSet{0b0010, 0b0110, 0b0010, 0b0100, 0b0010}
	for _, s := range sets {
		e.Observe(s)
	}
	if got := e.Candidates(); got != probe.LineSet(0b0010) {
		t.Fatalf("candidates = %v", got)
	}
}

// TestEliminatorAdversarialExhaustThenRestart models the recovery the
// attack core performs under destructive noise: a false absence on the
// true line exhausts a strict eliminator permanently, and a fresh
// eliminator with a relaxed threshold converges on the same stream.
func TestEliminatorAdversarialExhaustThenRestart(t *testing.T) {
	// True line is 3; observation 2 misses it (false absence) and every
	// other line dies across the stream.
	stream := []probe.LineSet{
		0b1111_1000, 0b0011_0110, 0b0000_1100, 0b0110_1000,
		0b0000_1010, 0b0100_1100, 0b0000_1001, 0b0010_1000,
	}

	strict := NewEliminator(8, 1)
	for _, s := range stream {
		strict.Observe(s)
	}
	if !strict.Exhausted() {
		t.Fatal("strict eliminator should exhaust: the true line has a false absence")
	}

	// The restart path re-runs with a relaxed threshold over fresh
	// observations of the same distribution. One relaxation (0.9) is
	// still above the true line's 7/8 ratio; the second restart's 0.81
	// tolerates the loss.
	relaxed := NewEliminator(8, relaxThreshold(relaxThreshold(1, 0.9), 0.9))
	for i := 0; i < 6; i++ {
		for _, s := range stream {
			relaxed.Observe(s)
		}
	}
	line, ok := relaxed.Converged(relaxedMinObservations)
	if !ok || line != 3 {
		t.Fatalf("relaxed Converged = (%d,%v), want (3,true)", line, ok)
	}
}

// TestEliminatorBurstyFalseAbsences pins threshold semantics under
// correlated (bursty) loss: the true line vanishes for a contiguous
// burst but keeps a ratio above the threshold over the full window,
// while an intermittent noise line stays below it.
func TestEliminatorBurstyFalseAbsences(t *testing.T) {
	e := NewEliminator(4, 0.75)
	true3, noise1 := probe.LineSet(0b1000), probe.LineSet(0b0010)
	for i := 0; i < 40; i++ {
		s := true3
		if i >= 10 && i < 14 {
			s = 0 // 4-observation burst: the true line disappears
		}
		if i%3 == 0 {
			s |= noise1
		}
		e.Observe(s)
	}
	// True line: 36/40 = 0.9 ≥ 0.75. Noise line: 14/40 = 0.35 < 0.75.
	line, ok := e.Converged(8)
	if !ok || line != 3 {
		t.Fatalf("Converged = (%d,%v), want (3,true)", line, ok)
	}
	// A longer burst pushes the true line below the threshold and the
	// eliminator must report exhaustion, not a fake survivor.
	e2 := NewEliminator(4, 0.75)
	for i := 0; i < 40; i++ {
		s := true3
		if i >= 10 && i < 24 {
			s = 0 // 14/40 lost: ratio 0.65 < 0.75
		}
		e2.Observe(s)
	}
	if !e2.Exhausted() {
		t.Fatalf("candidates %v, want exhaustion under a 35%% loss burst", e2.Candidates())
	}
}

// TestEliminatorMinObservationsGuardsSparseLines covers the per-line
// examination floor: under a partial mask a line seen only once must
// not be declared converged until it has minObs examinations behind it.
func TestEliminatorMinObservationsGuardsSparseLines(t *testing.T) {
	e := NewEliminator(4, 1)
	// Lines 1..3 examined and absent (eliminated); line 0 examined just
	// once and present.
	e.ObserveMasked(0b0001, 0b1111)
	e.ObserveMasked(0b0000, 0b1110)
	e.ObserveMasked(0b0000, 0b1110)
	if _, ok := e.Converged(3); ok {
		t.Fatal("line 0 declared converged on a single examination")
	}
	e.ObserveMasked(0b0001, 0b0001)
	e.ObserveMasked(0b0001, 0b0001)
	line, ok := e.Converged(3)
	if !ok || line != 0 {
		t.Fatalf("Converged = (%d,%v), want (0,true)", line, ok)
	}
}

func TestEliminatorIgnoresOutOfRangeLines(t *testing.T) {
	e := NewEliminator(2, 1)
	e.Observe(probe.LineSet(0b1111)) // lines 2,3 beyond range
	e.Observe(probe.LineSet(0b0001))
	if line, ok := e.Converged(1); !ok || line != 0 {
		t.Fatalf("Converged = (%d,%v)", line, ok)
	}
}

func TestEliminatorPanicsOnBadArgs(t *testing.T) {
	for _, fn := range []func(){
		func() { NewEliminator(0, 1) },
		func() { NewEliminator(65, 1) },
		func() { NewEliminator(4, 0) },
		func() { NewEliminator(4, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestWorstPinShare(t *testing.T) {
	// The GIFT S-box is balanced; a wrong hypothesis can leave at most
	// 6/8 of the crafted inputs pinned (and at least something below 1,
	// or hypothesis testing would be impossible).
	if worstPinShare >= 1 || worstPinShare < 0.5 {
		t.Fatalf("worstPinShare = %v, expected in [0.5, 1)", worstPinShare)
	}
}
