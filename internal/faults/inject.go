package faults

import (
	"grinch/internal/bitutil"
	"grinch/internal/core"
	"grinch/internal/obs"
	"grinch/internal/probe"
	"grinch/internal/rng"
)

// Stats counts injections, by fault kind, since construction. Purely
// informational (tests, summaries); the deterministic record is the
// fault_injected event stream.
type Stats struct {
	Bursts     uint64
	Drops      uint64
	Misaligns  uint64
	Transients uint64
}

// Total returns the sum over all kinds.
func (s Stats) Total() uint64 { return s.Bursts + s.Drops + s.Misaligns + s.Transients }

// decision is the resolved set of faults firing on one encryption.
type decision struct {
	drop       bool
	transient  int // firing transient fault's plan index, -1 otherwise
	offset     int // accumulated misalignment in rounds
	burst      []int
	burstNoise *rng.Source // stream for the post-collection burst noise
}

// engine is the channel-agnostic injection core shared by the GIFT-64
// and GIFT-128 injectors.
type engine struct {
	plan   Plan
	seed   uint64
	lines  int
	tracer obs.Tracer
	stats  Stats
}

func newEngine(plan Plan, seed uint64, lines int) *engine {
	return &engine{plan: plan, seed: rng.Derive(seed, plan.Seed), lines: lines}
}

// decide resolves which faults fire on encryption enc (1-based). Every
// random draw comes from a generator seeded with rng.Derive(seed, enc),
// and draws happen in plan order, so the decision is a pure function of
// (plan, seed, enc) — independent of retries, interleaving or worker
// scheduling.
func (e *engine) decide(enc uint64) decision {
	d := decision{transient: -1}
	if e.plan.Empty() {
		return d
	}
	r := rng.New(rng.Derive(e.seed, enc))
	for i, f := range e.plan.Faults {
		if !f.active(enc) {
			continue
		}
		switch f.Kind {
		case KindTransient:
			if r.Float64() < f.prob() && d.transient < 0 {
				d.transient = i
			}
		case KindDrop:
			if r.Float64() < f.prob() {
				d.drop = true
			}
		case KindMisalign:
			d.offset += f.Offset
		case KindBurst:
			d.burst = append(d.burst, i)
		}
	}
	if len(d.burst) > 0 {
		// The burst stream is split off after all window decisions so
		// adding a drop fault to a plan does not re-phase burst noise
		// draws mid-line.
		d.burstNoise = r.Split()
	}
	return d
}

// emit records one fault firing.
func (e *engine) emit(enc uint64, kind Kind) {
	switch kind {
	case KindBurst:
		e.stats.Bursts++
	case KindDrop:
		e.stats.Drops++
	case KindMisalign:
		e.stats.Misaligns++
	case KindTransient:
		e.stats.Transients++
	}
	if e.tracer != nil {
		e.tracer.Emit(obs.Event{Kind: obs.KindFaultInjected, Enc: enc, Fault: string(kind)})
	}
}

// round applies the decision's misalignment to the target round,
// clamped to ≥ 1.
func (d decision) round(target int) int {
	r := target + d.offset
	if r < 1 {
		r = 1
	}
	return r
}

// applyBurst overlays the firing bursts' correlated noise on set.
func (e *engine) applyBurst(enc uint64, d decision, set probe.LineSet) probe.LineSet {
	out := set
	for _, fi := range d.burst {
		f := e.plan.Faults[fi]
		e.emit(enc, KindBurst)
		for l := 0; l < e.lines; l++ {
			if set.Contains(l) {
				if f.FalseAbsence > 0 && d.burstNoise.Float64() < f.FalseAbsence {
					out &^= 1 << l
				}
			} else {
				if f.FalsePresence > 0 && d.burstNoise.Float64() < f.FalsePresence {
					out = out.Add(l)
				}
			}
		}
	}
	return out
}

// Injector wraps a GIFT-64 observation channel (probe.Channel) and
// injects the plan's structured faults. It implements probe.Channel
// and probe.FallibleChannel.
//
// Semantics per fault kind, for the encryption being collected:
//
//   - transient: the victim encryption is still performed (the probe,
//     not the victim, failed) and CollectErr returns a typed
//     *TransientError. Plain Collect degrades the failure to a dropped
//     (empty) observation, for consumers without a retry path.
//   - drop: the observation is replaced with the empty set.
//   - misalign: the probe is taken at targetRound+Offset (clamped ≥ 1).
//   - burst: correlated per-line false presences/absences are overlaid
//     on the observed set.
type Injector struct {
	ch probe.Channel
	e  *engine
}

// NewInjector wraps ch with the plan. seed is combined with the plan's
// own seed (rng.Derive) to key the injection randomness; campaign jobs
// pass their private job seed so a shared plan file still draws
// independent per-job streams.
func NewInjector(ch probe.Channel, plan Plan, seed uint64) *Injector {
	return &Injector{ch: ch, e: newEngine(plan, seed, ch.Lines())}
}

// SetTracer attaches an event tracer (nil disables); the injector
// emits one fault_injected event per fault firing.
func (in *Injector) SetTracer(t obs.Tracer) { in.e.tracer = t }

// Plan returns the wrapped plan.
func (in *Injector) Plan() Plan { return in.e.plan }

// Stats returns cumulative injection counts.
func (in *Injector) Stats() Stats { return in.e.stats }

// Lines implements probe.Channel.
func (in *Injector) Lines() int { return in.ch.Lines() }

// Encryptions implements probe.Channel.
func (in *Injector) Encryptions() uint64 { return in.ch.Encryptions() }

// Collect implements probe.Channel. Transient failures degrade to
// dropped observations; retry-capable consumers should use CollectErr.
func (in *Injector) Collect(pt uint64, targetRound int) probe.LineSet {
	set, err := in.CollectErr(pt, targetRound)
	if err != nil {
		return 0
	}
	return set
}

// CollectErr implements probe.FallibleChannel.
func (in *Injector) CollectErr(pt uint64, targetRound int) (probe.LineSet, error) {
	enc := in.ch.Encryptions() + 1
	d := in.e.decide(enc)
	set := in.ch.Collect(pt, d.round(targetRound))
	if d.offset != 0 {
		in.e.emit(enc, KindMisalign)
	}
	if d.transient >= 0 {
		in.e.emit(enc, KindTransient)
		return 0, &TransientError{Enc: enc, Fault: d.transient}
	}
	if d.drop {
		in.e.emit(enc, KindDrop)
		return 0, nil
	}
	return in.e.applyBurst(enc, d, set), nil
}

// Injector128 wraps a GIFT-128 observation channel (core.Channel128)
// with the same semantics as Injector. It implements core.Channel128
// and core.FallibleChannel128.
type Injector128 struct {
	ch core.Channel128
	e  *engine
}

// NewInjector128 wraps a GIFT-128 channel with the plan.
func NewInjector128(ch core.Channel128, plan Plan, seed uint64) *Injector128 {
	return &Injector128{ch: ch, e: newEngine(plan, seed, ch.Lines())}
}

// SetTracer attaches an event tracer (nil disables).
func (in *Injector128) SetTracer(t obs.Tracer) { in.e.tracer = t }

// Stats returns cumulative injection counts.
func (in *Injector128) Stats() Stats { return in.e.stats }

// Lines implements core.Channel128.
func (in *Injector128) Lines() int { return in.ch.Lines() }

// Encryptions implements core.Channel128.
func (in *Injector128) Encryptions() uint64 { return in.ch.Encryptions() }

// Collect implements core.Channel128; transient failures degrade to
// dropped observations.
func (in *Injector128) Collect(pt bitutil.Word128, targetRound int) probe.LineSet {
	set, err := in.CollectErr(pt, targetRound)
	if err != nil {
		return 0
	}
	return set
}

// CollectErr implements core.FallibleChannel128.
func (in *Injector128) CollectErr(pt bitutil.Word128, targetRound int) (probe.LineSet, error) {
	enc := in.ch.Encryptions() + 1
	d := in.e.decide(enc)
	set := in.ch.Collect(pt, d.round(targetRound))
	if d.offset != 0 {
		in.e.emit(enc, KindMisalign)
	}
	if d.transient >= 0 {
		in.e.emit(enc, KindTransient)
		return 0, &TransientError{Enc: enc, Fault: d.transient}
	}
	if d.drop {
		in.e.emit(enc, KindDrop)
		return 0, nil
	}
	return in.e.applyBurst(enc, d, set), nil
}

// Compile-time interface checks.
var (
	_ probe.Channel           = (*Injector)(nil)
	_ probe.FallibleChannel   = (*Injector)(nil)
	_ core.Channel128         = (*Injector128)(nil)
	_ core.FallibleChannel128 = (*Injector128)(nil)
)
