// Quickstart: encrypt a block with GIFT-64, then mount the GRINCH cache
// attack against the same key through the ideal observation channel and
// recover all 128 key bits.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"grinch/internal/bitutil"
	"grinch/internal/core"
	"grinch/internal/gift"
	"grinch/internal/oracle"
)

func main() {
	// --- The victim: a GIFT-64 cipher holding a secret key. ---
	key := bitutil.Word128{Lo: 0x0123456789abcdef, Hi: 0xfedcba9876543210}
	cipher := gift.NewCipher64FromWord(key)

	pt := uint64(0x48656c6c6f212121) // "Hello!!!"
	ct := cipher.EncryptBlock(pt)
	fmt.Printf("plaintext:  %016x\n", pt)
	fmt.Printf("ciphertext: %016x\n", ct)
	fmt.Printf("decrypted:  %016x\n\n", cipher.DecryptBlock(ct))

	// --- The attacker: GRINCH over an ideal cache observation channel
	// (probe lands right after the first key-dependent S-box accesses,
	// with a flush — the paper's best case). ---
	channel, err := oracle.New(key, oracle.Config{
		ProbeRound: 1,
		Flush:      true,
		LineWords:  1,
	})
	if err != nil {
		log.Fatal(err)
	}
	attacker, err := core.NewAttacker(channel, core.Config{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	res, err := attacker.RecoverKey()
	if err != nil {
		log.Fatalf("attack failed: %v", err)
	}

	kb, rb := key.Bytes(), res.Key.Bytes()
	fmt.Printf("victim key:    %x\n", kb)
	fmt.Printf("recovered key: %x\n", rb)
	fmt.Printf("encryptions:   %d (paper: fewer than 400)\n", res.Encryptions)
	if res.Key == key {
		fmt.Println("GRINCH recovered the full 128-bit key.")
	} else {
		log.Fatal("recovery mismatch")
	}
}
