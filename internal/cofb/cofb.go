// Package cofb implements the COFB (COmbined FeedBack) authenticated
// encryption mode over GIFT-128 — the construction of GIFT-COFB, the
// NIST lightweight-cryptography finalist that motivates the GRINCH
// paper's security analysis ("among the 32 candidates of the second
// competition round, 7 are based on GIFT cipher").
//
// Structure (Chakraborti et al., GIFT-COFB):
//
//	Y₀ = E_K(N)                       — the nonce is encrypted first
//	L  = ⌈Y₀⌉₆₄                       — top half seeds the mask chain
//	per block: X = G(Y) ⊕ M ⊕ (Δ‖0⁶⁴), C = Y ⊕ M, Y' = E_K(X)
//	G(Y₁‖Y₂) = Y₂ ‖ (Y₁ ⋘ 1)          — the combined feedback function
//	Δ chains by GF(2⁶⁴) doubling (×2 per block, ×3 at domain switches)
//	T  = Y_final
//
// No official test vectors are available offline, so correctness is
// established structurally: round-trip for all AD/plaintext shapes,
// tamper detection on every byte, nonce/key separation, mask-chain
// properties, and the exact Y₀ = E_K(N) relation the GRINCH extension
// exploits (an attacker who chooses nonces chooses the cipher's
// plaintexts — see examples/aead_attack).
package cofb

import (
	"crypto/subtle"
	"errors"

	"grinch/internal/bitutil"
	"grinch/internal/gift"
)

// TagSize is the authentication tag length in bytes.
const TagSize = 16

// NonceSize is the nonce length in bytes.
const NonceSize = 16

// ErrAuth is returned when a ciphertext fails authentication.
var ErrAuth = errors.New("cofb: message authentication failed")

// AEAD is a GIFT-COFB instance.
type AEAD struct {
	cipher *gift.Cipher128 //grinch:secret
}

// New builds an AEAD from a 128-bit key.
//
//grinch:secret key
func New(key [16]byte) *AEAD {
	return &AEAD{cipher: gift.NewCipher128(key)}
}

// NewFromWord builds an AEAD from a key word.
//
//grinch:secret key
func NewFromWord(key bitutil.Word128) *AEAD {
	return &AEAD{cipher: gift.NewCipher128FromWord(key)}
}

// block is a 128-bit state in big-endian halves (hi = leftmost bytes),
// matching the byte order of gift.Cipher128.
type block = bitutil.Word128

// g applies the combined feedback function G(Y₁‖Y₂) = Y₂‖(Y₁ ⋘ 1),
// where Y₁ is the leftmost (Hi) half.
//
//grinch:secret y return
func g(y block) block {
	return block{Hi: y.Lo, Lo: y.Hi<<1 | y.Hi>>63}
}

// double multiplies a 64-bit mask by x in GF(2⁶⁴) with the primitive
// polynomial x⁶⁴+x⁴+x³+x+1 (0x1b). The mask chain is derived from
// E_K(N), so the carry branch below is a secret-dependent branch — the
// classic GF-doubling timing leak grinchvet keeps on the books.
//
//grinch:secret d return
func double(d uint64) uint64 {
	carry := d >> 63
	d <<= 1
	if carry != 0 {
		d ^= 0x1b
	}
	return d
}

// triple returns 3·Δ = 2·Δ ⊕ Δ.
//
//grinch:secret d return
func triple(d uint64) uint64 { return double(d) ^ d }

// enc runs the block cipher. Its output is keyed material: everything
// downstream (feedback state, mask chain, tag) is secret-derived.
//
//grinch:secret return
func (a *AEAD) enc(x block) block { return a.cipher.EncryptBlock(x) }

// xorMask folds the 64-bit mask into the top half of a block (Δ‖0⁶⁴).
func xorMask(x block, delta uint64) block {
	x.Hi ^= delta
	return x
}

// loadBlock reads up to 16 bytes big-endian, 10*-padding short blocks.
func loadBlock(p []byte) (b block, full bool) {
	var buf [16]byte
	n := copy(buf[:], p)
	if n < 16 {
		buf[n] = 0x80
	}
	return bitutil.Word128FromBytes(buf), n == 16
}

// storeBlock writes the leftmost len(dst) bytes of b.
func storeBlock(dst []byte, b block) {
	buf := b.Bytes()
	copy(dst, buf[:])
}

// process absorbs data (AD or message) into the running state. For
// message processing, ct receives the keystream-combined output.
func (a *AEAD) process(y block, delta uint64, data []byte, ct []byte, lastChunk bool) (block, uint64) {
	if len(data) == 0 {
		// Empty input: one masked blank block with tripled mask.
		delta = triple(delta)
		if lastChunk {
			delta = triple(delta)
		}
		x := xorMask(g(y), delta)
		x.Hi ^= 0x8000000000000000 // 10* padding of the empty block
		return a.enc(x), delta
	}
	off := 0
	for off < len(data) {
		chunk := data[off:]
		if len(chunk) > 16 {
			chunk = chunk[:16]
		}
		m, full := loadBlock(chunk)
		last := off+16 >= len(data)
		if last {
			if full {
				delta = double(delta)
			} else {
				delta = triple(delta)
			}
			if lastChunk {
				delta = triple(delta)
			}
		} else {
			delta = double(delta)
		}
		if ct != nil {
			c := y.Xor(m)
			storeBlock(ct[off:min(off+16, len(ct))], c)
		}
		x := xorMask(g(y).Xor(m), delta)
		y = a.enc(x)
		off += 16
	}
	return y, delta
}

// Seal encrypts and authenticates plaintext with associated data,
// appending the ciphertext and 16-byte tag to dst.
func (a *AEAD) Seal(dst []byte, nonce [NonceSize]byte, plaintext, ad []byte) []byte {
	y := a.enc(bitutil.Word128FromBytes(nonce)) // Y₀ = E_K(N)
	delta := y.Hi                               // L = ⌈Y₀⌉₆₄

	y, delta = a.process(y, delta, ad, nil, len(plaintext) == 0)

	out := make([]byte, len(plaintext)+TagSize)
	if len(plaintext) > 0 {
		y, _ = a.process(y, delta, plaintext, out[:len(plaintext)], true)
	}
	tag := y.Bytes()
	copy(out[len(plaintext):], tag[:])
	return append(dst, out...)
}

// Open authenticates and decrypts. It returns ErrAuth (and no
// plaintext) on any mismatch.
func (a *AEAD) Open(dst []byte, nonce [NonceSize]byte, ciphertext, ad []byte) ([]byte, error) {
	if len(ciphertext) < TagSize {
		return nil, ErrAuth
	}
	body := ciphertext[:len(ciphertext)-TagSize]
	wantTag := ciphertext[len(ciphertext)-TagSize:]

	y := a.enc(bitutil.Word128FromBytes(nonce))
	delta := y.Hi
	y, delta = a.process(y, delta, ad, nil, len(body) == 0)

	pt := make([]byte, len(body))
	if len(body) > 0 {
		off := 0
		for off < len(body) {
			chunk := body[off:]
			if len(chunk) > 16 {
				chunk = chunk[:16]
			}
			// Recover the plaintext block: M = C ⊕ Y (truncated), with
			// 10* padding re-applied for the feedback path.
			var cbuf [16]byte
			n := copy(cbuf[:], chunk)
			c := bitutil.Word128FromBytes(cbuf)
			m := y.Xor(c)
			// Zero the bytes beyond the message and re-pad.
			mb := m.Bytes()
			for i := n; i < 16; i++ {
				mb[i] = 0
			}
			if n < 16 {
				mb[n] = 0x80
			}
			m = bitutil.Word128FromBytes(mb)
			storeBlock(pt[off:min(off+16, len(pt))], m)

			last := off+16 >= len(body)
			full := n == 16
			if last {
				if full {
					delta = double(delta)
				} else {
					delta = triple(delta)
				}
				delta = triple(delta)
			} else {
				delta = double(delta)
			}
			x := xorMask(g(y).Xor(m), delta)
			y = a.enc(x)
			off += 16
		}
	}
	tag := y.Bytes()
	// The tag check must branch on keyed data — that is its job. The
	// comparison itself is constant-time; only accept/reject escapes.
	//grinchvet:ignore secret-branch constant-time compare, only the verdict branches
	if subtle.ConstantTimeCompare(tag[:], wantTag) != 1 {
		return nil, ErrAuth
	}
	return append(dst, pt...), nil
}

// Overhead returns the tag size (crypto/cipher.AEAD-style accounting).
func (a *AEAD) Overhead() int { return TagSize }

// SBoxInputs exposes the per-round S-box input states of the mode's
// first block-cipher call, Y₀ = E_K(N) — the memory-access stream a
// co-resident attacker observes while Seal processes an
// attacker-chosen nonce. It implements oracle.Tracer128, which is how
// the GRINCH extension attacks the AEAD: chosen nonces are chosen
// block-cipher plaintexts (see examples/aead_attack).
func (a *AEAD) SBoxInputs(nonce bitutil.Word128) []bitutil.Word128 {
	return a.cipher.SBoxInputs(nonce)
}

// SBoxInputsN is the truncated variant of SBoxInputs (the trace oracle's
// fast path).
func (a *AEAD) SBoxInputsN(nonce bitutil.Word128, n int) []bitutil.Word128 {
	return a.cipher.SBoxInputsN(nonce, n)
}
