package core

import (
	"errors"
	"fmt"
	"math"

	"grinch/internal/bitutil"
	"grinch/internal/gift"
	"grinch/internal/obs"
	"grinch/internal/obs/metrics"
	"grinch/internal/probe"
	"grinch/internal/rng"
)

// logRatio returns log(a)/log(b) for a, b in (0,1).
func logRatio(a, b float64) float64 {
	return math.Log(a) / math.Log(b)
}

// Config tunes the attack.
type Config struct {
	// MaxObservationsPerTarget caps the encryptions spent on one
	// (segment, hypothesis) elimination before giving up. Default 1<<20
	// — high enough that TotalBudget, not this cap, normally decides
	// when a saturated channel is abandoned (an 8-word line needs ~33k
	// observations per segment at the cleanest probing round).
	MaxObservationsPerTarget uint64
	// MinObservations is the floor before convergence is accepted;
	// guards against an early accidental single candidate under
	// non-strict thresholds. Default 4.
	MinObservations uint64
	// Threshold is the appearance ratio a line needs to stay candidate
	// (1 = strict intersection, the paper's noise-free setting).
	// Default 1.
	Threshold float64
	// TotalBudget aborts the attack once the channel has performed this
	// many encryptions (0 = unlimited). The paper drops experiments
	// past 1M encryptions as impractical.
	TotalBudget uint64
	// Seed drives plaintext randomization.
	Seed uint64
	// Progress, when set, receives one event per finished segment
	// elimination (CLI verbose output).
	Progress ProgressFunc
	// Tracer, when set, receives the attack's internal trajectory as
	// typed events (internal/obs): one probe_observation plus one
	// candidate_update per encryption and one segment_recovered per
	// converged elimination. Nil (the default) disables tracing; the
	// hot path then pays a single nil check per observation.
	Tracer obs.Tracer
	// Metrics, when set, receives quantitative rollups (internal/obs/
	// metrics): per-observation and per-encryption counters, segment
	// outcome counters, and candidate-set shrinkage histograms, labeled
	// by cipher. Nil (the default) disables metering at the same cost
	// model as the nil tracer — one nil-check branch per emission.
	Metrics *metrics.Registry
	// Retry bounds the handling of transient channel failures (errors
	// exposing a Transient() bool method, e.g. faults.TransientError,
	// surfaced through probe.FallibleChannel). The zero policy disables
	// retries: the first channel error aborts the target.
	Retry RetryPolicy
	// Quarantine discards degenerate observations — an empty or
	// all-lines set under a fully-examined probe mask — before they
	// reach the eliminator. An empty set (a dropped probe window) would
	// otherwise eliminate every candidate under strict intersection;
	// an all-lines set carries no index information but still inflates
	// every line's presence ratio. Quarantined observations consume
	// budget (the victim encrypted) but not elimination statistics.
	Quarantine bool
	// MaxRestarts is how many times a direct (hypothesis-free) target
	// elimination may restart after exhausting its candidate set under
	// noise. Each restart discards the poisoned statistics and relaxes
	// the survival threshold by RestartRelax (tolerating more false
	// absences). Restarts never apply to hypothesis-testing
	// eliminations, where exhaustion is the signal of a wrong parent
	// hypothesis. 0 disables restarts.
	MaxRestarts int
	// RestartRelax is the multiplicative threshold relaxation per
	// restart (default 0.9, floored at 0.5). A relaxed threshold below
	// 1 also raises the observation floor to relaxedMinObservations so
	// ratio decisions have statistical backing.
	RestartRelax float64
	// Batch selects the batched attack pipeline (BatchAuto, the
	// default, engages it whenever the channel implements
	// probe.BatchChannel; BatchOff forces the scalar reference path).
	// The two paths produce byte-identical observations, traces and
	// metrics — batching is purely a throughput optimization.
	Batch BatchMode
	// SimDeadlinePS aborts the attack once its simulated clock — the
	// accrued retry backoff plus the channel's own virtual time when
	// the channel exposes SimPS() uint64 — reaches this many
	// picoseconds. 0 disables the deadline. Like TotalBudget this is a
	// deterministic bound: it never reads the wall clock.
	SimDeadlinePS uint64
}

// RetryPolicy bounds transient-channel-failure retries. Backoff is
// charged to the attacker's simulated clock only — deterministic, no
// sleeping — so retried runs stay byte-reproducible.
type RetryPolicy struct {
	// MaxAttempts is the retry cap per observation; 0 disables
	// retrying (the first failure aborts the target).
	MaxAttempts int
	// BackoffPS is the simulated backoff before retry n:
	// BackoffPS << min(n-1, 10) picoseconds (exponential, capped at
	// 1024× so a long retry chain cannot overflow the virtual clock).
	BackoffPS uint64
}

// backoff returns the simulated wait charged before the attempt-th
// retry (1-based).
func (p RetryPolicy) backoff(attempt int) uint64 {
	if p.BackoffPS == 0 {
		return 0
	}
	shift := attempt - 1
	if shift > 10 {
		shift = 10
	}
	return p.BackoffPS << shift
}

// isTransient reports whether err marks a retryable channel failure.
// The check is duck-typed (any error exposing Transient() bool) so the
// attack core does not depend on the fault injector package.
func isTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// relaxedMinObservations is the observation floor enforced once a
// restart relaxes the threshold below 1: ratio-based exhaustion and
// convergence decisions are meaningless without a statistical sample
// (cmd/grinch applies the same floor for -threshold < 1).
const relaxedMinObservations = 48

// restartRelax returns the configured per-restart threshold
// relaxation factor.
func (c Config) restartRelax() float64 {
	if c.RestartRelax == 0 {
		return 0.9
	}
	return c.RestartRelax
}

// relaxThreshold applies one restart's relaxation, floored at 0.5 —
// below that a line present in half the observations would survive,
// and the elimination no longer distinguishes signal from coin flips.
func relaxThreshold(t, relax float64) float64 {
	t *= relax
	if t < 0.5 {
		t = 0.5
	}
	return t
}

// degenerate reports whether a fully-masked observation carries no
// usable elimination information: empty (a dropped probe window —
// destructive under strict intersection) or all-lines (uninformative,
// inflates every presence ratio).
func degenerate(set, mask probe.LineSet) bool {
	return set == 0 || set == mask
}

// confidence scores a converged elimination by the separation between
// the survivor's presence ratio and the strongest eliminated
// competitor's: 1 means the survivor appeared in every observation
// while every other line vanished; near 0 means the runner-up barely
// lost.
func confidence(elim *Eliminator, line, lines int) float64 {
	var next float64
	for l := 0; l < lines; l++ {
		if l == line {
			continue
		}
		if p := elim.PresenceRatio(l); p > next {
			next = p
		}
	}
	c := elim.PresenceRatio(line) - next
	if c < 0 {
		c = 0
	}
	return c
}

// ProgressFunc observes attack progress: one call per segment whose
// elimination finished, successful or not.
type ProgressFunc func(cipher string, round, segment int, converged bool, line int, observations uint64)

func (c Config) withDefaults() Config {
	if c.MaxObservationsPerTarget == 0 {
		c.MaxObservationsPerTarget = 1 << 20
	}
	if c.MinObservations == 0 {
		c.MinObservations = 4
	}
	if c.Threshold == 0 {
		c.Threshold = 1
	}
	return c
}

// ErrBudgetExceeded aborts an attack that passed Config.TotalBudget.
var ErrBudgetExceeded = errors.New("core: encryption budget exceeded")

// ErrNoConvergence marks a target whose candidate set never reached a
// single line (saturated observation channel).
var ErrNoConvergence = errors.New("core: candidate elimination did not converge")

// ErrSimDeadline aborts an attack whose simulated clock (channel
// virtual time plus accrued retry backoff) passed Config.SimDeadlinePS.
var ErrSimDeadline = errors.New("core: simulated deadline exceeded")

// Attacker drives the GRINCH attack over an observation channel.
type Attacker struct {
	ch        probe.Channel
	cfg       Config
	rng       *rng.Source
	lineWords int
	// batchCh is the channel's batch entry point, non-nil only when
	// Config.Batch allows it and the channel proved batch support at
	// construction; eliminations then run the batched pipeline.
	batchCh probe.BatchChannel
	// meter holds the pre-resolved metrics instruments (zero when
	// Config.Metrics is nil).
	meter attackMeter
	// backoffPS is the simulated time charged by transient-failure
	// retries (RetryPolicy.BackoffPS accrual).
	backoffPS uint64
	// lastRound / lastStatuses record the most recent AttackRound pass's
	// per-segment outcomes, feeding RecoverKeyGraceful's PartialResult.
	lastRound    int
	lastStatuses []SegmentStatus
}

// NewAttacker builds an attacker. The channel's line count must divide
// the 16-entry table; a single-line table (16 entries per line) carries
// no index information and is rejected — that is exactly the paper's
// first countermeasure.
func NewAttacker(ch probe.Channel, cfg Config) (*Attacker, error) {
	lines := ch.Lines()
	if lines < 2 || 16%lines != 0 {
		return nil, fmt.Errorf("core: channel exposes %d table lines; the attack needs 2..16 dividing 16", lines)
	}
	cfg = cfg.withDefaults()
	a := &Attacker{
		ch:        ch,
		cfg:       cfg,
		rng:       rng.New(cfg.Seed),
		lineWords: 16 / lines,
		meter:     newAttackMeter(cfg.Metrics, "GIFT-64"),
	}
	if cfg.Batch == BatchAuto {
		a.batchCh, _ = supportsBatch(ch)
	}
	return a, nil
}

// LineWords returns how many table entries share a cache line on this
// channel.
func (a *Attacker) LineWords() int { return a.lineWords }

// Encryptions returns the channel's total encryption count.
func (a *Attacker) Encryptions() uint64 { return a.ch.Encryptions() }

// overBudget reports whether the total budget is exhausted.
func (a *Attacker) overBudget() bool {
	return a.cfg.TotalBudget > 0 && a.ch.Encryptions() >= a.cfg.TotalBudget
}

// SimPS returns the attack's simulated clock in picoseconds: the
// accrued retry backoff plus the channel's own virtual time when the
// channel exposes SimPS() uint64 (platform channels do).
func (a *Attacker) SimPS() uint64 {
	ps := a.backoffPS
	if s, ok := a.ch.(interface{ SimPS() uint64 }); ok {
		ps += s.SimPS()
	}
	return ps
}

// overDeadline reports whether the simulated deadline has passed.
func (a *Attacker) overDeadline() bool {
	return a.cfg.SimDeadlinePS > 0 && a.SimPS() >= a.cfg.SimDeadlinePS
}

// collectRetry performs one observation, retrying transient channel
// failures under the configured RetryPolicy. It returns the observed
// set, the mask of lines actually examined, the number of recovered
// transient failures, and the terminal error once retries are
// exhausted, the failure is not transient, or the backoff pushed the
// simulated clock past the deadline.
func (a *Attacker) collectRetry(pt uint64, spec TargetSpec) (set, mask probe.LineSet, retries uint64, err error) {
	full := probe.FullSet(a.ch.Lines())
	if masked, ok := a.ch.(probe.MaskedChannel); ok {
		s, m := masked.CollectMasked(pt, spec.Round)
		return s, m, 0, nil
	}
	fc, ok := a.ch.(probe.FallibleChannel)
	if !ok {
		return a.ch.Collect(pt, spec.Round), full, 0, nil
	}
	for attempt := 0; ; attempt++ {
		s, cerr := fc.CollectErr(pt, spec.Round)
		if cerr == nil {
			return s, full, retries, nil
		}
		if !isTransient(cerr) || attempt >= a.cfg.Retry.MaxAttempts {
			return 0, full, retries, cerr
		}
		retries++
		wait := a.cfg.Retry.backoff(attempt + 1)
		a.backoffPS += wait
		if a.cfg.Tracer != nil {
			a.cfg.Tracer.Emit(obs.Event{
				Kind:    obs.KindRetry,
				Enc:     a.ch.Encryptions(),
				Cipher:  "GIFT-64",
				Round:   spec.Round,
				Segment: spec.Segment,
				Attempt: attempt + 1,
				SimPS:   wait,
			})
		}
		if a.overDeadline() {
			return 0, full, retries, ErrSimDeadline
		}
	}
}

// progress emits a ProgressFunc event if one is configured.
func (a *Attacker) progress(cipher string, round, segment int, converged bool, line int, obs uint64) {
	if a.cfg.Progress != nil {
		a.cfg.Progress(cipher, round, segment, converged, line, obs)
	}
}

// traceObservation emits the per-encryption pair of events — the raw
// probe observation and the candidate state it produced. Only called
// with a non-nil tracer, so the Candidates recomputation is free on the
// untraced path.
func traceObservation(tr obs.Tracer, enc uint64, cipher string, round, segment int, set probe.LineSet, elim *Eliminator) {
	tr.Emit(obs.Event{
		Kind:    obs.KindProbeObservation,
		Enc:     enc,
		Cipher:  cipher,
		Round:   round,
		Segment: segment,
		Lines:   uint64(set),
	})
	cands := elim.Candidates()
	tr.Emit(obs.Event{
		Kind:         obs.KindCandidateUpdate,
		Enc:          enc,
		Cipher:       cipher,
		Round:        round,
		Segment:      segment,
		Lines:        uint64(cands),
		Survivors:    cands.Count(),
		EntropyBits:  obs.EntropyBits(cands.Count()),
		Observations: elim.Observations(),
	})
}

// traceRecovered emits the segment_recovered terminal event for a
// converged elimination.
func traceRecovered(tr obs.Tracer, enc uint64, cipher string, round, segment, line int, observations uint64) {
	tr.Emit(obs.Event{
		Kind:         obs.KindSegmentRecovered,
		Enc:          enc,
		Cipher:       cipher,
		Round:        round,
		Segment:      segment,
		Line:         line,
		Observations: observations,
	})
}

// TargetOutcome is the result of attacking one segment under one
// crafting hypothesis.
type TargetOutcome struct {
	Spec TargetSpec
	// Line is the converged table line (-1 if not converged).
	Line int
	// Pairs lists the candidate (v | u<<1) key-bit pairs consistent
	// with Line (1, 2 or 4 entries depending on line width).
	Pairs []uint8
	// Observations is the number of encryptions this elimination used.
	Observations uint64
	Converged    bool
	// Exhausted means every candidate was eliminated — the signature of
	// a wrong crafting hypothesis.
	Exhausted bool
	// Infeasible means the elimination converged on a line the pinned
	// target cannot produce: a noise line outlasted every other line by
	// chance, which also indicates a wrong hypothesis.
	Infeasible bool
	// Restarts is how many threshold-relaxing restarts the elimination
	// consumed (Config.MaxRestarts; direct targets only).
	Restarts int
	// Retries counts transient channel failures recovered under the
	// retry policy.
	Retries uint64
	// Quarantined counts degenerate observations discarded before the
	// eliminator (Config.Quarantine).
	Quarantined uint64
	// Confidence scores a converged elimination in [0,1]: the
	// survivor's presence-ratio separation from the strongest
	// eliminated competitor (0 when not converged).
	Confidence float64
	// ChannelErr is the terminal channel failure that aborted the
	// elimination: retries exhausted, a non-transient error, or
	// ErrSimDeadline. Nil otherwise.
	ChannelErr error
}

// AttackTarget runs paper Steps 1-4 for one target: craft plaintexts,
// collect probes, eliminate candidates, and reverse-engineer the key-bit
// candidates from the surviving line. rks supplies the round keys used
// for crafting (empty for Round == 1); hypothesized bits may be wrong,
// in which case the elimination exhausts (or converges infeasibly) and
// the outcome reports it.
func (a *Attacker) AttackTarget(spec TargetSpec, rks []gift.RoundKey64) TargetOutcome {
	return a.attackTarget(spec, rks, false)
}

// attackTarget optionally confirms a convergence by persistence (see
// eliminateTarget) and, for direct (hypothesis-free) targets, restarts
// an exhausted elimination up to Config.MaxRestarts times with a
// relaxed survival threshold: under bursty noise a false absence on
// the true line poisons a strict intersection permanently, and the
// only recovery is to discard the statistics and tolerate more
// absences. Hypothesis-testing eliminations never restart — there,
// exhaustion is the signal that the parent hypothesis is wrong.
func (a *Attacker) attackTarget(spec TargetSpec, rks []gift.RoundKey64, confirm bool) TargetOutcome {
	threshold := a.cfg.Threshold
	minObs := a.cfg.MinObservations
	out := a.eliminateTarget(spec, rks, confirm, threshold, minObs)
	for out.Exhausted && !confirm && out.ChannelErr == nil &&
		out.Restarts < a.cfg.MaxRestarts && !a.overBudget() && !a.overDeadline() {
		threshold = relaxThreshold(threshold, a.cfg.restartRelax())
		if threshold < 1 && minObs < relaxedMinObservations {
			minObs = relaxedMinObservations
		}
		restarts := out.Restarts + 1
		a.meter.restarts.Inc()
		if a.cfg.Tracer != nil {
			a.cfg.Tracer.Emit(obs.Event{
				Kind:      obs.KindTargetRestarted,
				Enc:       a.ch.Encryptions(),
				Cipher:    "GIFT-64",
				Round:     spec.Round,
				Segment:   spec.Segment,
				Attempt:   restarts,
				Threshold: threshold,
			})
		}
		prev := out
		out = a.eliminateTarget(spec, rks, confirm, threshold, minObs)
		out.Restarts = restarts
		out.Observations += prev.Observations
		out.Retries += prev.Retries
		out.Quarantined += prev.Quarantined
	}
	return out
}

// eliminateTarget is one elimination pass: craft plaintexts, collect
// probes (with retries), fold observations in, and stop on
// convergence, exhaustion, infeasibility, budget, deadline, or channel
// failure. When confirm is set, a convergence must additionally
// persist as the sole candidate for an adaptively-chosen number of
// extra observations before it is believed — a noise line can survive
// every observation by chance and fake a convergence under a wrong
// crafting hypothesis.
func (a *Attacker) eliminateTarget(spec TargetSpec, rks []gift.RoundKey64, confirm bool, threshold float64, minObs uint64) TargetOutcome {
	var elim Eliminator
	elim.Reset(a.ch.Lines(), threshold)
	feasible := spec.FeasibleLines(a.lineWords)
	full := probe.FullSet(a.ch.Lines())
	startEnc := a.ch.Encryptions()
	out := TargetOutcome{Spec: spec, Line: -1}
	var confirmLeft uint64
	confirming := false

	var bs *batchState
	if a.batchCh != nil {
		bs = batchStatePool.Get().(*batchState)
		bs.reset()
		defer func() {
			bs.settle(a, &spec)
			batchStatePool.Put(bs)
		}()
	}

	// encUpper tracks an upper bound on the channel's encryption counter
	// without the per-observation interface call behind overBudget():
	// each completed iteration consumed exactly one committed encryption
	// plus at most `retries` retried ones (channels that fail before
	// encrypting make this an overestimate, never an underestimate). The
	// authoritative counter is only consulted once the bound reaches the
	// budget, so the stopping point is identical to checking it always.
	encUpper := startEnc
	budget := a.cfg.TotalBudget

	// tries bounds loop iterations rather than eliminator observations:
	// quarantined observations consume budget (the victim encrypted)
	// without advancing the eliminator, and must not loop forever.
	for tries := uint64(0); tries < a.cfg.MaxObservationsPerTarget &&
		(budget == 0 || encUpper < budget || !a.overBudget()); tries++ {
		if a.overDeadline() {
			out.ChannelErr = ErrSimDeadline
			break
		}
		var set, mask probe.LineSet
		var retries uint64
		var err error
		if bs != nil {
			set, mask, retries, err = a.batchNext(bs, &spec, rks)
		} else {
			pt := spec.CraftPlaintext(a.rng, rks)
			set, mask, retries, err = a.collectRetry(pt, spec)
		}
		out.Retries += retries
		encUpper += 1 + retries
		if err != nil {
			out.ChannelErr = err
			break
		}
		if a.cfg.Quarantine && mask == full && degenerate(set, mask) {
			out.Quarantined++
			continue
		}
		elim.ObserveMasked(set, mask)
		if a.cfg.Tracer != nil {
			traceObservation(a.cfg.Tracer, a.ch.Encryptions(), "GIFT-64", spec.Round, spec.Segment, set, &elim)
		}

		// Under strict intersection an empty candidate set is
		// definitive at any point; with a tolerant threshold it is only
		// meaningful once enough observations have accumulated.
		if elim.Exhausted() && (threshold == 1 || elim.Observations() >= minObs) {
			out.Exhausted = true
			break
		}
		line, ok := elim.Converged(minObs)
		if !ok {
			confirming = false
			continue
		}
		if !feasible.Contains(line) {
			out.Infeasible = true
			break
		}
		if !confirm {
			out.Line = line
			out.Converged = true
			break
		}
		if !confirming {
			confirming = true
			confirmLeft = a.confirmSpan(&elim, line)
		}
		if confirmLeft == 0 {
			out.Line = line
			out.Converged = true
			break
		}
		confirmLeft--
	}
	if out.Converged {
		out.Pairs = spec.PairsForLine(out.Line, a.lineWords)
		out.Confidence = confidence(&elim, out.Line, a.ch.Lines())
		if a.cfg.Tracer != nil {
			traceRecovered(a.cfg.Tracer, a.ch.Encryptions(), "GIFT-64", spec.Round, spec.Segment, out.Line, elim.Observations())
		}
	}
	out.Observations = elim.Observations()
	// The observation counter is flushed per target like the retry and
	// quarantine counters: one atomic add instead of one per probe.
	a.meter.observations.Add(elim.Observations())
	a.meter.retries.Add(out.Retries)
	a.meter.quarantined.Add(out.Quarantined)
	a.meter.segmentDone(elim.Observations(), uint64(elim.Candidates().Count()),
		a.ch.Encryptions()-startEnc, out.Converged, out.Exhausted, out.Infeasible)
	return out
}

// worstPinShare is the largest fraction of crafted inputs for which a
// wrongly-hypothesized parent still yields the pinned output bit: over
// all output bits j and input differences e ≠ 0, the share of x in
// {SBox[x] bit j = 1} with SBox[x⊕e] bit j = 1. It bounds how much
// residual signal a wrong hypothesis can leave on the expected line, and
// therefore how slowly a fake survivor can die.
var worstPinShare = computeWorstPinShare()

func computeWorstPinShare() float64 {
	best := 0
	for j := 0; j < 4; j++ {
		list := sboxBitList(j)
		for e := uint8(1); e < 16; e++ {
			hits := 0
			for _, x := range list {
				if gift.SBox[x^e]>>j&1 == 1 {
					hits++
				}
			}
			if hits > best && hits < len(list) {
				best = hits
			}
		}
	}
	return float64(best) / 8
}

// confirmSpan picks how many extra all-present observations a surviving
// line must endure before a hypothesis is accepted. Under a wrong
// hypothesis the expected line still receives signal on a worstPinShare
// fraction of encryptions and noise cover otherwise, so it dies at rate
// ≥ (1−worstPinShare)·(1−p̂) per observation, where p̂ is the noise
// presence ratio estimated from the strongest eliminated competitor.
// Demanding survival over K = log(fp)/log(1−rate) extra observations
// bounds the hypothesis false-positive rate by fp.
func (a *Attacker) confirmSpan(elim *Eliminator, line int) uint64 {
	var pMax float64
	for l := 0; l < a.ch.Lines(); l++ {
		if l == line {
			continue
		}
		if p := elim.PresenceRatio(l); p > pMax {
			pMax = p
		}
	}
	if pMax > 0.999 {
		pMax = 0.999
	}
	deathRate := (1 - worstPinShare) * (1 - pMax)
	const fpRate = 1e-4
	k := uint64(logRatio(fpRate, 1-deathRate)) + 1
	if limit := a.cfg.MaxObservationsPerTarget; k > limit {
		k = limit
	}
	return k
}

// RoundOutcome is the result of attacking all 16 segments of one round
// key.
type RoundOutcome struct {
	Round int
	// Cands[g] lists candidate (v | u<<1) pairs for segment g of round
	// key Round. Single-entry lists mean the segment is resolved.
	Cands [16][]uint8
	// ConfirmedPrev holds the resolved pair per segment of round key
	// Round-1, when this pass disambiguated a pending previous round
	// (entries are 0..3; only meaningful when PrevResolved is true).
	ConfirmedPrev [16]uint8
	PrevResolved  bool
	// Encryptions is the channel usage of this pass alone.
	Encryptions uint64
}

// Unique reports whether every segment resolved to a single key-bit
// pair, and returns the round key if so.
func (r RoundOutcome) Unique() (gift.RoundKey64, bool) {
	var pairs [16]uint8
	for g, c := range r.Cands {
		if len(c) != 1 {
			return gift.RoundKey64{}, false
		}
		pairs[g] = c[0]
	}
	return roundKeyFromPairs(r.Round, pairs), true
}

// roundKeyFromPairs assembles a round key from per-segment (v|u<<1)
// pairs.
func roundKeyFromPairs(round int, pairs [16]uint8) gift.RoundKey64 {
	var rk gift.RoundKey64
	for g, p := range pairs {
		rk.V |= uint16(p&1) << g
		rk.U |= uint16(p>>1&1) << g
	}
	rk.Const = gift.RoundConstants[round-1]
	return rk
}

// observableShift returns how many low index bits the line granularity
// hides (0 for 1-word lines).
func (a *Attacker) observableShift() int {
	s := 0
	for w := a.lineWords; w > 1; w >>= 1 {
		s++
	}
	return s
}

// AttackRound attacks round key t across all 16 segments (paper Step 5
// iterates this over rounds). resolved must hold the fully-recovered
// round keys 1..t-2 (or 1..t-1 when prevCands is nil); prevCands, when
// non-nil, holds the still-ambiguous candidate pairs for round key t-1
// left over from the previous pass under a wide cache line. The pass
// then both recovers round-t candidates and disambiguates round t-1:
// wrong parent hypotheses destroy the crafted pinning, so their
// eliminations exhaust instead of converging (paper §III-D, "assume all
// possibilities").
func (a *Attacker) AttackRound(t int, resolved []gift.RoundKey64, prevCands *[16][]uint8) (RoundOutcome, error) {
	if t >= 2 {
		need := t - 1
		if prevCands != nil {
			need = t - 2
		}
		if len(resolved) < need {
			return RoundOutcome{}, fmt.Errorf("core: attacking round %d needs %d resolved round keys, have %d", t, need, len(resolved))
		}
	}

	out := RoundOutcome{Round: t}
	start := a.ch.Encryptions()
	a.lastRound = t
	a.lastStatuses = a.lastStatuses[:0]

	// confirmed[seg] holds the proven pair for segment seg of round key
	// t-1; -1 = not yet proven.
	var confirmed [16]int8
	for i := range confirmed {
		confirmed[i] = -1
	}

	obsShift := a.observableShift()

	for g := 0; g < gift.Segments64; g++ {
		spec := NewTarget64(t, g)

		if prevCands == nil {
			// Crafting needs no hypotheses: earlier rounds are resolved
			// (or this is round 1 and sources are plaintext segments).
			o := a.AttackTarget(spec, resolved[:max(t-1, 0)])
			a.progress("GIFT-64", t, g, o.Converged, o.Line, o.Observations)
			a.lastStatuses = append(a.lastStatuses, statusFor(t, g, o.Converged, o.Line, o.Observations, o.Restarts, o.Retries, o.Confidence))
			if !o.Converged {
				return out, a.targetErr(spec, o)
			}
			out.Cands[g] = o.Pairs
			continue
		}

		// Enumerate hypotheses for the parents whose wrongness is
		// observable: a wrong pair on the parent feeding index bit j
		// makes that bit vary, which changes the observed line only
		// when j is above the intra-line bits.
		parents := spec.ParentSegments()
		var enumPos []int
		for j := obsShift; j < 4; j++ {
			enumPos = append(enumPos, j)
		}

		options := make([][]uint8, len(enumPos))
		for i, j := range enumPos {
			seg := parents[j]
			if confirmed[seg] >= 0 {
				options[i] = []uint8{uint8(confirmed[seg])}
			} else {
				options[i] = (*prevCands)[seg]
			}
		}

		won := false
		var last TargetOutcome
		for _, combo := range cartesian(options) {
			pairs := a.baselinePairs(prevCands, &confirmed)
			for i, j := range enumPos {
				pairs[parents[j]] = combo[i]
			}
			rkPrev := roundKeyFromPairs(t-1, pairs)
			rks := append(append([]gift.RoundKey64{}, resolved[:t-2]...), rkPrev)
			o := a.attackTarget(spec, rks, true)
			last = o
			if !o.Converged {
				if o.ChannelErr != nil {
					a.lastStatuses = append(a.lastStatuses, statusFor(t, g, false, -1, o.Observations, o.Restarts, o.Retries, 0))
					return out, fmt.Errorf("core: round %d segment %d: %w", t, g, o.ChannelErr)
				}
				if a.overBudget() {
					a.lastStatuses = append(a.lastStatuses, statusFor(t, g, false, -1, o.Observations, o.Restarts, o.Retries, 0))
					return out, ErrBudgetExceeded
				}
				continue
			}
			// First (and only) converging combo: confirm the
			// enumerated parents and record round-t candidates.
			for i, j := range enumPos {
				confirmed[parents[j]] = int8(combo[i])
			}
			out.Cands[g] = o.Pairs
			a.progress("GIFT-64", t, g, true, o.Line, o.Observations)
			won = true
			break
		}
		a.lastStatuses = append(a.lastStatuses, statusFor(t, g, won, last.Line, last.Observations, last.Restarts, last.Retries, last.Confidence))
		if !won {
			a.progress("GIFT-64", t, g, false, -1, 0)
			return out, fmt.Errorf("core: round %d segment %d: no crafting hypothesis converged (%w)", t, g, ErrNoConvergence)
		}
	}

	if prevCands != nil {
		for seg, c := range confirmed {
			if c < 0 {
				// Every segment feeds index bit 3 of exactly one target,
				// and bit 3 is observable for any line width up to 8
				// words — so full coverage is structural.
				return out, fmt.Errorf("core: round %d left segment %d of round %d unresolved", t, seg, t-1)
			}
			out.ConfirmedPrev[seg] = uint8(confirmed[seg])
		}
		out.PrevResolved = true
	}
	out.Encryptions = a.ch.Encryptions() - start
	return out, nil
}

// baselinePairs picks an arbitrary candidate for every segment
// (confirmed values where available): segments whose hypotheses are
// unobservable for the current target only perturb already-random
// state, so any choice works.
func (a *Attacker) baselinePairs(prevCands *[16][]uint8, confirmed *[16]int8) [16]uint8 {
	var pairs [16]uint8
	for seg := 0; seg < 16; seg++ {
		if confirmed[seg] >= 0 {
			pairs[seg] = uint8(confirmed[seg])
		} else if len(prevCands[seg]) > 0 {
			pairs[seg] = prevCands[seg][0]
		}
	}
	return pairs
}

func (a *Attacker) targetErr(spec TargetSpec, o TargetOutcome) error {
	if o.ChannelErr != nil {
		return fmt.Errorf("core: round %d segment %d: %w", spec.Round, spec.Segment, o.ChannelErr)
	}
	if a.overBudget() {
		return ErrBudgetExceeded
	}
	return fmt.Errorf("core: round %d segment %d: %d observations, %w",
		spec.Round, spec.Segment, o.Observations, ErrNoConvergence)
}

// cartesian enumerates the cartesian product of the option lists.
func cartesian(options [][]uint8) [][]uint8 {
	combos := [][]uint8{nil}
	for _, opts := range options {
		var next [][]uint8
		for _, c := range combos {
			for _, o := range opts {
				nc := make([]uint8, len(c), len(c)+1)
				copy(nc, c)
				next = append(next, append(nc, o))
			}
		}
		combos = next
	}
	return combos
}

// KeyResult is a completed key recovery.
type KeyResult struct {
	// Key is the recovered 128-bit master key.
	Key bitutil.Word128
	// RoundKeys are the four recovered round keys (rounds 1..4), which
	// together contain every master-key bit exactly once.
	RoundKeys [4]gift.RoundKey64
	// Encryptions is the total victim encryptions consumed (the paper's
	// headline metric: < 400 under the best probing conditions).
	Encryptions uint64
	// RoundsAttacked is how many round passes ran (4 for 1-word lines,
	// 5 when wide lines forced a disambiguation pass).
	RoundsAttacked int
}

// RecoverKey runs the full GRINCH attack: it attacks rounds 1..4 (plus a
// fifth disambiguation pass when the cache line hides index bits) and
// reassembles the 128-bit master key from the four recovered round keys.
func (a *Attacker) RecoverKey() (KeyResult, error) {
	res, _, err := a.recoverKey()
	return res, err
}

// recoverKey is RecoverKey's body, additionally returning the round
// keys resolved before any failure (RecoverKeyGraceful's input).
func (a *Attacker) recoverKey() (KeyResult, []gift.RoundKey64, error) {
	var res KeyResult
	start := a.ch.Encryptions()

	var resolved []gift.RoundKey64
	var pending *[16][]uint8
	passes := 0
	t := 1
	for len(resolved) < 4 {
		if t > 8 {
			return res, resolved, fmt.Errorf("core: no resolution after %d round passes", passes)
		}
		passes++
		out, err := a.AttackRound(t, resolved, pending)
		if err != nil {
			return res, resolved, err
		}
		if pending != nil {
			resolved = append(resolved, roundKeyFromPairs(t-1, out.ConfirmedPrev))
			pending = nil
		}
		if len(resolved) >= 4 {
			break
		}
		if rk, ok := out.Unique(); ok {
			resolved = append(resolved, rk)
		} else {
			cands := out.Cands
			pending = &cands
		}
		t++
	}

	copy(res.RoundKeys[:], resolved[:4])
	res.Key = AssembleKey(res.RoundKeys)
	res.Encryptions = a.ch.Encryptions() - start
	res.RoundsAttacked = passes
	return res, resolved, nil
}

// RecoverKeyGraceful runs the full attack but degrades failures into a
// structured PartialResult instead of an error: every segment of the
// failing round pass reports its own status (converged line,
// observations, restarts, retries, confidence), segments never reached
// are padded as unattempted, and Reason classifies why the attack
// stopped. A nil PartialResult means full recovery and the KeyResult
// is complete.
func (a *Attacker) RecoverKeyGraceful() (KeyResult, *PartialResult) {
	start := a.ch.Encryptions()
	res, resolved, err := a.recoverKey()
	if err == nil {
		return res, nil
	}
	p := newPartialResult("GIFT-64", len(resolved), err, a.ch.Encryptions()-start)
	p.fillSegments(a.lastStatuses, a.lastRound, gift.Segments64)
	return res, p
}

// AssembleKey rebuilds the master key from the first four round keys:
// round t consumes limbs k_{2t-1} (U) and k_{2t-2} (V) of the original
// key state (see gift.ExpandKey64).
func AssembleKey(rks [4]gift.RoundKey64) bitutil.Word128 {
	var key bitutil.Word128
	for t, rk := range rks {
		key = key.SetWord16(uint(2*t), rk.V)
		key = key.SetWord16(uint(2*t+1), rk.U)
	}
	return key
}

// Verify checks a recovered key against one known plaintext/ciphertext
// pair.
func Verify(key bitutil.Word128, pt, ct uint64) bool {
	return gift.NewCipher64FromWord(key).EncryptBlock(pt) == ct
}
