// Package bitutil provides the small bit- and nibble-level helpers shared
// by the GIFT cipher implementation, the attack code and the simulators.
//
// GIFT state conventions used throughout this repository:
//
//   - A GIFT-64 state is a uint64 whose bit 0 is the cipher's b0 (least
//     significant bit of segment 0) and whose bit 63 is b63.
//   - A GIFT-128 state is a [2]uint64 pair (see Word128) with W[0]
//     carrying bits 0..63 and W[1] carrying bits 64..127.
//   - "Segment i" is the 4-bit nibble occupying bits 4i..4i+3.
package bitutil

import "math/bits"

// Bit returns bit i (0 = least significant) of x as 0 or 1.
func Bit(x uint64, i uint) uint64 {
	return (x >> i) & 1
}

// SetBit returns x with bit i forced to the low bit of v.
func SetBit(x uint64, i uint, v uint64) uint64 {
	return (x &^ (1 << i)) | ((v & 1) << i)
}

// FlipBit returns x with bit i inverted.
func FlipBit(x uint64, i uint) uint64 {
	return x ^ (1 << i)
}

// Nibble returns the 4-bit segment i (bits 4i..4i+3) of x.
func Nibble(x uint64, i uint) uint64 {
	return (x >> (4 * i)) & 0xf
}

// SetNibble returns x with segment i replaced by the low 4 bits of v.
func SetNibble(x uint64, i uint, v uint64) uint64 {
	shift := 4 * i
	return (x &^ (0xf << shift)) | ((v & 0xf) << shift)
}

// RotR16 rotates a 16-bit word right by n positions.
func RotR16(x uint16, n uint) uint16 {
	n %= 16
	if n == 0 {
		return x
	}
	return x>>n | x<<(16-n)
}

// RotL16 rotates a 16-bit word left by n positions.
func RotL16(x uint16, n uint) uint16 {
	return RotR16(x, 16-n%16)
}

// RotR32 rotates a 32-bit word right by n positions.
func RotR32(x uint32, n uint) uint32 {
	return bits.RotateLeft32(x, -int(n%32))
}

// Parity returns the XOR of all bits of x (0 or 1).
func Parity(x uint64) uint64 {
	return uint64(bits.OnesCount64(x) & 1)
}

// Word128 is a 128-bit little-endian word: W[0] holds bits 0..63 and W[1]
// holds bits 64..127. It is the state container for GIFT-128 and the key
// container for both GIFT variants.
type Word128 struct {
	Lo, Hi uint64
}

// Bit returns bit i (0..127) of w.
func (w Word128) Bit(i uint) uint64 {
	if i < 64 {
		return Bit(w.Lo, i)
	}
	return Bit(w.Hi, i-64)
}

// SetBit returns w with bit i forced to the low bit of v.
func (w Word128) SetBit(i uint, v uint64) Word128 {
	if i < 64 {
		w.Lo = SetBit(w.Lo, i, v)
	} else {
		w.Hi = SetBit(w.Hi, i-64, v)
	}
	return w
}

// Nibble returns 4-bit segment i (0..31) of w.
func (w Word128) Nibble(i uint) uint64 {
	if i < 16 {
		return Nibble(w.Lo, i)
	}
	return Nibble(w.Hi, i-16)
}

// SetNibble returns w with segment i replaced by the low 4 bits of v.
func (w Word128) SetNibble(i uint, v uint64) Word128 {
	if i < 16 {
		w.Lo = SetNibble(w.Lo, i, v)
	} else {
		w.Hi = SetNibble(w.Hi, i-16, v)
	}
	return w
}

// Xor returns w ^ o.
func (w Word128) Xor(o Word128) Word128 {
	return Word128{Lo: w.Lo ^ o.Lo, Hi: w.Hi ^ o.Hi}
}

// Word16 returns the i-th 16-bit limb of w (limb 0 = bits 0..15, limb 7 =
// bits 112..127). GIFT's key schedule is specified in these limbs.
func (w Word128) Word16(i uint) uint16 {
	if i < 4 {
		return uint16(w.Lo >> (16 * i))
	}
	return uint16(w.Hi >> (16 * (i - 4)))
}

// SetWord16 returns w with 16-bit limb i replaced by v.
func (w Word128) SetWord16(i uint, v uint16) Word128 {
	if i < 4 {
		shift := 16 * i
		w.Lo = w.Lo&^(0xffff<<shift) | uint64(v)<<shift
	} else {
		shift := 16 * (i - 4)
		w.Hi = w.Hi&^(0xffff<<shift) | uint64(v)<<shift
	}
	return w
}

// Bytes returns w as 16 bytes, most significant byte first (the byte order
// used by the GIFT reference implementation and its test vectors).
func (w Word128) Bytes() [16]byte {
	var out [16]byte
	for i := 0; i < 8; i++ {
		out[i] = byte(w.Hi >> (56 - 8*uint(i)))
		out[8+i] = byte(w.Lo >> (56 - 8*uint(i)))
	}
	return out
}

// Word128FromBytes builds a Word128 from 16 bytes, most significant first.
func Word128FromBytes(b [16]byte) Word128 {
	var w Word128
	for i := 0; i < 8; i++ {
		w.Hi = w.Hi<<8 | uint64(b[i])
		w.Lo = w.Lo<<8 | uint64(b[8+i])
	}
	return w
}

// PermuteBits64 applies a 64-entry bit permutation table to x: output bit
// perm[i] receives input bit i. The table must be a permutation of 0..63.
func PermuteBits64(x uint64, perm *[64]uint8) uint64 {
	var out uint64
	for i := uint(0); i < 64; i++ {
		out |= ((x >> i) & 1) << perm[i]
	}
	return out
}

// PermuteBits128 applies a 128-entry bit permutation table to w: output
// bit perm[i] receives input bit i. Unlike the branch-free 64-bit
// variant above, this routes each state bit through a branch — a real
// secret-dependent branch when w is cipher state, which the leakage
// pass reports (kept in the baseline as a known, simulator-only leak).
//
//grinch:secret w return
func PermuteBits128(w Word128, perm *[128]uint8) Word128 {
	var out Word128
	for i := uint(0); i < 128; i++ {
		if w.Bit(i) != 0 {
			out = out.SetBit(uint(perm[i]), 1)
		}
	}
	return out
}

// Transpose64 transposes a 64×64 bit matrix in place: after the call,
// bit j of word i equals bit i of the original word j. The routine is
// the classic recursive block swap (Hacker's Delight §7-3) — six passes
// of masked shift-XOR swaps, no branches on the data — and is its own
// inverse. It is the pivot between "one word per block" and "one word
// per bit plane" layouts used by the batched attack pipeline: 64 cipher
// states become 64 bit planes (and back), and 64 probe observations
// become per-line occupancy words whose popcounts are the eliminator's
// presence counts.
func Transpose64(a *[64]uint64) {
	// Six butterfly passes with the shift and mask fixed per pass: the
	// constant shifts compile to immediate-operand instructions and the
	// block loops to simple counted loops, roughly halving the cost of
	// the generic variable-shift formulation on the batch hot path.
	transposePass(a, 32, 0x00000000ffffffff)
	transposePass(a, 16, 0x0000ffff0000ffff)
	transposePass(a, 8, 0x00ff00ff00ff00ff)
	transposePass(a, 4, 0x0f0f0f0f0f0f0f0f)
	transposePass(a, 2, 0x3333333333333333)
	transposePass(a, 1, 0x5555555555555555)
}

// transposePass swaps the j-distance sub-blocks of the bit matrix; the
// compiler inlines each fixed-j call in Transpose64.
func transposePass(a *[64]uint64, j int, m uint64) {
	for base := 0; base < 64; base += 2 * j {
		for k := base; k < base+j; k++ {
			t := (a[k]>>uint(j) ^ a[k+j]) & m
			a[k] ^= t << uint(j)
			a[k+j] ^= t
		}
	}
}

// PermGroup is one rotation class of a compiled 64-bit permutation:
// every input bit selected by Mask moves by the same distance, so the
// whole class is applied with one masked rotate.
type PermGroup struct {
	Mask uint64
	Rot  uint8
}

// CompilePerm64 preprocesses a 64-entry permutation table into its
// rotation classes: input bits are grouped by displacement perm[i]-i
// (mod 64), giving one (mask, rotate) pair per distinct displacement.
// Applying the compiled form costs three word ops per class — for
// GIFT-64's permutation, 25 classes — instead of one masked shift-OR
// per bit, and like PermuteBits64 it is branch-free on the data.
func CompilePerm64(perm *[64]uint8) []PermGroup {
	var masks [64]uint64
	for i := uint(0); i < 64; i++ {
		masks[(uint(perm[i])-i)&63] |= 1 << i
	}
	var groups []PermGroup
	for d, m := range masks {
		if m != 0 {
			groups = append(groups, PermGroup{Mask: m, Rot: uint8(d)})
		}
	}
	return groups
}

// ApplyPerm64 applies a permutation compiled by CompilePerm64. The
// rotation never wraps a selected bit past its target: targets lie in
// 0..63 by construction, so the masked rotate lands every bit exactly
// where the table sends it.
func ApplyPerm64(x uint64, groups []PermGroup) uint64 {
	var out uint64
	for _, g := range groups {
		out |= bits.RotateLeft64(x&g.Mask, int(g.Rot))
	}
	return out
}

// InvertPerm64 returns the inverse of a 64-entry permutation table.
// It panics if perm is not a permutation of 0..63; permutation tables are
// compile-time constants, so a malformed table is a programming error.
func InvertPerm64(perm *[64]uint8) [64]uint8 {
	var inv [64]uint8
	var seen [64]bool
	for i, p := range perm {
		if p >= 64 || seen[p] {
			panic("bitutil: table is not a permutation of 0..63")
		}
		seen[p] = true
		inv[p] = uint8(i)
	}
	return inv
}

// InvertPerm128 returns the inverse of a 128-entry permutation table,
// panicking on malformed tables as InvertPerm64 does.
func InvertPerm128(perm *[128]uint8) [128]uint8 {
	var inv [128]uint8
	var seen [128]bool
	for i, p := range perm {
		if p >= 128 || seen[p] {
			panic("bitutil: table is not a permutation of 0..127")
		}
		seen[p] = true
		inv[p] = uint8(i)
	}
	return inv
}

// InvertSBox returns the inverse of a 16-entry substitution box.
// It panics if sbox is not a permutation of 0..15.
func InvertSBox(sbox *[16]uint8) [16]uint8 {
	var inv [16]uint8
	var seen [16]bool
	for i, v := range sbox {
		if v >= 16 || seen[v] {
			panic("bitutil: table is not a permutation of 0..15")
		}
		seen[v] = true
		inv[v] = uint8(i)
	}
	return inv
}
