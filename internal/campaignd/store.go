package campaignd

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"grinch/internal/campaign"
)

// The on-disk layout under the server's data directory:
//
//	<data>/<campaign-id>/campaign.json     — the SubmitRequest, replayable
//	<data>/<campaign-id>/shard-<n>.journal — one shard's result journal
//	<data>/<campaign-id>/<out>, <csv>      — merged output (paths from the submit)
//
// A shard journal is the distributed analogue of cmd/campaign's
// checkpoint journal: a header line pinning (campaign fingerprint,
// shard range), then one canonical campaign.Result JSON line per
// ingested job. Because results are pure functions of (spec, index),
// journal lines never need rewriting — re-ingestion after a lease
// re-issue is dropped as a duplicate, and a torn trailing line from a
// server kill is detected and ignored on reload exactly as in
// internal/campaign.
//
// Restart recovery: LoadState replays campaign.json + the shard
// journals of every campaign directory, so a coordinator restart
// resumes every campaign mid-shard with nothing lost but unreported
// in-flight work on the workers (which re-executes — deterministically
// — under fresh leases).

// shardJournalHeader pins a journal file to one (campaign, shard).
type shardJournalHeader struct {
	Campaign    string `json:"campaign"`
	Fingerprint string `json:"fingerprint"`
	Shard       int    `json:"shard"`
	Start       int    `json:"start"`
	End         int    `json:"end"`
}

// shardJournal appends canonical results for one shard to disk. A nil
// *shardJournal (memory-only server) is valid and appends nowhere.
type shardJournal struct {
	f    *os.File
	path string
}

func shardJournalPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d.journal", shard))
}

// openShardJournal opens (creating if absent) the journal for one
// shard and returns the results it already holds, keyed by job index.
func openShardJournal(dir, campaignID, fingerprint string, rng ShardRange) (*shardJournal, map[int]campaign.Result, error) {
	path := shardJournalPath(dir, rng.Shard)
	prior := make(map[int]campaign.Result)
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("campaignd: creating shard journal: %w", err)
		}
		j := &shardJournal{f: f, path: path}
		hdr := shardJournalHeader{Campaign: campaignID, Fingerprint: fingerprint,
			Shard: rng.Shard, Start: rng.Start, End: rng.End}
		if err := j.appendJSON(hdr); err != nil {
			f.Close()
			return nil, nil, err
		}
		return j, prior, nil
	case err != nil:
		return nil, nil, fmt.Errorf("campaignd: reading shard journal: %w", err)
	}

	lines := splitLines(data)
	if len(lines) == 0 {
		return nil, nil, fmt.Errorf("campaignd: shard journal %s is empty (no header)", path)
	}
	var hdr shardJournalHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		return nil, nil, fmt.Errorf("campaignd: shard journal %s has a corrupt header: %w", path, err)
	}
	if hdr.Fingerprint != fingerprint || hdr.Shard != rng.Shard || hdr.Start != rng.Start || hdr.End != rng.End {
		return nil, nil, fmt.Errorf("campaignd: shard journal %s belongs to a different campaign or shard (fingerprint %s shard %d [%d,%d), want %s shard %d [%d,%d))",
			path, hdr.Fingerprint, hdr.Shard, hdr.Start, hdr.End, fingerprint, rng.Shard, rng.Start, rng.End)
	}
	for _, line := range lines[1:] {
		var r campaign.Result
		if err := json.Unmarshal(line, &r); err != nil {
			// Torn trailing line from a hard kill: that job re-runs.
			continue
		}
		if rng.Contains(r.Job) {
			prior[r.Job] = r.Canonical()
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("campaignd: reopening shard journal: %w", err)
	}
	return &shardJournal{f: f, path: path}, prior, nil
}

// Append records one canonical result. Nil receivers (memory-only
// mode) accept and drop.
func (j *shardJournal) Append(r campaign.Result) error {
	if j == nil {
		return nil
	}
	return j.appendJSON(r)
}

func (j *shardJournal) appendJSON(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("campaignd: appending to shard journal: %w", err)
	}
	return nil
}

// Close closes the journal file. Nil-safe.
func (j *shardJournal) Close() error {
	if j == nil {
		return nil
	}
	return j.f.Close()
}

// splitLines splits on '\n', keeping a torn (newline-less) final line
// so it can fail to unmarshal — the same convention as
// internal/campaign's journal reader.
func splitLines(data []byte) [][]byte {
	var lines [][]byte
	start := 0
	for i, b := range data {
		if b == '\n' {
			lines = append(lines, data[start:i])
			start = i + 1
		}
	}
	if start < len(data) {
		lines = append(lines, data[start:])
	}
	return lines
}

// saveSubmit persists the campaign's submit request so a restarted
// server can rebuild the shard table (a pure function of the spec).
func saveSubmit(dir string, req SubmitRequest) error {
	b, err := json.MarshalIndent(req, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "campaign.json"), append(b, '\n'), 0o644)
}

// loadSubmit reads a persisted submit request back.
func loadSubmit(dir string) (SubmitRequest, error) {
	data, err := os.ReadFile(filepath.Join(dir, "campaign.json"))
	if err != nil {
		return SubmitRequest{}, err
	}
	var req SubmitRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return SubmitRequest{}, fmt.Errorf("campaignd: corrupt campaign.json in %s: %w", dir, err)
	}
	return req, nil
}

// listCampaignDirs returns the campaign subdirectories of the data
// directory in lexical order (IDs are zero-padded, so lexical order is
// submission order).
func listCampaignDirs(dataDir string) ([]string, error) {
	entries, err := os.ReadDir(dataDir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}
