#!/usr/bin/env bash
# Perf-regression guard: re-run the committed benchmark set on the
# current tree (`make bench-json` into a scratch file) and compare each
# benchmark's ns/op against BENCH_baseline.json. Any benchmark more
# than BENCH_TOLERANCE_PCT percent slower than its baseline fails the
# build; a benchmark that disappeared from the set fails too (regenerate
# the baseline with `make bench-json` and review the diff).
#
# The committed baseline records the reference machine's numbers, so
# the default 25% tolerance is only meaningful on comparable hardware.
# Hosted CI runners differ in absolute speed — there the workflow runs
# this guard with a wide tolerance, which still catches order-of-
# magnitude regressions like the batched attack path silently falling
# back to the scalar pipeline (~10x on BenchmarkTable1Campaign).
#
# The measurement is the per-benchmark MINIMUM over BENCH_GUARD_REPS
# runs (default 3): the minimum is the run least disturbed by scheduler
# noise, so the guard compares best-case to best-case instead of
# failing whenever a background spike lands inside one rep. Benchmarks
# whose baseline is under 1 ms/op run only a handful of iterations at
# the pinned -benchtime and are bimodal under scheduler noise, so they
# get a 100% floor instead of the strict tolerance. Multi-worker
# variants (workers=2 and up) get the same floor: they measure
# contention on shared cores, so background load inflates them
# superlinearly. The regressions this guard exists to catch (the
# batched attack pipeline silently degrading to the scalar path) live
# in the millisecond-scale serial campaign benchmarks — workers=1 is
# the canonical gate and stays under the strict tolerance.
#
# Usage: scripts/ci_bench_guard.sh [baseline.json]
#   BENCH_TOLERANCE_PCT  allowed slowdown in percent (default 25)
#   BENCH_GUARD_REPS     measurement repetitions, min taken (default 3)
#
# If the comparison fails, up to two extra reps are measured and the
# minimum re-taken before the verdict: a background load spike spanning
# the first reps clears, while a real regression fails every retry.
set -euo pipefail

cd "$(dirname "$0")/.."
BASELINE="${1:-BENCH_baseline.json}"
TOL="${BENCH_TOLERANCE_PCT:-25}"
REPS="${BENCH_GUARD_REPS:-3}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

if [ ! -f "$BASELINE" ]; then
  echo "ci_bench_guard: baseline $BASELINE not found (run 'make bench-json' and commit it)" >&2
  exit 1
fi

echo "== running benchmark set ($REPS reps, tolerance ${TOL}%)"
for rep in $(seq 1 "$REPS"); do
  make -s bench-json BENCH_OUT="$WORK/current.$rep.json" >/dev/null
done

compare() {
python3 - "$BASELINE" "$TOL" "$WORK"/current.*.json <<'PY'
import json, re, sys

base_path, tol, cur_paths = sys.argv[1], float(sys.argv[2]), sys.argv[3:]

def load(path):
    with open(path) as f:
        doc = json.load(f)
    return {
        (b.get("pkg", ""), b["name"]): b["metrics"]["ns/op"]
        for b in doc["benchmarks"]
        if "ns/op" in b.get("metrics", {})
    }

base = load(base_path)
cur = {}
for path in cur_paths:
    for key, v in load(path).items():
        cur[key] = min(v, cur.get(key, v))
failures = []

print(f"{'benchmark':56s} {'baseline':>12s} {'current':>12s} {'ratio':>7s}")
for key in sorted(base):
    pkg, name = key
    label = f"{pkg}:{name}" if pkg else name
    if key not in cur:
        failures.append(f"{label}: present in baseline but not produced by the current run")
        print(f"{label:56s} {base[key]:12.0f} {'MISSING':>12s}")
        continue
    # Sub-ms benchmarks run too few iterations to average scheduler
    # modes, and multi-worker variants contend with background load;
    # hold both to a 100% floor rather than the strict gate.
    noisy = base[key] < 1e6 or re.search(r"workers=(?!1$)\d+$", name)
    eff = max(tol, 100.0) if noisy else tol
    ratio = cur[key] / base[key]
    flag = ""
    if ratio > 1 + eff / 100:
        failures.append(f"{label}: {base[key]:.0f} -> {cur[key]:.0f} ns/op "
                        f"({(ratio - 1) * 100:+.1f}%, tolerance {eff:.0f}%)")
        flag = "  << REGRESSION"
    print(f"{label:56s} {base[key]:12.0f} {cur[key]:12.0f} {ratio:6.2f}x{flag}")

for key in sorted(set(cur) - set(base)):
    pkg, name = key
    label = f"{pkg}:{name}" if pkg else name
    print(f"{label:56s} {'(new)':>12s} {cur[key]:12.0f}   not in baseline — "
          f"regenerate with 'make bench-json'")

if failures:
    print("\nci_bench_guard: performance regressions beyond tolerance:", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print("\nci_bench_guard: all benchmarks within tolerance")
PY
}

rc=0
compare || rc=$?
for retry in 1 2; do
  [ "$rc" -eq 0 ] && break
  echo "== retry $retry: measuring one more rep in case a load spike spanned the earlier ones"
  make -s bench-json BENCH_OUT="$WORK/current.retry$retry.json" >/dev/null
  rc=0
  compare || rc=$?
done
exit "$rc"
