//go:build soak

// The node-churn soak: an opt-in, longer-running drill that subjects
// the full distributed stack to every disturbance at once — chaos
// transports on every worker, a worker killed mid-shard and respawned,
// and a coordinator restart over live traffic — and then holds the
// merge to the same oracle as the quick tests: byte-identical output
// to a single-process run. Run with:
//
//	go test -race -tags soak -run TestChurnSoak ./internal/campaignd
//
// (scripts/ci_chaos.sh runs it as part of the chaos drill.)
package campaignd_test

import (
	"bytes"
	"context"
	"errors"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"grinch/internal/campaign"
	"grinch/internal/campaignd"
	"grinch/internal/campaignd/chaos"
	"grinch/internal/campaignd/worker"
	"grinch/internal/obs"
)

func TestChurnSoak(t *testing.T) {
	spec := toySpec(40) // 240 jobs: long enough to restart under
	wantJSONL, wantCSV := referenceBytes(t, spec)
	dataDir := t.TempDir()
	outDir := t.TempDir()
	outPath := filepath.Join(outDir, "merged.jsonl")
	csvPath := filepath.Join(outDir, "merged.csv")

	// The coordinator owns its listener so a restart can rebind the
	// same address — workers must ride through the outage, not be
	// handed a fresh URL.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ttl := 1500 * time.Millisecond
	startCoord := func(ln net.Listener) (*campaignd.Server, *http.Server) {
		srv, err := campaignd.NewServer(campaignd.Options{
			DataDir: dataDir, LeaseTTL: ttl, Logf: t.Logf,
		})
		if err != nil {
			t.Fatalf("coordinator: %v", err)
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln)
		return srv, hs
	}
	srv1, hs1 := startCoord(ln)
	resp, err := srv1.Submit(campaignd.SubmitRequest{
		Spec: spec, ShardSize: 16, Out: outPath, CSV: csvPath,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Jobs sleep a little so the campaign outlives the churn script;
	// the sleep never reaches the result bytes.
	slowExec := func(j campaign.Job, tr obs.Tracer) (campaign.Measurement, error) {
		time.Sleep(2 * time.Millisecond)
		return toyExec(j, tr)
	}
	soakPlan := func(seed uint64) chaos.Plan {
		return chaos.Plan{Seed: seed, Faults: []chaos.Fault{
			{Kind: chaos.KindDropResponse, Path: campaignd.PathResults, Probability: 0.1},
			{Kind: chaos.KindDropRequest, Path: campaignd.PathResults, Probability: 0.05},
			{Kind: chaos.Kind5xx, Probability: 0.05},
			{Kind: chaos.KindRefuse, Probability: 0.02},
			{Kind: chaos.KindDelay, DelayMS: 2, Probability: 0.2},
		}}
	}
	retry := campaignd.DefaultRetryPolicy()
	retry.Base = 5 * time.Millisecond
	retry.Max = 250 * time.Millisecond
	soakWorker := func(ctx context.Context, id string, seed uint64, exec campaign.Executor) (*chaos.Transport, error) {
		tr := chaos.NewTransport(soakPlan(seed), nil)
		pol := retry
		return tr, worker.Run(ctx, worker.Config{
			Server:  "http://" + addr,
			ID:      id,
			Exec:    exec,
			Workers: 2,
			Batch:   8,
			Poll:    10 * time.Millisecond,
			Drain:   true,
			// The coordinator restart must look like an outage the worker
			// outlasts, not a fatal condition.
			ConnectRetries: 500,
			Transport:      tr,
			Retry:          &pol,
			Logf:           t.Logf,
		})
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var injected uint64
	errs := map[string]error{}
	launch := func(ctx context.Context, id string, seed uint64, exec campaign.Executor) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr, err := soakWorker(ctx, id, seed, exec)
			mu.Lock()
			injected += tr.InjectedTotal()
			errs[id] = err
			mu.Unlock()
		}()
	}

	// Worker churn: w0 is killed mid-shard after ~25 jobs and respawned
	// under a new identity; w1 and w2 run to drain.
	killCtx, kill := context.WithCancel(context.Background())
	defer kill()
	launch(killCtx, "soak-w0", 101, killAfter(slowExec, 25, kill))
	launch(context.Background(), "soak-w1", 102, slowExec)
	launch(context.Background(), "soak-w2", 103, slowExec)
	select {
	case <-killCtx.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("worker soak-w0 was never killed; the churn script stalled")
	}
	t.Log("soak: worker soak-w0 killed mid-shard; respawning as soak-w0r")
	launch(context.Background(), "soak-w0r", 104, slowExec)

	// Coordinator churn: once the fleet has made real progress, restart
	// the coordinator over the same journals and address.
	waitProgress := func(min int) {
		deadline := time.Now().Add(30 * time.Second)
		for srv1.Metrics().JobsDone < min {
			if time.Now().After(deadline) {
				t.Fatalf("no fleet progress: %d jobs done, want %d", srv1.Metrics().JobsDone, min)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitProgress(spec.NumJobs() / 4)
	before := srv1.Metrics().JobsDone
	t.Logf("soak: restarting coordinator at %d/%d jobs", before, spec.NumJobs())
	// Abrupt close: live connections die mid-flight. Journal lines are
	// single unbuffered writes, so recovery sees whole lines only.
	hs1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatalf("closing coordinator: %v", err)
	}
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	srv2, hs2 := startCoord(ln2)
	defer hs2.Close()
	defer srv2.Close()
	if got := srv2.Metrics().JobsDone; got < before {
		t.Fatalf("recovery lost results: %d jobs after restart, %d before", got, before)
	}

	wg.Wait()
	mu.Lock()
	for id, err := range errs { //grinchvet:ignore maporder error reporting
		if id == "soak-w0" {
			// The killed worker must die of its cancelled context, nothing
			// else.
			if !errors.Is(err, context.Canceled) {
				t.Errorf("killed worker %s: err = %v, want context.Canceled", id, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("worker %s: %v", id, err)
		}
	}
	mu.Unlock()
	if t.Failed() {
		t.FailNow()
	}
	if injected == 0 {
		t.Fatal("the soak injected zero faults; nothing was exercised")
	}
	t.Logf("soak: fleet drained through %d injected faults", injected)

	// The oracle: after worker churn, coordinator churn, and every
	// injected fault, the merged bytes equal the single-process run.
	got, err := srv2.Output(resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantJSONL) {
		t.Fatalf("soak merged JSONL differs from single-process run (%d vs %d bytes)", len(got), len(wantJSONL))
	}
	fileJSONL, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fileJSONL, wantJSONL) {
		t.Fatal("soak merged JSONL file differs from single-process run")
	}
	fileCSV, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fileCSV, wantCSV) {
		t.Fatal("soak merged CSV file differs from single-process run")
	}

	m := srv2.Metrics()
	fs := srv2.FleetStatus()
	t.Logf("soak: %d jobs, %d duplicates absorbed, %d shed, %d reissues; fleet retries=%d backoff=%dms",
		m.JobsDone, m.Duplicates, m.Shed, m.Reissues, fs.Retry.WorkerRetriesTotal, fs.Retry.WorkerBackoffMSTotal)
	if m.JobsDone != spec.NumJobs() {
		t.Fatalf("jobs done = %d, want %d", m.JobsDone, spec.NumJobs())
	}
}
