package campaignd_test

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"grinch/internal/campaignd"
	"grinch/internal/obs/metrics"
)

// promSum parses Prometheus text exposition and sums every sample of
// the named series across label sets (comments and other names are
// skipped). found reports whether the name appeared at all.
func promSum(t *testing.T, body, name string) (sum float64, found bool) {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if rest == "" || (rest[0] != '{' && rest[0] != ' ') {
			continue // longer name sharing the prefix
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		sum += v
		found = true
	}
	return sum, found
}

// TestMetricsAndStatusUnderLoad hammers GET /metrics, GET /status and
// GET /api/v1/status from several goroutines while three worker nodes
// heartbeat, report and complete shards concurrently — the race
// detector owns the assertions while the run is live. Afterwards the
// scraped exposition must reconcile exactly with the merged campaign
// output: campaignd_jobs_done_total equals the merged JSONL row count.
func TestMetricsAndStatusUnderLoad(t *testing.T) {
	spec := toySpec(4)
	srv, ts := newTestServer(t, campaignd.Options{Logf: t.Logf})
	resp, err := srv.Submit(campaignd.SubmitRequest{Spec: spec, ShardSize: 5})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	var stop atomic.Bool
	var hammer sync.WaitGroup
	for _, path := range []string{campaignd.PathMetrics, campaignd.PathStatus, campaignd.PathStatusJSON} {
		hammer.Add(1)
		go func(path string) {
			defer hammer.Done()
			for !stop.Load() {
				r, err := http.Get(ts.URL + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				r.Body.Close()
				if r.StatusCode != http.StatusOK {
					t.Errorf("GET %s: %s", path, r.Status)
					return
				}
			}
		}(path)
	}

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for n := range errs {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			errs[n] = runWorker(t, context.Background(), ts.URL, fmt.Sprintf("w%d", n), 2, toyExec)
		}(n)
	}
	wg.Wait()
	stop.Store(true)
	hammer.Wait()
	for n, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", n, err)
		}
	}

	out, err := srv.Output(resp.ID)
	if err != nil {
		t.Fatalf("output: %v", err)
	}
	rows := strings.Count(string(out), "\n")

	body := get(t, ts.URL+campaignd.PathMetrics)
	for _, name := range []string{
		"campaignd_jobs_done_total",
		"campaignd_results_ingested_total",
		"campaignd_shard_job_ms_count",
		"campaignd_workers_seen",
		"campaignw_jobs_total",
		"campaignw_shards_total",
	} {
		if _, ok := promSum(t, body, name); !ok {
			t.Errorf("exposition is missing series %s", name)
		}
	}
	if done, _ := promSum(t, body, "campaignd_jobs_done_total"); done != float64(rows) {
		t.Errorf("campaignd_jobs_done_total = %.0f, merged output holds %d rows", done, rows)
	}
	// Every job executed exactly once (no lease expiry in this run), so
	// the workers' own counters reconcile too.
	if jobs, _ := promSum(t, body, "campaignw_jobs_total"); jobs != float64(rows) {
		t.Errorf("campaignw_jobs_total = %.0f across workers, want %d", jobs, rows)
	}
	if shards, _ := promSum(t, body, "campaignw_shards_total"); shards != float64(resp.Shards) {
		t.Errorf("campaignw_shards_total = %.0f, want %d", shards, resp.Shards)
	}

	fleet, err := (&campaignd.Client{Base: ts.URL}).FleetStatus()
	if err != nil {
		t.Fatalf("fleet status: %v", err)
	}
	if fleet.JobsDone != rows || len(fleet.Campaigns) != 1 || len(fleet.Workers) != 3 {
		t.Errorf("fleet status jobs=%d campaigns=%d workers=%d, want %d/1/3",
			fleet.JobsDone, len(fleet.Campaigns), len(fleet.Workers), rows)
	}
	if fleet.SuggestedShardSize < 1 {
		t.Errorf("suggested_shard_size = %d after a full run, want >= 1", fleet.SuggestedShardSize)
	}
	var p50 float64
	for _, sh := range fleet.Campaigns[0].Shards {
		p50 += sh.P50MS
	}
	if p50 < 0 {
		t.Errorf("negative p50 sum %f", p50)
	}
}

// workerDelta builds a cumulative telemetry delta as a worker would:
// the same registry snapshotted under increasing sequence numbers.
func workerDelta(seq, done uint64) metrics.Delta {
	r := metrics.New()
	r.Counter("campaignw_jobs_total", "test", metrics.L("status", "done")).Add(done)
	return metrics.Delta{Seq: seq, Series: r.Snapshot()}
}

func doneJobs(t *testing.T, series []metrics.Series) uint64 {
	t.Helper()
	s, ok := metrics.Find(series, "campaignw_jobs_total", metrics.L("status", "done"))
	if !ok {
		return 0
	}
	return s.Value
}

// TestTelemetryDeltaIdempotence exercises the cumulative-delta merge
// protocol: retried batches (same sequence), stale sequences and a
// journal-replayed batch after a coordinator restart must never
// double-count — the delta carries totals, not increments, and the
// sequence fence drops anything not strictly newer.
func TestTelemetryDeltaIdempotence(t *testing.T) {
	dir := t.TempDir()
	srv, _ := newTestServer(t, campaignd.Options{DataDir: dir, Logf: t.Logf})

	if !srv.ApplyTelemetry("w0", workerDelta(1, 10)) {
		t.Fatal("first delta rejected")
	}
	if got := doneJobs(t, srv.WorkerTelemetry("w0")); got != 10 {
		t.Fatalf("after seq 1: %d, want 10", got)
	}
	// Retried batch: same sequence, must be a no-op.
	if srv.ApplyTelemetry("w0", workerDelta(1, 10)) {
		t.Fatal("replayed delta accepted")
	}
	if got := doneJobs(t, srv.WorkerTelemetry("w0")); got != 10 {
		t.Fatalf("after replaying seq 1: %d, want 10", got)
	}
	// Progress, then a stale out-of-order delta.
	if !srv.ApplyTelemetry("w0", workerDelta(2, 15)) {
		t.Fatal("newer delta rejected")
	}
	if srv.ApplyTelemetry("w0", workerDelta(1, 10)) {
		t.Fatal("stale delta accepted")
	}
	if got := doneJobs(t, srv.WorkerTelemetry("w0")); got != 15 {
		t.Fatalf("after stale replay: %d, want 15", got)
	}

	// Coordinator restart: the worker re-sends its last un-acked batch
	// (telemetry attached) against the recovered server. The delta is
	// cumulative, so applying it to a fresh store lands on the true
	// total — and applying it twice changes nothing.
	srv.Close()
	srv2, _ := newTestServer(t, campaignd.Options{DataDir: dir, Logf: t.Logf})
	for i := 0; i < 2; i++ {
		srv2.ApplyTelemetry("w0", workerDelta(2, 15))
	}
	if got := doneJobs(t, srv2.WorkerTelemetry("w0")); got != 15 {
		t.Fatalf("after restart replay: %d, want 15 (double-counted?)", got)
	}

	// Merged view across workers sums, per-worker views stay separate.
	srv2.ApplyTelemetry("w1", workerDelta(1, 5))
	snap := srv2.PromSnapshot()
	s, ok := metrics.Find(snap, "campaignw_jobs_total",
		metrics.L("status", "done"), metrics.L("worker", "w0"))
	if !ok || s.Value != 15 {
		t.Fatalf("w0 series in snapshot: %+v (ok=%v), want 15", s, ok)
	}
	s, ok = metrics.Find(snap, "campaignw_jobs_total",
		metrics.L("status", "done"), metrics.L("worker", "w1"))
	if !ok || s.Value != 5 {
		t.Fatalf("w1 series in snapshot: %+v (ok=%v), want 5", s, ok)
	}
}

// TestStatusQuantilesAppearAfterIngestion drives one worker and then
// checks the per-shard latency quantiles on the campaign status: the
// toy executor reports sub-millisecond jobs, so the quantiles may be
// zero-valued, but the shard rows themselves must carry ingestion
// counts consistent with the shard ranges.
func TestStatusQuantilesAppearAfterIngestion(t *testing.T) {
	spec := toySpec(2)
	srv, ts := newTestServer(t, campaignd.Options{Logf: t.Logf})
	resp, err := srv.Submit(campaignd.SubmitRequest{Spec: spec, ShardSize: 4})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := runWorker(t, context.Background(), ts.URL, "w0", 2, toyExec); err != nil {
		t.Fatalf("worker: %v", err)
	}
	st, ok := srv.Status(resp.ID)
	if !ok {
		t.Fatal("campaign vanished")
	}
	var enc uint64
	for _, sh := range st.Shards {
		if sh.Done != sh.Len() {
			t.Errorf("shard %d done %d != len %d", sh.Shard, sh.Done, sh.Len())
		}
		enc += sh.Encryptions
		if sh.P50MS < 0 || sh.P90MS < sh.P50MS && sh.P90MS != 0 {
			t.Errorf("shard %d quantiles out of order: p50=%f p90=%f", sh.Shard, sh.P50MS, sh.P90MS)
		}
	}
	if enc == 0 {
		t.Error("status reports zero encryptions after a full run")
	}
}
