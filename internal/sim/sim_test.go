package sim

import (
	"testing"
)

func TestScheduleOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.Schedule(30, func() { got = append(got, 3) })
	k.Schedule(10, func() { got = append(got, 1) })
	k.Schedule(20, func() { got = append(got, 2) })
	k.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired in order %v", got)
	}
	if k.Now() != 30 {
		t.Fatalf("final time %v, want 30ps", k.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(5, func() { got = append(got, i) })
	}
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events reordered: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	e := k.Schedule(10, func() { fired = true })
	k.Cancel(e)
	k.Cancel(e) // double-cancel is a no-op
	k.Cancel(nil)
	k.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelFromEarlierEvent(t *testing.T) {
	k := NewKernel()
	fired := false
	e := k.Schedule(20, func() { fired = true })
	k.Schedule(10, func() { k.Cancel(e) })
	k.Run()
	if fired {
		t.Fatal("event cancelled at t=10 still fired at t=20")
	}
}

func TestSchedulingIntoPastPanics(t *testing.T) {
	k := NewKernel()
	k.Schedule(100, func() {})
	k.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.At(50, func() {})
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	var fired []Time
	for _, d := range []Time{10, 20, 30, 40} {
		d := d
		k.Schedule(d, func() { fired = append(fired, d) })
	}
	k.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(25) fired %v", fired)
	}
	if k.Now() != 25 {
		t.Fatalf("clock at %v after RunUntil(25)", k.Now())
	}
	k.Run()
	if len(fired) != 4 {
		t.Fatalf("remaining events lost: %v", fired)
	}
}

func TestNestedScheduling(t *testing.T) {
	k := NewKernel()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			k.Schedule(1, rec)
		}
	}
	k.Schedule(1, rec)
	k.Run()
	if depth != 100 {
		t.Fatalf("depth = %d", depth)
	}
	if k.Now() != 100 {
		t.Fatalf("time = %v", k.Now())
	}
}

func TestProcWait(t *testing.T) {
	k := NewKernel()
	var marks []Time
	k.Spawn("p", func(p *Proc) {
		marks = append(marks, p.Now())
		p.Wait(100)
		marks = append(marks, p.Now())
		p.Wait(50)
		marks = append(marks, p.Now())
	})
	k.Run()
	want := []Time{0, 100, 150}
	if len(marks) != 3 || marks[0] != want[0] || marks[1] != want[1] || marks[2] != want[2] {
		t.Fatalf("marks = %v, want %v", marks, want)
	}
}

func TestProcWaitUntil(t *testing.T) {
	k := NewKernel()
	var at Time
	k.Spawn("p", func(p *Proc) {
		p.WaitUntil(500)
		p.WaitUntil(100) // already passed: no-op
		at = p.Now()
	})
	k.Run()
	if at != 500 {
		t.Fatalf("proc resumed at %v", at)
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		var log []string
		k.Spawn("a", func(p *Proc) {
			for i := 0; i < 3; i++ {
				log = append(log, "a")
				p.Wait(10)
			}
		})
		k.Spawn("b", func(p *Proc) {
			for i := 0; i < 3; i++ {
				log = append(log, "b")
				p.Wait(10)
			}
		})
		k.Run()
		return log
	}
	first := run()
	for i := 0; i < 10; i++ {
		again := run()
		if len(again) != len(first) {
			t.Fatalf("nondeterministic length")
		}
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("nondeterministic interleaving: %v vs %v", first, again)
			}
		}
	}
	if len(first) != 6 {
		t.Fatalf("log = %v", first)
	}
}

func TestQueueSendRecv(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k)
	var got []int
	k.Spawn("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Recv(p))
		}
	})
	k.Spawn("send", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Wait(10)
			q.Send(i)
		}
	})
	k.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestQueueRecvBeforeSend(t *testing.T) {
	k := NewKernel()
	q := NewQueue[string](k)
	var at Time
	var v string
	k.Spawn("recv", func(p *Proc) {
		v = q.Recv(p)
		at = p.Now()
	})
	k.Schedule(250, func() { q.Send("hello") })
	k.Run()
	if v != "hello" || at != 250 {
		t.Fatalf("v=%q at=%v", v, at)
	}
}

func TestQueueMultipleWaitersFIFO(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k)
	var order []string
	spawnRecv := func(name string, delay Time) {
		k.Spawn(name, func(p *Proc) {
			p.Wait(delay)
			q.Recv(p)
			order = append(order, name)
		})
	}
	spawnRecv("first", 1)
	spawnRecv("second", 2)
	k.Schedule(100, func() { q.Send(1) })
	k.Schedule(200, func() { q.Send(2) })
	k.Run()
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("waiters served in order %v", order)
	}
}

func TestQueueTryRecv(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k)
	if _, ok := q.TryRecv(); ok {
		t.Fatal("TryRecv on empty queue returned ok")
	}
	q.Send(7)
	if q.Len() != 1 {
		t.Fatalf("Len = %d", q.Len())
	}
	v, ok := q.TryRecv()
	if !ok || v != 7 {
		t.Fatalf("TryRecv = %v, %v", v, ok)
	}
}

func TestStopTerminatesParkedProcs(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k)
	reached := false
	k.Spawn("stuck", func(p *Proc) {
		q.Recv(p) // never satisfied
		reached = true
	})
	k.Schedule(10, func() { k.Stop() })
	k.Run()
	if reached {
		t.Fatal("process ran past a never-satisfied Recv")
	}
}

func TestDeadlockedQueueQuiesces(t *testing.T) {
	// A process parked on an empty queue must not keep Run spinning:
	// Run returns when the event heap drains.
	k := NewKernel()
	q := NewQueue[int](k)
	k.Spawn("stuck", func(p *Proc) { q.Recv(p) })
	done := make(chan struct{})
	go func() {
		k.Run()
		close(done)
	}()
	<-done // would hang forever if Run failed to quiesce
}

func TestClockMHz(t *testing.T) {
	cases := []struct {
		mhz    uint64
		period Time
	}{
		{10, 100_000}, // 100 ns
		{25, 40_000},  // 40 ns
		{50, 20_000},  // 20 ns
		{1000, 1_000}, // 1 ns
	}
	for _, c := range cases {
		clk := ClockMHz(c.mhz)
		if clk.Period != c.period {
			t.Errorf("ClockMHz(%d).Period = %v, want %v", c.mhz, clk.Period, c.period)
		}
	}
	if got := ClockMHz(50).Cycles(66_000); got != Time(66_000)*20_000 {
		t.Errorf("Cycles(66000) = %v", got)
	}
	if got := ClockMHz(10).CyclesAt(10 * Millisecond); got != 100_000 {
		t.Errorf("CyclesAt(10ms) = %d cycles, want 100000", got)
	}
}

func TestClockMHzRejectsInexact(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 7 MHz")
		}
	}()
	ClockMHz(7)
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ps"},
		{2 * Nanosecond, "2.000ns"},
		{3 * Microsecond, "3.000µs"},
		{10 * Millisecond, "10.000ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", uint64(c.t), got, c.want)
		}
	}
}

func TestSpawnAfterTimeAdvanced(t *testing.T) {
	k := NewKernel()
	var start Time
	k.Schedule(100, func() {
		k.Spawn("late", func(p *Proc) {
			start = p.Now()
		})
	})
	k.Run()
	if start != 100 {
		t.Fatalf("late-spawned proc started at %v", start)
	}
}
