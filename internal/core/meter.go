package core

import (
	"grinch/internal/obs/metrics"
)

// attackMeter bundles the attack core's pre-resolved instruments, one
// set per attacker, labeled by cipher. Resolution happens once at
// attacker construction, so the elimination hot loop never touches the
// registry mutex — each emission is one nil-check plus one atomic add,
// the same cost model as the nil tracer (BenchmarkAttackNilMetrics
// pins it). The zero value (nil Config.Metrics) is fully inert.
type attackMeter struct {
	observations *metrics.Counter
	encryptions  *metrics.Counter
	retries      *metrics.Counter
	quarantined  *metrics.Counter
	restarts     *metrics.Counter

	segConverged  *metrics.Counter
	segExhausted  *metrics.Counter
	segInfeasible *metrics.Counter
	segAborted    *metrics.Counter

	segObs    *metrics.Histogram
	survivors *metrics.Histogram
}

// survivorBuckets covers the candidate-set size at elimination end (0
// = exhausted, 1 = converged, up to the 16 lines of a 1-word table).
var survivorBuckets = []uint64{0, 1, 2, 4, 8, 16}

// newAttackMeter resolves the attack instrument set for one cipher.
func newAttackMeter(r *metrics.Registry, cipher string) attackMeter {
	if r == nil {
		return attackMeter{}
	}
	c := metrics.L("cipher", cipher)
	seg := func(outcome string) *metrics.Counter {
		return r.Counter("grinch_attack_segments_total",
			"Segment eliminations by outcome.", c, metrics.L("outcome", outcome))
	}
	return attackMeter{
		observations: r.Counter("grinch_attack_observations_total",
			"Probe observations folded into candidate elimination.", c),
		encryptions: r.Counter("grinch_attack_encryptions_total",
			"Victim encryptions consumed (the paper's attack-effort metric).", c),
		retries: r.Counter("grinch_attack_retries_total",
			"Transient channel failures recovered under the retry policy.", c),
		quarantined: r.Counter("grinch_attack_quarantined_total",
			"Degenerate observations discarded before the eliminator.", c),
		restarts: r.Counter("grinch_attack_restarts_total",
			"Threshold-relaxing elimination restarts.", c),
		segConverged:  seg("converged"),
		segExhausted:  seg("exhausted"),
		segInfeasible: seg("infeasible"),
		segAborted:    seg("aborted"),
		segObs: r.Histogram("grinch_attack_segment_observations",
			"Observations per segment elimination pass.", metrics.ObservationBuckets, c),
		survivors: r.Histogram("grinch_attack_segment_survivors",
			"Candidate lines surviving at elimination end (candidate-set shrinkage).", survivorBuckets, c),
	}
}

// segmentDone folds one elimination pass's rollup: its observation
// count, the surviving candidate-set size, the encryptions it
// consumed, and the terminal outcome. Per-observation cost is counted
// live in the elimination loop; this is the per-segment summary.
func (m attackMeter) segmentDone(observations, survivors, encDelta uint64, converged, exhausted, infeasible bool) {
	m.encryptions.Add(encDelta)
	m.segObs.Observe(observations)
	m.survivors.Observe(survivors)
	switch {
	case converged:
		m.segConverged.Inc()
	case exhausted:
		m.segExhausted.Inc()
	case infeasible:
		m.segInfeasible.Inc()
	default:
		m.segAborted.Inc()
	}
}
