#!/usr/bin/env bash
# Chaos drill for the distributed campaign service: the same
# byte-determinism contract as scripts/ci_distributed.sh, but with the
# network actively hostile and the fleet churning —
#
#   * every worker runs behind a -chaos fault plan (lost responses
#     after the server committed, lost requests, fabricated 5xx,
#     injected delays),
#   * one worker is SIGKILLed mid-run and a replacement is spawned,
#   * the coordinator is SIGTERMed mid-run and restarted over the same
#     journals and address,
#
# and the merged output must STILL be byte-identical to a fault-free
# single-process cmd/campaign run. The in-process churn soak
# (TestChurnSoak, -tags soak) runs first; the process-level drill then
# repeats the story with real binaries and real signals. All binaries
# are built with -race.
#
# Usage: scripts/ci_chaos.sh [port]
set -euo pipefail

cd "$(dirname "$0")/.."
PORT="${1:-18937}"
ADDR="127.0.0.1:${PORT}"
WORK="$(mktemp -d)"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== in-process churn soak (go test -tags soak)"
go test -race -tags soak -run TestChurnSoak -count=1 ./internal/campaignd

echo "== building -race binaries"
go build -race -o "$WORK/bin/" ./cmd/campaign ./cmd/campaignd ./cmd/campaignw

SPEC_ARGS=(-trials 2 -budget 200000 -seed 2021)
# A short lease TTL so the killed worker's shard re-issues within the
# drill instead of after it.
TTL=2s

echo "== single-process reference run"
"$WORK/bin/campaign" "${SPEC_ARGS[@]}" -quiet \
  -out "$WORK/ref.jsonl" -csv "$WORK/ref.csv" table1 >/dev/null

# The merged outputs use absolute paths: the restarted coordinator
# re-resolves them from the journaled submit request, so they must not
# depend on either process's working directory.
echo "== coordinator (journaled) + 3 chaos workers on $ADDR"
"$WORK/bin/campaignd" -addr "$ADDR" -data "$WORK/data" -lease-ttl "$TTL" "${SPEC_ARGS[@]}" \
  -out "$WORK/merged.jsonl" -csv "$WORK/merged.csv" table1 &
SERVER_PID=$!
PIDS+=("$SERVER_PID")

# Deterministic, per-worker-seeded fault plans. Responses are lost
# AFTER the coordinator commits (the at-least-once hazard), requests
# are lost before it sees them, and 5xx/delays harass every call class.
CHAOS='drop-response:path=/api/v1/results:p=0.1,drop-request:path=/api/v1/results:p=0.05,5xx:p=0.05,delay:ms=5:p=0.2'
start_worker() { # id seed
  "$WORK/bin/campaignw" -server "http://$ADDR" -id "$1" -drain \
    -chaos "$CHAOS" -chaos-seed "$2" &
  PIDS+=("$!")
}
start_worker chaos-w1 101
W1=$!
start_worker chaos-w2 102
W2=$!
start_worker chaos-w3 103
W3=$!

wait_jobs_done() { # min
  for _ in $(seq 1 600); do
    DONE="$(curl -fs "http://$ADDR/metrics" 2>/dev/null |
      awk '$1 ~ /^campaignd_jobs_done_total([{]|$)/ {s+=$NF} END{printf "%d", s+0}')" || DONE=0
    if [ "${DONE:-0}" -ge "$1" ]; then return 0; fi
    sleep 0.1
  done
  echo "FAIL: coordinator never reached $1 ingested jobs" >&2
  return 1
}

EXPECTED_ROWS="$(wc -l <"$WORK/ref.jsonl")"
QUARTER=$((EXPECTED_ROWS / 4))

echo "== churn: SIGKILL worker chaos-w2 mid-run, spawn replacement"
wait_jobs_done "$QUARTER"
kill -KILL "$W2" 2>/dev/null || true
start_worker chaos-w2r 104
W2R=$!

echo "== churn: restart the coordinator over the same journals"
wait_jobs_done $((QUARTER * 2))
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || true
# Restart WITHOUT the preset argument: the boot campaign is already
# journaled (spec + output paths) and recovery resubmits it; passing
# the preset again would submit a duplicate campaign.
"$WORK/bin/campaignd" -addr "$ADDR" -data "$WORK/data" -lease-ttl "$TTL" &
SERVER_PID=$!
PIDS+=("$SERVER_PID")

# The surviving workers and the replacement drain on their own once
# the campaign merges; the SIGKILLed one is exempt from exit-code
# checks — dying ungracefully is its role.
echo "== waiting for the fleet to drain through the chaos"
for pid in "$W1" "$W3" "$W2R"; do
  if ! wait "$pid"; then
    echo "FAIL: campaignw exited non-zero" >&2
    exit 1
  fi
done

echo "== asserting the merge and the resilience telemetry"
wait_jobs_done "$EXPECTED_ROWS"
BODY="$(curl -fs "http://$ADDR/metrics")"
printf '%s\n' "$BODY" | grep -q '^campaignd_campaigns{state="merged"} 1$' || {
  echo "FAIL: the campaign never merged" >&2
  exit 1
}
printf '%s\n' "$BODY" | grep -q '^campaignd_shed_total' || {
  echo "FAIL: /metrics is missing campaignd_shed_total" >&2
  exit 1
}
RETRIES="$(curl -fs "http://$ADDR/api/v1/status" |
  sed -n 's/.*"worker_retries_total":\([0-9]*\).*/\1/p')"
echo "   fleet status reports worker_retries_total=$RETRIES"

kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || { echo "FAIL: campaignd exited non-zero" >&2; exit 1; }

echo "== diffing merged output against the single-process run"
cmp "$WORK/merged.jsonl" "$WORK/ref.jsonl"
cmp "$WORK/merged.csv" "$WORK/ref.csv"
echo "OK: chaos-drilled merge is byte-identical ($(wc -c <"$WORK/merged.jsonl") bytes JSONL, $(wc -c <"$WORK/merged.csv") bytes CSV)"
