package experiments

import (
	"fmt"
	"strings"

	"grinch/internal/bitutil"
	"grinch/internal/core"
	"grinch/internal/rng"
	"grinch/internal/soc"
)

// PlatformEffortRow is the first-round attack cost over a live platform
// model at one clock frequency.
type PlatformEffortRow struct {
	Platform    string
	MHz         uint64
	Encryptions uint64
	DroppedOut  bool
	// WindowRounds is where the platform's first probe lands (Table II),
	// shown alongside to connect the race to the effort.
	WindowRounds int
}

// PlatformEffort runs the first-round attack through the real platform
// channels, connecting Table II to Fig. 3: the single-SoC attacker's
// probe window covers rounds 1..k where k is the Table II round, so its
// effort tracks the Fig. 3 no-flush curve at probing round k, while the
// MPSoC attacker's per-round windows keep the effort near the ideal
// curve. The paper reports the race (Table II) but not the resulting
// effort; this experiment measures it.
func PlatformEffort(opt Options, freqs []uint64) []PlatformEffortRow {
	opt = opt.withDefaults()
	if len(freqs) == 0 {
		freqs = []uint64{10, 25, 50}
	}
	r := rng.New(opt.Seed ^ 0x50c)
	var rows []PlatformEffortRow
	for _, mhz := range freqs {
		key := bitutil.Word128{Lo: r.Uint64(), Hi: r.Uint64()}

		single := soc.NewSingleSoC(key, soc.DefaultParams(mhz))
		rows = append(rows, measurePlatform("Single-processing SoC", mhz, single, key, core.Config{
			Seed: r.Uint64(), TotalBudget: opt.Budget,
		}))

		multi := soc.NewMPSoC(key, soc.DefaultParams(mhz))
		rows = append(rows, measurePlatform("Multi-processing SoC", mhz, multi, key, core.Config{
			Seed: r.Uint64(), TotalBudget: opt.Budget,
			Threshold: 0.95, MinObservations: 48,
		}))
	}
	return rows
}

func measurePlatform(name string, mhz uint64, p soc.Platform, key bitutil.Word128, cfg core.Config) PlatformEffortRow {
	row := PlatformEffortRow{
		Platform:     name,
		MHz:          mhz,
		WindowRounds: p.EarliestProbeRound(),
	}
	ch := &soc.PlatformChannel{P: p, LineBytes: 1}
	a, err := core.NewAttacker(ch, cfg)
	if err != nil {
		panic(err)
	}
	out, err := a.AttackRound(1, nil, nil)
	if err != nil {
		row.DroppedOut = true
		row.Encryptions = ch.Encryptions()
		return row
	}
	row.Encryptions = out.Encryptions
	return row
}

// RenderPlatformEffort renders the platform-effort table.
func RenderPlatformEffort(rows []PlatformEffortRow) string {
	var b strings.Builder
	b.WriteString("Extension — first-round attack effort over the live platform models\n")
	b.WriteString("(the effort the Table II probing race implies)\n")
	fmt.Fprintf(&b, "%-24s %8s %14s %14s\n", "platform", "clock", "first probe", "encryptions")
	for _, r := range rows {
		eff := humanCount(float64(r.Encryptions))
		if r.DroppedOut {
			eff = ">" + eff
		}
		fmt.Fprintf(&b, "%-24s %5d MHz %14s %14s\n",
			r.Platform, r.MHz, fmt.Sprintf("round %d", r.WindowRounds), eff)
	}
	return b.String()
}
