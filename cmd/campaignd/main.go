// Command campaignd is the distributed campaign coordinator: a
// long-running HTTP service that accepts campaign specs, partitions
// each job grid into contiguous shards, leases shards to cmd/campaignw
// workers, journals ingested results per shard, and merges completed
// campaigns into the same byte-deterministic JSONL/CSV output
// cmd/campaign writes.
//
// Usage:
//
//	campaignd -addr :8844 -data campaignd.data           # serve, wait for submits
//	campaignd -addr :8844 -data d -out t1.jsonl table1   # submit a preset at boot
//	campaignd -spec sweep.json -out s.jsonl -csv s.csv -exit-when-done
//	curl -s localhost:8844/status                        # shard board
//	curl -s localhost:8844/api/v1/campaigns              # JSON statuses
//
// Campaigns can be submitted three ways: a preset name or -spec file
// at boot (same presets and spec format as cmd/campaign), or POST
// /api/v1/campaigns at any time with {"spec": {...}, "shard_size": N,
// "out": "path.jsonl", "csv": "path.csv"}. Relative output paths land
// in the campaign's data directory when -data is set.
//
// Determinism: merged output is byte-identical to a single-process
// `campaign` run of the same spec, for any number of workers, any
// shard size, and any node-loss history — per-job seeds derive from
// the job index and only canonical (timing-free) results are
// journaled and merged. CI asserts this end to end.
//
// Fault tolerance: with -data, every ingested result is journaled
// per shard; killed workers' shards re-issue after -lease-ttl with
// their ingested prefix intact, and a restarted coordinator recovers
// every campaign from its journals.
//
// The status page at /status shows shard states, jobs/sec and workers
// seen; /metrics serves the Prometheus text exposition (coordinator
// counters plus per-worker campaignw_* series aggregated from
// heartbeat deltas, DESIGN.md §14); /api/v1/status returns the same
// fleet view as JSON with per-shard latency quantiles; /debug/vars
// (expvar, including the "campaignd" counter set) and /debug/pprof
// are built in — the -debug-addr endpoint of cmd/campaign, grown into
// the service.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"grinch/internal/campaign"
	"grinch/internal/campaignd"
	"grinch/internal/experiments"
)

func main() {
	var (
		addr         = flag.String("addr", ":8844", "listen address")
		dataDir      = flag.String("data", "", "persistence directory (shard journals + recovery); empty = memory-only")
		leaseTTL     = flag.Duration("lease-ttl", campaignd.DefaultLeaseTTL, "shard lease time-to-live without a heartbeat")
		shardSize    = flag.Int("shard-size", campaignd.DefaultShardSize, "default max jobs per shard")
		specPath     = flag.String("spec", "", "campaign spec JSON file to submit at boot (alternative to a preset name)")
		trials       = flag.Int("trials", 3, "trials per grid cell (boot presets only)")
		budget       = flag.Uint64("budget", 1_000_000, "per-attack encryption budget (boot presets only)")
		seed         = flag.Uint64("seed", 2021, "campaign seed (boot presets only)")
		outPath      = flag.String("out", "", "merged JSONL path for the boot-submitted campaign")
		csvPath      = flag.String("csv", "", "merged CSV path for the boot-submitted campaign")
		exitWhenDone = flag.Bool("exit-when-done", false, "shut down once every submitted campaign has merged")
		quiet        = flag.Bool("quiet", false, "suppress operator logs on stderr")
	)
	flag.Parse()

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "campaignd: "+format+"\n", args...)
		}
	}

	allMerged := make(chan struct{}, 1)
	srv, err := campaignd.NewServer(campaignd.Options{
		DataDir:   *dataDir,
		LeaseTTL:  *leaseTTL,
		ShardSize: *shardSize,
		Logf:      logf,
		OnAllMerged: func() {
			select {
			case allMerged <- struct{}{}:
			default:
			}
		},
	})
	if err != nil {
		fatalf("%v", err)
	}
	defer srv.Close()
	expvar.Publish("campaignd", expvar.Func(func() any { return srv.Metrics() }))

	if *specPath != "" || flag.NArg() == 1 {
		spec, err := bootSpec(*specPath, experiments.Options{Trials: *trials, Budget: *budget, Seed: *seed})
		if err != nil {
			fatalf("%v", err)
		}
		resp, err := srv.Submit(campaignd.SubmitRequest{
			Spec: spec, ShardSize: *shardSize, Out: *outPath, CSV: *csvPath,
		})
		if err != nil {
			fatalf("submitting boot campaign: %v", err)
		}
		logf("boot campaign %s: %d jobs in %d shards", resp.ID, resp.Jobs, resp.Shards)
	} else if flag.NArg() > 1 {
		fatalf("at most one preset argument (fig3, table1, table2, recovery); got %v", flag.Args())
	} else if *exitWhenDone {
		fatalf("-exit-when-done needs a boot campaign (preset or -spec); an idle server would never exit")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logf("listening on %s (status page at /status)", *addr)

	var mergedCh chan struct{}
	if *exitWhenDone {
		mergedCh = allMerged
	}
	select {
	case <-ctx.Done():
		logf("shutting down")
	case <-mergedCh:
		logf("all campaigns merged; shutting down")
	case err := <-errCh:
		fatalf("%v", err)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatalf("shutdown: %v", err)
	}
}

// bootSpec loads the boot campaign's spec from -spec or a preset name.
func bootSpec(path string, opt experiments.Options) (campaign.Spec, error) {
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return campaign.Spec{}, err
		}
		return campaign.ParseSpec(data)
	}
	return experiments.SpecByName(flag.Arg(0), opt)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "campaignd: "+format+"\n", args...)
	os.Exit(1)
}
