package gift

import (
	"encoding/binary"

	"grinch/internal/bitutil"
)

// RoundKey128 is the key material for one GIFT-128 round: two 32-bit
// words U and V plus the 6-bit round constant. Bit u_i is XORed into
// state bit 4i+2 and bit v_i into state bit 4i+1.
type RoundKey128 struct {
	U, V  uint32
	Const uint8
}

// Cipher128 is a GIFT-128 instance with an expanded key schedule
// (16-byte blocks).
type Cipher128 struct {
	rk [Rounds128]RoundKey128 //grinch:secret
}

// NewCipher128 expands a 128-bit key (big-endian byte order) into a
// GIFT-128 cipher.
//
//grinch:secret key
func NewCipher128(key [16]byte) *Cipher128 {
	return NewCipher128FromWord(bitutil.Word128FromBytes(key))
}

// NewCipher128FromWord expands a key given as a 128-bit word.
//
//grinch:secret key
func NewCipher128FromWord(key bitutil.Word128) *Cipher128 {
	c := &Cipher128{}
	copy(c.rk[:], ExpandKey128(key))
	return c
}

// BlockSize returns the GIFT-128 block size in bytes.
func (c *Cipher128) BlockSize() int { return 16 }

// Encrypt encrypts the 16-byte block src into dst (big-endian blocks).
func (c *Cipher128) Encrypt(dst, src []byte) {
	pt := word128FromBE(src)
	putWord128BE(dst, c.EncryptBlock(pt))
}

// Decrypt decrypts the 16-byte block src into dst.
func (c *Cipher128) Decrypt(dst, src []byte) {
	ct := word128FromBE(src)
	putWord128BE(dst, c.DecryptBlock(ct))
}

func word128FromBE(b []byte) bitutil.Word128 {
	return bitutil.Word128{
		Hi: binary.BigEndian.Uint64(b[:8]),
		Lo: binary.BigEndian.Uint64(b[8:16]),
	}
}

func putWord128BE(b []byte, w bitutil.Word128) {
	binary.BigEndian.PutUint64(b[:8], w.Hi)
	binary.BigEndian.PutUint64(b[8:16], w.Lo)
}

// EncryptBlock encrypts one 128-bit block.
func (c *Cipher128) EncryptBlock(pt bitutil.Word128) bitutil.Word128 {
	s := pt
	for r := 0; r < Rounds128; r++ {
		s = Round128(s, c.rk[r])
	}
	return s
}

// DecryptBlock decrypts one 128-bit block.
func (c *Cipher128) DecryptBlock(ct bitutil.Word128) bitutil.Word128 {
	s := ct
	for r := Rounds128 - 1; r >= 0; r-- {
		s = InvRound128(s, c.rk[r])
	}
	return s
}

// RoundKeys returns the expanded round keys.
func (c *Cipher128) RoundKeys() []RoundKey128 {
	out := make([]RoundKey128, Rounds128)
	copy(out, c.rk[:])
	return out
}

// ExpandKey128 runs the GIFT key schedule for GIFT-128: round r uses
// U = k5‖k4, V = k1‖k0, with the same key-state rotation as GIFT-64.
//
//grinch:secret key return
func ExpandKey128(key bitutil.Word128) []RoundKey128 {
	rks := make([]RoundKey128, Rounds128)
	ks := key
	for r := 0; r < Rounds128; r++ {
		rks[r] = RoundKey128{
			U:     uint32(ks.Word16(5))<<16 | uint32(ks.Word16(4)),
			V:     uint32(ks.Word16(1))<<16 | uint32(ks.Word16(0)),
			Const: RoundConstants[r],
		}
		ks = UpdateKeyState(ks)
	}
	return rks
}

// SubCells128 applies the S-box to all 32 segments.
//
//grinch:secret s
func SubCells128(s bitutil.Word128) bitutil.Word128 {
	return bitutil.Word128{Lo: SubCells64(s.Lo), Hi: SubCells64(s.Hi)}
}

// InvSubCells128 applies the inverse S-box to all 32 segments.
//
//grinch:secret s
func InvSubCells128(s bitutil.Word128) bitutil.Word128 {
	return bitutil.Word128{Lo: InvSubCells64(s.Lo), Hi: InvSubCells64(s.Hi)}
}

// PermBits128 applies the GIFT-128 bit permutation.
func PermBits128(s bitutil.Word128) bitutil.Word128 {
	return bitutil.PermuteBits128(s, &Perm128)
}

// InvPermBits128 applies the inverse bit permutation.
func InvPermBits128(s bitutil.Word128) bitutil.Word128 {
	return bitutil.PermuteBits128(s, &InvPerm128)
}

// AddRoundKey128 XORs the round key into the state: u_i into bit 4i+2,
// v_i into bit 4i+1, the fixed 1 into bit 127 and the constant bits
// c5..c0 into bits 23, 19, 15, 11, 7, 3.
//
//grinch:secret rk return
func AddRoundKey128(s bitutil.Word128, rk RoundKey128) bitutil.Word128 {
	var lo, hi uint64
	for i := uint(0); i < 16; i++ {
		lo |= (uint64(rk.U>>i) & 1) << (4*i + 2)
		lo |= (uint64(rk.V>>i) & 1) << (4*i + 1)
		hi |= (uint64(rk.U>>(16+i)) & 1) << (4*i + 2)
		hi |= (uint64(rk.V>>(16+i)) & 1) << (4*i + 1)
	}
	hi |= 1 << 63
	for i := uint(0); i < 6; i++ {
		lo |= (uint64(rk.Const>>i) & 1) << (4*i + 3)
	}
	return bitutil.Word128{Lo: s.Lo ^ lo, Hi: s.Hi ^ hi}
}

// Round128 applies one full GIFT-128 round.
//
//grinch:secret s rk
func Round128(s bitutil.Word128, rk RoundKey128) bitutil.Word128 {
	return AddRoundKey128(PermBits128(SubCells128(s)), rk)
}

// InvRound128 inverts one GIFT-128 round.
//
//grinch:secret s rk
func InvRound128(s bitutil.Word128, rk RoundKey128) bitutil.Word128 {
	return InvSubCells128(InvPermBits128(AddRoundKey128(s, rk)))
}

// EncryptTraced encrypts like EncryptBlock but reports every S-box lookup
// to obs in execution order.
func (c *Cipher128) EncryptTraced(pt bitutil.Word128, obs SBoxObserver) bitutil.Word128 {
	s := pt
	for r := 0; r < Rounds128; r++ {
		var sub bitutil.Word128
		for i := uint(0); i < Segments128; i++ {
			idx := uint8(s.Nibble(i))
			obs.ObserveSBox(r+1, int(i), idx)
			sub = sub.SetNibble(i, uint64(SBox[idx]))
		}
		s = AddRoundKey128(PermBits128(sub), c.rk[r])
	}
	return s
}

// SBoxInputs returns the state at the input of each round's SubCells
// step; the 32 S-box indices of round r are the nibbles of element r-1.
func (c *Cipher128) SBoxInputs(pt bitutil.Word128) []bitutil.Word128 {
	return c.SBoxInputsN(pt, Rounds128)
}

// SBoxInputsN is SBoxInputs truncated to the first n rounds (the
// trace-oracle fast path). n is clamped to the round count.
func (c *Cipher128) SBoxInputsN(pt bitutil.Word128, n int) []bitutil.Word128 {
	if n > Rounds128 {
		n = Rounds128
	}
	states := make([]bitutil.Word128, n)
	s := pt
	for r := 0; r < n; r++ {
		states[r] = s
		s = Round128(s, c.rk[r])
	}
	return states
}

// PartialEncrypt128 applies rounds 1..n of the cipher.
func PartialEncrypt128(pt bitutil.Word128, rks []RoundKey128, n int) bitutil.Word128 {
	s := pt
	for r := 0; r < n; r++ {
		s = Round128(s, rks[r])
	}
	return s
}

// PartialDecrypt128 inverts rounds n..1.
func PartialDecrypt128(ct bitutil.Word128, rks []RoundKey128, n int) bitutil.Word128 {
	s := ct
	for r := n - 1; r >= 0; r-- {
		s = InvRound128(s, rks[r])
	}
	return s
}
