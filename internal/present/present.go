// Package present implements the PRESENT ultra-lightweight block cipher
// (Bogdanov et al., CHES 2007; ISO/IEC 29192-2), the direct ancestor of
// GIFT and the paper's main point of comparison (§II): GIFT was designed
// to relax PRESENT's branching-number-3 S-box requirement.
//
// PRESENT is included both as the comparison substrate and as a second
// target for the GRINCH attack methodology (internal/core, Attacker​P):
// unlike GIFT, PRESENT XORs the round key into the *whole* state before
// SubCells, so every pinned S-box access leaks four key bits instead of
// two — making table-based PRESENT software strictly easier prey for an
// access-driven attacker.
//
// Conventions match internal/gift: state bit 0 is the least significant,
// segment i is the nibble at bits 4i..4i+3.
package present

import (
	"encoding/binary"

	"grinch/internal/bitutil"
)

// Rounds is the number of full rounds; a 32nd round key is XORed at the
// end (post-whitening).
const Rounds = 31

// Segments is the number of 4-bit segments per state.
const Segments = 16

// SBox is the PRESENT substitution box.
var SBox = [16]uint8{
	0xc, 0x5, 0x6, 0xb, 0x9, 0x0, 0xa, 0xd,
	0x3, 0xe, 0xf, 0x8, 0x4, 0x7, 0x1, 0x2,
}

// InvSBox is the inverse of SBox.
var InvSBox = bitutil.InvertSBox(&SBox)

// Perm is the PRESENT bit permutation: bit i moves to position
// P(i) = 16i mod 63 (with bit 63 fixed).
var Perm = genPerm()

// InvPerm is the inverse of Perm.
var InvPerm = bitutil.InvertPerm64(&Perm)

func genPerm() [64]uint8 {
	var p [64]uint8
	for i := 0; i < 63; i++ {
		p[i] = uint8(i * 16 % 63)
	}
	p[63] = 63
	return p
}

// SubCells applies the S-box to all 16 segments. PRESENT XORs the round
// key into the state *before* SubCells, so the table indices are
// key-dependent from the very first round — the property that makes
// table-based PRESENT strictly easier prey for GRINCH-P.
//
//grinch:secret s
func SubCells(s uint64) uint64 {
	var out uint64
	for i := uint(0); i < Segments; i++ {
		out |= uint64(SBox[(s>>(4*i))&0xf]) << (4 * i)
	}
	return out
}

// InvSubCells applies the inverse S-box to all 16 segments.
//
//grinch:secret s
func InvSubCells(s uint64) uint64 {
	var out uint64
	for i := uint(0); i < Segments; i++ {
		out |= uint64(InvSBox[(s>>(4*i))&0xf]) << (4 * i)
	}
	return out
}

// PermBits applies the PRESENT pLayer.
func PermBits(s uint64) uint64 {
	return bitutil.PermuteBits64(s, &Perm)
}

// InvPermBits applies the inverse pLayer.
func InvPermBits(s uint64) uint64 {
	return bitutil.PermuteBits64(s, &InvPerm)
}

// Round applies one PRESENT round: addRoundKey, sBoxLayer, pLayer.
// Note the ordering difference from GIFT (key first): the very first
// round's S-box indices are already key-dependent, which is what makes
// the GRINCH adaptation recover four key bits per segment.
//
//grinch:secret s rk
func Round(s, rk uint64) uint64 {
	return PermBits(SubCells(s ^ rk))
}

// InvRound inverts one round.
//
//grinch:secret s rk
func InvRound(s, rk uint64) uint64 {
	return InvSubCells(InvPermBits(s)) ^ rk
}

// Cipher80 is PRESENT-80 with an expanded key schedule.
type Cipher80 struct {
	rk [Rounds + 1]uint64 //grinch:secret
}

// key80 is the 80-bit key register, kept as hi (top 16 bits, i.e. key
// bits 79..64) and lo (bits 63..0).
type key80 struct {
	hi uint16
	lo uint64
}

// NewCipher80 expands a 10-byte key (big-endian, k79 first).
//
//grinch:secret key
func NewCipher80(key [10]byte) *Cipher80 {
	reg := key80{
		hi: binary.BigEndian.Uint16(key[:2]),
		lo: binary.BigEndian.Uint64(key[2:]),
	}
	c := &Cipher80{}
	for r := 0; r <= Rounds; r++ {
		c.rk[r] = roundKey80(reg)
		reg = updateKey80(reg, uint64(r+1))
	}
	return c
}

// roundKey80 extracts the round key: the top 64 bits of the register
// (bits 79..16).
//
//grinch:secret k return
func roundKey80(k key80) uint64 {
	return uint64(k.hi)<<48 | k.lo>>16
}

// updateKey80 is the PRESENT-80 key schedule step: rotate the register
// left by 61, S-box the top nibble, XOR the round counter into bits
// 19..15. The S-box step is a key-dependent table lookup — PRESENT's key
// schedule itself leaks through a shared cache.
//
//grinch:secret k return
func updateKey80(k key80, counter uint64) key80 {
	// Rotate left 61 over 80 bits = take bits [18..0 ‖ 79..19].
	full := [2]uint64{k.lo, uint64(k.hi)} // low, high(16 bits)
	bit := func(i uint) uint64 {
		if i < 64 {
			return full[0] >> i & 1
		}
		return full[1] >> (i - 64) & 1
	}
	var nlo uint64
	var nhi uint16
	for i := uint(0); i < 80; i++ {
		src := (i + 19) % 80 // left-rotate by 61 = right-rotate by 19
		b := bit(src)
		if i < 64 {
			nlo |= b << i
		} else {
			nhi |= uint16(b) << (i - 64)
		}
	}
	// S-box on bits 79..76.
	top := uint8(nhi >> 12)
	nhi = nhi&0x0fff | uint16(SBox[top])<<12
	// Counter into bits 19..15.
	nlo ^= (counter & 0x1f) << 15
	return key80{hi: nhi, lo: nlo}
}

// BlockSize returns the PRESENT block size in bytes.
func (c *Cipher80) BlockSize() int { return 8 }

// EncryptBlock encrypts one 64-bit block.
func (c *Cipher80) EncryptBlock(pt uint64) uint64 {
	s := pt
	for r := 0; r < Rounds; r++ {
		s = Round(s, c.rk[r])
	}
	return s ^ c.rk[Rounds]
}

// DecryptBlock decrypts one 64-bit block.
func (c *Cipher80) DecryptBlock(ct uint64) uint64 {
	s := ct ^ c.rk[Rounds]
	for r := Rounds - 1; r >= 0; r-- {
		s = InvRound(s, c.rk[r])
	}
	return s
}

// Encrypt encrypts an 8-byte block (big-endian).
func (c *Cipher80) Encrypt(dst, src []byte) {
	binary.BigEndian.PutUint64(dst, c.EncryptBlock(binary.BigEndian.Uint64(src)))
}

// Decrypt decrypts an 8-byte block.
func (c *Cipher80) Decrypt(dst, src []byte) {
	binary.BigEndian.PutUint64(dst, c.DecryptBlock(binary.BigEndian.Uint64(src)))
}

// RoundKeys returns all 32 round keys.
func (c *Cipher80) RoundKeys() []uint64 {
	out := make([]uint64, Rounds+1)
	copy(out, c.rk[:])
	return out
}

// SBoxInputs returns, for each of the 31 S-box layers, the index state —
// the XOR of the round input with the round key (PRESENT's key-first
// ordering). The nibbles of element r-1 are round r's table indices.
func (c *Cipher80) SBoxInputs(pt uint64) []uint64 {
	return c.SBoxInputsN(pt, Rounds)
}

// SBoxInputsN is SBoxInputs truncated to the first n rounds.
func (c *Cipher80) SBoxInputsN(pt uint64, n int) []uint64 {
	if n > Rounds {
		n = Rounds
	}
	states := make([]uint64, n)
	s := pt
	for r := 0; r < n; r++ {
		states[r] = s ^ c.rk[r]
		s = PermBits(SubCells(states[r]))
	}
	return states
}

// PartialDecrypt inverts rounds n..1 (not the final whitening).
//
//grinch:secret rks
func PartialDecrypt(s uint64, rks []uint64, n int) uint64 {
	for r := n - 1; r >= 0; r-- {
		s = InvRound(s, rks[r])
	}
	return s
}

// Cipher128 is PRESENT-128.
type Cipher128 struct {
	rk [Rounds + 1]uint64 //grinch:secret
}

// NewCipher128 expands a 16-byte key (big-endian, k127 first).
//
//grinch:secret key
func NewCipher128(key [16]byte) *Cipher128 {
	reg := bitutil.Word128FromBytes(key)
	c := &Cipher128{}
	for r := 0; r <= Rounds; r++ {
		c.rk[r] = reg.Hi // round key = bits 127..64
		reg = updateKey128(reg, uint64(r+1))
	}
	return c
}

// updateKey128 is the PRESENT-128 key schedule step: rotate left 61,
// S-box the top two nibbles, XOR the counter into bits 66..62.
//
//grinch:secret k return
func updateKey128(k bitutil.Word128, counter uint64) bitutil.Word128 {
	// Rotate left 61 over 128 bits.
	var n bitutil.Word128
	for i := uint(0); i < 128; i++ {
		if k.Bit((i+67)%128) != 0 { // left 61 = right 67
			n = n.SetBit(i, 1)
		}
	}
	// S-box on bits 127..124 and 123..120.
	top := uint8(n.Hi >> 60)
	next := uint8(n.Hi >> 56 & 0xf)
	n.Hi = n.Hi&0x00ff_ffff_ffff_ffff |
		uint64(SBox[top])<<60 | uint64(SBox[next])<<56
	// Counter into bits 66..62.
	n.Hi ^= (counter & 0x1f) >> 2 // bits 66..64 get counter bits 4..2
	n.Lo ^= (counter & 0x3) << 62 // bits 63..62 get counter bits 1..0
	return n
}

// BlockSize returns the PRESENT block size in bytes.
func (c *Cipher128) BlockSize() int { return 8 }

// EncryptBlock encrypts one 64-bit block.
func (c *Cipher128) EncryptBlock(pt uint64) uint64 {
	s := pt
	for r := 0; r < Rounds; r++ {
		s = Round(s, c.rk[r])
	}
	return s ^ c.rk[Rounds]
}

// DecryptBlock decrypts one 64-bit block.
func (c *Cipher128) DecryptBlock(ct uint64) uint64 {
	s := ct ^ c.rk[Rounds]
	for r := Rounds - 1; r >= 0; r-- {
		s = InvRound(s, c.rk[r])
	}
	return s
}

// RoundKeys returns all 32 round keys.
func (c *Cipher128) RoundKeys() []uint64 {
	out := make([]uint64, Rounds+1)
	copy(out, c.rk[:])
	return out
}

// SBoxInputs mirrors Cipher80.SBoxInputs.
func (c *Cipher128) SBoxInputs(pt uint64) []uint64 {
	states := make([]uint64, Rounds)
	s := pt
	for r := 0; r < Rounds; r++ {
		states[r] = s ^ c.rk[r]
		s = PermBits(SubCells(states[r]))
	}
	return states
}

// RecoverKey80 inverts the PRESENT-80 key schedule from the first two
// round keys: K2 is the top 64 bits of the once-updated register, so
// undoing the counter XOR, the S-box and the rotation — combined with
// the 64 bits K1 exposes directly — reconstructs all 80 key bits. This
// is the final step of the GRINCH-P attack.
func RecoverKey80(k1, k2 uint64) [10]byte {
	// Register after one update: bits 79..16 = k2; bits 15..0 unknown
	// so far. Undo counter (round 1) on bits 19..15: bits 19..16 live
	// in k2's low bits.
	post := key80{hi: uint16(k2 >> 48), lo: k2 << 16}
	post.lo ^= (1 & 0x1f) << 15 // counter = 1; bit 15 unknown anyway
	// Undo S-box on top nibble.
	post.hi = post.hi&0x0fff | uint16(InvSBox[post.hi>>12])<<12
	// Undo rotate-left-61: original bit i = post bit (i+61) mod 80.
	bit := func(k key80, i uint) uint64 {
		if i < 64 {
			return k.lo >> i & 1
		}
		return uint64(k.hi) >> (i - 64) & 1
	}
	var orig key80
	for i := uint(0); i < 80; i++ {
		b := bit(post, (i+61)%80)
		if i < 64 {
			orig.lo |= b << i
		} else {
			orig.hi |= uint16(b) << (i - 64)
		}
	}
	// post bits 15..0 were unknown → they map to original bits
	// (i+61)%80 ∈ 15..0 ⇒ i ∈ 19..4 … recover those from K1 instead:
	// K1 = original bits 79..16.
	orig.hi = uint16(k1 >> 48)
	orig.lo = orig.lo&0xffff | k1<<16
	var out [10]byte
	binary.BigEndian.PutUint16(out[:2], orig.hi)
	binary.BigEndian.PutUint64(out[2:], orig.lo)
	return out
}
