package metrics

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text-format v0.0.4 content type for
// HTTP exposition responses.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteProm renders series in the Prometheus text exposition format
// v0.0.4. Input series are expected sorted by name (Registry.Snapshot
// and Sum both sort), so each family's HELP/TYPE header is emitted
// exactly once. All values are integers, rendered without exponent
// notation, so the output bytes are deterministic for deterministic
// snapshots.
func WriteProm(w io.Writer, series []Series) error {
	bw := bufio.NewWriter(w)
	prevName := ""
	for _, s := range series {
		if s.Name != prevName {
			if s.Help != "" {
				bw.WriteString("# HELP ")
				bw.WriteString(s.Name)
				bw.WriteByte(' ')
				bw.WriteString(escapeHelp(s.Help))
				bw.WriteByte('\n')
			}
			bw.WriteString("# TYPE ")
			bw.WriteString(s.Name)
			bw.WriteByte(' ')
			bw.WriteString(s.Kind)
			bw.WriteByte('\n')
			prevName = s.Name
		}
		switch s.Kind {
		case KindHistogram:
			writeHistogram(bw, s)
		case KindGauge:
			bw.WriteString(s.Name)
			writeLabels(bw, s.Labels, "")
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(s.Gauge, 10))
			bw.WriteByte('\n')
		default:
			bw.WriteString(s.Name)
			writeLabels(bw, s.Labels, "")
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatUint(s.Value, 10))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// writeHistogram emits the _bucket/_sum/_count triplet. Prometheus
// bucket counts are cumulative (each le bucket includes everything
// below it), unlike the per-bucket counts the registry stores.
func writeHistogram(bw *bufio.Writer, s Series) {
	var cum uint64
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		bw.WriteString(s.Name)
		bw.WriteString("_bucket")
		writeLabels(bw, s.Labels, strconv.FormatUint(bound, 10))
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatUint(cum, 10))
		bw.WriteByte('\n')
	}
	if len(s.Counts) > 0 {
		cum += s.Counts[len(s.Counts)-1]
	}
	bw.WriteString(s.Name)
	bw.WriteString("_bucket")
	writeLabels(bw, s.Labels, "+Inf")
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatUint(cum, 10))
	bw.WriteByte('\n')
	bw.WriteString(s.Name)
	bw.WriteString("_sum")
	writeLabels(bw, s.Labels, "")
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatUint(s.Sum, 10))
	bw.WriteByte('\n')
	bw.WriteString(s.Name)
	bw.WriteString("_count")
	writeLabels(bw, s.Labels, "")
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatUint(cum, 10))
	bw.WriteByte('\n')
}

// writeLabels renders {k="v",...}; le, when non-empty, is appended as
// the histogram bucket bound label.
func writeLabels(bw *bufio.Writer, labels []Label, le string) {
	if len(labels) == 0 && le == "" {
		return
	}
	bw.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(l.Key)
		bw.WriteString(`="`)
		bw.WriteString(escapeLabel(l.Value))
		bw.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(`le="`)
		bw.WriteString(le)
		bw.WriteByte('"')
	}
	bw.WriteByte('}')
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }
func escapeHelp(v string) string  { return helpEscaper.Replace(v) }
