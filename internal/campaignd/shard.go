package campaignd

import "fmt"

// ShardRange is one shard's slice of a campaign's canonical job order:
// the half-open index interval [Start, End). Shards are contiguous and
// cover the grid exactly, so concatenating shard outputs in shard order
// reproduces job-index order — the property the merge step relies on
// for byte-determinism.
type ShardRange struct {
	Shard int `json:"shard"`
	Start int `json:"start"`
	End   int `json:"end"`
}

// Len returns the number of jobs in the shard.
func (r ShardRange) Len() int { return r.End - r.Start }

// Contains reports whether job index i falls in the shard.
func (r ShardRange) Contains(i int) bool { return i >= r.Start && i < r.End }

func (r ShardRange) String() string {
	return fmt.Sprintf("shard %d [%d,%d)", r.Shard, r.Start, r.End)
}

// Partition splits a grid of numJobs jobs into contiguous shards of at
// most shardSize jobs each. The partition is a pure function of
// (numJobs, shardSize): the same spec sharded on any coordinator, any
// day, yields the same shard table, so shard identity is stable across
// server restarts and journal reloads. shardSize <= 0 falls back to
// DefaultShardSize; an empty grid yields no shards.
func Partition(numJobs, shardSize int) []ShardRange {
	if shardSize <= 0 {
		shardSize = DefaultShardSize
	}
	if numJobs <= 0 {
		return nil
	}
	shards := make([]ShardRange, 0, (numJobs+shardSize-1)/shardSize)
	for start := 0; start < numJobs; start += shardSize {
		end := start + shardSize
		if end > numJobs {
			end = numJobs
		}
		shards = append(shards, ShardRange{Shard: len(shards), Start: start, End: end})
	}
	return shards
}

// DefaultShardSize balances lease-protocol overhead against re-issue
// cost on node loss: big enough that workers spend their time executing
// rather than leasing, small enough that losing a node forfeits at most
// a few seconds of work at typical per-job costs.
const DefaultShardSize = 64
