package core

import (
	"testing"

	"grinch/internal/bitutil"
	"grinch/internal/cache"
	"grinch/internal/oracle"
)

// The paper's future work: "further explore the effect of the memory
// hierarchy on the effectiveness of the attack". These tests run GRINCH
// through a two-level hierarchy where the attacker can only reach the
// shared L2, and show that the L2's inclusion policy decides the
// attack's fate.

func hierChannel(t *testing.T, key bitutil.Word128, inclusive bool) *oracle.HierOracle {
	t.Helper()
	h, err := cache.NewHierarchy(
		// Private victim L1: small but large enough to hold the whole
		// 16-byte table.
		cache.Config{Sets: 16, Ways: 2, LineBytes: 1, HitLatency: 1, MissLatency: 0, FlushLatency: 1},
		cache.PaperConfig(1),
		inclusive,
		100,
	)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := oracle.NewHierarchyChannel(key, oracle.Config{
		ProbeRound: 1, Flush: true, LineWords: 1,
	}, h, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestHierarchyAttackInclusive(t *testing.T) {
	// Inclusive L2: the attacker's flush back-invalidates the victim's
	// private L1, so every encryption re-exposes its accesses and the
	// full key falls as usual — just through two cache levels.
	key := bitutil.Word128{Lo: 0x0123456789abcdef, Hi: 0xfedcba9876543210}
	ch := hierChannel(t, key, true)
	a, err := NewAttacker(ch, Config{Seed: 31, TotalBudget: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.RecoverKey()
	if err != nil {
		t.Fatalf("attack through inclusive hierarchy failed: %v", err)
	}
	if res.Key != key {
		t.Fatal("wrong key")
	}
	t.Logf("inclusive hierarchy: full key in %d encryptions", res.Encryptions)
}

func TestHierarchyDefeatsAttackWhenNonInclusive(t *testing.T) {
	// Non-inclusive L2: the victim's L1 keeps the whole 16-byte table
	// warm after the first encryption, its lookups stop reaching the
	// shared level, and the attacker starves. The attack must fail
	// cleanly — a private L1 behind a non-inclusive shared cache is
	// itself a countermeasure.
	key := bitutil.Word128{Lo: 0x1111222233334444, Hi: 0x5555666677778888}
	ch := hierChannel(t, key, false)
	a, err := NewAttacker(ch, Config{Seed: 32, TotalBudget: 5_000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.RecoverKey()
	if err == nil && res.Key != key {
		t.Fatal("non-inclusive hierarchy produced a silently wrong key")
	}
	if err == nil {
		t.Fatalf("attack unexpectedly succeeded through a non-inclusive hierarchy (%d encryptions)", res.Encryptions)
	}
}

func TestHierarchyChannelValidation(t *testing.T) {
	h, err := cache.NewHierarchy(cache.PaperConfig(1), cache.PaperConfig(2), true, 10)
	if err != nil {
		t.Fatal(err)
	}
	// L2 line size 2 vs LineWords 1 must be rejected.
	if _, err := oracle.NewHierarchyChannel(bitutil.Word128{}, oracle.Config{ProbeRound: 1, Flush: true, LineWords: 1}, h, 0); err == nil {
		t.Fatal("line-size mismatch accepted")
	}
}
