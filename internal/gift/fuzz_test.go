package gift

import (
	"testing"

	"grinch/internal/bitutil"
)

// Native fuzz targets. Under plain `go test` these run their seed
// corpus as unit tests; `go test -fuzz=FuzzGift64 ./internal/gift`
// explores further.

func FuzzGift64RoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0))
	f.Add(uint64(0xfedcba9876543210), uint64(0xfedcba9876543210), uint64(0xfedcba9876543210))
	f.Add(^uint64(0), ^uint64(0), ^uint64(0))
	f.Fuzz(func(t *testing.T, keyLo, keyHi, pt uint64) {
		c := NewCipher64FromWord(bitutil.Word128{Lo: keyLo, Hi: keyHi})
		ct := c.EncryptBlock(pt)
		if c.DecryptBlock(ct) != pt {
			t.Fatalf("round trip failed for key %x%x pt %x", keyHi, keyLo, pt)
		}
		if c.EncryptBlockBitsliced(pt) != ct {
			t.Fatalf("bitsliced disagrees for key %x%x pt %x", keyHi, keyLo, pt)
		}
	})
}

func FuzzGift128RoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0))
	f.Add(uint64(1), uint64(2), uint64(3), uint64(4))
	f.Fuzz(func(t *testing.T, keyLo, keyHi, ptLo, ptHi uint64) {
		c := NewCipher128FromWord(bitutil.Word128{Lo: keyLo, Hi: keyHi})
		pt := bitutil.Word128{Lo: ptLo, Hi: ptHi}
		ct := c.EncryptBlock(pt)
		if c.DecryptBlock(ct) != pt {
			t.Fatal("round trip failed")
		}
		if c.EncryptBlockBitsliced(pt) != ct {
			t.Fatal("bitsliced disagrees")
		}
	})
}
