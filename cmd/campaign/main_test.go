package main

import (
	"testing"

	"grinch/internal/campaign"
)

// TestFailuresSinkDedupes pins the -keep-going exit-code input: the
// failures sink keeps one entry per failed job index, so a failure that
// reaches the sink more than once (journal replay plus re-delivery)
// cannot inflate the exit decision or the stderr log.
func TestFailuresSinkDedupes(t *testing.T) {
	f := &failures{}
	fail := func(job int) campaign.Result {
		return campaign.Result{Job: job, Failed: true, Err: "boom"}
	}
	for _, r := range []campaign.Result{
		fail(3), {Job: 4}, fail(3), fail(7), {Job: 8}, fail(7), fail(3),
	} {
		if err := f.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if len(f.list) != 2 {
		t.Fatalf("failures sink kept %d entries, want 2 (jobs 3 and 7 once each)", len(f.list))
	}
	if f.list[0].Job != 3 || f.list[1].Job != 7 {
		t.Fatalf("failures sink kept jobs %d, %d; want 3, 7", f.list[0].Job, f.list[1].Job)
	}
}

// TestFailuresSinkMatchesReport checks the invariant the summary line
// relies on: for a run where every result reaches the sink once, the
// deduped sink count equals Report.Failed + Report.FailedReplayed.
func TestFailuresSinkMatchesReport(t *testing.T) {
	f := &failures{}
	rep := campaign.Report{Failed: 2, FailedReplayed: 1}
	for _, r := range []campaign.Result{
		{Job: 0, Failed: true, Err: "replayed"},
		{Job: 1}, {Job: 2, Failed: true, Err: "a"}, {Job: 3, Failed: true, Err: "b"},
	} {
		if err := f.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if len(f.list) != rep.Failed+rep.FailedReplayed {
		t.Fatalf("sink count %d != Failed+FailedReplayed %d", len(f.list), rep.Failed+rep.FailedReplayed)
	}
}
