package gift

import "grinch/internal/bitutil"

// This file contains the bitsliced (lookup-free) GIFT implementation.
// The S-box layer is computed with boolean operations on the four bit
// planes of the state, so no data-dependent memory access ever occurs:
// this is the constant-time software style the GRINCH paper's first
// countermeasure discussion motivates, and it doubles as an independent
// correctness cross-check for the table-based implementation.
//
// The plane decomposition: plane j collects bit 4i+j of every segment i,
// so a GIFT-64 state yields four 16-bit planes and a GIFT-128 state four
// 32-bit planes. The S-box circuit below is the one published with the
// GIFT specification:
//
//	S1 ^= S0 & S2;  S0 ^= S1 & S3;  S2 ^= S0 | S1;
//	S3 ^= S2;       S1 ^= S3;       S3 = ~S3;
//	S2 ^= S0 & S1;  swap(S0, S3)
//
// (verified exhaustively against the lookup table in bitsliced_test.go).

// planes64 splits a GIFT-64 state into its four 16-bit bit planes.
//
//grinch:secret s return
func planes64(s uint64) (p0, p1, p2, p3 uint16) {
	for i := uint(0); i < 16; i++ {
		nib := s >> (4 * i)
		p0 |= uint16(nib&1) << i
		p1 |= uint16(nib>>1&1) << i
		p2 |= uint16(nib>>2&1) << i
		p3 |= uint16(nib>>3&1) << i
	}
	return
}

// unplanes64 reassembles a GIFT-64 state from its bit planes.
func unplanes64(p0, p1, p2, p3 uint16) uint64 {
	var s uint64
	for i := uint(0); i < 16; i++ {
		nib := uint64(p0>>i&1) | uint64(p1>>i&1)<<1 |
			uint64(p2>>i&1)<<2 | uint64(p3>>i&1)<<3
		s |= nib << (4 * i)
	}
	return s
}

// sboxPlanes applies the GIFT S-box circuit to generic-width planes.
//
//grinch:secret
func sboxPlanes(s0, s1, s2, s3 uint32) (uint32, uint32, uint32, uint32) {
	s1 ^= s0 & s2
	s0 ^= s1 & s3
	s2 ^= s0 | s1
	s3 ^= s2
	s1 ^= s3
	s3 = ^s3
	s2 ^= s0 & s1
	return s3, s1, s2, s0 // swap(S0, S3)
}

// invSBoxPlanes inverts sboxPlanes (each step undone in reverse order).
//
//grinch:secret
func invSBoxPlanes(s0, s1, s2, s3 uint32) (uint32, uint32, uint32, uint32) {
	s0, s3 = s3, s0 // undo swap
	s2 ^= s0 & s1
	s3 = ^s3
	s1 ^= s3
	s3 ^= s2
	s2 ^= s0 | s1
	s0 ^= s1 & s3
	s1 ^= s0 & s2
	return s0, s1, s2, s3
}

// SubCells64Bitsliced applies the S-box layer to a GIFT-64 state without
// any table lookup. The state is as secret as in SubCells64; grinchvet
// verifies that, unlike the table path, no secret-indexed access or
// secret branch exists here.
//
//grinch:secret s
func SubCells64Bitsliced(s uint64) uint64 {
	p0, p1, p2, p3 := planes64(s)
	q0, q1, q2, q3 := sboxPlanes(uint32(p0), uint32(p1), uint32(p2), uint32(p3))
	return unplanes64(uint16(q0), uint16(q1), uint16(q2), uint16(q3))
}

// InvSubCells64Bitsliced applies the inverse S-box layer without lookups.
//
//grinch:secret s
func InvSubCells64Bitsliced(s uint64) uint64 {
	p0, p1, p2, p3 := planes64(s)
	q0, q1, q2, q3 := invSBoxPlanes(uint32(p0), uint32(p1), uint32(p2), uint32(p3))
	return unplanes64(uint16(q0), uint16(q1), uint16(q2), uint16(q3))
}

// EncryptBlockBitsliced encrypts one GIFT-64 block using the lookup-free
// S-box layer. Produces bit-identical output to Cipher64.EncryptBlock.
func (c *Cipher64) EncryptBlockBitsliced(pt uint64) uint64 {
	s := pt
	for r := 0; r < Rounds64; r++ {
		s = AddRoundKey64(PermBits64(SubCells64Bitsliced(s)), c.rk[r])
	}
	return s
}

// DecryptBlockBitsliced decrypts one GIFT-64 block without lookups.
func (c *Cipher64) DecryptBlockBitsliced(ct uint64) uint64 {
	s := ct
	for r := Rounds64 - 1; r >= 0; r-- {
		s = InvSubCells64Bitsliced(InvPermBits64(AddRoundKey64(s, c.rk[r])))
	}
	return s
}

// planes128 splits a GIFT-128 state into four 32-bit planes.
//
//grinch:secret s return
func planes128(s bitutil.Word128) (p0, p1, p2, p3 uint32) {
	l0, l1, l2, l3 := planes64(s.Lo)
	h0, h1, h2, h3 := planes64(s.Hi)
	return uint32(h0)<<16 | uint32(l0), uint32(h1)<<16 | uint32(l1),
		uint32(h2)<<16 | uint32(l2), uint32(h3)<<16 | uint32(l3)
}

// unplanes128 reassembles a GIFT-128 state from its planes.
func unplanes128(p0, p1, p2, p3 uint32) bitutil.Word128 {
	return bitutil.Word128{
		Lo: unplanes64(uint16(p0), uint16(p1), uint16(p2), uint16(p3)),
		Hi: unplanes64(uint16(p0>>16), uint16(p1>>16), uint16(p2>>16), uint16(p3>>16)),
	}
}

// SubCells128Bitsliced applies the S-box layer to a GIFT-128 state
// without any table lookup.
//
//grinch:secret s
func SubCells128Bitsliced(s bitutil.Word128) bitutil.Word128 {
	p0, p1, p2, p3 := planes128(s)
	return unplanes128(sboxPlanes(p0, p1, p2, p3))
}

// InvSubCells128Bitsliced applies the inverse S-box layer without
// lookups.
//
//grinch:secret s
func InvSubCells128Bitsliced(s bitutil.Word128) bitutil.Word128 {
	p0, p1, p2, p3 := planes128(s)
	return unplanes128(invSBoxPlanes(p0, p1, p2, p3))
}

// EncryptBlockBitsliced encrypts one GIFT-128 block using the lookup-free
// S-box layer.
func (c *Cipher128) EncryptBlockBitsliced(pt bitutil.Word128) bitutil.Word128 {
	s := pt
	for r := 0; r < Rounds128; r++ {
		s = AddRoundKey128(PermBits128(SubCells128Bitsliced(s)), c.rk[r])
	}
	return s
}

// DecryptBlockBitsliced decrypts one GIFT-128 block without lookups.
func (c *Cipher128) DecryptBlockBitsliced(ct bitutil.Word128) bitutil.Word128 {
	s := ct
	for r := Rounds128 - 1; r >= 0; r-- {
		s = InvSubCells128Bitsliced(InvPermBits128(AddRoundKey128(s, c.rk[r])))
	}
	return s
}
