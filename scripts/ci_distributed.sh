#!/usr/bin/env bash
# CI smoke test for the distributed campaign service: boot campaignd
# and two campaignw workers on localhost, run a small Table I grid, and
# require the merged output to be byte-identical to a single-process
# cmd/campaign run of the same spec. All binaries are built with -race.
#
# Usage: scripts/ci_distributed.sh [port]
set -euo pipefail

cd "$(dirname "$0")/.."
PORT="${1:-18931}"
ADDR="127.0.0.1:${PORT}"
WORK="$(mktemp -d)"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== building -race binaries"
go build -race -o "$WORK/bin/" ./cmd/campaign ./cmd/campaignd ./cmd/campaignw

SPEC_ARGS=(-trials 2 -budget 200000 -seed 2021)

echo "== single-process reference run"
"$WORK/bin/campaign" "${SPEC_ARGS[@]}" -quiet \
  -out "$WORK/ref.jsonl" -csv "$WORK/ref.csv" table1 >/dev/null

echo "== coordinator + 2 workers on $ADDR"
"$WORK/bin/campaignd" -addr "$ADDR" -data "$WORK/data" "${SPEC_ARGS[@]}" \
  -out "$WORK/merged.jsonl" -csv "$WORK/merged.csv" -exit-when-done table1 &
SERVER_PID=$!
PIDS+=("$SERVER_PID")

for i in 1 2; do
  "$WORK/bin/campaignw" -server "http://$ADDR" -id "ci-w$i" -drain &
  PIDS+=("$!")
done

# The coordinator exits on its own once the campaign merges
# (-exit-when-done); workers connect-retry until it is up and drain out
# when it reports done.
if ! wait "$SERVER_PID"; then
  echo "FAIL: campaignd exited non-zero" >&2
  exit 1
fi

echo "== diffing merged output against the single-process run"
cmp "$WORK/merged.jsonl" "$WORK/ref.jsonl"
cmp "$WORK/merged.csv" "$WORK/ref.csv"
echo "OK: distributed merge is byte-identical ($(wc -c <"$WORK/merged.jsonl") bytes JSONL, $(wc -c <"$WORK/merged.csv") bytes CSV)"
