// IoT firmware scenario: a sensor node encrypts telemetry frames with
// GIFT-64 on a single-processor SoC running an RTOS, while a co-resident
// third-party task (the malware of the paper's threat model) shares the
// core and the L1 cache. The example shows the attacker's real probing
// race at three clock frequencies and then runs the first-round attack
// end to end over the 10 MHz platform, where the race is winnable.
//
//	go run ./examples/iot_firmware
package main

import (
	"fmt"
	"log"

	"grinch/internal/bitutil"
	"grinch/internal/core"
	"grinch/internal/gift"
	"grinch/internal/soc"
)

func main() {
	key := bitutil.Word128{Lo: 0x6675726e61636521, Hi: 0x73656e736f723031}

	fmt.Println("IoT sensor node: GIFT-64 telemetry encryption under RTOS scheduling")
	fmt.Println()

	// The probing race (paper Table II, single-SoC row): the attacker
	// only sees the cache when the victim is preempted at quantum
	// boundaries, so higher clocks mean later — and noisier — probes.
	fmt.Println("probing race vs clock frequency (10 ms RTOS quantum):")
	for _, mhz := range []uint64{10, 25, 50} {
		node := soc.NewSingleSoC(key, soc.DefaultParams(mhz))
		round := node.EarliestProbeRound()
		fmt.Printf("  %2d MHz: first probe lands in round %d\n", mhz, round)
	}
	fmt.Println()

	// At 10 MHz the first probe covers rounds 1..2 — enough signal to
	// run the first-round attack over the real platform timing.
	params := soc.DefaultParams(10)
	node := soc.NewSingleSoC(key, params)
	channel := &soc.PlatformChannel{P: node, LineBytes: params.CacheLineBytes}
	attacker, err := core.NewAttacker(channel, core.Config{Seed: 7, TotalBudget: 200_000})
	if err != nil {
		log.Fatal(err)
	}

	out, err := attacker.AttackRound(1, nil, nil)
	if err != nil {
		log.Fatalf("attack failed: %v", err)
	}
	rk, ok := out.Unique()
	if !ok {
		log.Fatal("first-round attack left ambiguity")
	}
	want := gift.ExpandKey64(key)[0]
	fmt.Printf("first-round attack over the live platform:\n")
	fmt.Printf("  encryptions observed: %d\n", out.Encryptions)
	fmt.Printf("  recovered round key:  U=%04x V=%04x\n", rk.U, rk.V)
	fmt.Printf("  actual round key:     U=%04x V=%04x\n", want.U, want.V)
	//grinchvet:ignore secret-branch ground-truth verification of the recovered round key
	if rk.U != want.U || rk.V != want.V {
		log.Fatal("round-key mismatch")
	}
	fmt.Println("  32 key bits recovered from cache observations alone.")
}
