package campaign

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"grinch/internal/obs"
	"grinch/internal/obs/metrics"
)

// Options configure one campaign run.
type Options struct {
	// Workers bounds the worker pool; 0 means GOMAXPROCS.
	Workers int
	// Sinks receive every result in job-index order. Run calls Begin
	// and Close on them.
	Sinks []Sink
	// Journal is the checkpoint file path; empty disables journaling.
	// If the file already exists for the same spec, its completed jobs
	// are replayed into the sinks and skipped.
	Journal string
	// Metrics receives live counters; nil allocates a private set.
	Metrics *Metrics
	// Registry, if set, receives fleet-vocabulary series (campaign_*:
	// per-status job counters, encryption histograms, wall-time
	// quarantined separately) alongside the expvar-oriented Metrics.
	// Nil disables at one nil-check per job.
	Registry *metrics.Registry
	// Progress, if set, is called after every completed or replayed
	// job with (jobs accounted for, grid size). Calls are serialized.
	Progress func(done, total int)
	// Trace, if set, enables event tracing: every job gets a private
	// obs.Buffer (so parallel workers never interleave) and the buffered
	// events reach this sink in job-index order, one WriteEvents call
	// per traced job — byte-deterministic for any worker count. Jobs
	// replayed from the journal were not re-executed and contribute no
	// events.
	Trace obs.Sink
}

// Report summarizes a finished (or interrupted) run.
type Report struct {
	Spec Spec
	// Total is the grid size; Skipped were replayed from the journal;
	// Executed ran this time (Failed of them unsuccessfully).
	Total, Skipped, Executed, Failed int
	// FailedReplayed counts journal-replayed failures — jobs that failed
	// in an earlier run and were not re-executed. A job is counted in
	// Failed or in FailedReplayed, never both, so the run's true failure
	// count is always Failed + FailedReplayed.
	FailedReplayed int
	// Delivered is how many results reached the sinks — the full grid
	// on a completed run, an index-prefix on an interrupted one.
	Delivered int
	// Encryptions consumed by the jobs executed this run.
	Encryptions uint64
	Elapsed     time.Duration
}

// Run expands spec into jobs, executes them on a bounded worker pool,
// and streams the results to the sinks in job-index order.
//
// Determinism: each job's seed is derived from (spec.Seed, job index),
// so the result of every job — and, because delivery is reordered to
// index order, the byte output of every deterministic sink — is
// identical for any worker count and any scheduling.
//
// Cancellation: when ctx is cancelled, dispatch stops, in-flight jobs
// drain, the journal is flushed, and Run returns the partial report
// with ctx's error. A later Run with the same spec and journal resumes
// where this one stopped.
//
// Panics inside the executor are recovered and recorded as failed
// results; they do not kill the run.
func Run(ctx context.Context, spec Spec, exec Executor, opts Options) (Report, error) {
	start := time.Now() //grinchvet:ignore wallclock Report.Elapsed is operator telemetry, stripped from deterministic sink output
	if err := spec.Validate(); err != nil {
		return Report{}, err
	}
	spec = spec.normalized()
	jobs := spec.Jobs()

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	metrics := opts.Metrics
	if metrics == nil {
		metrics = NewMetrics()
	}

	// Resume: load completed jobs from the journal, if any.
	var journal *Journal
	prior := map[int]Result{}
	if opts.Journal != "" {
		var err error
		journal, prior, err = OpenJournal(opts.Journal, spec)
		if err != nil {
			return Report{}, err
		}
		defer journal.Close()
	}
	pending := make([]Job, 0, len(jobs))
	failedReplayed := 0
	for _, j := range jobs {
		r, done := prior[j.Index]
		if !done {
			pending = append(pending, j)
		} else if r.Failed {
			failedReplayed++
		}
	}
	metrics.begin(len(jobs), len(prior), failedReplayed)
	meter := newRunMeter(opts.Registry)
	meter.begin(len(prior), failedReplayed)

	sinks := multiSink(opts.Sinks)
	if err := sinks.Begin(spec, len(jobs)); err != nil {
		return Report{}, err
	}

	jobCh := make(chan Job)
	resCh := make(chan tracedResult)

	// Dispatcher: feeds pending jobs until done or cancelled.
	go func() {
		defer close(jobCh)
		for _, j := range pending {
			select {
			case jobCh <- j:
			case <-ctx.Done():
				metrics.drainQueue()
				return
			}
		}
	}()

	// Workers: execute jobs, recovering per-job panics.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for job := range jobCh {
				metrics.jobStarted()
				var buf *obs.Buffer
				var tr obs.Tracer
				if opts.Trace != nil {
					buf = &obs.Buffer{Job: job.Index}
					tr = buf
				}
				res := runJob(job, exec, id, tr)
				var events []obs.Event
				if buf != nil {
					events = buf.Events
				}
				resCh <- tracedResult{res, events}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(resCh)
	}()

	// Collector: journal in completion order, deliver to sinks in
	// job-index order via a reorder buffer pre-seeded with the
	// journal-replayed results (deliver consumes the stash, so count
	// the resumed jobs first).
	skipped := len(prior)
	stash := prior
	evStash := map[int][]obs.Event{}
	next := 0
	var sinkErr error
	deliver := func() {
		for sinkErr == nil {
			r, ok := stash[next]
			if !ok {
				return
			}
			delete(stash, next)
			if err := sinks.Write(r); err != nil {
				sinkErr = fmt.Errorf("campaign: sink write: %w", err)
				return
			}
			if evs, ok := evStash[next]; ok {
				delete(evStash, next)
				if err := opts.Trace.WriteEvents(evs); err != nil {
					sinkErr = fmt.Errorf("campaign: trace write: %w", err)
					return
				}
			}
			next++
		}
	}
	progress := func(done int) {
		if opts.Progress != nil {
			opts.Progress(done, len(jobs))
		}
	}
	progress(skipped)
	deliver()

	rep := Report{Spec: spec, Total: len(jobs), Skipped: skipped, FailedReplayed: failedReplayed}
	var journalErr error
	for tr := range resCh {
		res := tr.Result
		metrics.jobFinished(res)
		meter.finished(res)
		rep.Executed++
		if res.Failed {
			rep.Failed++
		}
		rep.Encryptions += res.Encryptions
		if journal != nil {
			if err := journal.Append(res); err != nil && journalErr == nil {
				journalErr = err
			}
		}
		stash[res.Job] = res
		if len(tr.events) > 0 {
			evStash[res.Job] = tr.events
		}
		deliver()
		progress(rep.Skipped + rep.Executed)
	}

	rep.Delivered = next
	rep.Elapsed = time.Since(start) //grinchvet:ignore wallclock operator telemetry, not part of sink bytes
	closeErr := sinks.Close()

	switch {
	case ctx.Err() != nil:
		return rep, ctx.Err()
	case sinkErr != nil:
		return rep, sinkErr
	case journalErr != nil:
		return rep, journalErr
	case closeErr != nil:
		return rep, closeErr
	}
	return rep, nil
}

// tracedResult pairs a completed job with the events its private
// tracer buffered (nil when tracing is off).
type tracedResult struct {
	Result
	events []obs.Event
}

// runJob executes one job, converting errors and panics into failed
// results and stamping the execution metadata.
func runJob(job Job, exec Executor, worker int, tracer obs.Tracer) (res Result) {
	start := time.Now() //grinchvet:ignore wallclock Result.DurationNS is excluded from canonical sink output (see Result.Canonical)
	res = Result{Job: job.Index, Point: job.Point, Seed: job.Seed, Worker: worker}
	defer func() {
		if r := recover(); r != nil {
			res.Failed = true
			res.Err = fmt.Sprintf("panic: %v", r)
		}
		res.DurationNS = time.Since(start).Nanoseconds() //grinchvet:ignore wallclock timing metadata, excluded from canonical sink output
	}()
	m, err := exec(job, tracer)
	if err != nil {
		res.Failed = true
		res.Err = err.Error()
		return res
	}
	res.Measurement = m
	return res
}
