package experiments

import (
	"bytes"
	"context"
	"testing"

	"grinch/internal/campaign"
	"grinch/internal/obs"
	"grinch/internal/obs/metrics"
)

// These tests are the campaign-level half of the batched-pipeline
// differential contract (the core-level half lives in
// internal/core/batch_test.go): the same seeded spec, run once on the
// default batched path and once with Spec.ScalarPath forcing the
// scalar reference pipeline, must emit byte-identical artifacts —
// result JSONL, result CSV, trace JSONL, the deterministic metrics
// exposition, and the rendered paper tables. Anything the batch path
// changes — rng draw order, observation order, retry accounting,
// counter totals — would surface as a byte diff here.

// campaignArtifacts bundles every deterministic byte stream one
// campaign run emits.
type campaignArtifacts struct {
	jsonl, csv, trace, prom []byte
	results                 []campaign.Result
}

// runCampaignArtifacts executes spec and captures the full artifact
// set: result JSONL and CSV from the streaming sinks, the trace JSONL
// from a run-wide writer, and the wall-quarantine-filtered Prometheus
// exposition of the fleet registry.
func runCampaignArtifacts(t *testing.T, spec campaign.Spec, workers int) campaignArtifacts {
	t.Helper()
	var jb, cb, tb bytes.Buffer
	tw := obs.NewWriter(&tb)
	reg := metrics.New()
	col := &campaign.Collector{}
	if _, err := campaign.Run(context.Background(), spec, Execute, campaign.Options{
		Workers:  workers,
		Sinks:    []campaign.Sink{&campaign.JSONLSink{W: &jb}, &campaign.CSVSink{W: &cb}, col},
		Trace:    tw,
		Registry: reg,
	}); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	var pb bytes.Buffer
	if err := metrics.WriteProm(&pb, metrics.Deterministic(reg.Snapshot())); err != nil {
		t.Fatal(err)
	}
	return campaignArtifacts{
		jsonl:   jb.Bytes(),
		csv:     cb.Bytes(),
		trace:   tb.Bytes(),
		prom:    pb.Bytes(),
		results: col.Results,
	}
}

// diffArtifacts asserts byte equality of every artifact stream and
// fails with the first differing line on mismatch.
func diffArtifacts(t *testing.T, name string, batch, scalar campaignArtifacts) {
	t.Helper()
	check := func(kind string, b, s []byte) {
		t.Helper()
		if bytes.Equal(b, s) {
			return
		}
		bl := bytes.Split(b, []byte("\n"))
		sl := bytes.Split(s, []byte("\n"))
		for i := 0; i < len(bl) && i < len(sl); i++ {
			if !bytes.Equal(bl[i], sl[i]) {
				t.Fatalf("%s: %s diverges at line %d:\n  batch:  %s\n  scalar: %s",
					name, kind, i+1, bl[i], sl[i])
			}
		}
		t.Fatalf("%s: %s differs in length: batch %d lines, scalar %d lines",
			name, kind, len(bl), len(sl))
	}
	check("result JSONL", batch.jsonl, scalar.jsonl)
	check("result CSV", batch.csv, scalar.csv)
	check("trace JSONL", batch.trace, scalar.trace)
	check("metrics exposition", batch.prom, scalar.prom)
	if len(batch.trace) == 0 {
		t.Fatalf("%s: trace stream is empty — the differential proves nothing", name)
	}
}

// TestBatchCampaignFig3ByteIdentical runs a small seeded Fig. 3 grid
// (flush on and off, the paper's 1-word line) on both pipelines and
// compares every artifact plus the rendered Fig. 3 CSV.
func TestBatchCampaignFig3ByteIdentical(t *testing.T) {
	opt := Options{Trials: 2, Seed: 11, Budget: 50000}
	probeRounds := []int{1, 2}
	spec := Fig3Spec(opt, probeRounds)
	scalarSpec := spec
	scalarSpec.ScalarPath = true

	batch := runCampaignArtifacts(t, spec, 1)
	scalar := runCampaignArtifacts(t, scalarSpec, 1)
	diffArtifacts(t, "fig3", batch, scalar)

	bCSV := Fig3CSV(Fig3FromResults(opt, probeRounds, batch.results))
	sCSV := Fig3CSV(Fig3FromResults(opt, probeRounds, scalar.results))
	if bCSV != sCSV {
		t.Fatalf("fig3: rendered CSV diverges:\nbatch:\n%s\nscalar:\n%s", bCSV, sCSV)
	}
}

// TestBatchCampaignTable1ByteIdentical covers the wide-line demux
// variants: line widths 1 and 2 exercise the 16- and 8-way bitsliced
// line accumulators against the scalar nibble walk.
func TestBatchCampaignTable1ByteIdentical(t *testing.T) {
	opt := Options{Trials: 2, Seed: 23, Budget: 50000}
	lineWords := []int{1, 2}
	probeRounds := []int{1, 2}
	spec := Table1Spec(opt, lineWords, probeRounds)
	scalarSpec := spec
	scalarSpec.ScalarPath = true

	// Different worker counts on purpose: the scalar run must match the
	// batched run byte for byte regardless of scheduling, which is the
	// composition of the batch differential with the worker-count
	// determinism contract.
	batch := runCampaignArtifacts(t, spec, 1)
	scalar := runCampaignArtifacts(t, scalarSpec, 4)
	diffArtifacts(t, "table1", batch, scalar)

	bCSV := Table1CSV(Table1FromResults(opt, lineWords, probeRounds, batch.results), probeRounds)
	sCSV := Table1CSV(Table1FromResults(opt, lineWords, probeRounds, scalar.results), probeRounds)
	if bCSV != sCSV {
		t.Fatalf("table1: rendered CSV diverges:\nbatch:\n%s\nscalar:\n%s", bCSV, sCSV)
	}
}

// TestBatchCampaignFaultedByteIdentical runs the faulted full-recovery
// campaign (structured fault plans, retry policy, budget small enough
// that jobs degrade into PartialResults) on both pipelines. Faulted
// jobs wrap the oracle in a faults.Injector, which only implements the
// scalar probe.Channel — the attack core's capability probe must
// detect that and fall back, so this differential proves the whole
// fault/retry/partial-result surface is batch-invariant end to end.
func TestBatchCampaignFaultedByteIdentical(t *testing.T) {
	spec := faultedRecoverySpec()
	scalarSpec := spec
	scalarSpec.ScalarPath = true

	batch := runCampaignArtifacts(t, spec, 1)
	scalar := runCampaignArtifacts(t, scalarSpec, 1)
	diffArtifacts(t, "faulted-recovery", batch, scalar)

	// The faulted campaign only proves something if the budget really
	// forced structured degradation somewhere in the grid.
	partial := false
	for _, r := range batch.results {
		if r.Partial {
			partial = true
			break
		}
	}
	if !partial {
		t.Fatal("faulted-recovery: no job degraded to a PartialResult; raise fault intensity or cut the budget")
	}
}
