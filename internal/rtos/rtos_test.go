package rtos

import (
	"testing"

	"grinch/internal/sim"
)

func newSched(k *sim.Kernel, quantum sim.Time, ctx uint64) *Scheduler {
	return New(k, sim.ClockMHz(10), Config{Quantum: quantum, CtxSwitchCycles: ctx})
}

func TestSingleTaskRunsToCompletion(t *testing.T) {
	k := sim.NewKernel()
	s := newSched(k, 10*sim.Millisecond, 0)
	var end sim.Time
	s.Spawn("only", func(task *Task) {
		task.Exec(1000) // 1000 cycles at 10 MHz = 100 µs
		end = task.Now()
	})
	k.Run()
	if end != 100*sim.Microsecond {
		t.Fatalf("task finished at %v, want 100µs", end)
	}
}

func TestLoneTaskCrossesQuantumWithoutSwitching(t *testing.T) {
	k := sim.NewKernel()
	s := newSched(k, 1*sim.Millisecond, 100)
	var end sim.Time
	s.Spawn("only", func(task *Task) {
		// 50000 cycles = 5 ms = five quanta.
		for i := 0; i < 50; i++ {
			task.Exec(1000)
		}
		end = task.Now()
	})
	k.Run()
	// Only the initial grant's context switch should be paid.
	if want := 5*sim.Millisecond + 10*sim.Microsecond; end != want {
		t.Fatalf("lone task finished at %v, want %v", end, want)
	}
	if s.Switches() != 1 {
		t.Fatalf("switches = %d, want 1", s.Switches())
	}
}

func TestTwoTasksAlternateByQuantum(t *testing.T) {
	k := sim.NewKernel()
	s := newSched(k, 1*sim.Millisecond, 0)
	type mark struct {
		who string
		at  sim.Time
	}
	var marks []mark
	spawn := func(name string) {
		s.Spawn(name, func(task *Task) {
			for i := 0; i < 30; i++ {
				task.Exec(1000) // 100 µs chunks
				marks = append(marks, mark{name, task.Now()})
			}
		})
	}
	spawn("a")
	spawn("b")
	k.Run()

	// Within any 1 ms quantum window only one task should make progress.
	// Check alternation: find first mark of each; "a" must own [0,1ms),
	// "b" [1ms,2ms), etc.
	for _, m := range marks {
		slot := uint64(m.at-1) / uint64(sim.Millisecond) // time slot index
		wantOwner := "a"
		if slot%2 == 1 {
			wantOwner = "b"
		}
		if m.who != wantOwner {
			t.Fatalf("mark %s at %v lands in slot %d owned by %s", m.who, m.at, slot, wantOwner)
		}
	}
	// Both tasks ran 3 ms of CPU; total span 6 ms.
	if k.Now() != 6*sim.Millisecond {
		t.Fatalf("simulation ended at %v, want 6ms", k.Now())
	}
}

func TestContextSwitchCostCharged(t *testing.T) {
	k := sim.NewKernel()
	// 1 ms quantum, 1000-cycle (100 µs) context switch.
	s := newSched(k, 1*sim.Millisecond, 1000)
	var endA sim.Time
	s.Spawn("a", func(task *Task) {
		task.Exec(20000) // 2 ms CPU → spans two quanta
		endA = task.Now()
	})
	s.Spawn("b", func(task *Task) {
		task.Exec(20000)
	})
	k.Run()
	// a: switch(0.1) + run 1ms, b: switch(0.1) + 1ms, a: switch + 1ms → a
	// done at 3.3 ms.
	if want := 3300 * sim.Microsecond; endA != want {
		t.Fatalf("a finished at %v, want %v", endA, want)
	}
}

func TestRuntimeAccounting(t *testing.T) {
	k := sim.NewKernel()
	s := newSched(k, 1*sim.Millisecond, 50)
	var ta, tb *Task
	ta = s.Spawn("a", func(task *Task) { task.Exec(30000) })
	tb = s.Spawn("b", func(task *Task) { task.Exec(10000) })
	k.Run()
	if ta.Runtime() != 3*sim.Millisecond {
		t.Fatalf("a runtime %v, want 3ms", ta.Runtime())
	}
	if tb.Runtime() != 1*sim.Millisecond {
		t.Fatalf("b runtime %v, want 1ms", tb.Runtime())
	}
}

func TestPreemptionCount(t *testing.T) {
	k := sim.NewKernel()
	s := newSched(k, 1*sim.Millisecond, 0)
	var ta *Task
	ta = s.Spawn("a", func(task *Task) { task.Exec(30000) }) // 3 quanta
	s.Spawn("b", func(task *Task) { task.Exec(30000) })
	k.Run()
	if ta.Preemptions() < 2 {
		t.Fatalf("a preempted %d times, want ≥ 2", ta.Preemptions())
	}
}

func TestSleepReleasesCPU(t *testing.T) {
	k := sim.NewKernel()
	s := newSched(k, 10*sim.Millisecond, 0)
	var busyDone, sleeperWoke sim.Time
	s.Spawn("sleeper", func(task *Task) {
		task.Exec(100) // 10 µs
		task.Sleep(5 * sim.Millisecond)
		sleeperWoke = task.Now()
	})
	s.Spawn("busy", func(task *Task) {
		task.Exec(10000) // 1 ms
		busyDone = task.Now()
	})
	k.Run()
	// busy must get the CPU as soon as sleeper sleeps (≈10 µs), not
	// after a full quantum.
	if busyDone != sim.Millisecond+10*sim.Microsecond {
		t.Fatalf("busy finished at %v", busyDone)
	}
	if sleeperWoke != 5*sim.Millisecond+10*sim.Microsecond {
		t.Fatalf("sleeper woke at %v", sleeperWoke)
	}
}

func TestSleepContendedWakeup(t *testing.T) {
	k := sim.NewKernel()
	s := newSched(k, 10*sim.Millisecond, 0)
	var woke sim.Time
	s.Spawn("sleeper", func(task *Task) {
		task.Sleep(1 * sim.Millisecond)
		task.Exec(1)
		woke = task.Now()
	})
	s.Spawn("hog", func(task *Task) {
		task.Exec(1_000_000) // 100 ms of CPU
	})
	k.Run()
	// Sleeper wakes at 1 ms but the hog owns the core until its quantum
	// expires at 10 ms.
	if woke < 10*sim.Millisecond {
		t.Fatalf("sleeper ran at %v while hog's quantum was live", woke)
	}
}

func TestYieldSlice(t *testing.T) {
	k := sim.NewKernel()
	s := newSched(k, 10*sim.Millisecond, 0)
	var order []string
	s.Spawn("a", func(task *Task) {
		task.Exec(100)
		order = append(order, "a1")
		task.YieldSlice()
		task.Exec(100)
		order = append(order, "a2")
	})
	s.Spawn("b", func(task *Task) {
		task.Exec(100)
		order = append(order, "b1")
	})
	k.Run()
	if len(order) != 3 || order[0] != "a1" || order[1] != "b1" || order[2] != "a2" {
		t.Fatalf("order = %v", order)
	}
}

func TestZeroQuantumPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(sim.NewKernel(), sim.ClockMHz(10), Config{})
}

func TestDeterministicSchedule(t *testing.T) {
	run := func() []sim.Time {
		k := sim.NewKernel()
		s := newSched(k, 777*sim.Microsecond, 13)
		var times []sim.Time
		for i := 0; i < 3; i++ {
			s.Spawn("t", func(task *Task) {
				for j := 0; j < 5; j++ {
					task.Exec(3333)
					times = append(times, task.Now())
				}
			})
		}
		k.Run()
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic mark count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
