package core_test

import (
	"fmt"

	"grinch/internal/bitutil"
	"grinch/internal/core"
	"grinch/internal/oracle"
)

// Run the GRINCH attack end to end against an ideal observation channel
// and recover the victim's full 128-bit key.
func ExampleAttacker_RecoverKey() {
	key := bitutil.Word128{Lo: 0x0123456789abcdef, Hi: 0xfedcba9876543210}

	channel, err := oracle.New(key, oracle.Config{
		ProbeRound: 1,    // probe right after the first key-dependent accesses
		Flush:      true, // the paper's "GRINCH with Flush"
		LineWords:  1,    // one table entry per cache line
	})
	if err != nil {
		panic(err)
	}
	attacker, err := core.NewAttacker(channel, core.Config{Seed: 42})
	if err != nil {
		panic(err)
	}

	res, err := attacker.RecoverKey()
	if err != nil {
		panic(err)
	}
	fmt.Println("recovered:", res.Key == key)
	fmt.Println("round passes:", res.RoundsAttacked)
	// Output:
	// recovered: true
	// round passes: 4
}

// Inspect the crafted-plaintext machinery for one target: paper
// Algorithm 1 locates the S-box outputs to pin, and KeyBits inverts an
// observed index into the two round-key bits.
func ExampleNewTarget64() {
	spec := core.NewTarget64(1, 3) // round key 1, segment 3
	for p := uint8(0); p < 4; p++ {
		idx := spec.ExpectedIndex(p&1, p>>1)
		v, u := spec.KeyBits(idx)
		fmt.Printf("key bits (v=%d,u=%d) → index %#x\n", v, u, idx)
	}
	// Output:
	// key bits (v=0,u=0) → index 0xf
	// key bits (v=1,u=0) → index 0xe
	// key bits (v=0,u=1) → index 0xd
	// key bits (v=1,u=1) → index 0xc
}
